#include "chambolle/tile.hpp"

#include <gtest/gtest.h>

#include "common/matrix.hpp"

namespace chambolle {
namespace {

// Checks the plan's core invariant: profitable rectangles partition the frame.
void expect_partition(const TilingPlan& plan) {
  Matrix<int> cover(plan.frame_rows, plan.frame_cols, 0);
  for (const TileSpec& t : plan.tiles) {
    EXPECT_GE(t.prof_row0, t.buf_row0);
    EXPECT_GE(t.prof_col0, t.buf_col0);
    EXPECT_LE(t.prof_row0 + t.prof_rows, t.buf_row0 + t.buf_rows);
    EXPECT_LE(t.prof_col0 + t.prof_cols, t.buf_col0 + t.buf_cols);
    for (int r = 0; r < t.prof_rows; ++r)
      for (int c = 0; c < t.prof_cols; ++c)
        cover(t.prof_row0 + r, t.prof_col0 + c) += 1;
  }
  for (int r = 0; r < plan.frame_rows; ++r)
    for (int c = 0; c < plan.frame_cols; ++c)
      EXPECT_EQ(cover(r, c), 1) << "(" << r << "," << c << ")";
}

// Checks the halo invariant: every profitable cell is at least `halo` cells
// away from any buffer edge that is not a frame border.
void expect_halo(const TilingPlan& plan) {
  for (const TileSpec& t : plan.tiles) {
    if (t.buf_row0 > 0) {
      EXPECT_GE(t.prof_row0 - t.buf_row0, plan.halo);
    }
    if (t.buf_col0 > 0) {
      EXPECT_GE(t.prof_col0 - t.buf_col0, plan.halo);
    }
    if (t.buf_row0 + t.buf_rows < plan.frame_rows) {
      EXPECT_GE((t.buf_row0 + t.buf_rows) - (t.prof_row0 + t.prof_rows),
                plan.halo);
    }
    if (t.buf_col0 + t.buf_cols < plan.frame_cols) {
      EXPECT_GE((t.buf_col0 + t.buf_cols) - (t.prof_col0 + t.prof_cols),
                plan.halo);
    }
  }
}

TEST(Tiling, SingleTileWhenFrameFits) {
  const TilingPlan plan = make_tiling(50, 60, 88, 92, 4);
  ASSERT_EQ(plan.tiles.size(), 1u);
  EXPECT_EQ(plan.tiles[0].buf_rows, 50);
  EXPECT_EQ(plan.tiles[0].buf_cols, 60);
  EXPECT_EQ(plan.tiles[0].prof_rows, 50);  // frame borders: no halo loss
  EXPECT_DOUBLE_EQ(plan.redundancy(), 0.0);
}

TEST(Tiling, PaperConfiguration512) {
  const TilingPlan plan = make_tiling(512, 512, 88, 92, 4);
  expect_partition(plan);
  expect_halo(plan);
  EXPECT_GT(plan.tiles.size(), 1u);
  EXPECT_EQ(plan.total_profitable_elements(), 512u * 512u);
  // "a slight memory overhead" — the paper claims the replication is small.
  EXPECT_GT(plan.redundancy(), 0.0);
  EXPECT_LT(plan.redundancy(), 0.35);
}

TEST(Tiling, PaperConfiguration1024x768) {
  const TilingPlan plan = make_tiling(768, 1024, 88, 92, 4);
  expect_partition(plan);
  expect_halo(plan);
  EXPECT_EQ(plan.total_profitable_elements(), 768u * 1024u);
}

TEST(Tiling, BuffersNeverExceedTileSize) {
  for (int halo : {1, 4, 8, 16}) {
    const TilingPlan plan = make_tiling(300, 400, 88, 92, halo);
    for (const TileSpec& t : plan.tiles) {
      EXPECT_LE(t.buf_rows, 88);
      EXPECT_LE(t.buf_cols, 92);
      EXPECT_GT(t.prof_rows, 0);
      EXPECT_GT(t.prof_cols, 0);
    }
  }
}

TEST(Tiling, ZeroHaloTilesExactly) {
  const TilingPlan plan = make_tiling(100, 100, 40, 50, 0);
  expect_partition(plan);
  EXPECT_DOUBLE_EQ(plan.redundancy(), 0.0);
  EXPECT_EQ(plan.tiles.size(), 3u * 2u);
}

TEST(Tiling, RedundancyGrowsWithHalo) {
  const double r2 = make_tiling(256, 256, 88, 92, 2).redundancy();
  const double r8 = make_tiling(256, 256, 88, 92, 8).redundancy();
  const double r16 = make_tiling(256, 256, 88, 92, 16).redundancy();
  EXPECT_LT(r2, r8);
  EXPECT_LT(r8, r16);
}

TEST(Tiling, InvalidArgumentsThrow) {
  EXPECT_THROW(make_tiling(0, 10, 8, 8, 1), std::invalid_argument);
  EXPECT_THROW(make_tiling(10, 10, 8, 8, -1), std::invalid_argument);
  EXPECT_THROW(make_tiling(10, 10, 8, 8, 4), std::invalid_argument);  // 8<=2*4
}

// Partition + halo invariants over a randomized-ish parameter sweep.
struct TilingCase {
  int rows, cols, tile_rows, tile_cols, halo;
};

class TilingProperty : public ::testing::TestWithParam<TilingCase> {};

TEST_P(TilingProperty, PartitionAndHaloHold) {
  const TilingCase& tc = GetParam();
  const TilingPlan plan =
      make_tiling(tc.rows, tc.cols, tc.tile_rows, tc.tile_cols, tc.halo);
  expect_partition(plan);
  expect_halo(plan);
  EXPECT_EQ(plan.total_profitable_elements(),
            static_cast<std::size_t>(tc.rows) * tc.cols);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TilingProperty,
    ::testing::Values(TilingCase{17, 23, 9, 11, 2}, TilingCase{100, 3, 30, 3, 1},
                      TilingCase{3, 100, 3, 30, 1}, TilingCase{512, 512, 88, 92, 8},
                      TilingCase{89, 93, 88, 92, 4}, TilingCase{88, 92, 88, 92, 40},
                      TilingCase{200, 200, 21, 23, 10},
                      TilingCase{768, 1024, 88, 92, 16},
                      TilingCase{91, 91, 88, 92, 4}));

// --- Halo-edge invariants (the resident engine's exchange geometry) -------

// Every cell of a tile's halo ring (buffer minus profitable) must be covered
// by EXACTLY ONE incoming edge rect; profitable cells by none.  This is what
// makes a gather of neighbors' strips reconstruct the exact global state.
void expect_edges_partition_halo_rings(const TilingPlan& plan,
                                       const std::vector<HaloEdge>& edges) {
  for (std::size_t j = 0; j < plan.tiles.size(); ++j) {
    const TileSpec& t = plan.tiles[j];
    Matrix<int> cover(t.buf_rows, t.buf_cols, 0);
    for (const HaloEdge& e : edges) {
      if (e.dst != static_cast<int>(j)) continue;
      for (int r = 0; r < e.rows; ++r)
        for (int c = 0; c < e.cols; ++c)
          cover(e.row0 + r - t.buf_row0, e.col0 + c - t.buf_col0) += 1;
    }
    for (int r = 0; r < t.buf_rows; ++r) {
      for (int c = 0; c < t.buf_cols; ++c) {
        const int fr = t.buf_row0 + r, fc = t.buf_col0 + c;
        const bool prof = fr >= t.prof_row0 && fr < t.prof_row0 + t.prof_rows &&
                          fc >= t.prof_col0 && fc < t.prof_col0 + t.prof_cols;
        EXPECT_EQ(cover(r, c), prof ? 0 : 1)
            << "tile " << j << " buf cell (" << r << "," << c << ")";
      }
    }
  }
}

TEST(HaloEdges, PartitionEveryHaloRing) {
  for (const TilingCase& tc :
       {TilingCase{512, 512, 88, 92, 4}, TilingCase{61, 45, 16, 16, 3},
        TilingCase{200, 200, 21, 23, 10}, TilingCase{89, 93, 88, 92, 4}}) {
    const TilingPlan plan =
        make_tiling(tc.rows, tc.cols, tc.tile_rows, tc.tile_cols, tc.halo);
    expect_edges_partition_halo_rings(plan, make_halo_edges(plan));
  }
}

TEST(HaloEdges, RelationIsSymmetricWithBoundedDegree) {
  const TilingPlan plan = make_tiling(300, 400, 40, 50, 6);
  const std::vector<HaloEdge> edges = make_halo_edges(plan);
  std::vector<int> in_degree(plan.tiles.size(), 0);
  for (const HaloEdge& e : edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_GT(e.rows, 0);
    EXPECT_GT(e.cols, 0);
    ++in_degree[static_cast<std::size_t>(e.dst)];
    // Grid tilings make the exchange symmetric: if i feeds j, j feeds i.
    bool reverse = false;
    for (const HaloEdge& b : edges)
      if (b.src == e.dst && b.dst == e.src) reverse = true;
    EXPECT_TRUE(reverse) << e.src << "->" << e.dst;
  }
  for (const int d : in_degree) EXPECT_LE(d, 8);  // <= 8 grid neighbors
}

TEST(HaloEdges, ZeroHaloAndSingleTileExchangeNothing) {
  EXPECT_TRUE(make_halo_edges(make_tiling(100, 100, 40, 50, 0)).empty());
  EXPECT_TRUE(make_halo_edges(make_tiling(50, 60, 88, 92, 4)).empty());
}

TEST(HaloEdges, ExchangeElementsCountBothDualComponents) {
  const TilingPlan plan = make_tiling(96, 96, 20, 20, 4);
  const std::vector<HaloEdge> edges = make_halo_edges(plan);
  ASSERT_FALSE(edges.empty());
  std::size_t rect_sum = 0;
  for (const HaloEdge& e : edges) rect_sum += e.elements();
  EXPECT_EQ(halo_exchange_elements(edges), 2 * rect_sum);  // px + py
  // Per-pass mailbox traffic must sit far below a full-frame reload
  // (~4 floats per cell: two fields in, two out).
  EXPECT_LT(halo_exchange_elements(edges),
            4u * static_cast<std::size_t>(plan.frame_rows) * plan.frame_cols);
}

TEST(HaloEdges, RectsStayInsideDstBufferAndSrcProfitable) {
  const TilingPlan plan = make_tiling(61, 45, 16, 16, 3);
  for (const HaloEdge& e : make_halo_edges(plan)) {
    const TileSpec& s = plan.tiles[static_cast<std::size_t>(e.src)];
    const TileSpec& d = plan.tiles[static_cast<std::size_t>(e.dst)];
    EXPECT_GE(e.row0, s.prof_row0);
    EXPECT_GE(e.col0, s.prof_col0);
    EXPECT_LE(e.row0 + e.rows, s.prof_row0 + s.prof_rows);
    EXPECT_LE(e.col0 + e.cols, s.prof_col0 + s.prof_cols);
    EXPECT_GE(e.row0, d.buf_row0);
    EXPECT_GE(e.col0, d.buf_col0);
    EXPECT_LE(e.row0 + e.rows, d.buf_row0 + d.buf_rows);
    EXPECT_LE(e.col0 + e.cols, d.buf_col0 + d.buf_cols);
  }
}

}  // namespace
}  // namespace chambolle
