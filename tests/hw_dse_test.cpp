#include "hw/dse.hpp"

#include <gtest/gtest.h>

namespace chambolle::hw {
namespace {

DseOptions quick_options() {
  DseOptions o;
  // A small workload keeps the cycle model evaluations cheap.
  o.frame_rows = 128;
  o.frame_cols = 128;
  o.iterations = 50;
  return o;
}

TEST(Dse, Validation) {
  DseOptions o = quick_options();
  o.window_counts.clear();
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = quick_options();
  o.iterations = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(Dse, EnumeratesAndSortsByFps) {
  const auto points = explore(quick_options());
  ASSERT_GT(points.size(), 10u);
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GE(points[i - 1].fps, points[i].fps);
}

TEST(Dse, EveryPointHasConsistentModels) {
  for (const DesignPoint& p : explore(quick_options())) {
    EXPECT_NO_THROW(p.config.validate());
    EXPECT_GT(p.fps, 0.0);
    EXPECT_GT(p.area.luts, 0);
    EXPECT_EQ(p.area.brams,
              2 * p.config.num_sliding_windows * (p.config.num_brams + 1));
  }
}

TEST(Dse, ParetoPointsAreMutuallyNonDominated) {
  const auto points = explore(quick_options());
  std::vector<DesignPoint> frontier;
  for (const DesignPoint& p : points)
    if (p.pareto) frontier.push_back(p);
  ASSERT_GE(frontier.size(), 2u);
  for (const DesignPoint& a : frontier)
    for (const DesignPoint& b : frontier) {
      if (&a == &b) continue;
      const bool dominates =
          a.fps >= b.fps && a.area.luts <= b.area.luts &&
          (a.fps > b.fps || a.area.luts < b.area.luts);
      EXPECT_FALSE(dominates);
    }
}

TEST(Dse, ParetoPointsFitTheDevice) {
  for (const DesignPoint& p : explore(quick_options()))
    if (p.pareto) {
      EXPECT_TRUE(p.fits);
    }
}

TEST(Dse, DominatedPointsAreExcludedFromTheFrontier) {
  const auto points = explore(quick_options());
  for (const DesignPoint& p : points) {
    if (!p.fits || p.pareto) continue;
    // Every non-frontier fitting point must be dominated by someone.
    bool dominated = false;
    for (const DesignPoint& q : points)
      if (q.pareto && q.fps >= p.fps && q.area.luts <= p.area.luts)
        dominated = true;
    EXPECT_TRUE(dominated);
  }
}

TEST(Dse, BestFittingIsTheFastestFittingPoint) {
  const DseOptions o = quick_options();
  const DesignPoint best = best_fitting(o);
  EXPECT_TRUE(best.fits);
  for (const DesignPoint& p : explore(o))
    if (p.fits) {
      EXPECT_LE(p.fps, best.fps + 1e-9);
    }
}

TEST(Dse, NothingFitsOnATinyDevice) {
  DseOptions o = quick_options();
  o.device.dsps = 1;
  o.device.luts = 100;
  EXPECT_THROW((void)best_fitting(o), std::runtime_error);
}

TEST(Dse, PaperClassConfigurationIsNearTheFrontier) {
  // Among 2-window / 7-lane / 92-column candidates, the paper's design class
  // must fit and be Pareto or within 10% fps of a frontier point with no
  // fewer LUTs — i.e. the published design point is defensible under our
  // own models.
  const auto points = explore(quick_options());
  const DesignPoint* paper_class = nullptr;
  for (const DesignPoint& p : points)
    if (p.config.num_sliding_windows == 2 && p.config.pe_lanes == 7 &&
        p.config.tile_cols == 92 && p.config.merge_iterations == 4)
      paper_class = &p;
  ASSERT_NE(paper_class, nullptr);
  EXPECT_TRUE(paper_class->fits);
  bool defensible = paper_class->pareto;
  for (const DesignPoint& q : points)
    if (q.pareto && q.area.luts <= paper_class->area.luts &&
        q.fps <= paper_class->fps * 1.10)
      defensible = true;
  EXPECT_TRUE(defensible);
}

}  // namespace
}  // namespace chambolle::hw
