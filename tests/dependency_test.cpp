#include "chambolle/dependency.hpp"

#include <gtest/gtest.h>

namespace chambolle {
namespace {

TEST(Dependency, StencilHasSevenElements) {
  // Figure 1.a: 7 elements at iteration n for one element at n+1.
  EXPECT_EQ(dependency_stencil().size(), 7u);
}

TEST(Dependency, StencilIsSymmetricUnderNegation) {
  std::set<Offset> s(dependency_stencil().begin(), dependency_stencil().end());
  for (const Offset& o : s)
    EXPECT_TRUE(s.count(Offset{-o.dr, -o.dc})) << o.dr << "," << o.dc;
}

TEST(Dependency, ConeDepthZeroIsGroup) {
  const std::set<Offset> group = {{0, 0}, {0, 1}};
  EXPECT_EQ(dependency_cone(group, 0), group);
}

TEST(Dependency, SingleElementSingleIteration) {
  const DecompositionOverhead o = decomposition_overhead(1, 1, 1);
  EXPECT_EQ(o.cone_elements, 7);
  EXPECT_DOUBLE_EQ(o.per_element, 7.0);
}

TEST(Dependency, TwoByTwoGroupMatchesFigure1b) {
  // "14 elements at iteration n are required to generate four elements at
  //  n+1, thus reducing the overhead to 3.5".
  const DecompositionOverhead o = decomposition_overhead(2, 2, 1);
  EXPECT_EQ(o.group_elements, 4);
  EXPECT_EQ(o.cone_elements, 14);
  EXPECT_DOUBLE_EQ(o.per_element, 3.5);
}

TEST(Dependency, OverheadShrinksWithGroupSize) {
  const double o1 = decomposition_overhead(1, 1, 1).per_element;
  const double o2 = decomposition_overhead(2, 2, 1).per_element;
  const double o4 = decomposition_overhead(4, 4, 1).per_element;
  const double o8 = decomposition_overhead(8, 8, 1).per_element;
  EXPECT_GT(o1, o2);
  EXPECT_GT(o2, o4);
  EXPECT_GT(o4, o8);
}

TEST(Dependency, SquareGroupsBeatElongatedOnes) {
  // Section III-A: "the overhead can be reduced if the group of elements ...
  // are disposed on a squared shape."  Same area, different aspect ratios.
  const double square = decomposition_overhead(4, 4, 1).per_element;
  const double wide = decomposition_overhead(2, 8, 1).per_element;
  const double line = decomposition_overhead(1, 16, 1).per_element;
  EXPECT_LT(square, wide);
  EXPECT_LT(wide, line);
}

TEST(Dependency, ConeGrowsLinearlyWithDepth) {
  // The stencil has radius 1 in all four directions, so the cone of a single
  // element after depth d is contained in the L1-ish ball of radius d.
  for (int d = 1; d <= 5; ++d) {
    const std::set<Offset> cone = dependency_cone({{0, 0}}, d);
    for (const Offset& o : cone) {
      EXPECT_LE(std::abs(o.dr), d);
      EXPECT_LE(std::abs(o.dc), d);
    }
    // It must touch the boundary of that box in all four axis directions.
    bool up = false, down = false, left = false, right = false;
    for (const Offset& o : cone) {
      up |= o.dr == -d;
      down |= o.dr == d;
      left |= o.dc == -d;
      right |= o.dc == d;
    }
    EXPECT_TRUE(up && down && left && right) << "depth " << d;
  }
}

TEST(Dependency, DeeperMergeCostsMorePerElement) {
  const double d1 = decomposition_overhead(1, 1, 1).per_element;
  const double d2 = decomposition_overhead(1, 1, 2).per_element;
  const double d3 = decomposition_overhead(1, 1, 3).per_element;
  EXPECT_LT(d1, d2);
  EXPECT_LT(d2, d3);
}

TEST(Dependency, NegativeDepthThrows) {
  EXPECT_THROW(dependency_cone({{0, 0}}, -1), std::invalid_argument);
  EXPECT_THROW((void)decomposition_overhead(0, 1, 1), std::invalid_argument);
}

TEST(Dependency, ProfitableMarginEqualsMergeDepth) {
  EXPECT_EQ(profitable_margin(0), 0);
  EXPECT_EQ(profitable_margin(4), 4);
  EXPECT_EQ(profitable_margin(200), 200);
  EXPECT_THROW((void)profitable_margin(-1), std::invalid_argument);
}

TEST(Dependency, EmpiricalDependentsMatchAnalyticalStencil) {
  // Perturb p at one site, run one real iteration, observe which sites
  // change: the executable algorithm must agree with Figure 1.a.
  const std::set<Offset> empirical = empirical_dependents(11);
  const std::set<Offset> analytical(dependency_stencil().begin(),
                                    dependency_stencil().end());
  EXPECT_EQ(empirical, analytical);
}

TEST(Dependency, ConeOfDepthTwoMatchesIteratedStencil) {
  const std::set<Offset> once = dependency_cone({{0, 0}}, 1);
  const std::set<Offset> twice_direct = dependency_cone({{0, 0}}, 2);
  const std::set<Offset> twice_iterated = dependency_cone(once, 1);
  EXPECT_EQ(twice_direct, twice_iterated);
}

}  // namespace
}  // namespace chambolle
