#include "chambolle/merged.hpp"

#include <gtest/gtest.h>

#include "chambolle/dependency.hpp"
#include "chambolle/solver.hpp"
#include "common/rng.hpp"

namespace chambolle {
namespace {

ChambolleParams params_with(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

struct Inputs {
  Matrix<float> px, py, v;
};

Inputs random_state(int rows, int cols, std::uint64_t seed, int warmup = 3) {
  Rng rng(seed);
  Inputs in;
  in.v = random_image(rng, rows, cols, -2.f, 2.f);
  in.px = Matrix<float>(rows, cols);
  in.py = Matrix<float>(rows, cols);
  // Warm the dual state so it is not the all-zero special case.
  Matrix<float> scratch;
  iterate_region(in.px, in.py, in.v, RegionGeometry::full_frame(rows, cols),
                 params_with(0), warmup, scratch);
  return in;
}

// Reference: run the full-frame solver `depth` iterations and crop.
std::pair<Matrix<float>, Matrix<float>> reference(const Inputs& in, int row0,
                                                  int col0, int rows, int cols,
                                                  int depth) {
  Matrix<float> px = in.px, py = in.py, scratch;
  iterate_region(px, py, in.v,
                 RegionGeometry::full_frame(in.v.rows(), in.v.cols()),
                 params_with(0), depth, scratch);
  return {px.block(row0, col0, rows, cols), py.block(row0, col0, rows, cols)};
}

struct MergedCase {
  int frame, row0, col0, rows, cols, depth;
};

class MergedMatchesReference : public ::testing::TestWithParam<MergedCase> {};

TEST_P(MergedMatchesReference, BitExact) {
  const MergedCase& mc = GetParam();
  const Inputs in = random_state(mc.frame, mc.frame, 100u + mc.frame);
  const MergedResult got =
      merged_update(in.px, in.py, in.v, mc.row0, mc.col0, mc.rows, mc.cols,
                    mc.depth, params_with(0));
  const auto [rpx, rpy] =
      reference(in, mc.row0, mc.col0, mc.rows, mc.cols, mc.depth);
  EXPECT_EQ(got.px, rpx);
  EXPECT_EQ(got.py, rpy);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergedMatchesReference,
    ::testing::Values(
        MergedCase{16, 8, 8, 1, 1, 1},    // Figure 1.a: one element, one step
        MergedCase{16, 8, 8, 2, 2, 1},    // Figure 1.b: 2x2 group
        MergedCase{16, 8, 8, 1, 1, 2},    // Figure 1.c: depth 2
        MergedCase{20, 6, 6, 4, 4, 4},    // deeper merge, square group
        MergedCase{20, 0, 0, 3, 3, 3},    // touching the top-left border
        MergedCase{20, 16, 17, 4, 3, 3},  // touching the bottom-right border
        MergedCase{12, 0, 0, 12, 12, 3},  // group == whole frame
        MergedCase{16, 5, 5, 1, 8, 2},    // elongated group
        MergedCase{16, 7, 7, 2, 2, 0}));  // depth 0 == identity

TEST(Merged, DepthZeroReturnsCurrentValues) {
  const Inputs in = random_state(10, 10, 7);
  const MergedResult got =
      merged_update(in.px, in.py, in.v, 3, 4, 2, 3, 0, params_with(0));
  EXPECT_EQ(got.px, in.px.block(3, 4, 2, 3));
  EXPECT_EQ(got.stats.p_updates, 0u);
  EXPECT_EQ(got.stats.term_evals, 0u);
}

TEST(Merged, ConeReadsMatchAnalyticalConeSize) {
  // Away from borders, the number of iteration-n elements read must equal
  // |dependency_cone(group, depth)| — the exact numbers of Figure 1.
  const Inputs in = random_state(32, 32, 9);
  const auto cone_size = [&](int gr, int gc, int d) {
    std::set<Offset> group;
    for (int r = 0; r < gr; ++r)
      for (int c = 0; c < gc; ++c) group.insert({r, c});
    return dependency_cone(group, d).size();
  };
  for (const auto& [gr, gc, d] :
       {std::tuple{1, 1, 1}, std::tuple{2, 2, 1}, std::tuple{1, 1, 2},
        std::tuple{4, 4, 3}}) {
    const MergedResult got =
        merged_update(in.px, in.py, in.v, 14, 14, gr, gc, d, params_with(0));
    EXPECT_EQ(got.stats.cone_reads, cone_size(gr, gc, d))
        << gr << "x" << gc << " depth " << d;
  }
  // The two datapoints the paper quotes.
  EXPECT_EQ(
      merged_update(in.px, in.py, in.v, 14, 14, 1, 1, 1, params_with(0))
          .stats.cone_reads,
      7u);
  EXPECT_EQ(
      merged_update(in.px, in.py, in.v, 14, 14, 2, 2, 1, params_with(0))
          .stats.cone_reads,
      14u);
}

TEST(Merged, BorderClipsTheCone) {
  const Inputs in = random_state(16, 16, 11);
  const MergedResult corner =
      merged_update(in.px, in.py, in.v, 0, 0, 1, 1, 1, params_with(0));
  // The 7-point cone loses its out-of-frame members at the corner.
  EXPECT_LT(corner.stats.cone_reads, 7u);
}

TEST(Merged, WorkGrowsWithDepth) {
  const Inputs in = random_state(32, 32, 13);
  std::size_t prev = 0;
  for (int d = 1; d <= 4; ++d) {
    const MergedResult got =
        merged_update(in.px, in.py, in.v, 14, 14, 1, 1, d, params_with(0));
    EXPECT_GT(got.stats.p_updates, prev);
    prev = got.stats.p_updates;
  }
}

TEST(Merged, RejectsBadGeometry) {
  const Inputs in = random_state(8, 8, 15);
  EXPECT_THROW((void)merged_update(in.px, in.py, in.v, 7, 7, 2, 2, 1,
                                   params_with(0)),
               std::invalid_argument);
  EXPECT_THROW((void)merged_update(in.px, in.py, in.v, 0, 0, 0, 1, 1,
                                   params_with(0)),
               std::invalid_argument);
  EXPECT_THROW((void)merged_update(in.px, in.py, in.v, 0, 0, 1, 1, -1,
                                   params_with(0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace chambolle
