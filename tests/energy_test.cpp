#include "chambolle/energy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace chambolle {
namespace {

TEST(Energy, TotalVariationOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(total_variation(Matrix<float>(8, 8, 5.f)), 0.0);
}

TEST(Energy, TotalVariationOfRamp) {
  // u(r,c) = c: forward-x gradient is 1 everywhere except the last column.
  Matrix<float> u(4, 5);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 5; ++c) u(r, c) = static_cast<float>(c);
  EXPECT_DOUBLE_EQ(total_variation(u), 4.0 * 4.0);
}

TEST(Energy, TotalVariationOfStep) {
  // One vertical jump of height h spanning `rows` rows: TV = rows * h.
  Matrix<float> u(6, 8, 0.f);
  for (int r = 0; r < 6; ++r)
    for (int c = 4; c < 8; ++c) u(r, c) = 3.f;
  EXPECT_DOUBLE_EQ(total_variation(u), 6.0 * 3.0);
}

TEST(Energy, TvIsScaleHomogeneous) {
  Rng rng(1);
  Matrix<float> u = random_image(rng, 10, 10, -1.f, 1.f);
  const double tv1 = total_variation(u);
  for (float& v : u) v *= 2.f;
  EXPECT_NEAR(total_variation(u), 2.0 * tv1, 1e-6 * tv1);
}

TEST(Energy, L2Distance) {
  Matrix<float> a(2, 2, 1.f), b(2, 2, 3.f);
  EXPECT_DOUBLE_EQ(l2_distance_sq(a, b), 4.0 * 4.0);
  EXPECT_DOUBLE_EQ(l2_distance_sq(a, a), 0.0);
  EXPECT_THROW((void)l2_distance_sq(a, Matrix<float>(1, 1)), std::invalid_argument);
}

TEST(Energy, RofEnergyCombinesTerms) {
  Matrix<float> u(2, 2, 1.f), v(2, 2, 2.f);
  // TV(u)=0, ||u-v||^2 = 4; E = 4 / (2*theta).
  EXPECT_DOUBLE_EQ(rof_energy(u, v, 0.5f), 4.0);
  EXPECT_DOUBLE_EQ(rof_energy(u, v, 0.25f), 8.0);
  EXPECT_THROW((void)rof_energy(u, v, 0.f), std::invalid_argument);
}

TEST(Energy, MaxDualMagnitude) {
  Matrix<float> px(2, 2, 0.f), py(2, 2, 0.f);
  px(0, 1) = 0.6f;
  py(0, 1) = 0.8f;
  EXPECT_NEAR(max_dual_magnitude(px, py), 1.0, 1e-7);
  EXPECT_THROW((void)max_dual_magnitude(px, Matrix<float>(1, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace chambolle
