#include "tvl1/tvl1.hpp"

#include <gtest/gtest.h>

#include "common/flow_color.hpp"
#include "workloads/metrics.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle::tvl1 {
namespace {

Tvl1Params fast_params() {
  Tvl1Params p;
  p.pyramid_levels = 3;
  p.warps = 4;
  p.chambolle.iterations = 25;
  return p;
}

TEST(Tvl1Params, Validation) {
  Tvl1Params p;
  EXPECT_NO_THROW(p.validate());
  p.lambda = 0.f;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.pyramid_levels = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.warps = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.chambolle.tau = 1.f;  // breaks tau/theta <= 1/4
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Tvl1, RejectsMismatchedFrames) {
  const Image a(8, 8), b(8, 9);
  EXPECT_THROW(compute_flow(a, b, fast_params()), std::invalid_argument);
  EXPECT_THROW(compute_flow(Image(1, 8), Image(1, 8), fast_params()),
               std::invalid_argument);
}

TEST(Tvl1, IdenticalFramesGiveNearZeroFlow) {
  const Image img = workloads::smooth_texture(48, 48, 11);
  const FlowField u = compute_flow(img, img, fast_params());
  EXPECT_LT(max_flow_magnitude(u), 0.05f);
}

TEST(Tvl1, RecoversSubpixelTranslation) {
  const auto wl = workloads::translating_scene(48, 48, 0.6f, -0.4f, 13);
  Tvl1Params p = fast_params();
  p.pyramid_levels = 1;  // sub-pixel motion needs no pyramid
  const FlowField u = compute_flow(wl.frame0, wl.frame1, p);
  EXPECT_LT(workloads::interior_endpoint_error(u, wl.ground_truth, 4), 0.25);
}

TEST(Tvl1, RecoversMultiPixelTranslationViaPyramid) {
  const auto wl = workloads::translating_scene(64, 64, 3.f, 2.f, 17);
  const FlowField u = compute_flow(wl.frame0, wl.frame1, fast_params());
  EXPECT_LT(workloads::interior_endpoint_error(u, wl.ground_truth, 6), 0.6);
}

TEST(Tvl1, RecoversRotation) {
  const auto wl = workloads::rotating_scene(64, 64, 0.03f, 19);
  const FlowField u = compute_flow(wl.frame0, wl.frame1, fast_params());
  EXPECT_LT(workloads::interior_endpoint_error(u, wl.ground_truth, 6), 0.5);
}

TEST(Tvl1, SurvivesNoise) {
  auto wl = workloads::translating_scene(48, 48, 1.f, 0.f, 23);
  workloads::corrupt(wl, 4.f);
  const FlowField u = compute_flow(wl.frame0, wl.frame1, fast_params());
  EXPECT_LT(workloads::interior_endpoint_error(u, wl.ground_truth, 6), 0.8);
}

TEST(Tvl1, StatsReportChambolleDominance) {
  const auto wl = workloads::translating_scene(64, 64, 1.f, 1.f, 29);
  Tvl1Params p = fast_params();
  p.chambolle.iterations = 60;
  Tvl1Stats stats;
  (void)compute_flow(wl.frame0, wl.frame1, p, &stats);
  EXPECT_GT(stats.total_seconds, 0.0);
  // With the fused SIMD kernel the inner solve sits near 50% on a frame
  // this small (the paper's ~90% was unvectorized); this test checks the
  // stats bookkeeping, so only require the fraction to be substantial —
  // the Section-I dominance claim is asserted on a realistic configuration
  // in acceptance_test.cpp.
  EXPECT_GT(stats.chambolle_fraction(), 0.3);
  EXPECT_LT(stats.chambolle_fraction(), 1.0);
  EXPECT_EQ(stats.levels_processed, 3);
  EXPECT_EQ(stats.chambolle_inner_iterations,
            2LL * 60 * p.warps * p.pyramid_levels);
}

TEST(Tvl1, TiledBackendMatchesReferenceExactly) {
  // The tiled inner solver is bit-exact, so the whole pipeline must be too.
  const auto wl = workloads::translating_scene(48, 48, 1.5f, 0.5f, 31);
  Tvl1Params ref = fast_params();
  Tvl1Params tiled = fast_params();
  tiled.solver = InnerSolver::kTiled;
  tiled.tiled.tile_rows = 24;
  tiled.tiled.tile_cols = 24;
  tiled.tiled.merge_iterations = 5;
  const FlowField a = compute_flow(wl.frame0, wl.frame1, ref);
  const FlowField b = compute_flow(wl.frame0, wl.frame1, tiled);
  EXPECT_EQ(a.u1, b.u1);
  EXPECT_EQ(a.u2, b.u2);
}

TEST(Tvl1, ResidentBackendMatchesReferenceExactly) {
  // Default (cold per-warp duals): the resident engine must be bit-exact
  // through the whole pyramid, warps and levels included.
  const auto wl = workloads::translating_scene(48, 48, 1.5f, 0.5f, 31);
  Tvl1Params ref = fast_params();
  Tvl1Params res = fast_params();
  res.solver = InnerSolver::kResident;
  res.tiled.tile_rows = 24;
  res.tiled.tile_cols = 24;
  res.tiled.merge_iterations = 5;
  res.tiled.num_threads = 2;
  const FlowField a = compute_flow(wl.frame0, wl.frame1, ref);
  const FlowField b = compute_flow(wl.frame0, wl.frame1, res);
  EXPECT_EQ(a.u1, b.u1);
  EXPECT_EQ(a.u2, b.u2);
}

TEST(Tvl1, AdaptiveResidentAccountsExecutedInnerIterations) {
  // Regression for the adaptive inner-iteration accounting: with an
  // unreachable tolerance nothing retires, so the adaptive resident path
  // executes exactly the fixed budget — including the TRUNCATED remainder
  // burst when iterations % merge != 0 (25 = 6*4 + 1 here) — and
  // chambolle_inner_iterations must report the executed count, not round
  // the final burst up to a whole merged pass.
  const auto wl = workloads::translating_scene(48, 48, 1.f, 0.5f, 37);
  Tvl1Params p = fast_params();
  p.solver = InnerSolver::kResident;
  p.tiled.tile_rows = 24;
  p.tiled.tile_cols = 24;
  p.tiled.merge_iterations = 4;
  p.adaptive_stopping = true;
  p.adaptive.tolerance = 1e-30f;  // nothing retires: deterministic budget
  p.adaptive.patience = 1;
  p.adaptive.max_passes = 0;  // fixed-budget sentinel
  Tvl1Stats stats;
  const FlowField a = compute_flow(wl.frame0, wl.frame1, p, &stats);
  EXPECT_EQ(stats.chambolle_inner_iterations,
            2LL * 25 * p.warps * stats.levels_processed);
  // With nothing retiring the adaptive schedule IS the fixed schedule.
  Tvl1Params fixed = p;
  fixed.adaptive_stopping = false;
  const FlowField b = compute_flow(wl.frame0, wl.frame1, fixed);
  EXPECT_EQ(a.u1, b.u1);
  EXPECT_EQ(a.u2, b.u2);
}

TEST(Tvl1, ResidentWarmStartStaysCloseToReference) {
  // warm_start_duals carries duals across warps: a different (not wrong)
  // solve, so the flow agrees approximately, not bitwise.
  const auto wl = workloads::translating_scene(48, 48, 1.f, 0.5f, 33);
  Tvl1Params ref = fast_params();
  Tvl1Params warm = fast_params();
  warm.solver = InnerSolver::kResident;
  warm.tiled.tile_rows = 24;
  warm.tiled.tile_cols = 24;
  warm.tiled.merge_iterations = 5;
  warm.warm_start_duals = true;
  const FlowField a = compute_flow(wl.frame0, wl.frame1, ref);
  const FlowField b = compute_flow(wl.frame0, wl.frame1, warm);
  EXPECT_LT(max_abs_diff(a.u1, b.u1), 0.25);
  EXPECT_LT(max_abs_diff(a.u2, b.u2), 0.25);
  EXPECT_LT(workloads::interior_endpoint_error(b, wl.ground_truth, 6), 0.6);
}

TEST(Tvl1, FixedBackendStaysCloseToReference) {
  const auto wl = workloads::translating_scene(48, 48, 1.f, -1.f, 37);
  Tvl1Params ref = fast_params();
  Tvl1Params fixed = fast_params();
  fixed.solver = InnerSolver::kFixed;
  const FlowField a = compute_flow(wl.frame0, wl.frame1, ref);
  const FlowField b = compute_flow(wl.frame0, wl.frame1, fixed);
  // The fixed-point datapath quantizes to 1/256: the flows agree closely.
  EXPECT_LT(max_abs_diff(a.u1, b.u1), 0.35);
  EXPECT_LT(max_abs_diff(a.u2, b.u2), 0.35);
  EXPECT_LT(workloads::interior_endpoint_error(b, wl.ground_truth, 6), 0.6);
}

TEST(Tvl1, MoreWarpsDoNotHurtAccuracy) {
  const auto wl = workloads::translating_scene(48, 48, 2.f, 0.f, 41);
  Tvl1Params few = fast_params();
  few.warps = 1;
  Tvl1Params many = fast_params();
  many.warps = 6;
  const double e_few = workloads::interior_endpoint_error(
      compute_flow(wl.frame0, wl.frame1, few), wl.ground_truth, 6);
  const double e_many = workloads::interior_endpoint_error(
      compute_flow(wl.frame0, wl.frame1, many), wl.ground_truth, 6);
  EXPECT_LE(e_many, e_few + 0.05);
}

}  // namespace
}  // namespace chambolle::tvl1
