#include "chambolle/resident_tiled.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"

namespace chambolle {
namespace {

ChambolleParams params_with(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

Matrix<float> random_v(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  return random_image(rng, rows, cols, -3.f, 3.f);
}

// The strongest form of the equality claim: raw-memory comparison, not
// float-tolerant.  operator== on Matrix is elementwise; memcmp additionally
// rules out representation games (e.g. -0.0 vs 0.0).
void expect_memcmp_eq(const Matrix<float>& a, const Matrix<float>& b,
                      const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  EXPECT_EQ(0, std::memcmp(a.data().data(), b.data().data(),
                           a.size() * sizeof(float)))
      << what;
}

// Bit-exactness of the resident halo-exchange engine against the sequential
// reference, across the geometry/edge-case matrix the issue calls out:
// frame smaller than one tile, tile dims exactly 2*halo+1, non-divisible
// frame/tile ratios, one-axis tilings, degenerate 1x1 frames — at several
// thread counts, so the point-to-point scheduler's orderings are exercised.
struct ResidentCase {
  int rows, cols, tile_rows, tile_cols, merge, iterations, threads;
};

class ResidentEqualsReference : public ::testing::TestWithParam<ResidentCase> {
};

TEST_P(ResidentEqualsReference, BitExactOnAllElements) {
  const ResidentCase& tc = GetParam();
  const Matrix<float> v = random_v(tc.rows, tc.cols, 4000 + tc.rows);
  const ChambolleParams params = params_with(tc.iterations);

  const ChambolleResult ref = solve(v, params);

  TiledSolverOptions opt;
  opt.tile_rows = tc.tile_rows;
  opt.tile_cols = tc.tile_cols;
  opt.merge_iterations = tc.merge;
  opt.num_threads = tc.threads;
  ResidentTiledStats stats;
  const ChambolleResult res = solve_resident(v, params, opt, &stats);

  expect_memcmp_eq(res.u, ref.u, "u");
  expect_memcmp_eq(res.p.px, ref.p.px, "px");
  expect_memcmp_eq(res.p.py, ref.p.py, "py");
  EXPECT_EQ(stats.passes, (tc.iterations + tc.merge - 1) / tc.merge);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ResidentEqualsReference,
    ::testing::Values(
        // Frame smaller than one tile: single resident tile, no exchange.
        ResidentCase{32, 32, 88, 92, 4, 20, 1},
        // Tile dims exactly 2*halo+1 — the minimum legal window, a 1-cell
        // profitable core in the interior.
        ResidentCase{24, 24, 9, 9, 4, 12, 2},
        ResidentCase{20, 20, 3, 3, 1, 7, 2},
        // Multi-tile, several merge depths and thread counts.
        ResidentCase{64, 64, 24, 28, 4, 16, 1},
        ResidentCase{64, 64, 24, 28, 4, 16, 4},
        ResidentCase{64, 64, 24, 28, 1, 7, 2},
        ResidentCase{50, 70, 20, 22, 8, 24, 3},
        ResidentCase{97, 53, 30, 26, 5, 13, 2},  // iterations % merge != 0
        // Frame slightly larger than one tile (paper's window size).
        ResidentCase{90, 94, 88, 92, 4, 12, 2},
        // One-axis tilings (tall / flat frames).
        ResidentCase{128, 16, 40, 16, 6, 18, 2},
        ResidentCase{16, 128, 16, 40, 6, 18, 2},
        // Degenerate frame: a single pixel, still a multi-threaded request.
        ResidentCase{1, 1, 88, 92, 2, 9, 2},
        // Non-divisible frame/tile ratios everywhere.
        ResidentCase{61, 45, 16, 16, 2, 10, 3},
        // Tile exactly equal to the frame.
        ResidentCase{40, 44, 40, 44, 3, 12, 2},
        // More tiles than a typical lane count: scheduler pinning blocks.
        ResidentCase{96, 96, 20, 20, 3, 9, 4}));

TEST(ResidentSolver, MatchesReloadEngineBitExactly) {
  const Matrix<float> v = random_v(80, 60, 21);
  const ChambolleParams params = params_with(14);
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 24;
  opt.merge_iterations = 3;
  opt.num_threads = 2;

  const ChambolleResult reload = solve_tiled(v, params, opt);
  const ChambolleResult res = solve_resident(v, params, opt);
  expect_memcmp_eq(res.p.px, reload.p.px, "px");
  expect_memcmp_eq(res.p.py, reload.p.py, "py");
  expect_memcmp_eq(res.u, reload.u, "u");
}

TEST(ResidentSolver, RunsAreComposable) {
  // run(a); run(b) on resident buffers == one reference solve of a+b.
  const Matrix<float> v = random_v(48, 48, 22);
  TiledSolverOptions opt;
  opt.tile_rows = 20;
  opt.tile_cols = 20;
  opt.merge_iterations = 2;
  opt.num_threads = 2;

  ResidentTiledEngine engine(v, params_with(12), opt);
  engine.run(5);
  engine.run(7);
  const ChambolleResult split = engine.result();
  const ChambolleResult ref = solve(v, params_with(12));
  expect_memcmp_eq(split.p.px, ref.p.px, "px");
  expect_memcmp_eq(split.p.py, ref.p.py, "py");
}

TEST(ResidentSolver, SnapshotObservesIntermediateStateWithoutDisturbingIt) {
  const Matrix<float> v = random_v(40, 40, 23);
  TiledSolverOptions opt;
  opt.tile_rows = 18;
  opt.tile_cols = 18;
  opt.merge_iterations = 2;
  opt.num_threads = 2;

  ResidentTiledEngine engine(v, params_with(8), opt);
  engine.run(4);
  DualField mid;
  engine.snapshot(mid);  // the on-demand telemetry write-back
  const ChambolleResult ref4 = solve(v, params_with(4));
  expect_memcmp_eq(mid.px, ref4.p.px, "px@4");
  expect_memcmp_eq(mid.py, ref4.p.py, "py@4");

  engine.run(4);  // snapshot must not have corrupted the resident state
  const ChambolleResult ref8 = solve(v, params_with(8));
  expect_memcmp_eq(engine.result().p.px, ref8.p.px, "px@8");
}

TEST(ResidentSolver, WarmStartFromInitialDuals) {
  const Matrix<float> v = random_v(44, 36, 24);
  const ChambolleParams first = params_with(6);
  const ChambolleResult stage1 = solve(v, first);

  TiledSolverOptions opt;
  opt.tile_rows = 16;
  opt.tile_cols = 16;
  opt.merge_iterations = 2;
  opt.num_threads = 2;
  ResidentTiledStats stats;
  const ChambolleResult warm =
      solve_resident(v, params_with(5), opt, &stats, &stage1.p);
  const ChambolleResult ref = solve(v, params_with(5), &stage1.p);
  expect_memcmp_eq(warm.p.px, ref.p.px, "px");
  expect_memcmp_eq(warm.p.py, ref.p.py, "py");
  expect_memcmp_eq(warm.u, ref.u, "u");
}

TEST(ResidentSolver, ResetVKeepsDualsResidentAcrossWarps) {
  // The TV-L1 warp pattern: new v each inner solve, duals carried through
  // the resident buffers.  Must equal reference solves chained by explicit
  // initial duals.
  const Matrix<float> v1 = random_v(52, 40, 25);
  const Matrix<float> v2 = random_v(52, 40, 26);
  TiledSolverOptions opt;
  opt.tile_rows = 20;
  opt.tile_cols = 18;
  opt.merge_iterations = 3;
  opt.num_threads = 2;

  ResidentTiledEngine engine(v1, params_with(9), opt);
  engine.run(9);
  engine.reset_v(v2);  // duals stay resident
  engine.run(9);
  const ChambolleResult res = engine.result();

  const ChambolleResult ref1 = solve(v1, params_with(9));
  const ChambolleResult ref2 = solve(v2, params_with(9), &ref1.p);
  expect_memcmp_eq(res.p.px, ref2.p.px, "px");
  expect_memcmp_eq(res.p.py, ref2.p.py, "py");
  expect_memcmp_eq(res.u, ref2.u, "u");
}

TEST(ResidentSolver, ResetVWithInitialColdRestarts) {
  const Matrix<float> v1 = random_v(30, 30, 27);
  const Matrix<float> v2 = random_v(30, 30, 28);
  TiledSolverOptions opt;
  opt.tile_rows = 14;
  opt.tile_cols = 14;
  opt.merge_iterations = 2;
  opt.num_threads = 1;

  ResidentTiledEngine engine(v1, params_with(6), opt);
  engine.run(6);
  const DualField zeros(30, 30);
  engine.reset_v(v2, &zeros);
  engine.run(6);
  const ChambolleResult ref = solve(v2, params_with(6));
  expect_memcmp_eq(engine.result().p.px, ref.p.px, "px");
}

TEST(ResidentSolver, StatsReportHaloTrafficFarBelowFrameReload) {
  const Matrix<float> v = random_v(128, 128, 29);
  TiledSolverOptions opt;
  opt.tile_rows = 40;
  opt.tile_cols = 40;
  opt.merge_iterations = 4;
  opt.num_threads = 1;
  ResidentTiledStats stats;
  (void)solve_resident(v, params_with(16), opt, &stats);

  EXPECT_EQ(stats.passes, 4);
  EXPECT_GT(stats.tiles, 1u);
  EXPECT_GT(stats.halo_elements_per_pass, 0u);
  // The whole point: per-pass mailbox traffic is halo-perimeter scale, a
  // small fraction of the reload engine's 4 floats/cell frame round-trip.
  EXPECT_LT(stats.halo_elements_per_pass, 4u * 128u * 128u / 4u);
  EXPECT_EQ(stats.halo_bytes_exchanged,
            stats.halo_elements_per_pass * sizeof(float) * 4u);
  EXPECT_GT(stats.element_iterations, 128u * 128u * 16u);
}

TEST(ResidentSolver, SingleTileExchangesNothing) {
  const Matrix<float> v = random_v(32, 32, 30);
  TiledSolverOptions opt;  // default 88x92 window covers the frame
  ResidentTiledStats stats;
  const ChambolleResult res = solve_resident(v, params_with(8), opt, &stats);
  EXPECT_EQ(stats.tiles, 1u);
  EXPECT_EQ(stats.halo_elements_per_pass, 0u);
  EXPECT_EQ(stats.halo_bytes_exchanged, 0u);
  const ChambolleResult ref = solve(v, params_with(8));
  expect_memcmp_eq(res.p.px, ref.p.px, "px");
}

TEST(ResidentSolver, ValidatesArguments) {
  const Matrix<float> v = random_v(32, 32, 31);
  TiledSolverOptions opt;
  opt.merge_iterations = 0;
  EXPECT_THROW(ResidentTiledEngine(v, params_with(4), opt),
               std::invalid_argument);
  opt = {};
  DualField bad(8, 8);
  EXPECT_THROW(ResidentTiledEngine(v, params_with(4), opt, &bad),
               std::invalid_argument);
  ResidentTiledEngine engine(v, params_with(4), opt);
  EXPECT_THROW(engine.run(-1), std::invalid_argument);
  const Matrix<float> wrong(16, 16);
  EXPECT_THROW(engine.reset_v(wrong), std::invalid_argument);
}

TEST(ResidentSolver, ThreadCountDoesNotChangeResult) {
  const Matrix<float> v = random_v(80, 60, 32);
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 24;
  opt.merge_iterations = 3;

  opt.num_threads = 1;
  const ChambolleResult a = solve_resident(v, params_with(12), opt);
  opt.num_threads = 8;
  const ChambolleResult b = solve_resident(v, params_with(12), opt);
  expect_memcmp_eq(a.u, b.u, "u");
  expect_memcmp_eq(a.p.px, b.p.px, "px");
}

}  // namespace
}  // namespace chambolle
