// kernel_test.cpp — the SIMD kernel layer: backend dispatch, and the
// bit-exactness sweep of every available backend against the seed scalar
// implementation.
//
// The ground truth is a literal copy of the SEED solver's two-pass loop
// (full Term frame, per-element border branches, scalar sqrt/div) — the
// code the kernel layer replaced.  Every backend must reproduce its px/py
// and recover_u outputs bit-for-bit (memcmp, so even signed zeros must
// match) on degenerate and offset geometries: 1-pixel, 1-row, 1-column,
// non-multiple-of-8 widths, tile==frame, and halo windows pinned to each
// frame border.
#include "kernels/kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "chambolle/solver.hpp"
#include "common/rng.hpp"
#include "kernels/scalar_ops.hpp"

namespace chambolle {
namespace {

// ---------------------------------------------------------------------------
// Seed reference implementation (verbatim from the pre-kernel solver.cpp).

float seed_div_p_at(const Matrix<float>& px, const Matrix<float>& py, int r,
                    int c, const RegionGeometry& g) {
  const int ar = g.row0 + r;
  const int ac = g.col0 + c;
  float dx;
  if (ac == 0)
    dx = px(r, c);
  else if (ac == g.frame_cols - 1)
    dx = -(c > 0 ? px(r, c - 1) : 0.f);
  else
    dx = px(r, c) - (c > 0 ? px(r, c - 1) : 0.f);
  float dy;
  if (ar == 0)
    dy = py(r, c);
  else if (ar == g.frame_rows - 1)
    dy = -(r > 0 ? py(r - 1, c) : 0.f);
  else
    dy = py(r, c) - (r > 0 ? py(r - 1, c) : 0.f);
  return dx + dy;
}

void seed_iterate_region(Matrix<float>& px, Matrix<float>& py,
                         const Matrix<float>& v, const RegionGeometry& geom,
                         const ChambolleParams& params, int iterations) {
  const int rows = v.rows(), cols = v.cols();
  if (rows == 0 || cols == 0 || iterations == 0) return;
  Matrix<float> term_scratch(rows, cols);
  const float inv_theta = 1.f / params.theta;
  const float step = params.step();
  for (int it = 0; it < iterations; ++it) {
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c)
        term_scratch(r, c) =
            seed_div_p_at(px, py, r, c, geom) - v(r, c) * inv_theta;
    for (int r = 0; r < rows; ++r) {
      const int ar = geom.row0 + r;
      for (int c = 0; c < cols; ++c) {
        const int ac = geom.col0 + c;
        const float t = term_scratch(r, c);
        const float term1 = (ac == geom.frame_cols - 1 || c + 1 >= cols)
                                ? 0.f
                                : term_scratch(r, c + 1) - t;
        const float term2 = (ar == geom.frame_rows - 1 || r + 1 >= rows)
                                ? 0.f
                                : term_scratch(r + 1, c) - t;
        const float grad = std::sqrt(term1 * term1 + term2 * term2);
        const float denom = 1.f + step * grad;
        px(r, c) = (px(r, c) + step * term1) / denom;
        py(r, c) = (py(r, c) + step * term2) / denom;
      }
    }
  }
}

Matrix<float> seed_recover_u(const Matrix<float>& v, const Matrix<float>& px,
                             const Matrix<float>& py,
                             const RegionGeometry& geom, float theta) {
  Matrix<float> u(v.rows(), v.cols());
  for (int r = 0; r < v.rows(); ++r)
    for (int c = 0; c < v.cols(); ++c)
      u(r, c) = v(r, c) - theta * seed_div_p_at(px, py, r, c, geom);
  return u;
}

// ---------------------------------------------------------------------------

::testing::AssertionResult bits_equal(const Matrix<float>& got,
                                      const Matrix<float>& want) {
  if (!got.same_shape(want))
    return ::testing::AssertionFailure() << "shape mismatch";
  if (std::memcmp(got.data().data(), want.data().data(),
                  got.size() * sizeof(float)) == 0)
    return ::testing::AssertionSuccess();
  for (std::size_t i = 0; i < got.size(); ++i)
    if (std::memcmp(&got.data()[i], &want.data()[i], sizeof(float)) != 0)
      return ::testing::AssertionFailure()
             << "first bit mismatch at flat index " << i << ": got "
             << got.data()[i] << ", want " << want.data()[i];
  return ::testing::AssertionFailure() << "memcmp/elementwise disagree";
}

// Restores auto-dispatch when a test forced a specific backend.
struct ScopedBackend {
  explicit ScopedBackend(kernels::Backend b) { kernels::force_backend(b); }
  ~ScopedBackend() { kernels::reset_backend(); }
};

struct Geometry {
  const char* name;
  int rows, cols;  // buffer shape
  RegionGeometry geom;
};

// Buffer shapes and windows chosen to hit every border/halo special case:
// degenerate 1-wide frames, widths around the 4- and 8-lane boundaries, and
// offset windows pinned to each frame border (the tiled solver's regime).
std::vector<Geometry> sweep_geometries() {
  return {
      {"pixel", 1, 1, RegionGeometry::full_frame(1, 1)},
      {"row", 1, 17, RegionGeometry::full_frame(1, 17)},
      {"column", 17, 1, RegionGeometry::full_frame(17, 1)},
      {"two_by_two", 2, 2, RegionGeometry::full_frame(2, 2)},
      {"lane_exact", 8, 8, RegionGeometry::full_frame(8, 8)},
      {"odd_width", 13, 19, RegionGeometry::full_frame(13, 19)},
      {"tile_equals_frame", 32, 32, RegionGeometry::full_frame(32, 32)},
      // Offset windows into a 32x45 frame.
      {"interior_halo", 16, 23, {5, 7, 32, 45}},
      {"top_left_tile", 16, 23, {0, 0, 32, 45}},
      {"bottom_right_tile", 16, 23, {16, 22, 32, 45}},
      {"right_edge_strip", 32, 9, {0, 36, 32, 45}},
      {"bottom_edge_strip", 9, 45, {23, 0, 32, 45}},
      // 1-wide windows pinned to the far borders: the (-0.f) halo cases.
      {"one_col_at_right", 10, 1, {3, 44, 32, 45}},
      {"one_row_at_bottom", 1, 10, {31, 3, 32, 45}},
      {"one_pixel_interior", 1, 1, {11, 13, 32, 45}},
      // Narrow tiles and widths straddling the 16-lane boundary: the rows
      // where the AVX-512 masked emission diverges most from the
      // interior/border split (an all-tail row for the other backends).
      {"narrow_tile_2x9", 2, 9, {5, 7, 32, 45}},
      {"narrow_tile_at_right", 2, 9, {5, 36, 32, 45}},
      {"width_15", 7, 15, RegionGeometry::full_frame(7, 15)},
      {"width_16", 7, 16, RegionGeometry::full_frame(7, 16)},
      {"width_17", 7, 17, RegionGeometry::full_frame(7, 17)},
      {"width_33", 5, 33, RegionGeometry::full_frame(5, 33)},
  };
}

struct Fields {
  Matrix<float> px, py, v;
};

Fields random_fields(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  Fields f;
  f.px = random_image(rng, rows, cols, -0.7f, 0.7f);
  f.py = random_image(rng, rows, cols, -0.7f, 0.7f);
  f.v = random_image(rng, rows, cols, -2.f, 2.f);
  return f;
}

TEST(KernelEquivalence, AllBackendsBitExactWithSeedIterate) {
  const ChambolleParams params;
  for (const kernels::Backend b : kernels::available_backends()) {
    const ScopedBackend scoped(b);
    for (const Geometry& g : sweep_geometries()) {
      const Fields f = random_fields(g.rows, g.cols, 1234);
      Matrix<float> ref_px = f.px, ref_py = f.py;
      seed_iterate_region(ref_px, ref_py, f.v, g.geom, params, 3);
      Matrix<float> px = f.px, py = f.py, scratch;
      iterate_region(px, py, f.v, g.geom, params, 3, scratch);
      EXPECT_TRUE(bits_equal(px, ref_px))
          << kernels::backend_name(b) << " px on " << g.name;
      EXPECT_TRUE(bits_equal(py, ref_py))
          << kernels::backend_name(b) << " py on " << g.name;
    }
  }
}

TEST(KernelEquivalence, AllBackendsBitExactWithSeedRecoverU) {
  const float theta = 0.25f;
  for (const kernels::Backend b : kernels::available_backends()) {
    const ScopedBackend scoped(b);
    for (const Geometry& g : sweep_geometries()) {
      const Fields f = random_fields(g.rows, g.cols, 99);
      const Matrix<float> want = seed_recover_u(f.v, f.px, f.py, g.geom, theta);
      const Matrix<float> got = recover_u(f.v, f.px, f.py, g.geom, theta);
      EXPECT_TRUE(bits_equal(got, want))
          << kernels::backend_name(b) << " on " << g.name;
    }
  }
}

TEST(KernelEquivalence, ManyIterationsStayBitExact) {
  // Longer runs compound any divergence; 50 iterations on an awkward width.
  const ChambolleParams params;
  const Fields f = random_fields(21, 37, 7);
  Matrix<float> ref_px = f.px, ref_py = f.py;
  const RegionGeometry geom = RegionGeometry::full_frame(21, 37);
  seed_iterate_region(ref_px, ref_py, f.v, geom, params, 50);
  for (const kernels::Backend b : kernels::available_backends()) {
    const ScopedBackend scoped(b);
    Matrix<float> px = f.px, py = f.py, scratch;
    iterate_region(px, py, f.v, geom, params, 50, scratch);
    EXPECT_TRUE(bits_equal(px, ref_px)) << kernels::backend_name(b);
    EXPECT_TRUE(bits_equal(py, ref_py)) << kernels::backend_name(b);
  }
}

TEST(KernelEquivalence, ResidualVariantLeavesDualsBitExact) {
  // The fused residual plumbing (last_iter_max_dp) must be a pure observer:
  // requesting the residual may not change a single bit of the px/py
  // trajectory on any backend or geometry.
  const ChambolleParams params;
  for (const kernels::Backend b : kernels::available_backends()) {
    const ScopedBackend scoped(b);
    for (const Geometry& g : sweep_geometries()) {
      const Fields f = random_fields(g.rows, g.cols, 20260807);
      Matrix<float> plain_px = f.px, plain_py = f.py, scratch;
      iterate_region(plain_px, plain_py, f.v, g.geom, params, 4, scratch);
      Matrix<float> px = f.px, py = f.py;
      float residual = -1.f;
      iterate_region(px, py, f.v, g.geom, params, 4, scratch, &residual);
      EXPECT_TRUE(bits_equal(px, plain_px))
          << kernels::backend_name(b) << " px on " << g.name;
      EXPECT_TRUE(bits_equal(py, plain_py))
          << kernels::backend_name(b) << " py on " << g.name;
      EXPECT_TRUE(std::isfinite(residual)) << g.name;
      EXPECT_GE(residual, 0.f) << g.name;
    }
  }
}

TEST(KernelEquivalence, ResidualIsLastIterationMaxDpOnEveryBackend) {
  // Semantic pin: the residual is max(|px'-px|, |py'-py|) over the FINAL
  // iteration only.  Recompute it by hand with the seed loop (iterations-1
  // steps, snapshot, one more step, elementwise max) and demand exact float
  // equality from every backend — the max reduction is order-invariant, so
  // SIMD lane order cannot excuse a different answer.
  const ChambolleParams params;
  const int iterations = 5;
  for (const Geometry& g : sweep_geometries()) {
    const Fields f = random_fields(g.rows, g.cols, 424242);
    Matrix<float> ref_px = f.px, ref_py = f.py;
    seed_iterate_region(ref_px, ref_py, f.v, g.geom, params, iterations - 1);
    const Matrix<float> before_px = ref_px, before_py = ref_py;
    seed_iterate_region(ref_px, ref_py, f.v, g.geom, params, 1);
    float want = 0.f;
    for (std::size_t i = 0; i < ref_px.size(); ++i) {
      want = std::max(want, std::abs(ref_px.data()[i] - before_px.data()[i]));
      want = std::max(want, std::abs(ref_py.data()[i] - before_py.data()[i]));
    }
    for (const kernels::Backend b : kernels::available_backends()) {
      const ScopedBackend scoped(b);
      Matrix<float> px = f.px, py = f.py, scratch;
      float residual = -1.f;
      iterate_region(px, py, f.v, g.geom, params, iterations, scratch,
                     &residual);
      EXPECT_EQ(residual, want) << kernels::backend_name(b) << " on " << g.name;
    }
  }
}

TEST(KernelEquivalence, ScratchReuseAcrossShapesIsSafe) {
  // One scratch buffer threaded through solves of different widths — the
  // tiled solver's per-lane reuse pattern.
  const ChambolleParams params;
  Matrix<float> scratch;
  for (const Geometry& g : sweep_geometries()) {
    const Fields f = random_fields(g.rows, g.cols, 5);
    Matrix<float> ref_px = f.px, ref_py = f.py;
    seed_iterate_region(ref_px, ref_py, f.v, g.geom, params, 2);
    Matrix<float> px = f.px, py = f.py;
    iterate_region(px, py, f.v, g.geom, params, 2, scratch);
    EXPECT_TRUE(bits_equal(px, ref_px)) << g.name;
    EXPECT_TRUE(bits_equal(py, ref_py)) << g.name;
  }
}

TEST(KernelDispatch, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(kernels::backend_available(kernels::Backend::kScalar));
  const std::vector<kernels::Backend> avail = kernels::available_backends();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.back(), kernels::Backend::kScalar);
}

TEST(KernelDispatch, ActiveBackendIsAvailableAndOpsMatch) {
  const kernels::Backend b = kernels::active_backend();
  EXPECT_TRUE(kernels::backend_available(b));
  EXPECT_STREQ(kernels::ops().name, kernels::backend_name(b));
  EXPECT_GE(kernels::ops().lanes, 1);
}

TEST(KernelDispatch, ForceAndResetRoundTrip) {
  kernels::force_backend(kernels::Backend::kScalar);
  EXPECT_EQ(kernels::active_backend(), kernels::Backend::kScalar);
  EXPECT_STREQ(kernels::ops().name, "scalar");
  kernels::reset_backend();
  // Re-resolved from environment + dispatch; must land on something usable.
  EXPECT_TRUE(kernels::backend_available(kernels::active_backend()));
}

TEST(KernelDispatch, UnavailableBackendThrows) {
  for (const kernels::Backend b :
       {kernels::Backend::kScalar, kernels::Backend::kSse2,
        kernels::Backend::kNeon, kernels::Backend::kAvx2,
        kernels::Backend::kAvx512}) {
    if (kernels::backend_available(b)) continue;
    EXPECT_THROW((void)kernels::ops_for(b), std::invalid_argument);
    EXPECT_THROW(kernels::force_backend(b), std::invalid_argument);
  }
}

TEST(KernelDispatch, ParseBackendNames) {
  using kernels::Backend;
  EXPECT_EQ(kernels::parse_backend("scalar"), Backend::kScalar);
  EXPECT_EQ(kernels::parse_backend("sse2"), Backend::kSse2);
  EXPECT_EQ(kernels::parse_backend("neon"), Backend::kNeon);
  EXPECT_EQ(kernels::parse_backend("avx2"), Backend::kAvx2);
  EXPECT_EQ(kernels::parse_backend("avx512"), Backend::kAvx512);
  EXPECT_FALSE(kernels::parse_backend("auto").has_value());
  EXPECT_FALSE(kernels::parse_backend("avx-512").has_value());
  for (const kernels::Backend b :
       {Backend::kScalar, Backend::kSse2, Backend::kNeon, Backend::kAvx2,
        Backend::kAvx512})
    EXPECT_EQ(kernels::parse_backend(kernels::backend_name(b)), b);
}

TEST(KernelDispatch, Avx512PreferredOverAvx2WhenAvailable) {
  // The dispatch-preference contract: whenever both x86 wide backends are
  // usable, auto-dispatch must pick the 16-lane one.
  const std::vector<kernels::Backend> avail = kernels::available_backends();
  if (!kernels::backend_available(kernels::Backend::kAvx512)) GTEST_SKIP();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), kernels::Backend::kAvx512);
}

// Saves CHAMBOLLE_KERNEL around a test that mutates it (the scalar-pinned
// ctest job depends on the value surviving).
struct ScopedKernelEnv {
  ScopedKernelEnv() {
    const char* cur = std::getenv("CHAMBOLLE_KERNEL");
    saved = cur != nullptr ? std::optional<std::string>(cur) : std::nullopt;
  }
  ~ScopedKernelEnv() {
    if (saved.has_value())
      ::setenv("CHAMBOLLE_KERNEL", saved->c_str(), 1);
    else
      ::unsetenv("CHAMBOLLE_KERNEL");
    kernels::reset_backend();
  }
  std::optional<std::string> saved;
};

TEST(KernelDispatch, RejectsUnknownEnvironmentOverride) {
  // A typo'd CHAMBOLLE_KERNEL must be a hard error naming the usable
  // backends, never a silent fall-through to dispatch.
  const ScopedKernelEnv guard;
  ::setenv("CHAMBOLLE_KERNEL", "avx1024", 1);
  kernels::reset_backend();
  try {
    (void)kernels::active_backend();
    FAIL() << "unknown CHAMBOLLE_KERNEL did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("avx1024"), std::string::npos) << msg;
    EXPECT_NE(msg.find("scalar"), std::string::npos)
        << "error must list available backends: " << msg;
  }
  // The failed resolution must not be cached: restoring the environment
  // (the guard) must make the next resolution succeed.
}

TEST(KernelDispatch, RejectsUnavailableEnvironmentOverride) {
  // A known-but-unusable name (neon on x86, avx512 on an old core) is the
  // same hard error, with a distinguishable message.
  kernels::Backend missing;
  if (!kernels::backend_available(kernels::Backend::kNeon))
    missing = kernels::Backend::kNeon;
  else if (!kernels::backend_available(kernels::Backend::kAvx512))
    missing = kernels::Backend::kAvx512;
  else
    GTEST_SKIP() << "every named backend is available here";
  const ScopedKernelEnv guard;
  ::setenv("CHAMBOLLE_KERNEL", kernels::backend_name(missing), 1);
  kernels::reset_backend();
  try {
    (void)kernels::active_backend();
    FAIL() << "unavailable CHAMBOLLE_KERNEL did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("not available"), std::string::npos)
        << e.what();
  }
}

TEST(KernelDispatch, ForceBackendByName) {
  kernels::force_backend("scalar");
  EXPECT_EQ(kernels::active_backend(), kernels::Backend::kScalar);
  kernels::reset_backend();
  EXPECT_THROW(kernels::force_backend("vax512"), std::invalid_argument);
  // "auto" is not a backend; resetting is the API for auto-dispatch.
  EXPECT_THROW(kernels::force_backend("auto"), std::invalid_argument);
  EXPECT_TRUE(kernels::backend_available(kernels::active_backend()));
}

TEST(KernelDispatch, HonorsEnvironmentOverride) {
  // Meaningful under the CHAMBOLLE_KERNEL=scalar ctest job; a no-op
  // assertion otherwise.
  const char* env = std::getenv("CHAMBOLLE_KERNEL");
  if (env == nullptr || std::string(env) == "auto") GTEST_SKIP();
  const auto want = kernels::parse_backend(env);
  ASSERT_TRUE(want.has_value()) << "unparsable CHAMBOLLE_KERNEL: " << env;
  if (!kernels::backend_available(*want)) GTEST_SKIP();
  kernels::reset_backend();
  EXPECT_EQ(kernels::active_backend(), *want);
}

TEST(KernelScalarOps, DivPMatchesSeedBranchOrder) {
  // Left (top) rule wins over right (bottom) on 1-wide frames.
  EXPECT_EQ(kernels::div_p(2.f, 9.f, 3.f, 9.f, true, true, true, true), 5.f);
  // Interior: forward-looking one-sided differences.
  EXPECT_EQ(kernels::div_p(2.f, 0.5f, 3.f, 1.f, false, false, false, false),
            3.5f);
  // Far borders negate the west/north neighbor.
  EXPECT_EQ(kernels::div_p(2.f, 0.5f, 3.f, 1.f, false, true, false, true),
            -1.5f);
}

TEST(KernelAllocationReuse, RecoverUIntoReusesCorrectlyShapedOutput) {
  const Fields f = random_fields(12, 18, 3);
  const RegionGeometry geom = RegionGeometry::full_frame(12, 18);
  Matrix<float> out(12, 18);
  const float* before = out.data().data();
  recover_u_into(f.v, f.px, f.py, geom, 0.25f, out);
  EXPECT_EQ(out.data().data(), before) << "reallocated a matching buffer";
  EXPECT_TRUE(bits_equal(out, seed_recover_u(f.v, f.px, f.py, geom, 0.25f)));
  // Wrong shape: resized, still correct.
  Matrix<float> wrong(3, 4);
  recover_u_into(f.v, f.px, f.py, geom, 0.25f, wrong);
  EXPECT_TRUE(bits_equal(wrong, seed_recover_u(f.v, f.px, f.py, geom, 0.25f)));
}

TEST(KernelAllocationReuse, SolveIntoReusesBuffersAndMatchesSolve) {
  Rng rng(17);
  const Matrix<float> v = random_image(rng, 14, 22, -1.f, 1.f);
  ChambolleParams params;
  params.iterations = 20;
  const ChambolleResult want = solve(v, params);
  ChambolleResult out;
  solve_into(v, params, out);
  EXPECT_TRUE(bits_equal(out.u, want.u));
  EXPECT_TRUE(bits_equal(out.p.px, want.p.px));
  EXPECT_TRUE(bits_equal(out.p.py, want.p.py));
  // Steady state: a second solve into the same result reuses every buffer.
  const float* u_buf = out.u.data().data();
  const float* px_buf = out.p.px.data().data();
  const float* py_buf = out.p.py.data().data();
  solve_into(v, params, out);
  EXPECT_EQ(out.u.data().data(), u_buf);
  EXPECT_EQ(out.p.px.data().data(), px_buf);
  EXPECT_EQ(out.p.py.data().data(), py_buf);
  EXPECT_TRUE(bits_equal(out.u, want.u));
}

}  // namespace
}  // namespace chambolle
