#include "workloads/sequence.hpp"

#include <gtest/gtest.h>

#include "tvl1/warp.hpp"
#include "workloads/metrics.hpp"

namespace chambolle::workloads {
namespace {

TEST(Sequence, Validation) {
  SequenceParams p;
  p.frames = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.kind = MotionKind::kZoom;
  p.rate = -1.5f;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Sequence, ShapeAndCounts) {
  SequenceParams p;
  p.frames = 5;
  const VideoSequence seq = make_sequence(32, 48, p);
  ASSERT_EQ(seq.frames.size(), 5u);
  ASSERT_EQ(seq.truth.size(), 4u);
  for (const Image& f : seq.frames) {
    EXPECT_EQ(f.rows(), 32);
    EXPECT_EQ(f.cols(), 48);
  }
}

TEST(Sequence, FirstFrameIsTheBaseTexture) {
  SequenceParams p;
  const VideoSequence seq = make_sequence(24, 24, p);
  EXPECT_EQ(seq.frames[0], smooth_texture(24, 24, p.seed));
}

// Consistency across the whole sequence: warping frame k+1 back by the
// per-pair ground truth recovers frame k, for every pair and motion kind.
class SequenceConsistency : public ::testing::TestWithParam<MotionKind> {};

TEST_P(SequenceConsistency, EveryPairWarpsBack) {
  SequenceParams p;
  p.kind = GetParam();
  p.frames = 5;
  p.rate_x = 1.2f;
  p.rate_y = -0.7f;
  p.rate = 0.03f;
  const VideoSequence seq = make_sequence(48, 48, p);
  for (std::size_t k = 0; k + 1 < seq.frames.size(); ++k) {
    const Image back = tvl1::warp(seq.frames[k + 1], seq.truth[k]);
    double max_err = 0;
    for (int r = 10; r < 38; ++r)
      for (int c = 10; c < 38; ++c)
        max_err = std::max(max_err,
                           std::abs(static_cast<double>(back(r, c)) -
                                    seq.frames[k](r, c)));
    EXPECT_LT(max_err, 3.0) << "pair " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, SequenceConsistency,
                         ::testing::Values(MotionKind::kPan,
                                           MotionKind::kRotate,
                                           MotionKind::kZoom));

TEST(Sequence, PanTruthIsConstantRate) {
  SequenceParams p;
  p.rate_x = 2.f;
  p.rate_y = -1.f;
  const VideoSequence seq = make_sequence(16, 16, p);
  for (const FlowField& f : seq.truth)
    for (int r = 0; r < 16; ++r)
      for (int c = 0; c < 16; ++c) {
        EXPECT_FLOAT_EQ(f.u1(r, c), 2.f);
        EXPECT_FLOAT_EQ(f.u2(r, c), -1.f);
      }
}

TEST(Sequence, RotationStepFlowIsSharedAcrossPairs) {
  SequenceParams p;
  p.kind = MotionKind::kRotate;
  p.frames = 4;
  const VideoSequence seq = make_sequence(20, 20, p);
  EXPECT_EQ(seq.truth[0].u1, seq.truth[1].u1);
  EXPECT_EQ(seq.truth[1].u2, seq.truth[2].u2);
}

TEST(Sequence, FramesActuallyMove) {
  SequenceParams p;
  const VideoSequence seq = make_sequence(32, 32, p);
  EXPECT_GT(rms_diff(seq.frames[0], seq.frames[1]), 1.0);
  EXPECT_GT(rms_diff(seq.frames[0], seq.frames.back()), 1.0);
}

}  // namespace
}  // namespace chambolle::workloads
