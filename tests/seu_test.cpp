// seu_test.cpp — soft-error behaviour of the fixed-point state (see
// bench/seu_resilience.cpp for the study; these are the assertable facts).
#include <gtest/gtest.h>

#include "chambolle/fixed_solver.hpp"
#include "common/rng.hpp"

namespace chambolle {
namespace {

struct FlipOutcome {
  Matrix<std::int32_t> u_clean;
  Matrix<std::int32_t> u_hit;
  Matrix<std::int32_t> px_clean;
  Matrix<std::int32_t> px_hit;
};

FlipOutcome run_flip(int n, int pre, int post, bool flip_v, int bit) {
  Rng rng(31);
  const Matrix<float> v = random_image(rng, n, n, -2.f, 2.f);
  const FixedParams fp = FixedParams::from(ChambolleParams{});
  const RegionGeometry geom = RegionGeometry::full_frame(n, n);
  Matrix<std::int32_t> scratch;

  FixedState clean = make_fixed_state(v);
  fixed_iterate_region(clean, geom, fp, pre + post, scratch);

  FixedState hit = make_fixed_state(v);
  fixed_iterate_region(hit, geom, fp, pre, scratch);
  if (flip_v)
    hit.v(n / 2, n / 2) =
        fx::saturate_bits(hit.v(n / 2, n / 2) ^ (1 << bit), fx::kVBits);
  else
    hit.px(n / 2, n / 2) =
        fx::saturate_bits(hit.px(n / 2, n / 2) ^ (1 << bit), fx::kPBits);
  fixed_iterate_region(hit, geom, fp, post, scratch);

  FlipOutcome out;
  out.u_clean = fixed_recover_u(clean, geom, fp.theta_q);
  out.u_hit = fixed_recover_u(hit, geom, fp.theta_q);
  out.px_clean = clean.px;
  out.px_hit = hit.px;
  return out;
}

double max_du(const FlipOutcome& o) {
  double m = 0;
  for (std::size_t i = 0; i < o.u_clean.size(); ++i)
    m = std::max(m, std::abs(static_cast<double>(o.u_hit.data()[i]) -
                             o.u_clean.data()[i]) /
                        fx::kOne);
  return m;
}

TEST(SoftError, DualFlipDecaysWithRemainingIterations) {
  const double after1 = max_du(run_flip(32, 10, 1, false, 8));
  const double after40 = max_du(run_flip(32, 10, 40, false, 8));
  EXPECT_GT(after1, 0.0);          // the flip did something
  EXPECT_LT(after40, after1);      // ...and it decays
  EXPECT_LT(after40, 0.05);        // ...to the quantization floor
}

TEST(SoftError, DualFlipNeverBreaksTheDualBound) {
  const FlipOutcome o = run_flip(32, 10, 3, false, 8);
  for (std::int32_t p : o.px_hit) {
    EXPECT_LE(p, 255);
    EXPECT_GE(p, -256);
  }
}

TEST(SoftError, InputFlipPersists) {
  // A flipped v bit keeps re-entering the iteration: the deviation does NOT
  // decay to zero.
  const double after40 = max_du(run_flip(32, 10, 40, true, 12));
  EXPECT_GT(after40, 0.05);
}

TEST(SoftError, DamageIsSpatiallyConfinedByThePropagationSpeed) {
  // Information moves one pixel per iteration (the Figure 1 stencil), so
  // `post` iterations after the flip the deviation cannot have reached
  // pixels farther than `post` (Chebyshev) from the flip site.
  const int n = 48, post = 6;
  const FlipOutcome o = run_flip(n, 8, post, true, 12);
  const int mid = n / 2;
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c) {
      const int dist = std::max(std::abs(r - mid), std::abs(c - mid));
      if (dist > post + 1) {
        EXPECT_EQ(o.u_hit(r, c), o.u_clean(r, c))
            << "leak at distance " << dist << " (" << r << "," << c << ")";
      }
    }
}

TEST(SoftError, LowBitsHurtLessThanHighBits) {
  const double lsb = max_du(run_flip(32, 10, 5, true, 0));
  const double msb = max_du(run_flip(32, 10, 5, true, 12));
  EXPECT_LT(lsb, msb);
}

}  // namespace
}  // namespace chambolle
