#include "hw/pe_array.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hw/pe.hpp"

namespace chambolle::hw {
namespace {

FixedParams default_fp(int iterations = 1) {
  ChambolleParams p;
  p.iterations = iterations;
  return FixedParams::from(p);
}

// Loads a float field into a bank (v quantized, p zero).
FixedState load_bank(BramBank& bank, const Matrix<float>& v) {
  FixedState state = make_fixed_state(v);
  for (int r = 0; r < v.rows(); ++r)
    for (int c = 0; c < v.cols(); ++c)
      bank.load_fields(r, c, {state.v(r, c), 0, 0});
  return state;
}

ArchConfig small_config() {
  ArchConfig cfg;
  cfg.tile_rows = 48;
  cfg.tile_cols = 48;
  cfg.merge_iterations = 2;
  return cfg;
}

TEST(PeT, ForwardingFlipFlopHoldsPreviousColumn) {
  PeT pe;
  const FixedParams fp = default_fp();
  // Column 0: l_px comes from the cleared FF (0).
  const PeT::Out o0 =
      pe.step({0, 100, 0}, 0, false, false, false, false, fp);
  EXPECT_EQ(o0.div_p, 100);  // c_px - 0
  // Column 1: l_px must be column 0's c_px.
  const PeT::Out o1 =
      pe.step({0, 30, 0}, 0, false, false, false, false, fp);
  EXPECT_EQ(o1.div_p, 30 - 100);
  pe.reset_row();
  const PeT::Out o2 =
      pe.step({0, 30, 0}, 0, false, false, false, false, fp);
  EXPECT_EQ(o2.div_p, 30);
}

TEST(PeT, ComputesUAlongsideTerm) {
  PeT pe;
  const FixedParams fp = default_fp();
  const PeT::Out o = pe.step({fx::to_fixed(2.0), fx::to_fixed(0.5), 0}, 0,
                             true, false, true, false, fp);
  // div_p = c_px = 0.5; u = v - theta*div_p = 2 - 0.25*0.5 = 1.875.
  EXPECT_EQ(o.div_p, fx::to_fixed(0.5));
  EXPECT_EQ(o.u, fx::to_fixed(1.875));
}

// The central simulator correctness theorem: the cycle-level PE array with
// all its forwarding, BRAM-Term bridging and deferred updates produces
// BIT-IDENTICAL state to the plain software fixed-point solver.
struct ArrayCase {
  int rows, cols, iterations;
  int frame_rows, frame_cols, row0, col0;  // window placement
};

class PeArrayMatchesFixedSolver : public ::testing::TestWithParam<ArrayCase> {};

TEST_P(PeArrayMatchesFixedSolver, BitExact) {
  const ArrayCase& ac = GetParam();
  Rng rng(static_cast<std::uint64_t>(ac.rows * 100 + ac.cols));
  const Matrix<float> v = random_image(rng, ac.rows, ac.cols, -3.f, 3.f);
  const RegionGeometry geom{ac.row0, ac.col0, ac.frame_rows, ac.frame_cols};
  const FixedParams fp = default_fp(ac.iterations);

  // Reference: software fixed solver on the same window.
  FixedState ref = make_fixed_state(v);
  Matrix<std::int32_t> scratch;
  fixed_iterate_region(ref, geom, fp, ac.iterations, scratch);

  // Simulator.
  ArchConfig cfg = small_config();
  cfg.tile_rows = std::max(cfg.tile_rows, ac.rows);
  cfg.tile_cols = std::max(((ac.cols + 7) / 8) * 8, cfg.tile_cols);
  BramBank bank(cfg.tile_rows, cfg.tile_cols, cfg.num_brams);
  const FixedState init = load_bank(bank, v);
  (void)init;
  PeArray array(cfg);
  array.run(bank, ac.rows, ac.cols, geom, fp, ac.iterations);

  for (int r = 0; r < ac.rows; ++r)
    for (int c = 0; c < ac.cols; ++c) {
      const fx::BramFields f = bank.peek_fields(r, c);
      ASSERT_EQ(f.px, ref.px(r, c)) << "px at " << r << "," << c;
      ASSERT_EQ(f.py, ref.py(r, c)) << "py at " << r << "," << c;
      ASSERT_EQ(f.v, ref.v(r, c)) << "v at " << r << "," << c;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PeArrayMatchesFixedSolver,
    ::testing::Values(
        // Full-frame windows of assorted shapes.
        ArrayCase{16, 16, 3, 16, 16, 0, 0},
        ArrayCase{7, 16, 2, 7, 16, 0, 0},     // exactly one region
        ArrayCase{8, 16, 2, 8, 16, 0, 0},     // one region + 1-row tail
        ArrayCase{21, 24, 2, 21, 24, 0, 0},   // rows % lanes == 0
        ArrayCase{23, 24, 2, 23, 24, 0, 0},   // partial last region
        ArrayCase{1, 16, 3, 1, 16, 0, 0},     // single row
        ArrayCase{16, 1, 3, 16, 1, 0, 0},     // single column
        ArrayCase{2, 2, 5, 2, 2, 0, 0},
        // Interior windows of a larger frame (tile semantics with halo).
        ArrayCase{20, 24, 2, 64, 64, 10, 12},
        ArrayCase{20, 24, 2, 64, 64, 0, 40},   // touches top & right borders
        ArrayCase{20, 24, 2, 64, 64, 44, 0},   // touches bottom & left
        ArrayCase{48, 48, 4, 48, 48, 0, 0}));

TEST(PeArray, CycleCountFormula) {
  // cycles = iterations * (regions + 1) * (cols + 1 + fill).
  ArchConfig cfg = small_config();
  BramBank bank(cfg.tile_rows, cfg.tile_cols, cfg.num_brams);
  Rng rng(1);
  load_bank(bank, random_image(rng, 21, 40, -1.f, 1.f));
  PeArray array(cfg);
  const RegionGeometry geom = RegionGeometry::full_frame(21, 40);
  array.run(bank, 21, 40, geom, default_fp(), 3);
  const std::uint64_t regions = 3;  // ceil(21/7)
  EXPECT_EQ(array.stats().cycles, 3u * (regions + 1) * (40 + 1 + 18));
}

TEST(PeArray, ElementAccounting) {
  ArchConfig cfg = small_config();
  BramBank bank(cfg.tile_rows, cfg.tile_cols, cfg.num_brams);
  Rng rng(2);
  load_bank(bank, random_image(rng, 16, 24, -1.f, 1.f));
  PeArray array(cfg);
  array.run(bank, 16, 24, RegionGeometry::full_frame(16, 24), default_fp(), 2);
  EXPECT_EQ(array.stats().elements_updated, 2u * 16u * 24u);
}

TEST(PeArray, DataReuseBoundsBramTraffic) {
  // Section V-B: per element processed, the array performs ~1 packed-word
  // read (plus 1/region-row for the row above) instead of 4 operand reads.
  ArchConfig cfg = small_config();
  BramBank bank(cfg.tile_rows, cfg.tile_cols, cfg.num_brams);
  Rng rng(3);
  const int rows = 28, cols = 32;
  load_bank(bank, random_image(rng, rows, cols, -1.f, 1.f));
  PeArray array(cfg);
  array.run(bank, rows, cols, RegionGeometry::full_frame(rows, cols),
            default_fp(), 1);
  const std::uint64_t elements = static_cast<std::uint64_t>(rows) * cols;
  // 4 regions: lane reads = 28*32; above-row reads = 3*32; flush re-reads the
  // last row = 32.  Total must stay well under 2 reads/element — and far
  // under the 4 reads/element of a reuse-free design.
  EXPECT_EQ(array.stats().bram_word_reads, elements + 3u * 32u + 32u);
  EXPECT_LT(static_cast<double>(array.stats().bram_word_reads),
            2.0 * static_cast<double>(elements));
  // Every element written exactly once per iteration.
  EXPECT_EQ(array.stats().bram_word_writes, elements);
}

// ArchConfig::functional_mode must be indistinguishable from the cycle-level
// ladder: same bank bits AND same statistics, window by window.
TEST(PeArray, FunctionalModeBitAndStatIdentical) {
  const ArrayCase cases[] = {
      ArrayCase{16, 16, 3, 16, 16, 0, 0},
      ArrayCase{23, 24, 2, 23, 24, 0, 0},   // partial last region
      ArrayCase{1, 16, 2, 1, 16, 0, 0},     // single row
      ArrayCase{16, 1, 2, 16, 1, 0, 0},     // single column
      ArrayCase{20, 24, 2, 64, 64, 10, 12}, // interior window (halo rules)
      ArrayCase{20, 24, 2, 64, 64, 44, 0},  // bottom & left borders
  };
  for (const ArrayCase& ac : cases) {
    Rng rng(static_cast<std::uint64_t>(ac.rows * 1000 + ac.cols));
    const Matrix<float> v = random_image(rng, ac.rows, ac.cols, -3.f, 3.f);
    const RegionGeometry geom{ac.row0, ac.col0, ac.frame_rows, ac.frame_cols};
    const FixedParams fp = default_fp(ac.iterations);

    ArchConfig cfg = small_config();
    cfg.tile_rows = std::max(cfg.tile_rows, ac.rows);
    cfg.tile_cols = std::max(((ac.cols + 7) / 8) * 8, cfg.tile_cols);

    BramBank bank_cycle(cfg.tile_rows, cfg.tile_cols, cfg.num_brams);
    load_bank(bank_cycle, v);
    PeArray cycle(cfg);
    cycle.run(bank_cycle, ac.rows, ac.cols, geom, fp, ac.iterations);

    cfg.functional_mode = true;
    BramBank bank_func(cfg.tile_rows, cfg.tile_cols, cfg.num_brams);
    load_bank(bank_func, v);
    PeArray func(cfg);
    func.run(bank_func, ac.rows, ac.cols, geom, fp, ac.iterations);

    for (int r = 0; r < ac.rows; ++r)
      for (int c = 0; c < ac.cols; ++c) {
        const fx::BramFields a = bank_cycle.peek_fields(r, c);
        const fx::BramFields b = bank_func.peek_fields(r, c);
        ASSERT_EQ(a.v, b.v) << "v at " << r << "," << c;
        ASSERT_EQ(a.px, b.px) << "px at " << r << "," << c;
        ASSERT_EQ(a.py, b.py) << "py at " << r << "," << c;
      }
    EXPECT_EQ(cycle.stats().cycles, func.stats().cycles);
    EXPECT_EQ(cycle.stats().elements_updated, func.stats().elements_updated);
    EXPECT_EQ(cycle.stats().bram_word_reads, func.stats().bram_word_reads);
    EXPECT_EQ(cycle.stats().bram_word_writes, func.stats().bram_word_writes);
    EXPECT_EQ(cycle.stats().term_bram_reads, func.stats().term_bram_reads);
    EXPECT_EQ(cycle.stats().term_bram_writes, func.stats().term_bram_writes);
    // The functional bank must carry zero counted accesses of its own: all
    // traffic is charged analytically, the staging uses uncounted ports.
    EXPECT_EQ(bank_func.total_reads(), 0u);
    EXPECT_EQ(bank_func.total_writes(), 0u);
  }
}

TEST(PeArray, RejectsBadGeometry) {
  ArchConfig cfg = small_config();
  BramBank bank(cfg.tile_rows, cfg.tile_cols, cfg.num_brams);
  PeArray array(cfg);
  EXPECT_THROW(array.run(bank, 100, 10, RegionGeometry::full_frame(100, 10),
                         default_fp(), 1),
               std::invalid_argument);
  EXPECT_THROW(array.run(bank, 10, 10, RegionGeometry{40, 40, 48, 48},
                         default_fp(), 1),
               std::invalid_argument);
}

TEST(ArchConfig, Validation) {
  ArchConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.num_brams = 7;  // must be pe_lanes + 1
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.tile_rows = 90;  // not a multiple of 8: rows no longer stripe evenly
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.merge_iterations = 60;  // exceeds half the tile
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace chambolle::hw
