#include "common/flow_color.hpp"

#include <gtest/gtest.h>

namespace chambolle {
namespace {

TEST(FlowColor, ZeroFlowRendersWhite) {
  FlowField flow(4, 4);
  const io::RgbImage img = colorize_flow(flow);
  // Zero magnitude => zero saturation => white at full value.
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(img.pixels(r, c)[0], 255);
      EXPECT_EQ(img.pixels(r, c)[1], 255);
      EXPECT_EQ(img.pixels(r, c)[2], 255);
    }
}

TEST(FlowColor, OppositeDirectionsGetDifferentColors) {
  FlowField flow(1, 2);
  flow.u1(0, 0) = 1.f;
  flow.u1(0, 1) = -1.f;
  const io::RgbImage img = colorize_flow(flow);
  EXPECT_NE(img.pixels(0, 0), img.pixels(0, 1));
}

TEST(FlowColor, MagnitudeControlsSaturation) {
  FlowField flow(1, 2);
  flow.u1(0, 0) = 0.1f;
  flow.u1(0, 1) = 1.f;
  const io::RgbImage img = colorize_flow(flow, 1.f);
  // The weaker vector is closer to white: its min channel is higher.
  const auto min3 = [](const std::array<unsigned char, 3>& p) {
    return std::min({p[0], p[1], p[2]});
  };
  EXPECT_GT(min3(img.pixels(0, 0)), min3(img.pixels(0, 1)));
}

TEST(FlowColor, MaxMagnitude) {
  FlowField flow(2, 2);
  flow.u1(1, 1) = 3.f;
  flow.u2(1, 1) = 4.f;
  EXPECT_FLOAT_EQ(max_flow_magnitude(flow), 5.f);
}

TEST(FlowColor, OutputShapeMatchesInput) {
  FlowField flow(5, 7);
  const io::RgbImage img = colorize_flow(flow);
  EXPECT_EQ(img.rows(), 5);
  EXPECT_EQ(img.cols(), 7);
}

}  // namespace
}  // namespace chambolle
