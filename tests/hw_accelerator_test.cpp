#include "hw/accelerator.hpp"

#include <gtest/gtest.h>

#include "chambolle/solver.hpp"
#include "common/rng.hpp"

namespace chambolle::hw {
namespace {

ArchConfig small_config() {
  ArchConfig cfg;
  cfg.tile_rows = 40;
  cfg.tile_cols = 40;
  cfg.merge_iterations = 4;
  return cfg;
}

ChambolleParams params_with(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

FlowField random_v(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  FlowField v(rows, cols);
  v.u1 = random_image(rng, rows, cols, -3.f, 3.f);
  v.u2 = random_image(rng, rows, cols, -3.f, 3.f);
  return v;
}

// End-to-end numerical equivalence: the full multi-tile, multi-pass,
// two-engine accelerator equals the plain software fixed-point solver.
struct AccelCase {
  int rows, cols, iterations;
};

class AcceleratorMatchesFixedSolver
    : public ::testing::TestWithParam<AccelCase> {};

TEST_P(AcceleratorMatchesFixedSolver, BitExact) {
  const AccelCase& ac = GetParam();
  const FlowField v = random_v(ac.rows, ac.cols, 100 + ac.rows);
  const ChambolleParams params = params_with(ac.iterations);

  ChambolleAccelerator accel(small_config());
  const auto result = accel.solve(v, params);

  const ChambolleResult ref1 = solve_fixed(v.u1, params);
  const ChambolleResult ref2 = solve_fixed(v.u2, params);
  EXPECT_EQ(result.u.u1, ref1.u);
  EXPECT_EQ(result.u.u2, ref2.u);
  EXPECT_EQ(result.dual_u1.u1, ref1.p.px);
  EXPECT_EQ(result.dual_u1.u2, ref1.p.py);
  EXPECT_EQ(result.dual_u2.u1, ref2.p.px);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AcceleratorMatchesFixedSolver,
    ::testing::Values(AccelCase{32, 32, 8},     // single tile
                      AccelCase{64, 64, 8},     // 2x2-ish tiling
                      AccelCase{64, 64, 10},    // remainder pass (10 = 4+4+2)
                      AccelCase{96, 56, 12},    // asymmetric tiling
                      AccelCase{41, 97, 6}));   // odd sizes

TEST(Accelerator, AnalyticCycleModelMatchesSimulator) {
  for (const AccelCase ac :
       {AccelCase{64, 64, 8}, AccelCase{96, 56, 10}, AccelCase{41, 97, 6}}) {
    ChambolleAccelerator accel(small_config());
    const auto result = accel.solve(random_v(ac.rows, ac.cols, 7),
                                    params_with(ac.iterations));
    EXPECT_EQ(result.stats.total_cycles,
              accel.estimate_frame_cycles(ac.rows, ac.cols, ac.iterations))
        << ac.rows << "x" << ac.cols;
  }
}

TEST(Accelerator, FpsDerivesFromClockAndCycles) {
  ChambolleAccelerator accel(small_config());
  const auto result = accel.solve(random_v(48, 48, 9), params_with(8));
  const double expected =
      221e6 / static_cast<double>(result.stats.total_cycles);
  EXPECT_NEAR(result.fps, expected, 1e-9 * expected);
}

TEST(Accelerator, TwoWindowsBeatOneWindow) {
  ArchConfig one = small_config();
  one.num_sliding_windows = 1;
  ArchConfig two = small_config();
  two.num_sliding_windows = 2;
  const std::uint64_t c1 =
      ChambolleAccelerator(one).estimate_frame_cycles(128, 128, 16);
  const std::uint64_t c2 =
      ChambolleAccelerator(two).estimate_frame_cycles(128, 128, 16);
  EXPECT_LT(c2, c1);
  EXPECT_GT(static_cast<double>(c1) / c2, 1.6);  // near-linear scaling
}

TEST(Accelerator, PassCountAndTileAccounting) {
  ChambolleAccelerator accel(small_config());
  const auto result = accel.solve(random_v(64, 64, 11), params_with(10));
  EXPECT_EQ(result.stats.passes, 3);  // 4 + 4 + 2
  EXPECT_GT(result.stats.tiles_per_pass, 1u);
  EXPECT_GT(result.stats.tiling_redundancy, 0.0);
  // Element updates = buffer elements * iterations * 2 components.
  EXPECT_GT(result.stats.elements_updated,
            2u * 64u * 64u * 10u);  // more than useful work (halo redundancy)
}

TEST(Accelerator, LargerFramesAreMoreEfficientPerPixel) {
  // Fixed halo per tile costs relatively less on larger frames — the effect
  // visible in Table II (1024x768 closer to its ideal bound than 512x512).
  ChambolleAccelerator accel{ArchConfig{}};
  const double fps256 = accel.estimate_fps(256, 256, 50);
  const double fps1024 = accel.estimate_fps(1024, 1024, 50);
  const double cycles_per_pixel_256 = 221e6 / fps256 / (256.0 * 256.0);
  const double cycles_per_pixel_1024 = 221e6 / fps1024 / (1024.0 * 1024.0);
  EXPECT_LT(cycles_per_pixel_1024, cycles_per_pixel_256);
}

TEST(Accelerator, PyramidEstimateSumsLevelCosts) {
  ChambolleAccelerator accel{ArchConfig{}};
  const std::uint64_t direct = accel.estimate_pyramid_cycles(512, 512, 200, 4);
  std::uint64_t manual = 0;
  for (int l = 0; l < 4; ++l)
    manual += accel.estimate_frame_cycles(512 >> l, 512 >> l, 50);
  EXPECT_EQ(direct, manual);
  EXPECT_THROW((void)accel.estimate_pyramid_cycles(64, 64, 10, 0),
               std::invalid_argument);
}

TEST(Accelerator, PyramidFasterThanFlat) {
  // Spreading the iteration budget over a pyramid does strictly less work
  // than spending it all at full resolution.
  ChambolleAccelerator accel{ArchConfig{}};
  EXPECT_GT(accel.estimate_pyramid_fps(512, 512, 200),
            accel.estimate_fps(512, 512, 200));
  // With the pyramid interpretation the architecture lands in the paper's
  // performance class at 512x512 (paper: 99.1 fps).
  EXPECT_GT(accel.estimate_pyramid_fps(512, 512, 200), 60.0);
}

TEST(Accelerator, RejectsMismatchedComponents) {
  ChambolleAccelerator accel(small_config());
  FlowField v;
  v.u1 = Matrix<float>(8, 8);
  v.u2 = Matrix<float>(8, 9);
  EXPECT_THROW(accel.solve(v, params_with(4)), std::invalid_argument);
}

TEST(Accelerator, ZeroInputGivesZeroFlow) {
  ChambolleAccelerator accel(small_config());
  const FlowField v(48, 48);
  const auto result = accel.solve(v, params_with(8));
  for (float x : result.u.u1) EXPECT_FLOAT_EQ(x, 0.f);
  for (float x : result.u.u2) EXPECT_FLOAT_EQ(x, 0.f);
}

}  // namespace
}  // namespace chambolle::hw
