#include "fixedpoint/qformat.hpp"

#include <gtest/gtest.h>

namespace chambolle::fx {
namespace {

TEST(QFormat, OneIs256) { EXPECT_EQ(to_fixed(1.0), 256); }

TEST(QFormat, RoundsToNearest) {
  EXPECT_EQ(to_fixed(0.5), 128);
  EXPECT_EQ(to_fixed(1.0 / 512.0), 1);   // 0.5 ulp rounds away from zero
  EXPECT_EQ(to_fixed(-1.0 / 512.0), -1);
  EXPECT_EQ(to_fixed(0.001), 0);         // below half ulp
}

TEST(QFormat, ToFloatInverts) {
  for (int raw : {-1000, -256, -1, 0, 1, 255, 256, 100000})
    EXPECT_EQ(to_fixed(static_cast<double>(to_float(raw))), raw);
}

TEST(QFormat, ToFixedSaturatesAtInt32Limits) {
  EXPECT_EQ(to_fixed(1e12), std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(to_fixed(-1e12), std::numeric_limits<std::int32_t>::min());
}

TEST(QFormat, MulMatchesRealProduct) {
  const std::int32_t a = to_fixed(1.5);
  const std::int32_t b = to_fixed(2.25);
  EXPECT_EQ(mul(a, b), to_fixed(3.375));
}

TEST(QFormat, MulTruncatesTowardNegativeInfinity) {
  // 0.25 * 0.001953125 (= raw 64 * raw 0.5): exact product raw = 0.125.
  EXPECT_EQ(mul(64, 1), 0);
  EXPECT_EQ(mul(-64, 1), -1);  // arithmetic shift: floor, not trunc
}

TEST(QFormat, DivMatchesRealQuotient) {
  EXPECT_EQ(div(to_fixed(3.0), to_fixed(2.0)), to_fixed(1.5));
  EXPECT_EQ(div(to_fixed(-3.0), to_fixed(2.0)), to_fixed(-1.5));
  EXPECT_EQ(div(to_fixed(1.0), to_fixed(4.0)), to_fixed(0.25));
}

TEST(QFormat, SaturateBits) {
  EXPECT_EQ(saturate_bits(100, 9), 100);
  EXPECT_EQ(saturate_bits(255, 9), 255);
  EXPECT_EQ(saturate_bits(256, 9), 255);   // 9-bit max
  EXPECT_EQ(saturate_bits(-256, 9), -256); // 9-bit min
  EXPECT_EQ(saturate_bits(-257, 9), -256);
  EXPECT_EQ(saturate_bits(4095, 13), 4095);
  EXPECT_EQ(saturate_bits(5000, 13), 4095);
  EXPECT_EQ(saturate_bits(-5000, 13), -4096);
}

TEST(QFormat, BitWidth) {
  EXPECT_EQ(bit_width_u32(0u), 0);
  EXPECT_EQ(bit_width_u32(1u), 1);
  EXPECT_EQ(bit_width_u32(255u), 8);
  EXPECT_EQ(bit_width_u32(256u), 9);
  EXPECT_EQ(bit_width_u32(0xFFFFFFFFu), 32);
}

// Property sweep: mul/div are within one ulp of the real-arithmetic result.
class QArithProperty : public ::testing::TestWithParam<int> {};

TEST_P(QArithProperty, MulWithinOneUlp) {
  const int seed = GetParam();
  std::uint32_t s = static_cast<std::uint32_t>(seed) * 2654435761u + 1;
  for (int i = 0; i < 200; ++i) {
    s = s * 1664525u + 1013904223u;
    const std::int32_t a = static_cast<std::int32_t>(s % 200000u) - 100000;
    s = s * 1664525u + 1013904223u;
    const std::int32_t b = static_cast<std::int32_t>(s % 200000u) - 100000;
    const double real = (static_cast<double>(a) / kOne) *
                        (static_cast<double>(b) / kOne);
    EXPECT_NEAR(static_cast<double>(mul(a, b)) / kOne, real, 1.0 / kOne);
  }
}

TEST_P(QArithProperty, DivWithinOneUlp) {
  const int seed = GetParam();
  std::uint32_t s = static_cast<std::uint32_t>(seed) * 2246822519u + 3;
  for (int i = 0; i < 200; ++i) {
    s = s * 1664525u + 1013904223u;
    const std::int32_t a = static_cast<std::int32_t>(s % 200000u) - 100000;
    s = s * 1664525u + 1013904223u;
    std::int32_t b = static_cast<std::int32_t>(s % 100000u) + 256;  // >= 1.0
    const double real = (static_cast<double>(a) / kOne) /
                        (static_cast<double>(b) / kOne);
    EXPECT_NEAR(static_cast<double>(div(a, b)) / kOne, real, 1.0 / kOne);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QArithProperty, ::testing::Range(1, 6));

}  // namespace
}  // namespace chambolle::fx
