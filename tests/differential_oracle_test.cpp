// differential_oracle_test.cpp — the cross-engine differential oracle.
//
// Every seed becomes one randomized solve executed through all engines
// (reference, row-parallel, reload-tiled, resident, every SIMD backend, and
// — on default-parameter cases — the fixed-point solver and the cycle-level
// accelerator) with the comparison policy of src/testing/oracle.hpp: float
// engines must match the reference bit for bit, quantized engines within
// kFixedPointTolerance.  This suite absorbs the former tiled_fuzz_test and
// hw_fuzz_test sweeps into one generator and one failure format.
//
// Reproduce a failure locally with the line failure_report() prints:
//   CHAMBOLLE_ORACLE_SEED=<seed> ./tests/chb_tests --gtest_filter='OracleRepro.*'
#include <cstdlib>

#include <gtest/gtest.h>

#include "kernels/kernel_fixed_simd.hpp"
#include "testing/generators.hpp"
#include "testing/oracle.hpp"

namespace chambolle {
namespace {

class DifferentialOracle : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialOracle, AllEnginesAgree) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const oracle::OracleCase c = oracle::make_case(seed);
  const oracle::OracleReport report = oracle::run_oracle(c);
  EXPECT_TRUE(report.pass()) << report.failure_report();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialOracle, ::testing::Range(0, 200));

// A slice of the same sweep small enough for the TSan CI job, which runs a
// curated filter (thread interleavings matter there, not case count).
class OracleSmoke : public ::testing::TestWithParam<int> {};

TEST_P(OracleSmoke, AllEnginesAgree) {
  // Offset the seed stream so this suite exercises cases the 200-seed sweep
  // does not; under TSan each case still spins up the threaded engines.
  const auto seed = static_cast<std::uint64_t>(1000 + GetParam());
  const oracle::OracleCase c = oracle::make_case(seed);
  const oracle::OracleReport report = oracle::run_oracle(c);
  EXPECT_TRUE(report.pass()) << report.failure_report();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSmoke, ::testing::Range(0, 12));

// The quantized-engine roster must include the vectorized fixed kernel and
// the accelerator's functional mode: pin a case where they apply (default
// parameters, cold start) and assert both engines ran and passed.  This is
// the explicit fixed-simd-vs-scalar-fixed oracle case — the 200-seed sweep
// exercises the same engines, but only on the seeds that happen to draw
// default parameters.
TEST(DifferentialOracleCoverage, FixedSimdAndFunctionalEnginesScored) {
  oracle::CaseLimits limits;
  limits.allow_warm_start = false;
  limits.allow_param_variation = false;
  const oracle::OracleCase c = oracle::make_case(42, limits);
  ASSERT_TRUE(c.default_params);
  ASSERT_FALSE(c.warm_start);
  const oracle::OracleReport report = oracle::run_oracle(c);
  EXPECT_TRUE(report.pass()) << report.failure_report();
  bool saw_fixed_simd = false, saw_functional = false;
  for (const oracle::EngineOutcome& e : report.engines) {
    if (e.engine == "fixed_simd") saw_fixed_simd = true;
    if (e.engine == "accel_functional") saw_functional = true;
  }
  EXPECT_TRUE(saw_functional);
  if (kernels::fixed::backend_available(kernels::fixed::Backend::kSimd))
    EXPECT_TRUE(saw_fixed_simd);
  else
    EXPECT_FALSE(saw_fixed_simd);
}

// Replays exactly one case chosen through the environment — the repro hook
// referenced by OracleReport::failure_report().  Without the variable the
// test is a no-op so it can sit in the default ctest run.
TEST(OracleRepro, EnvSeed) {
  const char* env = std::getenv("CHAMBOLLE_ORACLE_SEED");
  if (env == nullptr || *env == '\0')
    GTEST_SKIP() << "set CHAMBOLLE_ORACLE_SEED=<seed> to replay a case";
  const auto seed = std::strtoull(env, nullptr, 10);
  const oracle::OracleCase c = oracle::make_case(seed);
  SCOPED_TRACE(c.describe());
  const oracle::OracleReport report = oracle::run_oracle(c);
  EXPECT_TRUE(report.pass()) << report.failure_report();
}

}  // namespace
}  // namespace chambolle
