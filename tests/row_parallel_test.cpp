#include "chambolle/row_parallel.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chambolle {
namespace {

ChambolleParams params_with(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

struct RpCase {
  int rows, cols, iterations, threads, strip;
};

class RowParallelEqualsReference : public ::testing::TestWithParam<RpCase> {};

TEST_P(RowParallelEqualsReference, BitExact) {
  const RpCase& rc = GetParam();
  Rng rng(static_cast<std::uint64_t>(rc.rows * 31 + rc.cols));
  const Matrix<float> v = random_image(rng, rc.rows, rc.cols, -3.f, 3.f);
  const ChambolleParams params = params_with(rc.iterations);

  const ChambolleResult ref = solve(v, params);
  RowParallelOptions opt;
  opt.num_threads = rc.threads;
  opt.rows_per_strip = rc.strip;
  const ChambolleResult rp = solve_row_parallel(v, params, opt);

  EXPECT_EQ(rp.u, ref.u);
  EXPECT_EQ(rp.p.px, ref.p.px);
  EXPECT_EQ(rp.p.py, ref.p.py);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RowParallelEqualsReference,
    ::testing::Values(RpCase{32, 32, 10, 1, 8}, RpCase{32, 32, 10, 4, 8},
                      RpCase{33, 47, 13, 3, 5}, RpCase{64, 16, 8, 2, 64},
                      RpCase{7, 7, 20, 2, 2}, RpCase{1, 40, 6, 2, 1},
                      // Single pixel; strip taller than the frame; rows not
                      // divisible by the strip height (partial last strip).
                      RpCase{1, 1, 8, 2, 1}, RpCase{16, 24, 10, 3, 64},
                      RpCase{45, 33, 9, 3, 7}));

TEST(RowParallel, ExecutionEngineDoesNotChangeResult) {
  Rng rng(77);
  const Matrix<float> v = random_image(rng, 45, 33, -3.f, 3.f);
  const ChambolleParams params = params_with(9);
  const ChambolleResult ref = solve(v, params);

  RowParallelOptions opt;
  opt.num_threads = 3;
  opt.rows_per_strip = 7;
  opt.execution = parallel::Execution::kPool;
  const ChambolleResult pooled = solve_row_parallel(v, params, opt);
  opt.execution = parallel::Execution::kSpawn;
  const ChambolleResult spawned = solve_row_parallel(v, params, opt);

  EXPECT_EQ(pooled.u, ref.u);
  EXPECT_EQ(spawned.u, ref.u);
  EXPECT_EQ(pooled.p.px, spawned.p.px);
  EXPECT_EQ(pooled.p.py, spawned.p.py);
}

TEST(RowParallel, BarrierAccounting) {
  Rng rng(1);
  const Matrix<float> v = random_image(rng, 40, 40, -1.f, 1.f);
  RowParallelOptions opt;
  opt.num_threads = 2;
  opt.rows_per_strip = 10;
  RowParallelStats stats;
  (void)solve_row_parallel(v, params_with(12), opt, &stats);
  EXPECT_EQ(stats.barriers, 24);  // two per iteration
  EXPECT_EQ(stats.strips, 4u);
}

TEST(RowParallel, OptionValidation) {
  RowParallelOptions opt;
  opt.num_threads = -1;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = {};
  opt.rows_per_strip = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

TEST(RowParallel, SynchronizationCountDwarfsTiledSolver) {
  // The design argument: per 200 iterations the row-parallel schedule needs
  // 400 global barriers, while the sliding-window schedule with merge depth
  // K only synchronizes 200/K times.
  const int iterations = 200, merge = 4;
  const int row_parallel_barriers = 2 * iterations;
  const int tiled_passes = iterations / merge;
  EXPECT_GT(row_parallel_barriers, 4 * tiled_passes);
}

}  // namespace
}  // namespace chambolle
