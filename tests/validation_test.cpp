#include "common/validation.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "tvl1/tvl1.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle {
namespace {

TEST(Validation, DetectsNaN) {
  Matrix<float> m(3, 3, 1.f);
  EXPECT_FALSE(has_nonfinite(m));
  m(1, 1) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(has_nonfinite(m));
}

TEST(Validation, DetectsInfinity) {
  Matrix<float> m(2, 2);
  m(0, 1) = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(has_nonfinite(m));
  m(0, 1) = -std::numeric_limits<float>::infinity();
  EXPECT_TRUE(has_nonfinite(m));
}

TEST(Validation, RequireFiniteNamesTheOffender) {
  Matrix<float> m(2, 2);
  m(0, 0) = std::numeric_limits<float>::quiet_NaN();
  try {
    require_finite(m, "frame0");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("frame0"), std::string::npos);
  }
}

TEST(Validation, ComputeFlowRejectsPoisonedFrames) {
  const Image clean = workloads::smooth_texture(16, 16, 1);
  Image poisoned = clean;
  poisoned(8, 8) = std::numeric_limits<float>::quiet_NaN();
  tvl1::Tvl1Params params;
  params.pyramid_levels = 2;
  params.warps = 2;
  params.chambolle.iterations = 5;
  EXPECT_THROW((void)tvl1::compute_flow(poisoned, clean, params),
               std::invalid_argument);
  EXPECT_THROW((void)tvl1::compute_flow(clean, poisoned, params),
               std::invalid_argument);
  EXPECT_NO_THROW((void)tvl1::compute_flow(clean, clean, params));
}

}  // namespace
}  // namespace chambolle
