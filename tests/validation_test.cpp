#include "common/validation.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "chambolle/solver.hpp"
#include "tvl1/tvl1.hpp"
#include "tvl1/video_runner.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle {
namespace {

TEST(Validation, DetectsNaN) {
  Matrix<float> m(3, 3, 1.f);
  EXPECT_FALSE(has_nonfinite(m));
  m(1, 1) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(has_nonfinite(m));
}

TEST(Validation, DetectsInfinity) {
  Matrix<float> m(2, 2);
  m(0, 1) = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(has_nonfinite(m));
  m(0, 1) = -std::numeric_limits<float>::infinity();
  EXPECT_TRUE(has_nonfinite(m));
}

TEST(Validation, RequireFiniteNamesTheOffender) {
  Matrix<float> m(2, 2);
  m(0, 0) = std::numeric_limits<float>::quiet_NaN();
  try {
    require_finite(m, "frame0");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("frame0"), std::string::npos);
  }
}

// Regression: solve()/solve_flow() ran NaN inputs to completion and
// returned fully poisoned frames; the entry points must throw instead.
TEST(Validation, RofSolveRejectsNonFiniteInput) {
  Matrix<float> v(8, 8, 0.5f);
  const ChambolleParams params{.iterations = 4};
  EXPECT_NO_THROW((void)solve(v, params));
  v(3, 4) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW((void)solve(v, params), std::invalid_argument);
  v(3, 4) = std::numeric_limits<float>::infinity();
  EXPECT_THROW((void)solve(v, params), std::invalid_argument);
}

TEST(Validation, SolveFlowRejectsNonFiniteComponents) {
  FlowField v(6, 6);
  const ChambolleParams params{.iterations = 4};
  EXPECT_NO_THROW((void)solve_flow(v, params));
  v.u2(5, 0) = -std::numeric_limits<float>::infinity();
  EXPECT_THROW((void)solve_flow(v, params), std::invalid_argument);
}

TEST(Validation, RunVideoRejectsPoisonedFrame) {
  std::vector<Image> frames;
  for (int i = 0; i < 3; ++i)
    frames.push_back(workloads::smooth_texture(16, 16, i + 1));
  tvl1::VideoRunnerOptions options;
  options.tvl1.pyramid_levels = 2;
  options.tvl1.warps = 1;
  options.tvl1.chambolle.iterations = 3;
  frames[2](0, 0) = std::numeric_limits<float>::quiet_NaN();
  try {
    (void)tvl1::run_video(frames, options);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    // The message names the frame index so a video pipeline can locate it.
    EXPECT_NE(std::string(e.what()).find("frame 2"), std::string::npos);
  }
}

// Regression: every comparison with NaN is false, so NaN theta/tau/lambda
// satisfied none of the rejection conditions and validate() accepted them.
TEST(Validation, ParamsValidateRejectsNaN) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  ChambolleParams p;
  p.theta = nan;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ChambolleParams{};
  p.tau = nan;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ChambolleParams{};
  p.theta = std::numeric_limits<float>::infinity();
  EXPECT_THROW(p.validate(), std::invalid_argument);

  tvl1::Tvl1Params t;
  t.lambda = nan;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

// Regression: a denormal tau under a large theta makes tau/theta round to
// exactly zero — sign and ratio checks all pass, but every dual update is a
// no-op.  validate() must reject the degenerate step.
TEST(Validation, ParamsValidateRejectsUnderflowingStep) {
  ChambolleParams p;
  p.theta = 1e38f;
  p.tau = std::numeric_limits<float>::denorm_min();
  EXPECT_EQ(p.tau / p.theta, 0.f);  // the degenerate case really underflows
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Validation, ComputeFlowRejectsPoisonedFrames) {
  const Image clean = workloads::smooth_texture(16, 16, 1);
  Image poisoned = clean;
  poisoned(8, 8) = std::numeric_limits<float>::quiet_NaN();
  tvl1::Tvl1Params params;
  params.pyramid_levels = 2;
  params.warps = 2;
  params.chambolle.iterations = 5;
  EXPECT_THROW((void)tvl1::compute_flow(poisoned, clean, params),
               std::invalid_argument);
  EXPECT_THROW((void)tvl1::compute_flow(clean, poisoned, params),
               std::invalid_argument);
  EXPECT_NO_THROW((void)tvl1::compute_flow(clean, clean, params));
}

}  // namespace
}  // namespace chambolle
