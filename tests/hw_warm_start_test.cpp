// hw_warm_start_test.cpp — warm-starting the accelerator's dual state.
#include <gtest/gtest.h>

#include "chambolle/fixed_solver.hpp"
#include "common/rng.hpp"
#include "hw/accelerator.hpp"

namespace chambolle::hw {
namespace {

ArchConfig small_config() {
  ArchConfig cfg;
  cfg.tile_rows = 40;
  cfg.tile_cols = 40;
  cfg.merge_iterations = 4;
  return cfg;
}

FlowField random_v(int n, std::uint64_t seed) {
  Rng rng(seed);
  FlowField v(n, n);
  v.u1 = random_image(rng, n, n, -2.f, 2.f);
  v.u2 = random_image(rng, n, n, -2.f, 2.f);
  return v;
}

ChambolleParams params_with(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

TEST(AcceleratorWarmStart, ResumingEqualsOneLongRun) {
  // Solving 4 iterations, then 4 more seeded with the resulting dual, must
  // equal one 8-iteration run (the dual values round-trip the Q1.8 format
  // losslessly because they come FROM that format).
  const FlowField v = random_v(48, 121);
  ChambolleAccelerator accel(small_config());

  const auto full = accel.solve(v, params_with(8));

  const auto half = accel.solve(v, params_with(4));
  ChambolleAccelerator::InitialDual resume;
  resume.u1_px = &half.dual_u1.u1;
  resume.u1_py = &half.dual_u1.u2;
  resume.u2_px = &half.dual_u2.u1;
  resume.u2_py = &half.dual_u2.u2;
  const auto resumed = accel.solve(v, params_with(4), resume);

  EXPECT_EQ(resumed.u.u1, full.u.u1);
  EXPECT_EQ(resumed.u.u2, full.u.u2);
  EXPECT_EQ(resumed.dual_u1.u1, full.dual_u1.u1);
}

TEST(AcceleratorWarmStart, MatchesWarmStartedFixedSolver) {
  const FlowField v = random_v(40, 123);
  ChambolleAccelerator accel(small_config());
  const ChambolleParams params = params_with(5);

  // Seed with an arbitrary (format-representable) dual state.
  Rng rng(7);
  Matrix<float> px(40, 40), py(40, 40);
  for (float& x : px) x = static_cast<float>(rng.uniform_int(-200, 200)) / 256.f;
  for (float& x : py) x = static_cast<float>(rng.uniform_int(-200, 200)) / 256.f;

  ChambolleAccelerator::InitialDual init;
  init.u1_px = &px;
  init.u1_py = &py;
  init.u2_px = &px;
  init.u2_py = &py;
  const auto got = accel.solve(v, params, init);

  FixedState ref = make_fixed_state(v.u1);
  for (std::size_t i = 0; i < ref.px.size(); ++i) {
    ref.px.data()[i] = fx::saturate_bits(fx::to_fixed(px.data()[i]), fx::kPBits);
    ref.py.data()[i] = fx::saturate_bits(fx::to_fixed(py.data()[i]), fx::kPBits);
  }
  Matrix<std::int32_t> scratch;
  const FixedParams fp = FixedParams::from(params);
  fixed_iterate_region(ref, RegionGeometry::full_frame(40, 40), fp,
                       params.iterations, scratch);
  EXPECT_EQ(got.dual_u1.u1, dequantize(ref.px));
  EXPECT_EQ(got.dual_u1.u2, dequantize(ref.py));
}

TEST(AcceleratorWarmStart, RejectsMismatchedShapes) {
  const FlowField v = random_v(40, 125);
  ChambolleAccelerator accel(small_config());
  Matrix<float> wrong(8, 8);
  ChambolleAccelerator::InitialDual init;
  init.u1_px = &wrong;
  init.u1_py = &wrong;
  EXPECT_THROW((void)accel.solve(v, params_with(2), init),
               std::invalid_argument);
  // px without py is also malformed.
  Matrix<float> ok(40, 40);
  init = {};
  init.u1_px = &ok;
  EXPECT_THROW((void)accel.solve(v, params_with(2), init),
               std::invalid_argument);
}

}  // namespace
}  // namespace chambolle::hw
