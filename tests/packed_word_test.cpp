#include "fixedpoint/packed_word.hpp"

#include <gtest/gtest.h>

namespace chambolle::fx {
namespace {

TEST(PackedWord, RoundTripInRange) {
  const BramFields f{1000, -200, 255};
  EXPECT_EQ(unpack_word(pack_word(f)), f);
}

TEST(PackedWord, RoundTripExtremes) {
  // v: 13-bit signed [-4096, 4095]; px/py: 9-bit signed [-256, 255].
  const BramFields lo{-4096, -256, -256};
  const BramFields hi{4095, 255, 255};
  EXPECT_EQ(unpack_word(pack_word(lo)), lo);
  EXPECT_EQ(unpack_word(pack_word(hi)), hi);
}

TEST(PackedWord, SaturatesOutOfRangeFields) {
  const BramFields f{100000, 1000, -1000};
  const BramFields u = unpack_word(pack_word(f));
  EXPECT_EQ(u.v, 4095);
  EXPECT_EQ(u.px, 255);
  EXPECT_EQ(u.py, -256);
}

TEST(PackedWord, LayoutMatchesSectionVB) {
  // "The 32 bits encode v ... followed by c_px and c_py": v occupies the top
  // 13 bits, px the next 9, py the next 9.
  const std::uint32_t w = pack_word({1, 2, 3});
  EXPECT_EQ((w >> 19) & 0x1FFF, 1u);
  EXPECT_EQ((w >> 10) & 0x1FF, 2u);
  EXPECT_EQ((w >> 1) & 0x1FF, 3u);
}

TEST(PackedWord, SignExtend) {
  EXPECT_EQ(sign_extend(0x1FF, 9), -1);
  EXPECT_EQ(sign_extend(0x100, 9), -256);
  EXPECT_EQ(sign_extend(0x0FF, 9), 255);
  EXPECT_EQ(sign_extend(0u, 9), 0);
  EXPECT_EQ(sign_extend(0x1FFF, 13), -1);
}

TEST(PackedWord, ZeroIsZero) {
  EXPECT_EQ(pack_word({0, 0, 0}), 0u);
  const BramFields z = unpack_word(0u);
  EXPECT_EQ(z.v, 0);
  EXPECT_EQ(z.px, 0);
  EXPECT_EQ(z.py, 0);
}

// Exhaustive round-trip across the px field (512 values) and a v sweep.
TEST(PackedWord, ExhaustivePxRoundTrip) {
  for (int px = -256; px <= 255; ++px) {
    const BramFields f{123, px, -px / 2};
    EXPECT_EQ(unpack_word(pack_word(f)), f) << "px=" << px;
  }
}

TEST(PackedWord, VSweepRoundTrip) {
  for (int v = -4096; v <= 4095; v += 97) {
    const BramFields f{v, 7, -9};
    EXPECT_EQ(unpack_word(pack_word(f)), f) << "v=" << v;
  }
}

TEST(PackedWord, BulkSoAMatchesPerElement) {
  // The SoA helpers must agree with pack_word/unpack_word element for
  // element, including the saturating pack of out-of-range fields.
  constexpr int kN = 17;
  std::int32_t v[kN], px[kN], py[kN];
  for (int i = 0; i < kN; ++i) {
    v[i] = (i - 8) * 771;    // spans beyond the 13-bit range at the ends
    px[i] = (i - 8) * 41;    // spans beyond the 9-bit range at the ends
    py[i] = (8 - i) * 37;
  }
  std::uint32_t words[kN];
  pack_words(v, px, py, kN, words);
  for (int i = 0; i < kN; ++i)
    EXPECT_EQ(words[i], pack_word(BramFields{v[i], px[i], py[i]})) << i;

  std::int32_t v2[kN], px2[kN], py2[kN];
  unpack_words(words, kN, v2, px2, py2);
  for (int i = 0; i < kN; ++i) {
    const BramFields f = unpack_word(words[i]);
    EXPECT_EQ(v2[i], f.v) << i;
    EXPECT_EQ(px2[i], f.px) << i;
    EXPECT_EQ(py2[i], f.py) << i;
  }
}

}  // namespace
}  // namespace chambolle::fx
