#include "tvl1/video_runner.hpp"

#include <gtest/gtest.h>

#include "workloads/metrics.hpp"
#include "workloads/sequence.hpp"

namespace chambolle::tvl1 {
namespace {

VideoRunnerOptions fast_options() {
  VideoRunnerOptions o;
  o.tvl1.pyramid_levels = 3;
  o.tvl1.warps = 3;
  o.tvl1.chambolle.iterations = 15;
  o.arch.tile_rows = 40;
  o.arch.tile_cols = 40;
  o.arch.merge_iterations = 4;
  return o;
}

workloads::VideoSequence pan_sequence(int frames = 4) {
  workloads::SequenceParams sp;
  sp.frames = frames;
  sp.rate_x = 1.f;
  sp.rate_y = 0.5f;
  return workloads::make_sequence(64, 64, sp);
}

TEST(VideoRunner, Validation) {
  EXPECT_THROW((void)run_video({}, fast_options()), std::invalid_argument);
  EXPECT_THROW((void)run_video({Image(8, 8)}, fast_options()),
               std::invalid_argument);
  EXPECT_THROW((void)run_video({Image(8, 8), Image(8, 9)}, fast_options()),
               std::invalid_argument);
}

TEST(VideoRunner, ProducesOneFlowPerPair) {
  const auto seq = pan_sequence(4);
  const VideoRunnerResult r = run_video(seq.frames, fast_options());
  ASSERT_EQ(r.flows.size(), 3u);
  EXPECT_GT(r.device_cycles, 0u);
  EXPECT_EQ(r.solves, 3 * 3 * 3);  // pairs x levels x warps
  EXPECT_GT(r.device_fps(221.0), 0.0);
}

TEST(VideoRunner, EveryPairRecoversTheMotion) {
  const auto seq = pan_sequence(4);
  const VideoRunnerResult r = run_video(seq.frames, fast_options());
  for (std::size_t k = 0; k < r.flows.size(); ++k)
    EXPECT_LT(workloads::interior_endpoint_error(r.flows[k], seq.truth[k], 8),
              0.5)
        << "pair " << k;
}

TEST(VideoRunner, WarmStartDoesNotHurtAccuracyAtEqualBudget) {
  const auto seq = pan_sequence(5);
  VideoRunnerOptions warm = fast_options();
  warm.warm_start = true;
  VideoRunnerOptions cold = fast_options();
  cold.warm_start = false;

  const VideoRunnerResult rw = run_video(seq.frames, warm);
  const VideoRunnerResult rc = run_video(seq.frames, cold);
  double e_warm = 0, e_cold = 0;
  for (std::size_t k = 1; k < rw.flows.size(); ++k) {
    e_warm += workloads::interior_endpoint_error(rw.flows[k], seq.truth[k], 8);
    e_cold += workloads::interior_endpoint_error(rc.flows[k], seq.truth[k], 8);
  }
  EXPECT_LE(e_warm, e_cold + 0.1);
  // Same number of device cycles either way (same budget) — warm start buys
  // accuracy, which bench/warm_start converts into an iteration saving.
  EXPECT_EQ(rw.device_cycles, rc.device_cycles);
}

TEST(VideoRunner, FirstPairIsIdenticalWithAndWithoutWarmStart) {
  // No previous frame exists for the first pair, so warm_start must not
  // change it.
  const auto seq = pan_sequence(3);
  VideoRunnerOptions warm = fast_options();
  VideoRunnerOptions cold = fast_options();
  cold.warm_start = false;
  const VideoRunnerResult rw = run_video(seq.frames, warm);
  const VideoRunnerResult rc = run_video(seq.frames, cold);
  EXPECT_EQ(rw.flows[0].u1, rc.flows[0].u1);
  EXPECT_EQ(rw.flows[0].u2, rc.flows[0].u2);
}

}  // namespace
}  // namespace chambolle::tvl1
