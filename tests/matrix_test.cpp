#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace chambolle {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix<float> m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructionValueInitializes) {
  Matrix<int> m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12u);
  for (int v : m) EXPECT_EQ(v, 0);
}

TEST(Matrix, ConstructionWithInitValue) {
  Matrix<float> m(2, 2, 1.5f);
  for (float v : m) EXPECT_FLOAT_EQ(v, 1.5f);
}

TEST(Matrix, NegativeDimensionThrows) {
  EXPECT_THROW(Matrix<int>(-1, 3), std::invalid_argument);
  EXPECT_THROW(Matrix<int>(3, -1), std::invalid_argument);
}

TEST(Matrix, RowMajorIndexing) {
  Matrix<int> m(2, 3);
  int k = 0;
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 3; ++c) m(r, c) = k++;
  EXPECT_EQ(m.data()[0], 0);
  EXPECT_EQ(m.data()[3], 3);  // start of row 1
  EXPECT_EQ(m(1, 2), 5);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix<int> m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_THROW(m.at(-1, 0), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, InBounds) {
  Matrix<int> m(2, 3);
  EXPECT_TRUE(m.in_bounds(0, 0));
  EXPECT_TRUE(m.in_bounds(1, 2));
  EXPECT_FALSE(m.in_bounds(2, 0));
  EXPECT_FALSE(m.in_bounds(0, 3));
  EXPECT_FALSE(m.in_bounds(-1, 0));
}

TEST(Matrix, FillOverwritesAll) {
  Matrix<int> m(3, 3, 7);
  m.fill(9);
  for (int v : m) EXPECT_EQ(v, 9);
}

TEST(Matrix, ResizeDiscardsContents) {
  Matrix<int> m(2, 2, 5);
  m.resize(4, 1, 3);
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.cols(), 1);
  for (int v : m) EXPECT_EQ(v, 3);
}

TEST(Matrix, BlockExtractsSubrectangle) {
  Matrix<int> m(4, 4);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) m(r, c) = 10 * r + c;
  const Matrix<int> b = m.block(1, 2, 2, 2);
  EXPECT_EQ(b.rows(), 2);
  EXPECT_EQ(b.cols(), 2);
  EXPECT_EQ(b(0, 0), 12);
  EXPECT_EQ(b(1, 1), 23);
}

TEST(Matrix, BlockOutOfRangeThrows) {
  Matrix<int> m(4, 4);
  EXPECT_THROW(m.block(3, 0, 2, 1), std::out_of_range);
  EXPECT_THROW(m.block(0, 3, 1, 2), std::out_of_range);
  EXPECT_THROW(m.block(-1, 0, 1, 1), std::out_of_range);
}

TEST(Matrix, PasteWritesSubrectangle) {
  Matrix<int> m(4, 4, 0);
  Matrix<int> s(2, 2, 8);
  m.paste(s, 1, 1);
  EXPECT_EQ(m(1, 1), 8);
  EXPECT_EQ(m(2, 2), 8);
  EXPECT_EQ(m(0, 0), 0);
  EXPECT_EQ(m(3, 3), 0);
}

TEST(Matrix, PasteOutOfRangeThrows) {
  Matrix<int> m(3, 3);
  Matrix<int> s(2, 2);
  EXPECT_THROW(m.paste(s, 2, 0), std::out_of_range);
}

TEST(Matrix, EqualityComparesShapeAndData) {
  Matrix<int> a(2, 2, 1), b(2, 2, 1), c(2, 2, 2), d(1, 4, 1);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix<float> a(2, 2, 1.f), b(2, 2, 1.f);
  b(1, 1) = -2.f;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 3.0);
  EXPECT_THROW((void)max_abs_diff(a, Matrix<float>(1, 1)), std::invalid_argument);
}

TEST(Matrix, SameShape) {
  Matrix<int> a(2, 3), b(2, 3), c(3, 2);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

}  // namespace
}  // namespace chambolle
