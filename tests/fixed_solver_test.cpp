#include "chambolle/fixed_solver.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "chambolle/energy.hpp"
#include "common/rng.hpp"
#include "fixedpoint/lut_sqrt.hpp"
#include "kernels/kernel_fixed_simd.hpp"

namespace chambolle {
namespace {

ChambolleParams params_with(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

TEST(FixedParams, QuantizesDefaults) {
  const FixedParams f = FixedParams::from(params_with(10));
  EXPECT_EQ(f.theta_q, 64);       // 0.25 in Q24.8
  EXPECT_EQ(f.inv_theta_q, 1024); // 4.0
  EXPECT_EQ(f.step_q, 64);        // tau/theta = 0.25
  EXPECT_EQ(f.iterations, 10);
}

TEST(FixedDatapath, PeTOpBackwardRules) {
  using namespace fxdp;
  // Interior: div_p = (c_px - l_px) + (c_py - a_py); Term = div_p - v/theta.
  const TermOut t =
      pe_t_op(100, 40, 50, 20, fx::to_fixed(1.0), false, false, false, false,
              fx::to_fixed(4.0));
  EXPECT_EQ(t.div_p, 60 + 30);
  EXPECT_EQ(t.term, 90 - fx::to_fixed(4.0));
  // First column: dx = c_px.
  EXPECT_EQ(pe_t_op(100, 40, 0, 0, 0, true, false, true, false, 256).div_p,
            100);
  // Last column: dx = -l_px.
  EXPECT_EQ(pe_t_op(100, 40, 0, 0, 0, false, true, true, false, 256).div_p,
            -40);
  // Last row: dy = -a_py.
  EXPECT_EQ(pe_t_op(0, 0, 50, 20, 0, true, false, false, true, 256).div_p,
            -20);
}

TEST(FixedDatapath, PeVOpProjectionKeepsDualBounded) {
  using namespace fxdp;
  // Large gradient: |p| must stay within the 9-bit Q1.8 ball.
  const VOut out = pe_v_op(0, fx::to_fixed(100.0), fx::to_fixed(-100.0),
                           false, false, 0, 0, 64);
  EXPECT_LE(out.px, 255);
  EXPECT_GE(out.px, -256);
  EXPECT_LE(out.py, 255);
  EXPECT_GE(out.py, -256);
}

TEST(FixedDatapath, PeVOpBorderFlagsZeroTheGradient) {
  using namespace fxdp;
  const VOut out = pe_v_op(fx::to_fixed(3.0), fx::to_fixed(9.0),
                           fx::to_fixed(9.0), true, true, 100, -100, 64);
  // Both forward differences are forced to 0: p is unchanged.
  EXPECT_EQ(out.px, 100);
  EXPECT_EQ(out.py, -100);
}

TEST(FixedDatapath, PeUOpFormula) {
  using namespace fxdp;
  // u = v - theta*div_p, saturated to 13 bits.
  EXPECT_EQ(pe_u_op(fx::to_fixed(2.0), fx::to_fixed(1.0), fx::to_fixed(0.25)),
            fx::to_fixed(1.75));
  EXPECT_EQ(pe_u_op(4095, -fx::to_fixed(100.0), fx::to_fixed(0.25)), 4095);
}

TEST(FixedSolver, QuantizationOfInput) {
  Matrix<float> v(1, 3);
  v(0, 0) = 1.5f;
  v(0, 1) = 100.f;  // saturates to Q5.8 max
  v(0, 2) = -100.f;
  const FixedState s = make_fixed_state(v);
  EXPECT_EQ(s.v(0, 0), 384);
  EXPECT_EQ(s.v(0, 1), 4095);
  EXPECT_EQ(s.v(0, 2), -4096);
  for (std::int32_t p : s.px) EXPECT_EQ(p, 0);
}

TEST(FixedSolver, ConstantInputStaysFixed) {
  const Matrix<float> v(8, 8, 2.f);
  const ChambolleResult r = solve_fixed(v, params_with(30));
  for (int rr = 0; rr < 8; ++rr)
    for (int cc = 0; cc < 8; ++cc) EXPECT_FLOAT_EQ(r.u(rr, cc), 2.f);
}

TEST(FixedSolver, TracksFloatSolverWithinFormatTolerance) {
  Rng rng(21);
  const Matrix<float> v = random_image(rng, 24, 24, -3.f, 3.f);
  const ChambolleParams params = params_with(60);
  const ChambolleResult fixed = solve_fixed(v, params);
  const ChambolleResult ref = solve(v, params);
  // u error dominated by the Q*.8 quantization and the LUT sqrt; on a [-3,3]
  // field a small multiple of 1/256 plus accumulated drift is expected.
  EXPECT_LT(max_abs_diff(fixed.u, ref.u), 0.15);
  EXPECT_LT(max_abs_diff(fixed.p.px, ref.p.px), 0.15);
}

TEST(FixedSolver, DualStaysInNineBitBall) {
  Rng rng(23);
  const Matrix<float> v = random_image(rng, 16, 16, -8.f, 8.f);
  const FixedParams fp = FixedParams::from(params_with(100));
  FixedState state = make_fixed_state(v);
  Matrix<std::int32_t> scratch;
  fixed_iterate_region(state, RegionGeometry::full_frame(16, 16), fp,
                       fp.iterations, scratch);
  for (std::int32_t p : state.px) {
    EXPECT_LE(p, 255);
    EXPECT_GE(p, -256);
  }
}

TEST(FixedSolver, ReducesEnergyLikeTheFloatSolver) {
  Rng rng(25);
  Matrix<float> v = random_image(rng, 20, 20, -2.f, 2.f);
  const ChambolleResult r = solve_fixed(v, params_with(80));
  const float theta = 0.25f;
  EXPECT_LT(rof_energy(r.u, v, theta), rof_energy(v, v, theta));
}

TEST(FixedSolver, IterationsComposeExactly) {
  // Running k then m iterations on the same state == k+m iterations: the
  // fixed-point datapath is a deterministic map.
  Rng rng(27);
  const Matrix<float> v = random_image(rng, 12, 12, -2.f, 2.f);
  const FixedParams fp = FixedParams::from(params_with(0));
  const RegionGeometry geom = RegionGeometry::full_frame(12, 12);
  Matrix<std::int32_t> scratch;

  FixedState a = make_fixed_state(v);
  fixed_iterate_region(a, geom, fp, 10, scratch);

  FixedState b = make_fixed_state(v);
  fixed_iterate_region(b, geom, fp, 4, scratch);
  fixed_iterate_region(b, geom, fp, 6, scratch);

  EXPECT_EQ(a.px, b.px);
  EXPECT_EQ(a.py, b.py);
}

TEST(FixedSolver, RegionSemanticsMatchFloatSolver) {
  // The windowed fixed iteration honours the same profitable-element
  // guarantee: a window with a sufficient halo reproduces the full-frame
  // fixed solve on its profitable core.
  Rng rng(29);
  const Matrix<float> v = random_image(rng, 32, 32, -2.f, 2.f);
  const FixedParams fp = FixedParams::from(params_with(0));
  const int K = 3;  // merged iterations == halo
  Matrix<std::int32_t> scratch;

  FixedState full = make_fixed_state(v);
  fixed_iterate_region(full, RegionGeometry::full_frame(32, 32), fp, K,
                       scratch);

  // Window rows [4,28) x cols [8,24): profitable core shrinks by K per side.
  FixedState whole = make_fixed_state(v);
  FixedState win(24, 16);
  win.v = whole.v.block(4, 8, 24, 16);
  win.px = whole.px.block(4, 8, 24, 16);
  win.py = whole.py.block(4, 8, 24, 16);
  fixed_iterate_region(win, RegionGeometry{4, 8, 32, 32}, fp, K, scratch);

  for (int r = K; r < 24 - K; ++r)
    for (int c = K; c < 16 - K; ++c) {
      EXPECT_EQ(win.px(r, c), full.px(4 + r, 8 + c)) << r << "," << c;
      EXPECT_EQ(win.py(r, c), full.py(4 + r, 8 + c)) << r << "," << c;
    }
}

// The vectorized fixed kernel against the scalar loops, forced explicitly
// through the fixed dispatch: raw int32 state must match exactly — including
// windows narrower than one 8-lane chunk and windows pinned to the right
// border, where the masked tail handling does all the work.
TEST(FixedSimdKernel, BitExactWithScalarAcrossGeometries) {
  namespace kf = kernels::fixed;
  if (!kf::backend_available(kf::Backend::kSimd))
    GTEST_SKIP() << "fixed SIMD backend unavailable on this build/CPU";

  struct Geo {
    const char* name;
    int rows, cols, row0, col0, frame_rows, frame_cols, iters;
  };
  const Geo geos[] = {
      {"full_16x16", 16, 16, 0, 0, 16, 16, 4},
      {"single_cell", 1, 1, 0, 0, 1, 1, 3},
      {"single_col_interior", 5, 1, 2, 0, 9, 1, 3},
      {"narrow_tile_at_right", 2, 9, 5, 36, 45, 45, 4},
      {"sub_lane_width", 7, 5, 0, 0, 7, 5, 3},
      {"one_chunk", 7, 8, 0, 0, 7, 8, 3},
      {"chunk_plus_tail", 7, 17, 0, 0, 7, 17, 3},
      {"interior_halo_window", 20, 24, 10, 12, 64, 64, 2},
  };
  const FixedParams fp = FixedParams::from(params_with(0));
  for (const Geo& g : geos) {
    SCOPED_TRACE(g.name);
    Rng rng(static_cast<std::uint64_t>(g.rows * 131 + g.cols));
    FixedState init = make_fixed_state(
        random_image(rng, g.rows, g.cols, -3.f, 3.f));
    // Nonzero duals so the backward differences see real operands.
    for (int r = 0; r < g.rows; ++r)
      for (int c = 0; c < g.cols; ++c) {
        init.px(r, c) = rng.uniform_int(-256, 255);
        init.py(r, c) = rng.uniform_int(-256, 255);
      }
    const RegionGeometry geom{g.row0, g.col0, g.frame_rows, g.frame_cols};
    Matrix<std::int32_t> scratch;

    kf::force_backend(kf::Backend::kScalar);
    FixedState want = init;
    fixed_iterate_region(want, geom, fp, g.iters, scratch);

    kf::force_backend(kf::Backend::kSimd);
    FixedState got = init;
    fixed_iterate_region(got, geom, fp, g.iters, scratch);
    kf::reset_backend();

    ASSERT_EQ(want.px, got.px);
    ASSERT_EQ(want.py, got.py);
    ASSERT_EQ(want.v, got.v);
  }
}

// The fixed dispatch honours the same hard-reject contract as the float one.
TEST(FixedSimdKernel, DispatchRejectsUnknownNames) {
  namespace kf = kernels::fixed;
  EXPECT_NO_THROW(kf::force_backend("scalar"));
  EXPECT_EQ(kf::active_backend(), kf::Backend::kScalar);
  kf::reset_backend();
  EXPECT_THROW(kf::force_backend("avx1024"), std::invalid_argument);
  EXPECT_THROW(kf::force_backend("auto"), std::invalid_argument);
  try {
    kf::force_backend("avx1024");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("avx1024"), std::string::npos);
    EXPECT_NE(what.find("scalar"), std::string::npos);  // lists alternatives
  }
}

TEST(FixedSolver, DequantizeRoundTrips) {
  Matrix<std::int32_t> raw(1, 3);
  raw(0, 0) = 256;
  raw(0, 1) = -128;
  raw(0, 2) = 1;
  const Matrix<float> f = dequantize(raw);
  EXPECT_FLOAT_EQ(f(0, 0), 1.f);
  EXPECT_FLOAT_EQ(f(0, 1), -0.5f);
  EXPECT_FLOAT_EQ(f(0, 2), 1.f / 256.f);
}

}  // namespace
}  // namespace chambolle
