// smoke_main.cpp — deterministic fuzz-smoke runner (ctest target fuzz_smoke).
//
// Runs every harness over (a) the checked-in seed corpus, (b) seeded random
// byte strings, and (c) seeded byte-flip mutations of the corpus — all from
// fixed seeds, so a pass/fail is reproducible and cheap enough for every PR.
// The sanitizer CI jobs run this binary under ASan/UBSan and TSan; a crash
// there is a real parser bug, and the input that caused it survives in
// --artifact-dir (the runner writes each input there before executing it).
//
// Usage: chb_fuzz_smoke [--corpus DIR] [--rounds N] [--artifact-dir DIR]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <iterator>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "harnesses.hpp"
#include "telemetry/flight_recorder.hpp"

namespace fs = std::filesystem;

namespace {

using Harness = int (*)(const std::uint8_t*, std::size_t);

struct Target {
  const char* name;  ///< also the corpus subdirectory
  Harness run;
};

constexpr Target kTargets[] = {
    {"flo", chambolle::fuzzing::fuzz_flo},
    {"pgm", chambolle::fuzzing::fuzz_pgm},
    {"ppm", chambolle::fuzzing::fuzz_ppm},
    {"params", chambolle::fuzzing::fuzz_params},
};

// Save-then-run: if the harness brings the process down, the artifact file
// still holds the offending bytes for the CI upload step.
struct Runner {
  std::string artifact_dir;
  std::size_t executions = 0;

  void run(const Target& target, const std::vector<std::uint8_t>& input) {
    if (!artifact_dir.empty()) {
      const fs::path p =
          fs::path(artifact_dir) / (std::string("last_input_") + target.name);
      std::ofstream out(p, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(input.data()),
                static_cast<std::streamsize>(input.size()));
    }
    // Breadcrumb: a crash dump names the target and input ordinal in flight.
    chambolle::telemetry::flight_mark(target.name,
                                      static_cast<double>(executions));
    target.run(input.data(), input.size());
    ++executions;
  }
};

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_dir =
#ifdef CHB_FUZZ_CORPUS_DIR
      CHB_FUZZ_CORPUS_DIR;
#else
      "tests/fuzz/corpus";
#endif
  std::string artifact_dir;
  int rounds = 300;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--corpus" && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else if (arg == "--rounds" && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else if (arg == "--artifact-dir" && i + 1 < argc) {
      artifact_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: chb_fuzz_smoke [--corpus DIR] [--rounds N] "
                   "[--artifact-dir DIR]\n");
      return 2;
    }
  }
  if (!artifact_dir.empty()) fs::create_directories(artifact_dir);
  // A crash now ships a per-thread event timeline next to the saved input.
  const std::string flight_path =
      (artifact_dir.empty() ? fs::path(".") : fs::path(artifact_dir)) /
      "flight_record.json";
  chambolle::telemetry::install_crash_handler(flight_path.c_str());

  Runner runner{artifact_dir};
  for (const Target& target : kTargets) {
    // (a) the checked-in seed corpus for this surface.
    std::vector<std::vector<std::uint8_t>> corpus;
    const fs::path dir = fs::path(corpus_dir) / target.name;
    if (fs::is_directory(dir)) {
      std::vector<fs::path> files;
      for (const auto& entry : fs::directory_iterator(dir))
        if (entry.is_regular_file()) files.push_back(entry.path());
      std::sort(files.begin(), files.end());  // deterministic order
      for (const fs::path& f : files) corpus.push_back(read_file(f));
    }
    if (corpus.empty())
      std::fprintf(stderr, "fuzz_smoke: warning: no corpus under %s\n",
                   dir.string().c_str());
    for (const auto& input : corpus) runner.run(target, input);

    // (b) + (c): seeded random inputs and corpus mutations.  Fixed seed per
    // target so every run executes the identical input stream.
    std::mt19937_64 rng(0xf022ce55ULL ^ std::hash<std::string>{}(target.name));
    for (int i = 0; i < rounds; ++i) {
      std::vector<std::uint8_t> input;
      if (!corpus.empty() && i % 2 == 0) {
        input = corpus[rng() % corpus.size()];
        const std::size_t flips = 1 + rng() % 8;
        for (std::size_t f = 0; f < flips && !input.empty(); ++f)
          input[rng() % input.size()] ^=
              static_cast<std::uint8_t>(1u << (rng() % 8));
        if (rng() % 4 == 0 && !input.empty())
          input.resize(rng() % input.size());  // random truncation
      } else {
        input.resize(rng() % 96);
        for (auto& b : input) b = static_cast<std::uint8_t>(rng());
      }
      runner.run(target, input);
    }
  }

  std::printf("fuzz_smoke: %zu inputs across %zu harnesses, no violations\n",
              runner.executions, std::size(kTargets));
  return 0;
}
