// libfuzzer_entry.cpp — the one-TU bridge between libFuzzer and a harness.
//
// Each fuzz binary compiles this file once with CHB_FUZZ_ENTRY defined to
// the harness it drives (see tests/fuzz/CMakeLists.txt), keeping the
// one-target-per-binary shape libFuzzer expects while the harness bodies
// stay plain functions the deterministic smoke runner can also call.
#include "harnesses.hpp"

#ifndef CHB_FUZZ_ENTRY
#error "define CHB_FUZZ_ENTRY to one of the chambolle::fuzzing harnesses"
#endif

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return chambolle::fuzzing::CHB_FUZZ_ENTRY(data, size);
}
