#include <cstdlib>
#include <exception>
#include <sstream>
#include <string>

#include "common/flo_io.hpp"
#include "harnesses.hpp"

namespace chambolle::fuzzing {

int fuzz_flo(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const FlowField flow = io::read_flo(in);
    // Post-conditions of a successful parse: dimensions inside the caps
    // (the allocation-DoS fix) and a payload that matched them.
    if (flow.rows() <= 0 || flow.cols() <= 0 || flow.rows() > io::kMaxFloDim ||
        flow.cols() > io::kMaxFloDim ||
        static_cast<std::size_t>(flow.rows()) *
                static_cast<std::size_t>(flow.cols()) >
            io::kMaxFloCells)
      std::abort();
  } catch (const std::exception&) {
    // Rejecting hostile input with a typed exception is the contract.
  }
  return 0;
}

}  // namespace chambolle::fuzzing
