// harness_params.cpp — structured-input fuzzing of the parameter and
// tile-plan validators.
//
// Raw bytes are decoded into ChambolleParams / Tvl1Params / make_tiling
// requests.  The contract under test: validate() either throws or leaves
// behind an object whose documented invariants hold (finite positive
// parameters, stability bound satisfied, profitable rectangles partitioning
// the frame).  Historically NaN parameters sailed through the `<= 0` sign
// checks — this harness is what forces and now guards that fix.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "chambolle/params.hpp"
#include "chambolle/solver.hpp"
#include "chambolle/tile.hpp"
#include "harnesses.hpp"
#include "tvl1/tvl1.hpp"

namespace chambolle::fuzzing {
namespace {

// Sequential decoder over the input bytes; past the end it yields zeros, so
// every input length decodes to a complete (if partly zero) structure.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | next();
    return v;
  }

  /// Raw bit-pattern float: the decoder that actually reaches NaN, Inf and
  /// denormal parameter values.
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  /// Bounded int for geometry the harness must keep allocation-safe.
  int bounded(int lo, int hi) {
    return lo + static_cast<int>(u32() % static_cast<std::uint32_t>(
                                     hi - lo + 1));
  }

 private:
  std::uint8_t next() { return pos_ < size_ ? data_[pos_++] : 0; }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void check_chambolle_params(ByteReader& r) {
  ChambolleParams p;
  p.theta = r.f32();
  p.tau = r.f32();
  p.iterations = static_cast<int>(r.u32());
  try {
    p.validate();
  } catch (const std::exception&) {
    return;
  }
  // validate() accepted: the documented invariants must actually hold.
  if (!std::isfinite(p.theta) || !std::isfinite(p.tau)) std::abort();
  if (p.theta <= 0.f || p.tau <= 0.f || p.iterations < 0) std::abort();
  if (p.tau / p.theta > 0.25f + 1e-6f) std::abort();
  if (!std::isfinite(p.step()) || p.step() <= 0.f) std::abort();
  // Accepted parameters in a moderate range must survive a miniature solve
  // on a well-formed input without throwing.
  if (p.theta >= 1e-3f && p.theta <= 1e3f && p.tau >= 1e-6f) {
    ChambolleParams tiny = p;
    tiny.iterations = p.iterations % 4;
    Matrix<float> v(6, 7);
    for (std::size_t i = 0; i < v.size(); ++i)
      v.data()[i] = static_cast<float>(static_cast<int>(i % 11) - 5);
    const ChambolleResult res = solve(v, tiny);
    for (const float x : res.u)
      if (!std::isfinite(x)) std::abort();
  }
}

void check_tvl1_params(ByteReader& r) {
  tvl1::Tvl1Params p;
  p.lambda = r.f32();
  p.pyramid_levels = static_cast<int>(r.u32());
  p.warps = static_cast<int>(r.u32());
  p.chambolle.theta = r.f32();
  p.chambolle.tau = r.f32();
  p.chambolle.iterations = static_cast<int>(r.u32());
  try {
    p.validate();
  } catch (const std::exception&) {
    return;
  }
  if (!std::isfinite(p.lambda) || p.lambda <= 0.f) std::abort();
  if (p.pyramid_levels < 1 || p.warps < 1) std::abort();
}

void check_tiling(ByteReader& r) {
  // Geometry is drawn bounded — the harness probes the plan logic, not the
  // allocator (reject-by-cap for giant frames is read_flo/read_pgm's job).
  const int frame_rows = r.bounded(-4, 300);
  const int frame_cols = r.bounded(-4, 300);
  const int tile_rows = r.bounded(-2, 64);
  const int tile_cols = r.bounded(-2, 64);
  const int halo = r.bounded(-2, 12);
  TilingPlan plan;
  try {
    plan = make_tiling(frame_rows, frame_cols, tile_rows, tile_cols, halo);
  } catch (const std::exception&) {
    return;
  }
  // Accepted plans must tile the frame exactly and stay in bounds.
  if (plan.total_profitable_elements() !=
      static_cast<std::size_t>(frame_rows) *
          static_cast<std::size_t>(frame_cols))
    std::abort();
  for (const TileSpec& t : plan.tiles) {
    if (t.buf_row0 < 0 || t.buf_col0 < 0 || t.buf_rows <= 0 || t.buf_cols <= 0)
      std::abort();
    if (t.buf_row0 + t.buf_rows > frame_rows ||
        t.buf_col0 + t.buf_cols > frame_cols)
      std::abort();
    if (t.prof_row0 < t.buf_row0 || t.prof_col0 < t.buf_col0 ||
        t.prof_row0 + t.prof_rows > t.buf_row0 + t.buf_rows ||
        t.prof_col0 + t.prof_cols > t.buf_col0 + t.buf_cols)
      std::abort();
  }
  // Halo edges of an accepted plan must address cells inside the frame.
  for (const HaloEdge& e : make_halo_edges(plan)) {
    if (e.rows <= 0 || e.cols <= 0) std::abort();
    if (e.row0 < 0 || e.col0 < 0 || e.row0 + e.rows > frame_rows ||
        e.col0 + e.cols > frame_cols)
      std::abort();
  }
}

}  // namespace

int fuzz_params(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  check_chambolle_params(r);
  check_tvl1_params(r);
  check_tiling(r);
  return 0;
}

}  // namespace chambolle::fuzzing
