#include <cstdlib>
#include <exception>
#include <sstream>
#include <string>

#include "common/image_io.hpp"
#include "harnesses.hpp"

namespace chambolle::fuzzing {

int fuzz_pgm(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const Image img = io::read_pgm(in);
    if (img.rows() <= 0 || img.cols() <= 0 || img.rows() > io::kMaxPnmDim ||
        img.cols() > io::kMaxPnmDim)
      std::abort();
    // The maxval-rescale fix guarantees samples land on [0, 255].
    for (const float v : img)
      if (!(v >= 0.f && v <= 255.f)) std::abort();
  } catch (const std::exception&) {
  }
  return 0;
}

}  // namespace chambolle::fuzzing
