#include <cstdlib>
#include <exception>
#include <sstream>
#include <string>

#include "common/image_io.hpp"
#include "harnesses.hpp"

namespace chambolle::fuzzing {

int fuzz_ppm(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const io::RgbImage img = io::read_ppm(in);
    if (img.rows() <= 0 || img.cols() <= 0 || img.rows() > io::kMaxPnmDim ||
        img.cols() > io::kMaxPnmDim)
      std::abort();
  } catch (const std::exception&) {
  }
  return 0;
}

}  // namespace chambolle::fuzzing
