// harnesses.hpp — the fuzz entry points, one per untrusted input surface.
//
// Each harness consumes an arbitrary byte string and must neither crash nor
// violate its parser's post-conditions: a parse either throws a typed
// exception or returns an object inside the documented caps.  The same
// functions back two drivers:
//
//   * the libFuzzer binaries (CHAMBOLLE_ENABLE_FUZZERS=ON, clang only) for
//     open-ended coverage-guided exploration, and
//   * chb_fuzz_smoke, a deterministic corpus + seeded-mutation runner that
//     ctest and the sanitizer CI jobs execute on every PR.
//
// Harnesses return 0 always (libFuzzer convention); violations abort, so
// both drivers fail loudly under a debugger or a sanitizer.
#pragma once

#include <cstddef>
#include <cstdint>

namespace chambolle::fuzzing {

/// Middlebury .flo reader (read_flo).
int fuzz_flo(const std::uint8_t* data, std::size_t size);

/// Binary PGM reader (read_pgm).
int fuzz_pgm(const std::uint8_t* data, std::size_t size);

/// Binary PPM reader (read_ppm).
int fuzz_ppm(const std::uint8_t* data, std::size_t size);

/// Structured-input harness: decodes the bytes into ChambolleParams,
/// Tvl1Params and a tiling-plan request; whatever validates must then
/// survive a tiny solve / plan construction with its invariants intact.
int fuzz_params(const std::uint8_t* data, std::size_t size);

}  // namespace chambolle::fuzzing
