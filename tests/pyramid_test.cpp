#include "tvl1/pyramid.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chambolle::tvl1 {
namespace {

TEST(Pyramid, Downsample2Dimensions) {
  const Image img(10, 11);
  const Image half = downsample2(img);
  EXPECT_EQ(half.rows(), 5);
  EXPECT_EQ(half.cols(), 6);  // ceil(11/2)
}

TEST(Pyramid, Downsample2AveragesBoxes) {
  Image img(2, 2);
  img(0, 0) = 0.f;
  img(0, 1) = 4.f;
  img(1, 0) = 8.f;
  img(1, 1) = 12.f;
  const Image half = downsample2(img);
  ASSERT_EQ(half.rows(), 1);
  EXPECT_FLOAT_EQ(half(0, 0), 6.f);
}

TEST(Pyramid, DownsamplePreservesConstants) {
  const Image img(9, 9, 7.f);
  for (float v : downsample2(img)) EXPECT_FLOAT_EQ(v, 7.f);
}

TEST(Pyramid, UpsamplePreservesConstants) {
  const Image img(4, 4, 3.f);
  for (float v : upsample_to(img, 9, 7)) EXPECT_FLOAT_EQ(v, 3.f);
}

TEST(Pyramid, UpsampleToExactTargetSize) {
  Rng rng(1);
  const Image img = random_image(rng, 5, 6);
  const Image up = upsample_to(img, 13, 17);
  EXPECT_EQ(up.rows(), 13);
  EXPECT_EQ(up.cols(), 17);
  EXPECT_THROW(upsample_to(img, 0, 5), std::invalid_argument);
}

TEST(Pyramid, UpsampleDoesNotOvershootRange) {
  Rng rng(2);
  const Image img = random_image(rng, 6, 6, 10.f, 20.f);
  for (float v : upsample_to(img, 15, 15)) {
    EXPECT_GE(v, 10.f - 1e-4f);
    EXPECT_LE(v, 20.f + 1e-4f);
  }
}

TEST(Pyramid, UpsampleFlowScalesVectors) {
  FlowField flow(4, 4);
  flow.fill(1.f, -2.f);
  const FlowField up = upsample_flow(flow, 8, 8);
  EXPECT_EQ(up.rows(), 8);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) {
      EXPECT_NEAR(up.u1(r, c), 2.f, 1e-5);
      EXPECT_NEAR(up.u2(r, c), -4.f, 1e-5);
    }
}

TEST(Pyramid, LevelCountRespectsMinDim) {
  Rng rng(3);
  const Image img = random_image(rng, 64, 64);
  const Pyramid p(img, 10, 16);
  // 64 -> 32 -> 16; a further level would be 8 < 16.
  EXPECT_EQ(p.levels(), 3);
  EXPECT_EQ(p.level(0).rows(), 64);
  EXPECT_EQ(p.level(2).rows(), 16);
}

// Edge case: an image whose sides are exactly min_dim.  The coarsest level
// is allowed to sit right ON the bound; only a level that would fall BELOW
// it is refused, so the pyramid has exactly one level (not zero, no throw).
TEST(Pyramid, ImageExactlyAtMinDim) {
  Rng rng(5);
  const Image img = random_image(rng, 16, 16);
  const Pyramid p(img, 10, 16);
  EXPECT_EQ(p.levels(), 1);
  EXPECT_EQ(p.level(0).rows(), 16);
  EXPECT_EQ(p.level(0).cols(), 16);
}

// And one pixel above the bound on one axis only: halving either axis would
// drop below min_dim, so the image still yields a single level.
TEST(Pyramid, NonSquareImageAtMinDimBoundary) {
  Rng rng(6);
  const Image img = random_image(rng, 17, 64);
  const Pyramid p(img, 10, 16);
  EXPECT_EQ(p.levels(), 1);
  // Double it on that axis and the next level lands exactly on the bound.
  const Image taller = random_image(rng, 32, 64);
  EXPECT_EQ(Pyramid(taller, 10, 16).levels(), 2);
}

TEST(Pyramid, MaxLevelsCap) {
  Rng rng(4);
  const Image img = random_image(rng, 256, 256);
  EXPECT_EQ(Pyramid(img, 2).levels(), 2);
  EXPECT_EQ(Pyramid(img, 1).levels(), 1);
  EXPECT_THROW(Pyramid(img, 0), std::invalid_argument);
}

TEST(Pyramid, DownUpRoundTripIsCloseForSmoothImages) {
  // Smooth content survives a down/up cycle; this bounds interpolation bias.
  Image img(32, 32);
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 32; ++c)
      img(r, c) = 100.f + 20.f * std::sin(0.2f * static_cast<float>(r)) +
                  10.f * std::cos(0.15f * static_cast<float>(c));
  const Image cycled = upsample_to(downsample2(img), 32, 32);
  double max_err = 0;
  for (int r = 2; r < 30; ++r)  // border pixels suffer from clamping bias
    for (int c = 2; c < 30; ++c)
      max_err = std::max(max_err, std::abs(static_cast<double>(img(r, c)) -
                                           cycled(r, c)));
  EXPECT_LT(max_err, 2.5);
}

}  // namespace
}  // namespace chambolle::tvl1
