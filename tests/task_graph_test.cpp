#include "parallel/task_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace chambolle::parallel {
namespace {

// A 1-D chain: node n depends on n-1 and n+1 — the minimal sliding-window
// neighbor structure.
std::vector<std::vector<int>> chain(int n) {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (i > 0) adj[static_cast<std::size_t>(i)].push_back(i - 1);
    if (i + 1 < n) adj[static_cast<std::size_t>(i)].push_back(i + 1);
  }
  return adj;
}

TEST(EpochGraph, RunsEveryNodeEveryPassExactlyOnce) {
  const int n = 12, passes = 7;
  EpochGraph graph(chain(n));
  std::vector<std::atomic<int>> count(static_cast<std::size_t>(n));
  graph.run(passes, 4, default_pool(), [&](int node, int epoch, int) {
    EXPECT_EQ(count[static_cast<std::size_t>(node)].load(), epoch);
    count[static_cast<std::size_t>(node)].fetch_add(1);
  });
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(count[static_cast<std::size_t>(i)].load(), passes);
}

TEST(EpochGraph, NeighborEpochsNeverDriftBeyondOne) {
  // The invariant the parity-double-buffered mailboxes rely on: when
  // body(n, e) runs, every neighbor has completed at least pass e-1 and at
  // most pass e+1.  Checked live, from inside the bodies, under real
  // concurrency.
  const int n = 16, passes = 9;
  const auto adj = chain(n);
  EpochGraph graph(adj);
  std::vector<std::atomic<int>> epoch(static_cast<std::size_t>(n));
  std::atomic<int> violations{0};
  graph.run(passes, 4, default_pool(), [&](int node, int e, int) {
    for (const int m : adj[static_cast<std::size_t>(node)]) {
      const int me = epoch[static_cast<std::size_t>(m)].load();
      if (me < e - 1 || me > e + 1) violations.fetch_add(1);
    }
    epoch[static_cast<std::size_t>(node)].store(e + 1);
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(EpochGraph, IndependentNodesNeedNoOrdering) {
  // No edges: every node free-runs its passes; still exactly-once per epoch.
  EpochGraph graph(std::vector<std::vector<int>>(8));
  std::atomic<int> total{0};
  graph.run(5, 3, default_pool(),
            [&](int, int, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 8 * 5);
}

TEST(EpochGraph, PinningIsStablePerNode) {
  // A node must see the same lane for all its passes (tile residency).
  const int n = 10, passes = 6;
  EpochGraph graph(chain(n));
  std::vector<std::atomic<int>> lane_of(static_cast<std::size_t>(n));
  for (auto& l : lane_of) l.store(-1);
  std::atomic<int> migrations{0};
  graph.run(passes, 3, default_pool(), [&](int node, int, int lane) {
    int expected = -1;
    if (!lane_of[static_cast<std::size_t>(node)].compare_exchange_strong(
            expected, lane) &&
        expected != lane)
      migrations.fetch_add(1);
  });
  EXPECT_EQ(migrations.load(), 0);
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(lane_of[static_cast<std::size_t>(i)].load(),
              graph.owner(i, 3));
}

TEST(EpochGraph, OwnerBlocksAreContiguousAndCoverAllNodes) {
  EpochGraph graph(chain(13));
  int prev = 0;
  for (int node = 0; node < 13; ++node) {
    const int o = graph.owner(node, 4);
    EXPECT_GE(o, prev);  // non-decreasing => contiguous blocks
    EXPECT_LT(o, 4);
    prev = o;
  }
  EXPECT_EQ(graph.owner(12, 4), 3);  // every lane gets work
  EXPECT_THROW((void)graph.owner(13, 4), std::invalid_argument);
}

TEST(EpochGraph, MoreLanesThanNodesDegradesGracefully) {
  const int n = 3;
  EpochGraph graph(chain(n));
  std::atomic<int> total{0};
  graph.run(4, 16, default_pool(), [&](int, int, int lane) {
    EXPECT_LT(lane, n);  // team clamped to the node count
    total.fetch_add(1);
  });
  EXPECT_EQ(total.load(), n * 4);
}

TEST(EpochGraph, ZeroPassesAndEmptyGraphAreNoOps) {
  EpochGraph empty(std::vector<std::vector<int>>{});
  EXPECT_EQ(empty.nodes(), 0);
  empty.run(5, 2, default_pool(), [&](int, int, int) { FAIL(); });
  EpochGraph graph(chain(4));
  graph.run(0, 2, default_pool(), [&](int, int, int) { FAIL(); });
}

TEST(EpochGraph, BodyExceptionAbortsAndPropagates) {
  const int n = 8;
  EpochGraph graph(chain(n));
  EXPECT_THROW(
      graph.run(50, 4, default_pool(),
                [&](int node, int epoch, int) {
                  if (node == 3 && epoch == 2)
                    throw std::runtime_error("boom");
                }),
      std::runtime_error);
  // The graph (and the pool) must remain usable afterwards.
  std::atomic<int> total{0};
  graph.run(2, 2, default_pool(), [&](int, int, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), n * 2);
}

TEST(EpochGraph, RejectsOutOfRangeNeighbors) {
  std::vector<std::vector<int>> adj(2);
  adj[0].push_back(5);
  EXPECT_THROW(EpochGraph{adj}, std::invalid_argument);
  EXPECT_THROW(EpochGraph(chain(3)).run(-1, 2, default_pool(),
                                        [](int, int, int) {}),
               std::invalid_argument);
}

TEST(EpochGraph, ReportsStallStatsOnReuse) {
  // Stall counters are best-effort (may be zero on a fast machine), but the
  // structure must accumulate sanely across runs.
  EpochGraph graph(chain(6));
  const auto s1 = graph.run(3, 2, default_pool(), [](int, int, int) {});
  EXPECT_GE(s1.stall_seconds, 0.0);
  const auto s2 = graph.run(3, 2, default_pool(), [](int, int, int) {});
  EXPECT_GE(s2.stall_spins, 0u);
}

TEST(EpochGraph, AdaptiveRunsToCapWhenNoNodeRetires) {
  // A body that never retires makes run_adaptive equivalent to run(): every
  // node executes exactly max_passes epochs, each exactly once, in order.
  const int n = 12, cap = 7;
  EpochGraph graph(chain(n));
  std::vector<std::atomic<int>> count(static_cast<std::size_t>(n));
  const auto rs = graph.run_adaptive(
      cap, 4, default_pool(), [&](int node, int epoch, int) {
        EXPECT_EQ(count[static_cast<std::size_t>(node)].load(), epoch);
        count[static_cast<std::size_t>(node)].fetch_add(1);
        return false;
      });
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(count[static_cast<std::size_t>(i)].load(), cap);
  EXPECT_EQ(rs.executed_passes, static_cast<std::uint64_t>(n) * cap);
  EXPECT_EQ(rs.retired_nodes, 0u);
}

TEST(EpochGraph, AdaptiveRetirementStopsANodeAndUnblocksNeighbors) {
  // Node 0 retires after its 2nd pass; it must never run again, and the
  // rest of the chain must still reach the cap (no deadlock waiting on the
  // retired node) — the terminal-epoch guarantee the resident engine needs.
  const int n = 8, cap = 20;
  EpochGraph graph(chain(n));
  std::vector<std::atomic<int>> count(static_cast<std::size_t>(n));
  const auto rs = graph.run_adaptive(
      cap, 3, default_pool(), [&](int node, int epoch, int) {
        count[static_cast<std::size_t>(node)].fetch_add(1);
        return node == 0 && epoch == 1;
      });
  EXPECT_EQ(count[0].load(), 2);
  for (int i = 1; i < n; ++i)
    EXPECT_EQ(count[static_cast<std::size_t>(i)].load(), cap);
  EXPECT_EQ(rs.retired_nodes, 1u);
  EXPECT_EQ(rs.executed_passes,
            2u + static_cast<std::uint64_t>(n - 1) * cap);
}

TEST(EpochGraph, AdaptiveEveryPassRunsExactlyOnceUnderStealing) {
  // Most nodes retire on pass 1, funneling all lanes onto the few
  // stragglers: the CAS claim must still serialize every (node, epoch) to
  // exactly one execution.
  const int n = 32, cap = 50;
  EpochGraph graph(chain(n));
  std::vector<std::atomic<int>> count(static_cast<std::size_t>(n));
  const auto rs = graph.run_adaptive(
      cap, 4, default_pool(), [&](int node, int epoch, int) {
        EXPECT_EQ(count[static_cast<std::size_t>(node)].load(), epoch);
        count[static_cast<std::size_t>(node)].fetch_add(1);
        return node % 8 != 0;  // 28 of 32 nodes retire immediately
      });
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(count[static_cast<std::size_t>(i)].load(),
              i % 8 != 0 ? 1 : cap);
  EXPECT_EQ(rs.retired_nodes, 28u);
}

TEST(EpochGraph, AdaptiveRedistributesFreedCapacity) {
  // With 4 lanes and all but the first block's nodes retired up front, the
  // other lanes' capacity must migrate: the straggler's passes land off its
  // preferred lane at least once on a multi-lane run, surfacing as
  // stolen_passes.  (Single-lane machines can't steal; skip there.)
  if (default_pool().lanes_for(0) < 2) GTEST_SKIP() << "needs >= 2 lanes";
  const int n = 16, cap = 200;
  const std::vector<std::vector<int>> no_edges(n);
  EpochGraph graph(no_edges);
  const auto rs = graph.run_adaptive(
      cap, 4, default_pool(),
      [&](int node, int, int) { return node != n - 1; });
  EXPECT_EQ(rs.retired_nodes, static_cast<std::uint64_t>(n - 1));
  // The last node runs cap passes; with its block-mates retired, lanes 0-2
  // drain and scan over.  Stealing is opportunistic, so we assert only the
  // accounting identity, not a minimum steal count.
  EXPECT_EQ(rs.executed_passes,
            static_cast<std::uint64_t>(n - 1) + cap);
  EXPECT_LE(rs.stolen_passes, rs.executed_passes);
}

TEST(EpochGraph, AdaptiveNeighborSkewStillBoundedByOne) {
  // The mailbox-parity invariant must survive retirement and stealing.
  const int n = 16, cap = 12;
  const auto adj = chain(n);
  EpochGraph graph(adj);
  std::vector<std::atomic<int>> epoch(static_cast<std::size_t>(n));
  std::atomic<int> violations{0};
  graph.run_adaptive(cap, 4, default_pool(), [&](int node, int e, int) {
    for (const int m : adj[static_cast<std::size_t>(node)]) {
      const int me = epoch[static_cast<std::size_t>(m)].load();
      // A retired neighbor legitimately reads as "done" (>= e); only
      // lagging beyond one pass is a violation.
      if (me < e - 1) violations.fetch_add(1);
    }
    // Mirror the engine's terminal-epoch convention: a retired node reads
    // as "done with every pass", so neighbors may lap it freely.
    const bool retire = node % 3 == 0 && e >= 2;
    epoch[static_cast<std::size_t>(node)].store(retire ? cap : e + 1);
    return retire;
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(EpochGraph, AdaptiveBodyExceptionAbortsAndPropagates) {
  const int n = 8;
  EpochGraph graph(chain(n));
  EXPECT_THROW(graph.run_adaptive(50, 4, default_pool(),
                                  [&](int node, int epoch, int) {
                                    if (node == 3 && epoch == 2)
                                      throw std::runtime_error("boom");
                                    return false;
                                  }),
               std::runtime_error);
  // Graph and pool stay usable, for both schedulers.
  std::atomic<int> total{0};
  graph.run_adaptive(2, 2, default_pool(), [&](int, int, int) {
    total.fetch_add(1);
    return false;
  });
  EXPECT_EQ(total.load(), n * 2);
}

TEST(EpochGraph, RendezvousFiresAtEveryBoundary) {
  // max_passes = 17, period = 4: firings at pass boundaries 4, 8, 12, 16 —
  // (17 - 1) / 4 = 4 of them; every node still runs every pass exactly once.
  const int n = 10, passes = 17, period = 4;
  EpochGraph graph(chain(n));
  std::vector<std::atomic<int>> count(static_cast<std::size_t>(n));
  std::vector<int> boundaries;
  const auto stats = graph.run_rendezvous(
      passes, period, 4, default_pool(),
      [&](int node, int epoch, int) {
        EXPECT_EQ(count[static_cast<std::size_t>(node)].load(), epoch);
        count[static_cast<std::size_t>(node)].fetch_add(1);
        return false;
      },
      [&](int firing, EpochGraph::RendezvousControl& ctl) {
        EXPECT_EQ(ctl.boundary(), (firing + 1) * period);
        boundaries.push_back(ctl.boundary());
      });
  EXPECT_EQ(stats.rendezvous_fired, 4u);
  EXPECT_EQ(boundaries, (std::vector<int>{4, 8, 12, 16}));
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(count[static_cast<std::size_t>(i)].load(), passes);
}

TEST(EpochGraph, RendezvousWindowIsExclusive) {
  // Inside a firing every live node is parked at EXACTLY the boundary: no
  // node body runs concurrently with the rendezvous, and no node has run
  // past it.  Checked live from inside the firing, under real concurrency.
  const int n = 12, passes = 25, period = 5;
  EpochGraph graph(chain(n));
  std::vector<std::atomic<int>> count(static_cast<std::size_t>(n));
  std::atomic<int> violations{0};
  graph.run_rendezvous(
      passes, period, 4, default_pool(),
      [&](int node, int, int) {
        count[static_cast<std::size_t>(node)].fetch_add(1);
        return false;
      },
      [&](int, EpochGraph::RendezvousControl& ctl) {
        for (int i = 0; i < n; ++i)
          if (count[static_cast<std::size_t>(i)].load() != ctl.boundary())
            violations.fetch_add(1);
      });
  EXPECT_EQ(violations.load(), 0);
}

TEST(EpochGraph, RendezvousRetiredNodesStayParked) {
  // Node 0 retires after pass 3; later firings see its count unchanged and
  // the other nodes keep their exact boundary counts.
  const int n = 6, passes = 13, period = 4;
  EpochGraph graph(chain(n));
  std::vector<std::atomic<int>> count(static_cast<std::size_t>(n));
  std::atomic<int> bad{0};
  graph.run_rendezvous(
      passes, period, 3, default_pool(),
      [&](int node, int epoch, int) {
        count[static_cast<std::size_t>(node)].fetch_add(1);
        return node == 0 && epoch == 2;  // retired with 3 passes done
      },
      [&](int, EpochGraph::RendezvousControl& ctl) {
        if (count[0].load() != 3) bad.fetch_add(1);
        for (int i = 1; i < n; ++i)
          if (count[static_cast<std::size_t>(i)].load() != ctl.boundary())
            bad.fetch_add(1);
      });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(count[0].load(), 3);
  for (int i = 1; i < n; ++i)
    EXPECT_EQ(count[static_cast<std::size_t>(i)].load(), passes);
}

TEST(EpochGraph, RendezvousResurrectionResumesANode) {
  // Node 0 retires before the first firing; the firing un-retires it, and it
  // then runs every remaining pass from the boundary to the cap.
  const int n = 5, passes = 11, period = 4;
  EpochGraph graph(chain(n));
  std::vector<std::atomic<int>> count(static_cast<std::size_t>(n));
  std::atomic<int> resurrections{0};
  graph.run_rendezvous(
      passes, period, 3, default_pool(),
      [&](int node, int, int) {
        const int c =
            count[static_cast<std::size_t>(node)].fetch_add(1) + 1;
        return node == 0 && c == 2 && resurrections.load() == 0;
      },
      [&](int firing, EpochGraph::RendezvousControl& ctl) {
        if (firing == 0) {
          EXPECT_EQ(count[0].load(), 2);
          ctl.resurrect(0);
          resurrections.fetch_add(1);
        }
      });
  // Node 0: passes 0..1 before retiring, then passes 4..10 after the
  // boundary-4 resurrection = 9 total; everyone else runs all 11.
  EXPECT_EQ(resurrections.load(), 1);
  EXPECT_EQ(count[0].load(), 2 + (passes - period));
  for (int i = 1; i < n; ++i)
    EXPECT_EQ(count[static_cast<std::size_t>(i)].load(), passes);
}

TEST(EpochGraph, RendezvousDegeneratesToAdaptive) {
  // period <= 0 and period >= max_passes realize no firing: the run must be
  // exactly run_adaptive — all passes execute, the rendezvous never fires.
  const int n = 6;
  EpochGraph graph(chain(n));
  for (const int period : {0, -3, 7, 100}) {
    std::atomic<int> total{0};
    const auto stats = graph.run_rendezvous(
        7, period, 3, default_pool(),
        [&](int, int, int) {
          total.fetch_add(1);
          return false;
        },
        [&](int, EpochGraph::RendezvousControl&) { ADD_FAILURE(); });
    EXPECT_EQ(total.load(), n * 7) << "period=" << period;
    EXPECT_EQ(stats.rendezvous_fired, 0u) << "period=" << period;
  }
}

TEST(EpochGraph, RendezvousAllRetiredEndsRunWithoutTrailingFirings) {
  // Every node retires immediately; the scheduler must terminate without
  // running all nominal firings (finished fleet + no resurrection ends it).
  const int n = 4;
  EpochGraph graph(chain(n));
  std::atomic<int> firings{0};
  const auto stats = graph.run_rendezvous(
      41, 4, 3, default_pool(), [&](int, int, int) { return true; },
      [&](int, EpochGraph::RendezvousControl&) { firings.fetch_add(1); });
  EXPECT_LE(firings.load(), 1);
  EXPECT_EQ(stats.retired_nodes, static_cast<std::uint64_t>(n));
}

TEST(EpochGraph, AdaptiveZeroPassesAndEmptyGraphAreNoOps) {
  EpochGraph empty(std::vector<std::vector<int>>{});
  empty.run_adaptive(5, 2, default_pool(), [&](int, int, int) -> bool {
    ADD_FAILURE();
    return false;
  });
  EpochGraph graph(chain(4));
  graph.run_adaptive(0, 2, default_pool(), [&](int, int, int) -> bool {
    ADD_FAILURE();
    return false;
  });
  EXPECT_THROW(graph.run_adaptive(-1, 2, default_pool(),
                                  [](int, int, int) { return false; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace chambolle::parallel
