#include "parallel/task_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace chambolle::parallel {
namespace {

// A 1-D chain: node n depends on n-1 and n+1 — the minimal sliding-window
// neighbor structure.
std::vector<std::vector<int>> chain(int n) {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (i > 0) adj[static_cast<std::size_t>(i)].push_back(i - 1);
    if (i + 1 < n) adj[static_cast<std::size_t>(i)].push_back(i + 1);
  }
  return adj;
}

TEST(EpochGraph, RunsEveryNodeEveryPassExactlyOnce) {
  const int n = 12, passes = 7;
  EpochGraph graph(chain(n));
  std::vector<std::atomic<int>> count(static_cast<std::size_t>(n));
  graph.run(passes, 4, default_pool(), [&](int node, int epoch, int) {
    EXPECT_EQ(count[static_cast<std::size_t>(node)].load(), epoch);
    count[static_cast<std::size_t>(node)].fetch_add(1);
  });
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(count[static_cast<std::size_t>(i)].load(), passes);
}

TEST(EpochGraph, NeighborEpochsNeverDriftBeyondOne) {
  // The invariant the parity-double-buffered mailboxes rely on: when
  // body(n, e) runs, every neighbor has completed at least pass e-1 and at
  // most pass e+1.  Checked live, from inside the bodies, under real
  // concurrency.
  const int n = 16, passes = 9;
  const auto adj = chain(n);
  EpochGraph graph(adj);
  std::vector<std::atomic<int>> epoch(static_cast<std::size_t>(n));
  std::atomic<int> violations{0};
  graph.run(passes, 4, default_pool(), [&](int node, int e, int) {
    for (const int m : adj[static_cast<std::size_t>(node)]) {
      const int me = epoch[static_cast<std::size_t>(m)].load();
      if (me < e - 1 || me > e + 1) violations.fetch_add(1);
    }
    epoch[static_cast<std::size_t>(node)].store(e + 1);
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(EpochGraph, IndependentNodesNeedNoOrdering) {
  // No edges: every node free-runs its passes; still exactly-once per epoch.
  EpochGraph graph(std::vector<std::vector<int>>(8));
  std::atomic<int> total{0};
  graph.run(5, 3, default_pool(),
            [&](int, int, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 8 * 5);
}

TEST(EpochGraph, PinningIsStablePerNode) {
  // A node must see the same lane for all its passes (tile residency).
  const int n = 10, passes = 6;
  EpochGraph graph(chain(n));
  std::vector<std::atomic<int>> lane_of(static_cast<std::size_t>(n));
  for (auto& l : lane_of) l.store(-1);
  std::atomic<int> migrations{0};
  graph.run(passes, 3, default_pool(), [&](int node, int, int lane) {
    int expected = -1;
    if (!lane_of[static_cast<std::size_t>(node)].compare_exchange_strong(
            expected, lane) &&
        expected != lane)
      migrations.fetch_add(1);
  });
  EXPECT_EQ(migrations.load(), 0);
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(lane_of[static_cast<std::size_t>(i)].load(),
              graph.owner(i, 3));
}

TEST(EpochGraph, OwnerBlocksAreContiguousAndCoverAllNodes) {
  EpochGraph graph(chain(13));
  int prev = 0;
  for (int node = 0; node < 13; ++node) {
    const int o = graph.owner(node, 4);
    EXPECT_GE(o, prev);  // non-decreasing => contiguous blocks
    EXPECT_LT(o, 4);
    prev = o;
  }
  EXPECT_EQ(graph.owner(12, 4), 3);  // every lane gets work
  EXPECT_THROW((void)graph.owner(13, 4), std::invalid_argument);
}

TEST(EpochGraph, MoreLanesThanNodesDegradesGracefully) {
  const int n = 3;
  EpochGraph graph(chain(n));
  std::atomic<int> total{0};
  graph.run(4, 16, default_pool(), [&](int, int, int lane) {
    EXPECT_LT(lane, n);  // team clamped to the node count
    total.fetch_add(1);
  });
  EXPECT_EQ(total.load(), n * 4);
}

TEST(EpochGraph, ZeroPassesAndEmptyGraphAreNoOps) {
  EpochGraph empty(std::vector<std::vector<int>>{});
  EXPECT_EQ(empty.nodes(), 0);
  empty.run(5, 2, default_pool(), [&](int, int, int) { FAIL(); });
  EpochGraph graph(chain(4));
  graph.run(0, 2, default_pool(), [&](int, int, int) { FAIL(); });
}

TEST(EpochGraph, BodyExceptionAbortsAndPropagates) {
  const int n = 8;
  EpochGraph graph(chain(n));
  EXPECT_THROW(
      graph.run(50, 4, default_pool(),
                [&](int node, int epoch, int) {
                  if (node == 3 && epoch == 2)
                    throw std::runtime_error("boom");
                }),
      std::runtime_error);
  // The graph (and the pool) must remain usable afterwards.
  std::atomic<int> total{0};
  graph.run(2, 2, default_pool(), [&](int, int, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), n * 2);
}

TEST(EpochGraph, RejectsOutOfRangeNeighbors) {
  std::vector<std::vector<int>> adj(2);
  adj[0].push_back(5);
  EXPECT_THROW(EpochGraph{adj}, std::invalid_argument);
  EXPECT_THROW(EpochGraph(chain(3)).run(-1, 2, default_pool(),
                                        [](int, int, int) {}),
               std::invalid_argument);
}

TEST(EpochGraph, ReportsStallStatsOnReuse) {
  // Stall counters are best-effort (may be zero on a fast machine), but the
  // structure must accumulate sanely across runs.
  EpochGraph graph(chain(6));
  const auto s1 = graph.run(3, 2, default_pool(), [](int, int, int) {});
  EXPECT_GE(s1.stall_seconds, 0.0);
  const auto s2 = graph.run(3, 2, default_pool(), [](int, int, int) {});
  EXPECT_GE(s2.stall_spins, 0u);
}

}  // namespace
}  // namespace chambolle::parallel
