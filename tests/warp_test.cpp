#include "tvl1/warp.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle::tvl1 {
namespace {

TEST(Warp, BilinearSampleAtGridPoints) {
  Image img(2, 2);
  img(0, 0) = 1.f;
  img(0, 1) = 2.f;
  img(1, 0) = 3.f;
  img(1, 1) = 4.f;
  EXPECT_FLOAT_EQ(sample_bilinear(img, 0.f, 0.f), 1.f);
  EXPECT_FLOAT_EQ(sample_bilinear(img, 1.f, 1.f), 4.f);
}

TEST(Warp, BilinearSampleInterpolates) {
  Image img(2, 2);
  img(0, 0) = 0.f;
  img(0, 1) = 10.f;
  img(1, 0) = 20.f;
  img(1, 1) = 30.f;
  EXPECT_FLOAT_EQ(sample_bilinear(img, 0.f, 0.5f), 5.f);
  EXPECT_FLOAT_EQ(sample_bilinear(img, 0.5f, 0.f), 10.f);
  EXPECT_FLOAT_EQ(sample_bilinear(img, 0.5f, 0.5f), 15.f);
}

TEST(Warp, BilinearSampleClampsAtBorders) {
  Image img(2, 2, 9.f);
  EXPECT_FLOAT_EQ(sample_bilinear(img, -5.f, -5.f), 9.f);
  EXPECT_FLOAT_EQ(sample_bilinear(img, 10.f, 10.f), 9.f);
}

TEST(Warp, ZeroFlowIsIdentity) {
  Rng rng(1);
  const Image img = random_image(rng, 8, 8);
  const FlowField flow(8, 8);
  EXPECT_EQ(warp(img, flow), img);
}

TEST(Warp, ShapeMismatchThrows) {
  const Image img(4, 4);
  const FlowField flow(3, 3);
  EXPECT_THROW(warp(img, flow), std::invalid_argument);
}

TEST(Warp, WarpUndoesTranslation) {
  // frame1 = frame0 translated by (dx, dy); warping frame1 by the true flow
  // must recover frame0 in the interior up to bilinear interpolation error,
  // and reduce the frame difference by an order of magnitude.
  const auto wl = workloads::translating_scene(32, 32, 2.5f, -1.5f);
  const Image warped = warp(wl.frame1, wl.ground_truth);
  double err_warped = 0.0, err_raw = 0.0;
  for (int r = 6; r < 26; ++r)
    for (int c = 6; c < 26; ++c) {
      EXPECT_NEAR(warped(r, c), wl.frame0(r, c), 4.0f) << r << "," << c;
      err_warped += std::abs(warped(r, c) - wl.frame0(r, c));
      err_raw += std::abs(wl.frame1(r, c) - wl.frame0(r, c));
    }
  EXPECT_LT(err_warped * 10.0, err_raw);
}

TEST(Warp, GradientsOfLinearRamp) {
  Image img(5, 5);
  for (int r = 0; r < 5; ++r)
    for (int c = 0; c < 5; ++c) img(r, c) = 2.f * static_cast<float>(c) - 3.f * static_cast<float>(r);
  const Gradients g = gradients(img);
  for (int r = 0; r < 5; ++r)
    for (int c = 0; c < 5; ++c) {
      EXPECT_NEAR(g.gx(r, c), 2.f, 1e-5);
      EXPECT_NEAR(g.gy(r, c), -3.f, 1e-5);
    }
}

TEST(Warp, GradientsOfConstantAreZero) {
  const Gradients g = gradients(Image(6, 6, 4.f));
  for (float v : g.gx) EXPECT_FLOAT_EQ(v, 0.f);
  for (float v : g.gy) EXPECT_FLOAT_EQ(v, 0.f);
}

TEST(Warp, WarpWithGradientsMatchesSeparateCalls) {
  const auto wl = workloads::translating_scene(24, 24, 1.f, 1.f);
  const WarpResult wr = warp_with_gradients(wl.frame1, wl.ground_truth);
  EXPECT_EQ(wr.warped, warp(wl.frame1, wl.ground_truth));
  // Gradients sampled at integer offsets equal shifted source gradients.
  const Gradients src = gradients(wl.frame1);
  for (int r = 2; r < 22; ++r)
    for (int c = 2; c < 22; ++c)
      EXPECT_NEAR(wr.grad.gx(r, c), src.gx(r + 1, c + 1), 1e-4);
}

}  // namespace
}  // namespace chambolle::tvl1
