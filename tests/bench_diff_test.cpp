// bench_diff_test.cpp — the noise-aware perf-regression gate.
//
// Unit tests of the library half of tools/bench_diff: BENCH report parsing,
// the regression / improvement / unchanged / missing classification, the
// MAD-based noise widening that keeps scattering benchmarks from tripping
// the fixed threshold on scheduler luck, and the machine-readable verdict
// the CI job consumes.
#include <gtest/gtest.h>

#include <string>

#include "telemetry/bench_diff.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/json_util.hpp"

namespace chambolle {
namespace {

namespace tel = telemetry;

tel::BenchReport make_report(double median, double mad) {
  tel::BenchReport r;
  r.name = "micro_chambolle";
  r.wall_ms = 100.0;
  r.params["solve_ms_median"] = std::to_string(median);
  r.params["solve_ms_mad"] = std::to_string(mad);
  r.params["solve_ms_n"] = "5";
  r.params["threads"] = "4";  // non-timing params are ignored by the diff
  return r;
}

const tel::KeyDiff* find_key(const tel::BenchDiffResult& r,
                             const std::string& key) {
  for (const tel::KeyDiff& d : r.keys)
    if (d.key == key) return &d;
  return nullptr;
}

TEST(BenchDiffParse, RoundTripsRealBenchReportJson) {
  // Feed it the actual producer's output, stats keys included.
  tel::BenchParams params{{"threads", "4"}};
  tel::append_repeat_stats(params, "solve_ms",
                           tel::repeat_stats({10.0, 11.0, 12.0}));
  const std::string json =
      tel::bench_report_json("micro_chambolle", params, 33.0);

  tel::BenchReport report;
  ASSERT_TRUE(tel::parse_bench_report(json, &report));
  EXPECT_EQ(report.name, "micro_chambolle");
  EXPECT_DOUBLE_EQ(report.wall_ms, 33.0);
  EXPECT_EQ(report.params.at("threads"), "4");
  EXPECT_EQ(report.params.at("solve_ms_median"), "11.000");
  EXPECT_EQ(report.params.at("solve_ms_mad"), "1.000");
  EXPECT_EQ(report.params.at("solve_ms_n"), "3");
}

TEST(BenchDiffParse, ToleratesNumericParamsAndUnknownKeys) {
  const std::string json =
      "{\"name\": \"b\", \"wall_ms\": 5.5,"
      " \"metrics\": {\"counters\": {\"x\": 3}, \"list\": [1, [2], {}]},"
      " \"params\": {\"solve_ms_median\": 7.25, \"tag\": \"v\\\"q\"}}";
  tel::BenchReport report;
  ASSERT_TRUE(tel::parse_bench_report(json, &report));
  EXPECT_EQ(report.name, "b");
  EXPECT_EQ(report.params.at("solve_ms_median"), "7.25");
  EXPECT_EQ(report.params.at("tag"), "v\"q");
}

TEST(BenchDiffParse, RejectsMalformedInput) {
  tel::BenchReport report;
  EXPECT_FALSE(tel::parse_bench_report("", &report));
  EXPECT_FALSE(tel::parse_bench_report("not json", &report));
  EXPECT_FALSE(tel::parse_bench_report("{\"name\": \"x\"", &report));
  EXPECT_FALSE(tel::parse_bench_report("[1, 2]", &report));  // not an object
  EXPECT_FALSE(tel::parse_bench_report("{\"name\": \"x\"} trailing", &report));
  EXPECT_FALSE(tel::parse_bench_report("{\"name\": \"x\"}", nullptr));
}

TEST(BenchDiff, ClassifiesRegressionImprovementUnchanged) {
  const tel::BenchReport base = make_report(100.0, 0.5);
  // +30% with ~0.5% noise: far past both the fixed and noise thresholds.
  {
    const tel::BenchDiffResult r = tel::bench_diff(base, make_report(130.0, 0.5));
    const tel::KeyDiff* d = find_key(r, "solve_ms");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->status, tel::DiffStatus::kRegression);
    EXPECT_NEAR(d->delta, 0.30, 1e-9);
    EXPECT_DOUBLE_EQ(d->threshold, 0.10);  // tight repeats: fixed wins
    EXPECT_TRUE(r.has_regression());
  }
  {
    const tel::BenchDiffResult r = tel::bench_diff(base, make_report(80.0, 0.5));
    ASSERT_NE(find_key(r, "solve_ms"), nullptr);
    EXPECT_EQ(find_key(r, "solve_ms")->status, tel::DiffStatus::kImprovement);
    EXPECT_FALSE(r.has_regression());
  }
  {
    const tel::BenchDiffResult r = tel::bench_diff(base, make_report(104.0, 0.5));
    EXPECT_EQ(find_key(r, "solve_ms")->status, tel::DiffStatus::kUnchanged);
    EXPECT_FALSE(r.has_regression());
  }
}

TEST(BenchDiff, NoisyBenchmarkWidensItsOwnThreshold) {
  // A 12% move would trip the 10% fixed gate, but the repeats scatter with a
  // MAD of 5ms on each side: threshold = 3 * (5 + 5) / 100 = 30%.
  const tel::BenchDiffResult r =
      tel::bench_diff(make_report(100.0, 5.0), make_report(112.0, 5.0));
  const tel::KeyDiff* d = find_key(r, "solve_ms");
  ASSERT_NE(d, nullptr);
  EXPECT_NEAR(d->threshold, 0.30, 1e-9);
  EXPECT_EQ(d->status, tel::DiffStatus::kUnchanged);
  EXPECT_FALSE(r.has_regression());
  // A 40% move clears even the widened threshold.
  EXPECT_TRUE(
      tel::bench_diff(make_report(100.0, 5.0), make_report(140.0, 5.0))
          .has_regression());
}

TEST(BenchDiff, FallsBackToMinMaxSpreadWhenNoMad) {
  // Older reports carry only min/median/max: noise = half the spread.
  tel::BenchReport base;
  base.params["solve_ms_median"] = "100.0";
  base.params["solve_ms_min"] = "90.0";
  base.params["solve_ms_max"] = "110.0";  // spread 20 -> noise 10%
  tel::BenchReport pr = base;
  pr.params["solve_ms_median"] = "125.0";
  const tel::BenchDiffResult r = tel::bench_diff(base, pr);
  const tel::KeyDiff* d = find_key(r, "solve_ms");
  ASSERT_NE(d, nullptr);
  // 3 * (10% + 10%) = 60% widened threshold: a 25% move is noise here.
  EXPECT_NEAR(d->threshold, 0.60, 1e-9);
  EXPECT_EQ(d->status, tel::DiffStatus::kUnchanged);
}

TEST(BenchDiff, SingleSampleSideUsesFallbackNoiseNotZeroMad) {
  // _n == 1 regression: the MAD of one repeat is identically 0 (the sample's
  // deviation from itself), which used to collapse that side's noise to zero
  // and leave only the 10% fixed gate — a one-shot bench then tripped CI on
  // scheduler luck.  A single-sample side now contributes the explicit
  // single_sample_noise floor (default 0.08) instead.
  tel::BenchReport base = make_report(100.0, 0.0);
  base.params["solve_ms_n"] = "1";
  const tel::BenchReport pr = make_report(115.0, 0.5);  // n=5, tight repeats
  const tel::BenchDiffResult r = tel::bench_diff(base, pr);
  const tel::KeyDiff* d = find_key(r, "solve_ms");
  ASSERT_NE(d, nullptr);
  // 3 * (0.08 + 0.5/100) = 25.5%: a 15% one-shot move is noise, not a
  // regression.
  EXPECT_NEAR(d->threshold, 0.255, 1e-9);
  EXPECT_EQ(d->status, tel::DiffStatus::kUnchanged);
}

TEST(BenchDiff, BothSidesSingleSampleWidenIndependently) {
  tel::BenchReport base = make_report(100.0, 0.0);
  base.params["solve_ms_n"] = "1";
  tel::BenchReport pr = make_report(130.0, 0.0);
  pr.params["solve_ms_n"] = "1";
  const tel::BenchDiffResult both = tel::bench_diff(base, pr);
  const tel::KeyDiff* d = find_key(both, "solve_ms");
  ASSERT_NE(d, nullptr);
  EXPECT_NEAR(d->threshold, 0.48, 1e-9);  // 3 * (0.08 + 0.08)
  EXPECT_EQ(d->status, tel::DiffStatus::kUnchanged);
  // A genuinely huge one-shot move still registers.
  pr.params["solve_ms_median"] = "160.0";
  EXPECT_TRUE(tel::bench_diff(base, pr).has_regression());
  // The fallback is a knob: forcing it to 0 restores the old behaviour.
  tel::BenchDiffOptions strict;
  strict.single_sample_noise = 0.0;
  pr.params["solve_ms_median"] = "130.0";
  const tel::BenchDiffResult r = tel::bench_diff(base, pr, strict);
  EXPECT_DOUBLE_EQ(find_key(r, "solve_ms")->threshold, 0.10);
  EXPECT_TRUE(r.has_regression());
}

TEST(BenchDiff, MultiSampleSidesIgnoreTheSingleSampleFallback) {
  // n > 1 on both sides: the MAD path is untouched by the fallback knob.
  const tel::BenchDiffResult r =
      tel::bench_diff(make_report(100.0, 0.5), make_report(104.0, 0.5));
  const tel::KeyDiff* d = find_key(r, "solve_ms");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->threshold, 0.10);  // 3 * (0.005 + 0.005) < fixed gate
}

TEST(BenchDiff, MissingKeysAreReportedButNeverFatal) {
  tel::BenchReport base = make_report(100.0, 0.5);
  base.params["old_bench_ms_median"] = "50.0";  // removed by the PR
  tel::BenchReport pr = make_report(100.0, 0.5);
  pr.params["new_bench_ms_median"] = "25.0";  // added by the PR
  const tel::BenchDiffResult r = tel::bench_diff(base, pr);
  const tel::KeyDiff* removed = find_key(r, "old_bench_ms");
  const tel::KeyDiff* added = find_key(r, "new_bench_ms");
  ASSERT_NE(removed, nullptr);
  ASSERT_NE(added, nullptr);
  EXPECT_EQ(removed->status, tel::DiffStatus::kMissing);
  EXPECT_EQ(added->status, tel::DiffStatus::kMissing);
  EXPECT_FALSE(r.has_regression());
  // A degenerate (zero) base median cannot form a ratio: missing, not a div0.
  tel::BenchReport zero = make_report(0.0, 0.0);
  const tel::BenchDiffResult degenerate = tel::bench_diff(zero, pr);
  EXPECT_EQ(find_key(degenerate, "solve_ms")->status,
            tel::DiffStatus::kMissing);
}

TEST(BenchDiff, OnlyTimingMediansAreCompared) {
  tel::BenchReport base = make_report(100.0, 0.5);
  base.params["cells_per_second_median"] = "100";  // not an _ms stem
  base.params["solve_ms_min"] = "99";              // not a _median key
  tel::BenchReport pr = base;
  pr.params["cells_per_second_median"] = "10";  // 10x worse, but ignored
  pr.params["solve_ms_min"] = "999";
  const tel::BenchDiffResult r = tel::bench_diff(base, pr);
  ASSERT_EQ(r.keys.size(), 1u);
  EXPECT_EQ(r.keys[0].key, "solve_ms");
}

TEST(BenchDiff, VerdictJsonAndTable) {
  const tel::BenchDiffResult pass =
      tel::bench_diff(make_report(100.0, 0.5), make_report(101.0, 0.5));
  const tel::BenchDiffResult fail =
      tel::bench_diff(make_report(100.0, 0.5), make_report(150.0, 0.5));
  for (const tel::BenchDiffResult* r : {&pass, &fail})
    ASSERT_TRUE(tel::json_well_formed(r->to_json()));
  EXPECT_NE(pass.to_json().find("\"verdict\": \"pass\""), std::string::npos);
  EXPECT_NE(fail.to_json().find("\"verdict\": \"regression\""),
            std::string::npos);
  EXPECT_NE(pass.to_table().find("VERDICT: PASS"), std::string::npos);
  EXPECT_NE(fail.to_table().find("VERDICT: REGRESSION"), std::string::npos);
  EXPECT_NE(fail.to_table().find("solve_ms"), std::string::npos);
  // An empty diff still renders a decidable table.
  const tel::BenchDiffResult empty = tel::bench_diff({}, {});
  EXPECT_NE(empty.to_table().find("VERDICT: PASS"), std::string::npos);

  EXPECT_STREQ(tel::diff_status_name(tel::DiffStatus::kUnchanged),
               "unchanged");
  EXPECT_STREQ(tel::diff_status_name(tel::DiffStatus::kImprovement),
               "improvement");
  EXPECT_STREQ(tel::diff_status_name(tel::DiffStatus::kRegression),
               "regression");
  EXPECT_STREQ(tel::diff_status_name(tel::DiffStatus::kMissing), "missing");
}

}  // namespace
}  // namespace chambolle
