// common_utils_test.cpp — the small shared utilities (RNG, stopwatch).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"

namespace chambolle {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.f, 3.f);
    EXPECT_GE(v, -2.f);
    EXPECT_LT(v, 3.f);
    const int n = rng.uniform_int(5, 9);
    EXPECT_GE(n, 5);
    EXPECT_LE(n, 9);
  }
}

TEST(Rng, UniformIntCoversTheWholeRange) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, GaussianHasRoughlyTheRequestedMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian(5.f, 2.f);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, RandomImageShapeAndRange) {
  Rng rng(17);
  const Image img = random_image(rng, 6, 9, 10.f, 20.f);
  EXPECT_EQ(img.rows(), 6);
  EXPECT_EQ(img.cols(), 9);
  for (float v : img) {
    EXPECT_GE(v, 10.f);
    EXPECT_LT(v, 20.f);
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  // Burn a little CPU deterministically.
  volatile double x = 0;
  for (int i = 0; i < 200000; ++i) x += static_cast<double>(i) * 1e-9;
  const double s = w.seconds();
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 10.0);
  EXPECT_NEAR(w.milliseconds(), w.seconds() * 1e3, w.seconds() * 20);
}

TEST(Stopwatch, ResetRestartsTheClock) {
  Stopwatch w;
  volatile double x = 0;
  for (int i = 0; i < 200000; ++i) x += static_cast<double>(i) * 1e-9;
  const double before = w.seconds();
  w.reset();
  EXPECT_LT(w.seconds(), before + 1e-3);
}

}  // namespace
}  // namespace chambolle
