#include "workloads/flow_eval.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chambolle::workloads {
namespace {

TEST(FlowEval, PerfectFlowIsAllZeros) {
  FlowField a(8, 8), b(8, 8);
  a.fill(1.f, -1.f);
  b.fill(1.f, -1.f);
  const FlowErrorStats s = evaluate_flow(a, b);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.r05, 0.0);
  EXPECT_EQ(s.pixels, 64);
  EXPECT_EQ(s.histogram[0], 64);
}

TEST(FlowEval, UniformErrorLandsInOneBin) {
  FlowField a(10, 10), b(10, 10);
  a.fill(1.3f, 0.f);  // endpoint error 1.3 everywhere
  const FlowErrorStats s = evaluate_flow(a, b);
  EXPECT_NEAR(s.mean, 1.3, 1e-6);
  EXPECT_NEAR(s.median, 1.3, 1e-6);
  EXPECT_NEAR(s.p99, 1.3, 1e-6);
  EXPECT_DOUBLE_EQ(s.r10, 1.0);
  EXPECT_DOUBLE_EQ(s.r20, 0.0);
  EXPECT_EQ(s.histogram[5], 100);  // 1.3 / 0.25 = 5.2 -> bin 5
}

TEST(FlowEval, PercentilesOrdered) {
  Rng rng(3);
  FlowField a(32, 32), b(32, 32);
  for (float& v : a.u1) v = rng.uniform(0.f, 3.f);
  const FlowErrorStats s = evaluate_flow(a, b);
  EXPECT_LE(s.median, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_GE(s.r05, s.r10);
  EXPECT_GE(s.r10, s.r20);
}

TEST(FlowEval, MarginCropsOutliers) {
  FlowField a(10, 10), b(10, 10);
  a.u1(0, 0) = 100.f;  // border outlier
  const FlowErrorStats inner = evaluate_flow(a, b, 1);
  EXPECT_DOUBLE_EQ(inner.max, 0.0);
  EXPECT_EQ(inner.pixels, 64);
  const FlowErrorStats full = evaluate_flow(a, b, 0);
  EXPECT_DOUBLE_EQ(full.max, 100.0);
}

TEST(FlowEval, OverflowBinCatchesLargeErrors) {
  FlowField a(4, 4), b(4, 4);
  a.fill(50.f, 0.f);
  const FlowErrorStats s = evaluate_flow(a, b);
  EXPECT_EQ(s.histogram[15], 16);
}

TEST(FlowEval, SparklineHasSixteenCells) {
  FlowField a(6, 6), b(6, 6);
  const FlowErrorStats s = evaluate_flow(a, b);
  EXPECT_EQ(histogram_sparkline(s).size(), 16u);
  // The all-in-bin-0 case renders a peak first cell.
  EXPECT_EQ(histogram_sparkline(s)[0], '#');
}

TEST(FlowEval, ShapeMismatchThrows) {
  EXPECT_THROW((void)evaluate_flow(FlowField(2, 2), FlowField(3, 3)),
               std::invalid_argument);
  EXPECT_THROW((void)evaluate_flow(FlowField(2, 2), FlowField(2, 2), -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace chambolle::workloads
