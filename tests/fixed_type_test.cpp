#include "fixedpoint/fixed.hpp"

#include <gtest/gtest.h>

namespace chambolle::fx {
namespace {

TEST(FixedType, FromRealRoundTrip) {
  const auto f = Fixed<8, 8>::from_real(3.25);
  EXPECT_DOUBLE_EQ(f.to_real(), 3.25);
}

TEST(FixedType, SaturatesToDeclaredWidth) {
  // Q1.8 (DualFx): 9 bits total, range [-1, 255/256].
  EXPECT_DOUBLE_EQ(DualFx::from_real(2.0).to_real(), 255.0 / 256.0);
  EXPECT_DOUBLE_EQ(DualFx::from_real(-2.0).to_real(), -1.0);
  EXPECT_DOUBLE_EQ(DualFx::from_real(0.5).to_real(), 0.5);
}

TEST(FixedType, VFxRange) {
  // Q5.8: 13 bits, range [-16, 16).
  EXPECT_DOUBLE_EQ(VFx::from_real(100.0).to_real(), 4095.0 / 256.0);
  EXPECT_DOUBLE_EQ(VFx::from_real(-100.0).to_real(), -16.0);
}

TEST(FixedType, AdditionSaturates) {
  const auto a = DualFx::from_real(0.75);
  const auto sum = a + a;  // 1.5 saturates to the format max
  EXPECT_DOUBLE_EQ(sum.to_real(), 255.0 / 256.0);
}

TEST(FixedType, SubtractionAndNegation) {
  const auto a = VFx::from_real(2.5);
  const auto b = VFx::from_real(1.0);
  EXPECT_DOUBLE_EQ((a - b).to_real(), 1.5);
  EXPECT_DOUBLE_EQ((-a).to_real(), -2.5);
}

TEST(FixedType, Multiplication) {
  const auto a = VFx::from_real(1.5);
  const auto b = VFx::from_real(2.0);
  EXPECT_DOUBLE_EQ((a * b).to_real(), 3.0);
}

TEST(FixedType, ComparisonOperators) {
  const auto a = VFx::from_real(1.0);
  const auto b = VFx::from_real(2.0);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, VFx::from_real(1.0));
  EXPECT_GT(b, a);
}

TEST(FixedType, RawAccess) {
  EXPECT_EQ(VFx::from_real(1.0).raw(), 256);
  EXPECT_EQ(DualFx::from_real(-1.0).raw(), -256);
}

}  // namespace
}  // namespace chambolle::fx
