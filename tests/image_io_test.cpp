#include "common/image_io.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace chambolle::io {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ImageIo, PgmRoundTrip) {
  Image img(3, 5);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 5; ++c) img(r, c) = static_cast<float>(10 * r + c);
  const std::string path = temp_path("chb_io_roundtrip.pgm");
  write_pgm(path, img);
  const Image back = read_pgm(path);
  ASSERT_EQ(back.rows(), 3);
  ASSERT_EQ(back.cols(), 5);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 5; ++c) EXPECT_FLOAT_EQ(back(r, c), img(r, c));
  std::remove(path.c_str());
}

TEST(ImageIo, PgmClampsOutOfRangeIntensities) {
  Image img(1, 3);
  img(0, 0) = -5.f;
  img(0, 1) = 300.f;
  img(0, 2) = 127.4f;
  const std::string path = temp_path("chb_io_clamp.pgm");
  write_pgm(path, img);
  const Image back = read_pgm(path);
  EXPECT_FLOAT_EQ(back(0, 0), 0.f);
  EXPECT_FLOAT_EQ(back(0, 1), 255.f);
  EXPECT_FLOAT_EQ(back(0, 2), 127.f);
  std::remove(path.c_str());
}

TEST(ImageIo, PgmRejectsWrongMagic) {
  const std::string path = temp_path("chb_io_magic.pgm");
  std::ofstream(path) << "P2\n1 1\n255\n0\n";
  EXPECT_THROW(read_pgm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ImageIo, PgmRejectsTruncatedRaster) {
  const std::string path = temp_path("chb_io_trunc.pgm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P5\n4 4\n255\n";
    out.put('x');  // only 1 of 16 bytes
  }
  EXPECT_THROW(read_pgm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ImageIo, PgmSkipsComments) {
  const std::string path = temp_path("chb_io_comment.pgm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P5\n# a comment line\n2 1\n# another\n255\n";
    out.put(static_cast<char>(42));
    out.put(static_cast<char>(43));
  }
  const Image img = read_pgm(path);
  EXPECT_FLOAT_EQ(img(0, 0), 42.f);
  EXPECT_FLOAT_EQ(img(0, 1), 43.f);
  std::remove(path.c_str());
}

TEST(ImageIo, ReadMissingFileThrows) {
  EXPECT_THROW(read_pgm(temp_path("chb_does_not_exist.pgm")),
               std::runtime_error);
}

TEST(ImageIo, PpmRoundTrip) {
  RgbImage img(2, 2);
  img.pixels(0, 0) = {1, 2, 3};
  img.pixels(0, 1) = {4, 5, 6};
  img.pixels(1, 0) = {7, 8, 9};
  img.pixels(1, 1) = {250, 251, 252};
  const std::string path = temp_path("chb_io_roundtrip.ppm");
  write_ppm(path, img);
  const RgbImage back = read_ppm(path);
  ASSERT_EQ(back.rows(), 2);
  ASSERT_EQ(back.cols(), 2);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) EXPECT_EQ(back.pixels(r, c), img.pixels(r, c));
  std::remove(path.c_str());
}

TEST(ImageIo, PpmRejectsP5) {
  const std::string path = temp_path("chb_io_p5_as_ppm.ppm");
  std::ofstream(path, std::ios::binary) << "P5\n1 1\n255\nx";
  EXPECT_THROW(read_ppm(path), std::runtime_error);
  std::remove(path.c_str());
}

// Regression: rasters with maxval < 255 were read unscaled, so a maxval-1
// bitmap came back as {0, 1} instead of {0, 255} and every downstream
// threshold tuned for [0, 255] misbehaved.
TEST(ImageIo, PgmMaxvalOneScalesToFullRange) {
  std::stringstream buf("P5\n2 2\n1\n");
  buf.seekp(0, std::ios::end);
  for (const unsigned char b : {0, 1, 1, 0}) buf.put(static_cast<char>(b));
  const Image img = read_pgm(buf);
  EXPECT_FLOAT_EQ(img(0, 0), 0.f);
  EXPECT_FLOAT_EQ(img(0, 1), 255.f);
  EXPECT_FLOAT_EQ(img(1, 0), 255.f);
  EXPECT_FLOAT_EQ(img(1, 1), 0.f);
}

TEST(ImageIo, PgmIntermediateMaxvalRescales) {
  std::stringstream buf("P5\n3 1\n100\n");
  buf.seekp(0, std::ios::end);
  // 120 exceeds maxval — invalid per spec, clamps to maxval (i.e. 255).
  for (const unsigned char b : {0, 50, 120}) buf.put(static_cast<char>(b));
  const Image img = read_pgm(buf);
  EXPECT_FLOAT_EQ(img(0, 0), 0.f);
  EXPECT_FLOAT_EQ(img(0, 1), 127.5f);
  EXPECT_FLOAT_EQ(img(0, 2), 255.f);
}

TEST(ImageIo, PgmMaxval255ReadsUnscaled) {
  std::stringstream buf("P5\n2 1\n255\n");
  buf.seekp(0, std::ios::end);
  for (const unsigned char b : {37, 255}) buf.put(static_cast<char>(b));
  const Image img = read_pgm(buf);
  EXPECT_FLOAT_EQ(img(0, 0), 37.f);
  EXPECT_FLOAT_EQ(img(0, 1), 255.f);
}

TEST(ImageIo, PgmRejectsUnsupportedMaxval) {
  {
    std::stringstream buf("P5\n1 1\n0\nx");
    EXPECT_THROW(read_pgm(buf), std::runtime_error);
  }
  {
    std::stringstream buf("P5\n1 1\n65535\nxx");
    EXPECT_THROW(read_pgm(buf), std::runtime_error);
  }
}

// Regression: a hostile header must be rejected before the raster allocation.
TEST(ImageIo, PgmRejectsHugeDimensions) {
  std::stringstream per_axis("P5\n70000 70000\n255\n");
  EXPECT_THROW(read_pgm(per_axis), std::runtime_error);
  // Each axis under the per-dim cap but the product above the pixel cap.
  std::stringstream product("P5\n65536 65536\n255\n");
  EXPECT_THROW(read_pgm(product), std::runtime_error);
}

TEST(ImageIo, PgmCommentAndWhitespaceTorture) {
  std::stringstream buf(
      "P5 # comment right after the magic\n"
      "# full-line comment\n"
      "  2 # width\n"
      "\t1 # height\n"
      "# before maxval\n"
      "255\n");
  buf.seekp(0, std::ios::end);
  buf.put(static_cast<char>(7));
  buf.put(static_cast<char>(9));
  const Image img = read_pgm(buf);
  ASSERT_EQ(img.rows(), 1);
  ASSERT_EQ(img.cols(), 2);
  EXPECT_FLOAT_EQ(img(0, 0), 7.f);
  EXPECT_FLOAT_EQ(img(0, 1), 9.f);
}

TEST(ImageIo, PgmRejectsMissingHeaderFields) {
  std::stringstream buf("P5\n2\n");  // height and maxval never arrive
  EXPECT_THROW(read_pgm(buf), std::runtime_error);
}

TEST(ImageIo, PpmRescalesSmallMaxval) {
  std::stringstream buf("P6\n2 1\n31\n");
  buf.seekp(0, std::ios::end);
  for (const unsigned char b : {0, 15, 31, 31, 0, 15})
    buf.put(static_cast<char>(b));
  const RgbImage img = read_ppm(buf);
  EXPECT_EQ(img.pixels(0, 0), (std::array<unsigned char, 3>{0, 123, 255}));
  EXPECT_EQ(img.pixels(0, 1), (std::array<unsigned char, 3>{255, 0, 123}));
}

TEST(ImageIo, PpmRejectsTruncatedRaster) {
  std::stringstream buf("P6\n3 3\n255\n");
  buf.seekp(0, std::ios::end);
  for (int i = 0; i < 5; ++i) buf.put('\x40');  // 5 of 27 bytes
  EXPECT_THROW(read_ppm(buf), std::runtime_error);
}

}  // namespace
}  // namespace chambolle::io
