#include "hw/control_unit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace chambolle::hw {
namespace {

ArchConfig small_config() {
  ArchConfig cfg;
  cfg.tile_rows = 40;
  cfg.tile_cols = 40;
  cfg.merge_iterations = 4;
  return cfg;
}

// Runs the FSM to completion, collecting every BRAM access.
std::vector<BramAccess> drain(ControlUnit& cu) {
  std::vector<BramAccess> all;
  std::uint64_t guard = cu.total_cycles() + 8;
  while (!cu.done() && guard-- > 0) {
    const ControlSignals sig = cu.step();
    for (const BramAccess& a : sig.bram) all.push_back(a);
  }
  EXPECT_TRUE(cu.done());
  return all;
}

TEST(ControlUnit, TotalCyclesMatchTheAnalyticFormula) {
  // Must equal PeArray's accounting: iterations * (regions + 1 flush) *
  // (cols + 1 + fill).
  ControlUnit cu(small_config(), 21, 40, 3);
  EXPECT_EQ(cu.total_cycles(), 3u * 4u * (40u + 1u + 18u));
  ControlUnit cu2(ArchConfig{}, 88, 92, 1);
  EXPECT_EQ(cu2.total_cycles(), 1u * 14u * (92u + 1u + 18u));
}

TEST(ControlUnit, StepsExactlyTotalCycles) {
  ControlUnit cu(small_config(), 16, 24, 2);
  std::uint64_t steps = 0;
  while (!cu.done()) {
    (void)cu.step();
    ++steps;
  }
  EXPECT_EQ(steps, cu.total_cycles());
  EXPECT_EQ(cu.cycles_elapsed(), steps);
  // Further steps are idle and flagged done.
  EXPECT_TRUE(cu.step().done);
}

TEST(ControlUnit, RegionAccessStreamMatchesScheduleModel) {
  // For each non-flush region sweep, the FSM's access set must equal
  // schedule_region()'s (ignoring the cycle offset between sweeps).
  const ArchConfig cfg = small_config();
  ControlUnit cu(cfg, 21, 24, 1);
  // Collect per-sweep: sweeps are fixed-length, so bucket by global cycle.
  const int sweep_len = 24 + 1 + cfg.pipeline_fill;
  std::map<int, std::vector<BramAccess>> by_sweep;
  std::uint64_t cycle = 0;
  while (!cu.done()) {
    const ControlSignals sig = cu.step();
    for (BramAccess a : sig.bram) {
      a.cycle = static_cast<int>(cycle) % sweep_len;
      by_sweep[static_cast<int>(cycle) / sweep_len].push_back(a);
    }
    ++cycle;
  }
  // Regions: rows {0..6}, {7..13}, {14..20}; sweep 3 is the flush.
  for (int g = 0; g < 3; ++g) {
    const RegionSchedule ref = schedule_region(cfg, g * 7, 7, 24,
                                               /*pe_latency=*/12);
    auto key = [](const BramAccess& a) {
      return std::tuple(a.cycle, a.bram, a.addr, a.is_write);
    };
    std::vector<std::tuple<int, int, int, bool>> got, want;
    for (const BramAccess& a : by_sweep[g]) got.push_back(key(a));
    for (const BramAccess& a : ref.accesses) want.push_back(key(a));
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "region " << g;
  }
}

TEST(ControlUnit, EveryCycleIsPortConflictFree) {
  ControlUnit cu(small_config(), 21, 24, 2);
  while (!cu.done()) {
    const ControlSignals sig = cu.step();
    std::map<int, std::pair<int, int>> usage;  // bram -> (reads, writes)
    for (const BramAccess& a : sig.bram) {
      auto& slot = usage[a.bram];
      if (a.is_write)
        ++slot.second;
      else
        ++slot.first;
    }
    for (const auto& [bram, counts] : usage) {
      EXPECT_LE(counts.first, 1) << "double read on BRAM " << bram;
      EXPECT_LE(counts.second, 1) << "double write on BRAM " << bram;
    }
    EXPECT_LE(sig.term_bram_read + sig.term_bram_write, 2);
  }
}

TEST(ControlUnit, EveryElementReadAndWrittenOncePerIteration) {
  ControlUnit cu(small_config(), 15, 16, 1);
  const std::vector<BramAccess> all = drain(cu);
  std::map<std::pair<int, int>, std::pair<int, int>> per_element;
  for (const BramAccess& a : all) {
    auto& slot = per_element[{a.row, a.col}];
    if (a.is_write)
      ++slot.second;
    else
      ++slot.first;
  }
  int write_once = 0;
  for (int r = 0; r < 15; ++r)
    for (int c = 0; c < 16; ++c) {
      const auto it = per_element.find({r, c});
      ASSERT_NE(it, per_element.end()) << r << "," << c;
      EXPECT_GE(it->second.first, 1) << "no read at " << r << "," << c;
      EXPECT_EQ(it->second.second, 1) << "writes at " << r << "," << c;
      ++write_once;
    }
  EXPECT_EQ(write_once, 15 * 16);
}

TEST(ControlUnit, RowStartPulsesOncePerSweep) {
  ControlUnit cu(small_config(), 14, 16, 2);
  int pulses = 0;
  while (!cu.done())
    if (cu.step().row_start) ++pulses;
  // 2 regions + 1 flush per iteration, 2 iterations.
  EXPECT_EQ(pulses, 2 * 3);
}

TEST(ControlUnit, RejectsBadArguments) {
  EXPECT_THROW(ControlUnit(small_config(), 0, 16, 1), std::invalid_argument);
  EXPECT_THROW(ControlUnit(small_config(), 16, 80, 1), std::invalid_argument);
  EXPECT_THROW(ControlUnit(small_config(), 16, 16, 0), std::invalid_argument);
  EXPECT_THROW(ControlUnit(small_config(), 16, 16, 1, 0),
               std::invalid_argument);
  // Skew + latency must fit the sweep window (fill 18, lanes 7 -> max 13).
  EXPECT_THROW(ControlUnit(small_config(), 16, 16, 1, 14),
               std::invalid_argument);
  EXPECT_NO_THROW(ControlUnit(small_config(), 16, 16, 1, 13));
}

}  // namespace
}  // namespace chambolle::hw
