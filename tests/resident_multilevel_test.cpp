// resident_multilevel_test.cpp — run_multilevel(): the coarse-grid
// correction composed with per-tile adaptive early stopping.  Pins the
// disabled-path bit-exactness (multilevel off IS run_adaptive, and with
// nothing retiring IS the fixed-budget engine), schedule independence of
// applied corrections across lane counts, the retired-tile protocol
// (corrections reach frozen tiles; large ones resurrect them), the
// rendezvous/progress-gate accounting, and the acceleration claim itself on
// the stiff smooth regime the correction targets.  Suite names match the CI
// TSan filter (*Resident*), so the rendezvous window's release/acquire
// ordering is sanitizer-checked.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "chambolle/energy.hpp"
#include "chambolle/resident_tiled.hpp"
#include "common/rng.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle {
namespace {

ChambolleParams params_with(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

// The regime the coarse correction exists for: smooth low-frequency content
// under a large coupling weight, where the fine fixed-point drains the
// low-frequency error at O(1/theta) per pass.  tau tracks theta to keep the
// kernel step at Chambolle's stability bound.
ChambolleParams stiff_params_with(int iterations) {
  ChambolleParams p;
  p.theta = 50.f;
  p.tau = 0.25f * p.theta;
  p.iterations = iterations;
  return p;
}

Matrix<float> random_v(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  return random_image(rng, rows, cols, -3.f, 3.f);
}

void expect_memcmp_eq(const Matrix<float>& a, const Matrix<float>& b,
                      const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  EXPECT_EQ(0, std::memcmp(a.data().data(), b.data().data(),
                           a.size() * sizeof(float)))
      << what;
}

void expect_result_memcmp_eq(const ChambolleResult& a,
                             const ChambolleResult& b) {
  expect_memcmp_eq(a.u, b.u, "u");
  expect_memcmp_eq(a.p.px, b.p.px, "px");
  expect_memcmp_eq(a.p.py, b.p.py, "py");
}

float max_du(const Matrix<float>& a, const Matrix<float>& b) {
  float best = 0.f;
  for (std::size_t i = 0; i < a.size(); ++i)
    best = std::max(best, std::abs(a.data()[i] - b.data()[i]));
  return best;
}

TEST(ResidentMultilevel, DisabledIsBitExactToAdaptive) {
  // period <= 0 must route through run_adaptive verbatim — same bits, and a
  // report that says the correction machinery never woke up.
  const Matrix<float> v = random_v(64, 64, 7001);
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 28;
  opt.merge_iterations = 4;
  opt.num_threads = 3;
  const ChambolleParams params = params_with(24);
  ResidentMultilevelOptions ml;
  ml.adaptive.tolerance = 1e-4f;
  ml.adaptive.patience = 2;
  ml.adaptive.max_passes = 0;
  ml.multilevel.period = 0;  // disabled
  ResidentMultilevelReport report;
  const ChambolleResult res =
      solve_resident_multilevel(v, params, opt, ml, &report);
  const ChambolleResult ref =
      solve_resident_adaptive(v, params, opt, ml.adaptive);
  expect_result_memcmp_eq(res, ref);
  EXPECT_EQ(report.coarse_levels, 0);
  EXPECT_EQ(report.coarse_solves, 0u);
  EXPECT_EQ(report.coarse_gated, 0u);
  EXPECT_EQ(report.tiles_unretired, 0u);
}

TEST(ResidentMultilevel, DisabledFixedBudgetIsBitExactToFixedEngine) {
  // The acceptance criterion's memcmp chain: correction off + unreachable
  // tolerance (nothing retires) + max_passes sentinel == solve_resident.
  const Matrix<float> v = random_v(48, 56, 7002);
  TiledSolverOptions opt;
  opt.tile_rows = 20;
  opt.tile_cols = 24;
  opt.merge_iterations = 4;
  opt.num_threads = 2;
  const ChambolleParams params = params_with(17);  // non-multiple remainder
  ResidentMultilevelOptions ml;
  ml.adaptive.tolerance = 1e-30f;
  ml.adaptive.patience = 1;
  ml.adaptive.max_passes = 0;
  ml.multilevel.period = 0;
  const ChambolleResult res = solve_resident_multilevel(v, params, opt, ml);
  const ChambolleResult fixed = solve_resident(v, params, opt);
  expect_result_memcmp_eq(res, fixed);
}

TEST(ResidentMultilevel, FrameTooSmallToCoarsenRunsAsAdaptive) {
  // coarse_extent must stay >= 4 cells: a 6x6 frame cannot coarsen, so an
  // enabled period is silently a no-op (bit for bit), not an error.
  const Matrix<float> v = random_v(6, 6, 7003);
  TiledSolverOptions opt;
  opt.tile_rows = 4;
  opt.tile_cols = 4;
  opt.merge_iterations = 1;
  opt.num_threads = 2;
  const ChambolleParams params = params_with(12);
  ResidentMultilevelOptions ml;
  ml.adaptive.tolerance = 1e-4f;
  ml.adaptive.patience = 1;
  ml.adaptive.max_passes = 0;
  ml.multilevel.period = 2;
  ResidentMultilevelReport report;
  const ChambolleResult res =
      solve_resident_multilevel(v, params, opt, ml, &report);
  const ChambolleResult ref =
      solve_resident_adaptive(v, params, opt, ml.adaptive);
  expect_result_memcmp_eq(res, ref);
  EXPECT_EQ(report.coarse_levels, 0);
  EXPECT_EQ(report.coarse_solves, 0u);
}

TEST(ResidentMultilevel, CorrectionAcceleratesStiffSmoothContent) {
  // The point of the PR: on smooth content with a large theta the fine
  // iteration drains low-frequency error slowly, and the periodic V-cycle
  // must land the same pass budget measurably closer to the minimizer than
  // the plain adaptive engine.
  const Image v = workloads::smooth_texture(128, 128, 7004);
  const ChambolleParams params = stiff_params_with(96);
  ChambolleParams ref_params = params;
  ref_params.iterations = 4000;  // converged reference
  const ChambolleResult star = solve(v, ref_params);

  TiledSolverOptions opt;
  opt.tile_rows = 32;
  opt.tile_cols = 32;
  opt.merge_iterations = 4;
  opt.num_threads = 4;
  ResidentMultilevelOptions ml;
  ml.adaptive.tolerance = 1e-6f;  // nothing retires: isolate the correction
  ml.adaptive.patience = 2;
  ml.adaptive.max_passes = 0;
  ml.multilevel.period = 4;
  ResidentMultilevelReport report;
  const ChambolleResult corrected =
      solve_resident_multilevel(v, params, opt, ml, &report);
  const ChambolleResult plain =
      solve_resident_adaptive(v, params, opt, ml.adaptive);

  EXPECT_GE(report.coarse_levels, 1);
  EXPECT_GE(report.coarse_solves, 1u);
  const float err_corrected = max_du(corrected.u, star.u);
  const float err_plain = max_du(plain.u, star.u);
  // Measured ~2x or better in this regime; assert a conservative margin.
  EXPECT_LT(err_corrected, 0.75f * err_plain)
      << "corrected " << err_corrected << " vs plain " << err_plain;
  // And the correction must not regress the ROF objective (lower = better).
  const double e_plain = rof_energy(plain.u, v, params.theta);
  EXPECT_LE(rof_energy(corrected.u, v, params.theta),
            e_plain + 1e-3 * (std::abs(e_plain) + 1.0));
}

TEST(ResidentMultilevel, GateDeclinesCorrectionsOnNoise) {
  // The opposite regime: pure noise at the default theta churns the dual
  // while the primal barely moves — every post-baseline firing must be
  // declined by the progress gate, leaving the adaptive result untouched.
  const Matrix<float> v = random_v(64, 64, 7005);
  TiledSolverOptions opt;
  opt.tile_rows = 32;
  opt.tile_cols = 32;
  opt.merge_iterations = 4;
  opt.num_threads = 2;
  const ChambolleParams params = params_with(64);
  ResidentMultilevelOptions ml;
  ml.adaptive.tolerance = 1e-30f;  // nothing retires
  ml.adaptive.patience = 1;
  ml.adaptive.max_passes = 0;
  ml.multilevel.period = 4;
  ResidentMultilevelReport report;
  const ChambolleResult res =
      solve_resident_multilevel(v, params, opt, ml, &report);
  EXPECT_EQ(report.coarse_solves, 0u);
  EXPECT_GT(report.coarse_gated, 1u);  // baseline + declined firings
  const ChambolleResult ref =
      solve_resident_adaptive(v, params, opt, ml.adaptive);
  expect_result_memcmp_eq(res, ref);
}

TEST(ResidentMultilevel, ResultIsIndependentOfThreadCount) {
  // Schedule independence with corrections actually firing: gate_factor 0
  // fires every post-baseline rendezvous, and the exclusive-window protocol
  // must make the applied corrections (and therefore all bits) identical
  // across lane counts.
  const Image v = workloads::smooth_texture(96, 96, 7006);
  const ChambolleParams params = stiff_params_with(48);
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 24;
  opt.merge_iterations = 4;
  ResidentMultilevelOptions ml;
  ml.adaptive.tolerance = 1e-5f;
  ml.adaptive.patience = 2;
  ml.adaptive.max_passes = 0;
  ml.multilevel.period = 3;
  ml.multilevel.gate_factor = 0.f;

  opt.num_threads = 1;
  ResidentMultilevelReport r1;
  const ChambolleResult one = solve_resident_multilevel(v, params, opt, ml, &r1);
  opt.num_threads = 4;
  ResidentMultilevelReport r4;
  const ChambolleResult four =
      solve_resident_multilevel(v, params, opt, ml, &r4);

  EXPECT_GE(r4.coarse_solves, 1u);  // the window was exercised
  EXPECT_EQ(r1.coarse_solves, r4.coarse_solves);
  EXPECT_EQ(r1.coarse_gated, r4.coarse_gated);
  EXPECT_EQ(r1.tiles_unretired, r4.tiles_unretired);
  expect_result_memcmp_eq(four, one);
}

TEST(ResidentMultilevel, CorrectionsReachRetiredTilesAndCanUnretire) {
  // A half-constant frame retires its static tiles early; with
  // unretire_factor 0 any nonzero correction inside a retired tile's
  // profitable region must resurrect it, and the final state must stay a
  // valid solve (energy no worse than the plain adaptive run).
  Image v = workloads::smooth_texture(96, 96, 7007);
  for (int r = 0; r < 96; ++r)
    for (int c = 0; c < 48; ++c) v(r, c) = 0.25f;
  const ChambolleParams params = stiff_params_with(80);
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 24;
  opt.merge_iterations = 4;
  opt.num_threads = 4;
  ResidentMultilevelOptions ml;
  ml.adaptive.tolerance = 1e-3f;
  ml.adaptive.patience = 1;
  ml.adaptive.max_passes = 0;
  ml.multilevel.period = 4;
  ml.multilevel.gate_factor = 0.f;
  ml.multilevel.unretire_factor = 0.f;
  ResidentMultilevelReport eager;
  const ChambolleResult res =
      solve_resident_multilevel(v, params, opt, ml, &eager);
  EXPECT_GE(eager.coarse_solves, 1u);
  EXPECT_GT(eager.tiles_unretired, 0u);
  EXPECT_GT(eager.last_correction_max, 0.f);

  // The same run with an unreachable resurrection threshold must keep every
  // retirement: corrections are folded into frozen tiles in place.
  ml.multilevel.unretire_factor = std::numeric_limits<float>::max();
  ResidentMultilevelReport lazy;
  (void)solve_resident_multilevel(v, params, opt, ml, &lazy);
  EXPECT_GE(lazy.coarse_solves, 1u);
  EXPECT_EQ(lazy.tiles_unretired, 0u);
  EXPECT_GT(lazy.adaptive.tiles_converged, 0u);

  const ChambolleResult plain =
      solve_resident_adaptive(v, params, opt, ml.adaptive);
  const double e_plain = rof_energy(plain.u, v, params.theta);
  EXPECT_LE(rof_energy(res.u, v, params.theta),
            e_plain + 1e-3 * (std::abs(e_plain) + 1.0));
}

TEST(ResidentMultilevel, ReportAccountingIsConsistent) {
  // With nothing retiring, every interior period boundary hosts exactly one
  // rendezvous firing: (pass_cap - 1) / period of them, each either a solve
  // or a gate decline (the baseline firing is always a decline).
  const Image v = workloads::smooth_texture(64, 64, 7008);
  const ChambolleParams params = stiff_params_with(48);
  TiledSolverOptions opt;
  opt.tile_rows = 32;
  opt.tile_cols = 32;
  opt.merge_iterations = 4;
  opt.num_threads = 2;
  ResidentMultilevelOptions ml;
  ml.adaptive.tolerance = 1e-30f;
  ml.adaptive.patience = 1;
  ml.adaptive.max_passes = 0;
  ml.multilevel.period = 3;
  ml.multilevel.gate_factor = 0.f;
  ResidentMultilevelReport report;
  (void)solve_resident_multilevel(v, params, opt, ml, &report);

  EXPECT_EQ(report.adaptive.pass_cap, 12);  // ceil(48 / 4)
  const std::uint64_t firings =
      static_cast<std::uint64_t>((report.adaptive.pass_cap - 1) /
                                 ml.multilevel.period);
  EXPECT_EQ(report.coarse_solves + report.coarse_gated, firings);
  EXPECT_GE(report.coarse_gated, 1u);  // the baseline
  EXPECT_GE(report.coarse_levels, 1);
  EXPECT_GE(report.rendezvous_seconds, 0.0);
  EXPECT_EQ(report.adaptive.tiles_converged, 0u);
  for (const int p : report.adaptive.tile_passes)
    EXPECT_EQ(p, report.adaptive.pass_cap);
}

TEST(ResidentMultilevel, StateStaysCoherentForFurtherRuns) {
  // run_multilevel leaves the resident state and mailbox parity coherent:
  // a later fixed run() on the same engine must still refine the solution.
  const Image v = workloads::smooth_texture(64, 64, 7009);
  const ChambolleParams params = stiff_params_with(40);
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 28;
  opt.merge_iterations = 4;
  opt.num_threads = 2;
  ResidentTiledEngine engine(v, params, opt);
  ResidentMultilevelOptions ml;
  ml.adaptive.tolerance = 1e-3f;
  ml.adaptive.patience = 1;
  ml.adaptive.max_passes = 8;
  ml.multilevel.period = 3;
  ml.multilevel.gate_factor = 0.f;
  const ResidentMultilevelReport report = engine.run_multilevel(ml);
  EXPECT_GE(report.coarse_solves, 1u);
  const double e_mid = rof_energy(engine.result().u, v, params.theta);
  engine.run(40);  // must not throw, deadlock, or corrupt the state
  const double e_end = rof_energy(engine.result().u, v, params.theta);
  // Chambolle iterations are monotone in the ROF objective: further passes
  // from any valid dual state can only improve (or hold) it.
  EXPECT_LE(e_end, e_mid + 1e-9 * (std::abs(e_mid) + 1.0));
}

TEST(ResidentMultilevel, ValidatesOptions) {
  MultilevelOptions o;
  o.levels = -1;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.coarse_iterations = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.smooth_iterations = -1;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.prolong_scale = 0.f;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.unretire_factor = -1.f;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.gate_factor = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.gate_factor = -0.5f;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.period = 0;  // disabled is valid, not an error
  EXPECT_NO_THROW(o.validate());

  const Matrix<float> v = random_v(16, 16, 7010);
  ResidentTiledEngine engine(v, params_with(4), TiledSolverOptions{});
  ResidentMultilevelOptions bad;
  bad.multilevel.prolong_scale = -1.f;
  EXPECT_THROW((void)engine.run_multilevel(bad), std::invalid_argument);
}

}  // namespace
}  // namespace chambolle
