// parse_test.cpp — checked numeric parsing (common/parse.hpp).
//
// flow_cli's flag handling goes through these helpers; the regression of
// interest is the silent-atoi behavior they replaced, where "12abc" parsed
// as 12 and "abc" as 0.
#include <gtest/gtest.h>

#include "common/parse.hpp"

namespace chambolle {
namespace {

TEST(ParseInt, AcceptsPlainIntegers) {
  EXPECT_EQ(parse_int("42", 0, 100), 42);
  EXPECT_EQ(parse_int("-7", -10, 10), -7);
  EXPECT_EQ(parse_int("0", 0, 0), 0);
  EXPECT_EQ(parse_int("  12", 0, 100), 12);  // strtol skips leading space
}

TEST(ParseInt, RejectsTrailingGarbage) {
  // atoi("12abc") == 12; the checked parser must refuse instead.
  EXPECT_EQ(parse_int("12abc", 0, 100), std::nullopt);
  EXPECT_EQ(parse_int("3x4", 0, 100), std::nullopt);
  EXPECT_EQ(parse_int("5 ", 0, 100), std::nullopt);
}

TEST(ParseInt, RejectsNonNumbers) {
  // atoi("abc") == 0 — historically accepted as a valid flag value.
  EXPECT_EQ(parse_int("abc", 0, 100), std::nullopt);
  EXPECT_EQ(parse_int("", 0, 100), std::nullopt);
  EXPECT_EQ(parse_int("-", 0, 100), std::nullopt);
  EXPECT_EQ(parse_int(" ", 0, 100), std::nullopt);
}

TEST(ParseInt, EnforcesRange) {
  EXPECT_EQ(parse_int("101", 0, 100), std::nullopt);
  EXPECT_EQ(parse_int("-1", 0, 100), std::nullopt);
  EXPECT_EQ(parse_int("100", 0, 100), 100);
  EXPECT_EQ(parse_int("0", 0, 100), 0);
}

TEST(ParseInt, RejectsOverflow) {
  EXPECT_EQ(parse_int("99999999999999999999", 0, 2147483647), std::nullopt);
  EXPECT_EQ(parse_int("-99999999999999999999", -2147483647, 0), std::nullopt);
}

TEST(ParseFloat, AcceptsPlainFloats) {
  EXPECT_EQ(parse_float("0.25", 0.f, 1.f), 0.25f);
  EXPECT_EQ(parse_float("1e2", 0.f, 1000.f), 100.f);
  EXPECT_EQ(parse_float("-3.5", -10.f, 0.f), -3.5f);
}

TEST(ParseFloat, RejectsGarbageAndNonFinite) {
  EXPECT_EQ(parse_float("0.25x", 0.f, 1.f), std::nullopt);
  EXPECT_EQ(parse_float("abc", 0.f, 1.f), std::nullopt);
  EXPECT_EQ(parse_float("", 0.f, 1.f), std::nullopt);
  // strtof parses "nan"/"inf" successfully; the helper must still refuse.
  EXPECT_EQ(parse_float("nan", 0.f, 1.f), std::nullopt);
  EXPECT_EQ(parse_float("inf", 0.f, 1e30f), std::nullopt);
  EXPECT_EQ(parse_float("1e50", 0.f, 1e38f), std::nullopt);  // overflows float
}

TEST(ParseFloat, EnforcesRange) {
  EXPECT_EQ(parse_float("2.0", 0.f, 1.f), std::nullopt);
  EXPECT_EQ(parse_float("-0.1", 0.f, 1.f), std::nullopt);
  EXPECT_EQ(parse_float("1.0", 0.f, 1.f), 1.f);
}

}  // namespace
}  // namespace chambolle
