#include "tvl1/accel_backend.hpp"

#include <gtest/gtest.h>

#include "workloads/metrics.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle::tvl1 {
namespace {

Tvl1Params fast_params() {
  Tvl1Params p;
  p.pyramid_levels = 3;
  p.warps = 3;
  p.chambolle.iterations = 20;
  return p;
}

hw::ArchConfig small_config() {
  hw::ArchConfig cfg;
  cfg.tile_rows = 40;
  cfg.tile_cols = 40;
  cfg.merge_iterations = 4;
  return cfg;
}

TEST(AccelBackend, MatchesTheFixedPointSoftwareBackendExactly) {
  // Accelerator == software fixed solver elementwise, so the whole pipeline
  // must agree bit-for-bit with InnerSolver::kFixed.
  const auto wl = workloads::translating_scene(48, 48, 1.f, -0.5f, 111);
  Tvl1Params params = fast_params();

  hw::ChambolleAccelerator accel(small_config());
  const FlowField a =
      compute_flow_accelerated(wl.frame0, wl.frame1, params, accel);

  params.solver = InnerSolver::kFixed;
  const FlowField b = compute_flow(wl.frame0, wl.frame1, params);

  EXPECT_EQ(a.u1, b.u1);
  EXPECT_EQ(a.u2, b.u2);
}

TEST(AccelBackend, RecoversTheFlow) {
  const auto wl = workloads::translating_scene(48, 48, 1.5f, 0.5f, 113);
  Tvl1Params params = fast_params();
  params.warps = 5;
  params.chambolle.iterations = 30;
  hw::ChambolleAccelerator accel(small_config());
  const FlowField u =
      compute_flow_accelerated(wl.frame0, wl.frame1, params, accel);
  EXPECT_LT(workloads::interior_endpoint_error(u, wl.ground_truth, 6), 0.6);
}

TEST(AccelBackend, AccountsDeviceCycles) {
  const auto wl = workloads::translating_scene(64, 64, 0.5f, 0.f, 115);
  hw::ChambolleAccelerator accel(small_config());
  AccelTvl1Stats stats;
  (void)compute_flow_accelerated(wl.frame0, wl.frame1, fast_params(), accel,
                                 &stats);
  EXPECT_EQ(stats.solves, 3 * 3);  // 3 pyramid levels x 3 warps
  EXPECT_GT(stats.device_cycles, 0u);
  EXPECT_GT(stats.device_seconds(221.0), 0.0);
}

TEST(AccelBackend, RejectsBadInputs) {
  hw::ChambolleAccelerator accel(small_config());
  EXPECT_THROW((void)compute_flow_accelerated(Image(8, 8), Image(8, 9),
                                              fast_params(), accel),
               std::invalid_argument);
}

}  // namespace
}  // namespace chambolle::tvl1
