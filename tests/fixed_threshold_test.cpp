#include "tvl1/fixed_threshold.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fixedpoint/qformat.hpp"
#include "workloads/synthetic.hpp"
#include "tvl1/warp.hpp"

namespace chambolle::tvl1 {
namespace {

TEST(FixedThreshold, BranchSelection) {
  const std::int32_t g = fx::to_fixed(2.0);   // gx = 2
  const std::int32_t lt = fx::to_fixed(1.0);  // lambda*theta = 1 -> lim = 4
  EXPECT_EQ(fixed_threshold_point(fx::to_fixed(-10.0), g, 0, lt).branch, -1);
  EXPECT_EQ(fixed_threshold_point(fx::to_fixed(10.0), g, 0, lt).branch, 1);
  EXPECT_EQ(fixed_threshold_point(fx::to_fixed(2.0), g, 0, lt).branch, 0);
  EXPECT_EQ(fixed_threshold_point(fx::to_fixed(5.0), 0, 0, lt).branch, 2);
}

TEST(FixedThreshold, SaturationBranchesAreExactConstantMultiples) {
  const std::int32_t gx = fx::to_fixed(2.0), gy = fx::to_fixed(-1.0);
  const std::int32_t lt = fx::to_fixed(0.5);
  const FixedThresholdOut lo =
      fixed_threshold_point(fx::to_fixed(-100.0), gx, gy, lt);
  EXPECT_EQ(lo.dx, fx::to_fixed(1.0));    // lt*gx = 0.5*2
  EXPECT_EQ(lo.dy, fx::to_fixed(-0.5));   // lt*gy
  const FixedThresholdOut hi =
      fixed_threshold_point(fx::to_fixed(100.0), gx, gy, lt);
  EXPECT_EQ(hi.dx, -lo.dx);
  EXPECT_EQ(hi.dy, -lo.dy);
}

TEST(FixedThreshold, MiddleBranchCancelsTheResidual) {
  // dx = -rho*gx/|g|^2: the linearized residual after the step is ~0.
  const std::int32_t gx = fx::to_fixed(2.0), gy = 0;
  const std::int32_t lt = fx::to_fixed(1.0);
  const std::int32_t rho = fx::to_fixed(2.0);
  const FixedThresholdOut out = fixed_threshold_point(rho, gx, gy, lt);
  // rho + gx*dx ~ 0 within a couple of Q24.8 LSBs.
  const std::int32_t residual_after = rho + fx::mul(gx, out.dx);
  EXPECT_LE(std::abs(residual_after), 4);
}

TEST(FixedThreshold, PointwiseAgreesWithFloatStep) {
  // Random operands: the fixed-point kernel must select the same branch as
  // the float arithmetic away from the decision boundary, and produce deltas
  // within fixed-point tolerance.
  Rng rng(71);
  int checked = 0;
  for (int i = 0; i < 3000; ++i) {
    const float gx = rng.uniform(-3.f, 3.f);
    const float gy = rng.uniform(-3.f, 3.f);
    const float rho = rng.uniform(-6.f, 6.f);
    const float lt = 0.8f;
    const float g2 = gx * gx + gy * gy;
    const float lim = lt * g2;
    // Skip points near the branch boundary (quantization may legally flip).
    if (std::abs(std::abs(rho) - lim) < 0.05f || g2 < 0.05f) continue;
    ++checked;

    float fdx, fdy;
    if (rho < -lim) {
      fdx = lt * gx;
      fdy = lt * gy;
    } else if (rho > lim) {
      fdx = -lt * gx;
      fdy = -lt * gy;
    } else {
      fdx = -rho * gx / g2;
      fdy = -rho * gy / g2;
    }
    const FixedThresholdOut out = fixed_threshold_point(
        fx::to_fixed(rho), fx::to_fixed(gx), fx::to_fixed(gy),
        fx::to_fixed(lt));
    EXPECT_NEAR(fx::to_float(out.dx), fdx, 0.05f)
        << "rho=" << rho << " g=(" << gx << "," << gy << ")";
    EXPECT_NEAR(fx::to_float(out.dy), fdy, 0.05f);
  }
  EXPECT_GT(checked, 2000);
}

TEST(FixedThreshold, FieldStepTracksFloatStep) {
  const auto wl = workloads::translating_scene(32, 32, 1.f, 0.f, 131);
  Image i0 = wl.frame0, i1 = wl.frame1;
  for (float& x : i0) x /= 255.f;
  for (float& x : i1) x /= 255.f;
  const FlowField u0(32, 32);
  const WarpResult wr = warp_with_gradients(i1, u0);
  const ThresholdInputs in{i0, wr.warped, wr.grad, u0, u0, 25.f, 0.25f};

  const FlowField ref = threshold_step(in);
  const FlowField fixed = fixed_threshold_step(in);
  // Same field up to quantization and near-boundary branch flips.
  double total = 0;
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 32; ++c)
      total += std::abs(ref.u1(r, c) - fixed.u1(r, c));
  EXPECT_LT(total / (32 * 32), 0.05);
}

}  // namespace
}  // namespace chambolle::tvl1
