#include "baseline/horn_schunck.hpp"

#include <gtest/gtest.h>

#include "common/flow_color.hpp"
#include "tvl1/tvl1.hpp"
#include "workloads/metrics.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle::baseline {
namespace {

HornSchunckParams fast_params() {
  HornSchunckParams p;
  p.pyramid_levels = 3;
  p.warps = 3;
  p.iterations = 60;
  return p;
}

TEST(HornSchunck, Validation) {
  HornSchunckParams p;
  EXPECT_NO_THROW(p.validate());
  p.alpha = 0.f;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.iterations = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.warps = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(HornSchunck, RejectsMismatchedFrames) {
  EXPECT_THROW(
      (void)horn_schunck_flow(Image(8, 8), Image(8, 9), fast_params()),
      std::invalid_argument);
  EXPECT_THROW(
      (void)horn_schunck_flow(Image(1, 8), Image(1, 8), fast_params()),
      std::invalid_argument);
}

TEST(HornSchunck, IdenticalFramesGiveZeroFlow) {
  const Image img = workloads::smooth_texture(40, 40, 3);
  const FlowField u = horn_schunck_flow(img, img, fast_params());
  EXPECT_LT(max_flow_magnitude(u), 0.05f);
}

TEST(HornSchunck, RecoversTranslation) {
  const auto wl = workloads::translating_scene(64, 64, 2.f, 1.f, 81);
  const FlowField u = horn_schunck_flow(wl.frame0, wl.frame1, fast_params());
  EXPECT_LT(workloads::interior_endpoint_error(u, wl.ground_truth, 8), 0.6);
}

TEST(HornSchunck, RecoversRotation) {
  const auto wl = workloads::rotating_scene(64, 64, 0.03f, 83);
  const FlowField u = horn_schunck_flow(wl.frame0, wl.frame1, fast_params());
  EXPECT_LT(workloads::interior_endpoint_error(u, wl.ground_truth, 8), 0.6);
}

TEST(HornSchunck, OverSmoothsMotionDiscontinuities) {
  // The quadratic prior's signature failure mode, and the reason the paper
  // targets TV-L1: on a moving square over a static background, TV-L1 keeps
  // the motion boundary sharper than Horn-Schunck.
  const auto wl = workloads::moving_square(64, 64, 20, 3, 0);
  const FlowField hs = horn_schunck_flow(wl.frame0, wl.frame1, fast_params());

  tvl1::Tvl1Params tv;
  tv.pyramid_levels = 3;
  tv.warps = 5;
  tv.chambolle.iterations = 40;
  const FlowField tvl1_flow = tvl1::compute_flow(wl.frame0, wl.frame1, tv);

  const double e_hs =
      workloads::interior_endpoint_error(hs, wl.ground_truth, 6);
  const double e_tv =
      workloads::interior_endpoint_error(tvl1_flow, wl.ground_truth, 6);
  EXPECT_LT(e_tv, e_hs);
}

TEST(HornSchunck, LargerAlphaSmoothsMore) {
  const auto wl = workloads::moving_square(48, 48, 16, 2, 0);
  HornSchunckParams soft = fast_params();
  soft.alpha = 0.005f;
  HornSchunckParams stiff = fast_params();
  stiff.alpha = 0.3f;
  const FlowField u_soft = horn_schunck_flow(wl.frame0, wl.frame1, soft);
  const FlowField u_stiff = horn_schunck_flow(wl.frame0, wl.frame1, stiff);
  // A stiffer prior spreads motion into the background: its peak magnitude
  // inside the square drops.
  EXPECT_GT(max_flow_magnitude(u_soft), max_flow_magnitude(u_stiff));
}

}  // namespace
}  // namespace chambolle::baseline
