#include "chambolle/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "chambolle/energy.hpp"
#include "common/rng.hpp"
#include "grid/diff_ops.hpp"

namespace chambolle {
namespace {

ChambolleParams params_with(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

Matrix<float> step_image(int rows, int cols, float lo, float hi) {
  Matrix<float> v(rows, cols, lo);
  for (int r = 0; r < rows; ++r)
    for (int c = cols / 2; c < cols; ++c) v(r, c) = hi;
  return v;
}

TEST(ChambolleParams, ValidatesStabilityBound) {
  ChambolleParams p;
  EXPECT_NO_THROW(p.validate());
  p.tau = 0.3f;  // tau/theta = 1.2 > 1/4
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.theta = -1.f;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.iterations = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ChambolleSolver, ZeroIterationsIsIdentityOnP) {
  Rng rng(3);
  const Matrix<float> v = random_image(rng, 8, 8, -1.f, 1.f);
  const ChambolleResult r = solve(v, params_with(0));
  for (float p : r.p.px) EXPECT_FLOAT_EQ(p, 0.f);
  for (float p : r.p.py) EXPECT_FLOAT_EQ(p, 0.f);
  // With p = 0, u = v.
  EXPECT_EQ(r.u, v);
}

TEST(ChambolleSolver, ConstantInputIsFixedPoint) {
  // For constant v, Term is constant, its forward gradient is zero, so p
  // stays zero and u == v at every iteration.
  const Matrix<float> v(10, 12, 3.5f);
  const ChambolleResult r = solve(v, params_with(50));
  for (float p : r.p.px) EXPECT_FLOAT_EQ(p, 0.f);
  for (float p : r.p.py) EXPECT_FLOAT_EQ(p, 0.f);
  EXPECT_EQ(r.u, v);
}

TEST(ChambolleSolver, DualStaysInUnitBall) {
  Rng rng(5);
  const Matrix<float> v = random_image(rng, 16, 16, -8.f, 8.f);
  const ChambolleResult r = solve(v, params_with(100));
  EXPECT_LE(max_dual_magnitude(r.p.px, r.p.py), 1.0 + 1e-5);
}

TEST(ChambolleSolver, EnergyDecreasesAlongIterations) {
  Rng rng(7);
  Matrix<float> v = step_image(24, 24, -2.f, 2.f);
  add_gaussian_noise(rng, v, 0.3f);
  const ChambolleParams params = params_with(0);

  double prev = rof_energy(v, v, params.theta);  // u_0 = v (p = 0)
  DualField p(24, 24);
  Matrix<float> scratch;
  const RegionGeometry geom = RegionGeometry::full_frame(24, 24);
  for (int it = 1; it <= 60; ++it) {
    iterate_region(p.px, p.py, v, geom, params, 1, scratch);
    const Matrix<float> u = recover_u(v, p.px, p.py, geom, params.theta);
    const double e = rof_energy(u, v, params.theta);
    EXPECT_LE(e, prev + 1e-6) << "iteration " << it;
    prev = e;
  }
}

TEST(ChambolleSolver, ConvergesToAFixedPoint) {
  Rng rng(9);
  const Matrix<float> v = random_image(rng, 12, 12, -1.f, 1.f);
  const ChambolleResult a = solve(v, params_with(800));
  const ChambolleResult b = solve(v, params_with(1000));
  EXPECT_LT(max_abs_diff(a.u, b.u), 2e-3);
}

TEST(ChambolleSolver, SmoothsAStepEdge) {
  // TV denoising shrinks the jump of a noisy step while keeping it centered:
  // the result must be closer to the clean step than the noisy input is.
  Rng rng(11);
  const Matrix<float> clean = step_image(16, 32, 0.f, 4.f);
  Matrix<float> noisy = clean;
  add_gaussian_noise(rng, noisy, 0.5f);
  const ChambolleResult r = solve(noisy, params_with(200));
  EXPECT_LT(l2_distance_sq(r.u, clean), l2_distance_sq(noisy, clean));
}

TEST(ChambolleSolver, ReducesTotalVariation) {
  Rng rng(13);
  Matrix<float> v = random_image(rng, 20, 20, -1.f, 1.f);
  const ChambolleResult r = solve(v, params_with(100));
  EXPECT_LT(total_variation(r.u), total_variation(v));
}

TEST(ChambolleSolver, WarmStartMatchesContinuedIterations) {
  // solve(v, 2n) == solve with n iterations, then n more from the dual state:
  // the iteration is a deterministic map on p.
  Rng rng(15);
  const Matrix<float> v = random_image(rng, 10, 14, -2.f, 2.f);
  const ChambolleResult full = solve(v, params_with(40));
  const ChambolleResult half = solve(v, params_with(20));
  const ChambolleResult resumed = solve(v, params_with(20), &half.p);
  EXPECT_EQ(resumed.u, full.u);
  EXPECT_EQ(resumed.p.px, full.p.px);
  EXPECT_EQ(resumed.p.py, full.p.py);
}

TEST(ChambolleSolver, RecoverUFormula) {
  Rng rng(17);
  const Matrix<float> v = random_image(rng, 9, 9, -1.f, 1.f);
  const ChambolleResult r = solve(v, params_with(10));
  const Matrix<float> div = grid::divergence(r.p.px, r.p.py);
  for (int rr = 0; rr < 9; ++rr)
    for (int cc = 0; cc < 9; ++cc)
      EXPECT_NEAR(r.u(rr, cc), v(rr, cc) - 0.25f * div(rr, cc), 1e-5);
}

TEST(ChambolleSolver, InitialDualShapeMismatchThrows) {
  const Matrix<float> v(4, 4);
  DualField wrong(3, 3);
  EXPECT_THROW(solve(v, params_with(1), &wrong), std::invalid_argument);
}

TEST(ChambolleSolver, InitialDualSingleComponentMismatchThrows) {
  // Regression: validation used to run after the copy and only looked at px,
  // so a py-only mismatch slipped through.  Both components must be checked
  // up front, before any state is built from the initial dual.
  const Matrix<float> v(4, 4);
  DualField bad_py(4, 4);
  bad_py.py = Matrix<float>(5, 4);
  EXPECT_THROW(solve(v, params_with(1), &bad_py), std::invalid_argument);

  DualField bad_px(4, 4);
  bad_px.px = Matrix<float>(4, 3);
  EXPECT_THROW(solve(v, params_with(1), &bad_px), std::invalid_argument);
}

TEST(ChambolleSolver, RegionWindowExceedingFrameThrows) {
  Matrix<float> px(4, 4), py(4, 4), v(4, 4), scratch;
  const RegionGeometry bad{2, 2, 5, 5};  // 2+4 > 5
  EXPECT_THROW(
      iterate_region(px, py, v, bad, params_with(1), 1, scratch),
      std::invalid_argument);
}

TEST(ChambolleSolver, SolveFlowHandlesBothComponents) {
  Rng rng(19);
  FlowField v(8, 8);
  v.u1 = random_image(rng, 8, 8, -1.f, 1.f);
  v.u2 = random_image(rng, 8, 8, -1.f, 1.f);
  const FlowField u = solve_flow(v, params_with(30));
  EXPECT_EQ(u.u1, solve(v.u1, params_with(30)).u);
  EXPECT_EQ(u.u2, solve(v.u2, params_with(30)).u);
}

TEST(ChambolleSolver, SolveFlowWarmStartMatchesComponentSolves) {
  // solve_flow's optional initial/final duals must behave exactly like the
  // per-component solve() warm-start path (the video_runner carry).
  Rng rng(21);
  FlowField v(8, 10);
  v.u1 = random_image(rng, 8, 10, -1.f, 1.f);
  v.u2 = random_image(rng, 8, 10, -1.f, 1.f);

  const ChambolleResult half1 = solve(v.u1, params_with(15));
  const ChambolleResult half2 = solve(v.u2, params_with(15));
  DualField final_u1, final_u2;
  const FlowField resumed = solve_flow(v, params_with(15), &half1.p, &half2.p,
                                       &final_u1, &final_u2);

  const ChambolleResult full1 = solve(v.u1, params_with(30));
  const ChambolleResult full2 = solve(v.u2, params_with(30));
  EXPECT_EQ(resumed.u1, full1.u);
  EXPECT_EQ(resumed.u2, full2.u);
  EXPECT_EQ(final_u1.px, full1.p.px);
  EXPECT_EQ(final_u1.py, full1.p.py);
  EXPECT_EQ(final_u2.px, full2.p.px);
  EXPECT_EQ(final_u2.py, full2.p.py);
}

TEST(ChambolleSolver, SolveFlowRejectsMismatchedInitialDuals) {
  FlowField v(6, 6);
  DualField wrong(5, 6);
  EXPECT_THROW(solve_flow(v, params_with(1), &wrong, nullptr),
               std::invalid_argument);
  EXPECT_THROW(solve_flow(v, params_with(1), nullptr, &wrong),
               std::invalid_argument);
}

// Degenerate geometries must not crash and must behave like 1-D TV.
class DegenerateShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DegenerateShapes, SolvesWithoutError) {
  const auto [rows, cols] = GetParam();
  Rng rng(23);
  const Matrix<float> v = random_image(rng, rows, cols, -1.f, 1.f);
  const ChambolleResult r = solve(v, params_with(25));
  EXPECT_EQ(r.u.rows(), rows);
  EXPECT_EQ(r.u.cols(), cols);
  EXPECT_LE(max_dual_magnitude(r.p.px, r.p.py), 1.0 + 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DegenerateShapes,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 16},
                                           std::pair{16, 1}, std::pair{2, 2},
                                           std::pair{3, 64}, std::pair{64, 3}));

}  // namespace
}  // namespace chambolle
