#include "chambolle/chambolle_pock.hpp"

#include <gtest/gtest.h>

#include "chambolle/energy.hpp"
#include "common/rng.hpp"

namespace chambolle {
namespace {

TEST(ChambollePock, Validation) {
  ChambollePockParams p;
  EXPECT_NO_THROW(p.validate());
  p.tau_pd = 1.f;  // tau*sigma*8 = 4 > 1
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.theta = 0.f;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.iterations = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ChambollePock, ConstantInputIsFixed) {
  const Matrix<float> v(12, 12, 3.f);
  ChambollePockParams p;
  p.iterations = 60;
  const ChambolleResult r = solve_chambolle_pock(v, p);
  for (float u : r.u) EXPECT_NEAR(u, 3.f, 1e-5f);
}

TEST(ChambollePock, DualStaysInUnitBall) {
  Rng rng(5);
  const Matrix<float> v = random_image(rng, 16, 16, -4.f, 4.f);
  ChambollePockParams p;
  p.iterations = 100;
  const ChambolleResult r = solve_chambolle_pock(v, p);
  EXPECT_LE(max_dual_magnitude(r.p.px, r.p.py), 1.0 + 1e-5);
}

TEST(ChambollePock, ConvergesToTheSameMinimizerAsChambolle) {
  // Both algorithms minimize the same strictly convex ROF objective, so the
  // converged solutions must agree.
  Rng rng(7);
  const Matrix<float> v = random_image(rng, 20, 20, -2.f, 2.f);

  ChambolleParams classic;
  classic.iterations = 3000;
  const ChambolleResult a = solve(v, classic);

  ChambollePockParams pd;
  pd.iterations = 1500;
  const ChambolleResult b = solve_chambolle_pock(v, pd);

  EXPECT_LT(max_abs_diff(a.u, b.u), 2e-3);
}

TEST(ChambollePock, ReducesTheRofEnergy) {
  Rng rng(9);
  const Matrix<float> v = random_image(rng, 24, 24, -2.f, 2.f);
  ChambollePockParams p;
  p.iterations = 100;
  const ChambolleResult r = solve_chambolle_pock(v, p);
  EXPECT_LT(rof_energy(r.u, v, p.theta), rof_energy(v, v, p.theta));
}

TEST(ChambollePock, AcceleratedVariantConverges) {
  // The accelerated schedule shrinks the primal step aggressively and, on a
  // warm-started ROF sub-problem of this size, trails the theta=1 variant in
  // early iterations (see bench/convergence); it must still converge
  // monotonically in the energy gap.
  Rng rng(11);
  const Matrix<float> v = random_image(rng, 24, 24, -2.f, 2.f);

  ChambolleParams deep;
  deep.iterations = 5000;
  const double e_star = rof_energy(solve(v, deep).u, v, deep.theta);

  double prev_gap = 1e9;
  for (const int iters : {50, 100, 200, 400}) {
    ChambollePockParams accel;
    accel.iterations = iters;
    accel.accelerate = true;
    const double gap =
        rof_energy(solve_chambolle_pock(v, accel).u, v, accel.theta) - e_star;
    EXPECT_LT(gap, prev_gap) << iters;
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 1e-3);
}

TEST(ChambollePock, PlainVariantBeatsClassicChambolle) {
  // The algorithmic-ablation result: at equal iteration budgets, the theta=1
  // primal-dual scheme reaches a smaller energy gap than the 2004 fixed
  // point the paper accelerates — the candidate upgrade for a future
  // accelerator generation.
  Rng rng(13);
  const Matrix<float> v = random_image(rng, 24, 24, -2.f, 2.f);

  ChambolleParams deep;
  deep.iterations = 5000;
  const double e_star = rof_energy(solve(v, deep).u, v, deep.theta);

  // The rate advantage is asymptotic: at small budgets the two trade wins
  // depending on the instance; by 200 iterations the primal-dual scheme
  // leads consistently (verified across seeds; see bench/convergence).
  ChambollePockParams pd;
  pd.iterations = 200;
  pd.accelerate = false;
  const double gap_pd =
      rof_energy(solve_chambolle_pock(v, pd).u, v, pd.theta) - e_star;

  ChambolleParams classic;
  classic.iterations = 200;
  const double gap_classic =
      rof_energy(solve(v, classic).u, v, classic.theta) - e_star;

  EXPECT_LT(gap_pd, gap_classic);
}

}  // namespace
}  // namespace chambolle
