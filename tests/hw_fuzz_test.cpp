// hw_fuzz_test.cpp — randomized configuration sweep of the full accelerator.
//
// The strongest robustness statement the simulator can make: for RANDOM
// architecture configurations (ladder depth, tile geometry, window count,
// merge depth), random frame sizes and random inputs, the accelerator stays
// bit-identical to the software fixed-point solver and its measured cycles
// equal the analytic model.  Seeded, so failures reproduce.
#include <gtest/gtest.h>

#include "chambolle/fixed_solver.hpp"
#include "common/rng.hpp"
#include "hw/accelerator.hpp"

namespace chambolle::hw {
namespace {

ArchConfig random_config(Rng& rng) {
  ArchConfig cfg;
  // Ladder depth and the matching BRAM count.
  const int lanes_choices[] = {3, 5, 7};
  cfg.pe_lanes = lanes_choices[rng.uniform_int(0, 2)];
  cfg.num_brams = cfg.pe_lanes + 1;
  // Tile rows must stripe evenly; keep everything comfortably sized.
  cfg.tile_rows = cfg.num_brams * rng.uniform_int(4, 10);
  cfg.tile_cols = 8 * rng.uniform_int(3, 10);
  cfg.num_sliding_windows = rng.uniform_int(1, 3);
  const int max_merge =
      std::min(cfg.tile_rows, cfg.tile_cols) / 2 - 1;
  cfg.merge_iterations = rng.uniform_int(1, std::min(max_merge, 6));
  cfg.model_tile_io = rng.uniform_int(0, 1) == 1;
  return cfg;
}

class AcceleratorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AcceleratorFuzz, RandomConfigStaysBitExactAndCycleExact) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 13u);
  const ArchConfig cfg = random_config(rng);
  ASSERT_NO_THROW(cfg.validate());

  const int rows = rng.uniform_int(9, 70);
  const int cols = rng.uniform_int(9, 70);
  const int iterations = rng.uniform_int(1, 9);

  FlowField v(rows, cols);
  v.u1 = random_image(rng, rows, cols, -3.f, 3.f);
  v.u2 = random_image(rng, rows, cols, -3.f, 3.f);
  ChambolleParams params;
  params.iterations = iterations;

  ChambolleAccelerator accel(cfg);
  const auto result = accel.solve(v, params);

  const ChambolleResult ref1 = solve_fixed(v.u1, params);
  const ChambolleResult ref2 = solve_fixed(v.u2, params);
  ASSERT_EQ(result.u.u1, ref1.u)
      << "lanes=" << cfg.pe_lanes << " tile=" << cfg.tile_rows << "x"
      << cfg.tile_cols << " merge=" << cfg.merge_iterations << " frame="
      << rows << "x" << cols << " iters=" << iterations;
  ASSERT_EQ(result.u.u2, ref2.u);
  ASSERT_EQ(result.dual_u1.u1, ref1.p.px);
  ASSERT_EQ(result.dual_u2.u2, ref2.p.py);
  EXPECT_EQ(result.stats.total_cycles,
            accel.estimate_frame_cycles(rows, cols, iterations));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcceleratorFuzz, ::testing::Range(0, 24));

}  // namespace
}  // namespace chambolle::hw
