#include "hw/datasheet.hpp"

#include <gtest/gtest.h>

#include "hw/accelerator.hpp"

namespace chambolle::hw {
namespace {

TEST(Datasheet, PaperConfigurationFits) {
  const Datasheet d = make_datasheet(ArchConfig{});
  EXPECT_TRUE(d.fits);
  EXPECT_EQ(d.total_pes, 56);  // 28 PE-T + 28 PE-V
  EXPECT_EQ(d.cycles_per_element_latency, 18);
  ASSERT_EQ(d.ratings.size(), 3u);
}

TEST(Datasheet, RatingsMatchTheCycleModel) {
  const ArchConfig cfg;
  const Datasheet d = make_datasheet(cfg);
  const ChambolleAccelerator accel(cfg);
  for (const WorkloadRating& r : d.ratings) {
    EXPECT_DOUBLE_EQ(r.fps,
                     accel.estimate_fps(r.height, r.width, r.iterations));
    EXPECT_LE(r.fps_streaming, r.fps + 1e-9);  // streaming never faster
  }
}

TEST(Datasheet, TextRenderingCarriesTheKeyNumbers) {
  const Datasheet d = make_datasheet(ArchConfig{});
  const std::string text = d.to_string();
  EXPECT_NE(text.find("2 sliding windows x 7 lanes (56 PEs)"),
            std::string::npos);
  EXPECT_NE(text.find("221"), std::string::npos);
  EXPECT_NE(text.find("36 BRAM"), std::string::npos);
  EXPECT_NE(text.find("62 DSP"), std::string::npos);
  EXPECT_NE(text.find("fits"), std::string::npos);
  EXPECT_NE(text.find("512x512"), std::string::npos);
}

TEST(Datasheet, OversizedConfigReportsNotFitting) {
  ArchConfig big;
  big.num_sliding_windows = 4;
  const Datasheet d = make_datasheet(big);
  EXPECT_FALSE(d.fits);
  EXPECT_NE(d.to_string().find("DOES NOT FIT"), std::string::npos);
}

TEST(Datasheet, RejectsInvalidInputs) {
  ArchConfig bad;
  bad.tile_rows = 90;
  EXPECT_THROW((void)make_datasheet(bad), std::invalid_argument);
  DramConfig nodram;
  nodram.bytes_per_second = 0;
  EXPECT_THROW((void)make_datasheet(ArchConfig{}, nodram),
               std::invalid_argument);
}

}  // namespace
}  // namespace chambolle::hw
