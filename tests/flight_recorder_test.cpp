// flight_recorder_test.cpp — the crash flight recorder.
//
// Round-trips breadcrumbs and spans through the normal JSON serializer and
// the async-signal-safe crash writer, checks the bounded-ring overwrite
// semantics and the disabled path, and (where the platform allows death
// tests and no sanitizer owns the signals) crashes a forked child to prove
// the installed handler really writes the postmortem file.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/json_util.hpp"

namespace chambolle {
namespace {

namespace tel = telemetry;
namespace fs = std::filesystem;

constexpr bool kTelemetryCompiledIn =
#ifdef CHAMBOLLE_TELEMETRY_DISABLED
    false;
#else
    true;
#endif

#define SKIP_IF_COMPILED_OUT()                                 \
  if (!kTelemetryCompiledIn)                                   \
  GTEST_SKIP() << "telemetry compiled out (CHAMBOLLE_ENABLE_TELEMETRY=OFF)"

/// Forces the recorder on (it defaults on, but an earlier test or the
/// environment may have toggled it) and restores the prior state on exit.
class ScopedFlight {
 public:
  explicit ScopedFlight(bool on) : was_(tel::flight_recorder_enabled()) {
    tel::set_flight_recorder_enabled(on);
  }
  ~ScopedFlight() { tel::set_flight_recorder_enabled(was_); }

 private:
  bool was_;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

fs::path temp_file(const char* name) {
  return fs::temp_directory_path() / name;
}

TEST(FlightRecorder, MarkRoundTripsThroughJson) {
  SKIP_IF_COMPILED_OUT();
  const ScopedFlight f(true);
  tel::clear_flight_record();
  tel::flight_mark("test.flight.mark", 42.0);
  tel::flight_mark("test.flight.second");
  EXPECT_EQ(tel::flight_event_count(), 2u);

  const std::string json = tel::flight_record_json();
  ASSERT_TRUE(tel::json_well_formed(json));
  EXPECT_NE(json.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(json.find("test.flight.mark"), std::string::npos);
  EXPECT_NE(json.find("test.flight.second"), std::string::npos);
  EXPECT_NE(json.find("\"value\":42"), std::string::npos);
  // The on-demand dump is the same serializer behind a file write.
  const fs::path path = temp_file("chb_flight_roundtrip.json");
  ASSERT_TRUE(tel::write_flight_record(path.string()));
  EXPECT_EQ(slurp(path), json);
  fs::remove(path);
}

TEST(FlightRecorder, SpanMirrorCarriesDuration) {
  SKIP_IF_COMPILED_OUT();
  const ScopedFlight f(true);
  tel::clear_flight_record();
  tel::flight_span("test.flight.span", /*start_ns=*/1'000'000,
                   /*dur_ns=*/2'500'000);
  const std::string json = tel::flight_record_json();
  ASSERT_TRUE(tel::json_well_formed(json));
  EXPECT_NE(json.find("test.flight.span"), std::string::npos);
  EXPECT_NE(json.find("\"t_us\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"dur_us\":2500"), std::string::npos);
}

TEST(FlightRecorder, DisabledPathDropsEvents) {
  const ScopedFlight f(false);
  EXPECT_FALSE(tel::flight_recorder_enabled());
  tel::clear_flight_record();
  tel::flight_mark("test.flight.dropped");
  tel::flight_span("test.flight.dropped.span", 0, 1);
  EXPECT_EQ(tel::flight_event_count(), 0u);
  EXPECT_EQ(tel::flight_record_json().find("dropped"), std::string::npos);
}

TEST(FlightRecorder, RingIsBoundedAndKeepsNewest) {
  SKIP_IF_COMPILED_OUT();
  const ScopedFlight f(true);
  tel::clear_flight_record();
  char name[32];
  for (std::size_t i = 0; i < tel::kFlightRingCapacity + 10; ++i) {
    std::snprintf(name, sizeof name, "test.ring.%zu", i);
    tel::flight_mark(name, static_cast<double>(i));
  }
  // Other threads are quiescent, so the count is exactly one full ring.
  EXPECT_EQ(tel::flight_event_count(), tel::kFlightRingCapacity);
  const std::string json = tel::flight_record_json();
  ASSERT_TRUE(tel::json_well_formed(json));
  EXPECT_EQ(json.find("\"test.ring.0\""), std::string::npos);  // overwritten
  char last[32];
  std::snprintf(last, sizeof last, "test.ring.%zu",
                tel::kFlightRingCapacity + 9);
  EXPECT_NE(json.find(last), std::string::npos);
  tel::clear_flight_record();
  EXPECT_EQ(tel::flight_event_count(), 0u);
}

TEST(FlightRecorder, HostileNamesStayWellFormed) {
  SKIP_IF_COMPILED_OUT();
  const ScopedFlight f(true);
  tel::clear_flight_record();
  const char* hostile[] = {
      "quote\"inside", "back\\slash", "ctrl\x01\x02tab\there",
      "newline\nname", "long.name.that.exceeds.the.fixed.event.width.by.far",
  };
  for (const char* name : hostile) tel::flight_mark(name, 1.0);
  EXPECT_TRUE(tel::json_well_formed(tel::flight_record_json()));
  // The crash writer sanitizes rather than escapes; its output must parse too.
  const fs::path path = temp_file("chb_flight_hostile.json");
  ASSERT_TRUE(tel::flight_crash_dump(path.string().c_str()));
  EXPECT_TRUE(tel::json_well_formed(slurp(path)));
  fs::remove(path);
}

TEST(FlightRecorder, CrashDumpWriterProducesParseableJson) {
  // Runs in every build flavor: with telemetry compiled out the rings are
  // empty but the writer must still emit a valid document.
  if (kTelemetryCompiledIn) {
    const ScopedFlight f(true);
    tel::flight_mark("test.crashdump.mark", 7.0);
  }
  const fs::path path = temp_file("chb_flight_crashdump.json");
  ASSERT_TRUE(tel::flight_crash_dump(path.string().c_str()));
  const std::string json = slurp(path);
  ASSERT_TRUE(tel::json_well_formed(json));
  EXPECT_NE(json.find("\"crash\":true"), std::string::npos);
  if (kTelemetryCompiledIn)
    EXPECT_NE(json.find("test.crashdump.mark"), std::string::npos);
  fs::remove(path);
  EXPECT_FALSE(tel::flight_crash_dump("/nonexistent-dir/flight.json"));
}

// The end-to-end crash path: a forked child installs the handler, SEGVs,
// and must leave the postmortem file behind while still dying by signal
// (SA_RESETHAND + re-raise keeps the exit status honest).  Skipped where a
// sanitizer owns the crash signals or death tests are unavailable.
#if defined(GTEST_HAS_DEATH_TEST) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__) && !defined(CHB_UNDER_SANITIZER)
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define CHB_SKIP_CRASH_DEATH_TEST 1
#endif
#endif
#ifndef CHB_SKIP_CRASH_DEATH_TEST
TEST(FlightRecorderDeathTest, HandlerDumpsOnSegv) {
  SKIP_IF_COMPILED_OUT();
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const fs::path path = temp_file("chb_flight_segv.json");
  fs::remove(path);
  const std::string path_str = path.string();
  EXPECT_DEATH(
      {
        tel::set_flight_recorder_enabled(true);
        tel::flight_mark("test.death.breadcrumb", 13.0);
        tel::install_crash_handler(path_str.c_str());
        std::raise(SIGSEGV);
      },
      "");
  ASSERT_TRUE(fs::exists(path)) << "handler did not write " << path_str;
  const std::string json = slurp(path);
  EXPECT_TRUE(tel::json_well_formed(json));
  EXPECT_NE(json.find("\"crash\":true"), std::string::npos);
  EXPECT_NE(json.find("test.death.breadcrumb"), std::string::npos);
  fs::remove(path);
}
#endif
#endif  // death tests available, no sanitizer

}  // namespace
}  // namespace chambolle
