#include "common/text_table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace chambolle {
namespace {

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Device", "fps"});
  t.add_row({"GeForce 7800 GS", "56"});
  t.add_row({"FPGA", "99.1"});
  const std::string s = t.to_string();
  // Header, rule, two data rows.
  EXPECT_NE(s.find("Device"), std::string::npos);
  EXPECT_NE(s.find("GeForce 7800 GS | 56"), std::string::npos);
  EXPECT_NE(s.find("-+-"), std::string::npos);
  int lines = 0;
  for (char ch : s)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 4);
}

TEST(TextTable, ColumnsWidenToLongestCell) {
  TextTable t({"x"});
  t.add_row({"longvalue"});
  const std::string s = t.to_string();
  // The rule row must be as wide as the longest cell.
  EXPECT_NE(s.find("---------"), std::string::npos);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(99.123, 1), "99.1");
  EXPECT_EQ(TextTable::num(3.0, 2), "3.00");
  EXPECT_EQ(TextTable::num(-0.5, 0), "-0");
}

TEST(TextTable, RowCount) {
  TextTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace chambolle
