#include "chambolle/tiled_solver.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chambolle {
namespace {

ChambolleParams params_with(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

Matrix<float> random_v(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  return random_image(rng, rows, cols, -3.f, 3.f);
}

// The paper's central correctness claim, machine-checked in its strongest
// form: the sliding-window solver is BIT-EXACT against the sequential
// full-frame solver, for every tile geometry and merge depth.
struct TiledCase {
  int rows, cols, tile_rows, tile_cols, merge, iterations, threads;
};

class TiledEqualsReference : public ::testing::TestWithParam<TiledCase> {};

TEST_P(TiledEqualsReference, BitExactOnProfitableElements) {
  const TiledCase& tc = GetParam();
  const Matrix<float> v = random_v(tc.rows, tc.cols, 1000 + tc.rows);
  const ChambolleParams params = params_with(tc.iterations);

  const ChambolleResult ref = solve(v, params);

  TiledSolverOptions opt;
  opt.tile_rows = tc.tile_rows;
  opt.tile_cols = tc.tile_cols;
  opt.merge_iterations = tc.merge;
  opt.num_threads = tc.threads;
  const ChambolleResult tiled = solve_tiled(v, params, opt);

  EXPECT_EQ(tiled.u, ref.u);
  EXPECT_EQ(tiled.p.px, ref.p.px);
  EXPECT_EQ(tiled.p.py, ref.p.py);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TiledEqualsReference,
    ::testing::Values(
        // Single tile degenerates to the reference.
        TiledCase{32, 32, 88, 92, 4, 20, 1},
        // Multi-tile, various merge depths and thread counts.
        TiledCase{64, 64, 24, 28, 4, 16, 1},
        TiledCase{64, 64, 24, 28, 4, 16, 4},
        TiledCase{64, 64, 24, 28, 1, 7, 2},
        TiledCase{50, 70, 20, 22, 8, 24, 3},
        TiledCase{97, 53, 30, 26, 5, 13, 2},  // iterations % merge != 0
        // The paper's window size on a frame slightly larger than one tile.
        TiledCase{90, 94, 88, 92, 4, 12, 2},
        // Tall/flat frames exercise the one-axis tiling paths.
        TiledCase{128, 16, 40, 16, 6, 18, 2},
        TiledCase{16, 128, 16, 40, 6, 18, 2},
        // Degenerate frame: a single pixel, still multi-threaded request.
        TiledCase{1, 1, 88, 92, 2, 9, 2},
        // Frame dimensions not divisible by the tile anywhere.
        TiledCase{61, 45, 16, 16, 2, 10, 3},
        // Tile dims exactly 2*halo+1: the smallest legal window, every
        // buffer cell is halo except a single profitable column/row.
        TiledCase{24, 24, 9, 9, 4, 12, 2},
        TiledCase{20, 20, 3, 3, 1, 7, 2},
        // Tile exactly equal to the frame (boundary of the single-tile path).
        TiledCase{40, 44, 40, 44, 3, 12, 2}));

TEST(TiledSolver, ExecutionEngineDoesNotChangeResult) {
  // kPool and kSpawn must be bit-identical to the reference and to each
  // other: the engine decides only who runs a tile, never its arithmetic.
  const Matrix<float> v = random_v(61, 45, 11);
  const ChambolleParams params = params_with(10);
  TiledSolverOptions opt;
  opt.tile_rows = 16;
  opt.tile_cols = 16;
  opt.merge_iterations = 2;

  const ChambolleResult ref = solve(v, params);
  for (const int threads : {1, 4}) {
    opt.num_threads = threads;
    opt.execution = parallel::Execution::kPool;
    const ChambolleResult pooled = solve_tiled(v, params, opt);
    opt.execution = parallel::Execution::kSpawn;
    const ChambolleResult spawned = solve_tiled(v, params, opt);
    EXPECT_EQ(pooled.u, ref.u) << "pool, " << threads << " threads";
    EXPECT_EQ(spawned.u, ref.u) << "spawn, " << threads << " threads";
    EXPECT_EQ(pooled.p.px, spawned.p.px);
    EXPECT_EQ(pooled.p.py, spawned.p.py);
  }
}

TEST(TiledSolver, StatsAccountRedundantWork) {
  const Matrix<float> v = random_v(64, 64, 5);
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 28;
  opt.merge_iterations = 4;
  opt.num_threads = 1;
  TiledSolverStats stats;
  (void)solve_tiled(v, params_with(16), opt, &stats);
  EXPECT_EQ(stats.passes, 4);
  EXPECT_GT(stats.tiles_per_pass, 1u);
  EXPECT_EQ(stats.useful_element_iterations, 64u * 64u * 16u);
  EXPECT_GT(stats.element_iterations, stats.useful_element_iterations);
  EXPECT_GT(stats.overhead(), 0.0);
}

TEST(TiledSolver, SingleTileHasZeroOverhead) {
  const Matrix<float> v = random_v(32, 32, 6);
  TiledSolverOptions opt;  // default 88x92 window covers the frame
  TiledSolverStats stats;
  (void)solve_tiled(v, params_with(8), opt, &stats);
  EXPECT_EQ(stats.tiles_per_pass, 1u);
  EXPECT_DOUBLE_EQ(stats.overhead(), 0.0);
}

TEST(TiledSolver, SmallerMergeDepthMeansMorePassesLessOverhead) {
  const Matrix<float> v = random_v(96, 96, 7);
  TiledSolverOptions opt;
  opt.tile_rows = 32;
  opt.tile_cols = 32;
  opt.num_threads = 1;

  TiledSolverStats s2, s8;
  opt.merge_iterations = 2;
  (void)solve_tiled(v, params_with(16), opt, &s2);
  opt.merge_iterations = 8;
  (void)solve_tiled(v, params_with(16), opt, &s8);

  EXPECT_GT(s2.passes, s8.passes);
  EXPECT_LT(s2.overhead(), s8.overhead());
}

TEST(TiledSolver, OptionValidation) {
  TiledSolverOptions opt;
  opt.merge_iterations = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = {};
  opt.tile_rows = 8;
  opt.merge_iterations = 4;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = {};
  opt.num_threads = -2;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

TEST(TiledSolver, RunTiledPassRejectsIterationsBeyondHalo) {
  const Matrix<float> v = random_v(32, 32, 8);
  Matrix<float> px(32, 32), py(32, 32), pxo(32, 32), pyo(32, 32);
  const TilingPlan plan = make_tiling(32, 32, 16, 16, 2);
  EXPECT_THROW(run_tiled_pass(px, py, pxo, pyo, v, plan, params_with(10), 3, 1),
               std::invalid_argument);
}

TEST(TiledSolver, PassesAreComposable) {
  // Two explicit 2-iteration passes == one 4-iteration reference run.
  const Matrix<float> v = random_v(48, 48, 9);
  const ChambolleParams params = params_with(0);
  const TilingPlan plan = make_tiling(48, 48, 20, 20, 2);

  Matrix<float> px(48, 48), py(48, 48), pxo(48, 48), pyo(48, 48);
  run_tiled_pass(px, py, pxo, pyo, v, plan, params, 2, 2);
  run_tiled_pass(pxo, pyo, px, py, v, plan, params, 2, 2);

  const ChambolleResult ref = solve(v, params_with(4));
  EXPECT_EQ(px, ref.p.px);
  EXPECT_EQ(py, ref.p.py);
}

TEST(TiledSolver, ThreadCountDoesNotChangeResult) {
  const Matrix<float> v = random_v(80, 60, 10);
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 24;
  opt.merge_iterations = 3;

  opt.num_threads = 1;
  const ChambolleResult a = solve_tiled(v, params_with(12), opt);
  opt.num_threads = 8;
  const ChambolleResult b = solve_tiled(v, params_with(12), opt);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.p.px, b.p.px);
}

}  // namespace
}  // namespace chambolle
