// telemetry_test.cpp — registry semantics, span nesting, disabled-mode
// no-ops, thread-safety smoke, and a parse-it-back check that the Chrome
// trace export is valid trace-event JSON.
//
// The TelemetryIntegration suite is additionally run by ctest as a separate
// invocation with CHAMBOLLE_TELEMETRY=1 in the environment (see
// tests/CMakeLists.txt) to catch instrumentation regressions under the env
// toggle; when run without the env var it enables telemetry
// programmatically, so it passes either way.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "chambolle/solver.hpp"
#include "chambolle/tiled_solver.hpp"
#include "common/rng.hpp"
#include "hw/accelerator.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/convergence.hpp"
#include "telemetry/json_util.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "tvl1/tvl1.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle {
namespace {

using telemetry::registry;

/// False when the library was built with -DCHAMBOLLE_ENABLE_TELEMETRY=OFF;
/// enabled-path tests skip themselves in that configuration.
constexpr bool kTelemetryCompiledIn =
#ifdef CHAMBOLLE_TELEMETRY_DISABLED
    false;
#else
    true;
#endif

#define SKIP_IF_COMPILED_OUT()                                 \
  if (!kTelemetryCompiledIn)                                   \
  GTEST_SKIP() << "telemetry compiled out (CHAMBOLLE_ENABLE_TELEMETRY=OFF)"

/// Restores the telemetry enabled state on scope exit so tests do not leak
/// the toggle into unrelated tests in the same binary.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(bool on) : was_(telemetry::enabled()) {
    telemetry::set_enabled(on);
  }
  ~ScopedTelemetry() { telemetry::set_enabled(was_); }

 private:
  bool was_;
};

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser, just enough to round-trip-check
// the exporters' output.  Throws std::runtime_error on malformed input.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace_back(key.str, value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::kString;
    expect('"');
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'n': v.str += '\n'; break;
          case 'r': v.str += '\r'; break;
          case 't': v.str += '\t'; break;
          case 'b': case 'f': break;
          case 'u':
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            pos_ += 4;  // validity only; code point not reconstructed
            break;
          default: fail("bad escape");
        }
      } else {
        v.str += c;
      }
    }
    ++pos_;
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::kBool;
    if (s_.compare(pos_, 4, "true") == 0) { v.boolean = true; pos_ += 4; }
    else if (s_.compare(pos_, 5, "false") == 0) { v.boolean = false; pos_ += 5; }
    else fail("bad literal");
    return v;
  }

  JsonValue null() {
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    JsonValue v;
    v.kind = JsonValue::kNull;
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("bad number");
    JsonValue v;
    v.kind = JsonValue::kNumber;
    v.number = std::atof(s_.substr(start, pos_ - start).c_str());
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metric registry semantics.

TEST(MetricRegistry, CounterAccumulatesWhenEnabled) {
  SKIP_IF_COMPILED_OUT();
  const ScopedTelemetry t(true);
  auto& c = registry().counter("test.counter.accumulates");
  const std::uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
}

TEST(MetricRegistry, SameNameReturnsSameMetric) {
  auto& a = registry().counter("test.counter.identity");
  auto& b = registry().counter("test.counter.identity");
  EXPECT_EQ(&a, &b);
}

TEST(MetricRegistry, KindCollisionThrows) {
  registry().counter("test.kind.collision");
  EXPECT_THROW(registry().gauge("test.kind.collision"), std::logic_error);
  EXPECT_THROW(registry().histogram("test.kind.collision"), std::logic_error);
}

TEST(MetricRegistry, GaugeLastValueWins) {
  SKIP_IF_COMPILED_OUT();
  const ScopedTelemetry t(true);
  auto& g = registry().gauge("test.gauge.lastwins");
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST(MetricRegistry, HistogramBucketSemantics) {
  SKIP_IF_COMPILED_OUT();
  const ScopedTelemetry t(true);
  auto& h = registry().histogram("test.histo.buckets", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (boundary is inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
}

TEST(MetricRegistry, HistogramRejectsNonIncreasingBounds) {
  EXPECT_THROW(registry().histogram("test.histo.badbounds", {1.0, 1.0}),
               std::invalid_argument);
}

TEST(MetricRegistry, HistogramQuantilesInterpolateWithinBuckets) {
  SKIP_IF_COMPILED_OUT();
  const ScopedTelemetry t(true);
  auto& h = registry().histogram("test.histo.quantiles", {10.0, 20.0, 40.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);   // bucket (-inf, 10]
  for (int i = 0; i < 10; ++i) h.observe(15.0);  // bucket (10, 20]
  // p50: rank 10 lands exactly at the top of the first bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 10.0);
  // p95: rank 19 is 9/10 through the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 19.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 19.8);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));

  // Overflow bucket has no upper edge: report the last finite bound (the
  // Prometheus convention).
  auto& over = registry().histogram("test.histo.quantile.over", {1.0});
  over.observe(100.0);
  EXPECT_DOUBLE_EQ(over.quantile(0.5), 1.0);
  // No observations: 0.
  auto& empty = registry().histogram("test.histo.quantile.empty", {1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(MetricRegistry, HistogramRejectsNonFiniteBoundsAndDropsNonFiniteObs) {
  // Audit regressions: NaN bounds used to pass the strictly-increasing check
  // (every NaN comparison is false), a NaN q escaped both clamps and walked
  // off the bucket array, and a NaN observation landed in bucket 0 and
  // poisoned sum() forever.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(registry().histogram("test.histo.nanbound", {nan}),
               std::invalid_argument);
  EXPECT_THROW(registry().histogram("test.histo.nanbound2", {1.0, nan}),
               std::invalid_argument);
  EXPECT_THROW(registry().histogram("test.histo.infbound", {1.0, inf}),
               std::invalid_argument);
  EXPECT_THROW(registry().histogram("test.histo.ninfbound", {-inf, 1.0}),
               std::invalid_argument);

  SKIP_IF_COMPILED_OUT();
  const ScopedTelemetry t(true);
  auto& h = registry().histogram("test.histo.nonfinite.obs", {1.0, 10.0});
  h.observe(nan);
  h.observe(inf);
  h.observe(-inf);
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // still empty
  h.observe(5.0);
  EXPECT_EQ(h.total_count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
  // NaN q clamps to the low end instead of indexing garbage.
  EXPECT_DOUBLE_EQ(h.quantile(nan), h.quantile(0.0));
  // Single observation: every quantile sits inside its bucket.
  EXPECT_GT(h.quantile(0.5), 1.0);
  EXPECT_LE(h.quantile(0.99), 10.0);
}

TEST(MetricRegistry, SnapshotCarriesHistogramQuantiles) {
  SKIP_IF_COMPILED_OUT();
  const ScopedTelemetry t(true);
  auto& h = registry().histogram("test.histo.snapshot.quantiles", {1.0, 8.0});
  h.observe(0.5);
  h.observe(4.0);
  const std::string json = registry().snapshot_json();
  ASSERT_TRUE(telemetry::json_well_formed(json));
  const JsonValue root = JsonParser(json).parse();
  const JsonValue* histo =
      root.find("histograms")->find("test.histo.snapshot.quantiles");
  ASSERT_NE(histo, nullptr);
  for (const char* key : {"p50", "p95", "p99"}) {
    const JsonValue* q = histo->find(key);
    ASSERT_NE(q, nullptr) << key;
    EXPECT_EQ(q->kind, JsonValue::kNumber) << key;
  }
  EXPECT_DOUBLE_EQ(histo->find("p50")->number, h.quantile(0.50));
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.

TEST(Prometheus, MetricNameSanitization) {
  using telemetry::prometheus_metric_name;
  EXPECT_EQ(prometheus_metric_name("tiles.passes"), "tiles_passes");
  EXPECT_EQ(prometheus_metric_name("already_fine:name"), "already_fine:name");
  EXPECT_EQ(prometheus_metric_name("0starts.with.digit"),
            "_0starts_with_digit");
  EXPECT_EQ(prometheus_metric_name("sp ace\"quote\nnl"), "sp_ace_quote_nl");
  EXPECT_EQ(prometheus_metric_name(""), "_");
}

TEST(Prometheus, ExpositionFormat) {
  SKIP_IF_COMPILED_OUT();
  const ScopedTelemetry t(true);
  registry().counter("test.prom.counter").add(3);
  registry().gauge("test.prom.gauge").set(2.5);
  auto& h = registry().histogram("test.prom.histo", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);

  const std::string text = telemetry::prometheus_text();
  EXPECT_NE(text.find("# TYPE test_prom_counter_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("\ntest_prom_counter_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge 2.5\n"), std::string::npos);
  // Histogram: cumulative buckets, +Inf = count, sum/count, quantile gauges.
  EXPECT_NE(text.find("# TYPE test_prom_histo histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_histo_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_histo_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_histo_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_histo_sum 55.5\n"), std::string::npos);
  EXPECT_NE(text.find("test_prom_histo_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_histo_p50 gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_histo_p99 "), std::string::npos);
  // Every line is a comment or "<name> <value>" with a sanitized name.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.find(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string name = line.substr(0, sp);
    for (const char c : name)
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                  c == '_' || c == ':' || c == '{' || c == '}' || c == '"' ||
                  c == '=' || c == '+' || c == '.' || c == '-')
          << "bad char in: " << line;
  }
}

// ---------------------------------------------------------------------------
// JSON hardening: the exporters must stay well-formed for ANY metric/span
// name, and json_well_formed must actually reject broken documents.

TEST(JsonHardening, ValidatorAcceptsAndRejects) {
  using telemetry::json_well_formed;
  EXPECT_TRUE(json_well_formed("{}"));
  EXPECT_TRUE(json_well_formed("[1, 2.5e-3, -4]"));
  EXPECT_TRUE(json_well_formed("{\"a\": [true, false, null], \"b\": \"x\"}"));
  EXPECT_TRUE(json_well_formed("\"lone \\u0041 string\""));
  EXPECT_FALSE(json_well_formed(""));
  EXPECT_FALSE(json_well_formed("{"));
  EXPECT_FALSE(json_well_formed("{} extra"));
  EXPECT_FALSE(json_well_formed("{\"a\": 01}"));      // leading zero
  EXPECT_FALSE(json_well_formed("{\"a\": .5}"));      // bare fraction
  EXPECT_FALSE(json_well_formed("{\"a\": \"\x01\"}"));  // raw control char
  EXPECT_FALSE(json_well_formed("{\"a\": \"\\x\"}"));   // bad escape
  EXPECT_FALSE(json_well_formed("{\"a\": \"\\u00g1\"}"));
  EXPECT_FALSE(json_well_formed("{\"a\" 1}"));
  EXPECT_FALSE(json_well_formed("[1, ]"));
  // Depth cap: 200 nested arrays overflow the 128-deep cursor.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(json_well_formed(deep));
  EXPECT_TRUE(json_well_formed(std::string(64, '[') + std::string(64, ']')));
}

TEST(JsonHardening, HostileMetricNamesSurviveEveryExporter) {
  SKIP_IF_COMPILED_OUT();
  const ScopedTelemetry t(true);
  // Deterministic fuzz sweep: names covering every escape class (quotes,
  // backslashes, control chars, DEL, high bytes, separators) plus seeded
  // random byte strings.
  std::vector<std::string> names = {
      "test.evil.quote\"name",   "test.evil.back\\slash",
      "test.evil.ctrl\x01\x02",  "test.evil.tab\tnewline\n",
      "test.evil.del\x7f",       "test.evil.high\xc3\xa9\xff",
      "test.evil.{br=\"ace\"}",  "test.evil.\\u0000like",
  };
  std::mt19937_64 rng(0xe5caf);
  for (int i = 0; i < 24; ++i) {
    std::string name = "test.evil.rand.";
    const std::size_t len = 1 + rng() % 12;
    for (std::size_t k = 0; k < len; ++k)
      name.push_back(static_cast<char>(1 + rng() % 255));  // no NUL
    names.push_back(std::move(name));
  }
  for (const std::string& name : names) {
    registry().counter(name).add(1);
    registry().gauge(name + ".g").set(1.0);
  }
  const std::string snapshot = registry().snapshot_json();
  EXPECT_TRUE(telemetry::json_well_formed(snapshot));
  EXPECT_NO_THROW((void)JsonParser(snapshot).parse());
  // The Prometheus side must sanitize the same names into the legal charset.
  const std::string prom = telemetry::prometheus_text();
  EXPECT_EQ(prom.find('\x01'), std::string::npos);
  EXPECT_EQ(prom.find('\x7f'), std::string::npos);
  // And the bench-report envelope, which embeds the snapshot verbatim.
  const std::string bench = telemetry::bench_report_json(
      "hostile\"bench\\name", {{"par\"am", "val\\ue\n"}}, 1.0);
  EXPECT_TRUE(telemetry::json_well_formed(bench));
}

TEST(MetricRegistry, DisabledUpdatesAreNoOps) {
  const ScopedTelemetry t(false);
  auto& c = registry().counter("test.disabled.counter");
  auto& g = registry().gauge("test.disabled.gauge");
  auto& h = registry().histogram("test.disabled.histo", {1.0});
  const std::uint64_t c0 = c.value();
  const double g0 = g.value();
  const std::uint64_t h0 = h.total_count();
  c.add(7);
  g.set(9.0);
  h.observe(0.5);
  EXPECT_EQ(c.value(), c0);
  EXPECT_DOUBLE_EQ(g.value(), g0);
  EXPECT_EQ(h.total_count(), h0);
}

TEST(MetricRegistry, SnapshotIsValidJsonAndContainsValues) {
  SKIP_IF_COMPILED_OUT();
  const ScopedTelemetry t(true);
  registry().counter("test.snapshot.counter").add(5);
  registry().gauge("test.snapshot.gauge").set(2.5);
  registry().histogram("test.snapshot.histo", {1.0}).observe(0.25);
  const std::string json = registry().snapshot_json();
  const JsonValue root = JsonParser(json).parse();
  ASSERT_EQ(root.kind, JsonValue::kObject);
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c = counters->find("test.snapshot.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->number, 5.0);
  const JsonValue* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("test.snapshot.gauge"), nullptr);
  const JsonValue* histos = root.find("histograms");
  ASSERT_NE(histos, nullptr);
  const JsonValue* h = histos->find("test.snapshot.histo");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(h->find("buckets"), nullptr);
  ASSERT_NE(h->find("count"), nullptr);
}

TEST(MetricRegistry, CounterThreadSafetySmoke) {
  SKIP_IF_COMPILED_OUT();
  const ScopedTelemetry t(true);
  auto& c = registry().counter("test.threads.counter");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> pool;
  for (int i = 0; i < kThreads; ++i)
    pool.emplace_back([&c] {
      for (int j = 0; j < kIncrements; ++j) c.add();
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(c.value(), before + kThreads * kIncrements);
}

// ---------------------------------------------------------------------------
// Trace spans.

TEST(TraceSpan, DisabledSpanIsInert) {
  const ScopedTelemetry t(false);
  const std::size_t before = telemetry::trace_event_count();
  {
    const telemetry::TraceSpan span("test.disabled.span");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(telemetry::trace_event_count(), before);
}

TEST(TraceSpan, NestedSpansRecordDepthAndContainment) {
  SKIP_IF_COMPILED_OUT();
  const ScopedTelemetry t(true);
  telemetry::clear_trace();
  {
    const telemetry::TraceSpan outer("test.span.outer");
    {
      const telemetry::TraceSpan inner("test.span.inner");
    }
  }
  const std::string json = telemetry::chrome_trace_json();
  const JsonValue root = JsonParser(json).parse();
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);

  const JsonValue* outer_ev = nullptr;
  const JsonValue* inner_ev = nullptr;
  for (const JsonValue& e : events->array) {
    const JsonValue* name = e.find("name");
    ASSERT_NE(name, nullptr);
    if (name->str == "test.span.outer") outer_ev = &e;
    if (name->str == "test.span.inner") inner_ev = &e;
  }
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  // Chrome trace-event required keys.
  for (const JsonValue* e : {outer_ev, inner_ev}) {
    EXPECT_NE(e->find("ph"), nullptr);
    EXPECT_NE(e->find("ts"), nullptr);
    EXPECT_NE(e->find("dur"), nullptr);
    EXPECT_NE(e->find("pid"), nullptr);
    EXPECT_NE(e->find("tid"), nullptr);
    EXPECT_EQ(e->find("ph")->str, "X");
  }
  // Nesting: inner lies inside outer in time and is one level deeper.
  const double o_ts = outer_ev->find("ts")->number;
  const double o_end = o_ts + outer_ev->find("dur")->number;
  const double i_ts = inner_ev->find("ts")->number;
  const double i_end = i_ts + inner_ev->find("dur")->number;
  EXPECT_GE(i_ts, o_ts);
  EXPECT_LE(i_end, o_end);
  EXPECT_EQ(outer_ev->find("args")->find("depth")->number, 0);
  EXPECT_EQ(inner_ev->find("args")->find("depth")->number, 1);
}

TEST(TraceSpan, SpansFromWorkerThreadsCarryDistinctTids) {
  SKIP_IF_COMPILED_OUT();
  const ScopedTelemetry t(true);
  telemetry::clear_trace();
  constexpr int kThreads = 4;
  std::vector<std::thread> pool;
  for (int i = 0; i < kThreads; ++i)
    pool.emplace_back([] {
      const telemetry::TraceSpan span("test.span.worker");
    });
  for (auto& th : pool) th.join();
  const std::string json = telemetry::chrome_trace_json();
  const JsonValue root = JsonParser(json).parse();
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<double> tids;
  for (const JsonValue& e : events->array)
    if (e.find("name")->str == "test.span.worker")
      tids.push_back(e.find("tid")->number);
  ASSERT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

// ---------------------------------------------------------------------------
// Convergence recording.

TEST(ConvergenceTrace, SolveFillsMonotoneCurve) {
  Rng rng(7);
  const Matrix<float> v = random_image(rng, 24, 24, -1.f, 1.f);
  ChambolleParams params;
  params.iterations = 20;
  telemetry::ConvergenceTrace conv;
  const ChambolleResult traced = solve(v, params, nullptr, &conv);
  ASSERT_EQ(conv.points().size(), 20u);
  // The curve converges: energy drops overall and the dual residual shrinks.
  // (Strict per-step monotonicity of the primal energy is not guaranteed.)
  for (const auto& pt : conv.points()) EXPECT_TRUE(std::isfinite(pt.energy));
  EXPECT_LT(conv.points().back().energy, conv.points().front().energy);
  EXPECT_LT(conv.points().back().max_delta_p, conv.points().front().max_delta_p);
  // Iteration-by-iteration stepping must not change the result.
  const ChambolleResult plain = solve(v, params);
  for (std::size_t i = 0; i < plain.u.size(); ++i)
    EXPECT_EQ(plain.u.data()[i], traced.u.data()[i]);
  // JSON round-trip.
  const JsonValue root = JsonParser(conv.to_json()).parse();
  ASSERT_EQ(root.kind, JsonValue::kArray);
  ASSERT_EQ(root.array.size(), 20u);
  EXPECT_EQ(root.array[0].find("iteration")->number, 1);
}

// ---------------------------------------------------------------------------
// Bench report schema.

TEST(BenchReport, JsonHasStableSchema) {
  const std::string json = telemetry::bench_report_json(
      "unit_test", {{"param", "value"}}, 12.5);
  const JsonValue root = JsonParser(json).parse();
  ASSERT_EQ(root.kind, JsonValue::kObject);
  EXPECT_EQ(root.find("name")->str, "unit_test");
  EXPECT_EQ(root.find("params")->find("param")->str, "value");
  EXPECT_DOUBLE_EQ(root.find("wall_ms")->number, 12.5);
  const JsonValue* metrics = root.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->find("counters"), nullptr);
}

TEST(BenchReport, RepeatStatsOrderStatistics) {
  const telemetry::RepeatStats odd =
      telemetry::repeat_stats({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(odd.min, 1.0);
  EXPECT_DOUBLE_EQ(odd.median, 3.0);
  EXPECT_DOUBLE_EQ(odd.max, 5.0);
  const telemetry::RepeatStats even = telemetry::repeat_stats({4.0, 1.0});
  EXPECT_DOUBLE_EQ(even.median, 2.5);
  const telemetry::RepeatStats empty = telemetry::repeat_stats({});
  EXPECT_DOUBLE_EQ(empty.min, 0.0);
  EXPECT_DOUBLE_EQ(empty.median, 0.0);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);

  telemetry::BenchParams params;
  telemetry::append_repeat_stats(params, "solve_ms", odd);
  ASSERT_EQ(params.size(), 5u);
  EXPECT_EQ(params[0].first, "solve_ms_min");
  EXPECT_EQ(params[1].first, "solve_ms_median");
  EXPECT_EQ(params[1].second, "3.000");
  EXPECT_EQ(params[2].first, "solve_ms_max");
  EXPECT_EQ(params[3].first, "solve_ms_mad");
  EXPECT_EQ(params[4].first, "solve_ms_n");
  EXPECT_EQ(params[4].second, "5");
}

TEST(BenchReport, RepeatStatsMadIsRobustToOutliers) {
  // {1, 2, 3, 4, 100}: the outlier drags the mean but not the median (3)
  // or the MAD (deviations {2, 1, 0, 1, 97} -> sorted median 1).
  const telemetry::RepeatStats s =
      telemetry::repeat_stats({1.0, 2.0, 3.0, 4.0, 100.0});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mad, 1.0);
  EXPECT_EQ(s.count, 5u);
  const telemetry::RepeatStats even =
      telemetry::repeat_stats({10.0, 12.0, 14.0, 20.0});
  EXPECT_DOUBLE_EQ(even.median, 13.0);
  EXPECT_DOUBLE_EQ(even.mad, 2.0);  // deviations {3, 1, 1, 7} -> (1 + 3) / 2
  EXPECT_EQ(telemetry::repeat_stats({}).count, 0u);
  EXPECT_DOUBLE_EQ(telemetry::repeat_stats({}).mad, 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end integration: run by ctest once with CHAMBOLLE_TELEMETRY=1.

TEST(TelemetryIntegration, PipelineProducesMetricsAndNestedTrace) {
  SKIP_IF_COMPILED_OUT();
  const char* env = std::getenv("CHAMBOLLE_TELEMETRY");
  const bool env_enabled = env != nullptr && std::string(env) == "1";
  const ScopedTelemetry t(true);
  if (env_enabled) {
    EXPECT_TRUE(telemetry::enabled());
  }
  telemetry::clear_trace();

  auto& iters = registry().counter("chambolle.solver.iterations");
  auto& profitable = registry().counter("chambolle.tiled.profitable_elements");
  auto& bram_reads = registry().counter("hw.bram.reads");
  const std::uint64_t iters0 = iters.value();
  const std::uint64_t prof0 = profitable.value();
  const std::uint64_t reads0 = bram_reads.value();

  // Software pipeline: reference inner solver, then a tiled solve.
  const auto wl = workloads::translating_scene(32, 32, 1.f, 0.f);
  tvl1::Tvl1Params params;
  params.pyramid_levels = 2;
  params.warps = 2;
  params.chambolle.iterations = 8;
  const FlowField flow = tvl1::compute_flow(wl.frame0, wl.frame1, params);
  EXPECT_GT(flow.u1.size(), 0u);

  Rng rng(3);
  const Matrix<float> v = random_image(rng, 48, 48, -1.f, 1.f);
  ChambolleParams cp;
  cp.iterations = 8;
  TiledSolverOptions topt;
  topt.tile_rows = 24;
  topt.tile_cols = 24;
  topt.merge_iterations = 4;
  topt.num_threads = 2;
  (void)solve_tiled(v, cp, topt);

  // Simulated hardware: one accelerator solve bridges hw.* counters.
  hw::ChambolleAccelerator accel;
  FlowField vf(32, 32);
  ChambolleParams hp;
  hp.iterations = 4;
  (void)accel.solve(vf, hp);

  EXPECT_GT(iters.value(), iters0);
  EXPECT_GT(profitable.value(), prof0);
  EXPECT_GT(bram_reads.value(), reads0);

  // The trace holds nested spans for >= 4 distinct pipeline stages.
  const std::string json = telemetry::chrome_trace_json();
  const JsonValue root = JsonParser(json).parse();
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<std::string> stages;
  int max_depth = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || ph->str != "X") continue;
    const std::string& name = e.find("name")->str;
    if (std::find(stages.begin(), stages.end(), name) == stages.end())
      stages.push_back(name);
    const JsonValue* args = e.find("args");
    if (args != nullptr && args->find("depth") != nullptr)
      max_depth = std::max(max_depth,
                           static_cast<int>(args->find("depth")->number));
  }
  EXPECT_GE(stages.size(), 4u);
  EXPECT_GE(max_depth, 2);
}

}  // namespace
}  // namespace chambolle
