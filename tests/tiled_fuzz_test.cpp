// tiled_fuzz_test.cpp — randomized geometry sweep of the sliding-window CPU
// solver, mirroring hw_fuzz_test: for random frames, tile shapes, merge
// depths and thread counts, the tiled solver must stay bit-exact against
// the sequential reference.  Seeded for reproducibility.
#include <gtest/gtest.h>

#include "chambolle/tiled_solver.hpp"
#include "common/rng.hpp"

namespace chambolle {
namespace {

class TiledFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TiledFuzz, RandomGeometryStaysBitExact) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729u + 5u);

  const int rows = rng.uniform_int(5, 90);
  const int cols = rng.uniform_int(5, 90);
  TiledSolverOptions opt;
  opt.merge_iterations = rng.uniform_int(1, 6);
  opt.tile_rows =
      rng.uniform_int(2 * opt.merge_iterations + 1, 2 * opt.merge_iterations + 40);
  opt.tile_cols =
      rng.uniform_int(2 * opt.merge_iterations + 1, 2 * opt.merge_iterations + 40);
  opt.num_threads = rng.uniform_int(1, 4);

  ChambolleParams params;
  params.iterations = rng.uniform_int(1, 14);

  const Matrix<float> v = random_image(rng, rows, cols, -4.f, 4.f);
  const ChambolleResult ref = solve(v, params);
  const ChambolleResult tiled = solve_tiled(v, params, opt);

  ASSERT_EQ(tiled.u, ref.u)
      << "frame " << rows << "x" << cols << " tile " << opt.tile_rows << "x"
      << opt.tile_cols << " merge " << opt.merge_iterations << " iters "
      << params.iterations << " threads " << opt.num_threads;
  ASSERT_EQ(tiled.p.px, ref.p.px);
  ASSERT_EQ(tiled.p.py, ref.p.py);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TiledFuzz, ::testing::Range(0, 24));

}  // namespace
}  // namespace chambolle
