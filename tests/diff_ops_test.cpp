#include "grid/diff_ops.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chambolle::grid {
namespace {

TEST(DiffOps, ForwardXDefinition) {
  Matrix<float> z(1, 4);
  z(0, 0) = 1.f;
  z(0, 1) = 4.f;
  z(0, 2) = 9.f;
  z(0, 3) = 16.f;
  const Matrix<float> d = forward_x(z);
  EXPECT_FLOAT_EQ(d(0, 0), 3.f);
  EXPECT_FLOAT_EQ(d(0, 1), 5.f);
  EXPECT_FLOAT_EQ(d(0, 2), 7.f);
  EXPECT_FLOAT_EQ(d(0, 3), 0.f);  // zero on the far border
}

TEST(DiffOps, ForwardYDefinition) {
  Matrix<float> z(3, 1);
  z(0, 0) = 2.f;
  z(1, 0) = 5.f;
  z(2, 0) = 11.f;
  const Matrix<float> d = forward_y(z);
  EXPECT_FLOAT_EQ(d(0, 0), 3.f);
  EXPECT_FLOAT_EQ(d(1, 0), 6.f);
  EXPECT_FLOAT_EQ(d(2, 0), 0.f);
}

TEST(DiffOps, BackwardXBoundaryRules) {
  Matrix<float> p(1, 3);
  p(0, 0) = 2.f;
  p(0, 1) = 5.f;
  p(0, 2) = 11.f;
  const Matrix<float> d = backward_x(p);
  EXPECT_FLOAT_EQ(d(0, 0), 2.f);    // first column: p itself
  EXPECT_FLOAT_EQ(d(0, 1), 3.f);    // interior: p - left
  EXPECT_FLOAT_EQ(d(0, 2), -5.f);   // last column: -left
}

TEST(DiffOps, BackwardYBoundaryRules) {
  Matrix<float> p(3, 1);
  p(0, 0) = 1.f;
  p(1, 0) = 4.f;
  p(2, 0) = 9.f;
  const Matrix<float> d = backward_y(p);
  EXPECT_FLOAT_EQ(d(0, 0), 1.f);
  EXPECT_FLOAT_EQ(d(1, 0), 3.f);
  EXPECT_FLOAT_EQ(d(2, 0), -4.f);
}

TEST(DiffOps, ForwardOfConstantIsZero) {
  Matrix<float> z(5, 6, 3.7f);
  for (float v : forward_x(z)) EXPECT_FLOAT_EQ(v, 0.f);
  for (float v : forward_y(z)) EXPECT_FLOAT_EQ(v, 0.f);
}

TEST(DiffOps, DivergenceSumIsZero) {
  // Telescoping: the Chambolle boundary rules make the divergence sum vanish
  // for ANY p — the discrete analogue of the divergence theorem with no flux.
  Rng rng(11);
  const Matrix<float> px = random_image(rng, 7, 9, -1.f, 1.f);
  const Matrix<float> py = random_image(rng, 7, 9, -1.f, 1.f);
  const Matrix<float> div = divergence(px, py);
  double sum = 0.0;
  for (float v : div) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-4);
}

TEST(DiffOps, DivergenceShapeMismatchThrows) {
  EXPECT_THROW(divergence(Matrix<float>(2, 2), Matrix<float>(2, 3)),
               std::invalid_argument);
}

TEST(DiffOps, BackwardDiffScalarRules) {
  EXPECT_FLOAT_EQ(backward_diff(5.f, 2.f, true, false), 5.f);
  EXPECT_FLOAT_EQ(backward_diff(5.f, 2.f, false, false), 3.f);
  EXPECT_FLOAT_EQ(backward_diff(5.f, 2.f, false, true), -2.f);
}

TEST(DiffOps, DotProduct) {
  Matrix<float> a(1, 3), b(1, 3);
  a(0, 0) = 1.f; a(0, 1) = 2.f; a(0, 2) = 3.f;
  b(0, 0) = 4.f; b(0, 1) = 5.f; b(0, 2) = 6.f;
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

// Adjointness property: <grad u, p> = -<u, div p> for random fields across a
// sweep of grid sizes — the identity the dual algorithm is built on.
class AdjointnessTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AdjointnessTest, GradientAndDivergenceAreAdjoint) {
  const auto [rows, cols] = GetParam();
  Rng rng(static_cast<std::uint64_t>(rows * 1000 + cols));
  const Matrix<float> u = random_image(rng, rows, cols, -10.f, 10.f);
  const Matrix<float> px = random_image(rng, rows, cols, -1.f, 1.f);
  const Matrix<float> py = random_image(rng, rows, cols, -1.f, 1.f);

  const double lhs = dot(forward_x(u), px) + dot(forward_y(u), py);
  const double rhs = -dot(u, divergence(px, py));
  EXPECT_NEAR(lhs, rhs, 1e-2 * (std::abs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AdjointnessTest,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 8}, std::pair{8, 1},
                      std::pair{2, 2}, std::pair{3, 5}, std::pair{16, 16},
                      std::pair{7, 13}, std::pair{31, 17},
                      std::pair{64, 48}));

}  // namespace
}  // namespace chambolle::grid
