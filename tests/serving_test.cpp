// serving_test.cpp — the multi-stream flow service: stream isolation,
// batching, admission control (queue bound + latency SLO), drain, and the
// per-session metric scoping.
//
// The exactness claims lean on the engine contract pinned by
// engine_reuse_test.cpp: the service reuses pooled engines that other
// sessions ran on, and every reply must still be bit-identical to a
// serial fresh-engine replay of that session alone.
#include "serving/flow_service.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "chambolle/resident_tiled.hpp"
#include "common/rng.hpp"
#include "telemetry/metrics.hpp"
#include "testing/concurrent_oracle.hpp"
#include "tvl1/tvl1.hpp"

namespace chambolle {
namespace {

using serving::FlowService;
using serving::FlowServiceOptions;
using serving::Reply;
using serving::ReplyStatus;

Matrix<float> random_v(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  return random_image(rng, rows, cols, -3.f, 3.f);
}

void expect_memcmp_eq(const Matrix<float>& a, const Matrix<float>& b,
                      const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  EXPECT_EQ(0, std::memcmp(a.data().data(), b.data().data(),
                           a.size() * sizeof(float)))
      << what;
}

// Small, fast solver configuration for Chambolle-mode streams.
tvl1::Tvl1Params quick_params() {
  tvl1::Tvl1Params p;
  p.chambolle.iterations = 6;
  p.tiled.tile_rows = 12;
  p.tiled.tile_cols = 14;
  p.tiled.merge_iterations = 3;
  p.tiled.num_threads = 2;
  return p;
}

// The serial truth for one Chambolle-mode stream: fresh engine per frame,
// duals chained through snapshots, warm only while the resolution holds
// (a switch restarts cold) — exactly the Session::submit contract.
std::vector<Matrix<float>> serial_chain(
    const std::vector<Matrix<float>>& frames, const tvl1::Tvl1Params& p) {
  std::vector<Matrix<float>> out;
  DualField duals;
  bool has_duals = false;
  for (const Matrix<float>& v : frames) {
    const DualField* initial =
        has_duals && duals.px.same_shape(v) ? &duals : nullptr;
    ResidentTiledEngine engine(v, p.chambolle, p.tiled, initial);
    engine.run(p.chambolle.iterations);
    engine.snapshot(duals);
    has_duals = true;
    out.push_back(engine.result().u);
  }
  return out;
}

TEST(ServingSession, ChambolleStreamMatchesFreshEngineChain) {
  FlowServiceOptions opts;
  opts.params = quick_params();
  opts.slots = 2;
  opts.lanes_per_slot = 2;
  opts.queue_capacity = 16;
  FlowService service(opts);
  auto session = service.open_session();

  std::vector<Matrix<float>> frames;
  for (int f = 0; f < 4; ++f) frames.push_back(random_v(30, 26, 9100 + f));
  const std::vector<Matrix<float>> want = serial_chain(frames, opts.params);

  std::vector<std::future<Reply>> futures;
  for (const auto& v : frames) futures.push_back(session->submit(v));
  for (std::size_t f = 0; f < frames.size(); ++f) {
    Reply r = futures[f].get();
    ASSERT_EQ(r.status, ReplyStatus::kOk) << "frame " << f;
    EXPECT_EQ(r.sequence, f);
    expect_memcmp_eq(r.u, want[f], "warm-start chain frame");
  }
  const serving::ServiceStats st = service.stats();
  EXPECT_EQ(st.admitted, frames.size());
  EXPECT_EQ(st.completed, frames.size());
  EXPECT_EQ(st.shed_queue_full + st.shed_deadline, 0u);
}

TEST(ServingSession, ResolutionSwitchRestartsColdAndStillMatches) {
  FlowServiceOptions opts;
  opts.params = quick_params();
  opts.slots = 1;
  opts.lanes_per_slot = 2;
  FlowService service(opts);
  auto session = service.open_session();

  // 30x26 -> 18x22 -> 30x26: the second 30x26 frame warm-starts from the
  // 18x22 snapshot's... nothing — shapes differ, so it restarts cold, and
  // the per-resolution engine cache must serve it stale-free.
  std::vector<Matrix<float>> frames = {random_v(30, 26, 9200),
                                       random_v(18, 22, 9201),
                                       random_v(30, 26, 9202)};
  const std::vector<Matrix<float>> want = serial_chain(frames, opts.params);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    Reply r = session->submit(frames[f]).get();
    ASSERT_EQ(r.status, ReplyStatus::kOk);
    expect_memcmp_eq(r.u, want[f], "resolution-switch frame");
  }
}

TEST(ServingFlow, FlowStreamMatchesComputeFlowPairs) {
  tvl1::Tvl1Params p;
  p.pyramid_levels = 2;
  p.warps = 1;
  p.chambolle.iterations = 4;
  FlowServiceOptions opts;
  opts.params = p;
  opts.slots = 2;
  opts.lanes_per_slot = 1;
  FlowService service(opts);
  auto session = service.open_session();

  Rng rng(9300);
  std::vector<Image> frames;
  for (int f = 0; f < 3; ++f) frames.push_back(random_image(rng, 28, 24));

  Reply primed = session->submit_frame(frames[0]).get();
  EXPECT_EQ(primed.status, ReplyStatus::kPrimed);
  for (int f = 1; f < 3; ++f) {
    Reply r = session->submit_frame(frames[f]).get();
    ASSERT_EQ(r.status, ReplyStatus::kOk);
    const FlowField want = tvl1::compute_flow(frames[f - 1], frames[f], p);
    expect_memcmp_eq(r.flow.u1, want.u1, "flow stream u1");
    expect_memcmp_eq(r.flow.u2, want.u2, "flow stream u2");
    EXPECT_GT(r.flow_stats.levels_processed, 0);
  }
  EXPECT_EQ(service.stats().primed, 1u);
}

// Deterministic queue-full shedding: one slot, its worker pinned down by a
// big solve from session A, so session B's queue fills at our pace.
TEST(ServingAdmission, QueueFullShedsAndStreamContinuesAsIfNeverSubmitted) {
  FlowServiceOptions opts;
  opts.params = quick_params();
  opts.params.chambolle.iterations = 60;  // the blocker's budget
  opts.params.tiled.tile_rows = 88;
  opts.params.tiled.tile_cols = 92;
  opts.slots = 1;
  opts.lanes_per_slot = 1;
  opts.queue_capacity = 1;
  opts.max_batch = 1;
  FlowService service(opts);
  auto blocker_session = service.open_session();
  auto session = service.open_session();

  auto blocker = blocker_session->submit(random_v(384, 384, 9400));
  // Wait until the worker has CLAIMED the blocker (queue empty again) so
  // the next submits provably queue behind a busy slot.
  while (service.stats().queue_depth != 0) std::this_thread::yield();

  std::vector<Matrix<float>> frames;
  for (int f = 0; f < 4; ++f) frames.push_back(random_v(20, 20, 9410 + f));
  auto f0 = session->submit(frames[0]);  // queues (slot busy)
  auto f1 = session->submit(frames[1]);  // fifo at capacity: must shed NOW
  Reply shed = f1.get();
  EXPECT_EQ(shed.status, ReplyStatus::kShedQueueFull);
  EXPECT_EQ(shed.sequence, 1u);

  ASSERT_EQ(blocker.get().status, ReplyStatus::kOk);
  ASSERT_EQ(f0.get().status, ReplyStatus::kOk);
  Reply r2 = session->submit(frames[2]).get();
  Reply r3 = session->submit(frames[3]).get();
  ASSERT_EQ(r2.status, ReplyStatus::kOk);
  ASSERT_EQ(r3.status, ReplyStatus::kOk);

  // The stream must read as if the shed frame was never submitted: the
  // warm chain is frames[0] -> frames[2] -> frames[3].
  const std::vector<Matrix<float>> want =
      serial_chain({frames[0], frames[2], frames[3]}, opts.params);
  expect_memcmp_eq(r2.u, want[1], "post-shed continuation frame 2");
  expect_memcmp_eq(r3.u, want[2], "post-shed continuation frame 3");
  EXPECT_GE(service.stats().shed_queue_full, 1u);
}

// Deterministic deadline shedding: the queued request waits out the whole
// blocker solve, far past the SLO, and must be dropped at dispatch with
// the session state untouched.
TEST(ServingAdmission, DeadlineShedsWhenQueuedPastSlo) {
  FlowServiceOptions opts;
  opts.params = quick_params();
  opts.params.chambolle.iterations = 60;
  opts.params.tiled.tile_rows = 88;
  opts.params.tiled.tile_cols = 92;
  opts.slots = 1;
  opts.lanes_per_slot = 1;
  opts.queue_capacity = 8;
  opts.slo_ms = 5.0;  // far above dispatch latency, far below the blocker
  FlowService service(opts);
  auto blocker_session = service.open_session();
  auto session = service.open_session();

  auto blocker = blocker_session->submit(random_v(512, 512, 9500));
  while (service.stats().queue_depth != 0) std::this_thread::yield();

  const Matrix<float> v = random_v(20, 20, 9501);
  Reply shed = session->submit(v).get();  // waits out the blocker, then sheds
  EXPECT_EQ(shed.status, ReplyStatus::kShedDeadline);
  EXPECT_GT(shed.queue_ms, opts.slo_ms);
  ASSERT_EQ(blocker.get().status, ReplyStatus::kOk);

  const serving::ServiceStats st = service.stats();
  EXPECT_GE(st.shed_deadline, 1u);
  EXPECT_EQ(st.completed, 1u);  // only the blocker solved
}

TEST(ServingAdmission, DrainRejectsNewSubmits) {
  FlowServiceOptions opts;
  opts.params = quick_params();
  opts.slots = 1;
  FlowService service(opts);
  auto session = service.open_session();
  ASSERT_EQ(session->submit(random_v(16, 16, 9600)).get().status,
            ReplyStatus::kOk);
  service.drain();
  EXPECT_EQ(session->submit(random_v(16, 16, 9601)).get().status,
            ReplyStatus::kClosed);
}

// Satellite assertion: more sessions than slots and lanes must make
// progress (the old failure mode was whole-region serialization on the
// shared default pool; the fleet's per-slot pools make sessions overlap
// and, above all, never deadlock).
TEST(ServingFleet, MoreSessionsThanSlotsAndLanesCompletes) {
  FlowServiceOptions opts;
  opts.params = quick_params();
  opts.slots = 2;
  opts.lanes_per_slot = 1;
  opts.queue_capacity = 8;
  FlowService service(opts);

  constexpr int kSessions = 6;
  constexpr int kFrames = 3;
  std::vector<std::shared_ptr<FlowService::Session>> sessions;
  std::vector<std::vector<Matrix<float>>> frames(kSessions);
  std::vector<std::vector<std::future<Reply>>> futures(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(service.open_session());
    for (int f = 0; f < kFrames; ++f)
      frames[s].push_back(random_v(24 + s, 20 + s, 9700 + 10 * s + f));
  }
  for (int f = 0; f < kFrames; ++f)
    for (int s = 0; s < kSessions; ++s)
      futures[s].push_back(sessions[s]->submit(frames[s][f]));

  for (int s = 0; s < kSessions; ++s) {
    const std::vector<Matrix<float>> want =
        serial_chain(frames[s], opts.params);
    for (int f = 0; f < kFrames; ++f) {
      Reply r = futures[s][f].get();
      ASSERT_EQ(r.status, ReplyStatus::kOk) << "session " << s;
      expect_memcmp_eq(r.u, want[f], "fleet session frame");
    }
  }
  const serving::ServiceStats st = service.stats();
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kSessions * kFrames));
  EXPECT_GT(st.batches, 0u);
}

// The tentpole exactness claim, via the seeded differential oracle:
// interleaved sessions through one service == each session's serial
// fresh-engine replay, bit for bit, at every fleet lane count.
TEST(ConcurrentSessionsOracle, InterleavedMatchesSerialAcrossLaneCounts) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const oracle::ConcurrentOracleReport report =
        oracle::run_concurrent_oracle(seed);
    EXPECT_TRUE(report.pass) << report.failure_report();
    EXPECT_EQ(report.lane_counts_checked, 2);
  }
}

// Same isolation claim for flow-mode streams (pyramid state instead of
// dual state): interleaved == one-session-at-a-time replay.
TEST(ConcurrentSessionsOracle, FlowModeInterleavedMatchesSoloReplay) {
  tvl1::Tvl1Params p;
  p.pyramid_levels = 2;
  p.warps = 1;
  p.chambolle.iterations = 4;
  FlowServiceOptions opts;
  opts.params = p;
  opts.slots = 2;
  opts.lanes_per_slot = 2;
  opts.queue_capacity = 32;
  FlowService service(opts);

  constexpr int kSessions = 3;
  constexpr int kFrames = 3;
  Rng rng(9800);
  std::vector<std::vector<Image>> frames(kSessions);
  for (int s = 0; s < kSessions; ++s)
    for (int f = 0; f < kFrames; ++f)
      frames[s].push_back(random_image(rng, 26 + 2 * s, 22 + 2 * s));

  std::vector<std::shared_ptr<FlowService::Session>> sessions;
  std::vector<std::vector<std::future<Reply>>> futures(kSessions);
  for (int s = 0; s < kSessions; ++s) sessions.push_back(service.open_session());
  for (int f = 0; f < kFrames; ++f)
    for (int s = 0; s < kSessions; ++s)
      futures[s].push_back(sessions[s]->submit_frame(frames[s][f]));

  for (int s = 0; s < kSessions; ++s) {
    tvl1::FlowSession solo(p);
    for (int f = 0; f < kFrames; ++f) {
      Reply r = futures[s][f].get();
      const std::optional<FlowField> want = solo.push_frame(frames[s][f]);
      if (f == 0) {
        EXPECT_EQ(r.status, ReplyStatus::kPrimed);
        EXPECT_FALSE(want.has_value());
        continue;
      }
      ASSERT_EQ(r.status, ReplyStatus::kOk);
      ASSERT_TRUE(want.has_value());
      expect_memcmp_eq(r.flow.u1, want->u1, "flow-mode interleaved u1");
      expect_memcmp_eq(r.flow.u2, want->u2, "flow-mode interleaved u2");
    }
  }
}

// FlowSession (tvl1 layer): the pyramid cache must be unobservable, and
// reset()/shape changes must behave as documented.
TEST(FlowSessionTest, StreamMatchesPairwiseComputeFlow) {
  tvl1::Tvl1Params p;
  p.pyramid_levels = 2;
  p.warps = 1;
  p.chambolle.iterations = 4;
  tvl1::FlowSession session(p);
  Rng rng(9900);
  std::vector<Image> frames;
  for (int f = 0; f < 4; ++f) frames.push_back(random_image(rng, 30, 26));

  EXPECT_FALSE(session.push_frame(frames[0]).has_value());
  for (int f = 1; f < 4; ++f) {
    const std::optional<FlowField> got = session.push_frame(frames[f]);
    ASSERT_TRUE(got.has_value());
    const FlowField want = tvl1::compute_flow(frames[f - 1], frames[f], p);
    expect_memcmp_eq(got->u1, want.u1, "session vs pairwise u1");
    expect_memcmp_eq(got->u2, want.u2, "session vs pairwise u2");
  }
  EXPECT_EQ(session.frames(), 4);

  session.reset();
  EXPECT_EQ(session.frames(), 0);
  EXPECT_FALSE(session.push_frame(frames[0]).has_value());  // primes again
}

TEST(FlowSessionTest, ShapeChangeMidStreamThrows) {
  tvl1::Tvl1Params p;
  p.pyramid_levels = 2;
  p.warps = 1;
  p.chambolle.iterations = 2;
  tvl1::FlowSession session(p);
  Rng rng(9910);
  (void)session.push_frame(random_image(rng, 20, 20));
  EXPECT_THROW((void)session.push_frame(random_image(rng, 22, 20)),
               std::invalid_argument);
  session.reset();
  EXPECT_FALSE(session.push_frame(random_image(rng, 22, 20)).has_value());
}

// Per-session metric scoping: a ScopedMetrics prefix must resolve to the
// same underlying registry objects as the fully qualified name, so the
// process-wide snapshot sees every session without interleaving them.
TEST(ScopedMetricsTest, PrefixResolvesIntoSharedRegistry) {
  telemetry::ScopedMetrics scope("serving.session.test42");
  EXPECT_EQ(scope.scoped("admitted"), "serving.session.test42.admitted");
  telemetry::Counter& scoped = scope.counter("admitted");
  telemetry::Counter& direct =
      telemetry::registry().counter("serving.session.test42.admitted");
  EXPECT_EQ(&scoped, &direct);

  telemetry::ScopedMetrics empty("");
  EXPECT_EQ(&empty.counter("serving.admitted"),
            &telemetry::registry().counter("serving.admitted"));
}

}  // namespace
}  // namespace chambolle
