#include "hw/sliding_window.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chambolle::hw {
namespace {

FixedParams default_fp() {
  ChambolleParams p;
  return FixedParams::from(p);
}

ArchConfig small_config() {
  ArchConfig cfg;
  cfg.tile_rows = 40;
  cfg.tile_cols = 40;
  cfg.merge_iterations = 3;
  return cfg;
}

FrameState make_frame(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  FrameState f(rows, cols);
  f.u1 = make_fixed_state(random_image(rng, rows, cols, -3.f, 3.f));
  f.u2 = make_fixed_state(random_image(rng, rows, cols, -3.f, 3.f));
  return f;
}

TEST(SlidingWindow, SingleTileMatchesFixedSolver) {
  const ArchConfig cfg = small_config();
  SlidingWindowEngine engine(cfg);
  const FrameState src = make_frame(32, 32, 1);
  FrameState dst = src;

  TileSpec tile;
  tile.buf_rows = tile.prof_rows = 32;
  tile.buf_cols = tile.prof_cols = 32;
  engine.process_tile(src, dst, tile, default_fp(), 3);

  FixedState ref1 = src.u1;
  FixedState ref2 = src.u2;
  Matrix<std::int32_t> scratch;
  const RegionGeometry geom = RegionGeometry::full_frame(32, 32);
  fixed_iterate_region(ref1, geom, default_fp(), 3, scratch);
  fixed_iterate_region(ref2, geom, default_fp(), 3, scratch);

  EXPECT_EQ(dst.u1.px, ref1.px);
  EXPECT_EQ(dst.u1.py, ref1.py);
  EXPECT_EQ(dst.u2.px, ref2.px);
  EXPECT_EQ(dst.u2.py, ref2.py);
}

TEST(SlidingWindow, WritesOnlyTheProfitableRegion) {
  const ArchConfig cfg = small_config();
  SlidingWindowEngine engine(cfg);
  const FrameState src = make_frame(64, 64, 2);
  FrameState dst = src;

  TileSpec tile;  // interior tile: buffer 20x20, profitable core 14x14
  tile.buf_row0 = 10;
  tile.buf_col0 = 10;
  tile.buf_rows = 20;
  tile.buf_cols = 20;
  tile.prof_row0 = 13;
  tile.prof_col0 = 13;
  tile.prof_rows = 14;
  tile.prof_cols = 14;
  engine.process_tile(src, dst, tile, default_fp(), 3);

  int changed_outside = 0;
  for (int r = 0; r < 64; ++r)
    for (int c = 0; c < 64; ++c) {
      const bool inside = r >= 13 && r < 27 && c >= 13 && c < 27;
      if (!inside && (dst.u1.px(r, c) != src.u1.px(r, c) ||
                      dst.u1.py(r, c) != src.u1.py(r, c)))
        ++changed_outside;
    }
  EXPECT_EQ(changed_outside, 0);
}

TEST(SlidingWindow, ProfitableElementsMatchFullFrameSolve) {
  // An interior tile with halo == iterations reproduces the full-frame
  // result on its profitable core — the sliding-window guarantee at the
  // hardware level.
  const ArchConfig cfg = small_config();
  SlidingWindowEngine engine(cfg);
  const FrameState src = make_frame(64, 64, 3);
  FrameState dst = src;

  const int K = 3;
  TileSpec tile;
  tile.buf_row0 = 8;
  tile.buf_col0 = 16;
  tile.buf_rows = 30;
  tile.buf_cols = 24;
  tile.prof_row0 = 8 + K;
  tile.prof_col0 = 16 + K;
  tile.prof_rows = 30 - 2 * K;
  tile.prof_cols = 24 - 2 * K;
  engine.process_tile(src, dst, tile, default_fp(), K);

  FixedState ref = src.u1;
  Matrix<std::int32_t> scratch;
  fixed_iterate_region(ref, RegionGeometry::full_frame(64, 64), default_fp(),
                       K, scratch);
  for (int r = tile.prof_row0; r < tile.prof_row0 + tile.prof_rows; ++r)
    for (int c = tile.prof_col0; c < tile.prof_col0 + tile.prof_cols; ++c) {
      ASSERT_EQ(dst.u1.px(r, c), ref.px(r, c)) << r << "," << c;
      ASSERT_EQ(dst.u1.py(r, c), ref.py(r, c)) << r << "," << c;
    }
}

TEST(SlidingWindow, CycleCostChargedOncePerComponentPair) {
  ArchConfig cfg = small_config();
  cfg.model_tile_io = false;
  SlidingWindowEngine engine(cfg);
  const FrameState src = make_frame(21, 24, 4);
  FrameState dst = src;
  TileSpec tile;
  tile.buf_rows = tile.prof_rows = 21;
  tile.buf_cols = tile.prof_cols = 24;
  engine.process_tile(src, dst, tile, default_fp(), 2);
  // Both arrays consumed the same cycles; the engine charges them once:
  // 2 iterations * (3 regions + flush) * (24 + 1 + 18).
  EXPECT_EQ(engine.stats().cycles, 2u * 4u * 43u);
  EXPECT_EQ(engine.array_stats_u1().cycles, engine.array_stats_u2().cycles);
  EXPECT_EQ(engine.stats().tiles_processed, 1u);
}

TEST(SlidingWindow, TileIoCyclesModeled) {
  ArchConfig cfg = small_config();
  cfg.model_tile_io = true;
  SlidingWindowEngine engine(cfg);
  const FrameState src = make_frame(16, 16, 5);
  FrameState dst = src;
  TileSpec tile;
  tile.buf_rows = tile.prof_rows = 16;
  tile.buf_cols = tile.prof_cols = 16;
  engine.process_tile(src, dst, tile, default_fp(), 1);
  // load = ceil(256/8) = 32, store = 32.
  EXPECT_EQ(engine.stats().load_store_cycles, 64u);
}

TEST(SlidingWindow, RejectsOversizedTiles) {
  const ArchConfig cfg = small_config();
  SlidingWindowEngine engine(cfg);
  const FrameState src = make_frame(64, 64, 6);
  FrameState dst = src;
  TileSpec tile;
  tile.buf_rows = 41;  // exceeds the 40-row window buffer
  tile.buf_cols = 40;
  EXPECT_THROW(engine.process_tile(src, dst, tile, default_fp(), 1),
               std::invalid_argument);
}

TEST(SlidingWindow, ResetStatsClearsEverything) {
  const ArchConfig cfg = small_config();
  SlidingWindowEngine engine(cfg);
  const FrameState src = make_frame(16, 16, 7);
  FrameState dst = src;
  TileSpec tile;
  tile.buf_rows = tile.prof_rows = 16;
  tile.buf_cols = tile.prof_cols = 16;
  engine.process_tile(src, dst, tile, default_fp(), 1);
  engine.reset_stats();
  EXPECT_EQ(engine.stats().cycles, 0u);
  EXPECT_EQ(engine.array_stats_u1().cycles, 0u);
}

}  // namespace
}  // namespace chambolle::hw
