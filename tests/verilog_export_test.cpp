#include "hw/verilog_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "chambolle/fixed_solver.hpp"
#include "common/rng.hpp"
#include "fixedpoint/lut_sqrt.hpp"

namespace chambolle::hw {
namespace {

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(VerilogExport, SqrtRomEmbedsTheExactTable) {
  const std::string rom = emit_sqrt_rom();
  // Every one of the 256 entries appears with its exact value.
  const auto& table = fx::sqrt_table();
  for (int m : {0, 1, 4, 100, 255}) {
    std::ostringstream expect;
    expect << "8'd" << m << ": root = 8'd"
           << static_cast<int>(table[static_cast<std::size_t>(m)]) << ";";
    EXPECT_NE(rom.find(expect.str()), std::string::npos) << expect.str();
  }
  // 256 entries plus the default arm.
  EXPECT_EQ(count_occurrences(rom, ": root = 8'd"), 257);
}

TEST(VerilogExport, SqrtUnitImplementsTheWindowRule) {
  const std::string unit = emit_sqrt_unit();
  EXPECT_NE(unit.find("module sqrt_unit"), std::string::npos);
  EXPECT_NE(unit.find("lo_raw[0] ? (lo_raw + 6'd1)"), std::string::npos);
  EXPECT_NE(unit.find("sqrt_rom rom"), std::string::npos);
}

TEST(VerilogExport, PeTEmbedsTheQuantizedConstants) {
  VerilogParams p;
  p.inv_theta_q = 1024;
  p.theta_q = 64;
  const std::string pe = emit_pe_t(p);
  EXPECT_NE(pe.find("32'sd1024"), std::string::npos);
  EXPECT_NE(pe.find("32'sd64"), std::string::npos);
  EXPECT_NE(pe.find("13'sd4095"), std::string::npos);   // Q5.8 saturation
  EXPECT_NE(pe.find("-13'sd4096"), std::string::npos);
}

TEST(VerilogExport, PeVSaturatesToNineBits) {
  const std::string pe = emit_pe_v(VerilogParams{});
  EXPECT_NE(pe.find("9'sd255"), std::string::npos);
  EXPECT_NE(pe.find("-9'sd256"), std::string::npos);
  EXPECT_NE(pe.find("sqrt_unit su"), std::string::npos);
}

TEST(VerilogExport, PackedWordLayoutMatchesSectionVB) {
  const std::string pw = emit_packed_word();
  EXPECT_NE(pw.find("w[31:19]"), std::string::npos);  // v: top 13 bits
  EXPECT_NE(pw.find("w[18:10]"), std::string::npos);  // px: next 9
  EXPECT_NE(pw.find("w[9:1]"), std::string::npos);    // py: next 9
}

TEST(VerilogExport, ArrayLaneCountFollowsConfig) {
  ArchConfig cfg;
  const std::string design = emit_design(cfg);
  // One pe_t instantiation region per lane in the generate loop; the header
  // documents the configuration.
  EXPECT_NE(design.find("7 PE lanes/array"), std::string::npos);
  EXPECT_NE(design.find("tile 88x92"), std::string::npos);
  EXPECT_NE(design.find("depth 1012"), std::string::npos);
  EXPECT_NE(design.find("module pe_array"), std::string::npos);
}

TEST(VerilogExport, AllModulesPresentExactlyOnce) {
  const std::string design = emit_design(ArchConfig{});
  for (const char* mod : {"module sqrt_rom", "module sqrt_unit",
                          "module pe_t", "module pe_v", "module pe_array"})
    EXPECT_EQ(count_occurrences(design, mod), 1) << mod;
  EXPECT_EQ(count_occurrences(design, "endmodule"), 5);
}

TEST(VerilogExport, WritesToFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "chb_design.v").string();
  write_verilog(path, ArchConfig{});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("module pe_array"), std::string::npos);
  std::remove(path.c_str());
}

TEST(VerilogExport, PeTTestbenchEmbedsGoldenVectors) {
  const std::string tb = emit_pe_t_testbench(VerilogParams{}, 16, 5);
  EXPECT_NE(tb.find("module pe_t_tb"), std::string::npos);
  EXPECT_EQ(count_occurrences(tb, "check("), 16 + 1);  // calls + task decl
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  // Deterministic per seed.
  EXPECT_EQ(tb, emit_pe_t_testbench(VerilogParams{}, 16, 5));
  EXPECT_NE(tb, emit_pe_t_testbench(VerilogParams{}, 16, 6));
}

TEST(VerilogExport, PeVTestbenchEmbedsGoldenVectors) {
  const std::string tb = emit_pe_v_testbench(VerilogParams{}, 8, 3);
  EXPECT_NE(tb.find("module pe_v_tb"), std::string::npos);
  EXPECT_EQ(count_occurrences(tb, "check("), 8 + 1);
  EXPECT_THROW((void)emit_pe_v_testbench(VerilogParams{}, 0),
               std::invalid_argument);
}

TEST(VerilogExport, TestbenchExpectedValuesMatchTheGoldenModel) {
  // Re-derive one embedded vector: with a fixed seed the first stimulus is
  // deterministic, and the expected value printed must be fxdp's output.
  const std::string tb = emit_pe_v_testbench(VerilogParams{}, 1, 42);
  // The bench contains exactly one stimulus + check; recompute it here.
  Rng rng(42);
  const std::int32_t c_term = rng.uniform_int(-4000, 4000);
  const std::int32_t r_term = rng.uniform_int(-4000, 4000);
  const std::int32_t b_term = rng.uniform_int(-4000, 4000);
  const std::int32_t c_px = rng.uniform_int(-256, 255);
  const std::int32_t c_py = rng.uniform_int(-256, 255);
  const bool lc = rng.uniform_int(0, 7) == 0;
  const bool lr = rng.uniform_int(0, 7) == 0;
  const fxdp::VOut out =
      fxdp::pe_v_op(c_term, r_term, b_term, lc, lr, c_px, c_py, 64);
  std::ostringstream expect;
  expect << "check(" << out.px << ", " << out.py << ");";
  EXPECT_NE(tb.find(expect.str()), std::string::npos) << expect.str();
}

TEST(VerilogExport, RejectsInvalidConfig) {
  ArchConfig bad;
  bad.tile_rows = 90;  // not a multiple of the BRAM count
  EXPECT_THROW((void)emit_design(bad), std::invalid_argument);
}

}  // namespace
}  // namespace chambolle::hw
