#include "baseline/block_matching.hpp"

#include <gtest/gtest.h>

#include "common/flow_color.hpp"
#include "workloads/metrics.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle::baseline {
namespace {

TEST(BlockMatching, Validation) {
  BlockMatchingParams p;
  EXPECT_NO_THROW(p.validate());
  p.block_size = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.search_radius = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(BlockMatching, RejectsMismatchedFrames) {
  EXPECT_THROW(
      (void)block_matching_flow(Image(8, 8), Image(8, 9), BlockMatchingParams{}),
      std::invalid_argument);
}

TEST(BlockMatching, IdenticalFramesGiveZeroFlow) {
  const Image img = workloads::smooth_texture(32, 32, 5);
  const FlowField u = block_matching_flow(img, img, BlockMatchingParams{});
  EXPECT_FLOAT_EQ(max_flow_magnitude(u), 0.f);
}

TEST(BlockMatching, RecoversIntegerTranslationExactly) {
  const auto wl = workloads::translating_scene(64, 64, 3.f, -2.f, 91);
  const FlowField u =
      block_matching_flow(wl.frame0, wl.frame1, BlockMatchingParams{});
  // Away from the borders every block should lock onto (3, -2) exactly.
  EXPECT_LT(workloads::interior_endpoint_error(u, wl.ground_truth, 12), 0.2);
}

TEST(BlockMatching, QuantizesSubpixelMotion) {
  // The class limitation: a 0.5-pixel pan cannot be represented, so the
  // error is ~0.5 px no matter the parameters.
  const auto wl = workloads::translating_scene(64, 64, 0.5f, 0.f, 93);
  const FlowField u =
      block_matching_flow(wl.frame0, wl.frame1, BlockMatchingParams{});
  for (int r = 0; r < 64; ++r)
    for (int c = 0; c < 64; ++c) {
      const float frac = u.u1(r, c) - std::floor(u.u1(r, c));
      EXPECT_FLOAT_EQ(frac, 0.f);  // integer-valued everywhere
    }
  EXPECT_GT(workloads::interior_endpoint_error(u, wl.ground_truth, 12), 0.3);
}

TEST(BlockMatching, MotionBeyondSearchRadiusIsLost) {
  const auto wl = workloads::translating_scene(64, 64, 6.f, 0.f, 95);
  BlockMatchingParams p;
  p.search_radius = 3;  // smaller than the true motion
  const FlowField u = block_matching_flow(wl.frame0, wl.frame1, p);
  EXPECT_GT(workloads::interior_endpoint_error(u, wl.ground_truth, 12), 2.0);
}

TEST(BlockMatching, TexturelessGuardSuppressesNoiseMatches) {
  auto wl = workloads::translating_scene(48, 48, 0.f, 0.f, 97);
  // Flat frames plus faint noise: without the guard, SAD noise produces
  // random vectors; with it, the flow stays zero.
  wl.frame0 = Image(48, 48, 100.f);
  wl.frame1 = Image(48, 48, 100.f);
  workloads::corrupt(wl, 0.3f);
  BlockMatchingParams p;
  p.min_texture_sad = 1.0f;
  const FlowField u = block_matching_flow(wl.frame0, wl.frame1, p);
  EXPECT_FLOAT_EQ(max_flow_magnitude(u), 0.f);
}

TEST(BlockMatching, PartialEdgeBlocksAreHandled) {
  // 50x50 frame with 8-px blocks leaves 2-px slivers; must not crash and
  // must still fill every pixel.
  const auto wl = workloads::translating_scene(50, 50, 1.f, 1.f, 99);
  const FlowField u =
      block_matching_flow(wl.frame0, wl.frame1, BlockMatchingParams{});
  EXPECT_EQ(u.rows(), 50);
  EXPECT_EQ(u.cols(), 50);
}

}  // namespace
}  // namespace chambolle::baseline
