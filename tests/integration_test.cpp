// integration_test.cpp — cross-module end-to-end scenarios.
#include <gtest/gtest.h>

#include "chambolle/solver.hpp"
#include "chambolle/tiled_solver.hpp"
#include "common/rng.hpp"
#include "hw/accelerator.hpp"
#include "hw/resource_model.hpp"
#include "tvl1/threshold.hpp"
#include "tvl1/tvl1.hpp"
#include "tvl1/warp.hpp"
#include "workloads/metrics.hpp"
#include "workloads/rolling_shutter.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle {
namespace {

// TV-L1 flow computed through the ACCELERATOR SIMULATOR as the inner solver:
// the full paper pipeline, hardware-in-the-loop.
TEST(Integration, AcceleratorDrivenTvl1RecoversTranslation) {
  const auto wl = workloads::translating_scene(48, 48, 0.9f, -0.6f, 51);

  hw::ArchConfig cfg;
  cfg.tile_rows = 40;
  cfg.tile_cols = 40;
  cfg.merge_iterations = 4;
  hw::ChambolleAccelerator accel(cfg);

  // Hand-rolled TV-L1 outer loop (single level, small motion) with the
  // accelerator as the u-solver.
  tvl1::Tvl1Params p;
  p.pyramid_levels = 1;
  ChambolleParams cp;
  cp.iterations = 24;

  const Image i0n = [&] {
    Image im = wl.frame0;
    for (float& x : im) x /= 255.f;
    return im;
  }();
  const Image i1n = [&] {
    Image im = wl.frame1;
    for (float& x : im) x /= 255.f;
    return im;
  }();

  FlowField u(48, 48);
  std::uint64_t total_cycles = 0;
  for (int w = 0; w < 10; ++w) {
    const FlowField u0 = u;
    const tvl1::WarpResult wr = tvl1::warp_with_gradients(i1n, u0);
    const tvl1::ThresholdInputs in{i0n, wr.warped, wr.grad, u0, u,
                                   p.lambda, cp.theta};
    const FlowField v = tvl1::threshold_step(in);
    const auto result = accel.solve(v, cp);
    u = result.u;
    total_cycles += result.stats.total_cycles;
  }

  EXPECT_LT(workloads::interior_endpoint_error(u, wl.ground_truth, 5), 0.4);
  EXPECT_GT(total_cycles, 0u);
}

// End-to-end rolling-shutter correction using flow estimated by TV-L1
// (the motivating application of Section I).
TEST(Integration, RollingShutterCorrectionViaEstimatedFlow) {
  const Image scene = workloads::smooth_texture(64, 64, 53);
  const float vx = 4.f;
  // Two consecutive rolling-shutter frames of a scene translating at vx:
  // frame k captures the scene displaced by k*vx (plus the row-time skew).
  const Image frame0 = workloads::rolling_shutter_capture(scene, vx, 0.f);
  Image scene_next(64, 64);
  for (int r = 0; r < 64; ++r)
    for (int c = 0; c < 64; ++c)
      scene_next(r, c) = tvl1::sample_bilinear(
          scene, static_cast<float>(r), static_cast<float>(c) - vx);
  const Image frame1 = workloads::rolling_shutter_capture(scene_next, vx, 0.f);

  tvl1::Tvl1Params p;
  p.pyramid_levels = 3;
  p.warps = 5;
  p.chambolle.iterations = 30;
  const FlowField flow = tvl1::compute_flow(frame0, frame1, p);

  const Image corrected = workloads::rolling_shutter_correct(frame0, flow);
  double err_before = 0, err_after = 0;
  for (int r = 8; r < 56; ++r)
    for (int c = 8; c < 56; ++c) {
      err_before += std::abs(frame0(r, c) - scene(r, c));
      err_after += std::abs(corrected(r, c) - scene(r, c));
    }
  EXPECT_LT(err_after, 0.6 * err_before);
}

// All four solver backends agree on the same problem within tolerances:
// reference == tiled (exactly), fixed ~ reference, accelerator == fixed.
TEST(Integration, AllBackendsAgree) {
  Rng rng(55);
  const Matrix<float> v1 = random_image(rng, 60, 60, -2.f, 2.f);
  ChambolleParams params;
  params.iterations = 20;

  const ChambolleResult ref = solve(v1, params);

  TiledSolverOptions topt;
  topt.tile_rows = 24;
  topt.tile_cols = 24;
  topt.merge_iterations = 4;
  const ChambolleResult tiled = solve_tiled(v1, params, topt);
  EXPECT_EQ(tiled.u, ref.u);

  const ChambolleResult fixed = solve_fixed(v1, params);
  EXPECT_LT(max_abs_diff(fixed.u, ref.u), 0.1);

  hw::ArchConfig cfg;
  cfg.tile_rows = 40;
  cfg.tile_cols = 40;
  cfg.merge_iterations = 4;
  FlowField v(60, 60);
  v.u1 = v1;
  v.u2 = v1;
  const auto accel = hw::ChambolleAccelerator(cfg).solve(v, params);
  EXPECT_EQ(accel.u.u1, fixed.u);
}

// The headline comparison shape: the accelerator model is faster than every
// published GPU baseline at 512x512/200 iterations, by at least an order of
// magnitude against the slowest.
TEST(Integration, AcceleratorBeatsAllPublishedBaselines) {
  hw::ChambolleAccelerator accel{hw::ArchConfig{}};
  const double fpga_fps = accel.estimate_fps(512, 512, 200);
  EXPECT_GT(fpga_fps, 20.0);
  EXPECT_GT(fpga_fps / 1.3, 10.0);  // vs slowest published 512x512 baseline
  // Real-time at high resolution (the paper's second headline: > 30 fps at
  // 1024x768 is reported; our measured cycle model must at least sustain
  // real-time-class rates there with 50-iteration solves).
  EXPECT_GT(accel.estimate_fps(768, 1024, 50), 24.0);
}

// Resource + performance co-sanity: the configuration that fits the device
// is the same one whose cycle model beats the baselines.
TEST(Integration, ConfiguredDesignFitsAndPerforms) {
  const hw::ArchConfig cfg;
  const hw::ResourceReport area = hw::estimate_resources(cfg);
  const hw::Virtex5Spec device;
  EXPECT_LE(area.dsps, device.dsps);
  EXPECT_LE(area.brams, device.brams);
  EXPECT_GT(hw::ChambolleAccelerator(cfg).estimate_fps(512, 512, 200), 20.0);
}

}  // namespace
}  // namespace chambolle
