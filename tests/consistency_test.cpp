#include "tvl1/consistency.hpp"

#include <gtest/gtest.h>

#include "workloads/synthetic.hpp"

namespace chambolle::tvl1 {
namespace {

TEST(Consistency, PerfectlyInverseFlowsAreConsistent) {
  FlowField fwd(16, 16), bwd(16, 16);
  fwd.fill(2.f, -1.f);
  bwd.fill(-2.f, 1.f);
  const ConsistencyResult r = check_consistency(fwd, bwd);
  EXPECT_DOUBLE_EQ(r.occluded_fraction, 0.0);
  for (float m : r.mismatch) EXPECT_LT(m, 1e-5f);
}

TEST(Consistency, ContradictoryFlowsAreFlagged) {
  FlowField fwd(16, 16), bwd(16, 16);
  fwd.fill(2.f, 0.f);
  bwd.fill(2.f, 0.f);  // should be -2 to cancel
  const ConsistencyResult r = check_consistency(fwd, bwd, 0.75f);
  EXPECT_DOUBLE_EQ(r.occluded_fraction, 1.0);
  for (float m : r.mismatch) EXPECT_NEAR(m, 4.f, 1e-5f);
}

TEST(Consistency, ThresholdControlsTheMask) {
  FlowField fwd(8, 8), bwd(8, 8);
  fwd.fill(0.5f, 0.f);
  bwd.fill(0.f, 0.f);  // mismatch 0.5 everywhere
  EXPECT_DOUBLE_EQ(check_consistency(fwd, bwd, 0.75f).occluded_fraction, 0.0);
  EXPECT_DOUBLE_EQ(check_consistency(fwd, bwd, 0.25f).occluded_fraction, 1.0);
  EXPECT_THROW((void)check_consistency(fwd, bwd, 0.f), std::invalid_argument);
  EXPECT_THROW((void)check_consistency(fwd, FlowField(4, 4)),
               std::invalid_argument);
}

TEST(Consistency, SmoothSceneIsMostlyConsistent) {
  // A fully visible translating scene: forward/backward TV-L1 flows should
  // agree almost everywhere.
  const auto wl = workloads::translating_scene(48, 48, 1.5f, 0.5f, 141);
  Tvl1Params params;
  params.pyramid_levels = 3;
  params.warps = 4;
  params.chambolle.iterations = 25;
  const ConsistencyResult r =
      bidirectional_check(wl.frame0, wl.frame1, params);
  EXPECT_LT(r.occluded_fraction, 0.10);
}

TEST(Consistency, OcclusionRegionIsDetected) {
  // A moving square occludes background on its leading edge; the flagged
  // fraction must clearly exceed the fully-visible case's.
  const auto occluding = workloads::moving_square(64, 64, 20, 5, 0);
  const auto visible = workloads::translating_scene(64, 64, 1.f, 0.f, 143);
  Tvl1Params params;
  params.pyramid_levels = 3;
  params.warps = 4;
  params.chambolle.iterations = 25;
  const double occ =
      bidirectional_check(occluding.frame0, occluding.frame1, params)
          .occluded_fraction;
  const double vis =
      bidirectional_check(visible.frame0, visible.frame1, params)
          .occluded_fraction;
  EXPECT_GT(occ, vis);
}

}  // namespace
}  // namespace chambolle::tvl1
