#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "chambolle/tiled_solver.hpp"
#include "common/rng.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace chambolle::parallel {
namespace {

TEST(Barrier, RejectsNonPositiveParties) {
  EXPECT_THROW(Barrier b(0), std::invalid_argument);
  EXPECT_THROW(Barrier b(-3), std::invalid_argument);
}

TEST(Barrier, SinglePartyNeverBlocks) {
  Barrier b(1);
  for (int i = 0; i < 5; ++i) b.arrive_and_wait();
  EXPECT_EQ(b.generations(), 5u);
}

TEST(Barrier, MultiGenerationLockstep) {
  // The two-phase property under load: after crossing the barrier for
  // generation g, every thread must observe all `parties` arrivals of g —
  // a straggler of generation g must never leak into g+1.
  constexpr int kParties = 4;
  constexpr int kGenerations = 200;
  Barrier barrier(kParties);
  std::atomic<int> arrived{0};
  std::atomic<int> violations{0};

  const auto body = [&] {
    for (int g = 1; g <= kGenerations; ++g) {
      arrived.fetch_add(1, std::memory_order_relaxed);
      barrier.arrive_and_wait();
      if (arrived.load(std::memory_order_relaxed) < g * kParties)
        violations.fetch_add(1, std::memory_order_relaxed);
      barrier.arrive_and_wait();  // keep generations aligned for the check
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < kParties - 1; ++i) threads.emplace_back(body);
  body();
  for (auto& t : threads) t.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(barrier.generations(), 2u * kGenerations);
  EXPECT_EQ(arrived.load(), kParties * kGenerations);
}

TEST(Barrier, ArrivalHookCountsEveryWait) {
  std::atomic<std::uint64_t> arrivals{0};
  Barrier b(1, &arrivals);
  b.arrive_and_wait();
  b.arrive_and_wait();
  EXPECT_EQ(arrivals.load(), 2u);
}

TEST(ResolveThreads, PositiveWinsAutoFallsBack) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_GE(resolve_threads(0), 1);  // hardware concurrency, floored at 1
}

TEST(PerLane, SlotsAreCacheLinePadded) {
  PerLane<int> slots(4);
  EXPECT_EQ(slots.lanes(), 4);
  for (int i = 0; i + 1 < slots.lanes(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&slots[i]);
    const auto b = reinterpret_cast<std::uintptr_t>(&slots[i + 1]);
    EXPECT_GE(b - a, 64u) << "lanes " << i << " and " << i + 1;
  }
  slots[2] = 7;
  EXPECT_EQ(slots[2], 7);
  EXPECT_EQ(slots[0], 0);
}

TEST(ThreadPool, RunTeamCoversAllLanesOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run_team(4, [&](int lane, int lanes, Barrier&) {
    EXPECT_EQ(lanes, 4);
    hits[static_cast<std::size_t>(lane)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.tasks(), 1u);
}

TEST(ThreadPool, TeamBarrierSynchronizesPhases) {
  // The row-parallel usage pattern: resident lanes alternate phases through
  // the region barrier without the team ever dissolving.
  ThreadPool pool(3);
  std::atomic<int> phase1{0};
  std::atomic<int> violations{0};
  pool.run_team(3, [&](int, int lanes, Barrier& barrier) {
    for (int it = 0; it < 50; ++it) {
      phase1.fetch_add(1);
      barrier.arrive_and_wait();
      if (phase1.load() < (it + 1) * lanes) violations.fetch_add(1);
      barrier.arrive_and_wait();
    }
  });
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GE(pool.barrier_waits(), 300u);  // 3 lanes x 50 iterations x 2
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1237;  // not a multiple of any chunk below
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{4096}}) {
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(
        kN, 4,
        [&](std::size_t begin, std::size_t end, int lane) {
          EXPECT_LT(lane, 4);
          EXPECT_LE(end, kN);
          for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        },
        chunk);
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " chunk " << chunk;
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 2, [&](std::size_t, std::size_t, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ThreadsCreatedAtMostOnceAcrossRegions) {
  // The tentpole guarantee: workers are spawned on first demand, then reused
  // — 10 further regions create zero additional threads.
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads_created(), 0u);  // lazy until first region
  pool.run_team(4, [](int, int, Barrier&) {});
  const std::uint64_t after_first = pool.threads_created();
  EXPECT_EQ(after_first, 3u);  // caller is lane 0
  for (int i = 0; i < 10; ++i)
    pool.parallel_for(100, 4, [](std::size_t, std::size_t, int) {});
  EXPECT_EQ(pool.threads_created(), after_first);
  EXPECT_EQ(pool.resident_workers(), 3);
}

TEST(ThreadPool, NestedEntryRunsInline) {
  // A region body re-entering the pool must not deadlock; the inner region
  // degrades to a single inline lane.
  ThreadPool pool(2);
  std::atomic<int> inner_lanes{-1};
  std::atomic<int> inner_items{0};
  pool.run_team(2, [&](int lane, int, Barrier&) {
    if (lane == 0)
      pool.run_team(4, [&](int, int lanes, Barrier& inner_barrier) {
        inner_lanes.store(lanes);
        inner_barrier.arrive_and_wait();  // parties == 1: must not block
      });
    else
      pool.parallel_for(10, 4, [&](std::size_t begin, std::size_t end, int) {
        inner_items.fetch_add(static_cast<int>(end - begin));
      });
  });
  EXPECT_EQ(inner_lanes.load(), 1);
  EXPECT_EQ(inner_items.load(), 10);
}

TEST(ThreadPool, ConcurrentExternalCallersSerialize) {
  // Several threads race regions on one pool; each region must still run
  // with exclusive use of the team and complete all its work.
  ThreadPool pool(3);
  constexpr int kCallers = 4;
  constexpr std::size_t kN = 500;
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c)
    callers.emplace_back([&] {
      for (int r = 0; r < 5; ++r)
        pool.parallel_for(kN, 3, [&](std::size_t begin, std::size_t end, int) {
          total.fetch_add(end - begin, std::memory_order_relaxed);
        });
    });
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(kCallers) * 5u * kN);
  EXPECT_EQ(pool.tasks(), static_cast<std::uint64_t>(kCallers) * 5u);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_team(4,
                             [](int lane, int, Barrier&) {
                               if (lane == 3)
                                 throw std::runtime_error("lane 3 failed");
                             }),
               std::runtime_error);
  // The team quiesced and the pool is reusable.
  std::atomic<int> hits{0};
  pool.run_team(4, [&](int, int, Barrier&) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
}

TEST(ThreadPool, ResizeShrinksResidentWorkers) {
  ThreadPool pool(4);
  pool.run_team(4, [](int, int, Barrier&) {});
  EXPECT_EQ(pool.resident_workers(), 3);
  pool.resize(2);
  EXPECT_EQ(pool.threads(), 2);
  EXPECT_LE(pool.resident_workers(), 1);
  pool.run_team(2, [](int, int, Barrier&) {});  // still functional
}

TEST(ThreadPool, LanesForResolvesRequests) {
  ThreadPool pool(6);
  EXPECT_EQ(pool.lanes_for(3), 3);
  EXPECT_EQ(pool.lanes_for(0), 6);
  EXPECT_EQ(pool.lanes_for(9), 9);  // oversubscription is the caller's call
}

TEST(ThreadPool, TiledSolveCreatesThreadsAtMostOnce) {
  // The ISSUE's telemetry assertion: a 10-pass tiled solve on the default
  // pool spawns workers at most once, and repeated solves spawn none — both
  // on the pool's always-on counters and on the `pool.threads_created`
  // registry mirror.
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(true);
  telemetry::Counter& mirror =
      telemetry::registry().counter("pool.threads_created");

  Rng rng(99);
  const Matrix<float> v = random_image(rng, 64, 64, -2.f, 2.f);
  ChambolleParams params;
  params.iterations = 10;
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 28;
  opt.merge_iterations = 1;  // 10 iterations -> 10 pooled passes
  opt.num_threads = 4;

  const std::uint64_t before = default_pool().threads_created();
  TiledSolverStats stats;
  (void)solve_tiled(v, params, opt, &stats);
  EXPECT_EQ(stats.passes, 10);

  const std::uint64_t created = default_pool().threads_created();
  const std::uint64_t mirrored = mirror.value();
  EXPECT_LE(created - before, 3u);  // one spawn burst at most: 4 lanes =
                                    // caller + up to 3 new resident workers
  for (int i = 0; i < 10; ++i) (void)solve_tiled(v, params, opt);
  EXPECT_EQ(default_pool().threads_created(), created);
  EXPECT_EQ(mirror.value(), mirrored);

  telemetry::set_enabled(was_enabled);
}

}  // namespace
}  // namespace chambolle::parallel
