#include "fixedpoint/lut_sqrt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fixedpoint/qformat.hpp"

namespace chambolle::fx {
namespace {

TEST(LutSqrt, TableHas256EightBitEntries) {
  const auto& t = sqrt_table();
  ASSERT_EQ(t.size(), 256u);
  // Entries are round(sqrt(m)*16) and the last one exactly fills 8 bits.
  EXPECT_EQ(t[0], 0);
  EXPECT_EQ(t[1], 16);
  EXPECT_EQ(t[4], 32);
  EXPECT_EQ(t[255], 255);
}

TEST(LutSqrt, TableIsMonotone) {
  const auto& t = sqrt_table();
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_GE(t[i], t[i - 1]);
}

TEST(LutSqrt, WindowIdentityForSmallValues) {
  // Values below 256 use the whole value as the index (k = 0).
  for (std::uint32_t raw : {0u, 1u, 17u, 255u}) {
    const SqrtWindow w = select_sqrt_window(raw);
    EXPECT_EQ(w.m, raw);
    EXPECT_EQ(w.k, 0);
  }
}

TEST(LutSqrt, WindowAlignmentIsEven) {
  // The discarded tail must be a factor 2^(2k): raw >> (2k) recovers m.
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto raw = static_cast<std::uint32_t>(rng.next_u64() & 0x7FFFFFFF);
    const SqrtWindow w = select_sqrt_window(raw);
    EXPECT_LT(w.m, 256u);
    EXPECT_EQ(raw >> (2 * w.k), w.m);
    if (raw >= 256) {
      EXPECT_GE(w.m, 64u);  // window keeps >= 7 significant bits
    }
  }
}

TEST(LutSqrt, ExactOnEvenPowersOfTwo) {
  // raw = 2^(2k+8) represents 2^(2k); sqrt = 2^k exactly.
  for (int k = 0; k <= 10; ++k) {
    const std::int32_t raw = 1 << (2 * k + 8);
    EXPECT_EQ(lut_sqrt(raw), (1 << k) * kOne) << "k=" << k;
  }
}

TEST(LutSqrt, NegativeInputThrows) {
  EXPECT_THROW((void)lut_sqrt(-1), std::domain_error);
  EXPECT_THROW((void)exact_sqrt_q(-5), std::domain_error);
}

TEST(LutSqrt, ZeroMapsToZero) { EXPECT_EQ(lut_sqrt(0), 0); }

// The paper's precision claim: "the error of the approximated square root is
// below 1% in more than 90% of the samples we tested."  We verify it on
// log-uniform samples over the full Q24.8 positive range (small inputs carry
// an irreducible quantization error, hence "more than 90%" rather than all).
TEST(LutSqrt, PaperPrecisionClaim) {
  Rng rng(99);
  int total = 0, within_1pct = 0;
  for (int i = 0; i < 100000; ++i) {
    const double log_raw = rng.uniform(0.f, 30.f);  // 2^0 .. 2^30
    const auto raw = static_cast<std::int32_t>(std::pow(2.0, log_raw));
    if (raw <= 0) continue;
    const double approx = static_cast<double>(lut_sqrt(raw)) / kOne;
    const double exact = std::sqrt(static_cast<double>(raw) / kOne);
    if (exact <= 0) continue;
    ++total;
    if (std::abs(approx - exact) / exact < 0.01) ++within_1pct;
  }
  ASSERT_GT(total, 90000);
  EXPECT_GT(static_cast<double>(within_1pct) / total, 0.90);
}

// For well-scaled inputs (>= 1.0) the window always holds >= 7 significant
// bits, so the relative error is bounded near 1% everywhere.
TEST(LutSqrt, RelativeErrorBoundAboveOne) {
  Rng rng(123);
  for (int i = 0; i < 20000; ++i) {
    const auto raw = static_cast<std::int32_t>(
        256 + (rng.next_u64() % (0x40000000ull - 256)));
    const double approx = static_cast<double>(lut_sqrt(raw)) / kOne;
    const double exact = std::sqrt(static_cast<double>(raw) / kOne);
    EXPECT_NEAR(approx / exact, 1.0, 0.016) << "raw=" << raw;
  }
}

TEST(LutSqrt, MonotoneOnRandomPairs) {
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::int32_t>(rng.next_u64() & 0x3FFFFFFF);
    const auto b = static_cast<std::int32_t>(rng.next_u64() & 0x3FFFFFFF);
    const std::int32_t lo = std::min(a, b), hi = std::max(a, b);
    // The LUT sqrt is monotone up to one table quantum; allow that slack.
    EXPECT_LE(lut_sqrt(lo), lut_sqrt(hi) + (lut_sqrt(hi) >> 6) + 16);
  }
}

TEST(LutSqrt, ExactSqrtQReference) {
  EXPECT_EQ(exact_sqrt_q(to_fixed(4.0)), to_fixed(2.0));
  EXPECT_EQ(exact_sqrt_q(to_fixed(2.25)), to_fixed(1.5));
  EXPECT_EQ(exact_sqrt_q(0), 0);
}

}  // namespace
}  // namespace chambolle::fx
