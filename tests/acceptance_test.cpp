// acceptance_test.cpp — the executable form of EXPERIMENTS.md: every
// headline claim of the paper, asserted in one suite at reduced scale.
// If this file is green, the reproduction stands.
#include <gtest/gtest.h>

#include "baseline/published.hpp"
#include "chambolle/dependency.hpp"
#include "chambolle/solver.hpp"
#include "chambolle/tiled_solver.hpp"
#include "common/rng.hpp"
#include "fixedpoint/lut_sqrt.hpp"
#include "hw/accelerator.hpp"
#include "hw/dse.hpp"
#include "hw/resource_model.hpp"
#include "tvl1/tvl1.hpp"
#include "workloads/metrics.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle {
namespace {

// --- Table I ---------------------------------------------------------------

TEST(Acceptance, TableI_AreaUsage) {
  const hw::ResourceReport r = hw::estimate_resources(hw::ArchConfig{});
  const hw::PaperTable1 paper;
  EXPECT_EQ(r.brams, paper.brams);  // structural
  EXPECT_EQ(r.dsps, paper.dsps);    // structural
  EXPECT_NEAR(r.flipflops, paper.flipflops, 0.05 * paper.flipflops);
  EXPECT_NEAR(r.luts, paper.luts, 0.05 * paper.luts);
}

// --- Table II --------------------------------------------------------------

TEST(Acceptance, TableII_ComparisonShape) {
  hw::ChambolleAccelerator accel{hw::ArchConfig{}};
  const double flat = accel.estimate_fps(512, 512, 200);
  const double pyramid = accel.estimate_pyramid_fps(512, 512, 200);
  // Beats every published 512x512 baseline, order of magnitude vs slowest.
  const auto rows = baseline::baselines_for(512, 512, 0);
  for (const auto& b : rows) EXPECT_GT(flat, b.fps) << b.device;
  const auto range = baseline::fps_range(rows);
  EXPECT_GT(flat / range.min_fps, 10.0);
  // Pyramid-iteration reading lands in the paper's performance class.
  EXPECT_GT(pyramid, 60.0);   // paper: 99.1
  EXPECT_GT(accel.estimate_pyramid_fps(768, 1024, 200), 20.0);  // paper: 38.1
}

TEST(Acceptance, TableII_PaperSpeedupArithmetic) {
  // 99.1/1.3 = 76.2 and 99.1/6 = 16.5: the paper's own headline numbers.
  const double fpga = baseline::paper_fpga_results()[0].fps;
  EXPECT_NEAR(fpga / 1.3, 76.0, 0.5);
  EXPECT_NEAR(fpga / 6.0, 16.5, 0.2);
}

// --- Figure 1 --------------------------------------------------------------

TEST(Acceptance, Figure1_DependencyCounts) {
  EXPECT_EQ(decomposition_overhead(1, 1, 1).cone_elements, 7);
  EXPECT_EQ(decomposition_overhead(2, 2, 1).cone_elements, 14);
  EXPECT_LT(decomposition_overhead(4, 4, 1).per_element,
            decomposition_overhead(1, 16, 1).per_element);
}

// --- Section claims --------------------------------------------------------

TEST(Acceptance, SectionI_ChambolleDominatesTvl1Runtime) {
  const auto wl = workloads::translating_scene(96, 96, 1.f, 1.f, 1);
  tvl1::Tvl1Params p;
  p.pyramid_levels = 3;
  p.warps = 5;
  p.chambolle.iterations = 50;
  tvl1::Tvl1Stats stats;
  (void)tvl1::compute_flow(wl.frame0, wl.frame1, p, &stats);
  // The paper profiled ~90% on unvectorized code; the fused SIMD kernel cut
  // the inner solve ~5x while warp/threshold stages are untouched, so the
  // share is lower here.  The structural claim still holds: Chambolle is
  // the dominant phase of TV-L1 by a clear majority.
  EXPECT_GT(stats.chambolle_fraction(), 0.60);
}

TEST(Acceptance, SectionIII_TiledSolverIsExact) {
  Rng rng(2);
  const Matrix<float> v = random_image(rng, 96, 96, -2.f, 2.f);
  ChambolleParams params;
  params.iterations = 24;
  TiledSolverOptions opt;
  opt.tile_rows = 40;
  opt.tile_cols = 40;
  opt.merge_iterations = 4;
  EXPECT_EQ(solve_tiled(v, params, opt).u, solve(v, params).u);
}

TEST(Acceptance, SectionIV_AcceleratorIsBitExactAgainstItsGoldenModel) {
  Rng rng(3);
  FlowField v(64, 64);
  v.u1 = random_image(rng, 64, 64, -2.f, 2.f);
  v.u2 = random_image(rng, 64, 64, -2.f, 2.f);
  ChambolleParams params;
  params.iterations = 8;
  hw::ArchConfig cfg;
  cfg.tile_rows = 40;
  cfg.tile_cols = 40;
  const auto result = hw::ChambolleAccelerator(cfg).solve(v, params);
  EXPECT_EQ(result.u.u1, solve_fixed(v.u1, params).u);
}

TEST(Acceptance, SectionVC_SqrtPrecisionClaim) {
  Rng rng(4);
  int total = 0, within = 0;
  for (int i = 0; i < 20000; ++i) {
    const double log_raw = rng.uniform(0.f, 30.f);
    const auto raw = static_cast<std::int32_t>(std::pow(2.0, log_raw));
    if (raw <= 0) continue;
    const double approx = static_cast<double>(fx::lut_sqrt(raw)) / fx::kOne;
    const double exact = std::sqrt(static_cast<double>(raw) / fx::kOne);
    ++total;
    if (std::abs(approx - exact) / exact < 0.01) ++within;
  }
  EXPECT_GT(static_cast<double>(within) / total, 0.90);
}

TEST(Acceptance, SectionVI_DesignPointIsOptimalUnderOurModels) {
  // At the paper's own workload (512x512, 200 iterations) the exploration
  // must re-derive the published configuration.
  const hw::DseOptions options;
  const hw::DesignPoint best = hw::best_fitting(options);
  EXPECT_EQ(best.config.num_sliding_windows, 2);
  EXPECT_EQ(best.config.pe_lanes, 7);
  EXPECT_EQ(best.config.tile_cols, 92);
}

TEST(Acceptance, EndToEnd_FlowQuality) {
  const auto wl = workloads::translating_scene(64, 64, 2.f, 1.f, 5);
  tvl1::Tvl1Params p;
  p.pyramid_levels = 3;
  p.warps = 5;
  p.chambolle.iterations = 30;
  const FlowField u = tvl1::compute_flow(wl.frame0, wl.frame1, p);
  EXPECT_LT(workloads::interior_endpoint_error(u, wl.ground_truth, 6), 0.3);
}

}  // namespace
}  // namespace chambolle
