// Per-tile adaptive early stopping in the resident engine: the quality
// policy against the fixed-budget reference (the adaptive solve is
// deliberately NOT bit-exact — see resident_tiled.hpp), retirement and
// termination guarantees, and the fall-back equivalence when nothing
// retires.  Suite names match the CI TSan filter (*Resident*), so the
// retirement protocol's release/acquire ordering is sanitizer-checked.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "chambolle/energy.hpp"
#include "chambolle/resident_tiled.hpp"
#include "common/rng.hpp"

namespace chambolle {
namespace {

ChambolleParams params_with(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

Matrix<float> random_v(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  return random_image(rng, rows, cols, -3.f, 3.f);
}

void expect_memcmp_eq(const Matrix<float>& a, const Matrix<float>& b,
                      const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  EXPECT_EQ(0, std::memcmp(a.data().data(), b.data().data(),
                           a.size() * sizeof(float)))
      << what;
}

// The quality bound of the adaptive solve against the fixed-budget
// reference: a tile only retires when its per-iteration dual update is
// under tolerance, so the primal it stops refining can drift from the
// reference by at most a small multiple of the tolerance — and the ROF
// energy it reports must not regress materially.
constexpr float kTol = 1e-4f;
constexpr double kDuBound = 100.0 * kTol;
constexpr double kEnergySlack = 1e-3;

void expect_quality_bounded(const Matrix<float>& v, float theta,
                            const ChambolleResult& ref,
                            const ChambolleResult& adaptive) {
  ASSERT_TRUE(adaptive.u.same_shape(ref.u));
  double max_du = 0.0;
  for (std::size_t i = 0; i < ref.u.size(); ++i)
    max_du = std::max(max_du, static_cast<double>(std::abs(
                                  adaptive.u.data()[i] - ref.u.data()[i])));
  EXPECT_LE(max_du, kDuBound);
  const double e_ref = rof_energy(ref.u, v, theta);
  const double e_ad = rof_energy(adaptive.u, v, theta);
  EXPECT_LE(e_ad, e_ref + kEnergySlack * (std::abs(e_ref) + 1.0));
}

// Same geometry/edge-case matrix as the bit-exact resident sweep: frame
// smaller than one tile, minimum legal windows, non-divisible ratios,
// one-axis tilings, degenerate frames, several thread counts.
struct ResidentAdaptiveCase {
  int rows, cols, tile_rows, tile_cols, merge, iterations, threads;
};

class ResidentAdaptiveQuality
    : public ::testing::TestWithParam<ResidentAdaptiveCase> {};

TEST_P(ResidentAdaptiveQuality, StaysWithinQualityBoundOfFixedBudget) {
  const ResidentAdaptiveCase& tc = GetParam();
  const Matrix<float> v = random_v(tc.rows, tc.cols, 5000 + tc.rows);
  const ChambolleParams params = params_with(tc.iterations);

  const ChambolleResult ref = solve(v, params);

  TiledSolverOptions opt;
  opt.tile_rows = tc.tile_rows;
  opt.tile_cols = tc.tile_cols;
  opt.merge_iterations = tc.merge;
  opt.num_threads = tc.threads;
  ResidentAdaptiveOptions adaptive;
  adaptive.tolerance = kTol;
  adaptive.patience = 2;
  adaptive.max_passes = 0;  // = the fixed budget
  ResidentAdaptiveReport report;
  const ChambolleResult res =
      solve_resident_adaptive(v, params, opt, adaptive, &report);

  expect_quality_bounded(v, params.theta, ref, res);

  // Report consistency: the cap defaulted to the fixed budget, every tile
  // ran at least one and at most cap passes, and the totals add up.
  EXPECT_EQ(report.pass_cap, (tc.iterations + tc.merge - 1) / tc.merge);
  ASSERT_EQ(report.tile_passes.size(), report.tiles);
  ASSERT_EQ(report.tile_residuals.size(), report.tiles);
  std::size_t sum = 0;
  for (const int p : report.tile_passes) {
    EXPECT_GE(p, 1);
    EXPECT_LE(p, report.pass_cap);
    sum += static_cast<std::size_t>(p);
  }
  EXPECT_EQ(report.total_tile_passes, sum);
  EXPECT_LE(report.total_tile_passes, report.fixed_budget_passes());
  EXPECT_LE(report.tiles_converged, report.tiles);
  // Iteration accounting: passes * merge, minus the truncation of the
  // remainder burst for every tile that ran the cap's final pass.
  const int tail = tc.iterations - (report.pass_cap - 1) * tc.merge;
  std::size_t expect_iters = 0;
  for (const int p : report.tile_passes) {
    expect_iters += static_cast<std::size_t>(p) * tc.merge;
    if (p == report.pass_cap && tail < tc.merge)
      expect_iters -= static_cast<std::size_t>(tc.merge - tail);
  }
  EXPECT_EQ(report.total_iterations, expect_iters);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ResidentAdaptiveQuality,
    ::testing::Values(
        ResidentAdaptiveCase{32, 32, 88, 92, 4, 20, 1},
        ResidentAdaptiveCase{24, 24, 9, 9, 4, 12, 2},
        ResidentAdaptiveCase{20, 20, 3, 3, 1, 7, 2},
        ResidentAdaptiveCase{64, 64, 24, 28, 4, 16, 1},
        ResidentAdaptiveCase{64, 64, 24, 28, 4, 16, 4},
        ResidentAdaptiveCase{64, 64, 24, 28, 1, 7, 2},
        ResidentAdaptiveCase{50, 70, 20, 22, 8, 24, 3},
        ResidentAdaptiveCase{97, 53, 30, 26, 5, 13, 2},
        ResidentAdaptiveCase{90, 94, 88, 92, 4, 12, 2},
        ResidentAdaptiveCase{128, 16, 40, 16, 6, 18, 2},
        ResidentAdaptiveCase{16, 128, 16, 40, 6, 18, 2},
        ResidentAdaptiveCase{1, 1, 88, 92, 2, 9, 2},
        ResidentAdaptiveCase{61, 45, 16, 16, 2, 10, 3},
        ResidentAdaptiveCase{40, 44, 40, 44, 3, 12, 2},
        ResidentAdaptiveCase{96, 96, 20, 20, 3, 9, 4}));

TEST(ResidentAdaptive, ConstantImageRetiresEveryTileWithinPatiencePasses) {
  // A constant input is already the ROF minimizer: the dual update is
  // identically zero from the first pass, so every tile's residual is under
  // any positive tolerance immediately and it retires after exactly
  // `patience` passes — the "static content costs almost nothing" claim.
  const Matrix<float> v(96, 96, 2.f);
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 24;
  opt.merge_iterations = 4;
  opt.num_threads = 4;
  ResidentAdaptiveOptions adaptive;
  adaptive.tolerance = 1e-6f;
  adaptive.patience = 2;
  adaptive.max_passes = 50;
  ResidentAdaptiveReport report;
  const ChambolleResult res =
      solve_resident_adaptive(v, params_with(200), opt, adaptive, &report);

  EXPECT_TRUE(report.all_converged());
  EXPECT_EQ(report.tiles_converged, report.tiles);
  for (const int p : report.tile_passes) EXPECT_LE(p, adaptive.patience + 1);
  for (const float r : report.tile_residuals) EXPECT_EQ(r, 0.f);
  // The minimizer of a constant field is the field itself.
  EXPECT_EQ(res.u, v);
}

TEST(ResidentAdaptive, UnreachableToleranceRunsToCapWithoutDeadlock) {
  // The deliberately non-converging configuration of the acceptance
  // criteria: a tolerance no float residual can beat.  Every tile must
  // terminate via the pass cap (no EpochGraph deadlock), and since nothing
  // retires, the adaptive schedule executes exactly the fixed budget —
  // bit-exact to the non-adaptive engine even under work stealing.
  const Matrix<float> v = random_v(64, 64, 6001);
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 28;
  opt.merge_iterations = 4;
  opt.num_threads = 4;
  ResidentAdaptiveOptions adaptive;
  adaptive.tolerance = 1e-30f;
  adaptive.patience = 1;
  adaptive.max_passes = 5;
  ResidentAdaptiveReport report;
  const ChambolleResult res = solve_resident_adaptive(
      v, params_with(20), opt, adaptive, &report);

  EXPECT_EQ(report.tiles_converged, 0u);
  EXPECT_FALSE(report.all_converged());
  for (const int p : report.tile_passes) EXPECT_EQ(p, report.pass_cap);
  EXPECT_EQ(report.total_tile_passes, report.fixed_budget_passes());
  EXPECT_EQ(report.total_iterations, report.tiles * std::size_t{20});
  for (const float r : report.tile_residuals) EXPECT_GT(r, 0.f);

  const ChambolleResult fixed = solve_resident(v, params_with(20), opt);
  expect_memcmp_eq(res.u, fixed.u, "u");
  expect_memcmp_eq(res.p.px, fixed.p.px, "px");
  expect_memcmp_eq(res.p.py, fixed.p.py, "py");
}

TEST(ResidentAdaptive, FixedBudgetSentinelIsBitExactOnNonMultipleBudget) {
  // iterations % merge != 0: the sentinel-resolved cap must reproduce
  // run()'s remainder schedule (here 4+4+4+4+1), not round the budget up to
  // a whole number of merged passes.
  const Matrix<float> v = random_v(48, 56, 6006);
  TiledSolverOptions opt;
  opt.tile_rows = 20;
  opt.tile_cols = 24;
  opt.merge_iterations = 4;
  opt.num_threads = 2;
  ResidentAdaptiveOptions adaptive;
  adaptive.tolerance = 1e-30f;  // nothing retires
  adaptive.patience = 1;
  adaptive.max_passes = 0;  // fixed-budget sentinel
  ResidentAdaptiveReport report;
  const ChambolleResult res =
      solve_resident_adaptive(v, params_with(17), opt, adaptive, &report);
  EXPECT_EQ(report.pass_cap, 5);  // ceil(17 / 4)
  // 17 iterations per tile, NOT pass_cap * merge = 20: total_iterations
  // discounts the truncated remainder burst (the tvl1 accounting input).
  EXPECT_EQ(report.total_iterations, report.tiles * std::size_t{17});
  const ChambolleResult fixed = solve_resident(v, params_with(17), opt);
  expect_memcmp_eq(res.u, fixed.u, "u");
  expect_memcmp_eq(res.p.px, fixed.p.px, "px");
  expect_memcmp_eq(res.p.py, fixed.p.py, "py");
}

TEST(ResidentAdaptive, HalfStaticWorkloadSavesPasses) {
  // The acceptance workload: >= 50% of the frame constant.  The static
  // half's tiles must retire early, so the adaptive run does measurably
  // fewer tile-passes than the fixed budget.
  Matrix<float> v = random_v(96, 96, 6002);
  for (int r = 0; r < 96; ++r)
    for (int c = 0; c < 48; ++c) v(r, c) = 0.5f;
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 24;
  opt.merge_iterations = 4;
  opt.num_threads = 4;
  ResidentAdaptiveOptions adaptive;
  adaptive.tolerance = kTol;
  adaptive.patience = 2;
  adaptive.max_passes = 0;
  ResidentAdaptiveReport report;
  const ChambolleParams params = params_with(100);
  const ChambolleResult ref = solve(v, params);
  const ChambolleResult res =
      solve_resident_adaptive(v, params, opt, adaptive, &report);

  EXPECT_GT(report.tiles_converged, 0u);
  EXPECT_LT(report.total_tile_passes, report.fixed_budget_passes());
  EXPECT_GT(report.pass_savings(), 0.0);
  expect_quality_bounded(v, params.theta, ref, res);
}

TEST(ResidentAdaptive, StateStaysCoherentForFurtherRuns) {
  // run_adaptive() leaves the resident state and mailbox parity coherent: a
  // later fixed run() on the same engine must still work and refine the
  // solution (frozen strips are valid at both parities).
  const Matrix<float> v = random_v(64, 64, 6003);
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 28;
  opt.merge_iterations = 4;
  opt.num_threads = 2;
  ResidentTiledEngine engine(v, params_with(40), opt);
  ResidentAdaptiveOptions adaptive;
  adaptive.tolerance = 1e-3f;
  adaptive.patience = 1;
  adaptive.max_passes = 5;
  (void)engine.run_adaptive(adaptive);
  const double e_mid = rof_energy(engine.result().u, v, 0.25f);
  engine.run(20);  // must not throw, deadlock, or corrupt the state
  const double e_end = rof_energy(engine.result().u, v, 0.25f);
  // Chambolle iterations are monotone in energy; further passes from any
  // valid dual state can only improve (or hold) the objective.
  EXPECT_LE(e_end, e_mid + 1e-9);
}

TEST(ResidentAdaptive, ResultIsIndependentOfThreadCount) {
  // Regression for the retirement/gather race: gather_halos picks a
  // neighbor's mailbox parity as min(g-1, frozen_pass), which is the same
  // slot under every schedule — so the adaptive result must be bit-exact
  // across lane counts even with tiles retiring at staggered passes while
  // neighbors still execute.  The old cross-parity mirror inside the
  // retiring pass could tear a concurrent gather (thread-count- and
  // timing-dependent data), which this memcmp catches deterministically
  // whenever the torn bits differ, and TSan catches always.
  Matrix<float> v = random_v(96, 96, 6007);
  for (int r = 0; r < 96; ++r)
    for (int c = 0; c < 48; ++c) v(r, c) = 0.25f;  // half retires early
  TiledSolverOptions opt;
  opt.tile_rows = 24;
  opt.tile_cols = 24;
  opt.merge_iterations = 2;
  ResidentAdaptiveOptions adaptive;
  adaptive.tolerance = 1e-3f;
  adaptive.patience = 1;  // retire at the first quiet pass: maximal stagger
  adaptive.max_passes = 0;
  const ChambolleParams params = params_with(60);

  opt.num_threads = 1;
  const ChambolleResult one_lane =
      solve_resident_adaptive(v, params, opt, adaptive);
  opt.num_threads = 4;
  ResidentAdaptiveReport report;
  const ChambolleResult four_lanes =
      solve_resident_adaptive(v, params, opt, adaptive, &report);

  EXPECT_GT(report.tiles_converged, 0u);  // the race window was exercised
  expect_memcmp_eq(four_lanes.u, one_lane.u, "u");
  expect_memcmp_eq(four_lanes.p.px, one_lane.p.px, "px");
  expect_memcmp_eq(four_lanes.p.py, one_lane.p.py, "py");
}

TEST(ResidentAdaptive, StaggeredRetirementStressStaysCoherent) {
  // TSan stress for the frozen-pass protocol: noise amplitude banded by
  // column third (zero / weak / full) makes tile residuals decay at
  // tile-dependent rates, so retirements stagger across the run while busy
  // neighbors keep gathering — many concurrent retire-while-gathering
  // windows per solve.  Also covers the post-run epilogue: a fixed run()
  // follows on the same engine and must gather the mirrored frozen strips
  // at either parity.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Matrix<float> noise = random_v(96, 96, 6100 + seed);
    Matrix<float> v(96, 96, 0.3f);
    for (int r = 0; r < 96; ++r) {
      for (int c = 32; c < 64; ++c) v(r, c) += 0.05f * noise(r, c);
      for (int c = 64; c < 96; ++c) v(r, c) += noise(r, c);
    }
    TiledSolverOptions opt;
    opt.tile_rows = 16;
    opt.tile_cols = 16;
    opt.merge_iterations = 2;
    opt.num_threads = 4;
    ResidentTiledEngine engine(v, params_with(80), opt);
    ResidentAdaptiveOptions adaptive;
    adaptive.tolerance = 1e-4f;
    adaptive.patience = 1;
    adaptive.max_passes = 40;
    const ResidentAdaptiveReport report = engine.run_adaptive(adaptive);
    EXPECT_GT(report.tiles_converged, 0u);
    EXPECT_LT(report.total_tile_passes, report.fixed_budget_passes());
    const double e_mid = rof_energy(engine.result().u, v, 0.25f);
    engine.run(10);
    const double e_end = rof_energy(engine.result().u, v, 0.25f);
    EXPECT_LE(e_end, e_mid + 1e-9);
  }
}

TEST(ResidentAdaptive, ReportsStolenPassesAccounting) {
  const Matrix<float> v = random_v(96, 96, 6004);
  TiledSolverOptions opt;
  opt.tile_rows = 20;
  opt.tile_cols = 20;
  opt.merge_iterations = 2;
  opt.num_threads = 4;
  ResidentAdaptiveOptions adaptive;
  adaptive.tolerance = 1e-30f;  // nothing retires: pure scheduling test
  adaptive.patience = 1;
  adaptive.max_passes = 6;
  ResidentAdaptiveReport report;
  ResidentTiledStats stats;
  (void)solve_resident_adaptive(v, params_with(12), opt, adaptive, &report,
                                &stats);
  EXPECT_LE(report.stolen_passes, report.total_tile_passes);
  EXPECT_EQ(stats.tiles, report.tiles);
  EXPECT_GT(stats.element_iterations, 0u);
}

TEST(ResidentAdaptive, ValidatesOptions) {
  ResidentAdaptiveOptions o;
  o.tolerance = 0.f;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.tolerance = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.patience = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.max_passes = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);

  const Matrix<float> v = random_v(16, 16, 6005);
  ResidentTiledEngine engine(v, params_with(4), TiledSolverOptions{});
  ResidentAdaptiveOptions bad;
  bad.max_passes = 0;  // the <= 0 default is resolved by the FREE function
  EXPECT_THROW((void)engine.run_adaptive(bad), std::invalid_argument);
}

}  // namespace
}  // namespace chambolle
