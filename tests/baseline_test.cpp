#include "baseline/published.hpp"

#include <gtest/gtest.h>

#include "baseline/cpu_baseline.hpp"

namespace chambolle::baseline {
namespace {

TEST(Published, TableTwoRowCount) {
  // Table II: 18 Zach et al. rows + 3 Weishaupt rows.
  EXPECT_EQ(published_baselines().size(), 21u);
  EXPECT_EQ(paper_fpga_results().size(), 2u);
}

TEST(Published, AllRowsAreWellFormed) {
  for (const PublishedResult& r : published_baselines()) {
    EXPECT_FALSE(r.device.empty());
    EXPECT_GT(r.fps, 0.0);
    EXPECT_GT(r.iterations, 0);
    EXPECT_GT(r.width, 0);
    EXPECT_GT(r.height, 0);
  }
}

TEST(Published, FilterByResolutionAndIterations) {
  const auto rows = baselines_for(512, 512, 200);
  ASSERT_EQ(rows.size(), 2u);  // 7800 GS and 7900 GTX at 200 iterations
  for (const auto& r : rows) {
    EXPECT_EQ(r.width, 512);
    EXPECT_EQ(r.iterations, 200);
  }
}

TEST(Published, FilterWithZeroIterationsMatchesAll) {
  // At 512x512 there are 6 Zach rows + 3 Weishaupt rows.
  EXPECT_EQ(baselines_for(512, 512, 0).size(), 9u);
}

TEST(Published, SpeedupHeadlineReproduced) {
  // "The estimated speedup ... ranges from 16.5x to 76x w.r.t. images with a
  // resolution of 512x512": 99.1/6 = 16.5 and 99.1/1.3 = 76.
  const double fpga_fps = paper_fpga_results()[0].fps;
  const auto rows = baselines_for(512, 512, 0);
  const FpsRange range = fps_range(rows);
  // Weishaupt's GTX285 upper bound is 6 fps (range midpoint stored as 5.5).
  const double slowest = range.min_fps;
  const double fastest = 6.0;
  EXPECT_NEAR(fpga_fps / slowest, 76.0, 0.5);
  EXPECT_NEAR(fpga_fps / fastest, 16.5, 0.2);
}

TEST(Published, FpsRangeThrowsOnEmpty) {
  EXPECT_THROW((void)fps_range({}), std::invalid_argument);
}

TEST(Published, GpuFpsDropsWithIterations) {
  for (const char* device : {"GeForce 7800 GS", "GeForce Go 7900 GTX"}) {
    for (const int size : {128, 256, 512}) {
      double prev = 1e9;
      for (const int iters : {50, 100, 200}) {
        for (const auto& r : baselines_for(size, size, iters))
          if (r.device == device) {
            EXPECT_LT(r.fps, prev) << device << " " << size << " " << iters;
            prev = r.fps;
          }
      }
    }
  }
}

TEST(CpuBaseline, MeasuresPositiveThroughput) {
  const CpuMeasurement m = measure_scalar_chambolle(64, 64, 10);
  EXPECT_GT(m.seconds_per_frame, 0.0);
  EXPECT_GT(m.fps, 0.0);
  EXPECT_NEAR(m.fps * m.seconds_per_frame, 1.0, 1e-9);
  EXPECT_EQ(m.width, 64);
  EXPECT_EQ(m.iterations, 10);
}

TEST(CpuBaseline, TiledMeasurementRuns) {
  TiledSolverOptions opt;
  opt.tile_rows = 40;
  opt.tile_cols = 40;
  opt.merge_iterations = 2;
  const CpuMeasurement m = measure_tiled_chambolle(64, 64, 8, opt);
  EXPECT_GT(m.fps, 0.0);
  EXPECT_EQ(m.label, "CPU tiled (this host)");
}

}  // namespace
}  // namespace chambolle::baseline
