#include "common/flo_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"

namespace chambolle::io {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FloIo, RoundTripPreservesEveryValue) {
  Rng rng(3);
  FlowField flow(7, 9);
  for (int r = 0; r < 7; ++r)
    for (int c = 0; c < 9; ++c) {
      flow.u1(r, c) = rng.uniform(-30.f, 30.f);
      flow.u2(r, c) = rng.uniform(-30.f, 30.f);
    }
  const std::string path = temp_path("chb_roundtrip.flo");
  write_flo(path, flow);
  const FlowField back = read_flo(path);
  ASSERT_EQ(back.rows(), 7);
  ASSERT_EQ(back.cols(), 9);
  EXPECT_EQ(back.u1, flow.u1);  // bit-exact: floats pass through unscaled
  EXPECT_EQ(back.u2, flow.u2);
  std::remove(path.c_str());
}

TEST(FloIo, HeaderLayoutIsMiddleburyCompatible) {
  FlowField flow(2, 3);
  flow.u1(0, 0) = 1.5f;
  const std::string path = temp_path("chb_header.flo");
  write_flo(path, flow);
  std::ifstream in(path, std::ios::binary);
  char magic[4];
  in.read(magic, 4);
  EXPECT_EQ(std::string(magic, 4), "PIEH");  // 202021.25f little-endian
  std::int32_t w = 0, h = 0;
  in.read(reinterpret_cast<char*>(&w), 4);
  in.read(reinterpret_cast<char*>(&h), 4);
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  float first_u = 0.f;
  in.read(reinterpret_cast<char*>(&first_u), 4);
  EXPECT_FLOAT_EQ(first_u, 1.5f);
  std::remove(path.c_str());
}

TEST(FloIo, RejectsBadMagic) {
  const std::string path = temp_path("chb_badmagic.flo");
  std::ofstream(path, std::ios::binary) << "JUNKJUNKJUNKJUNK";
  EXPECT_THROW((void)read_flo(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(FloIo, RejectsTruncatedPayload) {
  FlowField flow(4, 4);
  const std::string path = temp_path("chb_trunc.flo");
  write_flo(path, flow);
  std::filesystem::resize_file(path, 20);  // header + half a vector
  EXPECT_THROW((void)read_flo(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(FloIo, MissingFileThrows) {
  EXPECT_THROW((void)read_flo(temp_path("chb_missing.flo")),
               std::runtime_error);
}

namespace {
void write_header(std::ostream& out, std::int32_t w, std::int32_t h) {
  const float magic = kFloMagic;
  out.write(reinterpret_cast<const char*>(&magic), 4);
  out.write(reinterpret_cast<const char*>(&w), 4);
  out.write(reinterpret_cast<const char*>(&h), 4);
}
}  // namespace

// Regression: a 12-byte header claiming 65535x65535 used to drive a ~34 GB
// FlowField allocation before any payload byte was read (allocation DoS).
// The reader must now reject it from the header alone.
TEST(FloIo, HugeDimsHeaderRejectedBeforeAllocation) {
  std::stringstream buf;
  write_header(buf, kMaxFloDim, kMaxFloDim);  // passes per-dim, fails cells
  EXPECT_THROW((void)read_flo(buf), std::runtime_error);
}

TEST(FloIo, DimensionAbovePerAxisCapRejected) {
  std::stringstream buf;
  write_header(buf, kMaxFloDim + 1, 1);
  EXPECT_THROW((void)read_flo(buf), std::runtime_error);
}

TEST(FloIo, NegativeDimensionsRejected) {
  std::stringstream buf;
  write_header(buf, -3, 2);
  buf.write("\0\0\0\0", 4);
  EXPECT_THROW((void)read_flo(buf), std::runtime_error);
}

// Regression: payload length must equal w*h*8 exactly — both short payloads
// and trailing garbage are rejected on seekable streams.
TEST(FloIo, PayloadLengthMismatchRejected) {
  std::stringstream shorter;
  write_header(shorter, 2, 2);
  shorter << std::string(2 * 2 * 8 - 1, '\0');
  EXPECT_THROW((void)read_flo(shorter), std::runtime_error);

  std::stringstream longer;
  write_header(longer, 2, 2);
  longer << std::string(2 * 2 * 8 + 5, '\0');
  EXPECT_THROW((void)read_flo(longer), std::runtime_error);
}

TEST(FloIo, StreamOverloadRoundTrips) {
  FlowField flow(2, 3);
  flow.u1(1, 2) = -4.25f;
  flow.u2(0, 1) = 9.f;
  const std::string path = temp_path("chb_stream.flo");
  write_flo(path, flow);
  std::ifstream file(path, std::ios::binary);
  std::stringstream buf;
  buf << file.rdbuf();
  const FlowField back = read_flo(buf);
  EXPECT_EQ(back.u1, flow.u1);
  EXPECT_EQ(back.u2, flow.u2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace chambolle::io
