// engine_reuse_test.cpp — the engine-reuse contract the serving fleet
// (src/serving) stands on: after reset_v()/reset_duals(), a reused
// ResidentTiledEngine must be INDISTINGUISHABLE from a freshly constructed
// one, no matter what ran on it before — fixed solves, adaptive solves
// whose retired tiles left frozen-pass markers and terminal mailbox
// states, or multilevel solves.
//
// The bug class this pins down: adaptive state (frozen_pass_ markers,
// retirement redirects, mailbox parities) leaking into the next solve.
// run_adaptive()'s quiescent epilogue normally clears the markers, but an
// aborted run skips it, and before this fix neither load_duals() nor
// run() re-cleared them — a later gather could then redirect to a stale
// frozen halo slot.  No public API aborts a run mid-flight (kernel bodies
// don't throw), so these tests pin the whole reuse-equals-fresh invariant
// class; the explicit marker clears in load_duals()/run() harden the
// abort path that can't be triggered from here.
#include "chambolle/resident_tiled.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "parallel/thread_pool.hpp"

namespace chambolle {
namespace {

Matrix<float> random_v(int rows, int cols, std::uint64_t seed) {
  Rng rng(seed);
  return random_image(rng, rows, cols, -3.f, 3.f);
}

void expect_memcmp_eq(const Matrix<float>& a, const Matrix<float>& b,
                      const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  EXPECT_EQ(0, std::memcmp(a.data().data(), b.data().data(),
                           a.size() * sizeof(float)))
      << what;
}

// Full-state equality: primal recovery AND the resident duals.
void expect_same_state(const ResidentTiledEngine& got,
                       const ResidentTiledEngine& want, const char* what) {
  DualField dg, dw;
  got.snapshot(dg);
  want.snapshot(dw);
  expect_memcmp_eq(dg.px, dw.px, what);
  expect_memcmp_eq(dg.py, dw.py, what);
  expect_memcmp_eq(got.result().u, want.result().u, what);
}

ChambolleParams default_params(int iterations = 8) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

TiledSolverOptions small_tiles() {
  TiledSolverOptions o;
  o.tile_rows = 12;
  o.tile_cols = 14;
  o.merge_iterations = 3;
  o.num_threads = 3;
  return o;
}

// An adaptive run whose huge tolerance retires every tile almost
// immediately — maximal frozen-marker / terminal-mailbox contamination.
ResidentAdaptiveOptions retiring_adaptive() {
  ResidentAdaptiveOptions a;
  a.tolerance = 10.f;
  a.patience = 1;
  a.max_passes = 6;
  return a;
}

TEST(EngineReuse, FixedAfterAdaptiveMatchesFreshEngine) {
  const ChambolleParams params = default_params();
  const TiledSolverOptions opts = small_tiles();
  const Matrix<float> v1 = random_v(37, 41, 71001);
  const Matrix<float> v2 = random_v(37, 41, 71002);

  ResidentTiledEngine reused(v1, params, opts);
  const ResidentAdaptiveReport rep = reused.run_adaptive(retiring_adaptive());
  ASSERT_GT(rep.tiles_converged, 0u)
      << "precondition: the adaptive run must retire tiles (set frozen "
         "markers) for this test to cover the leak class";
  reused.reset_v(v2);
  reused.reset_duals();
  reused.run(params.iterations);

  ResidentTiledEngine fresh(v2, params, opts);
  fresh.run(params.iterations);
  expect_same_state(reused, fresh, "fixed solve after adaptive + reset");
}

TEST(EngineReuse, FixedAfterMultilevelMatchesFreshEngine) {
  const ChambolleParams params = default_params();
  const TiledSolverOptions opts = small_tiles();
  const Matrix<float> v1 = random_v(40, 36, 71011);
  const Matrix<float> v2 = random_v(40, 36, 71012);

  ResidentTiledEngine reused(v1, params, opts);
  ResidentMultilevelOptions mo;
  mo.adaptive = retiring_adaptive();
  mo.multilevel.period = 2;
  (void)reused.run_multilevel(mo);
  reused.reset_v(v2);
  reused.reset_duals();
  reused.run(params.iterations);

  ResidentTiledEngine fresh(v2, params, opts);
  fresh.run(params.iterations);
  expect_same_state(reused, fresh, "fixed solve after multilevel + reset");
}

TEST(EngineReuse, WarmReloadAfterAdaptiveMatchesFreshWithInitial) {
  const ChambolleParams params = default_params();
  const TiledSolverOptions opts = small_tiles();
  const Matrix<float> v1 = random_v(33, 45, 71021);
  const Matrix<float> v2 = random_v(33, 45, 71022);

  // A dual state to warm-start from: one fixed solve's snapshot.
  ResidentTiledEngine producer(v1, params, opts);
  producer.run(params.iterations);
  DualField warm;
  producer.snapshot(warm);

  ResidentTiledEngine reused(v1, params, opts);
  (void)reused.run_adaptive(retiring_adaptive());
  reused.reset_v(v2, &warm);  // dual reload clears the adaptive residue too
  reused.run(params.iterations);

  ResidentTiledEngine fresh(v2, params, opts, &warm);
  fresh.run(params.iterations);
  expect_same_state(reused, fresh, "warm reload after adaptive");
}

TEST(EngineReuse, AdaptiveAfterAdaptiveMatchesFreshAdaptive) {
  const ChambolleParams params = default_params();
  const TiledSolverOptions opts = small_tiles();
  const Matrix<float> v1 = random_v(44, 38, 71031);
  const Matrix<float> v2 = random_v(44, 38, 71032);
  // Second run with a tight tolerance: frozen markers from the FIRST
  // (everything-retires) run must not redirect this run's gathers.
  ResidentAdaptiveOptions tight;
  tight.tolerance = 1e-6f;
  tight.patience = 2;
  tight.max_passes = 4;

  ResidentTiledEngine reused(v1, params, opts);
  (void)reused.run_adaptive(retiring_adaptive());
  reused.reset_v(v2);
  reused.reset_duals();
  const ResidentAdaptiveReport got = reused.run_adaptive(tight);

  ResidentTiledEngine fresh(v2, params, opts);
  const ResidentAdaptiveReport want = fresh.run_adaptive(tight);

  expect_same_state(reused, fresh, "adaptive solve after adaptive + reset");
  // The schedules must match too, not just the final state.
  EXPECT_EQ(got.total_tile_passes, want.total_tile_passes);
  EXPECT_EQ(got.total_iterations, want.total_iterations);
  EXPECT_EQ(got.tiles_converged, want.tiles_converged);
  EXPECT_EQ(got.tile_passes, want.tile_passes);
}

TEST(EngineReuse, MixedSolveSequenceMatchesFreshChain) {
  const ChambolleParams params = default_params(6);
  const TiledSolverOptions opts = small_tiles();
  // Interleave every run mode with resets; after each reset the reused
  // engine must track a fresh engine bit for bit.
  ResidentTiledEngine reused(random_v(30, 30, 71041), params, opts);
  for (int round = 0; round < 3; ++round) {
    const Matrix<float> v = random_v(30, 30, 71050 + round);
    if (round % 2 == 0)
      (void)reused.run_adaptive(retiring_adaptive());
    else
      reused.run(params.iterations);
    reused.reset_v(v);
    reused.reset_duals();
    reused.run(params.iterations);

    ResidentTiledEngine fresh(v, params, opts);
    fresh.run(params.iterations);
    expect_same_state(reused, fresh, "mixed sequence round");
  }
}

// Satellite 2 (pool injection): the solve must be bit-identical on a
// caller-provided pool — any lane count — to the default-pool solve, for
// both the fixed and the adaptive schedule.  This is what lets the
// serving fleet give every engine a private pool without changing
// results.
TEST(EngineReuse, InjectedPoolMatchesDefaultPool) {
  const ChambolleParams params = default_params();
  TiledSolverOptions opts = small_tiles();
  const Matrix<float> v = random_v(39, 43, 71061);

  ResidentTiledEngine on_default(v, params, opts);
  on_default.run(params.iterations);

  for (const int lanes : {1, 2, 5}) {
    parallel::ThreadPool pool(lanes);
    TiledSolverOptions with_pool = opts;
    with_pool.pool = &pool;
    ResidentTiledEngine on_private(v, params, with_pool);
    on_private.run(params.iterations);
    expect_same_state(on_private, on_default, "injected pool, fixed run");
  }
}

TEST(EngineReuse, InjectedPoolMatchesDefaultPoolAdaptive) {
  const ChambolleParams params = default_params();
  TiledSolverOptions opts = small_tiles();
  const Matrix<float> v = random_v(42, 34, 71071);
  ResidentAdaptiveOptions ao;
  ao.tolerance = 1e-3f;
  ao.patience = 2;
  ao.max_passes = 5;

  ResidentTiledEngine on_default(v, params, opts);
  const ResidentAdaptiveReport want = on_default.run_adaptive(ao);

  parallel::ThreadPool pool(2);
  TiledSolverOptions with_pool = opts;
  with_pool.pool = &pool;
  ResidentTiledEngine on_private(v, params, with_pool);
  const ResidentAdaptiveReport got = on_private.run_adaptive(ao);

  expect_same_state(on_private, on_default, "injected pool, adaptive run");
  EXPECT_EQ(got.tile_passes, want.tile_passes);
}

}  // namespace
}  // namespace chambolle
