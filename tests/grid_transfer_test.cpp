// grid_transfer_test.cpp — pins the shared inter-grid transfer operators
// (grid/transfer.hpp): the ceil-halving geometry, the clamped odd-edge
// restriction convention, the exact invariants the multilevel corrector
// relies on (constant preservation, nearest-injection round-trip), and the
// bit-exact equivalence with the TV-L1 pyramid operators they replaced.
#include "grid/transfer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"
#include "tvl1/pyramid.hpp"

namespace chambolle::grid {
namespace {

TEST(GridTransfer, CoarseExtentCeilHalves) {
  EXPECT_EQ(coarse_extent(1), 1);
  EXPECT_EQ(coarse_extent(2), 1);
  EXPECT_EQ(coarse_extent(3), 2);
  EXPECT_EQ(coarse_extent(4), 2);
  EXPECT_EQ(coarse_extent(5), 3);
  EXPECT_EQ(coarse_extent(1080), 540);
  EXPECT_EQ(coarse_extent(2161), 1081);
}

TEST(GridTransfer, RestrictShapesFollowCoarseExtent) {
  for (const auto& [r, c] : {std::pair{10, 11}, {7, 7}, {1, 9}, {2, 2},
                            {1, 1}, {5, 64}}) {
    Rng rng(1);
    const Matrix<float> fine = random_image(rng, r, c);
    const Matrix<float> coarse = restrict_half(fine);
    EXPECT_EQ(coarse.rows(), coarse_extent(r));
    EXPECT_EQ(coarse.cols(), coarse_extent(c));
  }
}

TEST(GridTransfer, RestrictionOfConstantIsConstantBitExactly) {
  // The clamped-edge weights sum to exactly 1 and the summation order makes
  // constant preservation an IEEE identity — for awkward constants too.
  for (const float k : {7.f, 1.f / 3.f, 255.f, 0.1f, -3.25f}) {
    for (const auto& [r, c] :
         {std::pair{9, 9}, {1, 1}, {1, 2}, {2, 1}, {5, 8}, {64, 33}}) {
      const Matrix<float> fine(r, c, k);
      for (const float v : restrict_half(fine)) EXPECT_EQ(v, k);
    }
  }
}

TEST(GridTransfer, RestrictAveragesBoxesAndClampsOddEdges) {
  // 3x3: interior coarse cell averages its 2x2 block; the odd trailing
  // row/column is clamped, so the boundary cell weight doubles.
  Matrix<float> f(3, 3);
  float v = 0.f;
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) f(r, c) = v++;  // 0..8 row-major
  const Matrix<float> g = restrict_half(f);
  ASSERT_EQ(g.rows(), 2);
  ASSERT_EQ(g.cols(), 2);
  EXPECT_FLOAT_EQ(g(0, 0), (0.f + 1.f + 3.f + 4.f) / 4.f);
  EXPECT_FLOAT_EQ(g(0, 1), (2.f + 2.f + 5.f + 5.f) / 4.f);  // col clamped
  EXPECT_FLOAT_EQ(g(1, 0), (6.f + 7.f + 6.f + 7.f) / 4.f);  // row clamped
  EXPECT_FLOAT_EQ(g(1, 1), (8.f + 8.f + 8.f + 8.f) / 4.f);  // both clamped
}

TEST(GridTransfer, TinyExtentsDegenerate) {
  // 1x1 restricts to itself; a 1x2 row averages into a single cell.
  Matrix<float> one(1, 1, 5.f);
  EXPECT_EQ(restrict_half(one)(0, 0), 5.f);
  Matrix<float> row(1, 2);
  row(0, 0) = 2.f;
  row(0, 1) = 6.f;
  const Matrix<float> half = restrict_half(row);
  ASSERT_EQ(half.rows(), 1);
  ASSERT_EQ(half.cols(), 1);
  EXPECT_FLOAT_EQ(half(0, 0), 4.f);
}

TEST(GridTransfer, NearestProlongRoundTripIsIdentity) {
  // restrict_half(prolong_nearest(C)) == C bit-exactly, for every parity of
  // the fine extents — the multigrid transfer identity P then R = Id.
  for (const auto& [fr, fc] :
       {std::pair{8, 8}, {9, 9}, {9, 8}, {8, 9}, {1, 7}, {13, 26}, {5, 5}}) {
    Rng rng(static_cast<std::uint64_t>(fr * 100 + fc));
    const Matrix<float> coarse =
        random_image(rng, coarse_extent(fr), coarse_extent(fc));
    Matrix<float> fine;
    prolong_nearest_into(coarse, fr, fc, fine);
    const Matrix<float> back = restrict_half(fine);
    ASSERT_TRUE(back.same_shape(coarse));
    for (std::size_t i = 0; i < back.size(); ++i)
      EXPECT_EQ(back.data()[i], coarse.data()[i]) << "at " << i;
  }
}

TEST(GridTransfer, NearestProlongValidatesExtents) {
  const Matrix<float> coarse(4, 4, 1.f);
  Matrix<float> fine;
  prolong_nearest_into(coarse, 8, 7, fine);  // coarse_extent(7) == 4: fine
  EXPECT_THROW(prolong_nearest_into(coarse, 10, 8, fine),
               std::invalid_argument);
  EXPECT_THROW(prolong_nearest_into(coarse, 8, 5, fine),
               std::invalid_argument);
}

TEST(GridTransfer, BilinearProlongPreservesConstants) {
  const Matrix<float> coarse(4, 5, 3.5f);
  Matrix<float> fine;
  prolong_bilinear_into(coarse, 9, 9, fine);
  for (const float v : fine) EXPECT_FLOAT_EQ(v, 3.5f);
}

TEST(GridTransfer, SubIntoSupportsAliasedOutputs) {
  // The multilevel V-cycle computes deltas in place (out == a and out == b);
  // the resize path must not clobber an aliased input.
  Rng rng(3);
  const Matrix<float> a0 = random_image(rng, 6, 7);
  const Matrix<float> b0 = random_image(rng, 6, 7);
  Matrix<float> out;
  sub_into(a0, b0, out);  // fresh output
  Matrix<float> a = a0;
  sub_into(a, b0, a);  // out == a
  Matrix<float> b = b0;
  sub_into(a0, b, b);  // out == b
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(a.data()[i], out.data()[i]);
    EXPECT_EQ(b.data()[i], out.data()[i]);
    EXPECT_FLOAT_EQ(out.data()[i], a0.data()[i] - b0.data()[i]);
  }
}

TEST(GridTransfer, AddScaledAccumulates) {
  Matrix<float> dst(3, 3, 1.f);
  const Matrix<float> src(3, 3, 2.f);
  add_scaled(dst, src, 0.5f);
  for (const float v : dst) EXPECT_FLOAT_EQ(v, 2.f);
  EXPECT_THROW(add_scaled(dst, Matrix<float>(2, 3, 0.f), 1.f),
               std::invalid_argument);
}

TEST(GridTransfer, MatchesPyramidOperatorsBitExactly) {
  // The TV-L1 pyramid was rebased onto these operators; its public
  // downsample2 / upsample_to must be bit-identical to calling grid directly
  // — covering the historical-output regression in both directions.
  for (const auto& [r, c] :
       {std::pair{10, 11}, {33, 17}, {64, 64}, {5, 9}, {240, 135}}) {
    Rng rng(static_cast<std::uint64_t>(r + c));
    const Image img = random_image(rng, r, c);
    const Image down_pyr = tvl1::downsample2(img);
    const Matrix<float> down_grid = restrict_half(img);
    ASSERT_TRUE(down_pyr.same_shape(down_grid));
    for (std::size_t i = 0; i < down_grid.size(); ++i)
      EXPECT_EQ(down_pyr.data()[i], down_grid.data()[i]);

    const Image up_pyr = tvl1::upsample_to(down_pyr, r, c);
    Matrix<float> up_grid;
    prolong_bilinear_into(down_grid, r, c, up_grid);
    ASSERT_TRUE(up_pyr.same_shape(up_grid));
    for (std::size_t i = 0; i < up_grid.size(); ++i)
      EXPECT_EQ(up_pyr.data()[i], up_grid.data()[i]);
  }
}

}  // namespace
}  // namespace chambolle::grid
