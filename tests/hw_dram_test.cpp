#include "hw/dram_model.hpp"

#include <gtest/gtest.h>

#include "chambolle/tile.hpp"

namespace chambolle::hw {
namespace {

ArchConfig paper_config() { return ArchConfig{}; }

TEST(DramModel, TrafficVolumeMatchesPlanArithmetic) {
  const ArchConfig arch = paper_config();
  const DramConfig dram;
  const TrafficReport r = estimate_traffic(arch, 256, 256, 8, dram);

  const TilingPlan plan = make_tiling(256, 256, arch.tile_rows, arch.tile_cols,
                                      arch.merge_iterations);
  const int passes = 2;  // 8 iterations / merge 4
  EXPECT_EQ(r.bytes_loaded, static_cast<std::uint64_t>(passes) *
                                plan.total_buffer_elements() * 4u * 2u);
  EXPECT_EQ(r.bytes_stored, static_cast<std::uint64_t>(passes) * 256u * 256u *
                                4u * 2u);
}

TEST(DramModel, LoadsExceedStoresByTheHaloReplication) {
  const TrafficReport r =
      estimate_traffic(paper_config(), 512, 512, 200, DramConfig{});
  EXPECT_GT(r.bytes_loaded, r.bytes_stored);
}

TEST(DramModel, Ddr2BandwidthCannotHideThePerPassStreaming) {
  // The quantified version of why Table II assumes pre-loaded frames: at
  // merge depth 4 the schedule re-streams the whole dual state 50 times per
  // frame, which DDR2-class bandwidth cannot hide behind compute.
  const TrafficReport r =
      estimate_traffic(paper_config(), 512, 512, 200, DramConfig{});
  EXPECT_FALSE(r.compute_bound());
  EXPECT_NEAR(r.overlapped_fps(), 1.0 / r.transfer_seconds, 1e-9);
  // Generous modern bandwidth flips the balance back to compute-bound.
  DramConfig fast;
  fast.bytes_per_second = 25.6e9;
  EXPECT_TRUE(
      estimate_traffic(paper_config(), 512, 512, 200, fast).compute_bound());
}

TEST(DramModel, StarvedBandwidthBecomesTheBottleneck) {
  DramConfig slow;
  slow.bytes_per_second = 20e6;  // pathological 20 MB/s
  const TrafficReport r = estimate_traffic(paper_config(), 512, 512, 200, slow);
  EXPECT_FALSE(r.compute_bound());
  EXPECT_LT(r.overlapped_fps(), 5.0);
  EXPECT_LT(r.serialized_fps(), r.overlapped_fps());
}

TEST(DramModel, SmallerMergeDepthMovesMoreBytes) {
  ArchConfig k2 = paper_config();
  k2.merge_iterations = 2;
  ArchConfig k8 = paper_config();
  k8.merge_iterations = 8;
  const DramConfig dram;
  const TrafficReport r2 = estimate_traffic(k2, 512, 512, 64, dram);
  const TrafficReport r8 = estimate_traffic(k8, 512, 512, 64, dram);
  // More passes at K=2 dominate the per-pass halo savings.
  EXPECT_GT(r2.total_bytes(), r8.total_bytes());
}

TEST(DramModel, Validation) {
  DramConfig bad;
  bad.bytes_per_second = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_THROW(
      (void)estimate_traffic(paper_config(), 256, 256, 8, bad),
      std::invalid_argument);
}

}  // namespace
}  // namespace chambolle::hw
