#include "workloads/synthetic.hpp"

#include <gtest/gtest.h>

#include "tvl1/warp.hpp"
#include "workloads/metrics.hpp"

namespace chambolle::workloads {
namespace {

TEST(Synthetic, SmoothTextureIsInRangeAndNonConstant) {
  const Image img = smooth_texture(32, 32);
  float lo = 1e9f, hi = -1e9f;
  for (float v : img) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 20.f);   // has real contrast
  EXPECT_GT(lo, -200.f);
  EXPECT_LT(hi, 500.f);
}

TEST(Synthetic, SmoothTextureIsDeterministicPerSeed) {
  EXPECT_EQ(smooth_texture(16, 16, 5), smooth_texture(16, 16, 5));
  EXPECT_NE(smooth_texture(16, 16, 5), smooth_texture(16, 16, 6));
}

TEST(Synthetic, TranslationGroundTruthIsConstant) {
  const FlowWorkload wl = translating_scene(20, 20, 1.5f, -2.f);
  for (int r = 0; r < 20; ++r)
    for (int c = 0; c < 20; ++c) {
      EXPECT_FLOAT_EQ(wl.ground_truth.u1(r, c), 1.5f);
      EXPECT_FLOAT_EQ(wl.ground_truth.u2(r, c), -2.f);
    }
}

// The fundamental consistency property of every workload: warping frame1 by
// the ground-truth flow reproduces frame0 (up to interpolation error).
class WorkloadConsistency
    : public ::testing::TestWithParam<FlowWorkload (*)(int, int)> {};

FlowWorkload make_translate(int r, int c) {
  return translating_scene(r, c, 2.2f, -1.3f);
}
FlowWorkload make_rotate(int r, int c) { return rotating_scene(r, c, 0.05f); }
FlowWorkload make_zoom(int r, int c) { return zooming_scene(r, c, 1.04f); }

TEST_P(WorkloadConsistency, WarpByGroundTruthRecoversFrame0) {
  const FlowWorkload wl = GetParam()(48, 48);
  const Image rewarped = tvl1::warp(wl.frame1, wl.ground_truth);
  // Ignore a border band: clamping makes the edges unreliable.
  double max_err = 0.0;
  for (int r = 8; r < 40; ++r)
    for (int c = 8; c < 40; ++c)
      max_err = std::max(max_err, std::abs(static_cast<double>(rewarped(r, c)) -
                                           wl.frame0(r, c)));
  EXPECT_LT(max_err, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Kinds, WorkloadConsistency,
                         ::testing::Values(&make_translate, &make_rotate,
                                           &make_zoom));

TEST(Synthetic, RotationFlowIsTangential) {
  const FlowWorkload wl = rotating_scene(21, 21, 0.1f);
  // At the center the flow vanishes.
  EXPECT_NEAR(wl.ground_truth.u1(10, 10), 0.f, 1e-5);
  EXPECT_NEAR(wl.ground_truth.u2(10, 10), 0.f, 1e-5);
  // Flow magnitude grows with the radius.
  EXPECT_GT(wl.ground_truth.magnitude(10, 20), wl.ground_truth.magnitude(10, 15));
}

TEST(Synthetic, ZoomFlowPointsOutward) {
  const FlowWorkload wl = zooming_scene(21, 21, 1.1f);
  EXPECT_GT(wl.ground_truth.u1(10, 20), 0.f);  // right of center: rightward
  EXPECT_LT(wl.ground_truth.u1(10, 0), 0.f);
  EXPECT_GT(wl.ground_truth.u2(20, 10), 0.f);
  EXPECT_THROW(zooming_scene(8, 8, 0.f), std::invalid_argument);
}

TEST(Synthetic, MovingSquareMarksSquarePixels) {
  const FlowWorkload wl = moving_square(32, 32, 8, 3, 1);
  int moving = 0;
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 32; ++c)
      if (wl.ground_truth.u1(r, c) != 0.f) {
        EXPECT_FLOAT_EQ(wl.ground_truth.u1(r, c), 3.f);
        EXPECT_FLOAT_EQ(wl.ground_truth.u2(r, c), 1.f);
        ++moving;
      }
  EXPECT_EQ(moving, 64);
  EXPECT_THROW(moving_square(8, 8, 8, 1, 1), std::invalid_argument);
}

TEST(Synthetic, CorruptAddsNoise) {
  FlowWorkload wl = translating_scene(24, 24, 1.f, 0.f);
  const Image clean = wl.frame0;
  corrupt(wl, 3.f);
  EXPECT_GT(rms_diff(wl.frame0, clean), 1.5);
  EXPECT_LT(rms_diff(wl.frame0, clean), 6.0);
}

TEST(Metrics, EndpointErrorBasics) {
  FlowField a(4, 4), b(4, 4);
  a.fill(1.f, 0.f);
  b.fill(1.f, 0.f);
  EXPECT_DOUBLE_EQ(average_endpoint_error(a, b), 0.0);
  b.fill(4.f, 4.f);
  EXPECT_DOUBLE_EQ(average_endpoint_error(a, b), 5.0);
  EXPECT_THROW((void)average_endpoint_error(a, FlowField(2, 2)),
               std::invalid_argument);
}

TEST(Metrics, InteriorErrorIgnoresBorder) {
  FlowField a(10, 10), b(10, 10);
  // Large error only on the border ring.
  for (int i = 0; i < 10; ++i) {
    a.u1(0, i) = 100.f;
    a.u1(9, i) = 100.f;
    a.u1(i, 0) = 100.f;
    a.u1(i, 9) = 100.f;
  }
  EXPECT_GT(average_endpoint_error(a, b), 1.0);
  EXPECT_DOUBLE_EQ(interior_endpoint_error(a, b, 1), 0.0);
}

TEST(Metrics, AngularErrorBasics) {
  FlowField a(2, 2), b(2, 2);
  EXPECT_NEAR(average_angular_error_deg(a, b), 0.0, 1e-9);
  a.fill(1.f, 0.f);
  b.fill(0.f, 1.f);
  const double e = average_angular_error_deg(a, b);
  EXPECT_GT(e, 30.0);
  EXPECT_LT(e, 90.0);
}

TEST(Metrics, RmsDiff) {
  Image a(2, 2, 0.f), b(2, 2, 3.f);
  EXPECT_DOUBLE_EQ(rms_diff(a, b), 3.0);
  EXPECT_DOUBLE_EQ(rms_diff(a, a), 0.0);
}

}  // namespace
}  // namespace chambolle::workloads
