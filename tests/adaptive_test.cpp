#include "chambolle/adaptive.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chambolle {
namespace {

ChambolleParams default_params() { return ChambolleParams{}; }

TEST(Adaptive, OptionsValidation) {
  AdaptiveOptions o;
  o.tolerance = 0.f;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.max_iterations = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.check_every = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(Adaptive, ConstantInputConvergesImmediately) {
  const Matrix<float> v(16, 16, 2.f);
  AdaptiveOptions o;
  const AdaptiveResult r = solve_adaptive(v, default_params(), o);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations_used, o.check_every);  // first check already passes
  EXPECT_EQ(r.solution.u, v);
}

TEST(Adaptive, ConvergesOnRandomInput) {
  Rng rng(41);
  const Matrix<float> v = random_image(rng, 24, 24, -2.f, 2.f);
  AdaptiveOptions o;
  o.tolerance = 1e-4f;
  const AdaptiveResult r = solve_adaptive(v, default_params(), o);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.final_residual, o.tolerance);
  EXPECT_GT(r.iterations_used, o.check_every);
  EXPECT_LT(r.iterations_used, o.max_iterations);
}

TEST(Adaptive, SolutionMatchesFixedIterationSolve) {
  Rng rng(43);
  const Matrix<float> v = random_image(rng, 20, 20, -2.f, 2.f);
  const AdaptiveResult r =
      solve_adaptive(v, default_params(), AdaptiveOptions{});
  ChambolleParams p = default_params();
  p.iterations = r.iterations_used;
  const ChambolleResult fixed = solve(v, p);
  EXPECT_EQ(r.solution.u, fixed.u);  // same map, same iteration count
}

TEST(Adaptive, TighterToleranceCostsMoreIterations) {
  Rng rng(47);
  const Matrix<float> v = random_image(rng, 24, 24, -2.f, 2.f);
  AdaptiveOptions loose;
  loose.tolerance = 1e-2f;
  AdaptiveOptions tight;
  tight.tolerance = 1e-5f;
  const AdaptiveResult rl = solve_adaptive(v, default_params(), loose);
  const AdaptiveResult rt = solve_adaptive(v, default_params(), tight);
  EXPECT_LT(rl.iterations_used, rt.iterations_used);
}

TEST(Adaptive, CapStopsDivergentBudget) {
  Rng rng(53);
  const Matrix<float> v = random_image(rng, 24, 24, -5.f, 5.f);
  AdaptiveOptions o;
  o.tolerance = 1e-12f;  // unreachable in float
  o.max_iterations = 60;
  const AdaptiveResult r = solve_adaptive(v, default_params(), o);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations_used, 60);
}

TEST(Adaptive, ToleranceMeansTheSameAtEveryCheckEvery) {
  // Regression for the burst-dependent tolerance semantics: the residual is
  // measured over exactly ONE iteration (the burst's last), so check_every
  // only changes the stopping granularity.  check_every = 1 and 10 must
  // cross the same tolerance at the same underlying iteration, i.e. within
  // one burst of each other.
  Rng rng(61);
  const Matrix<float> v = random_image(rng, 24, 24, -2.f, 2.f);
  AdaptiveOptions fine;
  fine.tolerance = 1e-4f;
  fine.check_every = 1;
  AdaptiveOptions coarse = fine;
  coarse.check_every = 10;
  const AdaptiveResult rf = solve_adaptive(v, default_params(), fine);
  const AdaptiveResult rc = solve_adaptive(v, default_params(), coarse);
  ASSERT_TRUE(rf.converged);
  ASSERT_TRUE(rc.converged);
  // Coarse can only overshoot by rounding up to the next multiple of 10.
  EXPECT_GE(rc.iterations_used, rf.iterations_used);
  EXPECT_LT(rc.iterations_used - rf.iterations_used, coarse.check_every);
  // A burst-max residual (the old bug) would make the same tolerance
  // STRICTER at larger bursts; the single-iteration residual at the shared
  // stopping point must itself be under tolerance for both.
  EXPECT_LT(rf.final_residual, fine.tolerance);
  EXPECT_LT(rc.final_residual, coarse.tolerance);
}

TEST(Adaptive, CapExitMidBurstReportsConsistentTriple) {
  // Exit via the max_iterations cap with max_iterations NOT a multiple of
  // check_every: the final burst is truncated, and iterations_used /
  // final_residual / converged must still describe the state actually
  // reached — residual of the last iteration executed, converged iff it
  // beat the tolerance.
  Rng rng(67);
  const Matrix<float> v = random_image(rng, 24, 24, -5.f, 5.f);
  AdaptiveOptions o;
  o.tolerance = 1e-12f;  // unreachable in float
  o.check_every = 10;
  o.max_iterations = 37;  // 3 full bursts + a truncated 7-iteration one
  const AdaptiveResult r = solve_adaptive(v, default_params(), o);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations_used, 37);
  EXPECT_GT(r.final_residual, 0.f);
  EXPECT_EQ(r.converged, r.final_residual < o.tolerance);
  // The reported residual must be the SINGLE-ITERATION residual at exactly
  // iteration 37: recompute it by running 36 iterations then one more.
  ChambolleParams p = default_params();
  p.iterations = 36;
  const ChambolleResult at36 = solve(v, p);
  DualField dual = at36.p;
  Matrix<float> scratch;
  float expect = 0.f;
  iterate_region(dual.px, dual.py, v,
                 RegionGeometry::full_frame(v.rows(), v.cols()), p, 1, scratch,
                 &expect);
  EXPECT_EQ(r.final_residual, expect);
}

TEST(Adaptive, PaperIterationBudgetsAreInTheConvergentRange) {
  // The paper's 50/100/200 budgets bracket the tolerance range 1e-2..1e-4
  // on a representative field — the empirical justification of Table II's
  // iteration column.
  Rng rng(59);
  const Matrix<float> v = random_image(rng, 32, 32, -2.f, 2.f);
  AdaptiveOptions mid;
  mid.tolerance = 1e-3f;
  const AdaptiveResult r = solve_adaptive(v, default_params(), mid);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.iterations_used, 20);
  EXPECT_LE(r.iterations_used, 400);
}

}  // namespace
}  // namespace chambolle
