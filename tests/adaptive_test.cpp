#include "chambolle/adaptive.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chambolle {
namespace {

ChambolleParams default_params() { return ChambolleParams{}; }

TEST(Adaptive, OptionsValidation) {
  AdaptiveOptions o;
  o.tolerance = 0.f;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.max_iterations = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = {};
  o.check_every = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(Adaptive, ConstantInputConvergesImmediately) {
  const Matrix<float> v(16, 16, 2.f);
  AdaptiveOptions o;
  const AdaptiveResult r = solve_adaptive(v, default_params(), o);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations_used, o.check_every);  // first check already passes
  EXPECT_EQ(r.solution.u, v);
}

TEST(Adaptive, ConvergesOnRandomInput) {
  Rng rng(41);
  const Matrix<float> v = random_image(rng, 24, 24, -2.f, 2.f);
  AdaptiveOptions o;
  o.tolerance = 1e-4f;
  const AdaptiveResult r = solve_adaptive(v, default_params(), o);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.final_residual, o.tolerance);
  EXPECT_GT(r.iterations_used, o.check_every);
  EXPECT_LT(r.iterations_used, o.max_iterations);
}

TEST(Adaptive, SolutionMatchesFixedIterationSolve) {
  Rng rng(43);
  const Matrix<float> v = random_image(rng, 20, 20, -2.f, 2.f);
  const AdaptiveResult r =
      solve_adaptive(v, default_params(), AdaptiveOptions{});
  ChambolleParams p = default_params();
  p.iterations = r.iterations_used;
  const ChambolleResult fixed = solve(v, p);
  EXPECT_EQ(r.solution.u, fixed.u);  // same map, same iteration count
}

TEST(Adaptive, TighterToleranceCostsMoreIterations) {
  Rng rng(47);
  const Matrix<float> v = random_image(rng, 24, 24, -2.f, 2.f);
  AdaptiveOptions loose;
  loose.tolerance = 1e-2f;
  AdaptiveOptions tight;
  tight.tolerance = 1e-5f;
  const AdaptiveResult rl = solve_adaptive(v, default_params(), loose);
  const AdaptiveResult rt = solve_adaptive(v, default_params(), tight);
  EXPECT_LT(rl.iterations_used, rt.iterations_used);
}

TEST(Adaptive, CapStopsDivergentBudget) {
  Rng rng(53);
  const Matrix<float> v = random_image(rng, 24, 24, -5.f, 5.f);
  AdaptiveOptions o;
  o.tolerance = 1e-12f;  // unreachable in float
  o.max_iterations = 60;
  const AdaptiveResult r = solve_adaptive(v, default_params(), o);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations_used, 60);
}

TEST(Adaptive, PaperIterationBudgetsAreInTheConvergentRange) {
  // The paper's 50/100/200 budgets bracket the tolerance range 1e-2..1e-4
  // on a representative field — the empirical justification of Table II's
  // iteration column.
  Rng rng(59);
  const Matrix<float> v = random_image(rng, 32, 32, -2.f, 2.f);
  AdaptiveOptions mid;
  mid.tolerance = 1e-3f;
  const AdaptiveResult r = solve_adaptive(v, default_params(), mid);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.iterations_used, 20);
  EXPECT_LE(r.iterations_used, 400);
}

}  // namespace
}  // namespace chambolle
