#include "hw/bram.hpp"

#include "hw/device.hpp"

#include <gtest/gtest.h>

namespace chambolle::hw {
namespace {

TEST(Bram, ReadWriteAndCounters) {
  Bram b(16);
  b.write(3, 0xDEADBEEFu);
  EXPECT_EQ(b.read(3), 0xDEADBEEFu);
  EXPECT_EQ(b.reads(), 1u);
  EXPECT_EQ(b.writes(), 1u);
  b.reset_counters();
  EXPECT_EQ(b.reads(), 0u);
}

TEST(Bram, PeekPokeDoNotCount) {
  Bram b(4);
  b.poke(1, 42u);
  EXPECT_EQ(b.peek(1), 42u);
  EXPECT_EQ(b.reads(), 0u);
  EXPECT_EQ(b.writes(), 0u);
}

TEST(Bram, OutOfRangeThrows) {
  Bram b(4);
  EXPECT_THROW((void)b.read(4), std::out_of_range);
  EXPECT_THROW(b.write(-1, 0), std::out_of_range);
  EXPECT_THROW(Bram(0), std::invalid_argument);
}

TEST(BramAddressing, RowStriping) {
  // Figure 4: row r lives in BRAM r % 8.
  EXPECT_EQ(bram_index_for_row(0, 8), 0);
  EXPECT_EQ(bram_index_for_row(7, 8), 7);
  EXPECT_EQ(bram_index_for_row(8, 8), 0);
  EXPECT_EQ(bram_index_for_row(13, 8), 5);
  EXPECT_EQ(bram_index_for_row(87, 8), 7);
}

TEST(BramAddressing, InBramAddresses) {
  // Address advances by one row length (92) every 8 rows — the paper's
  // "offset of 92" applied by the vertical rotator at region changes.
  EXPECT_EQ(bram_addr_for(0, 0, 92, 8), 0);
  EXPECT_EQ(bram_addr_for(0, 91, 92, 8), 91);
  EXPECT_EQ(bram_addr_for(8, 0, 92, 8), 92);
  EXPECT_EQ(bram_addr_for(16, 5, 92, 8), 2 * 92 + 5);
  EXPECT_EQ(bram_addr_for(87, 91, 92, 8), 1011);  // last of 1012 addresses
}

TEST(BramAddressing, PaperDepthIs1012) {
  ArchConfig cfg;
  EXPECT_EQ(cfg.bram_depth(), 1012);  // Section V-B
}

TEST(BramBank, FieldsRoundTrip) {
  BramBank bank(88, 92, 8);
  const fx::BramFields f{100, -5, 77};
  bank.write_fields(13, 45, f);
  EXPECT_EQ(bank.read_fields(13, 45), f);
  EXPECT_EQ(bank.total_reads(), 1u);
  EXPECT_EQ(bank.total_writes(), 1u);
}

TEST(BramBank, LoadAndPeekAreUncounted) {
  BramBank bank(16, 16, 8);
  bank.load_fields(3, 3, {1, 2, 3});
  EXPECT_EQ(bank.peek_fields(3, 3), (fx::BramFields{1, 2, 3}));
  EXPECT_EQ(bank.total_reads(), 0u);
  EXPECT_EQ(bank.total_writes(), 0u);
}

TEST(BramBank, DistinctRowsDistinctBrams) {
  BramBank bank(88, 92, 8);
  // 8 consecutive rows (a region plus the row above) never conflict.
  EXPECT_NO_THROW(bank.check_conflict_free({6, 7, 8, 9, 10, 11, 12, 13}));
  // Rows 8 apart share a BRAM.
  EXPECT_THROW(bank.check_conflict_free({0, 8}), std::logic_error);
}

TEST(BramBank, CoordinateChecks) {
  BramBank bank(8, 8, 8);
  EXPECT_THROW((void)bank.read_fields(8, 0), std::out_of_range);
  EXPECT_THROW(bank.write_fields(0, 8, {}), std::out_of_range);
}

TEST(VerticalRotator, RotatesByMinusOnePerRegion) {
  // With 7 lanes and 8 BRAMs, advancing one region (7 rows) maps lane i from
  // BRAM (r0+i)%8 to BRAM (r0+7+i)%8 — a rotation by -1 (mod 8).
  for (int region = 0; region < 13; ++region) {
    const int r0 = region * 7;
    for (int lane = 0; lane < 7; ++lane) {
      const RotatorRoute route = rotator_route(r0, lane, 92, 8);
      EXPECT_EQ(route.bram, (r0 + lane) % 8);
      EXPECT_EQ(route.base_addr, ((r0 + lane) / 8) * 92);
    }
  }
}

TEST(VerticalRotator, RegionAdvanceAddsRowOffset) {
  // Moving from region 0 to region 1, lane 1 goes from row 1 (BRAM 1, addr 0)
  // to row 8 (BRAM 0, addr 92): the documented +92 offset.
  const RotatorRoute before = rotator_route(0, 1, 92, 8);
  const RotatorRoute after = rotator_route(7, 1, 92, 8);
  EXPECT_EQ(before.base_addr, 0);
  EXPECT_EQ(after.bram, 0);
  EXPECT_EQ(after.base_addr, 92);
}

}  // namespace
}  // namespace chambolle::hw
