#include "tvl1/threshold.hpp"

#include <gtest/gtest.h>

namespace chambolle::tvl1 {
namespace {

// A controlled 1-pixel-ish setup where every field is constant, so the three
// thresholding branches can be selected exactly.
struct ThresholdCase {
  Image i0{2, 2};
  Image i1w{2, 2};
  Gradients grad{Matrix<float>(2, 2), Matrix<float>(2, 2)};
  FlowField u0{2, 2};
  FlowField u{2, 2};
  float lambda = 2.f;
  float theta = 0.5f;

  ThresholdCase(float rho, float gx, float gy) {
    // With u == u0: rho(u) = i1w - i0 = rho.
    i0.fill(0.f);
    i1w.fill(rho);
    grad.gx.fill(gx);
    grad.gy.fill(gy);
  }

  [[nodiscard]] ThresholdInputs inputs() const {
    return {i0, i1w, grad, u0, u, lambda, theta};
  }
};

TEST(Threshold, ResidualIsLinearizedBrightnessError) {
  ThresholdCase s(3.f, 2.f, 0.f);
  s.u.u1.fill(0.5f);  // u - u0 = (0.5, 0): rho = 3 + 2*0.5 = 4
  const Matrix<float> rho = residual(s.inputs());
  for (float v : rho) EXPECT_FLOAT_EQ(v, 4.f);
}

TEST(Threshold, NegativeResidualBranch) {
  // rho < -lambda*theta*|g|^2 = -1*4 = -4  =>  v = u + lambda*theta*g.
  ThresholdCase s(-10.f, 2.f, 0.f);
  const FlowField v = threshold_step(s.inputs());
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(v.u1(r, c), 1.f * 2.f);  // lambda*theta*gx
      EXPECT_FLOAT_EQ(v.u2(r, c), 0.f);
    }
}

TEST(Threshold, PositiveResidualBranch) {
  // rho > lambda*theta*|g|^2  =>  v = u - lambda*theta*g.
  ThresholdCase s(10.f, 2.f, 1.f);
  const FlowField v = threshold_step(s.inputs());
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(v.u1(r, c), -2.f);
      EXPECT_FLOAT_EQ(v.u2(r, c), -1.f);
    }
}

TEST(Threshold, SmallResidualBranchZeroesTheResidual) {
  // |rho| <= lambda*theta*|g|^2: v = u - rho*g/|g|^2, which drives the
  // linearized residual at v exactly to zero.
  ThresholdCase s(2.f, 2.f, 0.f);  // threshold = 4, rho = 2
  const FlowField v = threshold_step(s.inputs());
  // dx = -rho*gx/|g|^2 = -2*2/4 = -1.
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) EXPECT_FLOAT_EQ(v.u1(r, c), -1.f);

  ThresholdInputs in = s.inputs();
  const ThresholdInputs at_v{in.i0, in.i1_warped, in.grad, in.u0, v,
                             in.lambda, in.theta};
  for (float rho_v : residual(at_v)) EXPECT_NEAR(rho_v, 0.f, 1e-6f);
}

TEST(Threshold, TexturelessPointsKeepU) {
  ThresholdCase s(5.f, 0.f, 0.f);  // zero gradient: no data information
  s.u.u1.fill(1.25f);
  s.u.u2.fill(-0.75f);
  const FlowField v = threshold_step(s.inputs());
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(v.u1(r, c), 1.25f);
      EXPECT_FLOAT_EQ(v.u2(r, c), -0.75f);
    }
}

TEST(Threshold, ZeroResidualKeepsU) {
  ThresholdCase s(0.f, 3.f, -1.f);
  // Keep u == u0 so the linearized residual stays exactly 0.
  s.u.u1.fill(0.4f);
  s.u0.u1.fill(0.4f);
  const FlowField v = threshold_step(s.inputs());
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) EXPECT_FLOAT_EQ(v.u1(r, c), 0.4f);
}

TEST(Threshold, StepNeverIncreasesDataEnergy) {
  // The v-step is the pointwise minimizer of lambda|rho(v)| + |v-u|^2/(2θ),
  // so its objective value at v can never exceed the value at u.
  ThresholdCase s(6.f, 1.5f, -2.f);
  s.u.u1.fill(0.3f);
  s.u.u2.fill(-0.2f);
  const ThresholdInputs in = s.inputs();
  const FlowField v = threshold_step(in);
  const ThresholdInputs at_v{in.i0, in.i1_warped, in.grad, in.u0, v,
                             in.lambda, in.theta};
  const Matrix<float> rho_u = residual(in);
  const Matrix<float> rho_v = residual(at_v);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) {
      const float du1 = v.u1(r, c) - s.u.u1(r, c);
      const float du2 = v.u2(r, c) - s.u.u2(r, c);
      const float obj_v = s.lambda * std::abs(rho_v(r, c)) +
                          (du1 * du1 + du2 * du2) / (2.f * s.theta);
      const float obj_u = s.lambda * std::abs(rho_u(r, c));
      EXPECT_LE(obj_v, obj_u + 1e-5f);
    }
}

TEST(Threshold, ValidatesInputs) {
  ThresholdCase s(1.f, 1.f, 1.f);
  ThresholdInputs bad = s.inputs();
  Image wrong(3, 3);
  const ThresholdInputs mismatched{wrong, s.i1w, s.grad, s.u0, s.u, 1.f, 1.f};
  EXPECT_THROW(threshold_step(mismatched), std::invalid_argument);
  const ThresholdInputs negative{s.i0, s.i1w, s.grad, s.u0, s.u, -1.f, 1.f};
  EXPECT_THROW(threshold_step(negative), std::invalid_argument);
  (void)bad;
}

}  // namespace
}  // namespace chambolle::tvl1
