#include "hw/resource_model.hpp"

#include <gtest/gtest.h>

namespace chambolle::hw {
namespace {

TEST(ResourceModel, BramCountIsStructurallyExact) {
  // 4 PE arrays x (8 packed-word BRAMs + 1 BRAM-Term) = 36 — Table I.
  const ResourceReport r = estimate_resources(ArchConfig{});
  EXPECT_EQ(r.brams, 36);
  EXPECT_EQ(r.brams, PaperTable1{}.brams);
}

TEST(ResourceModel, DspCountMatchesTableOne) {
  // 28 PE-Vs x 2 squaring DSPs + 6 for control/address generation = 62.
  const ResourceReport r = estimate_resources(ArchConfig{});
  EXPECT_EQ(r.dsps, 62);
  EXPECT_EQ(r.dsps, PaperTable1{}.dsps);
}

TEST(ResourceModel, FlipFlopsAndLutsWithinCalibrationTolerance) {
  const ResourceReport r = estimate_resources(ArchConfig{});
  const PaperTable1 paper;
  EXPECT_NEAR(r.flipflops, paper.flipflops, 0.05 * paper.flipflops);
  EXPECT_NEAR(r.luts, paper.luts, 0.05 * paper.luts);
}

TEST(ResourceModel, FitsTheTargetDevice) {
  const ResourceReport r = estimate_resources(ArchConfig{});
  const Virtex5Spec device;
  EXPECT_LE(r.flipflops, device.flipflops);
  EXPECT_LE(r.luts, device.luts);
  EXPECT_LE(r.brams, device.brams);
  EXPECT_LE(r.dsps, device.dsps);
  // "it occupies less than half of the slices" (Section VII).
  EXPECT_LT(r.lut_pct(device), 50.0);
  EXPECT_LT(r.flipflop_pct(device), 50.0);
}

TEST(ResourceModel, PercentagesMatchTableOne) {
  // Table I: 33% FF, 47% LUT, 28% BRAM, 96.8% DSP.
  const ResourceReport r = estimate_resources(ArchConfig{});
  const Virtex5Spec device;
  EXPECT_NEAR(r.flipflop_pct(device), 33.0, 2.5);
  EXPECT_NEAR(r.lut_pct(device), 47.0, 2.5);
  EXPECT_NEAR(r.bram_pct(device), 28.0, 0.5);
  EXPECT_NEAR(r.dsp_pct(device), 96.8, 0.3);
}

TEST(ResourceModel, ScalesWithWindowCount) {
  ArchConfig one;
  one.num_sliding_windows = 1;
  ArchConfig two;
  const ResourceReport r1 = estimate_resources(one);
  const ResourceReport r2 = estimate_resources(two);
  EXPECT_EQ(r1.brams, 18);
  EXPECT_LT(r1.dsps, r2.dsps);
  EXPECT_LT(r1.luts, r2.luts);
}

TEST(ResourceModel, ModuleTotalsAreConsistent) {
  const ResourceReport r = estimate_resources(ArchConfig{});
  int ff = 0, lut = 0, bram = 0, dsp = 0;
  for (const ModuleArea& m : r.modules) {
    ff += m.instances * m.flipflops_each;
    lut += m.instances * m.luts_each;
    bram += m.instances * m.brams_each;
    dsp += m.instances * m.dsps_each;
  }
  EXPECT_EQ(ff, r.flipflops);
  EXPECT_EQ(lut, r.luts);
  EXPECT_EQ(bram, r.brams);
  EXPECT_EQ(dsp, r.dsps);
}

}  // namespace
}  // namespace chambolle::hw
