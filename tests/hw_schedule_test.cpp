#include "hw/schedule.hpp"

#include <gtest/gtest.h>

#include <map>

namespace chambolle::hw {
namespace {

RegionSchedule paper_region(int r0 = 7, int cols = 92) {
  return schedule_region(ArchConfig{}, r0, 7, cols);
}

TEST(Schedule, LaneSkewIsOneCyclePerLane) {
  const RegionSchedule s = paper_region();
  // For every read of lane i at column c, issue cycle must be c + i.
  for (const BramAccess& a : s.accesses)
    if (!a.is_write && a.lane >= 0) {
      EXPECT_EQ(a.cycle, a.col + a.lane);
    }
}

TEST(Schedule, AbovRowReadRidesWithLaneZero) {
  const RegionSchedule s = paper_region();
  for (const BramAccess& a : s.accesses)
    if (!a.is_write && a.lane == -1) {
      EXPECT_EQ(a.cycle, a.col);
      EXPECT_EQ(a.row, 6);  // region starting at row 7: helper reads row 6
    }
}

TEST(Schedule, NoPortConflictsInThePaperConfiguration) {
  for (int region = 0; region < 13; ++region)
    EXPECT_EQ(count_port_conflicts(paper_region(region * 7)), 0)
        << "region " << region;
}

TEST(Schedule, FirstRegionHasNoAboveRowTraffic) {
  const RegionSchedule s = schedule_region(ArchConfig{}, 0, 7, 92);
  for (const BramAccess& a : s.accesses) EXPECT_GE(a.lane, 0);
}

TEST(Schedule, AccessCountsPerColumn) {
  // Interior region: 7 lane reads + 1 helper read + 6 lane writes + 1
  // deferred write per column.
  const RegionSchedule s = paper_region();
  EXPECT_EQ(s.accesses.size(), 92u * (7u + 1u + 6u + 1u));
}

TEST(Schedule, WriteTrailsReadByPipelineLatency) {
  const RegionSchedule s = paper_region();
  for (const BramAccess& a : s.accesses)
    if (a.is_write && a.lane >= 0) {
      EXPECT_EQ(a.cycle, a.col + a.lane + 15);
    }
}

TEST(Schedule, ReadsOfARowPrecedeItsWrites) {
  // Jacobi safety at the cycle level: for every (row, col) pair, the read
  // issues strictly before the write.
  const RegionSchedule s = paper_region();
  std::map<std::pair<int, int>, std::pair<int, int>> cycles;  // (read, write)
  for (const BramAccess& a : s.accesses) {
    auto& slot = cycles[{a.row, a.col}];
    if (a.is_write)
      slot.second = a.cycle;
    else
      slot.first = a.cycle;
  }
  for (const auto& [key, rw] : cycles) {
    (void)key;
    if (rw.second != 0) {
      EXPECT_LT(rw.first, rw.second);
    }
  }
}

TEST(Schedule, SpanCoversFillPlusColumns) {
  const RegionSchedule s = paper_region();
  // Last write: column 91, lane 5 -> cycle 91 + 5 + 15 = 111.
  EXPECT_EQ(s.last_cycle, 111);
}

TEST(Schedule, ConflictInjectionIsDetected) {
  RegionSchedule s = paper_region();
  // Clone an access onto the same (cycle, bram) pair.
  BramAccess dup = s.accesses.front();
  s.accesses.push_back(dup);
  EXPECT_GT(count_port_conflicts(s), 0);
}

TEST(Schedule, TimelineRendersEveryBram) {
  const std::string timeline = render_timeline(paper_region(), 20);
  EXPECT_NE(timeline.find("BRAM 0"), std::string::npos);
  EXPECT_NE(timeline.find("BRAM 7"), std::string::npos);
  EXPECT_NE(timeline.find('R'), std::string::npos);
  // Once the pipeline fills, every write lands on a cycle where the same
  // BRAM also serves a read ('B'): dual-port operation made visible.
  EXPECT_NE(timeline.find('B'), std::string::npos);
}

TEST(Schedule, RejectsBadArguments) {
  EXPECT_THROW((void)schedule_region(ArchConfig{}, -1, 7, 92),
               std::invalid_argument);
  EXPECT_THROW((void)schedule_region(ArchConfig{}, 0, 8, 92),
               std::invalid_argument);
  EXPECT_THROW((void)schedule_region(ArchConfig{}, 0, 7, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace chambolle::hw
