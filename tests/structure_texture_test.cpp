#include "tvl1/structure_texture.hpp"

#include <gtest/gtest.h>

#include "chambolle/energy.hpp"
#include "tvl1/tvl1.hpp"
#include "workloads/metrics.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle::tvl1 {
namespace {

TEST(StructureTexture, Validation) {
  StructureTextureParams p;
  EXPECT_NO_THROW(p.validate());
  p.theta = 0.f;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.iterations = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.blend = 1.5f;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(StructureTexture, DecompositionSumsToInput) {
  const Image img = workloads::smooth_texture(32, 32, 7);
  const StructureTexture st =
      decompose_structure_texture(img, StructureTextureParams{});
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 32; ++c)
      EXPECT_NEAR(st.structure(r, c) + st.texture(r, c) - 128.f, img(r, c),
                  1e-3f);
}

TEST(StructureTexture, StructureIsSmootherThanInput) {
  Rng rng(9);
  Image img = workloads::smooth_texture(40, 40, 9);
  add_gaussian_noise(rng, img, 10.f);
  const StructureTexture st =
      decompose_structure_texture(img, StructureTextureParams{});
  EXPECT_LT(total_variation(st.structure), total_variation(img));
}

TEST(StructureTexture, TextureAbsorbsAConstantOffsetIntoStructure) {
  // Adding a global illumination offset must land (almost) entirely in the
  // structure channel, leaving the texture unchanged — the property that
  // makes flow on texture illumination-robust.
  const Image img = workloads::smooth_texture(32, 32, 11);
  Image brighter = img;
  for (float& v : brighter) v += 40.f;
  const StructureTextureParams p;
  const StructureTexture a = decompose_structure_texture(img, p);
  const StructureTexture b = decompose_structure_texture(brighter, p);
  EXPECT_LT(max_abs_diff(a.texture, b.texture), 0.5);
}

TEST(StructureTexture, BlendEndpoints) {
  const Image img = workloads::smooth_texture(24, 24, 13);
  StructureTextureParams p;
  p.blend = 1.f;  // texture + structure == input (recentered)
  const Image full = texture_component(img, p);
  for (int r = 0; r < 24; ++r)
    for (int c = 0; c < 24; ++c)
      EXPECT_NEAR(full(r, c), img(r, c), 1e-3f);
}

TEST(StructureTexture, ImprovesFlowUnderIlluminationChange) {
  // A global brightness jump applied to frame1 only violates brightness
  // constancy; the decomposition routes it into the structure channel, so
  // flow on texture components must degrade less than flow on raw frames.
  auto wl = workloads::translating_scene(64, 64, 2.f, 0.f, 117);
  for (float& v : wl.frame1) v += 40.f;  // sudden global exposure change

  Tvl1Params params;
  params.pyramid_levels = 3;
  params.warps = 4;
  params.chambolle.iterations = 30;

  const double e_raw = workloads::interior_endpoint_error(
      compute_flow(wl.frame0, wl.frame1, params), wl.ground_truth, 8);

  const StructureTextureParams stp;
  const Image t0 = texture_component(wl.frame0, stp);
  const Image t1 = texture_component(wl.frame1, stp);
  const double e_texture = workloads::interior_endpoint_error(
      compute_flow(t0, t1, params), wl.ground_truth, 8);

  EXPECT_LT(e_texture, e_raw);
}

}  // namespace
}  // namespace chambolle::tvl1
