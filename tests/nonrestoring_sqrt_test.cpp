#include "fixedpoint/nonrestoring_sqrt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fixedpoint/lut_sqrt.hpp"
#include "fixedpoint/qformat.hpp"

namespace chambolle::fx {
namespace {

TEST(NonRestoringSqrt, ExactSquares) {
  for (std::uint64_t r = 0; r < 2000; ++r)
    EXPECT_EQ(isqrt_u64(r * r), r) << "r=" << r;
}

TEST(NonRestoringSqrt, FloorSemantics) {
  EXPECT_EQ(isqrt_u64(0), 0u);
  EXPECT_EQ(isqrt_u64(1), 1u);
  EXPECT_EQ(isqrt_u64(2), 1u);
  EXPECT_EQ(isqrt_u64(3), 1u);
  EXPECT_EQ(isqrt_u64(4), 2u);
  EXPECT_EQ(isqrt_u64(8), 2u);
  EXPECT_EQ(isqrt_u64(9), 3u);
  EXPECT_EQ(isqrt_u64(99), 9u);
  EXPECT_EQ(isqrt_u64(100), 10u);
}

TEST(NonRestoringSqrt, LargeValues) {
  EXPECT_EQ(isqrt_u64(0xFFFFFFFFull * 0xFFFFFFFFull), 0xFFFFFFFFu);
  const std::uint64_t big = (1ull << 62);
  EXPECT_EQ(isqrt_u64(big), 1ull << 31);
}

TEST(NonRestoringSqrt, PropertyFloorInvariant) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next_u64() >> (rng.uniform_int(0, 40));
    const std::uint64_t r = isqrt_u64(v);
    EXPECT_LE(r * r, v);
    EXPECT_GT((r + 1) * (r + 1), v);
  }
}

TEST(NonRestoringSqrt, QFormatMatchesExactWithinOneUlp) {
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    const auto raw = static_cast<std::int32_t>(rng.next_u64() & 0x3FFFFFFF);
    const std::int32_t got = nonrestoring_sqrt_q(raw);
    const std::int32_t exact = exact_sqrt_q(raw);
    EXPECT_NEAR(got, exact, 1) << "raw=" << raw;
  }
}

TEST(NonRestoringSqrt, QFormatNegativeThrows) {
  EXPECT_THROW((void)nonrestoring_sqrt_q(-1), std::domain_error);
}

TEST(NonRestoringSqrt, MorePreciseThanLut) {
  // Section V-C: "iterative techniques, which achieve better precisions".
  Rng rng(77);
  double lut_err = 0.0, iter_err = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const auto raw =
        static_cast<std::int32_t>(256 + (rng.next_u64() & 0x0FFFFFFF));
    const double exact = std::sqrt(static_cast<double>(raw) / kOne);
    lut_err += std::abs(static_cast<double>(lut_sqrt(raw)) / kOne - exact);
    iter_err +=
        std::abs(static_cast<double>(nonrestoring_sqrt_q(raw)) / kOne - exact);
  }
  EXPECT_LT(iter_err * 10, lut_err);
}

}  // namespace
}  // namespace chambolle::fx
