#include "tvl1/median_filter.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tvl1/tvl1.hpp"
#include "workloads/metrics.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle::tvl1 {
namespace {

TEST(Median3x3, ConstantIsFixedPoint) {
  const Matrix<float> in(5, 7, 3.f);
  EXPECT_EQ(median3x3(in), in);
}

TEST(Median3x3, RemovesIsolatedOutlier) {
  Matrix<float> in(5, 5, 1.f);
  in(2, 2) = 100.f;
  const Matrix<float> out = median3x3(in);
  EXPECT_FLOAT_EQ(out(2, 2), 1.f);
}

TEST(Median3x3, PreservesAStepEdge) {
  Matrix<float> in(6, 6, 0.f);
  for (int r = 0; r < 6; ++r)
    for (int c = 3; c < 6; ++c) in(r, c) = 10.f;
  const Matrix<float> out = median3x3(in);
  EXPECT_EQ(out, in);  // medians never blur a straight edge
}

TEST(Median3x3, CenterOfOrderedWindow) {
  Matrix<float> in(3, 3);
  float k = 0.f;
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) in(r, c) = k++;
  EXPECT_FLOAT_EQ(median3x3(in)(1, 1), 4.f);
}

TEST(Median3x3, BorderUsesClampedWindow) {
  Matrix<float> in(2, 2);
  in(0, 0) = 0.f;
  in(0, 1) = 1.f;
  in(1, 0) = 2.f;
  in(1, 1) = 3.f;
  // Clamped 3x3 window at (0,0) holds {0,0,1, 0,0,1, 2,2,3}; median 1.
  EXPECT_FLOAT_EQ(median3x3(in)(0, 0), 1.f);
}

TEST(Median3x3, IdempotentOnItsOwnOutput) {
  Rng rng(5);
  Matrix<float> in = random_image(rng, 12, 12, -1.f, 1.f);
  const Matrix<float> once = median3x3(in);
  const Matrix<float> twice = median3x3(once);
  // Not exactly idempotent in general, but the second pass changes little.
  EXPECT_LT(max_abs_diff(once, twice), max_abs_diff(in, once) + 1e-6);
}

TEST(MedianFlow, FiltersBothComponents) {
  FlowField f(4, 4);
  f.u1(2, 2) = 50.f;
  f.u2(1, 1) = -50.f;
  const FlowField out = median_filter_flow(f);
  EXPECT_FLOAT_EQ(out.u1(2, 2), 0.f);
  EXPECT_FLOAT_EQ(out.u2(1, 1), 0.f);
}

TEST(MedianFlow, ImprovesNoisyTvl1) {
  auto wl = workloads::translating_scene(48, 48, 1.f, 0.5f, 61);
  workloads::corrupt(wl, 6.f);

  Tvl1Params base;
  base.pyramid_levels = 3;
  base.warps = 4;
  base.chambolle.iterations = 25;
  Tvl1Params filtered = base;
  filtered.median_filtering = true;

  const double e_base = workloads::interior_endpoint_error(
      compute_flow(wl.frame0, wl.frame1, base), wl.ground_truth, 6);
  const double e_filtered = workloads::interior_endpoint_error(
      compute_flow(wl.frame0, wl.frame1, filtered), wl.ground_truth, 6);
  // The filter must not hurt, and usually helps under heavy noise.
  EXPECT_LE(e_filtered, e_base + 0.05);
}

}  // namespace
}  // namespace chambolle::tvl1
