// profiler_test.cpp — the per-lane execution profiler.
//
// The acceptance invariant: a profiled resident solve attributes >= 95% of
// every lane's session wall time across the five causes (kernel, epoch wait,
// barrier wait, mailbox, idle).  Idle is defined as the residual, so the
// partition is exact by construction; these tests pin that down, plus the
// session state machine, the manual attribution paths, and a deliberately
// imbalanced tile grid whose imbalance_ratio the report must expose.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "chambolle/resident_tiled.hpp"
#include "chambolle/solver.hpp"
#include "chambolle/tiled_solver.hpp"
#include "common/rng.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/json_util.hpp"
#include "telemetry/profiler.hpp"

namespace chambolle {
namespace {

namespace tel = telemetry;

/// False when the library was built with -DCHAMBOLLE_ENABLE_TELEMETRY=OFF;
/// record-path tests skip themselves (sessions still begin/end, but every
/// recorder folds to nothing, so reports are all-idle).
constexpr bool kTelemetryCompiledIn =
#ifdef CHAMBOLLE_TELEMETRY_DISABLED
    false;
#else
    true;
#endif

#define SKIP_IF_COMPILED_OUT()                                 \
  if (!kTelemetryCompiledIn)                                   \
  GTEST_SKIP() << "telemetry compiled out (CHAMBOLLE_ENABLE_TELEMETRY=OFF)"

/// Ends any session a failed assertion left behind so tests stay isolated.
struct SessionGuard {
  ~SessionGuard() { tel::Profiler::instance().cancel(); }
};

TEST(ProfilerSession, BeginEndStateMachine) {
  const SessionGuard guard;
  EXPECT_THROW(tel::Profiler::instance().end(), std::logic_error);
  tel::Profiler::instance().begin(2);
  EXPECT_THROW(tel::Profiler::instance().begin(2), std::logic_error);
  const tel::UtilizationReport r = tel::Profiler::instance().end();
  ASSERT_EQ(r.lanes.size(), 2u);
  EXPECT_THROW(tel::Profiler::instance().end(), std::logic_error);
  // cancel() is the test-cleanup escape hatch: active -> inactive, no report.
  tel::Profiler::instance().begin(1);
  tel::Profiler::instance().cancel();
  EXPECT_THROW(tel::Profiler::instance().end(), std::logic_error);
}

TEST(ProfilerSession, NoSessionMeansInertRecorders) {
  const SessionGuard guard;
  EXPECT_FALSE(tel::profiler_active());
  // Recording outside a session must be a safe no-op...
  const int prev = tel::profiler_set_lane(0);
  tel::profiler_add(tel::LaneCause::kKernel, 1.0);
  tel::profiler_add_tile(0, 1.0);
  { const tel::ProfScope scope(tel::LaneCause::kMailbox); }
  tel::profiler_set_lane(prev);
  // ...and must not leak into the next session.
  tel::Profiler::instance().begin(1);
  const tel::UtilizationReport r = tel::Profiler::instance().end();
  ASSERT_EQ(r.lanes.size(), 1u);
  for (int c = 0; c < tel::kLaneCauseCount; ++c)
    EXPECT_EQ(r.lanes[0].events[c], 0u);
  EXPECT_DOUBLE_EQ(
      r.lanes[0].seconds[static_cast<int>(tel::LaneCause::kKernel)], 0.0);
  EXPECT_TRUE(r.tiles.empty());
}

TEST(ProfilerSession, SetLaneNestsAndRestores) {
  EXPECT_EQ(tel::profiler_lane(), -1);  // threads start unmapped
  const int prev = tel::profiler_set_lane(3);
  EXPECT_EQ(prev, -1);
  EXPECT_EQ(tel::profiler_lane(), 3);
  const int inner = tel::profiler_set_lane(0);  // nested region remaps
  EXPECT_EQ(inner, 3);
  tel::profiler_set_lane(inner);
  EXPECT_EQ(tel::profiler_lane(), 3);
  tel::profiler_set_lane(prev);
  EXPECT_EQ(tel::profiler_lane(), -1);
}

TEST(ProfilerSession, ManualAttributionRoundTrip) {
  SKIP_IF_COMPILED_OUT();
  const SessionGuard guard;
  tel::Profiler::instance().begin(2, /*max_tiles=*/8);
  const int prev = tel::profiler_set_lane(0);
  tel::profiler_add(tel::LaneCause::kKernel, 0.010);
  tel::profiler_add(tel::LaneCause::kEpochWait, 0.002);
  tel::profiler_add(tel::LaneCause::kIdle, 0.5);  // dropped: idle is derived
  tel::profiler_add_tile(3, 0.010);
  tel::profiler_add_tile(99, 1.0);  // dropped: out of max_tiles range
  tel::profiler_set_lane(7);        // out of the 2-lane session range
  tel::profiler_add(tel::LaneCause::kKernel, 1.0);  // dropped
  tel::profiler_set_lane(prev);
  const tel::UtilizationReport r = tel::Profiler::instance().end();

  ASSERT_EQ(r.lanes.size(), 2u);
  const tel::LaneUsage& l0 = r.lanes[0];
  EXPECT_NEAR(l0.seconds[static_cast<int>(tel::LaneCause::kKernel)], 0.010,
              1e-6);
  EXPECT_NEAR(l0.seconds[static_cast<int>(tel::LaneCause::kEpochWait)], 0.002,
              1e-6);
  EXPECT_EQ(l0.events[static_cast<int>(tel::LaneCause::kKernel)], 1u);
  EXPECT_EQ(l0.events[static_cast<int>(tel::LaneCause::kEpochWait)], 1u);
  EXPECT_EQ(l0.events[static_cast<int>(tel::LaneCause::kIdle)], 0u);
  EXPECT_NEAR(l0.attributed(), 0.012, 1e-6);
  // Lane 1 saw nothing: all idle.
  EXPECT_DOUBLE_EQ(r.lanes[1].attributed(), 0.0);
  // The dropped records left no trace.
  EXPECT_EQ(r.lanes[1].events[static_cast<int>(tel::LaneCause::kKernel)], 0u);
  ASSERT_EQ(r.tiles.size(), 4u);  // trimmed to the highest touched tile
  EXPECT_EQ(r.tiles[3].passes, 1u);
  EXPECT_NEAR(r.tiles[3].seconds, 0.010, 1e-6);
}

TEST(ProfilerSession, IdleIsTheResidualAndTotalEqualsWall) {
  const SessionGuard guard;
  tel::Profiler::instance().begin(2);
  const int prev = tel::profiler_set_lane(0);
  tel::profiler_add(tel::LaneCause::kKernel, 1e-6);
  tel::profiler_set_lane(prev);
  // Let wall time dominate the attributed 1us so the idle residual is
  // genuinely positive (a session shorter than its recordings only clamps).
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const tel::UtilizationReport r = tel::Profiler::instance().end();
  ASSERT_GT(r.wall_seconds, 0.0);
  for (const tel::LaneUsage& lane : r.lanes) {
    EXPECT_GE(lane.seconds[static_cast<int>(tel::LaneCause::kIdle)], 0.0);
    // total() = attributed + idle-residual = wall, exactly (modulo the >=
    // clamp, which can only fire when attributed > wall).
    EXPECT_NEAR(lane.total(), r.wall_seconds,
                1e-9 + 1e-6 * r.wall_seconds);
  }
}

// The acceptance invariant on the real engine: every lane of a profiled
// resident solve has >= 95% of its wall time attributed (total() is the
// five-way partition, so this is really a check that attributed <= wall and
// the instrumentation double-counts nothing).
TEST(ProfilerResident, SolveAttributesLaneWallTime) {
  SKIP_IF_COMPILED_OUT();
  const SessionGuard guard;
  Rng rng(11);
  const Matrix<float> v = random_image(rng, 128, 128, -1.f, 1.f);
  ChambolleParams params;
  params.iterations = 40;
  TiledSolverOptions options;
  options.tile_rows = 32;
  options.tile_cols = 32;
  options.merge_iterations = 4;
  options.num_threads = 4;
  const int lanes = parallel::default_pool().lanes_for(options.num_threads);

  tel::Profiler::instance().begin(lanes);
  const ChambolleResult result = solve_resident(v, params, options);
  const tel::UtilizationReport report = tel::Profiler::instance().end();
  ASSERT_GT(result.u.size(), 0u);

  ASSERT_EQ(report.lanes.size(), static_cast<std::size_t>(lanes));
  ASSERT_GT(report.wall_seconds, 0.0);
  for (std::size_t i = 0; i < report.lanes.size(); ++i) {
    const tel::LaneUsage& lane = report.lanes[i];
    // >= 95% attribution, and no over-attribution beyond 5% either.
    EXPECT_GE(lane.total(), 0.95 * report.wall_seconds) << "lane " << i;
    EXPECT_LE(lane.total(), 1.05 * report.wall_seconds) << "lane " << i;
    EXPECT_GT(lane.events[static_cast<int>(tel::LaneCause::kKernel)], 0u)
        << "lane " << i;
  }
  EXPECT_GT(report.total_seconds(tel::LaneCause::kKernel), 0.0);
  EXPECT_GT(report.busy_fraction(), 0.0);
  EXPECT_LE(report.busy_fraction(), 1.0 + 1e-9);
  EXPECT_GE(report.imbalance_ratio(), 1.0 - 1e-9);

  // Per-tile pass timings: cutting 128 into 32-cell buffers overlapped by
  // the 4-cell merge halo yields 5 cuts per axis (25 tiles), each run
  // ceil(40 / 4) = 10 passes.
  ASSERT_EQ(report.tiles.size(), 25u);
  for (const tel::TileTiming& t : report.tiles) {
    EXPECT_EQ(t.passes, 10u);
    EXPECT_GT(t.seconds, 0.0);
  }

  // Export paths: valid JSON, and a table with one row per lane + summary.
  EXPECT_TRUE(tel::json_well_formed(report.to_json()));
  const std::string table = report.to_table();
  EXPECT_NE(table.find("kernel"), std::string::npos);
  EXPECT_NE(table.find("all"), std::string::npos);
}

// A deliberately imbalanced grid: 3 equal tiles over 2 lanes pins tile 0 to
// lane 0 and tiles {1, 2} to lane 1 (contiguous block ownership), so lane 1
// does ~2x the kernel work and the report's imbalance ratio must approach
// max/mean = 2 / 1.5 = 1.33.
TEST(ProfilerResident, ImbalancedTileGridIsVisible) {
  SKIP_IF_COMPILED_OUT();
  if (parallel::default_pool().lanes_for(2) < 2)
    GTEST_SKIP() << "needs a 2-lane pool";
  const SessionGuard guard;
  Rng rng(5);
  const Matrix<float> v = random_image(rng, 172, 64, -1.f, 1.f);
  ChambolleParams params;
  params.iterations = 48;
  TiledSolverOptions options;
  // 64-row buffers overlapped by the 4-row merge halo cut a 172-row frame
  // into exactly 3 tiles in one column (profitable rows 60 + 56 + 56).
  options.tile_rows = 64;
  options.tile_cols = 64;
  options.merge_iterations = 4;
  options.num_threads = 2;

  tel::Profiler::instance().begin(2);
  (void)solve_resident(v, params, options);
  const tel::UtilizationReport report = tel::Profiler::instance().end();

  ASSERT_EQ(report.tiles.size(), 3u);
  const double k0 =
      report.lanes[0].seconds[static_cast<int>(tel::LaneCause::kKernel)];
  const double k1 =
      report.lanes[1].seconds[static_cast<int>(tel::LaneCause::kKernel)];
  EXPECT_GT(k0, 0.0);
  EXPECT_GT(k1, k0);  // lane 1 owns two of the three tiles
  EXPECT_GT(report.imbalance_ratio(), 1.15);
  EXPECT_LT(report.imbalance_ratio(), 2.0 + 1e-9);
  // The starved lane's extra time shows up as stall or idle, not kernel:
  // attribution still covers its wall.
  EXPECT_GE(report.lanes[0].total(), 0.95 * report.wall_seconds);
}

TEST(ProfilerReport, JsonSchemaAndCauseNames) {
  tel::UtilizationReport r;
  r.wall_seconds = 0.010;
  r.lanes.resize(2);
  r.lanes[0].seconds[static_cast<int>(tel::LaneCause::kKernel)] = 0.008;
  r.lanes[0].events[static_cast<int>(tel::LaneCause::kKernel)] = 4;
  r.lanes[0].seconds[static_cast<int>(tel::LaneCause::kIdle)] = 0.002;
  r.lanes[1].seconds[static_cast<int>(tel::LaneCause::kIdle)] = 0.010;
  r.tiles.resize(2);
  r.tiles[1].passes = 3;
  r.tiles[1].seconds = 0.004;

  EXPECT_DOUBLE_EQ(r.busy_fraction(), 0.4);  // (0.008 + 0) / (2 * 0.010)
  EXPECT_DOUBLE_EQ(r.imbalance_ratio(), 2.0);
  EXPECT_DOUBLE_EQ(r.total_seconds(tel::LaneCause::kIdle), 0.012);

  const std::string json = r.to_json();
  ASSERT_TRUE(tel::json_well_formed(json));
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"busy_fraction\""), std::string::npos);
  EXPECT_NE(json.find("\"imbalance_ratio\""), std::string::npos);
  for (int c = 0; c < tel::kLaneCauseCount; ++c) {
    const std::string key =
        std::string("\"") +
        tel::lane_cause_name(static_cast<tel::LaneCause>(c)) + "_seconds\"";
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Tiles with zero passes are omitted; tile 1 is present.
  EXPECT_EQ(json.find("\"tile\": 0,"), std::string::npos);
  EXPECT_NE(json.find("\"tile\": 1"), std::string::npos);

  EXPECT_STREQ(tel::lane_cause_name(tel::LaneCause::kKernel), "kernel");
  EXPECT_STREQ(tel::lane_cause_name(tel::LaneCause::kEpochWait), "epoch_wait");
  EXPECT_STREQ(tel::lane_cause_name(tel::LaneCause::kBarrierWait),
               "barrier_wait");
  EXPECT_STREQ(tel::lane_cause_name(tel::LaneCause::kMailbox), "mailbox");
  EXPECT_STREQ(tel::lane_cause_name(tel::LaneCause::kIdle), "idle");
}

}  // namespace
}  // namespace chambolle
