#include "workloads/rolling_shutter.hpp"

#include <gtest/gtest.h>

#include "workloads/metrics.hpp"
#include "workloads/synthetic.hpp"

namespace chambolle::workloads {
namespace {

TEST(RollingShutter, ZeroVelocityIsIdentity) {
  const Image scene = smooth_texture(32, 32, 3);
  const Image captured = rolling_shutter_capture(scene, 0.f, 0.f);
  EXPECT_LT(rms_diff(captured, scene), 1e-4);
}

TEST(RollingShutter, TopRowIsUndistorted) {
  const Image scene = smooth_texture(32, 32, 4);
  const Image captured = rolling_shutter_capture(scene, 6.f, 0.f);
  for (int c = 0; c < 32; ++c) EXPECT_FLOAT_EQ(captured(0, c), scene(0, c));
}

TEST(RollingShutter, DistortionGrowsDownTheFrame) {
  const Image scene = smooth_texture(64, 64, 5);
  const Image captured = rolling_shutter_capture(scene, 8.f, 0.f);
  double top_err = 0, bottom_err = 0;
  for (int c = 8; c < 56; ++c) {
    top_err += std::abs(captured(8, c) - scene(8, c));
    bottom_err += std::abs(captured(56, c) - scene(56, c));
  }
  EXPECT_GT(bottom_err, 2.0 * top_err);
}

TEST(RollingShutter, CorrectionWithTrueFlowRecoversScene) {
  const Image scene = smooth_texture(48, 48, 6);
  const float vx = 6.f, vy = 0.f;
  const Image captured = rolling_shutter_capture(scene, vx, vy);
  FlowField flow(48, 48);
  flow.fill(vx, vy);  // the inter-frame flow equals the scene velocity
  const Image corrected = rolling_shutter_correct(captured, flow);

  // Interior comparison (borders suffer from clamped sampling).
  double err_before = 0, err_after = 0;
  for (int r = 6; r < 42; ++r)
    for (int c = 6; c < 42; ++c) {
      err_before += std::abs(captured(r, c) - scene(r, c));
      err_after += std::abs(corrected(r, c) - scene(r, c));
    }
  EXPECT_LT(err_after, 0.25 * err_before);
}

TEST(RollingShutter, CorrectionHandlesVerticalMotion) {
  const Image scene = smooth_texture(48, 48, 7);
  const Image captured = rolling_shutter_capture(scene, 0.f, 4.f);
  FlowField flow(48, 48);
  flow.fill(0.f, 4.f);
  const Image corrected = rolling_shutter_correct(captured, flow);
  double err_before = 0, err_after = 0;
  for (int r = 8; r < 40; ++r)
    for (int c = 8; c < 40; ++c) {
      err_before += std::abs(captured(r, c) - scene(r, c));
      err_after += std::abs(corrected(r, c) - scene(r, c));
    }
  EXPECT_LT(err_after, 0.4 * err_before);
}

TEST(RollingShutter, ShapeMismatchThrows) {
  const Image img(8, 8);
  const FlowField flow(4, 4);
  EXPECT_THROW(rolling_shutter_correct(img, flow), std::invalid_argument);
}

TEST(RollingShutter, MeanRowShiftDetectsSkew) {
  // An APERIODIC vertical-stripe pattern (periodic bars would alias the SAD
  // alignment) skewed row by row has measurable mean row shift; the
  // undistorted pattern has none.
  Rng rng(99);
  std::vector<float> column(64);
  for (float& v : column) v = rng.uniform(0.f, 255.f);
  Image bars(32, 64, 0.f);
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 64; ++c) bars(r, c) = column[static_cast<std::size_t>(c)];
  const Image skewed = rolling_shutter_capture(bars, 12.f, 0.f);
  EXPECT_DOUBLE_EQ(mean_row_shift(bars, bars), 0.0);
  EXPECT_GT(mean_row_shift(skewed, bars), 1.0);
}

}  // namespace
}  // namespace chambolle::workloads
