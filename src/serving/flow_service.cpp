#include "serving/flow_service.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <stdexcept>
#include <thread>
#include <utility>

#include "chambolle/resident_tiled.hpp"
#include "common/stopwatch.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace chambolle::serving {

// ---------------------------------------------------------------------------
// LatencyHistogram

LatencyHistogram::LatencyHistogram()
    : bounds_(telemetry::default_ms_bounds()),
      buckets_(bounds_.size() + 1) {}

void LatencyHistogram::observe(double ms) {
  if (!std::isfinite(ms)) return;  // same screening as telemetry::Histogram
  std::size_t i = 0;
  while (i < bounds_.size() && ms > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::quantile(double q) const {
  if (std::isnan(q) || q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      // Overflow bucket has no upper edge: report the last finite bound
      // (underestimate by construction, Prometheus convention).
      if (i == bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cum += in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

// ---------------------------------------------------------------------------
// Options / small types

const char* to_string(ReplyStatus s) {
  switch (s) {
    case ReplyStatus::kOk: return "ok";
    case ReplyStatus::kPrimed: return "primed";
    case ReplyStatus::kShedQueueFull: return "shed_queue_full";
    case ReplyStatus::kShedDeadline: return "shed_deadline";
    case ReplyStatus::kClosed: return "closed";
  }
  return "unknown";
}

void FlowServiceOptions::validate() const {
  params.validate();
  // Chambolle-mode requests always go through the tiled resident engine,
  // even when params.solver picks another backend for flow mode — so the
  // tiled options must be valid regardless of the solver choice (which
  // Tvl1Params::validate only enforces for kTiled/kResident).
  params.tiled.validate();
  if (slots < 1) throw std::invalid_argument("FlowServiceOptions: slots < 1");
  if (lanes_per_slot < 0)
    throw std::invalid_argument("FlowServiceOptions: lanes_per_slot < 0");
  if (queue_capacity < 1)
    throw std::invalid_argument("FlowServiceOptions: queue_capacity < 1");
  if (!std::isfinite(slo_ms) || slo_ms < 0.0)
    throw std::invalid_argument("FlowServiceOptions: bad slo_ms");
  if (max_batch < 1)
    throw std::invalid_argument("FlowServiceOptions: max_batch < 1");
}

// ---------------------------------------------------------------------------
// Internal state

struct FlowService::Request {
  enum Kind { kSolve = 0, kFrame = 1 };
  int kind = kSolve;
  Matrix<float> input;     ///< v-field (kSolve) or raw frame (kFrame)
  std::uint64_t sequence = 0;
  std::promise<Reply> promise;
  Stopwatch queued;        ///< started at admission; read at dispatch
};

struct FlowService::SessionState {
  explicit SessionState(std::uint64_t id_, const tvl1::Tvl1Params& params,
                        telemetry::ScopedMetrics scope)
      : id(id_),
        flow(params),
        m_admitted(&scope.counter("admitted")),
        m_completed(&scope.counter("completed")),
        m_shed(&scope.counter("shed")),
        m_latency(&scope.histogram("latency_ms")) {}

  const std::uint64_t id;

  // Guarded by the service mutex.
  std::deque<Request> fifo;
  bool bound = false;        ///< checked out by a slot worker
  bool in_runnable = false;  ///< present in FlowService::runnable_
  std::uint64_t next_sequence = 0;

  // Owned exclusively by the worker that has the session checked out
  // (`bound` hands off ownership; the mutex orders the handoff).
  DualField duals;
  bool has_duals = false;
  tvl1::FlowSession flow;  ///< flow-mode pyramid cache

  // Per-session scoped telemetry (serving.session.<id>.*), env-gated like
  // all registry metrics; hoisted once at open_session.
  telemetry::Counter* m_admitted;
  telemetry::Counter* m_completed;
  telemetry::Counter* m_shed;
  telemetry::Histogram* m_latency;
};

struct FlowService::Slot {
  int index = 0;
  // Declared before the engines: engines are destroyed first (reverse
  // member order), while the pool they were bound to is still alive.
  std::unique_ptr<parallel::ThreadPool> pool;
  /// Resolution -> persistent resident engine; the fleet's warm cache.
  std::map<std::pair<int, int>, std::unique_ptr<ResidentTiledEngine>> engines;
  std::pair<int, int> last_shape{0, 0};
  std::thread worker;
};

namespace {

std::pair<int, int> shape_of(const Matrix<float>& m) {
  return {m.rows(), m.cols()};
}

// Process-wide serving.* aggregates (env-gated; the always-on ServiceStats
// atomics are the source of truth for tests and benches).
struct GlobalMetrics {
  telemetry::Counter& admitted =
      telemetry::registry().counter("serving.admitted");
  telemetry::Counter& completed =
      telemetry::registry().counter("serving.completed");
  telemetry::Counter& shed_queue_full =
      telemetry::registry().counter("serving.shed.queue_full");
  telemetry::Counter& shed_deadline =
      telemetry::registry().counter("serving.shed.deadline");
  telemetry::Counter& batches =
      telemetry::registry().counter("serving.batches");
  telemetry::Counter& engine_builds =
      telemetry::registry().counter("serving.engine_builds");
  telemetry::Counter& sessions_opened =
      telemetry::registry().counter("serving.sessions.opened");
  telemetry::Gauge& queue_depth =
      telemetry::registry().gauge("serving.queue_depth");
  telemetry::Histogram& latency_ms =
      telemetry::registry().histogram("serving.latency_ms");
  telemetry::Histogram& solve_ms =
      telemetry::registry().histogram("serving.solve_ms");
};

GlobalMetrics& global_metrics() {
  static GlobalMetrics m;
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// FlowService

FlowService::FlowService(const FlowServiceOptions& options)
    : options_(options) {
  options_.validate();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  lanes_per_slot_ =
      options_.lanes_per_slot > 0
          ? options_.lanes_per_slot
          : std::max(1, static_cast<int>(hw) / options_.slots);
  slots_.reserve(static_cast<std::size_t>(options_.slots));
  for (int i = 0; i < options_.slots; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->index = i;
    slot->pool = std::make_unique<parallel::ThreadPool>(lanes_per_slot_);
    slots_.push_back(std::move(slot));
  }
  // Workers start only after every slot exists (they never touch slots_).
  for (auto& slot : slots_)
    slot->worker = std::thread([this, s = slot.get()] { worker_loop(*s); });
}

FlowService::~FlowService() {
  drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& slot : slots_)
    if (slot->worker.joinable()) slot->worker.join();
}

std::shared_ptr<FlowService::Session> FlowService::open_session() {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t id = static_cast<std::uint64_t>(sessions_.size());
  auto state = std::make_unique<SessionState>(
      id, options_.params,
      telemetry::ScopedMetrics("serving.session." + std::to_string(id)));
  SessionState* raw = state.get();
  sessions_.push_back(std::move(state));
  global_metrics().sessions_opened.add(1);
  // Not make_shared: the constructor is private to the friend service.
  return std::shared_ptr<Session>(new Session(this, raw));
}

std::future<Reply> FlowService::enqueue(SessionState& s, int kind,
                                        Matrix<float> input) {
  std::promise<Reply> promise;
  std::future<Reply> future = promise.get_future();
  std::lock_guard<std::mutex> lk(mu_);
  Reply immediate;
  immediate.sequence = s.next_sequence++;
  if (draining_ || stop_) {
    immediate.status = ReplyStatus::kClosed;
    promise.set_value(std::move(immediate));
    return future;
  }
  if (s.fifo.size() >= options_.queue_capacity) {
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    global_metrics().shed_queue_full.add(1);
    s.m_shed->add(1);
    immediate.status = ReplyStatus::kShedQueueFull;
    promise.set_value(std::move(immediate));
    return future;
  }
  Request req;
  req.kind = kind;
  req.input = std::move(input);
  req.sequence = immediate.sequence;
  req.promise = std::move(promise);
  s.fifo.push_back(std::move(req));
  ++queue_depth_;
  admitted_.fetch_add(1, std::memory_order_relaxed);
  global_metrics().admitted.add(1);
  global_metrics().queue_depth.set(static_cast<double>(queue_depth_));
  s.m_admitted->add(1);
  if (!s.bound && !s.in_runnable) {
    runnable_.push_back(&s);
    s.in_runnable = true;
  }
  cv_work_.notify_one();
  return future;
}

void FlowService::worker_loop(Slot& slot) {
  for (;;) {
    SessionState* s = nullptr;
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || !runnable_.empty(); });
      if (runnable_.empty()) return;  // stop_ with nothing left to do
      // Prefer the oldest runnable session whose next request matches the
      // resolution this slot's warmest engine is bound to; fall back to
      // plain FIFO so no session starves.
      std::size_t pick = 0;
      for (std::size_t i = 0; i < runnable_.size(); ++i) {
        if (shape_of(runnable_[i]->fifo.front().input) == slot.last_shape) {
          pick = i;
          break;
        }
      }
      s = runnable_[pick];
      runnable_.erase(runnable_.begin() +
                      static_cast<std::ptrdiff_t>(pick));
      s->in_runnable = false;
      s->bound = true;
      ++busy_slots_;
      // Claim the consecutive same-resolution prefix, one engine rebind
      // for the whole burst.
      const std::pair<int, int> shape = shape_of(s->fifo.front().input);
      while (!s->fifo.empty() &&
             batch.size() < static_cast<std::size_t>(options_.max_batch) &&
             shape_of(s->fifo.front().input) == shape) {
        batch.push_back(std::move(s->fifo.front()));
        s->fifo.pop_front();
      }
      queue_depth_ -= batch.size();
      global_metrics().queue_depth.set(static_cast<double>(queue_depth_));
    }

    batches_.fetch_add(1, std::memory_order_relaxed);
    global_metrics().batches.add(1);
    for (Request& req : batch) process(slot, *s, req);

    {
      std::lock_guard<std::mutex> lk(mu_);
      s->bound = false;
      --busy_slots_;
      if (!s->fifo.empty()) {
        runnable_.push_back(s);
        s->in_runnable = true;
        cv_work_.notify_one();
      }
      if (queue_depth_ == 0 && busy_slots_ == 0) cv_drained_.notify_all();
    }
  }
}

void FlowService::process(Slot& slot, SessionState& s, Request& req) {
  const double queue_ms = req.queued.milliseconds();
  Reply reply;
  reply.sequence = req.sequence;
  reply.queue_ms = queue_ms;
  if (options_.slo_ms > 0.0 && queue_ms > options_.slo_ms) {
    // Past the deadline: drop without touching the session's warm state,
    // so the stream continues as if this frame was never submitted.
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    global_metrics().shed_deadline.add(1);
    s.m_shed->add(1);
    reply.status = ReplyStatus::kShedDeadline;
    req.promise.set_value(std::move(reply));
    return;
  }

  const telemetry::TraceSpan span("serving.request");
  Stopwatch solve_clock;
  try {
    if (req.kind == Request::kSolve) {
      const std::pair<int, int> shape = shape_of(req.input);
      // Warm-start duals only match the stream's current resolution; a
      // resolution switch restarts the chain cold (documented contract).
      const DualField* initial =
          s.has_duals && s.duals.px.same_shape(req.input) ? &s.duals : nullptr;
      auto it = slot.engines.find(shape);
      if (it == slot.engines.end()) {
        TiledSolverOptions opts = options_.params.tiled;
        opts.pool = slot.pool.get();
        it = slot.engines
                 .emplace(shape, std::make_unique<ResidentTiledEngine>(
                                     req.input, options_.params.chambolle,
                                     opts, initial))
                 .first;
        engine_builds_.fetch_add(1, std::memory_order_relaxed);
        global_metrics().engine_builds.add(1);
      } else {
        ResidentTiledEngine& engine = *it->second;
        engine.reset_v(req.input, initial);
        // reset_v(.., nullptr) leaves the previous session's duals in the
        // tiles — the cold start must zero them explicitly.
        if (initial == nullptr) engine.reset_duals();
      }
      slot.last_shape = shape;
      ResidentTiledEngine& engine = *it->second;
      // The fixed schedule: bit-exact and lane-count independent, which
      // is what makes the concurrent-sessions oracle possible.
      engine.run(options_.params.chambolle.iterations);
      engine.snapshot(s.duals);
      s.has_duals = true;
      ChambolleResult result = engine.result();
      reply.u = std::move(result.u);
      reply.status = ReplyStatus::kOk;
    } else {
      s.flow.set_pool(slot.pool.get());
      std::optional<FlowField> flow =
          s.flow.push_frame(req.input, &reply.flow_stats);
      if (flow.has_value()) {
        reply.flow = std::move(*flow);
        reply.status = ReplyStatus::kOk;
      } else {
        reply.status = ReplyStatus::kPrimed;
        primed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } catch (...) {
    req.promise.set_exception(std::current_exception());
    return;
  }
  reply.solve_ms = solve_clock.milliseconds();

  const double total_ms = queue_ms + reply.solve_ms;
  latency_ms_.observe(total_ms);
  solve_ms_.observe(reply.solve_ms);
  completed_.fetch_add(1, std::memory_order_relaxed);
  global_metrics().completed.add(1);
  global_metrics().latency_ms.observe(total_ms);
  global_metrics().solve_ms.observe(reply.solve_ms);
  s.m_completed->add(1);
  s.m_latency->observe(total_ms);
  req.promise.set_value(std::move(reply));
}

void FlowService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  draining_ = true;
  cv_drained_.wait(lk, [&] { return queue_depth_ == 0 && busy_slots_ == 0; });
}

ServiceStats FlowService::stats() const {
  ServiceStats out;
  out.admitted = admitted_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.primed = primed_.load(std::memory_order_relaxed);
  out.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  out.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.engine_builds = engine_builds_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    out.queue_depth = queue_depth_;
  }
  out.p50_ms = latency_ms_.quantile(0.50);
  out.p95_ms = latency_ms_.quantile(0.95);
  out.p99_ms = latency_ms_.quantile(0.99);
  return out;
}

// ---------------------------------------------------------------------------
// Session

std::future<Reply> FlowService::Session::submit(Matrix<float> v) {
  return service_->enqueue(*state_, FlowService::Request::kSolve,
                           std::move(v));
}

std::future<Reply> FlowService::Session::submit_frame(Image frame) {
  return service_->enqueue(*state_, FlowService::Request::kFrame,
                           std::move(frame));
}

std::uint64_t FlowService::Session::id() const { return state_->id; }

std::size_t FlowService::Session::pending() const {
  std::lock_guard<std::mutex> lk(service_->mu_);
  return state_->fifo.size();
}

}  // namespace chambolle::serving
