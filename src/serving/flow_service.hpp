// flow_service.hpp — multi-stream flow serving on a fleet of resident
// engines.
//
// The single-stream story so far: one ResidentTiledEngine (or one TV-L1
// FlowSession) per process, all parallel regions on default_pool().  A
// service hosting N concurrent video streams breaks that twice over: a
// ThreadPool serializes concurrent regions, so N engines sharing the
// default pool take strict turns (zero overlap), and naively constructing
// an engine per request throws away the residency the engine exists to
// provide.
//
// FlowService fixes both.  It owns a fleet of `slots` engine slots; each
// slot has its OWN lane-partitioned ThreadPool (injected into every solve
// through TiledSolverOptions::pool) and a cache of persistent
// ResidentTiledEngines keyed by frame resolution, so a request for a
// previously seen shape reuses pinned tile buffers via reset_v() instead
// of reallocating.  Sessions carry the per-stream state across requests:
// the warm-start dual field for Chambolle-solve streams and the cached
// previous-frame pyramid (tvl1::FlowSession) for optical-flow streams.
//
// Scheduling: submissions land in a bounded per-session FIFO; a session
// with pending work is "runnable".  A free slot claims one runnable
// session (preferring one whose next frame matches the resolution of the
// slot's warm engine), processes up to `max_batch` consecutive same-
// resolution requests in one checkout — amortizing the engine rebind —
// then releases the session.  Per-session order is therefore strictly
// FIFO, which is what keeps warm-start state well-defined, while distinct
// sessions overlap on distinct slots.
//
// Admission control: a full session FIFO sheds the request immediately
// (kShedQueueFull — the future is ready before submit() returns); with
// slo_ms > 0, a request that waited longer than the SLO is shed at
// dispatch time instead of solved (kShedDeadline).  A shed request leaves
// the session's warm-start state exactly as it was — the stream behaves
// as if the frame was never submitted.  drain() stops admissions and
// blocks until every queued request is resolved; the destructor drains.
//
// Determinism: Chambolle-mode solves use the engine's fixed run()
// schedule, which is bit-exact and schedule-independent, and per-session
// state is touched only by the slot that has the session checked out.  A
// session's reply stream is therefore BIT-IDENTICAL no matter how many
// other sessions run concurrently, which slot processes it, or how many
// lanes each slot has — the concurrent-sessions oracle (src/testing)
// checks this against a fresh-engine serial replay.
//
// Thread-safety: every Session method and every FlowService method is
// safe to call from any thread.  Session handles must not outlive the
// service that issued them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "common/image.hpp"
#include "tvl1/tvl1.hpp"

namespace chambolle::serving {

/// Always-on fixed-bucket latency histogram.  telemetry::Histogram gates
/// observe() behind telemetry::enabled() (off by default at runtime), but
/// the serving stats, the latency bench, and the SLO report need
/// quantiles unconditionally — same pattern as ThreadPool's always-on
/// counters.  Bucketing and quantile interpolation mirror
/// telemetry::Histogram (Prometheus convention: overflow reports the last
/// finite bound).
class LatencyHistogram {
 public:
  /// Buckets from telemetry::default_ms_bounds().
  LatencyHistogram();

  void observe(double ms);
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Linear-interpolated q-quantile in ms; 0 when empty, q clamped to
  /// [0, 1] (NaN -> 0).
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
};

enum class ReplyStatus {
  kOk,            ///< solved; the payload fields are valid
  kPrimed,        ///< first frame of a flow stream: pyramid cached, no flow yet
  kShedQueueFull, ///< rejected at submit: session FIFO at queue_capacity
  kShedDeadline,  ///< dropped at dispatch: queued longer than slo_ms
  kClosed,        ///< rejected: service draining or shut down
};

[[nodiscard]] const char* to_string(ReplyStatus s);

/// One request's outcome.  `sequence` is the per-session submit index
/// (shed requests consume one too, so gaps in processed sequences are
/// visible to the client).
struct Reply {
  ReplyStatus status = ReplyStatus::kClosed;
  std::uint64_t sequence = 0;
  /// Chambolle mode (Session::submit): the primal solution.
  Matrix<float> u;
  /// Flow mode (Session::submit_frame): the flow from the previous frame.
  FlowField flow;
  tvl1::Tvl1Stats flow_stats;
  double queue_ms = 0.0;  ///< submit -> dispatch wait
  double solve_ms = 0.0;  ///< dispatch -> done (0 for shed)

  [[nodiscard]] bool ok() const { return status == ReplyStatus::kOk; }
  [[nodiscard]] bool shed() const {
    return status == ReplyStatus::kShedQueueFull ||
           status == ReplyStatus::kShedDeadline;
  }
};

struct FlowServiceOptions {
  /// Solver configuration shared by every session: `chambolle` + `tiled`
  /// drive Chambolle-mode solves on the fleet engines; the full struct
  /// drives flow-mode sessions (tvl1::FlowSession).
  tvl1::Tvl1Params params{};
  /// Engine slots = maximum concurrently solving sessions.
  int slots = 2;
  /// Worker lanes per slot's private pool; 0 splits the hardware
  /// concurrency evenly across slots (at least 1 each).
  int lanes_per_slot = 0;
  /// Per-session pending-request bound; submits beyond it shed.
  std::size_t queue_capacity = 8;
  /// Latency SLO: a request queued longer than this is shed at dispatch
  /// instead of solved.  0 disables deadline shedding.
  double slo_ms = 0.0;
  /// Max consecutive same-resolution requests one slot checkout processes.
  int max_batch = 4;

  void validate() const;
};

/// Cumulative service counters plus latency quantiles.  Counters are
/// always-on atomics (telemetry mirrors exist under serving.* but are
/// env-gated); quantiles come from the always-on LatencyHistogram over
/// total (queue + solve) latency of non-shed requests.
struct ServiceStats {
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;       ///< kOk + kPrimed replies
  std::uint64_t primed = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t batches = 0;         ///< slot checkouts
  std::uint64_t engine_builds = 0;   ///< resident engines constructed
  std::size_t queue_depth = 0;       ///< requests currently queued
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
};

class FlowService {
 public:
  class Session;

  explicit FlowService(const FlowServiceOptions& options);
  /// Drains (every queued request resolves) and joins the slot workers.
  ~FlowService();

  FlowService(const FlowService&) = delete;
  FlowService& operator=(const FlowService&) = delete;

  /// Opens a stream.  The handle stays valid until the service is
  /// destroyed; dropping it does not cancel queued requests.
  [[nodiscard]] std::shared_ptr<Session> open_session();

  /// Stops admissions (subsequent submits reply kClosed) and blocks until
  /// every queued request has been resolved.  Idempotent.
  void drain();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const FlowServiceOptions& options() const { return options_; }
  /// Resolved lanes per slot (after the 0 = auto split).
  [[nodiscard]] int lanes_per_slot() const { return lanes_per_slot_; }

 private:
  struct SessionState;
  struct Slot;
  struct Request;

  std::future<Reply> enqueue(SessionState& s, int kind, Matrix<float> input);
  void worker_loop(Slot& slot);
  void process(Slot& slot, SessionState& s, Request& req);

  FlowServiceOptions options_;
  int lanes_per_slot_ = 1;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_drained_;
  std::vector<std::unique_ptr<SessionState>> sessions_;
  std::vector<SessionState*> runnable_;  // FIFO of sessions with pending work
  std::vector<std::unique_ptr<Slot>> slots_;
  bool draining_ = false;
  bool stop_ = false;
  std::size_t queue_depth_ = 0;
  int busy_slots_ = 0;

  // Always-on stats (see ServiceStats).
  std::atomic<std::uint64_t> admitted_{0}, completed_{0}, primed_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0}, shed_deadline_{0};
  std::atomic<std::uint64_t> batches_{0}, engine_builds_{0};
  LatencyHistogram latency_ms_;
  LatencyHistogram solve_ms_;
};

/// A client's handle to one stream.  All methods are thread-safe, but a
/// single session's submissions are processed strictly in submit order,
/// so interleaving submitters on one session interleaves their frames.
class FlowService::Session {
 public:
  /// Chambolle mode: solve one component field `v` on a fleet engine with
  /// the fixed (bit-exact) schedule, warm-started from this session's
  /// dual state; the session's duals are updated from the solve.  The
  /// first solve (or the first after a resolution change) cold-starts
  /// from zeros.
  [[nodiscard]] std::future<Reply> submit(Matrix<float> v);

  /// Flow mode: feed the next video frame (intensities on [0, 255]) to
  /// this session's TV-L1 stream.  The first frame primes the pyramid
  /// cache and replies kPrimed; later frames reply with the flow from the
  /// previous frame.  Frames must keep one shape per stream.
  [[nodiscard]] std::future<Reply> submit_frame(Image frame);

  [[nodiscard]] std::uint64_t id() const;
  /// Requests currently queued on this session.
  [[nodiscard]] std::size_t pending() const;

 private:
  friend class FlowService;
  Session(FlowService* service, SessionState* state)
      : service_(service), state_(state) {}

  FlowService* service_;
  SessionState* state_;
};

}  // namespace chambolle::serving
