#include "baseline/cpu_baseline.hpp"

#include <algorithm>

#include "chambolle/solver.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "telemetry/trace.hpp"

namespace chambolle::baseline {
namespace {

ChambolleParams params_for(int iterations) {
  ChambolleParams p;
  p.iterations = iterations;
  return p;
}

FlowField make_input(int rows, int cols) {
  Rng rng(123);
  FlowField v(rows, cols);
  v.u1 = random_image(rng, rows, cols, -2.f, 2.f);
  v.u2 = random_image(rng, rows, cols, -2.f, 2.f);
  return v;
}

}  // namespace

CpuMeasurement measure_scalar_chambolle(int rows, int cols, int iterations,
                                        int repeats) {
  const telemetry::TraceSpan span("baseline.measure_scalar");
  const ChambolleParams params = params_for(iterations);
  const FlowField v = make_input(rows, cols);
  // One lap()-stopwatch across repeats instead of a throwaway per repeat.
  Stopwatch clock;
  double best = -1.0;
  for (int i = 0; i < std::max(repeats, 1); ++i) {
    clock.lap();
    const FlowField u = solve_flow(v, params);
    const double s = clock.lap();
    (void)u;
    if (best < 0 || s < best) best = s;
  }
  return {"CPU scalar (this host)", cols, rows, iterations, best,
          best > 0 ? 1.0 / best : 0.0};
}

CpuMeasurement measure_tiled_chambolle(int rows, int cols, int iterations,
                                       const TiledSolverOptions& options,
                                       int repeats) {
  const telemetry::TraceSpan span("baseline.measure_tiled");
  const ChambolleParams params = params_for(iterations);
  const FlowField v = make_input(rows, cols);
  Stopwatch clock;
  double best = -1.0;
  for (int i = 0; i < std::max(repeats, 1); ++i) {
    clock.lap();
    const ChambolleResult r1 = solve_tiled(v.u1, params, options);
    const ChambolleResult r2 = solve_tiled(v.u2, params, options);
    const double s = clock.lap();
    (void)r1;
    (void)r2;
    if (best < 0 || s < best) best = s;
  }
  return {"CPU tiled (this host)", cols, rows, iterations, best,
          best > 0 ? 1.0 / best : 0.0};
}

}  // namespace chambolle::baseline
