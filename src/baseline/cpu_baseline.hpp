// cpu_baseline.hpp — live software baselines measured on the host.
//
// The paper motivates the accelerator with a multithreaded x86 software
// TV-L1 taking >15 s/frame; we measure our own scalar and tiled-parallel
// Chambolle implementations on this machine so the comparison table always
// carries at least one datapoint produced live rather than transcribed.
#pragma once

#include <string>

#include "chambolle/params.hpp"
#include "chambolle/tiled_solver.hpp"

namespace chambolle::baseline {

struct CpuMeasurement {
  std::string label;
  int width = 0;
  int height = 0;
  int iterations = 0;
  double seconds_per_frame = 0.0;
  double fps = 0.0;
};

/// Times the sequential reference solver on a rows x cols frame (both flow
/// components, as the hardware computes both).  `repeats` > 1 reports the
/// best run.
[[nodiscard]] CpuMeasurement measure_scalar_chambolle(int rows, int cols,
                                                      int iterations,
                                                      int repeats = 1);

/// Times the tiled parallel solver with the given options.
[[nodiscard]] CpuMeasurement measure_tiled_chambolle(
    int rows, int cols, int iterations, const TiledSolverOptions& options,
    int repeats = 1);

}  // namespace chambolle::baseline
