// horn_schunck.hpp — the classical variational baseline (Horn & Schunck
// 1981, the paper's reference [7]).
//
// Minimizes  integral of (Ix*u + Iy*v + It)^2 + alpha^2 (|grad u|^2 +
// |grad v|^2) — a QUADRATIC smoothness prior, solved by Jacobi iterations on
// the Euler-Lagrange equations.  Contrast with TV-L1: the L2 prior
// over-smooths motion discontinuities and the L2 data term is fragile under
// brightness variation; the flow-quality bench quantifies both, which is the
// paper's motivation for accelerating the TV-L1/Chambolle pipeline instead.
// A coarse-to-fine pyramid with warping extends it to large motions, sharing
// the TV-L1 machinery.
#pragma once

#include <stdexcept>

#include "common/image.hpp"

namespace chambolle::baseline {

struct HornSchunckParams {
  /// Smoothness weight (images are normalized to [0,1] internally).
  float alpha = 0.02f;
  /// Jacobi iterations per warp.
  int iterations = 100;
  /// Coarse-to-fine pyramid depth; 1 disables.
  int pyramid_levels = 4;
  /// Warping iterations per level.
  int warps = 3;

  void validate() const {
    if (alpha <= 0.f) throw std::invalid_argument("HornSchunck: alpha <= 0");
    if (iterations < 1)
      throw std::invalid_argument("HornSchunck: iterations < 1");
    if (pyramid_levels < 1)
      throw std::invalid_argument("HornSchunck: pyramid_levels < 1");
    if (warps < 1) throw std::invalid_argument("HornSchunck: warps < 1");
  }
};

/// Estimates the optical flow from i0 to i1 with pyramidal Horn-Schunck.
/// Frames must share a shape of at least 2x2; intensities on [0, 255].
[[nodiscard]] FlowField horn_schunck_flow(const Image& i0, const Image& i1,
                                          const HornSchunckParams& params);

}  // namespace chambolle::baseline
