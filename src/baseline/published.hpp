// published.hpp — the state-of-the-art datapoints of Table II.
//
// The paper compares against PUBLISHED GPU results (Zach et al. [13] and
// Weishaupt et al. [14]); it did not re-run them.  We record the same rows as
// structured data so the comparison table can be regenerated, and the
// speedup arithmetic (16.5x - 76x at 512x512) can be recomputed and audited.
#pragma once

#include <string>
#include <vector>

namespace chambolle::baseline {

struct PublishedResult {
  std::string reference;  ///< citation key, e.g. "[13]"
  std::string device;
  int iterations = 0;
  int width = 0;
  int height = 0;
  double fps = 0.0;       ///< midpoint when the source quotes a range
  std::string note;       ///< e.g. "OpenCV+OpenGL", range annotations
};

/// All baseline rows of Table II (GPU implementations).
[[nodiscard]] const std::vector<PublishedResult>& published_baselines();

/// The paper's own two rows of Table II (proposed FPGA approach).
[[nodiscard]] const std::vector<PublishedResult>& paper_fpga_results();

/// Baselines filtered by resolution and iteration count.
[[nodiscard]] std::vector<PublishedResult> baselines_for(int width, int height,
                                                         int iterations);

/// Min and max fps among the given rows; throws std::invalid_argument when
/// empty.
struct FpsRange {
  double min_fps = 0.0;
  double max_fps = 0.0;
};
[[nodiscard]] FpsRange fps_range(const std::vector<PublishedResult>& rows);

}  // namespace chambolle::baseline
