#include "baseline/block_matching.hpp"

#include <algorithm>
#include <limits>

namespace chambolle::baseline {
namespace {

// SAD of a block at (r0, c0) in i0 against displacement (dr, dc) in i1,
// clamped sampling on i1.
double block_sad(const Image& i0, const Image& i1, int r0, int c0, int h,
                 int w, int dr, int dc) {
  double sad = 0.0;
  for (int r = 0; r < h; ++r)
    for (int c = 0; c < w; ++c) {
      const int rr = std::clamp(r0 + r + dr, 0, i1.rows() - 1);
      const int cc = std::clamp(c0 + c + dc, 0, i1.cols() - 1);
      sad += std::abs(static_cast<double>(i0(r0 + r, c0 + c)) - i1(rr, cc));
    }
  return sad;
}

}  // namespace

FlowField block_matching_flow(const Image& i0, const Image& i1,
                              const BlockMatchingParams& params) {
  params.validate();
  if (!i0.same_shape(i1))
    throw std::invalid_argument("block_matching_flow: frame shape mismatch");

  FlowField flow(i0.rows(), i0.cols());
  const int B = params.block_size;
  const int R = params.search_radius;

  for (int r0 = 0; r0 < i0.rows(); r0 += B)
    for (int c0 = 0; c0 < i0.cols(); c0 += B) {
      const int h = std::min(B, i0.rows() - r0);
      const int w = std::min(B, i0.cols() - c0);

      const double zero_sad = block_sad(i0, i1, r0, c0, h, w, 0, 0);
      double best = zero_sad;
      int best_dr = 0, best_dc = 0;
      for (int dr = -R; dr <= R; ++dr)
        for (int dc = -R; dc <= R; ++dc) {
          if (dr == 0 && dc == 0) continue;
          const double sad = block_sad(i0, i1, r0, c0, h, w, dr, dc);
          if (sad < best) {
            best = sad;
            best_dr = dr;
            best_dc = dc;
          }
        }
      // Textureless guard: without a clear SAD advantage the match is noise.
      if (zero_sad - best < params.min_texture_sad * h * w) {
        best_dr = 0;
        best_dc = 0;
      }
      for (int r = 0; r < h; ++r)
        for (int c = 0; c < w; ++c) {
          flow.u1(r0 + r, c0 + c) = static_cast<float>(best_dc);
          flow.u2(r0 + r, c0 + c) = static_cast<float>(best_dr);
        }
    }
  return flow;
}

}  // namespace chambolle::baseline
