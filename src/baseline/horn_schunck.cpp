#include "baseline/horn_schunck.hpp"

#include <algorithm>

#include "tvl1/pyramid.hpp"
#include "tvl1/warp.hpp"

namespace chambolle::baseline {
namespace {

Image normalize(const Image& img) {
  Image out = img;
  for (float& v : out) v *= (1.f / 255.f);
  return out;
}

// Horn & Schunck's weighted neighborhood average (their Laplacian stencil):
// 1/6 for the 4-neighbors, 1/12 for the diagonals, clamped at borders.
float neighborhood_average(const Matrix<float>& f, int r, int c) {
  const auto at = [&](int rr, int cc) {
    rr = std::clamp(rr, 0, f.rows() - 1);
    cc = std::clamp(cc, 0, f.cols() - 1);
    return f(rr, cc);
  };
  const float cross = at(r - 1, c) + at(r + 1, c) + at(r, c - 1) + at(r, c + 1);
  const float diag = at(r - 1, c - 1) + at(r - 1, c + 1) + at(r + 1, c - 1) +
                     at(r + 1, c + 1);
  return cross / 6.f + diag / 12.f;
}

// One Horn-Schunck solve around the linearization point u0 (I1 pre-warped).
void hs_inner(const Image& i0, const tvl1::WarpResult& wr, const FlowField& u0,
              FlowField& u, float alpha, int iterations) {
  const int rows = i0.rows(), cols = i0.cols();
  const float alpha2 = alpha * alpha;
  FlowField next(rows, cols);
  for (int it = 0; it < iterations; ++it) {
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c) {
        const float ix = wr.grad.gx(r, c);
        const float iy = wr.grad.gy(r, c);
        // Linearized temporal derivative around u0.
        const float itd = wr.warped(r, c) - i0(r, c);
        const float ubar = neighborhood_average(u.u1, r, c);
        const float vbar = neighborhood_average(u.u2, r, c);
        const float num = ix * (ubar - u0.u1(r, c)) + iy * (vbar - u0.u2(r, c)) + itd;
        const float den = alpha2 + ix * ix + iy * iy;
        const float lam = num / den;
        next.u1(r, c) = ubar - ix * lam;
        next.u2(r, c) = vbar - iy * lam;
      }
    std::swap(u.u1, next.u1);
    std::swap(u.u2, next.u2);
  }
}

}  // namespace

FlowField horn_schunck_flow(const Image& i0, const Image& i1,
                            const HornSchunckParams& params) {
  params.validate();
  if (!i0.same_shape(i1))
    throw std::invalid_argument("horn_schunck_flow: frame shape mismatch");
  if (i0.rows() < 2 || i0.cols() < 2)
    throw std::invalid_argument("horn_schunck_flow: frames at least 2x2");

  const tvl1::Pyramid p0(normalize(i0), params.pyramid_levels);
  const tvl1::Pyramid p1(normalize(i1), params.pyramid_levels);
  const int levels = std::min(p0.levels(), p1.levels());

  FlowField u;
  for (int level = levels - 1; level >= 0; --level) {
    const Image& l0 = p0.level(level);
    const Image& l1 = p1.level(level);
    if (level == levels - 1)
      u = FlowField(l0.rows(), l0.cols());
    else
      u = tvl1::upsample_flow(u, l0.rows(), l0.cols());

    for (int w = 0; w < params.warps; ++w) {
      const FlowField u0 = u;
      const tvl1::WarpResult wr = tvl1::warp_with_gradients(l1, u0);
      hs_inner(l0, wr, u0, u, params.alpha, params.iterations);
    }
  }
  return u;
}

}  // namespace chambolle::baseline
