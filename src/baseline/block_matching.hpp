// block_matching.hpp — the fast-but-limited FPGA alternative class.
//
// The paper's related work cites Abutaleb et al. [15]: an FPGA optical-flow
// engine reaching 156 fps at 768x576 — but producing motion-detection-grade
// flow that "cannot be used in other applications such as rolling shutter
// correction".  Block matching with integer SAD search is the canonical
// representative of that class: very fast and hardware-friendly, but
// integer-quantized, blocky, and textureless-region-blind.  The flow-quality
// bench puts numbers on exactly those limitations.
#pragma once

#include <stdexcept>

#include "common/image.hpp"

namespace chambolle::baseline {

struct BlockMatchingParams {
  /// Block edge length in pixels.
  int block_size = 8;
  /// Search radius in pixels (full search over [-r, r]^2).
  int search_radius = 7;
  /// Blocks whose best SAD advantage over the zero vector is below this
  /// fraction are treated as textureless and assigned zero motion.
  float min_texture_sad = 1.0f;

  void validate() const {
    if (block_size < 1)
      throw std::invalid_argument("BlockMatching: block_size < 1");
    if (search_radius < 0)
      throw std::invalid_argument("BlockMatching: search_radius < 0");
    if (min_texture_sad < 0.f)
      throw std::invalid_argument("BlockMatching: min_texture_sad < 0");
  }
};

/// Estimates per-pixel flow by full-search SAD block matching from i0 to i1.
/// Every pixel of a block receives the block's integer motion vector.
[[nodiscard]] FlowField block_matching_flow(const Image& i0, const Image& i1,
                                            const BlockMatchingParams& params);

}  // namespace chambolle::baseline
