#include "baseline/published.hpp"

#include <stdexcept>

namespace chambolle::baseline {

const std::vector<PublishedResult>& published_baselines() {
  // Transcribed from Table II of the paper (fps of ranges like "1-2" are
  // stored at the midpoint, with the range kept in the note).
  static const std::vector<PublishedResult> rows = {
      {"[13]", "GeForce 7800 GS", 50, 128, 128, 56.0, ""},
      {"[13]", "GeForce 7800 GS", 100, 128, 128, 32.1, ""},
      {"[13]", "GeForce 7800 GS", 200, 128, 128, 17.5, ""},
      {"[13]", "GeForce 7800 GS", 50, 256, 256, 18.0, ""},
      {"[13]", "GeForce 7800 GS", 100, 256, 256, 9.6, ""},
      {"[13]", "GeForce 7800 GS", 200, 256, 256, 5.0, ""},
      {"[13]", "GeForce 7800 GS", 50, 512, 512, 5.0, ""},
      {"[13]", "GeForce 7800 GS", 100, 512, 512, 2.6, ""},
      {"[13]", "GeForce 7800 GS", 200, 512, 512, 1.3, ""},
      {"[13]", "GeForce Go 7900 GTX", 50, 128, 128, 95.0, ""},
      {"[13]", "GeForce Go 7900 GTX", 100, 128, 128, 57.0, ""},
      {"[13]", "GeForce Go 7900 GTX", 200, 128, 128, 30.9, ""},
      {"[13]", "GeForce Go 7900 GTX", 50, 256, 256, 34.1, ""},
      {"[13]", "GeForce Go 7900 GTX", 100, 256, 256, 17.5, ""},
      {"[13]", "GeForce Go 7900 GTX", 200, 256, 256, 8.9, ""},
      {"[13]", "GeForce Go 7900 GTX", 50, 512, 512, 9.3, ""},
      {"[13]", "GeForce Go 7900 GTX", 100, 512, 512, 4.7, ""},
      {"[13]", "GeForce Go 7900 GTX", 200, 512, 512, 2.3, ""},
      {"[14]", "ATI Mobility Radeon HD3650", 100, 512, 512, 1.5,
       "OpenCV+OpenGL, 1-2 fps"},
      {"[14]", "ATI Mobility Radeon HD3650", 100, 512, 512, 3.5,
       "OpenGL only, 3-4 fps"},
      {"[14]", "NVIDIA GTX285", 100, 512, 512, 5.5, "OpenGL only, 5-6 fps"},
  };
  return rows;
}

const std::vector<PublishedResult>& paper_fpga_results() {
  static const std::vector<PublishedResult> rows = {
      {"paper", "Xilinx Virtex-5 XC5VLX110T", 200, 512, 512, 99.1,
       "proposed approach"},
      {"paper", "Xilinx Virtex-5 XC5VLX110T", 200, 1024, 768, 38.1,
       "proposed approach"},
  };
  return rows;
}

std::vector<PublishedResult> baselines_for(int width, int height,
                                           int iterations) {
  std::vector<PublishedResult> out;
  for (const PublishedResult& r : published_baselines())
    if (r.width == width && r.height == height &&
        (iterations == 0 || r.iterations == iterations))
      out.push_back(r);
  return out;
}

FpsRange fps_range(const std::vector<PublishedResult>& rows) {
  if (rows.empty()) throw std::invalid_argument("fps_range: no rows");
  FpsRange range{rows.front().fps, rows.front().fps};
  for (const PublishedResult& r : rows) {
    range.min_fps = std::min(range.min_fps, r.fps);
    range.max_fps = std::max(range.max_fps, r.fps);
  }
  return range;
}

}  // namespace chambolle::baseline
