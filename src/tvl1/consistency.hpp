// consistency.hpp — forward-backward consistency and occlusion masking.
//
// A flow estimate cannot be trusted where the scene point is occluded in the
// second frame.  The standard detector: compute the backward flow too, warp
// it to the first frame, and flag pixels where forward + warped-backward
// does not cancel.  Downstream applications (rolling-shutter correction,
// motion compensation) skip or in-fill flagged pixels.
#pragma once

#include "common/image.hpp"
#include "tvl1/tvl1.hpp"

namespace chambolle::tvl1 {

struct ConsistencyResult {
  /// |forward(x) + backward(x + forward(x))| per pixel.
  Matrix<float> mismatch;
  /// mismatch > threshold (1 = inconsistent / likely occluded).
  Matrix<unsigned char> occluded;
  /// Fraction of flagged pixels.
  double occluded_fraction = 0.0;
};

/// Checks a forward/backward flow pair; `threshold` is in pixels.
[[nodiscard]] ConsistencyResult check_consistency(const FlowField& forward,
                                                  const FlowField& backward,
                                                  float threshold = 0.75f);

/// Convenience: estimates both directions with TV-L1 and runs the check.
[[nodiscard]] ConsistencyResult bidirectional_check(const Image& i0,
                                                    const Image& i1,
                                                    const Tvl1Params& params,
                                                    float threshold = 0.75f);

}  // namespace chambolle::tvl1
