// pyramid.hpp — multi-scale image pyramid for the TV-L1 coarse-to-fine scheme.
//
// TV-L1 (Zach et al. 2007, ref [13] of the paper) linearizes the brightness
// constancy residual, which is only valid for small displacements; a
// coarse-to-fine pyramid extends it to large motions.  Levels are built by
// low-pass (2x2 box within a 2x subsample) reduction; flow fields are
// upsampled bilinearly with magnitudes doubled between levels.
#pragma once

#include <vector>

#include "common/image.hpp"

namespace chambolle::tvl1 {

/// Downsamples by 2 with 2x2 box averaging (odd trailing row/col handled by
/// clamping).  Result dims are ceil(dims/2).
[[nodiscard]] Image downsample2(const Image& img);

/// Bilinear upsampling to an exact target size.
[[nodiscard]] Image upsample_to(const Image& img, int rows, int cols);

/// Upsamples a flow field to the target size and scales vectors by the
/// resolution ratio (x2 for a standard pyramid step).
[[nodiscard]] FlowField upsample_flow(const FlowField& flow, int rows,
                                      int cols);

/// Image pyramid; level 0 is the finest (original) resolution.
class Pyramid {
 public:
  /// Builds at most `max_levels` levels, stopping early when either dimension
  /// would fall below `min_dim`.
  Pyramid(const Image& base, int max_levels, int min_dim = 16);

  [[nodiscard]] int levels() const { return static_cast<int>(levels_.size()); }
  [[nodiscard]] const Image& level(int i) const { return levels_.at(static_cast<std::size_t>(i)); }

 private:
  std::vector<Image> levels_;
};

}  // namespace chambolle::tvl1
