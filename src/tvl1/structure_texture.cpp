#include "tvl1/structure_texture.hpp"

#include "chambolle/solver.hpp"

namespace chambolle::tvl1 {

StructureTexture decompose_structure_texture(
    const Image& img, const StructureTextureParams& params) {
  params.validate();
  ChambolleParams rof;
  rof.theta = params.theta;
  rof.tau = params.theta / 4.f;  // tau/theta = 1/4, the stability bound
  rof.iterations = params.iterations;

  StructureTexture out;
  out.structure = solve(img, rof).u;
  out.texture.resize(img.rows(), img.cols());
  for (int r = 0; r < img.rows(); ++r)
    for (int c = 0; c < img.cols(); ++c)
      // Re-center on mid-gray so the texture image is a valid [0,255] frame.
      out.texture(r, c) = img(r, c) - out.structure(r, c) + 128.f;
  return out;
}

Image texture_component(const Image& img,
                        const StructureTextureParams& params) {
  const StructureTexture st = decompose_structure_texture(img, params);
  Image out(img.rows(), img.cols());
  for (int r = 0; r < img.rows(); ++r)
    for (int c = 0; c < img.cols(); ++c)
      out(r, c) = st.texture(r, c) +
                  params.blend * (st.structure(r, c) - 128.f);
  return out;
}

}  // namespace chambolle::tvl1
