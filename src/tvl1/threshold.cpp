#include "tvl1/threshold.hpp"

#include <stdexcept>

namespace chambolle::tvl1 {
namespace {

void check(const ThresholdInputs& in) {
  if (!in.i0.same_shape(in.i1_warped) || !in.i0.same_shape(in.grad.gx) ||
      !in.i0.same_shape(in.u0.u1) || !in.i0.same_shape(in.u.u1))
    throw std::invalid_argument("threshold: shape mismatch");
  if (in.lambda <= 0.f || in.theta <= 0.f)
    throw std::invalid_argument("threshold: lambda/theta must be positive");
}

}  // namespace

Matrix<float> residual(const ThresholdInputs& in) {
  check(in);
  Matrix<float> rho(in.i0.rows(), in.i0.cols());
  for (int r = 0; r < rho.rows(); ++r)
    for (int c = 0; c < rho.cols(); ++c)
      rho(r, c) = in.i1_warped(r, c) +
                  in.grad.gx(r, c) * (in.u.u1(r, c) - in.u0.u1(r, c)) +
                  in.grad.gy(r, c) * (in.u.u2(r, c) - in.u0.u2(r, c)) -
                  in.i0(r, c);
  return rho;
}

FlowField threshold_step(const ThresholdInputs& in) {
  check(in);
  const Matrix<float> rho = residual(in);
  const float lt = in.lambda * in.theta;
  FlowField v(in.i0.rows(), in.i0.cols());
  for (int r = 0; r < v.rows(); ++r)
    for (int c = 0; c < v.cols(); ++c) {
      const float gx = in.grad.gx(r, c), gy = in.grad.gy(r, c);
      const float g2 = gx * gx + gy * gy;
      const float rh = rho(r, c);
      float dx, dy;
      if (rh < -lt * g2) {
        dx = lt * gx;
        dy = lt * gy;
      } else if (rh > lt * g2) {
        dx = -lt * gx;
        dy = -lt * gy;
      } else if (g2 > 1e-12f) {
        dx = -rh * gx / g2;
        dy = -rh * gy / g2;
      } else {
        dx = 0.f;  // textureless point: the data term gives no information
        dy = 0.f;
      }
      v.u1(r, c) = in.u.u1(r, c) + dx;
      v.u2(r, c) = in.u.u2(r, c) + dy;
    }
  return v;
}

}  // namespace chambolle::tvl1
