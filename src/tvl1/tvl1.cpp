#include "tvl1/tvl1.hpp"

#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "chambolle/fixed_solver.hpp"
#include "chambolle/resident_tiled.hpp"
#include "chambolle/solver.hpp"
#include "common/stopwatch.hpp"
#include "common/validation.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "tvl1/median_filter.hpp"
#include "tvl1/pyramid.hpp"
#include "tvl1/threshold.hpp"
#include "tvl1/warp.hpp"

namespace chambolle::tvl1 {
namespace {

Image normalize(const Image& img) {
  Image out = img;
  for (float& v : out) v *= (1.f / 255.f);
  return out;
}

// Pool the pipeline's parallel regions run on.  The tiled options carry the
// injection point (TiledSolverOptions::pool) because the inner solves are
// where almost all the parallel time goes; the pyramid builds ride on the
// same pool so a serving engine slot never touches the shared default pool.
parallel::ThreadPool& pool_for(const Tvl1Params& params) {
  return params.tiled.pool != nullptr ? *params.tiled.pool
                                      : parallel::default_pool();
}

// One Chambolle solve of a single component through the selected backend.
// `out` receives the primal result; `scratch` persists across warps so the
// reference path reuses its dual-field and output buffers instead of
// allocating per frame (solve_into + the preallocated recover_u_into path).
// `resident` is the component's persistent resident-tile engine (kResident
// only): tile buffers survive across warps of a level, so the steady state
// re-streams only v; it is rebuilt when the pyramid level changes shape.
// Returns the inner-iteration count this solve contributed to the stats:
// the fixed budget, or (adaptive resident) the tile-average iterations
// actually executed.
long long inner_solve(const Matrix<float>& v, const Tvl1Params& params,
                      Matrix<float>& out, ChambolleResult& scratch,
                      std::unique_ptr<ResidentTiledEngine>& resident) {
  switch (params.solver) {
    case InnerSolver::kReference:
      solve_into(v, params.chambolle, scratch);
      // Hand the result out and keep the previous output buffer (same shape
      // at this pyramid level) as next warp's recover_u_into destination.
      std::swap(out, scratch.u);
      return params.chambolle.iterations;
    case InnerSolver::kTiled:
      out = solve_tiled(v, params.chambolle, params.tiled).u;
      return params.chambolle.iterations;
    case InnerSolver::kResident: {
      if (resident == nullptr || resident->rows() != v.rows() ||
          resident->cols() != v.cols()) {
        resident = std::make_unique<ResidentTiledEngine>(v, params.chambolle,
                                                         params.tiled);
      } else {
        resident->reset_v(v);
        if (!params.warm_start_duals) resident->reset_duals();
      }
      long long iters = params.chambolle.iterations;
      if (params.adaptive_stopping) {
        ResidentAdaptiveOptions ao = params.adaptive;
        if (ao.max_passes <= 0) {
          // Same fixed-budget sentinel resolution as solve_resident_adaptive,
          // remainder pass included.
          const int merge = std::max(1, params.tiled.merge_iterations);
          ao.max_passes =
              std::max(1, (params.chambolle.iterations + merge - 1) / merge);
          const int tail =
              params.chambolle.iterations - (ao.max_passes - 1) * merge;
          if (tail > 0 && tail < merge) ao.final_pass_iterations = tail;
        }
        ResidentAdaptiveReport rep;
        if (params.multilevel.enabled()) {
          ResidentMultilevelOptions mo;
          mo.adaptive = ao;
          mo.multilevel = params.multilevel;
          rep = resident->run_multilevel(mo).adaptive;
        } else {
          rep = resident->run_adaptive(ao);
        }
        // Tile-average of the iterations actually executed;
        // rep.total_iterations already discounts cap-truncated final bursts
        // (final_pass_iterations), unlike passes * merge_iterations.
        iters = rep.tiles > 0 ? static_cast<long long>(rep.total_iterations) /
                                    static_cast<long long>(rep.tiles)
                              : 0;
      } else {
        resident->run(params.chambolle.iterations);
      }
      ChambolleResult r = resident->result();
      std::swap(out, r.u);
      return iters;
    }
    case InnerSolver::kFixed: {
      // The 13-bit Q5.8 v-format spans [-16,16); flow components at any
      // pyramid level stay well inside it for the supported image sizes.
      out = solve_fixed(v, params.chambolle).u;
      return params.chambolle.iterations;
    }
  }
  throw std::logic_error("inner_solve: unknown solver");
}

// The coarse-to-fine loop shared by both compute_flow overloads.  The caller
// owns `total_clock` so the image overload's stats keep covering the pyramid
// builds (as they always did), while the pyramid overload's stats cover only
// the work it actually performs.
FlowField flow_from_pyramids(const Pyramid& p0, const Pyramid& p1,
                             const Tvl1Params& params, Tvl1Stats* stats,
                             Stopwatch& total_clock) {
  const int levels = std::min(p0.levels(), p1.levels());
  double chambolle_seconds = 0.0;
  long long inner_iters = 0;

  FlowField u;
  // Reused across every warp of every level: the reference inner solver's
  // dual state and primal output land in these buffers, so the steady state
  // of the pyramid loop stops allocating fresh frames per warp.
  ChambolleResult inner_scratch;
  // kResident: one persistent engine per flow component; tile buffers stay
  // resident across warps (rebuilt only when the level changes shape).
  std::unique_ptr<ResidentTiledEngine> resident_u1, resident_u2;
  for (int level = levels - 1; level >= 0; --level) {
    const telemetry::TraceSpan level_span("tvl1.level");
    const Image& l0 = p0.level(level);
    const Image& l1 = p1.level(level);
    if (level == levels - 1) {
      u = FlowField(l0.rows(), l0.cols());
    } else {
      u = upsample_flow(u, l0.rows(), l0.cols());
    }

    for (int w = 0; w < params.warps; ++w) {
      const telemetry::TraceSpan warp_span("tvl1.warp");
      const FlowField u0 = u;
      const WarpResult wr = [&] {
        const telemetry::TraceSpan span("tvl1.warp_gradients");
        return warp_with_gradients(l1, u0);
      }();
      const ThresholdInputs in{l0,   wr.warped,     wr.grad, u0,
                               u,    params.lambda, params.chambolle.theta};
      const FlowField v = [&] {
        const telemetry::TraceSpan span("tvl1.threshold");
        return threshold_step(in);
      }();

      total_clock.lap();  // exclude warp/threshold time from the inner figure
      {
        const telemetry::TraceSpan span("tvl1.chambolle_inner");
        inner_iters += inner_solve(v.u1, params, u.u1, inner_scratch,
                                   resident_u1);
        inner_iters += inner_solve(v.u2, params, u.u2, inner_scratch,
                                   resident_u2);
      }
      chambolle_seconds += total_clock.lap();

      if (params.median_filtering) {
        const telemetry::TraceSpan span("tvl1.median_filter");
        u = median_filter_flow(u);
      }
    }
  }

  if (stats != nullptr) {
    stats->total_seconds = total_clock.seconds();
    stats->chambolle_seconds = chambolle_seconds;
    stats->chambolle_inner_iterations = inner_iters;
    stats->levels_processed = levels;
  }
  static telemetry::Counter& c_flows =
      telemetry::registry().counter("tvl1.flows");
  static telemetry::Counter& c_warps =
      telemetry::registry().counter("tvl1.warps");
  static telemetry::Counter& c_levels =
      telemetry::registry().counter("tvl1.levels");
  c_flows.add(1);
  c_warps.add(static_cast<std::uint64_t>(levels) *
              static_cast<std::uint64_t>(params.warps));
  c_levels.add(static_cast<std::uint64_t>(levels));
  return u;
}

}  // namespace

void Tvl1Params::validate() const {
  // NaN passes every <= comparison; screen it explicitly (see
  // ChambolleParams::validate).
  if (!std::isfinite(lambda))
    throw std::invalid_argument("Tvl1Params: non-finite lambda");
  if (lambda <= 0.f) throw std::invalid_argument("Tvl1Params: lambda <= 0");
  if (pyramid_levels < 1)
    throw std::invalid_argument("Tvl1Params: pyramid_levels < 1");
  if (warps < 1) throw std::invalid_argument("Tvl1Params: warps < 1");
  chambolle.validate();
  if (solver == InnerSolver::kTiled || solver == InnerSolver::kResident)
    tiled.validate();
  if (adaptive_stopping) {
    if (solver != InnerSolver::kResident)
      throw std::invalid_argument(
          "Tvl1Params: adaptive_stopping requires the resident solver");
    // max_passes <= 0 is the "fixed budget" sentinel, resolved per solve;
    // validate the rest.
    ResidentAdaptiveOptions check = adaptive;
    if (check.max_passes <= 0) check.max_passes = 1;
    check.validate();
  }
  if (multilevel.enabled()) {
    if (!adaptive_stopping)
      throw std::invalid_argument(
          "Tvl1Params: multilevel correction requires adaptive_stopping "
          "(the resident solver's run_multilevel path)");
    multilevel.validate();
  }
}

FlowField compute_flow(const Image& i0, const Image& i1,
                       const Tvl1Params& params, Tvl1Stats* stats) {
  params.validate();
  if (!i0.same_shape(i1))
    throw std::invalid_argument("compute_flow: frame shape mismatch");
  if (i0.rows() < 2 || i0.cols() < 2)
    throw std::invalid_argument("compute_flow: frames must be at least 2x2");
  require_finite(i0, "compute_flow: frame0");
  require_finite(i1, "compute_flow: frame1");

  const telemetry::TraceSpan flow_span("tvl1.compute_flow");
  // One stopwatch with lap() replaces the former per-warp throwaway
  // stopwatches; phase boundaries come from lap-to-lap deltas.
  Stopwatch total_clock;

  // The two pyramids are independent; build them concurrently on the
  // session's pool (frame-rate service work, not worth a spawn).
  std::optional<Pyramid> p0_storage, p1_storage;
  pool_for(params).parallel_for(
      2, 2, [&](std::size_t begin, std::size_t end, int) {
        for (std::size_t i = begin; i < end; ++i) {
          const telemetry::TraceSpan span("tvl1.pyramid");
          if (i == 0)
            p0_storage.emplace(normalize(i0), params.pyramid_levels);
          else
            p1_storage.emplace(normalize(i1), params.pyramid_levels);
        }
      });
  return flow_from_pyramids(*p0_storage, *p1_storage, params, stats,
                            total_clock);
}

FlowField compute_flow(const Pyramid& p0, const Pyramid& p1,
                       const Tvl1Params& params, Tvl1Stats* stats) {
  params.validate();
  if (p0.levels() < 1 || p1.levels() < 1)
    throw std::invalid_argument("compute_flow: empty pyramid");
  if (!p0.level(0).same_shape(p1.level(0)))
    throw std::invalid_argument("compute_flow: pyramid base shape mismatch");

  const telemetry::TraceSpan flow_span("tvl1.compute_flow");
  Stopwatch total_clock;
  return flow_from_pyramids(p0, p1, params, stats, total_clock);
}

FlowSession::FlowSession(const Tvl1Params& params) : params_(params) {
  params_.validate();
}

std::optional<FlowField> FlowSession::push_frame(const Image& frame,
                                                Tvl1Stats* stats) {
  if (frame.rows() < 2 || frame.cols() < 2)
    throw std::invalid_argument("FlowSession: frames must be at least 2x2");
  require_finite(frame, "FlowSession: frame");
  if (prev_.has_value() && !frame.same_shape(prev_->level(0)))
    throw std::invalid_argument(
        "FlowSession: frame shape changed mid-session (reset() first)");

  Pyramid pyr = [&] {
    const telemetry::TraceSpan span("tvl1.pyramid");
    return Pyramid(normalize(frame), params_.pyramid_levels);
  }();
  if (!prev_.has_value()) {
    prev_.emplace(std::move(pyr));
    frames_ = 1;
    if (stats != nullptr) *stats = Tvl1Stats{};
    return std::nullopt;
  }
  FlowField flow = compute_flow(*prev_, pyr, params_, stats);
  prev_.emplace(std::move(pyr));
  ++frames_;
  return flow;
}

void FlowSession::reset() {
  prev_.reset();
  frames_ = 0;
}

}  // namespace chambolle::tvl1
