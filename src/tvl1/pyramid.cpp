#include "tvl1/pyramid.hpp"

#include <stdexcept>

#include "grid/transfer.hpp"

namespace chambolle::tvl1 {

// downsample2 / upsample_to are thin wrappers over the shared grid-transfer
// module (grid/transfer.hpp) since the resident engine's coarse-grid
// correction started needing the same operators: one definition of the
// restriction convention, one set of invariant tests.  The shared ops keep
// the exact historical arithmetic, so the rebased pyramid is bit-identical
// to its pre-refactor output (pinned by tests/grid_transfer_test.cpp).

Image downsample2(const Image& img) { return grid::restrict_half(img); }

Image upsample_to(const Image& img, int rows, int cols) {
  Image out;
  grid::prolong_bilinear_into(img, rows, cols, out);
  return out;
}

FlowField upsample_flow(const FlowField& flow, int rows, int cols) {
  FlowField out;
  const float scale_c = static_cast<float>(cols) / static_cast<float>(flow.cols());
  const float scale_r = static_cast<float>(rows) / static_cast<float>(flow.rows());
  out.u1 = upsample_to(flow.u1, rows, cols);
  out.u2 = upsample_to(flow.u2, rows, cols);
  for (float& v : out.u1) v *= scale_c;
  for (float& v : out.u2) v *= scale_r;
  return out;
}

Pyramid::Pyramid(const Image& base, int max_levels, int min_dim) {
  if (max_levels < 1) throw std::invalid_argument("Pyramid: max_levels < 1");
  if (base.rows() < 1 || base.cols() < 1)
    throw std::invalid_argument("Pyramid: empty base image");
  levels_.push_back(base);
  while (static_cast<int>(levels_.size()) < max_levels) {
    const Image& prev = levels_.back();
    if (grid::coarse_extent(prev.rows()) < min_dim ||
        grid::coarse_extent(prev.cols()) < min_dim)
      break;
    levels_.push_back(downsample2(prev));
  }
}

}  // namespace chambolle::tvl1
