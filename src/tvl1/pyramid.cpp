#include "tvl1/pyramid.hpp"

#include <algorithm>
#include <stdexcept>

namespace chambolle::tvl1 {

Image downsample2(const Image& img) {
  const int rows = (img.rows() + 1) / 2;
  const int cols = (img.cols() + 1) / 2;
  Image out(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const int r0 = 2 * r, c0 = 2 * c;
      const int r1 = std::min(r0 + 1, img.rows() - 1);
      const int c1 = std::min(c0 + 1, img.cols() - 1);
      out(r, c) = 0.25f * (img(r0, c0) + img(r0, c1) + img(r1, c0) + img(r1, c1));
    }
  return out;
}

Image upsample_to(const Image& img, int rows, int cols) {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("upsample_to: empty target");
  Image out(rows, cols);
  const float sr = static_cast<float>(img.rows()) / static_cast<float>(rows);
  const float sc = static_cast<float>(img.cols()) / static_cast<float>(cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      // Sample at the source location of this target pixel's center.
      const float fr = (static_cast<float>(r) + 0.5f) * sr - 0.5f;
      const float fc = (static_cast<float>(c) + 0.5f) * sc - 0.5f;
      const int r0 = static_cast<int>(std::floor(fr));
      const int c0 = static_cast<int>(std::floor(fc));
      const float wr = fr - static_cast<float>(r0);
      const float wc = fc - static_cast<float>(c0);
      const auto sample = [&](int rr, int cc) {
        rr = std::clamp(rr, 0, img.rows() - 1);
        cc = std::clamp(cc, 0, img.cols() - 1);
        return img(rr, cc);
      };
      out(r, c) = (1.f - wr) * ((1.f - wc) * sample(r0, c0) + wc * sample(r0, c0 + 1)) +
                  wr * ((1.f - wc) * sample(r0 + 1, c0) + wc * sample(r0 + 1, c0 + 1));
    }
  return out;
}

FlowField upsample_flow(const FlowField& flow, int rows, int cols) {
  FlowField out;
  const float scale_c = static_cast<float>(cols) / static_cast<float>(flow.cols());
  const float scale_r = static_cast<float>(rows) / static_cast<float>(flow.rows());
  out.u1 = upsample_to(flow.u1, rows, cols);
  out.u2 = upsample_to(flow.u2, rows, cols);
  for (float& v : out.u1) v *= scale_c;
  for (float& v : out.u2) v *= scale_r;
  return out;
}

Pyramid::Pyramid(const Image& base, int max_levels, int min_dim) {
  if (max_levels < 1) throw std::invalid_argument("Pyramid: max_levels < 1");
  if (base.rows() < 1 || base.cols() < 1)
    throw std::invalid_argument("Pyramid: empty base image");
  levels_.push_back(base);
  while (static_cast<int>(levels_.size()) < max_levels) {
    const Image& prev = levels_.back();
    if ((prev.rows() + 1) / 2 < min_dim || (prev.cols() + 1) / 2 < min_dim)
      break;
    levels_.push_back(downsample2(prev));
  }
}

}  // namespace chambolle::tvl1
