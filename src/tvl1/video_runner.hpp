// video_runner.hpp — video-rate optical flow on the simulated accelerator.
//
// The product-level composition the paper's fps numbers imply: a stream of
// frames enters, the host runs the TV-L1 outer loop, every Chambolle solve
// goes through the two-window accelerator, and the dual state is warm-
// started from the previous frame (temporal coherence; see bench/warm_start)
// so the per-frame iteration budget can be cut without losing quality.
// Reports per-pair flows plus the aggregate device-cycle budget.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/accelerator.hpp"
#include "tvl1/tvl1.hpp"

namespace chambolle::tvl1 {

struct VideoRunnerOptions {
  Tvl1Params tvl1{};
  hw::ArchConfig arch{};
  /// Re-seed each frame's finest-level dual state from the previous frame.
  bool warm_start = true;

  void validate() const;
};

struct VideoRunnerResult {
  std::vector<FlowField> flows;      ///< one per consecutive frame pair
  std::uint64_t device_cycles = 0;   ///< total accelerator cycles
  int solves = 0;                    ///< Chambolle solves dispatched

  /// Sustained flow fields per second at the configured clock.
  [[nodiscard]] double device_fps(double clock_mhz) const {
    if (flows.empty() || device_cycles == 0) return 0.0;
    const double seconds =
        static_cast<double>(device_cycles) / (clock_mhz * 1e6);
    return static_cast<double>(flows.size()) / seconds;
  }
};

/// Processes consecutive pairs of `frames` (size >= 2, uniform shape).
[[nodiscard]] VideoRunnerResult run_video(const std::vector<Image>& frames,
                                          const VideoRunnerOptions& options);

}  // namespace chambolle::tvl1
