// tvl1.hpp — the complete TV-L1 optical-flow pipeline (Zach et al. 2007),
// the numerical scheme whose inner Chambolle solver the paper accelerates.
//
// Structure: coarse-to-fine pyramid; per level, several warping iterations;
// per warp, a thresholding step producing the support field v followed by a
// Chambolle solve producing u from v (Section II-A).  The inner solver is
// pluggable: the sequential float reference, the tiled parallel solver
// (Section III), or the bit-accurate fixed-point model of the hardware.
#pragma once

#include "chambolle/params.hpp"
#include "chambolle/resident_tiled.hpp"
#include "chambolle/tiled_solver.hpp"
#include "common/image.hpp"

namespace chambolle::tvl1 {

enum class InnerSolver {
  kReference,  ///< sequential full-frame float solver
  kTiled,      ///< loop-decomposition + sliding-window parallel solver
  kResident,   ///< resident-tile engine with halo exchange (no reloads)
  kFixed,      ///< bit-accurate fixed-point model of the FPGA datapath
};

struct Tvl1Params {
  /// Data-term weight (images are normalized to [0,1] internally, so this is
  /// in the customary range of the literature).
  float lambda = 25.f;
  /// Pyramid depth; 1 disables coarse-to-fine.
  int pyramid_levels = 4;
  /// Warping (outer) iterations per pyramid level.
  int warps = 5;
  /// Inner Chambolle configuration (theta, tau, iterations per warp).
  ChambolleParams chambolle{0.25f, 0.0625f, 30};
  InnerSolver solver = InnerSolver::kReference;
  /// Tiled-solver options, used when solver == kTiled or kResident.
  TiledSolverOptions tiled{};
  /// kResident only: keep the dual fields resident across warps of a level
  /// instead of zeroing them per warp.  Off by default so the default
  /// results are bit-identical to every other inner solver; on, the duals
  /// warm-start each warp from the previous one (often fewer effective
  /// iterations needed, but numerically a different — not wrong — solve).
  bool warm_start_duals = false;
  /// kResident only: per-tile adaptive early stopping — each inner solve
  /// runs the engine's run_adaptive() with `adaptive` below instead of the
  /// fixed chambolle.iterations budget, so tiles whose duals have stilled
  /// (smooth/static flow regions) stop burning passes.  Off by default so
  /// the default results are bit-identical to every other inner solver.
  bool adaptive_stopping = false;
  /// Adaptive settings (used when adaptive_stopping).  adaptive.max_passes
  /// <= 0 means "the fixed budget": ceil(chambolle.iterations /
  /// tiled.merge_iterations), so adaptive never does more work than fixed.
  ResidentAdaptiveOptions adaptive{1e-4f, 2, 0};
  /// kResident + adaptive_stopping only: periodic coarse-grid correction
  /// composed with the adaptive schedule — each inner solve runs the
  /// engine's run_multilevel() instead of run_adaptive().  Disabled by
  /// default (period = 0 here, overriding MultilevelOptions' own default),
  /// which is bit-identical to plain adaptive stopping.
  MultilevelOptions multilevel{/*period=*/0};
  /// Median-filter the flow between warps (Wedel et al. 2009 refinement;
  /// false reproduces the paper's pipeline).
  bool median_filtering = false;

  void validate() const;
};

/// Phase timing of one compute_flow call; reproduces the paper's profiling
/// observation that ~90% of TV-L1 time is spent inside Chambolle.
struct Tvl1Stats {
  double total_seconds = 0.0;
  double chambolle_seconds = 0.0;
  long long chambolle_inner_iterations = 0;  ///< summed over warps & levels
  int levels_processed = 0;

  [[nodiscard]] double chambolle_fraction() const {
    return total_seconds > 0.0 ? chambolle_seconds / total_seconds : 0.0;
  }
};

/// Estimates the optical flow from i0 to i1.  Images must share a shape with
/// at least 2x2 pixels; intensities are interpreted on [0, 255].
[[nodiscard]] FlowField compute_flow(const Image& i0, const Image& i1,
                                     const Tvl1Params& params,
                                     Tvl1Stats* stats = nullptr);

}  // namespace chambolle::tvl1
