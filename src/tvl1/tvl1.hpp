// tvl1.hpp — the complete TV-L1 optical-flow pipeline (Zach et al. 2007),
// the numerical scheme whose inner Chambolle solver the paper accelerates.
//
// Structure: coarse-to-fine pyramid; per level, several warping iterations;
// per warp, a thresholding step producing the support field v followed by a
// Chambolle solve producing u from v (Section II-A).  The inner solver is
// pluggable: the sequential float reference, the tiled parallel solver
// (Section III), or the bit-accurate fixed-point model of the hardware.
#pragma once

#include <optional>

#include "chambolle/params.hpp"
#include "chambolle/resident_tiled.hpp"
#include "chambolle/tiled_solver.hpp"
#include "common/image.hpp"
#include "tvl1/pyramid.hpp"

namespace chambolle::tvl1 {

enum class InnerSolver {
  kReference,  ///< sequential full-frame float solver
  kTiled,      ///< loop-decomposition + sliding-window parallel solver
  kResident,   ///< resident-tile engine with halo exchange (no reloads)
  kFixed,      ///< bit-accurate fixed-point model of the FPGA datapath
};

struct Tvl1Params {
  /// Data-term weight (images are normalized to [0,1] internally, so this is
  /// in the customary range of the literature).
  float lambda = 25.f;
  /// Pyramid depth; 1 disables coarse-to-fine.
  int pyramid_levels = 4;
  /// Warping (outer) iterations per pyramid level.
  int warps = 5;
  /// Inner Chambolle configuration (theta, tau, iterations per warp).
  ChambolleParams chambolle{0.25f, 0.0625f, 30};
  InnerSolver solver = InnerSolver::kReference;
  /// Tiled-solver options, used when solver == kTiled or kResident.
  TiledSolverOptions tiled{};
  /// kResident only: keep the dual fields resident across warps of a level
  /// instead of zeroing them per warp.  Off by default so the default
  /// results are bit-identical to every other inner solver; on, the duals
  /// warm-start each warp from the previous one (often fewer effective
  /// iterations needed, but numerically a different — not wrong — solve).
  bool warm_start_duals = false;
  /// kResident only: per-tile adaptive early stopping — each inner solve
  /// runs the engine's run_adaptive() with `adaptive` below instead of the
  /// fixed chambolle.iterations budget, so tiles whose duals have stilled
  /// (smooth/static flow regions) stop burning passes.  Off by default so
  /// the default results are bit-identical to every other inner solver.
  bool adaptive_stopping = false;
  /// Adaptive settings (used when adaptive_stopping).  adaptive.max_passes
  /// <= 0 means "the fixed budget": ceil(chambolle.iterations /
  /// tiled.merge_iterations), so adaptive never does more work than fixed.
  ResidentAdaptiveOptions adaptive{1e-4f, 2, 0};
  /// kResident + adaptive_stopping only: periodic coarse-grid correction
  /// composed with the adaptive schedule — each inner solve runs the
  /// engine's run_multilevel() instead of run_adaptive().  Disabled by
  /// default (period = 0 here, overriding MultilevelOptions' own default),
  /// which is bit-identical to plain adaptive stopping.
  MultilevelOptions multilevel{/*period=*/0};
  /// Median-filter the flow between warps (Wedel et al. 2009 refinement;
  /// false reproduces the paper's pipeline).
  bool median_filtering = false;

  void validate() const;
};

/// Phase timing of one compute_flow call; reproduces the paper's profiling
/// observation that ~90% of TV-L1 time is spent inside Chambolle.
struct Tvl1Stats {
  double total_seconds = 0.0;
  double chambolle_seconds = 0.0;
  long long chambolle_inner_iterations = 0;  ///< summed over warps & levels
  int levels_processed = 0;

  [[nodiscard]] double chambolle_fraction() const {
    return total_seconds > 0.0 ? chambolle_seconds / total_seconds : 0.0;
  }
};

/// Estimates the optical flow from i0 to i1.  Images must share a shape with
/// at least 2x2 pixels; intensities are interpreted on [0, 255].
[[nodiscard]] FlowField compute_flow(const Image& i0, const Image& i1,
                                     const Tvl1Params& params,
                                     Tvl1Stats* stats = nullptr);

/// Pyramid-reusing form: identical numerics to compute_flow(i0, i1, ...)
/// when the pyramids were built from the NORMALIZED frames (intensities
/// divided by 255, as compute_flow does internally) with
/// params.pyramid_levels levels.  This is the streaming hot path: in a
/// video session every interior frame is frame1 of one pair and frame0 of
/// the next, so caching its pyramid halves the per-pair pyramid work —
/// FlowSession below does exactly that.
[[nodiscard]] FlowField compute_flow(const Pyramid& p0, const Pyramid& p1,
                                     const Tvl1Params& params,
                                     Tvl1Stats* stats = nullptr);

/// Per-stream flow state for a video session: feeds frames one at a time
/// and keeps the previous frame's pyramid cached across calls, so the
/// steady state builds one pyramid per frame instead of two per pair.
/// This is the per-session object the serving layer (src/serving/)
/// checks out onto fleet engines; the pool its solves run on is
/// re-targetable per frame because a session may be scheduled onto a
/// different engine slot every time.
class FlowSession {
 public:
  /// Validates and captures the parameters for the whole stream.
  explicit FlowSession(const Tvl1Params& params);

  /// Feeds the next frame.  The first frame primes the session (builds and
  /// caches its pyramid) and returns nullopt; every later frame returns the
  /// flow from the previous frame to this one.  Frames must keep one shape
  /// for the session's lifetime.  Bit-identical to running
  /// compute_flow(prev, frame, params) on each consecutive pair.
  std::optional<FlowField> push_frame(const Image& frame,
                                      Tvl1Stats* stats = nullptr);

  /// Frames accepted so far (flows produced = max(0, frames() - 1)).
  [[nodiscard]] int frames() const { return frames_; }

  /// Drops the cached pyramid: the next frame primes a fresh stream (scene
  /// cut / seek).  Parameters are kept.
  void reset();

  /// Re-targets the pool the session's solves run on (nullptr =
  /// default_pool()).  The serving layer sets this at every engine-slot
  /// checkout; the pointer must outlive the next push_frame.
  void set_pool(parallel::ThreadPool* pool) { params_.tiled.pool = pool; }

  [[nodiscard]] const Tvl1Params& params() const { return params_; }

 private:
  Tvl1Params params_;
  std::optional<Pyramid> prev_;  ///< previous frame's normalized pyramid
  int frames_ = 0;
};

}  // namespace chambolle::tvl1
