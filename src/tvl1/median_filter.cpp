#include "tvl1/median_filter.hpp"

#include <algorithm>
#include <array>

namespace chambolle::tvl1 {

Matrix<float> median3x3(const Matrix<float>& in) {
  const int rows = in.rows(), cols = in.cols();
  Matrix<float> out(rows, cols);
  std::array<float, 9> window;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      int k = 0;
      for (int dr = -1; dr <= 1; ++dr)
        for (int dc = -1; dc <= 1; ++dc) {
          const int rr = std::clamp(r + dr, 0, rows - 1);
          const int cc = std::clamp(c + dc, 0, cols - 1);
          window[static_cast<std::size_t>(k++)] = in(rr, cc);
        }
      std::nth_element(window.begin(), window.begin() + 4, window.end());
      out(r, c) = window[4];
    }
  return out;
}

FlowField median_filter_flow(const FlowField& flow) {
  FlowField out;
  out.u1 = median3x3(flow.u1);
  out.u2 = median3x3(flow.u2);
  return out;
}

}  // namespace chambolle::tvl1
