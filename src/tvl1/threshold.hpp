// threshold.hpp — the TV-L1 thresholding step.
//
// "a support variable v = (v1, v2) is defined using a thresholding function
//  of I1 and of the value of u computed at the previous level" (Section II-A).
// Concretely (Zach et al. 2007): with the linearized residual
//     rho(u) = I1w + <g, u - u0> - I0,       g = grad I1w,
// the pointwise minimizer of  lambda*|rho(v)| + 1/(2*theta)|v - u|^2  is
//     v = u + lambda*theta*g          if rho(u) < -lambda*theta*|g|^2
//     v = u - lambda*theta*g          if rho(u) >  lambda*theta*|g|^2
//     v = u - rho(u)*g/|g|^2          otherwise.
#pragma once

#include "common/image.hpp"
#include "tvl1/warp.hpp"

namespace chambolle::tvl1 {

struct ThresholdInputs {
  const Image& i0;        ///< reference frame
  const Image& i1_warped; ///< I1 warped by u0
  const Gradients& grad;  ///< gradients of the warped I1
  const FlowField& u0;    ///< linearization point
  const FlowField& u;     ///< current flow estimate
  float lambda;           ///< data weight
  float theta;            ///< coupling
};

/// Evaluates rho(u) pointwise.
[[nodiscard]] Matrix<float> residual(const ThresholdInputs& in);

/// The thresholding (shrink) step; returns the support field v.
[[nodiscard]] FlowField threshold_step(const ThresholdInputs& in);

}  // namespace chambolle::tvl1
