#include "tvl1/accel_backend.hpp"

#include <stdexcept>

#include "tvl1/median_filter.hpp"
#include "tvl1/pyramid.hpp"
#include "tvl1/threshold.hpp"
#include "tvl1/warp.hpp"

namespace chambolle::tvl1 {
namespace {

Image normalize(const Image& img) {
  Image out = img;
  for (float& v : out) v *= (1.f / 255.f);
  return out;
}

}  // namespace

FlowField compute_flow_accelerated(const Image& i0, const Image& i1,
                                   const Tvl1Params& params,
                                   hw::ChambolleAccelerator& accelerator,
                                   AccelTvl1Stats* stats) {
  params.validate();
  if (!i0.same_shape(i1))
    throw std::invalid_argument("compute_flow_accelerated: shape mismatch");
  if (i0.rows() < 2 || i0.cols() < 2)
    throw std::invalid_argument("compute_flow_accelerated: frames >= 2x2");

  std::uint64_t device_cycles = 0;
  int solves = 0;

  const Pyramid p0(normalize(i0), params.pyramid_levels);
  const Pyramid p1(normalize(i1), params.pyramid_levels);
  const int levels = std::min(p0.levels(), p1.levels());

  FlowField u;
  for (int level = levels - 1; level >= 0; --level) {
    const Image& l0 = p0.level(level);
    const Image& l1 = p1.level(level);
    if (level == levels - 1)
      u = FlowField(l0.rows(), l0.cols());
    else
      u = upsample_flow(u, l0.rows(), l0.cols());

    for (int w = 0; w < params.warps; ++w) {
      const FlowField u0 = u;
      const WarpResult wr = warp_with_gradients(l1, u0);
      const ThresholdInputs in{l0,   wr.warped,     wr.grad, u0,
                               u,    params.lambda, params.chambolle.theta};
      const FlowField v = threshold_step(in);

      const auto result = accelerator.solve(v, params.chambolle);
      u = result.u;
      device_cycles += result.stats.total_cycles;
      ++solves;

      if (params.median_filtering) u = median_filter_flow(u);
    }
  }

  if (stats != nullptr) {
    stats->device_cycles = device_cycles;
    stats->solves = solves;
  }
  return u;
}

}  // namespace chambolle::tvl1
