#include "tvl1/accel_backend.hpp"

#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "tvl1/median_filter.hpp"
#include "tvl1/pyramid.hpp"
#include "tvl1/threshold.hpp"
#include "tvl1/warp.hpp"

namespace chambolle::tvl1 {
namespace {

Image normalize(const Image& img) {
  Image out = img;
  for (float& v : out) v *= (1.f / 255.f);
  return out;
}

}  // namespace

FlowField compute_flow_accelerated(const Image& i0, const Image& i1,
                                   const Tvl1Params& params,
                                   hw::ChambolleAccelerator& accelerator,
                                   AccelTvl1Stats* stats) {
  params.validate();
  if (!i0.same_shape(i1))
    throw std::invalid_argument("compute_flow_accelerated: shape mismatch");
  if (i0.rows() < 2 || i0.cols() < 2)
    throw std::invalid_argument("compute_flow_accelerated: frames >= 2x2");

  const telemetry::TraceSpan flow_span("tvl1.compute_flow_accelerated");
  std::uint64_t device_cycles = 0;
  int solves = 0;

  const Pyramid p0 = [&] {
    const telemetry::TraceSpan span("tvl1.pyramid");
    return Pyramid(normalize(i0), params.pyramid_levels);
  }();
  const Pyramid p1 = [&] {
    const telemetry::TraceSpan span("tvl1.pyramid");
    return Pyramid(normalize(i1), params.pyramid_levels);
  }();
  const int levels = std::min(p0.levels(), p1.levels());

  FlowField u;
  for (int level = levels - 1; level >= 0; --level) {
    const telemetry::TraceSpan level_span("tvl1.level");
    const Image& l0 = p0.level(level);
    const Image& l1 = p1.level(level);
    if (level == levels - 1)
      u = FlowField(l0.rows(), l0.cols());
    else
      u = upsample_flow(u, l0.rows(), l0.cols());

    for (int w = 0; w < params.warps; ++w) {
      const telemetry::TraceSpan warp_span("tvl1.warp");
      const FlowField u0 = u;
      const WarpResult wr = [&] {
        const telemetry::TraceSpan span("tvl1.warp_gradients");
        return warp_with_gradients(l1, u0);
      }();
      const ThresholdInputs in{l0,   wr.warped,     wr.grad, u0,
                               u,    params.lambda, params.chambolle.theta};
      const FlowField v = [&] {
        const telemetry::TraceSpan span("tvl1.threshold");
        return threshold_step(in);
      }();

      const auto result = [&] {
        const telemetry::TraceSpan span("tvl1.chambolle_inner");
        return accelerator.solve(v, params.chambolle);
      }();
      u = result.u;
      device_cycles += result.stats.total_cycles;
      ++solves;

      if (params.median_filtering) {
        const telemetry::TraceSpan span("tvl1.median_filter");
        u = median_filter_flow(u);
      }
    }
  }

  if (stats != nullptr) {
    stats->device_cycles = device_cycles;
    stats->solves = solves;
  }
  // hw.* per-solve counters are recorded inside ChambolleAccelerator::solve;
  // here we only account the pipeline-level aggregate.
  static telemetry::Counter& c_flows =
      telemetry::registry().counter("tvl1.accel.flows");
  static telemetry::Counter& c_solves =
      telemetry::registry().counter("tvl1.accel.solves");
  static telemetry::Counter& c_cycles =
      telemetry::registry().counter("tvl1.accel.device_cycles");
  c_flows.add(1);
  c_solves.add(static_cast<std::uint64_t>(solves));
  c_cycles.add(device_cycles);
  return u;
}

}  // namespace chambolle::tvl1
