#include "tvl1/consistency.hpp"

#include <cmath>
#include <stdexcept>

#include "tvl1/warp.hpp"

namespace chambolle::tvl1 {

ConsistencyResult check_consistency(const FlowField& forward,
                                    const FlowField& backward,
                                    float threshold) {
  if (!forward.same_shape(backward))
    throw std::invalid_argument("check_consistency: shape mismatch");
  if (threshold <= 0.f)
    throw std::invalid_argument("check_consistency: threshold <= 0");

  const int rows = forward.rows(), cols = forward.cols();
  ConsistencyResult out;
  out.mismatch.resize(rows, cols);
  out.occluded.resize(rows, cols);
  long long flagged = 0;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const float fx = forward.u1(r, c), fy = forward.u2(r, c);
      // Backward flow sampled where the forward flow lands.
      const float bx = sample_bilinear(backward.u1, static_cast<float>(r) + fy,
                                       static_cast<float>(c) + fx);
      const float by = sample_bilinear(backward.u2, static_cast<float>(r) + fy,
                                       static_cast<float>(c) + fx);
      const float ex = fx + bx, ey = fy + by;  // should cancel
      const float m = std::sqrt(ex * ex + ey * ey);
      out.mismatch(r, c) = m;
      const bool bad = m > threshold;
      out.occluded(r, c) = bad ? 1 : 0;
      if (bad) ++flagged;
    }
  out.occluded_fraction =
      static_cast<double>(flagged) / (static_cast<double>(rows) * cols);
  return out;
}

ConsistencyResult bidirectional_check(const Image& i0, const Image& i1,
                                      const Tvl1Params& params,
                                      float threshold) {
  const FlowField fwd = compute_flow(i0, i1, params);
  const FlowField bwd = compute_flow(i1, i0, params);
  return check_consistency(fwd, bwd, threshold);
}

}  // namespace chambolle::tvl1
