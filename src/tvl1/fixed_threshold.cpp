#include "tvl1/fixed_threshold.hpp"

#include "fixedpoint/qformat.hpp"

namespace chambolle::tvl1 {

FixedThresholdOut fixed_threshold_point(std::int32_t rho, std::int32_t gx,
                                        std::int32_t gy, std::int32_t lt) {
  FixedThresholdOut out;
  const std::int32_t g2 = fx::mul(gx, gx) + fx::mul(gy, gy);
  if (g2 == 0) return out;  // textureless: every branch degenerates to 0
  const std::int32_t lim = fx::mul(lt, g2);
  if (rho < -lim) {
    out.branch = -1;
    out.dx = fx::mul(lt, gx);
    out.dy = fx::mul(lt, gy);
  } else if (rho > lim) {
    out.branch = 1;
    out.dx = -fx::mul(lt, gx);
    out.dy = -fx::mul(lt, gy);
  } else {
    out.branch = 0;
    // -rho * g / |g|^2: one divide, like the PE-V's projection divide.
    out.dx = -fx::mul(fx::div(rho, g2), gx);
    out.dy = -fx::mul(fx::div(rho, g2), gy);
  }
  return out;
}

FlowField fixed_threshold_step(const ThresholdInputs& in) {
  // On chip, rho and the gradients arrive in NATIVE 8-bit intensity units
  // (the TV-L1 host code normalizes to [0,1], which would waste the Q24.8
  // fractional bits); rescaling by 255 here and dividing lambda*theta by the
  // same factor leaves the step mathematically identical while keeping every
  // operand in the format's sweet spot.  The middle branch's rho*g/|g|^2 is
  // scale-invariant, so only the saturation limit needs the compensation.
  constexpr float kScale = 255.f;
  const Matrix<float> rho = residual(in);
  const std::int32_t lt = fx::to_fixed(static_cast<double>(in.lambda) *
                                       static_cast<double>(in.theta) /
                                       static_cast<double>(kScale));
  FlowField v(in.i0.rows(), in.i0.cols());
  for (int r = 0; r < v.rows(); ++r)
    for (int c = 0; c < v.cols(); ++c) {
      const FixedThresholdOut out = fixed_threshold_point(
          fx::to_fixed(rho(r, c) * kScale),
          fx::to_fixed(in.grad.gx(r, c) * kScale),
          fx::to_fixed(in.grad.gy(r, c) * kScale), lt);
      v.u1(r, c) = in.u.u1(r, c) + fx::to_float(out.dx);
      v.u2(r, c) = in.u.u2(r, c) + fx::to_float(out.dy);
    }
  return v;
}

}  // namespace chambolle::tvl1
