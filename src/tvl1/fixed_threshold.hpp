// fixed_threshold.hpp — the thresholding step in hardware arithmetic.
//
// The paper keeps TV-L1's outer loop (warping, thresholding) off the
// accelerator; putting the THRESHOLDING on chip is the obvious next
// integration step ("the outermost loop ... does not require any complex
// matrix operation", Section I), since it is pointwise and branch-select —
// ideal PE material.  This module implements the v-step in the same Q24.8
// fixed-point discipline as the Chambolle datapath (division-free in the
// saturation branches; one divide in the middle branch, like the PE-V), so
// its hardware cost and accuracy can be evaluated: the tests bound its
// deviation from the float step and prove branch agreement.
#pragma once

#include <cstdint>

#include "common/image.hpp"
#include "tvl1/threshold.hpp"

namespace chambolle::tvl1 {

/// Pointwise fixed-point thresholding.  All inputs/outputs are raw Q24.8.
/// Returns the v update delta (dx, dy) added to u, and the branch taken
/// (-1: rho below -lt|g|^2, +1: above +lt|g|^2, 0: middle, 2: textureless).
struct FixedThresholdOut {
  std::int32_t dx = 0;
  std::int32_t dy = 0;
  int branch = 2;
};

[[nodiscard]] FixedThresholdOut fixed_threshold_point(std::int32_t rho,
                                                      std::int32_t gx,
                                                      std::int32_t gy,
                                                      std::int32_t lt);

/// Whole-field fixed-point thresholding step, mirroring threshold_step():
/// quantizes the float inputs, runs the pointwise kernel, dequantizes.
[[nodiscard]] FlowField fixed_threshold_step(const ThresholdInputs& in);

}  // namespace chambolle::tvl1
