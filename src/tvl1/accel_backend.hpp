// accel_backend.hpp — TV-L1 with the FPGA accelerator in the loop.
//
// The paper accelerates the inner Chambolle solver and leaves the outer
// TV-L1 loop (warping, thresholding) to the host.  This module wires the
// cycle-level accelerator simulator into the TV-L1 pipeline exactly that
// way: both flow components of every warp's Chambolle solve run through the
// two-window accelerator, and the device cycles are accumulated so the run
// reports the PROJECTED ON-DEVICE TIME of the full pipeline — the number a
// system integrator would quote.
#pragma once

#include <cstdint>

#include "hw/accelerator.hpp"
#include "tvl1/tvl1.hpp"

namespace chambolle::tvl1 {

struct AccelTvl1Stats {
  /// Accelerator cycles across all levels and warps of one flow computation.
  std::uint64_t device_cycles = 0;
  /// Chambolle solves dispatched to the accelerator (levels x warps).
  int solves = 0;
  /// Projected device time for the Chambolle work at the configured clock.
  [[nodiscard]] double device_seconds(double clock_mhz) const {
    return static_cast<double>(device_cycles) / (clock_mhz * 1e6);
  }
};

/// Computes TV-L1 optical flow using a ChambolleAccelerator for every inner
/// solve.  `params.solver` is ignored (the accelerator is the solver);
/// everything else (pyramid, warps, lambda, theta, iterations) applies.
/// Numerically identical to InnerSolver::kFixed up to the identical
/// fixed-point datapath (asserted by tests).
[[nodiscard]] FlowField compute_flow_accelerated(
    const Image& i0, const Image& i1, const Tvl1Params& params,
    hw::ChambolleAccelerator& accelerator, AccelTvl1Stats* stats = nullptr);

}  // namespace chambolle::tvl1
