#include "tvl1/video_runner.hpp"

#include <optional>
#include <stdexcept>

#include "common/validation.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "tvl1/median_filter.hpp"
#include "tvl1/pyramid.hpp"
#include "tvl1/threshold.hpp"
#include "tvl1/warp.hpp"

namespace chambolle::tvl1 {
namespace {

Image normalize(const Image& img) {
  Image out = img;
  for (float& v : out) v *= (1.f / 255.f);
  return out;
}

struct DualPair {
  FlowField u1;  ///< (px, py) of component u1
  FlowField u2;
  bool valid = false;
};

}  // namespace

void VideoRunnerOptions::validate() const {
  tvl1.validate();
  arch.validate();
}

VideoRunnerResult run_video(const std::vector<Image>& frames,
                            const VideoRunnerOptions& options) {
  options.validate();
  if (frames.size() < 2)
    throw std::invalid_argument("run_video: need at least two frames");
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const Image& f = frames[i];
    if (!f.same_shape(frames.front()) || f.rows() < 2 || f.cols() < 2)
      throw std::invalid_argument("run_video: inconsistent frame shapes");
    // One bad capture would otherwise propagate NaN through every later
    // warm-started pair; name the frame so the producer can be found.
    require_finite(f, "run_video: frame " + std::to_string(i));
  }

  hw::ChambolleAccelerator accel(options.arch);
  VideoRunnerResult result;
  DualPair carry;  // finest-level dual state carried across warps and frames

  for (std::size_t pair = 0; pair + 1 < frames.size(); ++pair) {
    const telemetry::TraceSpan pair_span("video.frame_pair");
    // Both pyramids of the pair build concurrently on the resident pool —
    // per-frame host work must not spawn threads at video rate.
    std::optional<Pyramid> p0_storage, p1_storage;
    parallel::default_pool().parallel_for(
        2, 2, [&](std::size_t begin, std::size_t end, int) {
          for (std::size_t i = begin; i < end; ++i) {
            const telemetry::TraceSpan span("tvl1.pyramid");
            if (i == 0)
              p0_storage.emplace(normalize(frames[pair]),
                                 options.tvl1.pyramid_levels);
            else
              p1_storage.emplace(normalize(frames[pair + 1]),
                                 options.tvl1.pyramid_levels);
          }
        });
    const Pyramid& p0 = *p0_storage;
    const Pyramid& p1 = *p1_storage;
    const int levels = std::min(p0.levels(), p1.levels());

    FlowField u;
    for (int level = levels - 1; level >= 0; --level) {
      const telemetry::TraceSpan level_span("tvl1.level");
      const Image& l0 = p0.level(level);
      const Image& l1 = p1.level(level);
      if (level == levels - 1)
        u = FlowField(l0.rows(), l0.cols());
      else
        u = upsample_flow(u, l0.rows(), l0.cols());

      for (int w = 0; w < options.tvl1.warps; ++w) {
        const telemetry::TraceSpan warp_span("tvl1.warp");
        const FlowField u0 = u;
        const WarpResult wr = [&] {
          const telemetry::TraceSpan span("tvl1.warp_gradients");
          return warp_with_gradients(l1, u0);
        }();
        const ThresholdInputs in{l0,
                                 wr.warped,
                                 wr.grad,
                                 u0,
                                 u,
                                 options.tvl1.lambda,
                                 options.tvl1.chambolle.theta};
        const FlowField v = [&] {
          const telemetry::TraceSpan span("tvl1.threshold");
          return threshold_step(in);
        }();

        // Warm start: the FIRST finest-level solve of a pair reuses the
        // PREVIOUS pair's final dual state (temporal coherence); within a
        // pair the semantics stay identical to the cold pipeline.
        hw::AcceleratorInitialDual init;
        if (options.warm_start && level == 0 && w == 0 && carry.valid &&
            carry.u1.rows() == l0.rows() && carry.u1.cols() == l0.cols()) {
          init.u1_px = &carry.u1.u1;
          init.u1_py = &carry.u1.u2;
          init.u2_px = &carry.u2.u1;
          init.u2_py = &carry.u2.u2;
        }
        const auto solved = [&] {
          const telemetry::TraceSpan span("tvl1.chambolle_inner");
          return accel.solve(v, options.tvl1.chambolle, init);
        }();
        u = solved.u;
        result.device_cycles += solved.stats.total_cycles;
        ++result.solves;

        if (level == 0 && w == options.tvl1.warps - 1) {
          carry.u1 = solved.dual_u1;
          carry.u2 = solved.dual_u2;
          carry.valid = true;
        }
        if (options.tvl1.median_filtering) {
          const telemetry::TraceSpan span("tvl1.median_filter");
          u = median_filter_flow(u);
        }
      }
    }
    result.flows.push_back(std::move(u));
  }
  static telemetry::Counter& c_pairs =
      telemetry::registry().counter("video.frame_pairs");
  c_pairs.add(result.flows.size());
  return result;
}

}  // namespace chambolle::tvl1
