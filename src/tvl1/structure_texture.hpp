// structure_texture.hpp — structure-texture decomposition preprocessing.
//
// A standard hardening of TV-L1 against illumination changes (Wedel et al.
// 2009): split each frame into a smooth STRUCTURE part (which absorbs
// lighting and shading) and an oscillatory TEXTURE part (which carries the
// trackable detail), then estimate flow on a blend dominated by texture.
// The structure part is exactly an ROF denoising — computed here by this
// library's own Chambolle solver, so the accelerated kernel serves its own
// preprocessing (the paper's Section I lists this dual use of Chambolle).
#pragma once

#include <stdexcept>

#include "common/image.hpp"

namespace chambolle::tvl1 {

struct StructureTextureParams {
  /// ROF coupling for the structure extraction; larger = smoother structure.
  float theta = 8.f;
  /// Chambolle iterations for the structure solve.
  int iterations = 40;
  /// Output = texture + blend * structure; 0 keeps pure texture,
  /// 1 reproduces the input.
  float blend = 0.05f;

  void validate() const {
    if (theta <= 0.f)
      throw std::invalid_argument("StructureTexture: theta <= 0");
    if (iterations < 1)
      throw std::invalid_argument("StructureTexture: iterations < 1");
    if (blend < 0.f || blend > 1.f)
      throw std::invalid_argument("StructureTexture: blend outside [0,1]");
  }
};

struct StructureTexture {
  Image structure;  ///< ROF-smooth component
  Image texture;    ///< input - structure, re-centered to mid-gray
};

/// Decomposes an image (intensities on [0, 255]).
[[nodiscard]] StructureTexture decompose_structure_texture(
    const Image& img, const StructureTextureParams& params);

/// Convenience: the flow-ready preprocessed frame
/// texture + blend*structure (+ mid-gray recentering is already applied).
[[nodiscard]] Image texture_component(const Image& img,
                                      const StructureTextureParams& params);

}  // namespace chambolle::tvl1
