// warp.hpp — bilinear image warping and gradients for TV-L1.
//
// Each outer TV-L1 iteration warps I1 by the current flow estimate u0 and
// linearizes the residual rho(u) = I1(x + u0) + <grad I1(x + u0), u - u0> - I0
// around u0.  Sampling is bilinear with border clamping.
#pragma once

#include "common/image.hpp"

namespace chambolle::tvl1 {

/// Bilinear sample with clamp-to-border addressing.  (fr, fc) are fractional
/// (row, col) coordinates.
[[nodiscard]] float sample_bilinear(const Image& img, float fr, float fc);

/// Warps `img` by the flow: out(r, c) = img(r + u2(r,c), c + u1(r,c)).
[[nodiscard]] Image warp(const Image& img, const FlowField& flow);

/// Central-difference gradients (one-sided at borders).
struct Gradients {
  Matrix<float> gx;  ///< d/dcol
  Matrix<float> gy;  ///< d/drow
};
[[nodiscard]] Gradients gradients(const Image& img);

/// Warps `img` by the flow and evaluates the warped gradients by sampling the
/// source gradients at the warped positions (the standard TV-L1 choice).
struct WarpResult {
  Image warped;
  Gradients grad;
};
[[nodiscard]] WarpResult warp_with_gradients(const Image& img,
                                             const FlowField& flow);

}  // namespace chambolle::tvl1
