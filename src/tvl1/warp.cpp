#include "tvl1/warp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace chambolle::tvl1 {

float sample_bilinear(const Image& img, float fr, float fc) {
  const int r0 = static_cast<int>(std::floor(fr));
  const int c0 = static_cast<int>(std::floor(fc));
  const float wr = fr - static_cast<float>(r0);
  const float wc = fc - static_cast<float>(c0);
  const auto px = [&](int r, int c) {
    r = std::clamp(r, 0, img.rows() - 1);
    c = std::clamp(c, 0, img.cols() - 1);
    return img(r, c);
  };
  return (1.f - wr) * ((1.f - wc) * px(r0, c0) + wc * px(r0, c0 + 1)) +
         wr * ((1.f - wc) * px(r0 + 1, c0) + wc * px(r0 + 1, c0 + 1));
}

Image warp(const Image& img, const FlowField& flow) {
  if (flow.rows() != img.rows() || flow.cols() != img.cols())
    throw std::invalid_argument("warp: flow/image shape mismatch");
  Image out(img.rows(), img.cols());
  for (int r = 0; r < img.rows(); ++r)
    for (int c = 0; c < img.cols(); ++c)
      out(r, c) = sample_bilinear(img, static_cast<float>(r) + flow.u2(r, c),
                                  static_cast<float>(c) + flow.u1(r, c));
  return out;
}

Gradients gradients(const Image& img) {
  Gradients g{Matrix<float>(img.rows(), img.cols()),
              Matrix<float>(img.rows(), img.cols())};
  const int R = img.rows(), C = img.cols();
  for (int r = 0; r < R; ++r)
    for (int c = 0; c < C; ++c) {
      const int cl = std::max(c - 1, 0), cr = std::min(c + 1, C - 1);
      const int ru = std::max(r - 1, 0), rd = std::min(r + 1, R - 1);
      // One-sided at the borders (divisor matches the actual span).
      g.gx(r, c) = (img(r, cr) - img(r, cl)) / static_cast<float>(cr - cl == 0 ? 1 : cr - cl);
      g.gy(r, c) = (img(rd, c) - img(ru, c)) / static_cast<float>(rd - ru == 0 ? 1 : rd - ru);
    }
  return g;
}

WarpResult warp_with_gradients(const Image& img, const FlowField& flow) {
  WarpResult out;
  out.warped = warp(img, flow);
  const Gradients src = gradients(img);
  out.grad.gx.resize(img.rows(), img.cols());
  out.grad.gy.resize(img.rows(), img.cols());
  for (int r = 0; r < img.rows(); ++r)
    for (int c = 0; c < img.cols(); ++c) {
      const float fr = static_cast<float>(r) + flow.u2(r, c);
      const float fc = static_cast<float>(c) + flow.u1(r, c);
      out.grad.gx(r, c) = sample_bilinear(src.gx, fr, fc);
      out.grad.gy(r, c) = sample_bilinear(src.gy, fr, fc);
    }
  return out;
}

}  // namespace chambolle::tvl1
