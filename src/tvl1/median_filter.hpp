// median_filter.hpp — 3x3 median filtering of intermediate flow fields.
//
// An established refinement of the TV-L1 scheme (Wedel et al., "An improved
// algorithm for TV-L1 optical flow", 2009): median-filtering u between warps
// suppresses outliers introduced by the pointwise thresholding step without
// blurring motion boundaries.  Offered as an option of Tvl1Params — the
// paper's pipeline corresponds to the filter disabled.
#pragma once

#include "common/image.hpp"

namespace chambolle::tvl1 {

/// 3x3 median filter with clamp-to-border addressing.
[[nodiscard]] Matrix<float> median3x3(const Matrix<float>& in);

/// Applies median3x3 to both flow components.
[[nodiscard]] FlowField median_filter_flow(const FlowField& flow);

}  // namespace chambolle::tvl1
