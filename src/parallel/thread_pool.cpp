#include "parallel/thread_pool.hpp"

#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"

namespace chambolle::parallel {
namespace {

// Set while the current thread executes a region body; nested entries into
// the pool run inline on one lane instead of deadlocking on the region slot.
thread_local bool t_in_region = false;

telemetry::Counter& c_tasks() {
  static telemetry::Counter& c = telemetry::registry().counter("pool.tasks");
  return c;
}
telemetry::Counter& c_threads_created() {
  static telemetry::Counter& c =
      telemetry::registry().counter("pool.threads_created");
  return c;
}
telemetry::Counter& c_barrier_waits() {
  static telemetry::Counter& c =
      telemetry::registry().counter("pool.barrier_waits");
  return c;
}

}  // namespace

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads)
    : target_threads_(resolve_threads(threads)) {}

ThreadPool::~ThreadPool() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [&] { return !busy_; });
  busy_ = true;
  drain_workers_locked(lk);
  busy_ = false;
}

int ThreadPool::resident_workers() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::resize(int threads) {
  const int target = resolve_threads(threads);
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [&] { return !busy_; });
  target_threads_.store(target, std::memory_order_relaxed);
  if (static_cast<int>(workers_.size()) > target - 1) {
    busy_ = true;
    drain_workers_locked(lk);
    busy_ = false;
    lk.unlock();
    cv_idle_.notify_one();
  }
}

void ThreadPool::ensure_workers_locked(int needed) {
  const int have = static_cast<int>(workers_.size());
  for (int i = have; i < needed; ++i) {
    workers_.emplace_back(&ThreadPool::worker_main, this,
                          static_cast<std::size_t>(i), epoch_);
    threads_created_.fetch_add(1, std::memory_order_relaxed);
    c_threads_created().add(1);
  }
}

void ThreadPool::drain_workers_locked(std::unique_lock<std::mutex>& lk) {
  shutdown_ = true;
  cv_work_.notify_all();
  std::vector<std::thread> old = std::move(workers_);
  workers_.clear();
  lk.unlock();
  for (std::thread& t : old) t.join();
  lk.lock();
  shutdown_ = false;
}

void ThreadPool::worker_main(std::size_t index, std::uint64_t seen_epoch) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] { return shutdown_ || epoch_ != seen_epoch; });
    if (shutdown_) return;
    seen_epoch = epoch_;
    const int lane = static_cast<int>(index) + 1;
    if (lane >= job_lanes_) continue;  // spectator for this (narrower) team

    const TeamFn* fn = job_;
    const int lanes = job_lanes_;
    Barrier* bar = barrier_.get();
    lk.unlock();
    std::exception_ptr err;
    t_in_region = true;
    const int prev_lane = telemetry::profiler_set_lane(lane);
    try {
      (*fn)(lane, lanes, *bar);
    } catch (...) {
      err = std::current_exception();
    }
    telemetry::profiler_set_lane(prev_lane);
    t_in_region = false;
    lk.lock();
    if (err && !job_error_) job_error_ = err;
    if (--job_remaining_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::run_team(int lanes, const TeamFn& fn) {
  if (lanes < 1) lanes = 1;
  tasks_.fetch_add(1, std::memory_order_relaxed);
  c_tasks().add(1);

  if (lanes == 1 || t_in_region) {
    Barrier solo(1, &barrier_waits_, &c_barrier_waits());
    const bool was_in_region = t_in_region;
    t_in_region = true;
    // A nested region inlines on the caller's lane and keeps attributing
    // there; only a fresh single-lane region maps to lane 0.
    const int prev_lane =
        was_in_region ? telemetry::profiler_lane() : telemetry::profiler_set_lane(0);
    try {
      fn(0, 1, solo);
    } catch (...) {
      telemetry::profiler_set_lane(prev_lane);
      t_in_region = was_in_region;
      throw;
    }
    telemetry::profiler_set_lane(prev_lane);
    t_in_region = was_in_region;
    return;
  }

  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [&] { return !busy_; });
  busy_ = true;
  ensure_workers_locked(lanes - 1);
  if (!barrier_ || barrier_->parties() != lanes)
    barrier_ =
        std::make_unique<Barrier>(lanes, &barrier_waits_, &c_barrier_waits());
  job_ = &fn;
  job_lanes_ = lanes;
  job_remaining_ = lanes - 1;
  job_error_ = nullptr;
  ++epoch_;
  Barrier& bar = *barrier_;
  lk.unlock();
  cv_work_.notify_all();

  // The caller is lane 0 of its own team — no thread sits idle waiting.
  std::exception_ptr caller_error;
  t_in_region = true;
  const int prev_lane = telemetry::profiler_set_lane(0);
  try {
    fn(0, lanes, bar);
  } catch (...) {
    caller_error = std::current_exception();
  }
  telemetry::profiler_set_lane(prev_lane);
  t_in_region = false;

  lk.lock();
  cv_done_.wait(lk, [&] { return job_remaining_ == 0; });
  job_ = nullptr;
  const std::exception_ptr err = caller_error ? caller_error : job_error_;
  job_error_ = nullptr;
  busy_ = false;
  lk.unlock();
  cv_idle_.notify_one();
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(std::size_t n, int lanes, const RangeFn& fn,
                              std::size_t chunk) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t chunks = (n + chunk - 1) / chunk;
  int team = lanes < 1 ? 1 : lanes;
  if (static_cast<std::size_t>(team) > chunks) team = static_cast<int>(chunks);

  if (team == 1 || t_in_region) {
    tasks_.fetch_add(1, std::memory_order_relaxed);
    c_tasks().add(1);
    const int prev_lane = t_in_region ? telemetry::profiler_lane()
                                      : telemetry::profiler_set_lane(0);
    fn(0, n, 0);
    telemetry::profiler_set_lane(prev_lane);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  run_team(team, [&](int lane, int, Barrier&) {
    for (;;) {
      const std::size_t b = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (b >= n) return;
      fn(b, b + chunk < n ? b + chunk : n, lane);
    }
  });
}

ThreadPool& default_pool() {
  static ThreadPool pool(0);
  return pool;
}

void set_default_pool_threads(int threads) { default_pool().resize(threads); }

}  // namespace chambolle::parallel
