// barrier.hpp — a reusable two-phase synchronization barrier.
//
// The paper's row-parallel schedule (and any bulk-synchronous subdomain
// sweep, cf. Gilliocq-Hirtz & Belhachmi 2015) alternates compute phases that
// must be separated by a global rendezvous.  Spawning-and-joining threads at
// every phase boundary pays thread-creation cost per phase; a reusable
// barrier lets long-lived workers rendezvous in microseconds instead.
//
// This is a classic sense-reversing (generation-counted) central barrier:
// the last of `parties` arrivals flips the generation and releases everyone,
// after which the barrier is immediately reusable for the next phase — the
// "two-phase" property: arrivals for generation g+1 can never be confused
// with stragglers of generation g.
//
// Waiting is hybrid: a short bounded spin on the generation word (the common
// case when phases are balanced), then a condition-variable sleep, so the
// barrier stays cheap under load yet does not burn CPU when a phase is
// skewed or the machine is oversubscribed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace chambolle::telemetry {
class Counter;
}  // namespace chambolle::telemetry

namespace chambolle::parallel {

class Barrier {
 public:
  /// A barrier for exactly `parties` participants (>= 1).  `arrivals`, when
  /// non-null, is incremented once per arrive_and_wait() call — the hook the
  /// ThreadPool uses for its always-on `barrier_waits()` statistic;
  /// `telemetry_arrivals` mirrors the same count into a registry counter
  /// (no-op while telemetry is disabled).
  explicit Barrier(int parties, std::atomic<std::uint64_t>* arrivals = nullptr,
                   telemetry::Counter* telemetry_arrivals = nullptr);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all `parties` participants of the current generation have
  /// arrived, then releases them together.  Reusable immediately.
  void arrive_and_wait();

  [[nodiscard]] int parties() const { return parties_; }
  /// Completed rendezvous (generation flips) so far.
  [[nodiscard]] std::uint64_t generations() const {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  const int parties_;
  const int spin_rounds_;
  std::atomic<std::uint64_t>* arrivals_;
  telemetry::Counter* telemetry_arrivals_;
  std::atomic<std::uint64_t> generation_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  int arrived_ = 0;  // guarded by mu_
};

}  // namespace chambolle::parallel
