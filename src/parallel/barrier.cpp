#include "parallel/barrier.hpp"

#include <stdexcept>
#include <thread>

#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"

namespace chambolle::parallel {
namespace {

// Bounded spin before sleeping.  Phases in this codebase are a few tens of
// microseconds to a few milliseconds, so most rendezvous complete within the
// spin window — but spinning only pays when every party can actually run at
// once; on an oversubscribed machine (parties > cores) the spinners would
// just steal cycles from the stragglers, so the barrier goes straight to the
// condition variable there.
int spin_rounds_for(int parties) {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 && static_cast<unsigned>(parties) <= hw ? 4096 : 0;
}

}  // namespace

Barrier::Barrier(int parties, std::atomic<std::uint64_t>* arrivals,
                 telemetry::Counter* telemetry_arrivals)
    : parties_(parties),
      spin_rounds_(spin_rounds_for(parties)),
      arrivals_(arrivals),
      telemetry_arrivals_(telemetry_arrivals) {
  if (parties < 1) throw std::invalid_argument("Barrier: parties < 1");
}

void Barrier::arrive_and_wait() {
  if (arrivals_ != nullptr) arrivals_->fetch_add(1, std::memory_order_relaxed);
  if (telemetry_arrivals_ != nullptr) telemetry_arrivals_->add(1);
  if (parties_ == 1) {
    generation_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // The whole rendezvous (spin + sleep) is barrier-wait time for this lane.
  const telemetry::ProfScope prof(telemetry::LaneCause::kBarrierWait);

  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
  if (++arrived_ == parties_) {
    arrived_ = 0;
    generation_.store(gen + 1, std::memory_order_release);
    lk.unlock();
    cv_.notify_all();
    return;
  }
  lk.unlock();

  for (int i = 0; i < spin_rounds_; ++i) {
    if (generation_.load(std::memory_order_acquire) != gen) return;
    if ((i & 127) == 127) std::this_thread::yield();
  }
  lk.lock();
  cv_.wait(lk, [&] {
    return generation_.load(std::memory_order_acquire) != gen;
  });
}

}  // namespace chambolle::parallel
