// thread_pool.hpp — the persistent execution engine of the parallel solvers.
//
// The paper's parallelization argument (loop decomposition + sliding
// windows) makes Chambolle iterations coarsely parallel, but the original
// CPU realization here re-spawned std::threads for every tiled pass and
// twice per row-parallel iteration, so thread creation dominated exactly
// the regime the paper cares about (many small merged passes).  This pool
// keeps a process-wide set of resident workers alive across passes, solves,
// and frames: steady-state solving creates zero threads.
//
// Model: a *parallel region* engine, not a futures queue.  run_team(n, fn)
// executes fn(lane, lanes, barrier) on n lanes concurrently — the calling
// thread participates as lane 0, resident workers take lanes 1..n-1 — and
// returns when every lane has finished.  The shared Barrier (sized to the
// team) lets a region synchronize internal phases without ever joining, the
// way the row-parallel schedule alternates its Term/dual-update sweeps.
// parallel_for() layers dynamic chunked work-sharing on top for the tiled
// solver's independent-tile passes.
//
// Guarantees:
//   * workers are spawned lazily on first demand and kept resident;
//     threads_created() is observable so tests can assert "at most once";
//   * regions are serialized: concurrent callers queue, they never deadlock;
//   * nested use (a region body entering the pool again) degrades to inline
//     single-lane execution instead of deadlocking;
//   * exceptions thrown by a region body are captured and rethrown on the
//     calling thread after the team quiesces.
//
// Observability: always-on atomic counters (tasks/threads_created/
// barrier_waits) plus mirrors in the telemetry registry under `pool.*`
// (docs/observability.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/barrier.hpp"

namespace chambolle::parallel {

/// How a parallel solver executes its work-sharing loops.
enum class Execution {
  kPool,   ///< resident default-pool workers; zero steady-state thread spawns
  kSpawn,  ///< legacy spawn-and-join per pass/phase; kept as the measurable
           ///< baseline for the pooled-vs-spawn benches
};

/// Thread-count resolution shared by every parallel component: a positive
/// request wins; 0 (auto) means std::thread::hardware_concurrency(), which
/// itself may report 0 on exotic platforms and then falls back to 1.
[[nodiscard]] int resolve_threads(int requested);

/// Cache-line-padded per-lane storage — the pool's "scratch slot" idiom.
/// A region body indexes it with its lane id; padding keeps neighboring
/// lanes' scratch off each other's cache lines.  The slots outlive regions,
/// so scratch allocated once per solve is reused across every pass.
template <typename T>
class PerLane {
 public:
  explicit PerLane(int lanes)
      : slots_(static_cast<std::size_t>(lanes < 1 ? 1 : lanes)) {}

  [[nodiscard]] T& operator[](int lane) {
    return slots_[static_cast<std::size_t>(lane)].value;
  }
  [[nodiscard]] const T& operator[](int lane) const {
    return slots_[static_cast<std::size_t>(lane)].value;
  }
  [[nodiscard]] int lanes() const { return static_cast<int>(slots_.size()); }

 private:
  struct alignas(64) Slot {
    T value{};
  };
  std::vector<Slot> slots_;
};

class ThreadPool {
 public:
  /// fn(lane, lanes, barrier): lane in [0, lanes), barrier sized to lanes.
  using TeamFn = std::function<void(int, int, Barrier&)>;
  /// fn(begin, end, lane): process items [begin, end).
  using RangeFn = std::function<void(std::size_t, std::size_t, int)>;

  /// `threads` is the default team width for auto-sized work (0 = hardware
  /// concurrency).  No threads are created until the first parallel region
  /// actually needs them.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured default team width (including the calling thread).
  [[nodiscard]] int threads() const {
    return target_threads_.load(std::memory_order_relaxed);
  }

  /// Lane count for a solver-level request: a positive `requested` wins,
  /// 0 (auto) uses the pool's configured width.  This is the single
  /// replacement for the per-solver resolve_threads() helpers.
  [[nodiscard]] int lanes_for(int requested) const {
    return requested > 0 ? requested : threads();
  }

  /// Reconfigures the default width.  Waits for the pool to go idle; shrinks
  /// the resident worker set if it exceeds the new width (growth stays lazy).
  void resize(int threads);

  /// Runs fn on `lanes` lanes concurrently and returns when all have
  /// finished.  The caller executes lane 0; resident workers (spawned on
  /// demand, then reused forever) take the rest.  Safe to call from
  /// multiple threads (regions serialize) and from inside a region body
  /// (runs inline on one lane).
  void run_team(int lanes, const TeamFn& fn);

  /// Chunked dynamic parallel-for over [0, n): lanes pull `chunk`-sized
  /// index ranges from a shared cursor until exhausted.  Effective lane
  /// count is capped by the number of chunks.
  void parallel_for(std::size_t n, int lanes, const RangeFn& fn,
                    std::size_t chunk = 1);

  // Always-on lifetime statistics (also mirrored to telemetry as pool.*).
  /// Parallel regions executed (run_team + parallel_for dispatches).
  [[nodiscard]] std::uint64_t tasks() const {
    return tasks_.load(std::memory_order_relaxed);
  }
  /// OS threads ever created by this pool.
  [[nodiscard]] std::uint64_t threads_created() const {
    return threads_created_.load(std::memory_order_relaxed);
  }
  /// Total arrive_and_wait() calls on pool-owned barriers.
  [[nodiscard]] std::uint64_t barrier_waits() const {
    return barrier_waits_.load(std::memory_order_relaxed);
  }
  /// Resident workers currently alive.
  [[nodiscard]] int resident_workers() const;

 private:
  void worker_main(std::size_t index, std::uint64_t seen_epoch);
  /// Spawns resident workers until at least `needed` exist.  mu_ held.
  void ensure_workers_locked(int needed);
  /// Joins every resident worker.  mu_ held on entry/exit, pool marked busy.
  void drain_workers_locked(std::unique_lock<std::mutex>& lk);

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  // workers: new epoch or shutdown
  std::condition_variable cv_done_;  // caller: team finished
  std::condition_variable cv_idle_;  // queued callers: region slot free
  std::vector<std::thread> workers_;
  std::atomic<int> target_threads_;
  bool busy_ = false;
  bool shutdown_ = false;
  std::uint64_t epoch_ = 0;
  const TeamFn* job_ = nullptr;
  int job_lanes_ = 0;
  int job_remaining_ = 0;
  std::exception_ptr job_error_;
  std::unique_ptr<Barrier> barrier_;

  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> threads_created_{0};
  std::atomic<std::uint64_t> barrier_waits_{0};
};

/// The process-wide pool every solver and pipeline stage shares.  Lazily
/// constructed; sized from hardware concurrency until set_default_pool_
/// threads() (e.g. flow_cli --threads) reconfigures it.
[[nodiscard]] ThreadPool& default_pool();

/// Resizes the default pool (0 = hardware concurrency).
void set_default_pool_threads(int threads);

}  // namespace chambolle::parallel
