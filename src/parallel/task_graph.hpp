// task_graph.hpp — point-to-point epoch scheduling over a neighbor graph.
//
// The bulk-synchronous engines in this repo separate passes with a GLOBAL
// rendezvous: no tile starts pass n+1 until every tile finished pass n, so
// one slow tile stalls the whole fleet.  The dependency structure of a
// sliding-window sweep is far weaker than that — a tile's pass n+1 reads
// only the pass-n halos of its <= 8 grid neighbors (cf. the interface-data
// exchange of domain-decomposition TV solvers, Hilb & Langer 2022).
//
// EpochGraph schedules exactly that relaxation.  Nodes carry an epoch
// counter (= passes completed); a node may run pass e as soon as all its
// neighbors have completed pass e-1.  Nodes are PINNED to lanes for the
// whole run — each lane sweeps its own contiguous block of nodes, running
// every ready one — so a node's working set (the resident tile buffer) stays
// with one worker from first pass to last.  Two neighbors can never drift
// more than one epoch apart, which is what makes the engine's
// parity-double-buffered mailboxes safe (see resident_tiled.cpp).
//
// Synchronization is point-to-point: the body's writes are published by a
// release store of the node's epoch, and a reader lane acquires a neighbor's
// epoch before touching its mailboxes.  There is no barrier anywhere; lanes
// that find none of their nodes ready spin briefly, then yield (stall time
// is measured and reported, and surfaces as `tiles.stall_micros` telemetry).
//
// An exception thrown by the body aborts the run: every lane observes the
// abort flag in its wait loops, drains, and the first exception is rethrown
// on the caller (via the pool's normal propagation).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace chambolle::parallel {

class EpochGraph {
 public:
  /// body(node, epoch, lane): run pass `epoch` (0-based) of `node` on `lane`.
  using NodeFn = std::function<void(int, int, int)>;

  /// Adaptive body: like NodeFn but the return value decides the node's
  /// fate — `true` RETIRES the node after this pass (its epoch jumps to the
  /// terminal value, so neighbors never wait on it again and no lane runs
  /// it any more), `false` advances it normally.
  using AdaptiveNodeFn = std::function<bool(int, int, int)>;

  /// `neighbors[n]` lists the nodes whose previous epoch must be complete
  /// before `n` may advance (the relation should be symmetric; a one-sided
  /// edge still only delays, never corrupts).  Self-edges are ignored.
  explicit EpochGraph(std::vector<std::vector<int>> neighbors);

  /// Aggregate outcome of one run()/run_adaptive()/run_rendezvous() —
  /// telemetry accounting.
  struct RunStats {
    double stall_seconds = 0.0;      ///< summed over lanes
    std::uint64_t stall_spins = 0;   ///< ready-scan sweeps that found no work
    std::uint64_t executed_passes = 0;  ///< body invocations (adaptive only)
    std::uint64_t stolen_passes = 0;    ///< run off the preferred lane
    std::uint64_t retired_nodes = 0;    ///< bodies that returned true
    std::uint64_t rendezvous_fired = 0; ///< rendezvous bodies executed
  };

  /// Runs `passes` epochs of every node on `lanes` lanes of `pool`, subject
  /// to the neighbor constraint, with nodes pinned to lanes in contiguous
  /// blocks.  Returns stall statistics.  Rethrows the first body exception.
  RunStats run(int passes, int lanes, ThreadPool& pool, const NodeFn& body);

  /// The adaptive variant: every node runs until its body returns true
  /// (retirement) or it completes `max_passes` epochs — the hard cap that
  /// guarantees termination even for a never-converging node.  Lane pinning
  /// relaxes into an affinity-preferring work queue: a lane scans its own
  /// contiguous block first and, when none of those nodes is runnable (all
  /// retired, capped, or blocked), steals any ready node in the graph, so
  /// capacity freed by early-retiring nodes is redistributed to the
  /// stragglers instead of idling.  Per-(node, epoch) execution is
  /// serialized by a CAS claim; the release/acquire epoch protocol is the
  /// same as run()'s, so the neighbor skew bound (<= 1 pass) still holds
  /// and the caller's parity-double-buffered mailboxes remain safe.  NOTE:
  /// a retiring body must NOT write mailbox slots its live neighbors may
  /// still be reading — a neighbor running the SAME pass only observed this
  /// node's epoch >= that pass, which holds during the retiring execution
  /// too, so no release/acquire pair orders such writes.  Publish a marker
  /// whose consumers re-route their reads instead, and defer any slot
  /// rewriting until the run has quiesced (see resident_tiled.cpp's
  /// frozen-pass protocol).
  RunStats run_adaptive(int max_passes, int lanes, ThreadPool& pool,
                        const AdaptiveNodeFn& body);

  /// Handle passed to a rendezvous body (run_rendezvous); lets it un-retire
  /// nodes whose state the rendezvous work invalidated.  Only meaningful
  /// inside the body — the handle must not escape it.
  class RendezvousControl {
   public:
    /// Pass index of this firing's boundary B = (firing + 1) * period: every
    /// live node has completed exactly B passes, every other node is
    /// retired.  The node pass that runs next after this body is pass B.
    [[nodiscard]] int boundary() const { return boundary_; }
    /// Un-retires a retired node: its epoch rewinds to boundary() and it
    /// resumes passes (up to the usual max_passes cap) once the body
    /// returns.  No-op on a node that is not retired.  During a firing no
    /// node can be at the cap without being retired (the pass gate orders
    /// the last fine pass after the last firing), so this never extends a
    /// capped node's budget.
    void resurrect(int node);

   private:
    friend class EpochGraph;
    RendezvousControl(EpochGraph& graph, int boundary, int max_passes,
                      std::atomic<int>& finished)
        : graph_(graph),
          boundary_(boundary),
          max_passes_(max_passes),
          finished_(finished) {}
    EpochGraph& graph_;
    int boundary_;
    int max_passes_;
    std::atomic<int>& finished_;
    bool resurrected_ = false;
  };

  /// rendezvous(firing, ctl): run firing `firing` (0-based) of the
  /// rendezvous node at pass boundary ctl.boundary().
  using RendezvousFn = std::function<void(int, RendezvousControl&)>;

  /// run_adaptive() composed with a periodic EXCLUSIVE rendezvous node —
  /// the scheduling primitive of the resident engine's coarse-grid
  /// correction (resident_tiled.cpp).  Firing m of the rendezvous sits at
  /// pass boundary B = (m + 1) * period; there are (max_passes - 1) /
  /// period firings (a boundary at or past the cap would have no
  /// subsequent pass to feed).  Semantics:
  ///
  ///  * Firing m becomes ready when EVERY node's epoch is >= B — live nodes
  ///    parked at exactly B, the rest retired — and is claimed by one lane
  ///    via CAS.  While the body runs, no node body can run anywhere: pass
  ///    B is gated on the firing's completion, passes < B are already done.
  ///    The body therefore owns the whole graph state (an exclusive window)
  ///    WITHOUT a blocking barrier: lanes park only when truly out of work,
  ///    exactly as in run_adaptive, and the last lane to finish a pre-
  ///    boundary pass fires the rendezvous itself.
  ///  * A node may run pass e only after firing e / period - 1 ... i.e.
  ///    after rv_epoch >= e / period (acquire, pairing with the firing's
  ///    release publish) — this is what makes the body's writes visible to
  ///    every subsequent node pass, and what bounds a node's lead over the
  ///    rendezvous to < period passes.
  ///  * The body may resurrect retired nodes (RendezvousControl); the run
  ///    ends when all firings are spent (or every node is finished and the
  ///    last firing chose not to resurrect anyone) AND every node is
  ///    finished.
  ///
  /// With period <= 0 or no realizable firing this degenerates to
  /// run_adaptive() with the same body, bit for bit.
  RunStats run_rendezvous(int max_passes, int period, int lanes,
                          ThreadPool& pool, const AdaptiveNodeFn& body,
                          const RendezvousFn& rendezvous);

  [[nodiscard]] int nodes() const { return static_cast<int>(adj_.size()); }

  /// The lane a node is pinned to when running on `lanes` lanes: contiguous
  /// blocks, so grid-adjacent nodes usually share a lane and cross-lane
  /// waits happen only at block seams.  In run_adaptive() this is the
  /// node's PREFERRED lane; work stealing may run it elsewhere.
  [[nodiscard]] int owner(int node, int lanes) const;

 private:
  struct alignas(64) NodeState {
    std::atomic<int> epoch{0};  ///< passes completed; release on publish
    std::atomic<int> claim{0};  ///< epochs claimed (adaptive work queue)
  };

  std::vector<std::vector<int>> adj_;
  std::vector<NodeState> state_;
};

}  // namespace chambolle::parallel
