// task_graph.hpp — point-to-point epoch scheduling over a neighbor graph.
//
// The bulk-synchronous engines in this repo separate passes with a GLOBAL
// rendezvous: no tile starts pass n+1 until every tile finished pass n, so
// one slow tile stalls the whole fleet.  The dependency structure of a
// sliding-window sweep is far weaker than that — a tile's pass n+1 reads
// only the pass-n halos of its <= 8 grid neighbors (cf. the interface-data
// exchange of domain-decomposition TV solvers, Hilb & Langer 2022).
//
// EpochGraph schedules exactly that relaxation.  Nodes carry an epoch
// counter (= passes completed); a node may run pass e as soon as all its
// neighbors have completed pass e-1.  Nodes are PINNED to lanes for the
// whole run — each lane sweeps its own contiguous block of nodes, running
// every ready one — so a node's working set (the resident tile buffer) stays
// with one worker from first pass to last.  Two neighbors can never drift
// more than one epoch apart, which is what makes the engine's
// parity-double-buffered mailboxes safe (see resident_tiled.cpp).
//
// Synchronization is point-to-point: the body's writes are published by a
// release store of the node's epoch, and a reader lane acquires a neighbor's
// epoch before touching its mailboxes.  There is no barrier anywhere; lanes
// that find none of their nodes ready spin briefly, then yield (stall time
// is measured and reported, and surfaces as `tiles.stall_micros` telemetry).
//
// An exception thrown by the body aborts the run: every lane observes the
// abort flag in its wait loops, drains, and the first exception is rethrown
// on the caller (via the pool's normal propagation).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace chambolle::parallel {

class EpochGraph {
 public:
  /// body(node, epoch, lane): run pass `epoch` (0-based) of `node` on `lane`.
  using NodeFn = std::function<void(int, int, int)>;

  /// Adaptive body: like NodeFn but the return value decides the node's
  /// fate — `true` RETIRES the node after this pass (its epoch jumps to the
  /// terminal value, so neighbors never wait on it again and no lane runs
  /// it any more), `false` advances it normally.
  using AdaptiveNodeFn = std::function<bool(int, int, int)>;

  /// `neighbors[n]` lists the nodes whose previous epoch must be complete
  /// before `n` may advance (the relation should be symmetric; a one-sided
  /// edge still only delays, never corrupts).  Self-edges are ignored.
  explicit EpochGraph(std::vector<std::vector<int>> neighbors);

  /// Aggregate outcome of one run()/run_adaptive() — telemetry accounting.
  struct RunStats {
    double stall_seconds = 0.0;      ///< summed over lanes
    std::uint64_t stall_spins = 0;   ///< ready-scan sweeps that found no work
    std::uint64_t executed_passes = 0;  ///< body invocations (adaptive only)
    std::uint64_t stolen_passes = 0;    ///< run off the preferred lane
    std::uint64_t retired_nodes = 0;    ///< bodies that returned true
  };

  /// Runs `passes` epochs of every node on `lanes` lanes of `pool`, subject
  /// to the neighbor constraint, with nodes pinned to lanes in contiguous
  /// blocks.  Returns stall statistics.  Rethrows the first body exception.
  RunStats run(int passes, int lanes, ThreadPool& pool, const NodeFn& body);

  /// The adaptive variant: every node runs until its body returns true
  /// (retirement) or it completes `max_passes` epochs — the hard cap that
  /// guarantees termination even for a never-converging node.  Lane pinning
  /// relaxes into an affinity-preferring work queue: a lane scans its own
  /// contiguous block first and, when none of those nodes is runnable (all
  /// retired, capped, or blocked), steals any ready node in the graph, so
  /// capacity freed by early-retiring nodes is redistributed to the
  /// stragglers instead of idling.  Per-(node, epoch) execution is
  /// serialized by a CAS claim; the release/acquire epoch protocol is the
  /// same as run()'s, so the neighbor skew bound (<= 1 pass) still holds
  /// and the caller's parity-double-buffered mailboxes remain safe.  NOTE:
  /// a retiring body must NOT write mailbox slots its live neighbors may
  /// still be reading — a neighbor running the SAME pass only observed this
  /// node's epoch >= that pass, which holds during the retiring execution
  /// too, so no release/acquire pair orders such writes.  Publish a marker
  /// whose consumers re-route their reads instead, and defer any slot
  /// rewriting until the run has quiesced (see resident_tiled.cpp's
  /// frozen-pass protocol).
  RunStats run_adaptive(int max_passes, int lanes, ThreadPool& pool,
                        const AdaptiveNodeFn& body);

  [[nodiscard]] int nodes() const { return static_cast<int>(adj_.size()); }

  /// The lane a node is pinned to when running on `lanes` lanes: contiguous
  /// blocks, so grid-adjacent nodes usually share a lane and cross-lane
  /// waits happen only at block seams.  In run_adaptive() this is the
  /// node's PREFERRED lane; work stealing may run it elsewhere.
  [[nodiscard]] int owner(int node, int lanes) const;

 private:
  struct alignas(64) NodeState {
    std::atomic<int> epoch{0};  ///< passes completed; release on publish
    std::atomic<int> claim{0};  ///< epochs claimed (adaptive work queue)
  };

  std::vector<std::vector<int>> adj_;
  std::vector<NodeState> state_;
};

}  // namespace chambolle::parallel
