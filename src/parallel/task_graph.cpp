#include "parallel/task_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/stopwatch.hpp"
#include "telemetry/profiler.hpp"

namespace chambolle::parallel {
namespace {

/// First node of lane `lane`'s contiguous block.
int block_begin(int nodes, int lanes, int lane) {
  return static_cast<int>(static_cast<long long>(nodes) * lane / lanes);
}

}  // namespace

EpochGraph::EpochGraph(std::vector<std::vector<int>> neighbors)
    : adj_(std::move(neighbors)), state_(adj_.size()) {
  const int n = nodes();
  for (std::vector<int>& nbrs : adj_) {
    for (const int m : nbrs)
      if (m < 0 || m >= n)
        throw std::invalid_argument("EpochGraph: neighbor index out of range");
  }
}

int EpochGraph::owner(int node, int lanes) const {
  const int n = nodes();
  if (node < 0 || node >= n)
    throw std::invalid_argument("EpochGraph::owner: node out of range");
  const int l = std::max(1, std::min(lanes, n));
  for (int lane = l - 1; lane > 0; --lane)
    if (node >= block_begin(n, l, lane)) return lane;
  return 0;
}

EpochGraph::RunStats EpochGraph::run(int passes, int lanes, ThreadPool& pool,
                                     const NodeFn& body) {
  if (passes < 0) throw std::invalid_argument("EpochGraph::run: passes < 0");
  const int n = nodes();
  RunStats total;
  if (n == 0 || passes == 0) return total;
  for (NodeState& s : state_) s.epoch.store(0, std::memory_order_relaxed);

  const int team = std::max(1, std::min(lanes, n));
  std::atomic<bool> abort{false};
  PerLane<RunStats> lane_stats(team);

  pool.run_team(team, [&](int lane, int nlanes, Barrier&) {
    const int begin = block_begin(n, nlanes, lane);
    const int end = block_begin(n, nlanes, lane + 1);
    RunStats& stats = lane_stats[lane];
    int done = 0;
    try {
      while (done < end - begin) {
        if (abort.load(std::memory_order_relaxed)) return;
        bool progressed = false;
        done = 0;
        for (int node = begin; node < end; ++node) {
          // Only this lane advances the node, so a relaxed read of our own
          // epoch is exact.
          const int e = state_[static_cast<std::size_t>(node)].epoch.load(
              std::memory_order_relaxed);
          if (e >= passes) {
            ++done;
            continue;
          }
          // Ready when every neighbor has completed pass e-1 (epoch >= e).
          // The acquire pairs with the neighbor's release publish below and
          // makes its pass-(e-1) mailbox writes visible.
          bool ready = true;
          for (const int m : adj_[static_cast<std::size_t>(node)]) {
            if (m == node) continue;
            if (state_[static_cast<std::size_t>(m)].epoch.load(
                    std::memory_order_acquire) < e) {
              ready = false;
              break;
            }
          }
          if (!ready) continue;
          body(node, e, lane);
          state_[static_cast<std::size_t>(node)].epoch.store(
              e + 1, std::memory_order_release);
          progressed = true;
          if (e + 1 >= passes) ++done;
        }
        if (!progressed && done < end - begin) {
          // Every owned node is blocked on another lane.  The globally
          // lowest-epoch node is always ready, so some lane can run; yield
          // the core to it (essential on oversubscribed machines) and count
          // the stall.
          ++stats.stall_spins;
          const Stopwatch stall_clock;
          std::this_thread::yield();
          const double stalled = stall_clock.seconds();
          stats.stall_seconds += stalled;
          telemetry::profiler_add(telemetry::LaneCause::kEpochWait, stalled);
        }
      }
    } catch (...) {
      abort.store(true, std::memory_order_relaxed);
      throw;  // run_team captures and rethrows on the caller
    }
  });

  for (int lane = 0; lane < team; ++lane) {
    total.stall_seconds += lane_stats[lane].stall_seconds;
    total.stall_spins += lane_stats[lane].stall_spins;
  }
  return total;
}

EpochGraph::RunStats EpochGraph::run_adaptive(int max_passes, int lanes,
                                              ThreadPool& pool,
                                              const AdaptiveNodeFn& body) {
  if (max_passes < 0)
    throw std::invalid_argument("EpochGraph::run_adaptive: max_passes < 0");
  const int n = nodes();
  RunStats total;
  if (n == 0 || max_passes == 0) return total;
  for (NodeState& s : state_) {
    s.epoch.store(0, std::memory_order_relaxed);
    s.claim.store(0, std::memory_order_relaxed);
  }

  const int team = std::max(1, std::min(lanes, n));
  std::atomic<bool> abort{false};
  // Nodes whose epoch reached the terminal value (retired or capped); the
  // lanes' sole termination condition, so a retired node can never be
  // waited on — the no-deadlock guarantee the adaptive engine tests pin.
  std::atomic<int> finished{0};
  PerLane<RunStats> lane_stats(team);

  pool.run_team(team, [&](int lane, int nlanes, Barrier&) {
    const int begin = block_begin(n, nlanes, lane);
    const int end = block_begin(n, nlanes, lane + 1);
    RunStats& stats = lane_stats[lane];
    try {
      while (finished.load(std::memory_order_relaxed) < n) {
        if (abort.load(std::memory_order_relaxed)) return;
        bool progressed = false;
        // Affinity-preferring sweep: own block first (scan starts at
        // `begin` and wraps), so a node keeps its preferred lane while that
        // lane has runnable work, and migrates only when capacity frees up.
        for (int k = 0; k < n; ++k) {
          const int node = begin + k < n ? begin + k : begin + k - n;
          NodeState& s = state_[static_cast<std::size_t>(node)];
          // Acquire pairs with the release publish of the node's previous
          // pass — possibly by another lane — making the body's writes for
          // epochs < e visible before we try to run epoch e.
          const int e = s.epoch.load(std::memory_order_acquire);
          if (e >= max_passes) continue;
          // Cheap pre-check: someone already claimed (is running) epoch e.
          if (s.claim.load(std::memory_order_relaxed) != e) continue;
          bool ready = true;
          for (const int m : adj_[static_cast<std::size_t>(node)]) {
            if (m == node) continue;
            if (state_[static_cast<std::size_t>(m)].epoch.load(
                    std::memory_order_acquire) < e) {
              ready = false;
              break;
            }
          }
          if (!ready) continue;
          int expected = e;
          if (!s.claim.compare_exchange_strong(expected, e + 1,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed))
            continue;  // another lane won the race for this pass
          const bool retire = body(node, e, lane);
          const int next = retire ? max_passes : e + 1;
          s.epoch.store(next, std::memory_order_release);
          ++stats.executed_passes;
          if (node < begin || node >= end) ++stats.stolen_passes;
          if (retire) ++stats.retired_nodes;
          if (next >= max_passes)
            finished.fetch_add(1, std::memory_order_relaxed);
          progressed = true;
        }
        if (!progressed && finished.load(std::memory_order_relaxed) < n) {
          // Every unfinished node is blocked or claimed elsewhere.  The
          // globally lowest-epoch unfinished node is always ready (its
          // neighbors are at its epoch or terminal), so some lane can run;
          // yield the core to it and count the stall.
          ++stats.stall_spins;
          const Stopwatch stall_clock;
          std::this_thread::yield();
          const double stalled = stall_clock.seconds();
          stats.stall_seconds += stalled;
          telemetry::profiler_add(telemetry::LaneCause::kEpochWait, stalled);
        }
      }
    } catch (...) {
      abort.store(true, std::memory_order_relaxed);
      throw;  // run_team captures and rethrows on the caller
    }
  });

  for (int lane = 0; lane < team; ++lane) {
    total.stall_seconds += lane_stats[lane].stall_seconds;
    total.stall_spins += lane_stats[lane].stall_spins;
    total.executed_passes += lane_stats[lane].executed_passes;
    total.stolen_passes += lane_stats[lane].stolen_passes;
    total.retired_nodes += lane_stats[lane].retired_nodes;
  }
  return total;
}

void EpochGraph::RendezvousControl::resurrect(int node) {
  if (node < 0 || node >= graph_.nodes())
    throw std::invalid_argument("RendezvousControl::resurrect: node out of range");
  NodeState& s = graph_.state_[static_cast<std::size_t>(node)];
  // The body runs in an exclusive window, so this relaxed read is exact:
  // nothing else mutates node state while a firing is live.
  if (s.epoch.load(std::memory_order_relaxed) != max_passes_) return;
  finished_.fetch_sub(1, std::memory_order_relaxed);
  // claim first, then the release epoch store: a lane that acquires
  // epoch == boundary sees the matching claim (and, transitively, every
  // write the body made before calling resurrect).
  s.claim.store(boundary_, std::memory_order_relaxed);
  s.epoch.store(boundary_, std::memory_order_release);
  resurrected_ = true;
}

EpochGraph::RunStats EpochGraph::run_rendezvous(int max_passes, int period,
                                                int lanes, ThreadPool& pool,
                                                const AdaptiveNodeFn& body,
                                                const RendezvousFn& rendezvous) {
  if (max_passes < 0)
    throw std::invalid_argument("EpochGraph::run_rendezvous: max_passes < 0");
  // Firings sit at boundaries period, 2*period, ... strictly below the cap
  // (a firing at the cap would have no subsequent pass to feed).
  const int num_firings = period > 0 ? (max_passes - 1) / period : 0;
  if (num_firings == 0) return run_adaptive(max_passes, lanes, pool, body);

  const int n = nodes();
  RunStats total;
  if (n == 0 || max_passes == 0) return total;
  for (NodeState& s : state_) {
    s.epoch.store(0, std::memory_order_relaxed);
    s.claim.store(0, std::memory_order_relaxed);
  }

  const int team = std::max(1, std::min(lanes, n));
  std::atomic<bool> abort{false};
  std::atomic<int> finished{0};
  // Rendezvous node state: rv_epoch = firings completed (released by the
  // firing lane, acquired by the per-pass gate), rv_claim = firings claimed
  // (CAS work-queue, same idiom as the node claims), rv_done = no further
  // firing will run.
  std::atomic<int> rv_epoch{0};
  std::atomic<int> rv_claim{0};
  std::atomic<bool> rv_done{false};
  PerLane<RunStats> lane_stats(team);

  pool.run_team(team, [&](int lane, int nlanes, Barrier&) {
    const int begin = block_begin(n, nlanes, lane);
    const int end = block_begin(n, nlanes, lane + 1);
    RunStats& stats = lane_stats[lane];

    // Attempts to run the next rendezvous firing; true when this lane ran
    // it.  Called only from the no-progress branch — while any node pass is
    // runnable the rendezvous cannot be ready anyway.
    const auto try_rendezvous = [&]() -> bool {
      if (rv_done.load(std::memory_order_relaxed)) return false;
      const int m = rv_epoch.load(std::memory_order_relaxed);
      if (m >= num_firings) return false;
      if (rv_claim.load(std::memory_order_relaxed) != m) return false;
      const int boundary = (m + 1) * period;
      // Ready when every node completed pass boundary-1 (live nodes park at
      // exactly `boundary`: their next pass is gated on this firing) or is
      // finished (terminal epoch >= boundary).  The acquire pairs with each
      // node's release publish, making every pre-boundary write visible to
      // the body.
      for (int node = 0; node < n; ++node)
        if (state_[static_cast<std::size_t>(node)].epoch.load(
                std::memory_order_acquire) < boundary)
          return false;
      int expected = m;
      if (!rv_claim.compare_exchange_strong(expected, m + 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed))
        return false;
      RendezvousControl ctl(*this, boundary, max_passes, finished);
      rendezvous(m, ctl);
      ++stats.rendezvous_fired;
      // In the exclusive window `finished` only moves by our own resurrects,
      // so the relaxed read is exact.  Stop firing early when the fleet is
      // fully finished and this firing chose to leave it that way — later
      // firings would correct a state no pass will ever read back.
      const bool fleet_done =
          !ctl.resurrected_ && finished.load(std::memory_order_relaxed) >= n;
      if (m + 1 >= num_firings || fleet_done)
        rv_done.store(true, std::memory_order_release);
      // Release-publish the firing: the per-pass gate's acquire load pairs
      // with this store, so every write of the body (correction buffers,
      // resurrections) happens-before any post-boundary node pass.
      rv_epoch.store(m + 1, std::memory_order_release);
      return true;
    };

    try {
      while (true) {
        // rv_done first, then finished: a final firing that resurrects
        // decrements `finished` before its release store of rv_done, so the
        // acquire here cannot observe rv_done without the decrement.
        if (rv_done.load(std::memory_order_acquire) &&
            finished.load(std::memory_order_relaxed) >= n)
          break;
        if (abort.load(std::memory_order_relaxed)) return;
        bool progressed = false;
        // One acquire of the firing count per sweep: pairs with the firing
        // lane's release publish, so a pass admitted by the gate below sees
        // all of that firing's writes.  A stale (lower) value only delays.
        const int fired = rv_epoch.load(std::memory_order_acquire);
        for (int k = 0; k < n; ++k) {
          const int node = begin + k < n ? begin + k : begin + k - n;
          NodeState& s = state_[static_cast<std::size_t>(node)];
          const int e = s.epoch.load(std::memory_order_acquire);
          if (e >= max_passes) continue;
          // The rendezvous gate: pass e runs only after firing e/period
          // (i.e. every boundary <= e) has been published.
          if (e / period > fired) continue;
          if (s.claim.load(std::memory_order_relaxed) != e) continue;
          bool ready = true;
          for (const int m : adj_[static_cast<std::size_t>(node)]) {
            if (m == node) continue;
            if (state_[static_cast<std::size_t>(m)].epoch.load(
                    std::memory_order_acquire) < e) {
              ready = false;
              break;
            }
          }
          if (!ready) continue;
          int expected = e;
          if (!s.claim.compare_exchange_strong(expected, e + 1,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed))
            continue;
          const bool retire = body(node, e, lane);
          const int next = retire ? max_passes : e + 1;
          s.epoch.store(next, std::memory_order_release);
          ++stats.executed_passes;
          if (node < begin || node >= end) ++stats.stolen_passes;
          if (retire) ++stats.retired_nodes;
          if (next >= max_passes)
            finished.fetch_add(1, std::memory_order_relaxed);
          progressed = true;
        }
        if (!progressed) {
          // No node pass was runnable — either the fleet is parked at a
          // boundary (then the rendezvous is ready: run it) or other lanes
          // hold the claims (then yield).  The liveness argument of
          // run_adaptive extends: the lowest-epoch unfinished node is ready
          // unless gated, and a gated lowest node implies every node is at
          // or past the next boundary, i.e. the rendezvous is ready.
          if (try_rendezvous()) continue;
          if (rv_done.load(std::memory_order_acquire) &&
              finished.load(std::memory_order_relaxed) >= n)
            break;
          ++stats.stall_spins;
          const Stopwatch stall_clock;
          std::this_thread::yield();
          const double stalled = stall_clock.seconds();
          stats.stall_seconds += stalled;
          telemetry::profiler_add(telemetry::LaneCause::kEpochWait, stalled);
        }
      }
    } catch (...) {
      abort.store(true, std::memory_order_relaxed);
      throw;  // run_team captures and rethrows on the caller
    }
  });

  for (int lane = 0; lane < team; ++lane) {
    total.stall_seconds += lane_stats[lane].stall_seconds;
    total.stall_spins += lane_stats[lane].stall_spins;
    total.executed_passes += lane_stats[lane].executed_passes;
    total.stolen_passes += lane_stats[lane].stolen_passes;
    total.retired_nodes += lane_stats[lane].retired_nodes;
    total.rendezvous_fired += lane_stats[lane].rendezvous_fired;
  }
  return total;
}

}  // namespace chambolle::parallel
