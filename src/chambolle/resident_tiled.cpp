#include "chambolle/resident_tiled.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "chambolle/multilevel.hpp"
#include "common/stopwatch.hpp"
#include "kernels/kernel.hpp"
#include "kernels/strips.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"

namespace chambolle {

/// The resident working set of one tile: the (px, py) dual window and the
/// fixed input window, allocated once and owned by one lane for the whole
/// solve.  ~tile_rows * tile_cols * 12 B — sized to stay cache-resident
/// (the paper's 88 x 92 window is ~97 KiB), the CPU analogue of a BRAM bank.
struct ResidentTiledEngine::TileBuffers {
  Matrix<float> px, py, v;
};

/// One directed halo-exchange edge, with the frame rectangle pre-resolved
/// into source- and destination-local coordinates and a parity-double-
/// buffered payload: slot[n & 1] carries the pass-n strip (px rows first,
/// then py rows).  Publication/consumption is ordered by the EpochGraph's
/// release/acquire epoch protocol; the skew bound (neighbors never more
/// than one pass apart) keeps the two slots from colliding.  A tile retired
/// by run_adaptive() stops publishing: gathers are redirected to its final
/// strips by the frozen_pass_ marker (see gather_halos / mark_frozen).
struct ResidentTiledEngine::Mailbox {
  HaloEdge edge;
  int src_r0 = 0, src_c0 = 0;  // edge rect in src-buffer coordinates
  int dst_r0 = 0, dst_c0 = 0;  // edge rect in dst-buffer coordinates
  std::vector<float> slot[2];
};

ResidentTiledEngine::ResidentTiledEngine(const Matrix<float>& v,
                                         const ChambolleParams& params,
                                         const TiledSolverOptions& options,
                                         const DualField* initial)
    : params_(params), options_(options), frame_v_(v) {
  params_.validate();
  options_.validate();
  if (initial != nullptr &&
      (!initial->px.same_shape(v) || !initial->py.same_shape(v)))
    throw std::invalid_argument(
        "ResidentTiledEngine: initial dual shape mismatch");
  plan_ = make_tiling(v.rows(), v.cols(), options_.tile_rows,
                      options_.tile_cols, options_.merge_iterations);

  const int n = static_cast<int>(plan_.tiles.size());
  tiles_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const TileSpec& t = plan_.tiles[i];
    TileBuffers& b = tiles_[static_cast<std::size_t>(i)];
    b.v.resize(t.buf_rows, t.buf_cols);
    kernels::copy_rect(v, t.buf_row0, t.buf_col0, b.v, 0, 0, t.buf_rows,
                       t.buf_cols);
  }
  load_duals(initial);

  const std::vector<HaloEdge> edges = make_halo_edges(plan_);
  mail_.reserve(edges.size());
  in_edges_.assign(static_cast<std::size_t>(n), {});
  out_edges_.assign(static_cast<std::size_t>(n), {});
  std::vector<std::vector<int>> adjacency(static_cast<std::size_t>(n));
  for (const HaloEdge& e : edges) {
    Mailbox m;
    m.edge = e;
    const TileSpec& s = plan_.tiles[static_cast<std::size_t>(e.src)];
    const TileSpec& d = plan_.tiles[static_cast<std::size_t>(e.dst)];
    m.src_r0 = e.row0 - s.buf_row0;
    m.src_c0 = e.col0 - s.buf_col0;
    m.dst_r0 = e.row0 - d.buf_row0;
    m.dst_c0 = e.col0 - d.buf_col0;
    m.slot[0].resize(2 * e.elements());
    m.slot[1].resize(2 * e.elements());
    const int idx = static_cast<int>(mail_.size());
    mail_.push_back(std::move(m));
    out_edges_[static_cast<std::size_t>(e.src)].push_back(idx);
    in_edges_[static_cast<std::size_t>(e.dst)].push_back(idx);
    adjacency[static_cast<std::size_t>(e.src)].push_back(e.dst);
  }
  // The halo-edge relation is symmetric (tile_test asserts it), so the
  // published adjacency doubles as the wait set: a tile waits exactly on
  // the tiles it exchanges strips with.
  graph_ = std::make_unique<parallel::EpochGraph>(std::move(adjacency));

  frozen_pass_ = std::vector<std::atomic<int>>(static_cast<std::size_t>(n));
  for (std::atomic<int>& f : frozen_pass_)
    f.store(-1, std::memory_order_relaxed);

  stats_.tiles = plan_.tiles.size();
  stats_.halo_elements_per_pass = halo_exchange_elements(edges);
}

ResidentTiledEngine::~ResidentTiledEngine() = default;

void ResidentAdaptiveOptions::validate() const {
  if (!(tolerance > 0.f) || !std::isfinite(tolerance))
    throw std::invalid_argument(
        "ResidentAdaptiveOptions: tolerance must be finite and > 0");
  if (patience < 1)
    throw std::invalid_argument("ResidentAdaptiveOptions: patience < 1");
  if (max_passes < 1)
    throw std::invalid_argument("ResidentAdaptiveOptions: max_passes < 1");
  if (final_pass_iterations < 0)
    throw std::invalid_argument(
        "ResidentAdaptiveOptions: final_pass_iterations < 0");
}

void ResidentTiledEngine::gather_halos(std::size_t ti, int g) {
  // The incoming rectangles partition the halo exactly, so after this loop
  // the whole buffer holds the neighbors' post-pass-(g-1) state.
  TileBuffers& b = tiles_[ti];
  const telemetry::ProfScope prof(telemetry::LaneCause::kMailbox);
  for (const int mi : in_edges_[ti]) {
    const Mailbox& m = mail_[static_cast<std::size_t>(mi)];
    // A live neighbor's post-pass-(g-1) strips sit at parity (g-1).  A
    // neighbor retired at pass f stopped publishing: its final strips sit at
    // parity f, so read that slot once f < g-1.  Visibility: the marker is
    // stored before the terminal epoch's release store, and acquiring that
    // epoch in the scheduler's ready check is the only way this tile can
    // reach pass g > f + 1, so whenever the frozen slot is the one that
    // matters the load below is guaranteed to observe f.  While f >= g-1
    // (the neighbor's retirement pass may still be racing this gather)
    // min() keeps the normal parity, whose strips the neighbor published
    // before our pass became ready — so the slot actually read, and hence
    // the numeric result, is schedule-independent.
    int src_pass = g - 1;
    const int f = frozen_pass_[static_cast<std::size_t>(m.edge.src)].load(
        std::memory_order_acquire);
    if (f >= 0) src_pass = std::min(src_pass, f);
    const float* strip = m.slot[src_pass & 1].data();
    kernels::scatter_rect(strip, b.px, m.dst_r0, m.dst_c0, m.edge.rows,
                          m.edge.cols);
    kernels::scatter_rect(strip + m.edge.elements(), b.py, m.dst_r0, m.dst_c0,
                          m.edge.rows, m.edge.cols);
  }
}

void ResidentTiledEngine::publish_strips(std::size_t ti, int g) {
  // Profitable cells only, hence exact.  Publishing on the final pass too
  // keeps the mailboxes coherent for a later run() on the resident state.
  TileBuffers& b = tiles_[ti];
  const telemetry::ProfScope prof(telemetry::LaneCause::kMailbox);
  for (const int mi : out_edges_[ti]) {
    Mailbox& m = mail_[static_cast<std::size_t>(mi)];
    float* strip = m.slot[g & 1].data();
    kernels::gather_rect(b.px, m.src_r0, m.src_c0, m.edge.rows, m.edge.cols,
                         strip);
    kernels::gather_rect(b.py, m.src_r0, m.src_c0, m.edge.rows, m.edge.cols,
                         strip + m.edge.elements());
  }
}

void ResidentTiledEngine::mark_frozen(std::size_t ti, int g) {
  // A retired tile never publishes again; the marker redirects every later
  // gather to the parity-g slot holding its final strips (see gather_halos).
  // Writing the OTHER parity slot here instead would be a data race: a
  // neighbor concurrently executing the same pass g reads
  // slot[(g - 1) & 1] == slot[(g + 1) & 1], and the epoch protocol only
  // guarantees that reader our epoch >= g — which already holds while we
  // run pass g, so no release/acquire pair orders such a copy against its
  // gather.  The cross-parity mirror is deferred to run_adaptive()'s
  // epilogue, when every lane has joined and no reader can exist.
  frozen_pass_[ti].store(g, std::memory_order_release);
}

parallel::ThreadPool& ResidentTiledEngine::pool() const {
  return options_.pool != nullptr ? *options_.pool : parallel::default_pool();
}

void ResidentTiledEngine::load_duals(const DualField* initial) {
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    const TileSpec& t = plan_.tiles[i];
    TileBuffers& b = tiles_[i];
    if (initial != nullptr) {
      b.px.resize(t.buf_rows, t.buf_cols);
      b.py.resize(t.buf_rows, t.buf_cols);
      kernels::copy_rect(initial->px, t.buf_row0, t.buf_col0, b.px, 0, 0,
                         t.buf_rows, t.buf_cols);
      kernels::copy_rect(initial->py, t.buf_row0, t.buf_col0, b.py, 0, 0,
                         t.buf_rows, t.buf_cols);
    } else {
      // resize() value-initializes: the zero dual start of Algorithm 1.
      b.px.resize(t.buf_rows, t.buf_cols);
      b.py.resize(t.buf_rows, t.buf_cols);
    }
  }
  // A full buffer load (halo included) makes the mailboxes irrelevant until
  // the next publish; restart the pass/parity clock.  Frozen-pass markers
  // must go with it: a completed adaptive run clears them in its epilogue,
  // but a run aborted by a body exception leaves them set, and a marker
  // surviving into the next solve would redirect gathers to a stale frozen
  // strip of the PREVIOUS stream — the engine-reuse leak a pooled fleet
  // engine must never serve session B from session A's retirement state.
  // (Empty during construction, where load_duals runs before the marker
  // vector exists.)
  for (std::atomic<int>& f : frozen_pass_)
    f.store(-1, std::memory_order_relaxed);
  pass_count_ = 0;
}

void ResidentTiledEngine::run(int iterations) {
  if (iterations < 0)
    throw std::invalid_argument("ResidentTiledEngine::run: iterations < 0");
  if (iterations == 0) return;
  const telemetry::TraceSpan span("chambolle.resident.run");
  telemetry::flight_mark("resident.run", static_cast<double>(iterations));

  // A completed adaptive run mirrors frozen strips into both parities and
  // clears the markers in its epilogue, but an exception-aborted one leaves
  // them set — and a stale marker would redirect this run's gathers to a
  // long-dead frozen slot.  The fixed-budget schedule never freezes, so the
  // markers must be clear here; reset defensively (same as run_adaptive).
  for (std::atomic<int>& f : frozen_pass_)
    f.store(-1, std::memory_order_relaxed);

  // Pass schedule: merge_iterations per pass, remainder last.  Every k is
  // <= plan_.halo, which is what keeps profitable cells' dependency cones
  // inside the buffer.
  std::vector<int> pass_iters;
  for (int remaining = iterations; remaining > 0;) {
    const int k = std::min(remaining, options_.merge_iterations);
    pass_iters.push_back(k);
    remaining -= k;
  }
  const int passes = static_cast<int>(pass_iters.size());
  const int base = pass_count_;

  const float inv_theta = 1.f / params_.theta;
  const float step = params_.step();
  const int lanes = pool().lanes_for(options_.num_threads);
  parallel::PerLane<Matrix<float>> scratch(lanes);

  const auto body = [&](int node, int epoch, int lane) {
    const std::size_t ti = static_cast<std::size_t>(node);
    const TileSpec& t = plan_.tiles[ti];
    TileBuffers& b = tiles_[ti];
    const int g = base + epoch;  // global pass index since the last reload
    if (g > 0) gather_halos(ti, g);
    const RegionGeometry geom{t.buf_row0, t.buf_col0, plan_.frame_rows,
                              plan_.frame_cols};
    {
      // Timed by hand (not ProfScope) because the per-tile attribution needs
      // the same measurement twice; no clock is read without a session.
      const bool prof = telemetry::profiler_active();
      const std::uint64_t k0 = prof ? telemetry::detail::trace_now_ns() : 0;
      kernels::iterate_region_fused(b.px, b.py, b.v, geom, inv_theta, step,
                                    pass_iters[static_cast<std::size_t>(epoch)],
                                    scratch[lane]);
      if (prof) {
        const double kernel_seconds =
            static_cast<double>(telemetry::detail::trace_now_ns() - k0) * 1e-9;
        telemetry::profiler_add(telemetry::LaneCause::kKernel, kernel_seconds);
        telemetry::profiler_add_tile(node, kernel_seconds);
      }
    }
    publish_strips(ti, g);
  };

  const parallel::EpochGraph::RunStats rs =
      graph_->run(passes, lanes, pool(), body);
  pass_count_ += passes;

  stats_.passes += passes;
  stats_.stall_seconds += rs.stall_seconds;
  stats_.stall_spins += rs.stall_spins;
  stats_.halo_bytes_exchanged +=
      static_cast<std::uint64_t>(stats_.halo_elements_per_pass) *
      sizeof(float) * static_cast<std::uint64_t>(passes);
  for (const int k : pass_iters)
    stats_.element_iterations +=
        plan_.total_buffer_elements() * static_cast<std::size_t>(k);

  static telemetry::Counter& c_passes =
      telemetry::registry().counter("tiles.passes");
  static telemetry::Counter& c_halo =
      telemetry::registry().counter("tiles.halo_bytes");
  static telemetry::Counter& c_stall =
      telemetry::registry().counter("tiles.stall_micros");
  static telemetry::Counter& c_spins =
      telemetry::registry().counter("tiles.stall_spins");
  c_passes.add(static_cast<std::uint64_t>(passes));
  c_halo.add(static_cast<std::uint64_t>(stats_.halo_elements_per_pass) *
             sizeof(float) * static_cast<std::uint64_t>(passes));
  c_stall.add(static_cast<std::uint64_t>(rs.stall_seconds * 1e6));
  c_spins.add(rs.stall_spins);
  // Per-pass traffic of this engine vs. the reload engine's two full frames
  // in and out (4 floats/cell): the acceptance-criterion ratio.
  const double frame_reload_bytes =
      4.0 * sizeof(float) * static_cast<double>(plan_.frame_rows) *
      static_cast<double>(plan_.frame_cols);
  telemetry::registry()
      .gauge("tiles.halo_traffic_fraction")
      .set(frame_reload_bytes > 0.0
               ? static_cast<double>(stats_.halo_elements_per_pass) *
                     sizeof(float) / frame_reload_bytes
               : 0.0);
}

ResidentAdaptiveReport ResidentTiledEngine::run_adaptive(
    const ResidentAdaptiveOptions& options) {
  options.validate();
  const telemetry::TraceSpan span("chambolle.resident.run_adaptive");
  telemetry::flight_mark("resident.run_adaptive",
                         static_cast<double>(options.max_passes));

  if (options.final_pass_iterations > options_.merge_iterations)
    throw std::invalid_argument(
        "run_adaptive: final_pass_iterations exceeds the merge depth");

  const std::size_t n = tiles_.size();
  ResidentAdaptiveReport report;
  report.pass_cap = options.max_passes;
  report.tiles = n;
  report.tile_passes.assign(n, 0);
  report.tile_residuals.assign(n, 0.f);
  if (n == 0) return report;

  // Consecutive under-tolerance passes per tile.  Only the claiming lane for
  // a (tile, pass) touches a tile's entry, and claims of successive passes
  // are ordered by the epoch release/acquire chain, so plain ints are safe
  // even under work stealing.
  std::vector<int> streak(n, 0);

  // Markers are cleared by the previous adaptive run's epilogue; reset
  // defensively in case that run aborted via a body exception mid-flight.
  for (std::atomic<int>& f : frozen_pass_)
    f.store(-1, std::memory_order_relaxed);

  const int base = pass_count_;
  const float inv_theta = 1.f / params_.theta;
  const float step = params_.step();
  const int lanes = pool().lanes_for(options_.num_threads);
  parallel::PerLane<Matrix<float>> scratch(lanes);

  const auto body = [&](int node, int epoch, int lane) -> bool {
    const std::size_t ti = static_cast<std::size_t>(node);
    const TileSpec& t = plan_.tiles[ti];
    TileBuffers& b = tiles_[ti];
    const int g = base + epoch;  // global pass index since the last reload
    if (g > 0) gather_halos(ti, g);
    const RegionGeometry geom{t.buf_row0, t.buf_col0, plan_.frame_rows,
                              plan_.frame_cols};
    // run()'s remainder schedule: the last pass of the cap may be a
    // truncated burst so the cap lands on an exact iteration budget.
    const int burst = (epoch == options.max_passes - 1 &&
                       options.final_pass_iterations > 0)
                          ? options.final_pass_iterations
                          : options_.merge_iterations;
    float residual = 0.f;
    {
      // Timed by hand (not ProfScope) because the per-tile attribution needs
      // the same measurement twice; no clock is read without a session.
      const bool prof = telemetry::profiler_active();
      const std::uint64_t k0 = prof ? telemetry::detail::trace_now_ns() : 0;
      kernels::iterate_region_fused(b.px, b.py, b.v, geom, inv_theta, step,
                                    burst, scratch[lane], &residual);
      if (prof) {
        const double kernel_seconds =
            static_cast<double>(telemetry::detail::trace_now_ns() - k0) * 1e-9;
        telemetry::profiler_add(telemetry::LaneCause::kKernel, kernel_seconds);
        telemetry::profiler_add_tile(node, kernel_seconds);
      }
    }
    publish_strips(ti, g);
    report.tile_passes[ti] = epoch + 1;
    report.tile_residuals[ti] = residual;
    // The residual is the buffer-wide max |dp| of the pass's LAST iteration:
    // the same single-iteration semantics as solve_adaptive, so the same
    // tolerance means the same thing regardless of merge depth.  Halo cells
    // are included — conservative: a tile only retires once its neighborhood
    // influence has also stilled.
    if (residual < options.tolerance) {
      if (++streak[ti] >= options.patience) {
        mark_frozen(ti, g);
        return true;  // retire: EpochGraph publishes the terminal epoch
      }
    } else {
      streak[ti] = 0;
    }
    return false;
  };

  const parallel::EpochGraph::RunStats rs =
      graph_->run_adaptive(options.max_passes, lanes, pool(), body);
  // Quiescent epilogue (every lane has joined): mirror each retired tile's
  // final strips into the other parity slot and clear its marker, so later
  // run()/run_adaptive() calls — whose gathers assume the live parity —
  // read the frozen state no matter how many passes each tile actually
  // executed.  This copy is exactly the write that would race a concurrent
  // gather during the run (see mark_frozen); here no reader exists.
  for (std::size_t i = 0; i < n; ++i) {
    const int f = frozen_pass_[i].load(std::memory_order_relaxed);
    if (f < 0) continue;
    for (const int mi : out_edges_[i]) {
      Mailbox& m = mail_[static_cast<std::size_t>(mi)];
      m.slot[(f + 1) & 1] = m.slot[f & 1];
    }
    frozen_pass_[i].store(-1, std::memory_order_relaxed);
  }
  // The parity clock advances by the full cap.
  pass_count_ += options.max_passes;

  report.tiles_converged = rs.retired_nodes;
  report.total_tile_passes = rs.executed_passes;
  report.stolen_passes = rs.stolen_passes;

  stats_.passes += options.max_passes;
  stats_.stall_seconds += rs.stall_seconds;
  stats_.stall_spins += rs.stall_spins;
  std::uint64_t halo_floats = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t out_elems = 0;
    for (const int mi : out_edges_[i])
      out_elems += 2 * mail_[static_cast<std::size_t>(mi)].edge.elements();
    halo_floats += static_cast<std::uint64_t>(out_elems) *
                   static_cast<std::uint64_t>(report.tile_passes[i]);
    std::size_t iters = static_cast<std::size_t>(report.tile_passes[i]) *
                        static_cast<std::size_t>(options_.merge_iterations);
    // A tile that reached the cap's final pass ran the truncated burst there.
    if (options.final_pass_iterations > 0 &&
        report.tile_passes[i] == options.max_passes)
      iters -= static_cast<std::size_t>(options_.merge_iterations -
                                        options.final_pass_iterations);
    report.total_iterations += iters;
    stats_.element_iterations += plan_.tiles[i].buffer_elements() * iters;
  }
  stats_.halo_bytes_exchanged += halo_floats * sizeof(float);

  static telemetry::Counter& c_passes =
      telemetry::registry().counter("tiles.passes");
  static telemetry::Counter& c_halo =
      telemetry::registry().counter("tiles.halo_bytes");
  static telemetry::Counter& c_stall =
      telemetry::registry().counter("tiles.stall_micros");
  static telemetry::Counter& c_spins =
      telemetry::registry().counter("tiles.stall_spins");
  static telemetry::Counter& c_converged =
      telemetry::registry().counter("tiles.converged");
  static telemetry::Counter& c_stolen =
      telemetry::registry().counter("tiles.stolen_passes");
  static telemetry::Histogram& h_passes = telemetry::registry().histogram(
      "tiles.passes_used", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
  c_passes.add(rs.executed_passes);
  c_halo.add(halo_floats * sizeof(float));
  c_stall.add(static_cast<std::uint64_t>(rs.stall_seconds * 1e6));
  c_spins.add(rs.stall_spins);
  c_converged.add(rs.retired_nodes);
  c_stolen.add(rs.stolen_passes);
  for (const int p : report.tile_passes) h_passes.observe(p);
  telemetry::registry()
      .gauge("tiles.adaptive_pass_savings")
      .set(report.pass_savings());
  return report;
}

namespace {

/// max |m| over the frame rectangle [r0, r0+rows) x [c0, c0+cols).
float max_abs_rect(const Matrix<float>& m, int r0, int c0, int rows,
                   int cols) {
  float best = 0.f;
  for (int r = 0; r < rows; ++r) {
    const float* p = &m(r0 + r, c0);
    for (int c = 0; c < cols; ++c) best = std::max(best, std::fabs(p[c]));
  }
  return best;
}

}  // namespace

ResidentMultilevelReport ResidentTiledEngine::run_multilevel(
    const ResidentMultilevelOptions& options) {
  options.validate();
  ResidentMultilevelReport report;

  // Disabled / degenerate configurations delegate verbatim — the bit-exact
  // contract of the fixed-budget path rests on this being the SAME code.
  const int levels = CoarseCorrector::resolve_levels(
      plan_.frame_rows, plan_.frame_cols, options.multilevel);
  const int period = options.multilevel.period;
  const int num_firings =
      period > 0 ? (options.adaptive.max_passes - 1) / period : 0;
  if (levels == 0 || num_firings == 0 || tiles_.empty()) {
    report.adaptive = run_adaptive(options.adaptive);
    return report;
  }

  const telemetry::TraceSpan span("chambolle.resident.run_multilevel");
  telemetry::flight_mark("resident.run_multilevel",
                         static_cast<double>(options.adaptive.max_passes));
  if (options.adaptive.final_pass_iterations > options_.merge_iterations)
    throw std::invalid_argument(
        "run_multilevel: final_pass_iterations exceeds the merge depth");

  const std::size_t n = tiles_.size();
  report.adaptive.pass_cap = options.adaptive.max_passes;
  report.adaptive.tiles = n;
  report.adaptive.tile_passes.assign(n, 0);
  report.adaptive.tile_residuals.assign(n, 0.f);
  report.coarse_levels = levels;

  std::vector<int> streak(n, 0);
  // Whether the tile executed the cap's final (possibly truncated) pass —
  // needed for exact iteration accounting, since a resurrected tile's pass
  // history is not contiguous.
  std::vector<char> ran_final(n, 0);
  for (std::atomic<int>& f : frozen_pass_)
    f.store(-1, std::memory_order_relaxed);

  CoarseCorrector corrector;
  corrector.setup(frame_v_, params_, options.multilevel);
  DualField snap;
  const float unretire_tol =
      options.multilevel.unretire_factor * options.adaptive.tolerance;
  // The boundary whose rendezvous actually applied a correction (-1 = none):
  // written inside the exclusive window before the scheduler's releasing
  // rv_epoch store, read by boundary-pass bodies after its acquire — so a
  // plain int is race-free.  Bodies at a boundary whose firing was declined
  // by the progress gate must NOT fold in the (stale) delta buffers.
  int applied_boundary = -1;

  const int base = pass_count_;
  const float inv_theta = 1.f / params_.theta;
  const float step = params_.step();
  const int lanes = pool().lanes_for(options_.num_threads);
  parallel::PerLane<Matrix<float>> scratch(lanes);

  // Folds the last computed correction into one tile's WHOLE buffer
  // (profitable + halo): the delta is globally consistent, so overlapping
  // buffer cells of different tiles receive identical values.  No
  // projection here — the corrector's delta is corrected-feasible minus
  // snapshot, so a plain add lands on the projected state.
  const auto apply_delta = [&](std::size_t ti) {
    const TileSpec& t = plan_.tiles[ti];
    TileBuffers& b = tiles_[ti];
    const Matrix<float>& dx = corrector.delta_px();
    const Matrix<float>& dy = corrector.delta_py();
    for (int r = 0; r < t.buf_rows; ++r) {
      const float* sx = &dx(t.buf_row0 + r, t.buf_col0);
      const float* sy = &dy(t.buf_row0 + r, t.buf_col0);
      float* px = &b.px(r, 0);
      float* py = &b.py(r, 0);
      for (int c = 0; c < t.buf_cols; ++c) {
        px[c] += sx[c];
        py[c] += sy[c];
      }
    }
  };

  const auto body = [&](int node, int epoch, int lane) -> bool {
    const std::size_t ti = static_cast<std::size_t>(node);
    const TileSpec& t = plan_.tiles[ti];
    TileBuffers& b = tiles_[ti];
    const int g = base + epoch;
    if (g > 0) gather_halos(ti, g);
    // At a correction boundary, fold the rendezvous delta in AFTER the
    // gather: the gathered strips are pre-correction (live neighbors are
    // parked at the same boundary; a frozen neighbor's strips were re-
    // published from its pre-correction buffer by the rendezvous), so
    // adding the delta over the whole buffer lands every cell — profitable
    // and halo alike — on the corrected state exactly once.
    if (epoch > 0 && epoch == applied_boundary) apply_delta(ti);
    const RegionGeometry geom{t.buf_row0, t.buf_col0, plan_.frame_rows,
                              plan_.frame_cols};
    const int burst = (epoch == options.adaptive.max_passes - 1 &&
                       options.adaptive.final_pass_iterations > 0)
                          ? options.adaptive.final_pass_iterations
                          : options_.merge_iterations;
    float residual = 0.f;
    {
      const bool prof = telemetry::profiler_active();
      const std::uint64_t k0 = prof ? telemetry::detail::trace_now_ns() : 0;
      kernels::iterate_region_fused(b.px, b.py, b.v, geom, inv_theta, step,
                                    burst, scratch[lane], &residual);
      if (prof) {
        const double kernel_seconds =
            static_cast<double>(telemetry::detail::trace_now_ns() - k0) * 1e-9;
        telemetry::profiler_add(telemetry::LaneCause::kKernel, kernel_seconds);
        telemetry::profiler_add_tile(node, kernel_seconds);
      }
    }
    publish_strips(ti, g);
    ++report.adaptive.tile_passes[ti];
    report.adaptive.tile_residuals[ti] = residual;
    if (epoch == options.adaptive.max_passes - 1) ran_final[ti] = 1;
    if (residual < options.adaptive.tolerance) {
      if (++streak[ti] >= options.adaptive.patience) {
        mark_frozen(ti, g);
        return true;
      }
    } else {
      streak[ti] = 0;
    }
    return false;
  };

  // The rendezvous body: runs in the scheduler's exclusive window (every
  // live tile parked exactly at the boundary, every other tile retired), so
  // it may touch any tile buffer and any mailbox slot without racing a
  // reader — see EpochGraph::run_rendezvous.
  const auto rendezvous = [&](int /*firing*/,
                              parallel::EpochGraph::RendezvousControl& ctl) {
    const Stopwatch clock;
    const int boundary = ctl.boundary();  // epoch of the next fine pass
    const int gb = base + boundary;       // its global pass index (parity)
    // Step 0: re-sync each still-frozen tile's published strips from its
    // buffer (parity = its frozen pass, where its readers look).  Earlier
    // corrections were absorbed into the buffer but could not be published
    // mid-run; this bounds a frozen tile's publish drift to at most ONE
    // correction, never an accumulation.
    for (std::size_t i = 0; i < n; ++i) {
      const int f = frozen_pass_[i].load(std::memory_order_relaxed);
      if (f >= 0) publish_strips(i, f);
    }
    // Step 1+2: assemble the fine dual state and run the gated V-cycle.
    // The gate's residual is the max over tiles of the last pass's
    // buffer-wide |dp| — every live tile is parked at the boundary, so each
    // entry is that tile's pass (boundary - 1) value; frozen tiles
    // contribute their (sub-tolerance) retirement-time residual.
    float churn = 0.f;
    for (std::size_t i = 0; i < n; ++i)
      churn = std::max(churn, report.adaptive.tile_residuals[i]);
    snapshot(snap);
    const CoarseCorrector::Result res =
        corrector.compute(snap.px, snap.py, churn);
    if (!res.applied) {
      // Baseline call, gate declined, or the energy safeguard vetoed the
      // cycle's output: no delta exists, so boundary-pass bodies must not
      // apply one and frozen tiles stay untouched.
      applied_boundary = -1;
      ++report.coarse_gated;
      report.rendezvous_seconds += clock.seconds();
      return;
    }
    applied_boundary = boundary;
    ++report.coarse_solves;
    report.last_correction_max = res.max_delta;
    // Step 3: retired tiles don't run a boundary pass, so they take the
    // correction here — in place if it is below the un-retirement bar,
    // by resurrection otherwise.
    for (std::size_t i = 0; i < n; ++i) {
      const int f = frozen_pass_[i].load(std::memory_order_relaxed);
      if (f < 0) continue;
      const TileSpec& t = plan_.tiles[i];
      const float local = std::max(
          max_abs_rect(corrector.delta_px(), t.prof_row0, t.prof_col0,
                       t.prof_rows, t.prof_cols),
          max_abs_rect(corrector.delta_py(), t.prof_row0, t.prof_col0,
                       t.prof_rows, t.prof_cols));
      if (local > unretire_tol) {
        // Resurrect: publish the PRE-correction strips at the live parity
        // the boundary-pass gathers read, clear the frozen marker, and
        // rewind the node.  The tile's own boundary pass then applies the
        // delta exactly like every live tile — no special casing, no
        // double application.
        publish_strips(i, gb - 1);
        frozen_pass_[i].store(-1, std::memory_order_relaxed);
        streak[i] = 0;
        ctl.resurrect(static_cast<int>(i));
        ++report.tiles_unretired;
      } else {
        // Stay frozen: fold the correction into the frozen buffer.  Its
        // published strips intentionally stay pre-correction until the next
        // step-0 re-sync (or the epilogue): readers between boundaries see
        // a drift of at most this one delta, itself bounded by
        // unretire_tol — the same deviation class the adaptive tolerance
        // mode already admits.
        apply_delta(i);
      }
    }
    report.rendezvous_seconds += clock.seconds();
  };

  const parallel::EpochGraph::RunStats rs = graph_->run_rendezvous(
      options.adaptive.max_passes, period, lanes, pool(), body, rendezvous);

  // Quiescent epilogue: frozen buffers may hold corrections absorbed after
  // their last publish, so republish from the buffer into BOTH parity slots
  // (later run()/run_adaptive() gathers assume the live parity) and clear
  // the markers.
  std::size_t converged = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int f = frozen_pass_[i].load(std::memory_order_relaxed);
    if (f < 0) continue;
    ++converged;
    publish_strips(i, 0);
    publish_strips(i, 1);
    frozen_pass_[i].store(-1, std::memory_order_relaxed);
  }
  pass_count_ += options.adaptive.max_passes;

  report.adaptive.tiles_converged = converged;
  report.adaptive.total_tile_passes = rs.executed_passes;
  report.adaptive.stolen_passes = rs.stolen_passes;

  stats_.passes += options.adaptive.max_passes;
  stats_.stall_seconds += rs.stall_seconds;
  stats_.stall_spins += rs.stall_spins;
  std::uint64_t halo_floats = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t out_elems = 0;
    for (const int mi : out_edges_[i])
      out_elems += 2 * mail_[static_cast<std::size_t>(mi)].edge.elements();
    halo_floats +=
        static_cast<std::uint64_t>(out_elems) *
        static_cast<std::uint64_t>(report.adaptive.tile_passes[i]);
    std::size_t iters =
        static_cast<std::size_t>(report.adaptive.tile_passes[i]) *
        static_cast<std::size_t>(options_.merge_iterations);
    if (options.adaptive.final_pass_iterations > 0 && ran_final[i])
      iters -= static_cast<std::size_t>(options_.merge_iterations -
                                        options.adaptive.final_pass_iterations);
    report.adaptive.total_iterations += iters;
    stats_.element_iterations += plan_.tiles[i].buffer_elements() * iters;
  }
  stats_.halo_bytes_exchanged += halo_floats * sizeof(float);

  static telemetry::Counter& c_passes =
      telemetry::registry().counter("tiles.passes");
  static telemetry::Counter& c_halo =
      telemetry::registry().counter("tiles.halo_bytes");
  static telemetry::Counter& c_stall =
      telemetry::registry().counter("tiles.stall_micros");
  static telemetry::Counter& c_spins =
      telemetry::registry().counter("tiles.stall_spins");
  static telemetry::Counter& c_converged =
      telemetry::registry().counter("tiles.converged");
  static telemetry::Counter& c_stolen =
      telemetry::registry().counter("tiles.stolen_passes");
  static telemetry::Counter& c_solves =
      telemetry::registry().counter("tiles.coarse_solves");
  static telemetry::Counter& c_gated =
      telemetry::registry().counter("tiles.coarse_gated");
  static telemetry::Counter& c_unretired =
      telemetry::registry().counter("tiles.coarse_unretired");
  static telemetry::Counter& c_rv_micros =
      telemetry::registry().counter("tiles.coarse_rendezvous_micros");
  static telemetry::Histogram& h_passes = telemetry::registry().histogram(
      "tiles.passes_used", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
  c_passes.add(rs.executed_passes);
  c_halo.add(halo_floats * sizeof(float));
  c_stall.add(static_cast<std::uint64_t>(rs.stall_seconds * 1e6));
  c_spins.add(rs.stall_spins);
  c_converged.add(converged);
  c_stolen.add(rs.stolen_passes);
  c_solves.add(report.coarse_solves);
  c_gated.add(report.coarse_gated);
  c_unretired.add(report.tiles_unretired);
  c_rv_micros.add(static_cast<std::uint64_t>(report.rendezvous_seconds * 1e6));
  for (const int p : report.adaptive.tile_passes) h_passes.observe(p);
  telemetry::registry()
      .gauge("tiles.coarse_correction_norm")
      .set(static_cast<double>(report.last_correction_max));
  telemetry::registry()
      .gauge("tiles.adaptive_pass_savings")
      .set(report.adaptive.pass_savings());
  return report;
}

void ResidentTiledEngine::snapshot(DualField& out) const {
  out.px.resize(plan_.frame_rows, plan_.frame_cols);
  out.py.resize(plan_.frame_rows, plan_.frame_cols);
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    const TileSpec& t = plan_.tiles[i];
    const TileBuffers& b = tiles_[i];
    kernels::copy_rect(b.px, t.prof_row0 - t.buf_row0, t.prof_col0 - t.buf_col0,
                       out.px, t.prof_row0, t.prof_col0, t.prof_rows,
                       t.prof_cols);
    kernels::copy_rect(b.py, t.prof_row0 - t.buf_row0, t.prof_col0 - t.buf_col0,
                       out.py, t.prof_row0, t.prof_col0, t.prof_rows,
                       t.prof_cols);
  }
}

void ResidentTiledEngine::reset_v(const Matrix<float>& v,
                                  const DualField* initial) {
  if (!v.same_shape(frame_v_))
    throw std::invalid_argument("ResidentTiledEngine::reset_v: shape mismatch");
  frame_v_ = v;
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    const TileSpec& t = plan_.tiles[i];
    kernels::copy_rect(v, t.buf_row0, t.buf_col0, tiles_[i].v, 0, 0,
                       t.buf_rows, t.buf_cols);
  }
  if (initial != nullptr) {
    if (!initial->px.same_shape(v) || !initial->py.same_shape(v))
      throw std::invalid_argument(
          "ResidentTiledEngine::reset_v: initial dual shape mismatch");
    load_duals(initial);
  }
  // initial == nullptr: duals stay resident (warm start); the mailbox
  // parity clock keeps running so the next run() gathers valid halos.
}

ChambolleResult ResidentTiledEngine::result() const {
  ChambolleResult out;
  snapshot(out.p);
  const RegionGeometry geom =
      RegionGeometry::full_frame(plan_.frame_rows, plan_.frame_cols);
  out.u = recover_u(frame_v_, out.p.px, out.p.py, geom, params_.theta);
  return out;
}

ChambolleResult solve_resident(const Matrix<float>& v,
                               const ChambolleParams& params,
                               const TiledSolverOptions& options,
                               ResidentTiledStats* stats,
                               const DualField* initial) {
  const telemetry::TraceSpan span("chambolle.solve_resident");
  ResidentTiledEngine engine(v, params, options, initial);
  engine.run(params.iterations);
  static telemetry::Counter& c_solves =
      telemetry::registry().counter("tiles.resident_solves");
  c_solves.add(1);
  if (stats != nullptr) *stats = engine.stats();
  return engine.result();
}

ChambolleResult solve_resident_adaptive(const Matrix<float>& v,
                                        const ChambolleParams& params,
                                        const TiledSolverOptions& options,
                                        const ResidentAdaptiveOptions& adaptive,
                                        ResidentAdaptiveReport* report,
                                        ResidentTiledStats* stats,
                                        const DualField* initial) {
  const telemetry::TraceSpan span("chambolle.solve_resident_adaptive");
  ResidentAdaptiveOptions opts = adaptive;
  if (opts.max_passes <= 0) {
    // Default the cap to the fixed budget: the adaptive solve never does
    // more work than solve_resident() with the same params.  Mirror run()'s
    // remainder schedule so a run where nothing retires is bit-exact with
    // the fixed solve even when iterations % merge != 0.
    const int merge = std::max(1, options.merge_iterations);
    opts.max_passes = std::max(1, (params.iterations + merge - 1) / merge);
    const int tail = params.iterations - (opts.max_passes - 1) * merge;
    if (tail > 0 && tail < merge) opts.final_pass_iterations = tail;
  }
  ResidentTiledEngine engine(v, params, options, initial);
  const ResidentAdaptiveReport rep = engine.run_adaptive(opts);
  static telemetry::Counter& c_solves =
      telemetry::registry().counter("tiles.adaptive_solves");
  c_solves.add(1);
  if (report != nullptr) *report = rep;
  if (stats != nullptr) *stats = engine.stats();
  return engine.result();
}

ChambolleResult solve_resident_multilevel(
    const Matrix<float>& v, const ChambolleParams& params,
    const TiledSolverOptions& options,
    const ResidentMultilevelOptions& multilevel,
    ResidentMultilevelReport* report, ResidentTiledStats* stats,
    const DualField* initial) {
  const telemetry::TraceSpan span("chambolle.solve_resident_multilevel");
  ResidentMultilevelOptions opts = multilevel;
  if (opts.adaptive.max_passes <= 0) {
    // Same fixed-budget sentinel as solve_resident_adaptive(): the cap is
    // the schedule of solve_resident(params) including its remainder pass.
    const int merge = std::max(1, options.merge_iterations);
    opts.adaptive.max_passes =
        std::max(1, (params.iterations + merge - 1) / merge);
    const int tail =
        params.iterations - (opts.adaptive.max_passes - 1) * merge;
    if (tail > 0 && tail < merge) opts.adaptive.final_pass_iterations = tail;
  }
  ResidentTiledEngine engine(v, params, options, initial);
  const ResidentMultilevelReport rep = engine.run_multilevel(opts);
  static telemetry::Counter& c_solves =
      telemetry::registry().counter("tiles.multilevel_solves");
  c_solves.add(1);
  if (report != nullptr) *report = rep;
  if (stats != nullptr) *stats = engine.stats();
  return engine.result();
}

}  // namespace chambolle
