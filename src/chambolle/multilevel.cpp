#include "chambolle/multilevel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "grid/diff_ops.hpp"
#include "grid/transfer.hpp"
#include "kernels/kernel.hpp"

namespace chambolle {

void project_unit_ball(Matrix<float>& px, Matrix<float>& py) {
  if (!px.same_shape(py))
    throw std::invalid_argument("project_unit_ball: shape mismatch");
  float* x = px.data().data();
  float* y = py.data().data();
  const std::size_t n = px.size();
  for (std::size_t i = 0; i < n; ++i) {
    const float s = std::sqrt(x[i] * x[i] + y[i] * y[i]);
    if (s > 1.f) {
      x[i] /= s;
      y[i] /= s;
    }
  }
}

int CoarseCorrector::resolve_levels(int rows, int cols,
                                    const MultilevelOptions& options) {
  if (!options.enabled()) return 0;
  const int min_dim = std::min(rows, cols);
  // Deepest ladder whose coarsest extent still has >= 4 cells; frames that
  // cannot coarsen even once run without correction.
  int max_levels = 0;
  for (int d = min_dim; grid::coarse_extent(d) >= 4; d = grid::coarse_extent(d))
    ++max_levels;
  if (max_levels == 0) return 0;
  int levels = options.levels;
  if (levels == 0) {
    // Auto rule: one coarse level (see the resolve_levels doc — with the
    // default iteration budgets a two-level cycle out-corrects deeper
    // ladders, whose under-solved base feeds safeguard rejections).
    levels = 1;
  }
  return std::min(levels, max_levels);
}

void CoarseCorrector::setup(const Matrix<float>& v,
                            const ChambolleParams& params,
                            const MultilevelOptions& options) {
  params.validate();
  options.validate();
  params_ = params;
  options_ = options;
  levels_ = resolve_levels(v.rows(), v.cols(), options);
  v_.clear();
  px_.clear();
  py_.clear();
  p0x_.clear();
  p0y_.clear();
  div_.clear();
  rdiv_.clear();
  if (levels_ == 0) return;
  fv_ = v;
  v_.resize(levels_);
  px_.resize(levels_);
  py_.resize(levels_);
  p0x_.resize(levels_);
  p0y_.resize(levels_);
  div_.resize(levels_ + 1);
  rdiv_.resize(levels_);
  div_[0].resize(v.rows(), v.cols());
  int rows = v.rows(), cols = v.cols();
  for (int l = 1; l <= levels_; ++l) {
    rows = grid::coarse_extent(rows);
    cols = grid::coarse_extent(cols);
    v_[l - 1].resize(rows, cols);
    px_[l - 1].resize(rows, cols);
    py_[l - 1].resize(rows, cols);
    div_[l].resize(rows, cols);
    rdiv_[l - 1].resize(rows, cols);
  }
  dpx_.resize(v.rows(), v.cols());
  dpy_.resize(v.rows(), v.cols());
  u_.resize(v.rows(), v.cols());
  prev_u_.resize(v.rows(), v.cols());
  has_baseline_ = false;
}

namespace {

float max_abs(const Matrix<float>& m) {
  float best = 0.f;
  const float* p = m.data().data();
  const std::size_t n = m.size();
  for (std::size_t i = 0; i < n; ++i) best = std::max(best, std::fabs(p[i]));
  return best;
}

}  // namespace

CoarseCorrector::Result CoarseCorrector::compute(const Matrix<float>& px,
                                                 const Matrix<float>& py,
                                                 float residual) {
  if (!active())
    throw std::logic_error("CoarseCorrector::compute: corrector is inactive");
  if (!px.same_shape(dpx_) || !py.same_shape(dpy_))
    throw std::invalid_argument(
        "CoarseCorrector::compute: snapshot shape mismatch");

  Result res;

  // Progress gate.  The fine divergence doubles as the first defect-data
  // ingredient, so computing the primal here costs one extra O(N) sweep;
  // the dual objective D = sum u^2 of the current state rides along for
  // free (the safeguard's d_bar_ bookkeeping below).
  grid::divergence_into(px, py, div_[0]);
  double d_cur = 0.0;
  {
    const float* v = fv_.data().data();
    const float* d = div_[0].data().data();
    float* u = u_.data().data();
    const std::size_t nf = u_.size();
    for (std::size_t i = 0; i < nf; ++i) {
      u[i] = v[i] - params_.theta * d[i];
      d_cur += static_cast<double>(u[i]) * u[i];
    }
  }
  if (!has_baseline_) {
    std::swap(u_, prev_u_);
    has_baseline_ = true;
    d_bar_ = d_cur;
    return res;
  }
  {
    float drift = 0.f;
    const float* u = u_.data().data();
    const float* pu = prev_u_.data().data();
    const std::size_t nf = u_.size();
    for (std::size_t i = 0; i < nf; ++i)
      drift = std::max(drift, std::fabs(u[i] - pu[i]));
    res.progress = drift / static_cast<float>(options_.period);
  }
  std::swap(u_, prev_u_);
  if (res.progress <= options_.gate_factor * residual) {
    d_bar_ = d_cur;
    return res;
  }
  res.applied = true;

  // Downward leg: restrict the dual state level by level, keeping the
  // pre-cycle snapshot p0 of each coarse level, and build each level's
  // defect-corrected data (header comment):
  //   vt_l = R(vt_{l-1}) + theta_l * (div_l(R p) - 2 * R(div_{l-1} p)).
  const Matrix<float>* sx = &px;
  const Matrix<float>* sy = &py;
  const Matrix<float>* sv = &fv_;
  for (int l = 1; l <= levels_; ++l) {
    grid::restrict_half(*sx, px_[l - 1]);
    grid::restrict_half(*sy, py_[l - 1]);
    p0x_[l - 1] = px_[l - 1];
    p0y_[l - 1] = py_[l - 1];
    grid::divergence_into(px_[l - 1], py_[l - 1], div_[l]);
    grid::restrict_half(*sv, v_[l - 1]);
    grid::restrict_half(div_[l - 1], rdiv_[l - 1]);
    const float theta_l = params_.theta / static_cast<float>(1 << l);
    float* vt = v_[l - 1].data().data();
    const float* dc = div_[l].data().data();
    const float* rd = rdiv_[l - 1].data().data();
    const std::size_t nl = v_[l - 1].size();
    for (std::size_t i = 0; i < nl; ++i)
      vt[i] += theta_l * (dc[i] - 2.f * rd[i]);
    sx = &px_[l - 1];
    sy = &py_[l - 1];
    sv = &v_[l - 1];
  }

  // Base solve on the coarsest level.
  solve_level(levels_, options_.coarse_iterations);

  // Upward leg through the intermediate levels: lift each level's dual
  // increment one level up, restore feasibility, smooth.
  for (int l = levels_; l >= 2; --l) {
    Matrix<float>& up_x = px_[l - 2];
    Matrix<float>& up_y = py_[l - 2];
    grid::sub_into(px_[l - 1], p0x_[l - 1], p0x_[l - 1]);
    grid::sub_into(py_[l - 1], p0y_[l - 1], p0y_[l - 1]);
    grid::prolong_bilinear_into(p0x_[l - 1], up_x.rows(), up_x.cols(), lift_);
    grid::add_scaled(up_x, lift_, options_.prolong_scale);
    grid::prolong_bilinear_into(p0y_[l - 1], up_y.rows(), up_y.cols(), lift_);
    grid::add_scaled(up_y, lift_, options_.prolong_scale);
    project_unit_ball(up_x, up_y);
    if (options_.smooth_iterations > 0)
      solve_level(l - 1, options_.smooth_iterations);
  }

  // Fine-level candidate: the corrected feasible state, assembled in the
  // delta buffers — the projection is taken here, once, on the globally
  // assembled field.
  grid::sub_into(px_[0], p0x_[0], p0x_[0]);
  grid::sub_into(py_[0], p0y_[0], p0y_[0]);
  grid::prolong_bilinear_into(p0x_[0], px.rows(), px.cols(), lift_);
  dpx_ = px;
  grid::add_scaled(dpx_, lift_, options_.prolong_scale);
  grid::prolong_bilinear_into(p0y_[0], py.rows(), py.cols(), lift_);
  dpy_ = py;
  grid::add_scaled(dpy_, lift_, options_.prolong_scale);
  project_unit_ball(dpx_, dpy_);

  // Dual-objective safeguard: the candidate is applied only if it strictly
  // undercuts d_bar_, the dual objective D(p) = ||v - theta div p||^2
  // = ||u(p)||^2 of the state the PREVIOUS rendezvous exited with.  D is
  // the fine iteration's own descent function (its minimizer over the unit
  // ball is the fixed point), so this makes the exit-state sequence
  //   D(exit_0) > D(exit_1) > D(exit_2) > ...
  // strictly decreasing — a Lyapunov invariant of the composed iteration
  // that structurally rules out correction/fine-pass limit cycles: a
  // correction that drags the state back toward the coarse model's fixed
  // point (which sits a discretization gap from the fine one) would need D
  // to return to a prior value, and is declined instead, so the fine
  // iteration converges past the coarse accuracy floor undisturbed.  The
  // comparison is deliberately against the previous EXIT state and not the
  // current one: the prolongated increment carries transient roughness that
  // can raise D (and the primal energy) instantaneously even when the
  // period as a whole — fine passes plus correction — nets real progress.
  grid::divergence_into(dpx_, dpy_, div_[0]);
  double d_corrected = 0.0;
  {
    const float* vv = fv_.data().data();
    const float* d = div_[0].data().data();
    float* uc = u_.data().data();  // u_ is scratch after the baseline swap
    const std::size_t nf = u_.size();
    for (std::size_t i = 0; i < nf; ++i) {
      uc[i] = vv[i] - params_.theta * d[i];
      d_corrected += static_cast<double>(uc[i]) * uc[i];
    }
  }
  if (!(d_corrected < d_bar_)) {
    res.applied = false;
    res.safeguard_declined = true;
    d_bar_ = d_cur;  // exit state = the unchanged current state
    return res;
  }
  d_bar_ = d_corrected;
  // Accepted: the next call's drift baseline is the CORRECTED primal, so the
  // gate measures fine-pass progress only, never the correction's own jump.
  std::swap(u_, prev_u_);

  grid::sub_into(dpx_, px, dpx_);
  grid::sub_into(dpy_, py, dpy_);

  res.max_delta = std::max(max_abs(dpx_), max_abs(dpy_));
  return res;
}

void CoarseCorrector::solve_level(int level, int iterations) {
  Matrix<float>& lpx = px_[level - 1];
  Matrix<float>& lpy = py_[level - 1];
  // theta_l = theta / 2^l, tau_l = tau / 2^l: the ratio (and so the kernel
  // step) is unchanged, only inv_theta scales.
  const float inv_theta =
      static_cast<float>(1 << level) / params_.theta;
  kernels::iterate_region_fused(
      lpx, lpy, v_[level - 1],
      RegionGeometry::full_frame(lpx.rows(), lpx.cols()), inv_theta,
      params_.step(), iterations, term_);
}

}  // namespace chambolle
