// tile.hpp — sliding-window tiling geometry (Section III-B).
//
// The frame is divided into overlapping sub-matrices ("sliding windows").
// Each tile owns a PROFITABLE rectangle — elements whose dependency cone over
// the merged iterations stays inside the tile buffer — and the profitable
// rectangles of all tiles partition the frame exactly ("profitable areas are
// contiguous").  Tile edges that coincide with frame borders need no halo,
// because the algorithm's boundary rules make those elements inherently
// correct (Section III-A).
#pragma once

#include <cstddef>
#include <vector>

namespace chambolle {

/// One sliding-window tile, in frame coordinates.
struct TileSpec {
  // Buffer rectangle actually loaded into the window (profitable + halo).
  int buf_row0 = 0;
  int buf_col0 = 0;
  int buf_rows = 0;
  int buf_cols = 0;
  // Profitable rectangle written back to the output.
  int prof_row0 = 0;
  int prof_col0 = 0;
  int prof_rows = 0;
  int prof_cols = 0;

  [[nodiscard]] std::size_t buffer_elements() const {
    return static_cast<std::size_t>(buf_rows) * buf_cols;
  }
  [[nodiscard]] std::size_t profitable_elements() const {
    return static_cast<std::size_t>(prof_rows) * prof_cols;
  }
};

/// A complete tiling of a frame.
struct TilingPlan {
  int frame_rows = 0;
  int frame_cols = 0;
  int halo = 0;
  std::vector<TileSpec> tiles;

  /// Sum of all buffer elements (includes replicated halo elements).
  [[nodiscard]] std::size_t total_buffer_elements() const;
  /// Sum of profitable elements; equals frame_rows*frame_cols by invariant.
  [[nodiscard]] std::size_t total_profitable_elements() const;
  /// Redundant work fraction: buffers/frame - 1 (the paper's "slight memory
  /// overhead ... computation overhead"; 0 means no replication).
  [[nodiscard]] double redundancy() const;
};

/// One directed halo-exchange edge of the resident-tile engine: after every
/// merged pass, tile `src` sends the frame-coordinate rectangle
/// [row0, row0+rows) x [col0, col0+cols) — the overlap of src's PROFITABLE
/// area with dst's BUFFER — to tile `dst`, which scatters it into its halo
/// cells.  Because profitable rectangles partition the frame, the incoming
/// rectangles of each tile partition its halo ring exactly (asserted by
/// tests/tile_test.cpp), so a gather refreshes every halo cell once and
/// touches nothing else.
struct HaloEdge {
  int src = 0;  ///< tile index publishing the strip
  int dst = 0;  ///< tile index consuming it
  int row0 = 0;
  int col0 = 0;
  int rows = 0;
  int cols = 0;

  [[nodiscard]] std::size_t elements() const {
    return static_cast<std::size_t>(rows) * cols;
  }
};

/// Directed halo-exchange edges between all tile pairs of `plan`.  A grid
/// tiling yields <= 8 in-edges per tile (the 4-/8-connected neighborhood);
/// the relation is symmetric (i sends to j iff j sends to i) because buffers
/// expand profitable areas by the same halo on every interior side.
/// halo == 0 yields no edges.
[[nodiscard]] std::vector<HaloEdge> make_halo_edges(const TilingPlan& plan);

/// Total floats moved per pass by a halo exchange over `edges`, counting
/// both dual components (px and py) per cell.
[[nodiscard]] std::size_t halo_exchange_elements(
    const std::vector<HaloEdge>& edges);

/// Builds the tiling: tile buffers are at most tile_rows x tile_cols (the
/// paper's windows are 88 x 92); `halo` is the profitable margin, equal to
/// the number of merged iterations.  Requires tile dims > 2*halo so every
/// tile has a non-empty profitable core.  Throws std::invalid_argument
/// otherwise.
[[nodiscard]] TilingPlan make_tiling(int frame_rows, int frame_cols,
                                     int tile_rows, int tile_cols, int halo);

}  // namespace chambolle
