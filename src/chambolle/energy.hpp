// energy.hpp — the ROF objective the Chambolle iteration minimizes.
//
// For the sub-problem solved at each TV-L1 level (u given v):
//     E(u) = TV(u) + 1/(2*theta) * ||u - v||^2
// with TV(u) the discrete total variation under the same forward-difference
// scheme as the solver.  Energy monotonicity along the iterates is one of the
// library's primary correctness oracles.
#pragma once

#include "common/matrix.hpp"

namespace chambolle {

/// Discrete total variation: sum over the grid of |forward gradient|.
[[nodiscard]] double total_variation(const Matrix<float>& u);

/// Squared L2 distance sum (u - v)^2 over the grid.
[[nodiscard]] double l2_distance_sq(const Matrix<float>& u,
                                    const Matrix<float>& v);

/// The ROF energy E(u) = TV(u) + 1/(2*theta)*||u - v||^2.
[[nodiscard]] double rof_energy(const Matrix<float>& u, const Matrix<float>& v,
                                float theta);

/// Largest dual magnitude max_ij |(px, py)(i,j)|; the Chambolle iteration
/// keeps this <= 1 (the projection onto the unit ball), which the 9-bit Q1.8
/// hardware format relies on.
[[nodiscard]] double max_dual_magnitude(const Matrix<float>& px,
                                        const Matrix<float>& py);

}  // namespace chambolle
