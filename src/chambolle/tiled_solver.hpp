// tiled_solver.hpp — the paper's parallel Chambolle: loop decomposition +
// sliding windows, realized with CPU threads instead of PE arrays.
//
// Iterations are merged in groups of `merge_iterations` (= the halo width).
// Each pass, every tile buffer is loaded with the pre-pass global state
// (including halo), iterated locally K times with locally resolved
// dependencies, and its PROFITABLE rectangle written back.  Because the
// profitable rectangles partition the frame and the per-element arithmetic is
// shared with the reference solver, the result is bit-exact equal to the
// sequential full-frame solver — the machine-checkable form of the paper's
// correctness argument.
#pragma once

#include <cstddef>

#include "chambolle/params.hpp"
#include "chambolle/solver.hpp"
#include "chambolle/tile.hpp"
#include "common/image.hpp"
#include "parallel/thread_pool.hpp"

namespace chambolle {

struct TiledSolverOptions {
  /// Sliding-window buffer size; the paper's hardware uses 88 x 92.
  int tile_rows = 88;
  int tile_cols = 92;
  /// Iterations merged per pass (K); the halo/profitable margin equals K.
  int merge_iterations = 4;
  /// Worker threads; 0 means the default pool's configured width.
  int num_threads = 0;
  /// kPool runs every pass on the resident default pool (zero steady-state
  /// thread creation); kSpawn is the legacy spawn-per-pass baseline, kept so
  /// the benches can measure what the pool buys.
  parallel::Execution execution = parallel::Execution::kPool;
  /// Pool the solve's parallel regions run on; nullptr means the process-wide
  /// default_pool().  A ThreadPool serializes concurrent regions, so N
  /// engines sharing one pool take turns — the serving fleet
  /// (src/serving/) hands every engine its own lane-partitioned pool
  /// through this field so concurrent sessions actually overlap.  The
  /// pointer is not owned; it must outlive every solve that uses it.
  parallel::ThreadPool* pool = nullptr;

  void validate() const;
};

/// Statistics of a tiled solve, used by the overhead benches (E6).
struct TiledSolverStats {
  int passes = 0;
  std::size_t tiles_per_pass = 0;
  /// Total element-iterations executed, including redundant halo work.
  std::size_t element_iterations = 0;
  /// Element-iterations a full-frame solver would execute (pixels * iters).
  std::size_t useful_element_iterations = 0;
  /// Redundant work fraction: executed/useful - 1.
  [[nodiscard]] double overhead() const {
    if (useful_element_iterations == 0) return 0.0;
    return static_cast<double>(element_iterations) /
               static_cast<double>(useful_element_iterations) -
           1.0;
  }
};

/// Solves one component with the tiled parallel scheme.  `stats`, when
/// non-null, receives the work accounting.
[[nodiscard]] ChambolleResult solve_tiled(const Matrix<float>& v,
                                          const ChambolleParams& params,
                                          const TiledSolverOptions& options,
                                          TiledSolverStats* stats = nullptr);

/// Runs one merged pass over all tiles of `plan`: reads (px, py) and writes
/// the updated state into (px_out, py_out).  Exposed separately so tests can
/// exercise individual passes.  `iterations_this_pass` must be <= plan.halo.
void run_tiled_pass(const Matrix<float>& px, const Matrix<float>& py,
                    Matrix<float>& px_out, Matrix<float>& py_out,
                    const Matrix<float>& v, const TilingPlan& plan,
                    const ChambolleParams& params, int iterations_this_pass,
                    int num_threads,
                    parallel::Execution execution = parallel::Execution::kPool);

}  // namespace chambolle
