#include "chambolle/dependency.hpp"

#include <cmath>
#include <stdexcept>

#include "chambolle/solver.hpp"

namespace chambolle {

const std::vector<Offset>& dependency_stencil() {
  // Derived in the header comment; matches Figure 1.a (7 elements).  The set
  // happens to be symmetric under negation, so "what (i,j) depends on" and
  // "who depends on (i,j)" coincide.
  static const std::vector<Offset> stencil = {
      {0, 0}, {0, -1}, {-1, 0}, {0, 1}, {-1, 1}, {1, 0}, {1, -1}};
  return stencil;
}

std::set<Offset> dependency_cone(const std::set<Offset>& group, int depth) {
  if (depth < 0) throw std::invalid_argument("dependency_cone: depth < 0");
  std::set<Offset> cone = group;
  for (int d = 0; d < depth; ++d) {
    std::set<Offset> next;
    for (const Offset& o : cone)
      for (const Offset& s : dependency_stencil())
        next.insert({o.dr + s.dr, o.dc + s.dc});
    cone = std::move(next);
  }
  return cone;
}

DecompositionOverhead decomposition_overhead(int group_rows, int group_cols,
                                             int depth) {
  if (group_rows <= 0 || group_cols <= 0)
    throw std::invalid_argument("decomposition_overhead: empty group");
  std::set<Offset> group;
  for (int r = 0; r < group_rows; ++r)
    for (int c = 0; c < group_cols; ++c) group.insert({r, c});
  const std::set<Offset> cone = dependency_cone(group, depth);
  DecompositionOverhead out;
  out.group_rows = group_rows;
  out.group_cols = group_cols;
  out.depth = depth;
  out.group_elements = group_rows * group_cols;
  out.cone_elements = static_cast<int>(cone.size());
  out.per_element =
      static_cast<double>(out.cone_elements) / out.group_elements;
  return out;
}

int profitable_margin(int merged_iterations) {
  if (merged_iterations < 0)
    throw std::invalid_argument("profitable_margin: negative iterations");
  // The stencil extends one cell in each of the four directions, so the
  // dependency cone radius grows by exactly 1 per merged iteration.
  return merged_iterations;
}

std::set<Offset> empirical_dependents(int grid) {
  if (grid < 5 || grid % 2 == 0)
    throw std::invalid_argument("empirical_dependents: grid must be odd >= 5");
  const int mid = grid / 2;
  ChambolleParams params;
  params.iterations = 1;

  // A smooth non-trivial v so no Term is accidentally zero.
  Matrix<float> v(grid, grid);
  for (int r = 0; r < grid; ++r)
    for (int c = 0; c < grid; ++c)
      v(r, c) = std::sin(0.7f * static_cast<float>(r)) +
                0.5f * std::cos(0.9f * static_cast<float>(c));

  const auto run = [&](float bump) {
    DualField p(grid, grid);
    for (int r = 0; r < grid; ++r)
      for (int c = 0; c < grid; ++c) {
        p.px(r, c) = 0.1f * std::sin(0.3f * static_cast<float>(r * grid + c));
        p.py(r, c) = 0.1f * std::cos(0.2f * static_cast<float>(r * grid + c));
      }
    p.px(mid, mid) += bump;
    p.py(mid, mid) += bump;
    const RegionGeometry geom = RegionGeometry::full_frame(grid, grid);
    Matrix<float> scratch;
    iterate_region(p.px, p.py, v, geom, params, 1, scratch);
    return p;
  };

  const DualField base = run(0.f);
  const DualField bumped = run(0.05f);
  std::set<Offset> changed;
  for (int r = 0; r < grid; ++r)
    for (int c = 0; c < grid; ++c)
      if (base.px(r, c) != bumped.px(r, c) || base.py(r, c) != bumped.py(r, c))
        changed.insert({r - mid, c - mid});
  return changed;
}

}  // namespace chambolle
