// params.hpp — parameters of the Chambolle fixed-point iteration.
//
// theta and tau are the "predefined values that determine the precision"
// (Section II-A).  Chambolle's convergence proof requires tau/theta <= 1/4
// for this discretization; the defaults sit exactly on that bound.
#pragma once

#include <cmath>
#include <stdexcept>

namespace chambolle {

struct ChambolleParams {
  /// Quadratic coupling weight of the ROF sub-problem (u = v - theta*div p).
  float theta = 0.25f;
  /// Dual ascent step.  Stability requires tau/theta <= 1/4.
  float tau = 0.0625f;
  /// Number of fixed-point iterations (the paper evaluates 50/100/200).
  int iterations = 100;

  /// Throws std::invalid_argument when the parameters violate the stability
  /// bound or are non-positive.
  void validate() const {
    // The explicit isfinite checks matter: every comparison with NaN is
    // false, so a NaN theta/tau would sail through the sign and ratio tests
    // below and poison the solve (found by the structured fuzz harness).
    if (!std::isfinite(theta) || !std::isfinite(tau))
      throw std::invalid_argument("ChambolleParams: non-finite theta/tau");
    if (theta <= 0.f) throw std::invalid_argument("ChambolleParams: theta <= 0");
    if (tau <= 0.f) throw std::invalid_argument("ChambolleParams: tau <= 0");
    if (iterations < 0)
      throw std::invalid_argument("ChambolleParams: negative iterations");
    if (tau / theta > 0.25f + 1e-6f)
      throw std::invalid_argument(
          "ChambolleParams: tau/theta > 1/4 breaks convergence");
    if (tau / theta <= 0.f)
      throw std::invalid_argument(
          "ChambolleParams: tau/theta underflows to zero (no-op update)");
  }

  /// The combined step tau/theta that appears in Algorithm 1 lines 7-8.
  [[nodiscard]] float step() const { return tau / theta; }
};

/// Options of the multi-level coarse-grid correction the resident-tile
/// engine composes with its halo-exchange passes (run_multilevel): every
/// `period` fine passes the current dual state is restricted down `levels`
/// grids, a small Chambolle solve runs on the coarsest level, and the
/// prolongated dual correction is scattered back into the tile buffers.
/// The point (Gilliocq-Hirtz & Belhachmi's multi-level domain decomposition;
/// Hilb & Langer's decomposition framework): low-frequency error otherwise
/// crosses the frame one halo strip per pass, so passes-to-tolerance grows
/// with frame size — the coarse solve moves it globally in one step.
///
/// Grid-consistency note: levels are ceil-halved (grid/transfer.hpp) and the
/// level-l solve runs with theta and tau both divided by 2^l.  With the
/// unit-spacing discretization this is the consistent rediscretization of
/// the same continuum ROF problem (theta_d = theta_cont / h), and it makes
/// a prolongated dual increment carry the right primal magnitude with
/// prolong_scale = 1 (div of a prolongated field is half as steep per cell,
/// cancelled by the 2x theta ratio between levels).
struct MultilevelOptions {
  /// Fine halo-exchange passes between corrections; <= 0 disables the
  /// correction entirely (run_multilevel then IS run_adaptive, bit for bit).
  int period = 8;
  /// Coarse levels below the fine grid (factor 2^levels per dimension).
  /// 0 = auto: a single coarse level — with the default iteration budgets a
  /// two-level cycle out-corrects deeper ladders, whose under-solved base
  /// mostly feeds safeguard rejections; levels are always clamped so
  /// the coarsest extent stays >= 4 cells (frames too small to coarsen run
  /// without correction).
  int levels = 0;
  /// Chambolle iterations of the coarsest-level solve.
  int coarse_iterations = 64;
  /// Post-correction smoothing iterations at each intermediate level on the
  /// way back up (the V-cycle's upward leg); 0 = pure two-level transfer.
  int smooth_iterations = 8;
  /// Scale applied to the prolongated dual increment before the unit-ball
  /// projection.  1.0 is the grid-consistent choice (see above); kept as a
  /// knob for damping (< 1) experiments.
  float prolong_scale = 1.0f;
  /// A RETIRED tile is un-retired (resumes passes) when the correction
  /// magnitude inside its profitable region exceeds
  /// unretire_factor * ResidentAdaptiveOptions::tolerance; below that the
  /// correction is applied to its frozen state without resurrecting it.
  float unretire_factor = 1.0f;
  /// Progress gate: a correction fires only when the fine primal's drift
  /// per pass since the previous rendezvous exceeds gate_factor times the
  /// fine dual residual.  A large drift over a small residual is the
  /// signature of smooth low-frequency error draining slowly — exactly what
  /// the coarse grid accelerates; the opposite (churning dual, stationary
  /// primal) means the error is high-frequency, where a coarse solve can
  /// only inject its discretization gap.  0 fires whenever the primal moved
  /// at all; the first rendezvous never fires — it records the drift
  /// baseline.  Every admitted cycle is additionally vetted by the
  /// dual-objective safeguard (CoarseCorrector doc): its output is
  /// discarded unless Chambolle's dual objective ||v - theta div p||^2
  /// strictly undercuts the previous rendezvous exit state's, so past the
  /// coarse model's accuracy floor corrections stop regardless of the gate
  /// and the fine iteration converges past the gap.
  float gate_factor = 1.0f;

  [[nodiscard]] bool enabled() const { return period > 0; }

  /// Throws std::invalid_argument on out-of-range values (period <= 0 is
  /// valid: it means "disabled", not an error).
  void validate() const {
    if (levels < 0)
      throw std::invalid_argument("MultilevelOptions: levels < 0");
    if (coarse_iterations < 1)
      throw std::invalid_argument("MultilevelOptions: coarse_iterations < 1");
    if (smooth_iterations < 0)
      throw std::invalid_argument("MultilevelOptions: smooth_iterations < 0");
    if (!std::isfinite(prolong_scale) || prolong_scale <= 0.f)
      throw std::invalid_argument(
          "MultilevelOptions: prolong_scale must be finite and > 0");
    if (!std::isfinite(unretire_factor) || unretire_factor < 0.f)
      throw std::invalid_argument(
          "MultilevelOptions: unretire_factor must be finite and >= 0");
    if (!std::isfinite(gate_factor) || gate_factor < 0.f)
      throw std::invalid_argument(
          "MultilevelOptions: gate_factor must be finite and >= 0");
  }
};

}  // namespace chambolle
