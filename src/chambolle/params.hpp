// params.hpp — parameters of the Chambolle fixed-point iteration.
//
// theta and tau are the "predefined values that determine the precision"
// (Section II-A).  Chambolle's convergence proof requires tau/theta <= 1/4
// for this discretization; the defaults sit exactly on that bound.
#pragma once

#include <cmath>
#include <stdexcept>

namespace chambolle {

struct ChambolleParams {
  /// Quadratic coupling weight of the ROF sub-problem (u = v - theta*div p).
  float theta = 0.25f;
  /// Dual ascent step.  Stability requires tau/theta <= 1/4.
  float tau = 0.0625f;
  /// Number of fixed-point iterations (the paper evaluates 50/100/200).
  int iterations = 100;

  /// Throws std::invalid_argument when the parameters violate the stability
  /// bound or are non-positive.
  void validate() const {
    // The explicit isfinite checks matter: every comparison with NaN is
    // false, so a NaN theta/tau would sail through the sign and ratio tests
    // below and poison the solve (found by the structured fuzz harness).
    if (!std::isfinite(theta) || !std::isfinite(tau))
      throw std::invalid_argument("ChambolleParams: non-finite theta/tau");
    if (theta <= 0.f) throw std::invalid_argument("ChambolleParams: theta <= 0");
    if (tau <= 0.f) throw std::invalid_argument("ChambolleParams: tau <= 0");
    if (iterations < 0)
      throw std::invalid_argument("ChambolleParams: negative iterations");
    if (tau / theta > 0.25f + 1e-6f)
      throw std::invalid_argument(
          "ChambolleParams: tau/theta > 1/4 breaks convergence");
    if (tau / theta <= 0.f)
      throw std::invalid_argument(
          "ChambolleParams: tau/theta underflows to zero (no-op update)");
  }

  /// The combined step tau/theta that appears in Algorithm 1 lines 7-8.
  [[nodiscard]] float step() const { return tau / theta; }
};

}  // namespace chambolle
