#include "chambolle/solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "chambolle/energy.hpp"
#include "telemetry/convergence.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace chambolle {
namespace {

void check_shapes(const Matrix<float>& px, const Matrix<float>& py,
                  const Matrix<float>& v, const RegionGeometry& geom) {
  if (!px.same_shape(py) || !px.same_shape(v))
    throw std::invalid_argument("iterate_region: buffer shape mismatch");
  if (geom.row0 < 0 || geom.col0 < 0 ||
      geom.row0 + px.rows() > geom.frame_rows ||
      geom.col0 + px.cols() > geom.frame_cols)
    throw std::invalid_argument("iterate_region: window exceeds frame");
}

// div p at buffer cell (r, c).  Applies the Chambolle one-sided rules at true
// frame borders; at buffer-internal edges that are NOT frame borders the
// missing halo neighbor is read as 0 (the cell is non-profitable there, so
// the value only has to be *defined*, not correct).
inline float div_p_at(const Matrix<float>& px, const Matrix<float>& py, int r,
                      int c, const RegionGeometry& g) {
  const int ar = g.row0 + r;  // absolute frame coordinates
  const int ac = g.col0 + c;
  float dx;
  if (ac == 0)
    dx = px(r, c);
  else if (ac == g.frame_cols - 1)
    dx = -(c > 0 ? px(r, c - 1) : 0.f);
  else
    dx = px(r, c) - (c > 0 ? px(r, c - 1) : 0.f);
  float dy;
  if (ar == 0)
    dy = py(r, c);
  else if (ar == g.frame_rows - 1)
    dy = -(r > 0 ? py(r - 1, c) : 0.f);
  else
    dy = py(r, c) - (r > 0 ? py(r - 1, c) : 0.f);
  return dx + dy;
}

}  // namespace

void iterate_region(Matrix<float>& px, Matrix<float>& py,
                    const Matrix<float>& v, const RegionGeometry& geom,
                    const ChambolleParams& params, int iterations,
                    Matrix<float>& term_scratch) {
  params.validate();
  check_shapes(px, py, v, geom);
  const int rows = v.rows(), cols = v.cols();
  if (rows == 0 || cols == 0 || iterations == 0) return;
  if (!term_scratch.same_shape(v)) term_scratch.resize(rows, cols);

  const float inv_theta = 1.f / params.theta;
  const float step = params.step();

  for (int it = 0; it < iterations; ++it) {
    // Phase 1 (Algorithm 1, lines 2-3): Term = div p - v / theta.
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c)
        term_scratch(r, c) = div_p_at(px, py, r, c, geom) - v(r, c) * inv_theta;

    // Phase 2 (lines 4-8): forward differences of Term, gradient magnitude,
    // and the projected dual update.
    for (int r = 0; r < rows; ++r) {
      const int ar = geom.row0 + r;
      for (int c = 0; c < cols; ++c) {
        const int ac = geom.col0 + c;
        // ForwardX/ForwardY are 0 on the far frame border; at a buffer edge
        // that is not a frame border the element is non-profitable and 0 is
        // as good a defined value as any.
        const float t = term_scratch(r, c);
        const float term1 =
            (ac == geom.frame_cols - 1 || c + 1 >= cols)
                ? 0.f
                : term_scratch(r, c + 1) - t;
        const float term2 =
            (ar == geom.frame_rows - 1 || r + 1 >= rows)
                ? 0.f
                : term_scratch(r + 1, c) - t;
        const float grad = std::sqrt(term1 * term1 + term2 * term2);
        const float denom = 1.f + step * grad;
        px(r, c) = (px(r, c) + step * term1) / denom;
        py(r, c) = (py(r, c) + step * term2) / denom;
      }
    }
  }
}

Matrix<float> recover_u(const Matrix<float>& v, const Matrix<float>& px,
                        const Matrix<float>& py, const RegionGeometry& geom,
                        float theta) {
  Matrix<float> u(v.rows(), v.cols());
  for (int r = 0; r < v.rows(); ++r)
    for (int c = 0; c < v.cols(); ++c)
      u(r, c) = v(r, c) - theta * div_p_at(px, py, r, c, geom);
  return u;
}

namespace {

// Largest per-cell dual change between two states (both components).
double max_abs_diff(const DualField& a, const Matrix<float>& px,
                    const Matrix<float>& py) {
  double m = 0;
  for (std::size_t i = 0; i < px.size(); ++i) {
    m = std::max(m, static_cast<double>(
                        std::fabs(px.data()[i] - a.px.data()[i])));
    m = std::max(m, static_cast<double>(
                        std::fabs(py.data()[i] - a.py.data()[i])));
  }
  return m;
}

}  // namespace

ChambolleResult solve(const Matrix<float>& v, const ChambolleParams& params,
                      const DualField* initial,
                      telemetry::ConvergenceTrace* convergence) {
  params.validate();
  const telemetry::TraceSpan span("chambolle.solve");
  // Validate the warm start BEFORE adopting it, and check both components:
  // a py of the wrong shape would otherwise be copied into the result and
  // read out of bounds by the iteration.
  if (initial != nullptr &&
      (!initial->px.same_shape(v) || !initial->py.same_shape(v)))
    throw std::invalid_argument("solve: initial dual shape mismatch");
  ChambolleResult out;
  out.p = initial != nullptr ? *initial : DualField(v.rows(), v.cols());
  const RegionGeometry geom = RegionGeometry::full_frame(v.rows(), v.cols());
  Matrix<float> scratch;
  if (convergence == nullptr) {
    iterate_region(out.p.px, out.p.py, v, geom, params, params.iterations,
                   scratch);
  } else {
    DualField prev = out.p;
    for (int it = 0; it < params.iterations; ++it) {
      iterate_region(out.p.px, out.p.py, v, geom, params, 1, scratch);
      const double delta = max_abs_diff(prev, out.p.px, out.p.py);
      const Matrix<float> u =
          recover_u(v, out.p.px, out.p.py, geom, params.theta);
      convergence->record(it + 1, delta, rof_energy(u, v, params.theta));
      prev = out.p;
    }
  }
  out.u = recover_u(v, out.p.px, out.p.py, geom, params.theta);

  static telemetry::Counter& solves =
      telemetry::registry().counter("chambolle.solver.solves");
  static telemetry::Counter& iterations =
      telemetry::registry().counter("chambolle.solver.iterations");
  static telemetry::Counter& pixel_iterations =
      telemetry::registry().counter("chambolle.solver.pixel_iterations");
  solves.add(1);
  iterations.add(static_cast<std::uint64_t>(params.iterations));
  pixel_iterations.add(static_cast<std::uint64_t>(params.iterations) *
                       static_cast<std::uint64_t>(v.size()));
  return out;
}

FlowField solve_flow(const FlowField& v, const ChambolleParams& params,
                     const DualField* initial_u1, const DualField* initial_u2,
                     DualField* final_u1, DualField* final_u2) {
  FlowField out;
  ChambolleResult r1 = solve(v.u1, params, initial_u1);
  ChambolleResult r2 = solve(v.u2, params, initial_u2);
  out.u1 = std::move(r1.u);
  out.u2 = std::move(r2.u);
  if (final_u1 != nullptr) *final_u1 = std::move(r1.p);
  if (final_u2 != nullptr) *final_u2 = std::move(r2.p);
  return out;
}

}  // namespace chambolle
