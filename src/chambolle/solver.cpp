#include "chambolle/solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "chambolle/energy.hpp"
#include "common/validation.hpp"
#include "kernels/kernel.hpp"
#include "telemetry/convergence.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace chambolle {
namespace {

void check_shapes(const Matrix<float>& px, const Matrix<float>& py,
                  const Matrix<float>& v, const RegionGeometry& geom) {
  if (!px.same_shape(py) || !px.same_shape(v))
    throw std::invalid_argument("iterate_region: buffer shape mismatch");
  if (geom.row0 < 0 || geom.col0 < 0 ||
      geom.row0 + px.rows() > geom.frame_rows ||
      geom.col0 + px.cols() > geom.frame_cols)
    throw std::invalid_argument("iterate_region: window exceeds frame");
}

}  // namespace

void iterate_region(Matrix<float>& px, Matrix<float>& py,
                    const Matrix<float>& v, const RegionGeometry& geom,
                    const ChambolleParams& params, int iterations,
                    Matrix<float>& term_scratch, float* last_iter_max_dp) {
  params.validate();
  check_shapes(px, py, v, geom);
  // The per-element arithmetic lives in the kernel layer (fused single-pass
  // sweep, SIMD interior, scalar borders); the solver owns validation only.
  kernels::iterate_region_fused(px, py, v, geom, 1.f / params.theta,
                                params.step(), iterations, term_scratch,
                                last_iter_max_dp);
}

void recover_u_into(const Matrix<float>& v, const Matrix<float>& px,
                    const Matrix<float>& py, const RegionGeometry& geom,
                    float theta, Matrix<float>& out) {
  kernels::recover_u_into(v, px, py, geom, theta, out);
}

Matrix<float> recover_u(const Matrix<float>& v, const Matrix<float>& px,
                        const Matrix<float>& py, const RegionGeometry& geom,
                        float theta) {
  Matrix<float> u;
  kernels::recover_u_into(v, px, py, geom, theta, u);
  return u;
}

namespace {

// Largest per-cell dual change between two states (both components).
double max_abs_diff(const DualField& a, const Matrix<float>& px,
                    const Matrix<float>& py) {
  double m = 0;
  for (std::size_t i = 0; i < px.size(); ++i) {
    m = std::max(m, static_cast<double>(
                        std::fabs(px.data()[i] - a.px.data()[i])));
    m = std::max(m, static_cast<double>(
                        std::fabs(py.data()[i] - a.py.data()[i])));
  }
  return m;
}

}  // namespace

void solve_into(const Matrix<float>& v, const ChambolleParams& params,
                ChambolleResult& out, const DualField* initial,
                telemetry::ConvergenceTrace* convergence) {
  params.validate();
  // A single NaN in v poisons the whole dual field within a few sweeps and
  // comes out looking like a solver bug; reject it at the door.  The O(n)
  // scan is noise next to the iterations * n solve that follows.
  require_finite(v, "chambolle::solve: v");
  const telemetry::TraceSpan span("chambolle.solve");
  telemetry::flight_mark("solve", static_cast<double>(params.iterations));
  // Validate the warm start BEFORE adopting it, and check both components:
  // a py of the wrong shape would otherwise be copied into the result and
  // read out of bounds by the iteration.
  if (initial != nullptr &&
      (!initial->px.same_shape(v) || !initial->py.same_shape(v)))
    throw std::invalid_argument("solve: initial dual shape mismatch");
  if (initial != nullptr) {
    out.p = *initial;
  } else {
    // resize() keeps the existing allocation when the shape already
    // matches, so a reused ChambolleResult allocates nothing here.
    out.p.px.resize(v.rows(), v.cols());
    out.p.py.resize(v.rows(), v.cols());
  }
  const RegionGeometry geom = RegionGeometry::full_frame(v.rows(), v.cols());
  Matrix<float> scratch;
  if (convergence == nullptr) {
    iterate_region(out.p.px, out.p.py, v, geom, params, params.iterations,
                   scratch);
  } else {
    DualField prev = out.p;
    Matrix<float> u;
    for (int it = 0; it < params.iterations; ++it) {
      iterate_region(out.p.px, out.p.py, v, geom, params, 1, scratch);
      const double delta = max_abs_diff(prev, out.p.px, out.p.py);
      recover_u_into(v, out.p.px, out.p.py, geom, params.theta, u);
      convergence->record(it + 1, delta, rof_energy(u, v, params.theta));
      prev = out.p;
    }
  }
  recover_u_into(v, out.p.px, out.p.py, geom, params.theta, out.u);

  static telemetry::Counter& solves =
      telemetry::registry().counter("chambolle.solver.solves");
  static telemetry::Counter& iterations =
      telemetry::registry().counter("chambolle.solver.iterations");
  static telemetry::Counter& pixel_iterations =
      telemetry::registry().counter("chambolle.solver.pixel_iterations");
  solves.add(1);
  iterations.add(static_cast<std::uint64_t>(params.iterations));
  pixel_iterations.add(static_cast<std::uint64_t>(params.iterations) *
                       static_cast<std::uint64_t>(v.size()));
}

ChambolleResult solve(const Matrix<float>& v, const ChambolleParams& params,
                      const DualField* initial,
                      telemetry::ConvergenceTrace* convergence) {
  ChambolleResult out;
  solve_into(v, params, out, initial, convergence);
  return out;
}

FlowField solve_flow(const FlowField& v, const ChambolleParams& params,
                     const DualField* initial_u1, const DualField* initial_u2,
                     DualField* final_u1, DualField* final_u2) {
  require_finite(v.u1, "solve_flow: v.u1");
  require_finite(v.u2, "solve_flow: v.u2");
  FlowField out;
  ChambolleResult r1 = solve(v.u1, params, initial_u1);
  ChambolleResult r2 = solve(v.u2, params, initial_u2);
  out.u1 = std::move(r1.u);
  out.u2 = std::move(r2.u);
  if (final_u1 != nullptr) *final_u1 = std::move(r1.p);
  if (final_u2 != nullptr) *final_u2 = std::move(r2.p);
  return out;
}

}  // namespace chambolle
