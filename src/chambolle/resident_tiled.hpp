// resident_tiled.hpp — the resident-tile sliding-window engine.
//
// The pass-based tiled solver (tiled_solver.hpp) is the paper's scheme with
// the hardware's weakest property dropped: its BRAM windows stay loaded
// between iterations, but the CPU realization reloads every tile buffer from
// the global frame and writes it back on EVERY merged pass, synchronized by
// a global barrier — two full frames of memory traffic per pass and a
// full-fleet stall at each merge boundary.
//
// This engine restores residency.  Each tile's (v, px, py) buffers are
// allocated once and PINNED to one worker lane for the whole solve; between
// passes, neighboring tiles exchange only halo strips (width = the merge
// depth) through per-edge mailboxes, and a tile starts pass n+1 as soon as
// its <= 8 neighbors have published their pass-n halos (EpochGraph,
// parallel/task_graph.hpp) — no global barrier, no full-frame reload.  The
// profitable write-back happens once at the end (or on demand via
// snapshot(), e.g. for telemetry), so steady-state per-pass traffic drops
// from 2 frames to the halo perimeter.
//
// Mailboxes are double-buffered by pass parity: a tile publishing pass n
// writes slot n&1, a neighbor gathering for pass n+1 reads slot n&1.  The
// scheduler bounds the epoch skew between neighbors to one pass, so a slot
// is never overwritten before its reader consumed it; publication order
// (strip writes, then a release store of the epoch, acquired before the
// gather) makes the exchange race-free, verified under TSan.
//
// Correctness is the same machine-checkable argument as the pass-based
// solver, by induction over passes: at every pass start a tile buffer holds
// the exact global state (profitable cells by the dependency-cone argument,
// halo cells by the gather of neighbors' exact profitable strips), and the
// per-element arithmetic is the shared fused kernel — so the result is
// BIT-EXACT equal to the sequential reference (tests memcmp it).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "chambolle/params.hpp"
#include "chambolle/solver.hpp"
#include "chambolle/tile.hpp"
#include "chambolle/tiled_solver.hpp"
#include "common/image.hpp"
#include "parallel/task_graph.hpp"
#include "parallel/thread_pool.hpp"

namespace chambolle {

/// Per-tile adaptive early stopping (ROADMAP item 2, after the local-error
/// indicators of Alkämper/Hilb/Langer's adaptive primal-dual FEM): each
/// tile tracks the kernel layer's fused single-iteration dual residual
/// (max |dp| of the last iteration of each pass — no extra sweep, no state
/// copies) and RETIRES once the residual stays under `tolerance` for
/// `patience` consecutive passes.  A retired tile publishes a terminal
/// epoch so neighbors never wait on it, redirects their gathers to its
/// final (frozen) halo strips via a frozen-pass marker (mirrored into both
/// mailbox parities once the run quiesces), and its lane's capacity is
/// redistributed to still-active tiles by the EpochGraph's adaptive work
/// queue.
struct ResidentAdaptiveOptions {
  /// Per-iteration residual threshold: a pass counts toward retirement when
  /// the max |dp| of its last iteration falls below this.  Same semantics
  /// as AdaptiveOptions::tolerance (single-iteration, merge-depth
  /// independent).
  float tolerance = 1e-4f;
  /// Consecutive under-tolerance passes before a tile retires.
  int patience = 2;
  /// Hard per-tile pass cap — the termination guarantee for tiles that
  /// never reach tolerance.  One pass is `merge_iterations` iterations.
  int max_passes = 125;
  /// Iterations of the FINAL pass (pass max_passes - 1); 0 means a full
  /// merge_iterations burst.  This is the remainder pass of run()'s
  /// schedule: with it set to `iterations - (max_passes - 1) * merge`, a
  /// run where no tile retires executes exactly the fixed schedule of
  /// run(iterations), bit for bit, even when the iteration budget is not a
  /// multiple of the merge depth.
  int final_pass_iterations = 0;

  void validate() const;
};

/// Outcome of one run_adaptive(): which tiles converged, how many passes
/// each actually ran, and what the fixed budget would have cost.
struct ResidentAdaptiveReport {
  int pass_cap = 0;                   ///< the max_passes this run enforced
  std::size_t tiles = 0;
  std::size_t tiles_converged = 0;    ///< retired before the cap
  std::size_t total_tile_passes = 0;  ///< sum over tiles of passes executed
  /// Sum over tiles of Chambolle iterations actually executed —
  /// cap-truncated final bursts (final_pass_iterations) included, so this
  /// is NOT always total_tile_passes * merge_iterations.
  std::size_t total_iterations = 0;
  std::uint64_t stolen_passes = 0;    ///< passes run off the preferred lane
  std::vector<int> tile_passes;       ///< per-tile passes executed
  std::vector<float> tile_residuals;  ///< per-tile final residual

  [[nodiscard]] bool all_converged() const {
    return tiles_converged == tiles;
  }
  /// Passes a fixed budget of pass_cap per tile would have executed.
  [[nodiscard]] std::size_t fixed_budget_passes() const {
    return tiles * static_cast<std::size_t>(pass_cap);
  }
  /// Fraction of the fixed budget the adaptive run skipped (0 = none).
  [[nodiscard]] double pass_savings() const {
    const std::size_t fixed = fixed_budget_passes();
    return fixed > 0 ? 1.0 - static_cast<double>(total_tile_passes) /
                                 static_cast<double>(fixed)
                     : 0.0;
  }
};

/// Options of run_multilevel(): the adaptive per-tile stopping policy plus
/// the coarse-grid correction schedule.  With the correction disabled
/// (multilevel.period <= 0, or a frame too small to coarsen)
/// run_multilevel() IS run_adaptive(options.adaptive), bit for bit.
struct ResidentMultilevelOptions {
  ResidentAdaptiveOptions adaptive;
  MultilevelOptions multilevel;

  void validate() const {
    adaptive.validate();
    multilevel.validate();
  }
};

/// Outcome of one run_multilevel(): the adaptive accounting plus the
/// coarse-correction accounting.
struct ResidentMultilevelReport {
  ResidentAdaptiveReport adaptive;
  int coarse_levels = 0;         ///< realized ladder depth (0 = correction off)
  std::uint64_t coarse_solves = 0;     ///< firings whose correction applied
  std::uint64_t coarse_gated = 0;      ///< firings declined by the progress
                                       ///< gate or energy safeguard (includes
                                       ///< the baseline firing)
  std::uint64_t tiles_unretired = 0;   ///< resurrections forced by corrections
  float last_correction_max = 0.f;     ///< max |delta p| of the final cycle
  double rendezvous_seconds = 0.0;     ///< wall time inside rendezvous bodies
};

/// Work and traffic accounting of a resident solve (cumulative across
/// run() calls), used by the E6 overhead bench and the acceptance tests.
struct ResidentTiledStats {
  int passes = 0;
  std::size_t tiles = 0;
  /// Floats exchanged through mailboxes per pass (both dual components);
  /// the per-pass traffic of the engine, vs. the reload engine's
  /// ~4 * frame_elements (2 fields loaded + 2 stored).
  std::size_t halo_elements_per_pass = 0;
  /// Total mailbox bytes moved so far (published + gathered).
  std::uint64_t halo_bytes_exchanged = 0;
  /// Total element-iterations executed, including redundant halo work.
  std::size_t element_iterations = 0;
  /// Time lanes spent with no runnable tile (point-to-point waits).
  double stall_seconds = 0.0;
  std::uint64_t stall_spins = 0;
};

/// The engine object: buffers persist across run() calls, which is what lets
/// warm-started outer loops (TV-L1 warps) keep duals resident and re-stream
/// only v.  Use solve_resident() for the one-shot form.
class ResidentTiledEngine {
 public:
  /// Tiles `v` with options.{tile_rows, tile_cols, merge_iterations} and
  /// loads the resident buffers; `initial`, when non-null, warm-starts the
  /// duals (otherwise zeros).  Validates like solve_tiled.
  ResidentTiledEngine(const Matrix<float>& v, const ChambolleParams& params,
                      const TiledSolverOptions& options,
                      const DualField* initial = nullptr);
  ~ResidentTiledEngine();

  ResidentTiledEngine(const ResidentTiledEngine&) = delete;
  ResidentTiledEngine& operator=(const ResidentTiledEngine&) = delete;

  /// Advances the solve by `iterations` Chambolle iterations (split into
  /// ceil(iterations / merge_iterations) halo-exchange passes).  Composable:
  /// run(a); run(b) is bit-exact equal to run(a + b).
  void run(int iterations);

  /// Advances the solve adaptively: every tile runs passes of
  /// `merge_iterations` iterations until its per-iteration residual stays
  /// under options.tolerance for options.patience consecutive passes (it
  /// then retires) or it hits options.max_passes (guaranteed termination).
  /// Deliberately NOT bit-exact against the fixed-budget solve — retired
  /// tiles stop refining while neighbors continue against their frozen
  /// halos; the tolerance-mode oracle (src/testing) bounds the deviation.
  /// The resident state stays coherent for snapshot()/result() and for
  /// further run()/run_adaptive() calls.
  ResidentAdaptiveReport run_adaptive(const ResidentAdaptiveOptions& options);

  /// run_adaptive() composed with a periodic coarse-grid correction: every
  /// multilevel.period passes the fleet's parked state is snapshotted at an
  /// exclusive EpochGraph rendezvous (no global barrier — the last lane out
  /// of work runs it), a small V-cycle Chambolle solve computes a fine dual
  /// correction (chambolle/multilevel.hpp), and every tile folds the
  /// correction into its pinned buffers at its next pass.  Retired tiles
  /// absorb corrections in place; a correction exceeding
  /// multilevel.unretire_factor * adaptive.tolerance inside a retired
  /// tile's profitable region un-retires it.  Results are schedule-
  /// independent (same bits for any lane count).  With the correction
  /// disabled this IS run_adaptive(options.adaptive), bit for bit.
  ResidentMultilevelReport run_multilevel(
      const ResidentMultilevelOptions& options);

  /// On-demand profitable write-back of the CURRENT dual state into `out`
  /// (resized as needed) — the telemetry-snapshot path; does not disturb the
  /// resident buffers.
  void snapshot(DualField& out) const;

  /// Replaces the input field v (same shape) without touching the resident
  /// duals: the warm-start path of TV-L1 warps, where only v changes between
  /// inner solves.  When `initial` is non-null the duals are reloaded from
  /// it instead (cold restart in place).
  void reset_v(const Matrix<float>& v, const DualField* initial = nullptr);

  /// Zeroes the resident duals in place (Algorithm 1's cold start) without
  /// reallocating tile buffers — the default per-warp restart of the TV-L1
  /// integration, bit-exact equal to constructing a fresh engine.
  void reset_duals() { load_duals(nullptr); }

  /// snapshot() + primal recovery: the ChambolleResult of the state so far.
  [[nodiscard]] ChambolleResult result() const;

  [[nodiscard]] const ResidentTiledStats& stats() const { return stats_; }
  [[nodiscard]] const TilingPlan& plan() const { return plan_; }
  [[nodiscard]] int rows() const { return plan_.frame_rows; }
  [[nodiscard]] int cols() const { return plan_.frame_cols; }

 private:
  struct TileBuffers;
  struct Mailbox;

  /// The pool this engine's parallel regions run on: options.pool when the
  /// caller injected one (the serving fleet gives every engine its own
  /// lane-partitioned pool so concurrent sessions don't serialize on
  /// default_pool()'s region lock), default_pool() otherwise.
  [[nodiscard]] parallel::ThreadPool& pool() const;
  /// Zeroes or reloads the duals in place AND restarts the pass/parity
  /// clock and frozen-pass markers — the full state reset that makes a
  /// reused engine indistinguishable from a freshly constructed one (the
  /// engine-reuse contract pooled serving fleets rely on; regression-tested
  /// by tests/engine_reuse_test.cpp).
  void load_duals(const DualField* initial);
  /// Refreshes tile ti's halo ring from the neighbors' pass-(g-1) strips.
  void gather_halos(std::size_t ti, int g);
  /// Publishes tile ti's pass-g strips into the parity slot g & 1.
  void publish_strips(std::size_t ti, int g);
  /// Publishes tile ti's frozen-pass marker (retirement at pass g), ordered
  /// before the terminal epoch store: later gathers read its final strips
  /// at parity g.  The cross-parity mirror is deferred to run_adaptive()'s
  /// quiescent epilogue — doing it here would race neighbors concurrently
  /// gathering the same pass (see the comments in resident_tiled.cpp).
  void mark_frozen(std::size_t ti, int g);

  ChambolleParams params_;
  TiledSolverOptions options_;
  TilingPlan plan_;
  Matrix<float> frame_v_;  ///< kept for result()'s primal recovery
  std::vector<TileBuffers> tiles_;
  std::vector<Mailbox> mail_;
  std::vector<std::vector<int>> in_edges_;   // per tile: indices into mail_
  std::vector<std::vector<int>> out_edges_;  // per tile: indices into mail_
  std::unique_ptr<parallel::EpochGraph> graph_;
  /// Per-tile retirement pass, -1 while live.  Set (release) by the retiring
  /// body before its terminal epoch publish, read (acquire) by gather_halos
  /// to pick the mailbox parity, cleared in run_adaptive()'s epilogue after
  /// the frozen strips are mirrored into both slots.
  std::vector<std::atomic<int>> frozen_pass_;
  int pass_count_ = 0;  ///< global passes completed; also the mailbox parity
  ResidentTiledStats stats_;
};

/// One-shot resident solve of one component; the drop-in counterpart of
/// solve_tiled() with the same options (execution is ignored: the engine is
/// always pool-resident).  Bit-exact equal to the sequential reference.
[[nodiscard]] ChambolleResult solve_resident(
    const Matrix<float>& v, const ChambolleParams& params,
    const TiledSolverOptions& options, ResidentTiledStats* stats = nullptr,
    const DualField* initial = nullptr);

/// One-shot adaptive resident solve.  When adaptive.max_passes <= 0 the cap
/// defaults to the fixed budget ceil(params.iterations / merge_iterations),
/// so the adaptive solve never exceeds the work of solve_resident() with
/// the same params and typically does much less on smooth/static content.
[[nodiscard]] ChambolleResult solve_resident_adaptive(
    const Matrix<float>& v, const ChambolleParams& params,
    const TiledSolverOptions& options,
    const ResidentAdaptiveOptions& adaptive,
    ResidentAdaptiveReport* report = nullptr,
    ResidentTiledStats* stats = nullptr, const DualField* initial = nullptr);

/// One-shot multilevel resident solve.  The adaptive.max_passes <= 0
/// sentinel resolves exactly as in solve_resident_adaptive() (fixed budget
/// with run()'s remainder schedule), so a correction-disabled call is
/// memcmp-identical to solve_resident() when nothing retires.
[[nodiscard]] ChambolleResult solve_resident_multilevel(
    const Matrix<float>& v, const ChambolleParams& params,
    const TiledSolverOptions& options,
    const ResidentMultilevelOptions& multilevel,
    ResidentMultilevelReport* report = nullptr,
    ResidentTiledStats* stats = nullptr, const DualField* initial = nullptr);

}  // namespace chambolle
