// merged.hpp — loop decomposition in its purest form (Section III-A).
//
// "our approach aims at directly computing each element of px and py at
//  iteration n + x by finding a formula that employs the values available at
//  iteration n."
//
// merged_update() computes the dual state of a GROUP of elements `depth`
// iterations ahead straight from the iteration-n fields, materializing ONLY
// the dependency cone of Figure 1 — no full-frame intermediate state.  It is
// the executable counterpart of the cone arithmetic in dependency.hpp: the
// work counters it returns equal the analytic cone sizes, and its outputs are
// bit-identical to running the reference solver `depth` times (both facts
// are asserted by the tests).  The sliding-window solvers are the
// rectangular-buffer specialization of this kernel.
#pragma once

#include <cstddef>

#include "chambolle/params.hpp"
#include "common/image.hpp"

namespace chambolle {

/// Work accounting of one merged update.
struct MergedStats {
  /// p-elements read from the iteration-n state (== |dependency cone|,
  /// clipped to the frame).
  std::size_t cone_reads = 0;
  /// Term evaluations performed across all intermediate layers.
  std::size_t term_evals = 0;
  /// Dual updates performed across all intermediate layers (including the
  /// final group itself).
  std::size_t p_updates = 0;
};

/// Result of a merged update of a group rectangle.
struct MergedResult {
  Matrix<float> px;  ///< group_rows x group_cols, iteration n+depth values
  Matrix<float> py;
  MergedStats stats;
};

/// Computes p^(n+depth) on the rectangle [row0, row0+group_rows) x
/// [col0, col0+group_cols) of the frame, given the full iteration-n state
/// (px, py, v).  depth == 0 returns the current values.  The rectangle must
/// lie inside the frame.  Throws std::invalid_argument on bad geometry.
[[nodiscard]] MergedResult merged_update(const Matrix<float>& px,
                                         const Matrix<float>& py,
                                         const Matrix<float>& v, int row0,
                                         int col0, int group_rows,
                                         int group_cols, int depth,
                                         const ChambolleParams& params);

}  // namespace chambolle
