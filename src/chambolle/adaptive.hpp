// adaptive.hpp — precision-driven stopping for the Chambolle iteration.
//
// The paper treats Niterations as an input "that determines the precision"
// (Section II-A, Table II).  This module inverts the relationship: iterate
// until the dual update falls below a tolerance and REPORT how many
// iterations that took — the tool used to choose Table II's 50/100/200
// budgets and by the convergence bench.
#pragma once

#include "chambolle/params.hpp"
#include "chambolle/solver.hpp"
#include "common/image.hpp"

namespace chambolle {

struct AdaptiveOptions {
  /// Stop when the SINGLE-ITERATION residual max |p_{k+1} - p_k| (over both
  /// components) drops below this.  The residual is always measured over
  /// exactly one iteration — the last of each check burst — so the meaning
  /// of `tolerance` is independent of `check_every` (a burst-maximum
  /// residual would make the same tolerance stricter at larger bursts).
  float tolerance = 1e-4f;
  /// Hard cap on iterations.
  int max_iterations = 2000;
  /// Convergence is checked every `check_every` iterations.  Affects only
  /// the stopping granularity (iterations_used is a multiple of it, short of
  /// the cap), never what `tolerance` means.
  int check_every = 10;

  void validate() const;
};

struct AdaptiveResult {
  ChambolleResult solution;
  int iterations_used = 0;
  /// Single-iteration max |dp| of the LAST iteration actually executed —
  /// also when the loop exits via the max_iterations cap mid-burst, so the
  /// triple (iterations_used, final_residual, converged) is always
  /// consistent: converged == (final_residual < tolerance).
  float final_residual = 0.f;
  bool converged = false;
};

/// Solves min TV(u) + ||u-v||^2/(2 theta) iterating until the dual state
/// stabilizes.  params.iterations is ignored (the tolerance governs).
[[nodiscard]] AdaptiveResult solve_adaptive(const Matrix<float>& v,
                                            const ChambolleParams& params,
                                            const AdaptiveOptions& options);

}  // namespace chambolle
