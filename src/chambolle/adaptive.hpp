// adaptive.hpp — precision-driven stopping for the Chambolle iteration.
//
// The paper treats Niterations as an input "that determines the precision"
// (Section II-A, Table II).  This module inverts the relationship: iterate
// until the dual update falls below a tolerance and REPORT how many
// iterations that took — the tool used to choose Table II's 50/100/200
// budgets and by the convergence bench.
//
// BEHAVIOR CHANGE (adaptive-stopping PR): `tolerance` now compares the
// SINGLE-ITERATION residual (max |dp| of the last iteration of each check
// burst).  Previously it compared the maximum over the whole
// `check_every`-iteration burst, which made the same tolerance value mean
// different things at different `check_every` settings — and, because a
// burst maximum dominates any one of its iterations, effectively stricter
// at larger bursts.  Consequences for callers tuned against the old
// semantics: with check_every > 1 the solve can stop EARLIER (the
// per-iteration step being under tolerance does not bound the displacement
// accumulated across a burst); if you relied on burst-accumulated
// displacement, tighten `tolerance` (dividing by roughly `check_every` is
// the conservative first guess) or set `check_every = 1`, which is
// unchanged between the two semantics.  In-repo callers were audited:
// TV-L1 and flow_cli never call solve_adaptive (their adaptive path is the
// resident per-tile engine, designed against the new semantics with the
// same default tolerance), and this module's tests/bench were rewritten
// for the single-iteration meaning.
#pragma once

#include "chambolle/params.hpp"
#include "chambolle/solver.hpp"
#include "common/image.hpp"

namespace chambolle {

struct AdaptiveOptions {
  /// Stop when the SINGLE-ITERATION residual max |p_{k+1} - p_k| (over both
  /// components) drops below this.  The residual is always measured over
  /// exactly one iteration — the last of each check burst — so the meaning
  /// of `tolerance` is independent of `check_every` (a burst-maximum
  /// residual would make the same tolerance stricter at larger bursts).
  float tolerance = 1e-4f;
  /// Hard cap on iterations.
  int max_iterations = 2000;
  /// Convergence is checked every `check_every` iterations.  Affects only
  /// the stopping granularity (iterations_used is a multiple of it, short of
  /// the cap), never what `tolerance` means.
  int check_every = 10;

  void validate() const;
};

struct AdaptiveResult {
  ChambolleResult solution;
  int iterations_used = 0;
  /// Single-iteration max |dp| of the LAST iteration actually executed —
  /// also when the loop exits via the max_iterations cap mid-burst, so the
  /// triple (iterations_used, final_residual, converged) is always
  /// consistent: converged == (final_residual < tolerance).
  float final_residual = 0.f;
  bool converged = false;
};

/// Solves min TV(u) + ||u-v||^2/(2 theta) iterating until the dual state
/// stabilizes.  params.iterations is ignored (the tolerance governs).
[[nodiscard]] AdaptiveResult solve_adaptive(const Matrix<float>& v,
                                            const ChambolleParams& params,
                                            const AdaptiveOptions& options);

}  // namespace chambolle
