// adaptive.hpp — precision-driven stopping for the Chambolle iteration.
//
// The paper treats Niterations as an input "that determines the precision"
// (Section II-A, Table II).  This module inverts the relationship: iterate
// until the dual update falls below a tolerance and REPORT how many
// iterations that took — the tool used to choose Table II's 50/100/200
// budgets and by the convergence bench.
#pragma once

#include "chambolle/params.hpp"
#include "chambolle/solver.hpp"
#include "common/image.hpp"

namespace chambolle {

struct AdaptiveOptions {
  /// Stop when max |p_{k+1} - p_k| over both components drops below this.
  float tolerance = 1e-4f;
  /// Hard cap on iterations.
  int max_iterations = 2000;
  /// Convergence is checked every `check_every` iterations (checking is as
  /// expensive as an iteration, so batching amortizes it).
  int check_every = 10;

  void validate() const;
};

struct AdaptiveResult {
  ChambolleResult solution;
  int iterations_used = 0;
  float final_residual = 0.f;  ///< max |dp| at the last check
  bool converged = false;      ///< hit tolerance before the cap
};

/// Solves min TV(u) + ||u-v||^2/(2 theta) iterating until the dual state
/// stabilizes.  params.iterations is ignored (the tolerance governs).
[[nodiscard]] AdaptiveResult solve_adaptive(const Matrix<float>& v,
                                            const ChambolleParams& params,
                                            const AdaptiveOptions& options);

}  // namespace chambolle
