// fixed_solver.hpp — bit-accurate software model of the hardware datapath.
//
// The FPGA stores v in Q5.8 (13 bits) and px/py in Q1.8 (9 bits) packed into
// 32-bit BRAM words (Section V-B), computes in Q24.8, and takes square roots
// through the 256-entry LUT (Section V-C).  This module implements exactly
// that arithmetic as a plain software solver.  The cycle-level simulator in
// src/hw reuses the per-element datapath functions below, so "simulator ==
// fixed solver" tests verify that the PE-array operand ROUTING (forwarding
// flip-flops, BRAM-Term bridging, vertical rotation) is correct, while
// "fixed solver ~= float solver" tests bound the quantization error.
#pragma once

#include <cstdint>

#include "chambolle/params.hpp"
#include "chambolle/solver.hpp"
#include "common/image.hpp"
#include "fixedpoint/packed_word.hpp"
#include "fixedpoint/qformat.hpp"

namespace chambolle {

/// Quantized solver constants (all Q24.8 raw).
struct FixedParams {
  std::int32_t theta_q = 0;      ///< theta
  std::int32_t inv_theta_q = 0;  ///< 1/theta
  std::int32_t step_q = 0;       ///< tau/theta (Algorithm 1, lines 7-8)
  int iterations = 0;

  [[nodiscard]] static FixedParams from(const ChambolleParams& p);
};

/// Dense fixed-point state: raw Q5.8 v and Q1.8 px/py (stored widened in
/// int32 but always saturated to their BRAM widths after every update).
struct FixedState {
  Matrix<std::int32_t> v;
  Matrix<std::int32_t> px;
  Matrix<std::int32_t> py;

  FixedState() = default;
  FixedState(int rows, int cols) : v(rows, cols), px(rows, cols), py(rows, cols) {}
  [[nodiscard]] int rows() const { return v.rows(); }
  [[nodiscard]] int cols() const { return v.cols(); }
};

/// Per-element datapath stages, shared verbatim with the hw simulator.
namespace fxdp {

/// What a PE-T computes (Figure 6): div p, then Term = div p - v/theta.
struct TermOut {
  std::int32_t div_p = 0;
  std::int32_t term = 0;
};

/// c_px/c_py are the element's own dual values, l_px the left neighbor's px,
/// a_py the upper neighbor's py (the paper's operand names, Section V-A).
[[nodiscard]] TermOut pe_t_op(std::int32_t c_px, std::int32_t l_px,
                              std::int32_t c_py, std::int32_t a_py,
                              std::int32_t v, bool first_col, bool last_col,
                              bool first_row, bool last_row,
                              std::int32_t inv_theta_q);

/// What a PE-V computes (Figure 7): forward differences of Term (c_term =
/// own, r_term = right neighbor, b_term = below neighbor), LUT sqrt of the
/// gradient magnitude, and the projected dual update.  Results saturate to
/// the 9-bit Q1.8 BRAM format.
struct VOut {
  std::int32_t px = 0;
  std::int32_t py = 0;
};

[[nodiscard]] VOut pe_v_op(std::int32_t c_term, std::int32_t r_term,
                           std::int32_t b_term, bool last_col, bool last_row,
                           std::int32_t c_px, std::int32_t c_py,
                           std::int32_t step_q);

/// u = v - theta * div p, saturated to the 13-bit Q5.8 v format.
[[nodiscard]] std::int32_t pe_u_op(std::int32_t v, std::int32_t div_p,
                                   std::int32_t theta_q);

}  // namespace fxdp

/// Quantizes a float field into the fixed-point state (v saturated to Q5.8;
/// px/py start at zero per Algorithm 1).
[[nodiscard]] FixedState make_fixed_state(const Matrix<float>& v);

/// Runs `iterations` fixed-point Chambolle iterations in place over a window
/// (same region semantics as the float iterate_region).
void fixed_iterate_region(FixedState& state, const RegionGeometry& geom,
                          const FixedParams& params, int iterations,
                          Matrix<std::int32_t>& term_scratch);

/// u = v - theta*div p over the window, in the Q5.8 format.
[[nodiscard]] Matrix<std::int32_t> fixed_recover_u(const FixedState& state,
                                                   const RegionGeometry& geom,
                                                   std::int32_t theta_q);

/// Full solve returning a float u (dequantized), for accuracy comparisons.
[[nodiscard]] ChambolleResult solve_fixed(const Matrix<float>& v,
                                          const ChambolleParams& params);

/// Dequantizes a raw Q*.8 matrix to float.
[[nodiscard]] Matrix<float> dequantize(const Matrix<std::int32_t>& raw);

}  // namespace chambolle
