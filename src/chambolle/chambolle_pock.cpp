#include "chambolle/chambolle_pock.hpp"

#include <cmath>
#include <stdexcept>

#include "grid/diff_ops.hpp"

namespace chambolle {

void ChambollePockParams::validate() const {
  if (theta <= 0.f) throw std::invalid_argument("ChambollePock: theta <= 0");
  if (tau_pd <= 0.f || sigma <= 0.f)
    throw std::invalid_argument("ChambollePock: steps must be positive");
  if (tau_pd * sigma * 8.f > 1.f + 1e-5f)
    throw std::invalid_argument(
        "ChambollePock: tau*sigma*L^2 > 1 breaks convergence (L^2 = 8)");
  if (iterations < 0)
    throw std::invalid_argument("ChambollePock: negative iterations");
}

ChambolleResult solve_chambolle_pock(const Matrix<float>& v,
                                     const ChambollePockParams& params) {
  params.validate();
  const int rows = v.rows(), cols = v.cols();

  Matrix<float> u = v;          // warm primal start at the data
  Matrix<float> u_bar = v;
  Matrix<float> yx(rows, cols), yy(rows, cols);
  float tau = params.tau_pd;
  float sigma = params.sigma;
  const float gamma = 1.f / params.theta;  // strong-convexity modulus

  for (int it = 0; it < params.iterations; ++it) {
    // Dual ascent + projection onto the unit ball.
    const Matrix<float> gx = grid::forward_x(u_bar);
    const Matrix<float> gy = grid::forward_y(u_bar);
    for (std::size_t i = 0; i < yx.size(); ++i) {
      const float nx = yx.data()[i] + sigma * gx.data()[i];
      const float ny = yy.data()[i] + sigma * gy.data()[i];
      const float mag = std::sqrt(nx * nx + ny * ny);
      const float scale = mag > 1.f ? 1.f / mag : 1.f;
      yx.data()[i] = nx * scale;
      yy.data()[i] = ny * scale;
    }

    // Primal proximal step for ||u - v||^2 / (2 theta).
    const Matrix<float> div = grid::divergence(yx, yy);
    const float w = tau / params.theta;
    const Matrix<float> u_prev = u;
    for (std::size_t i = 0; i < u.size(); ++i)
      u.data()[i] = (u.data()[i] + tau * div.data()[i] + w * v.data()[i]) /
                    (1.f + w);

    float momentum = 1.f;
    if (params.accelerate) {
      const float accel = 1.f / std::sqrt(1.f + 2.f * gamma * tau);
      momentum = accel;
      tau *= accel;
      sigma /= accel;
    }
    for (std::size_t i = 0; i < u.size(); ++i)
      u_bar.data()[i] =
          u.data()[i] + momentum * (u.data()[i] - u_prev.data()[i]);
  }

  ChambolleResult out;
  out.u = std::move(u);
  out.p.px = std::move(yx);
  out.p.py = std::move(yy);
  return out;
}

}  // namespace chambolle
