// multilevel.hpp — the coarse-grid dual corrector of the resident engine.
//
// The resident-tile engine propagates information between tiles one halo
// strip per pass, so the pass count to flush GLOBAL low-frequency error
// grows with frame size (ROADMAP open item 3).  This module computes the
// fix: given a snapshot of the fine dual state (px, py), it restricts the
// state down a ladder of ceil-halved grids (grid/transfer.hpp), runs a
// small fused-kernel Chambolle solve on the coarsest level — where one
// iteration couples cells 2^levels fine cells apart — and prolongates the
// accumulated dual increment back up as a fine-level correction field
// (delta_px, delta_py).  The engine scatters that field into the pinned
// per-tile buffers at a rendezvous pass (resident_tiled.cpp); this class
// knows nothing about tiles or threads.
//
// The cycle is a dual-variable V-cycle in the FAS (full approximation
// scheme) form: the coarse problems are solved with DEFECT-CORRECTED data,
// not the raw restricted input.  The naive choice v_l = restrict(v_{l-1})
// makes the coarse fixed point the coarse DISCRETIZATION's solution, whose
// distance to the restricted fine solution (the discretization gap) the
// correction would inject into the fine state on every firing — a
// correction that never vanishes, so the engine could never converge past
// it (on noise-dominated frames it is pure poison).  Instead each level's
// data absorbs the current state's discretization defect:
//
//   vt_l = restrict(vt_{l-1})
//          + theta_l * (div_l(restrict p) - 2 * restrict(div_{l-1} p))
//
// which makes the coarse primal at the restricted state EXACTLY the
// restriction of the finer primal: u_l(R p) = R(u_{l-1}(p)).  When the fine
// state is converged, the coarse problem is (to first order in the
// operators' commutator) already stationary at R p and the correction
// collapses toward zero; far from convergence, the coarse solve moves the
// low-frequency error the way the raw scheme would.  The 2x factor is the
// grid-spacing scaling of the unit-spacing divergence (see the
// MultilevelOptions doc in params.hpp).
//
//   down:  p_l = restrict(p_{l-1}),  saved as p0_l; vt_l built as above
//          (l = 1..L)
//   base:  run coarse_iterations fused Chambolle iterations on level L
//          with theta_L = theta / 2^L, tau_L = tau / 2^L (the consistent
//          rediscretization of the same continuum problem)
//   up:    delta_l = p_l - p0_l; p_{l-1} += prolong_scale *
//          prolong_bilinear(delta_l); project onto |p| <= 1; run
//          smooth_iterations fused iterations (intermediate levels only)
//   out:   delta_0 = p_0_corrected - p_0_snapshot, exposed as
//          delta_px()/delta_py()
//
// A PROGRESS GATE decides whether a cycle runs at all (see
// MultilevelOptions::gate_factor): the coarse solve only helps while the
// fine error is smooth — the regime where the primal drifts steadily pass
// after pass while the dual residual is small.  When the dual churns
// without primal progress (high-frequency content, or a state already at
// the coarse model's accuracy floor) the gate declines and compute()
// returns after one cheap O(N) primal evaluation, without touching the
// ladders.
//
// A DUAL-OBJECTIVE SAFEGUARD then vets every cycle the gate admits: the
// candidate correction is applied only if it strictly undercuts the dual
// objective D(p) = ||v - theta div p||^2 = ||u(p)||^2 of the state the
// PREVIOUS rendezvous exited with.  D is the fine iteration's own descent
// function (its minimizer over the unit ball is the fixed point), so the
// rule makes the exit-state sequence D(exit_0) > D(exit_1) > ... strictly
// decreasing — a Lyapunov invariant of the composed iteration that
// structurally rules out correction/fine-pass limit cycles.  Even with
// defect-corrected data the coarse fixed point sits a commutator-sized gap
// from the fine one; once the fine state is more accurate than that gap, a
// cycle would drag it back toward the coarse solution.  The gate alone
// cannot see this — the tug of war between corrections and fine passes
// keeps the measured drift large, so it keeps firing — but the invariant
// can: a past-the-floor correction would need D to return to a prior value
// and is declined.  (The comparison is against the previous EXIT state,
// not the instantaneous one, because the prolongated increment carries
// transient roughness that can raise D — and the primal energy — even when
// the period as a whole nets real progress; instantaneous-descent tests
// reject productive tail corrections wholesale.)  On acceptance the drift
// baseline becomes the POST-correction primal, so the next gate
// measurement sees fine-pass progress only, never the correction's jump.
//
// Everything here is single-threaded and allocation-free after setup(), so
// the corrector's output is a pure function of the snapshot — the
// schedule-independence ("same bits across lane counts") of the multilevel
// engine rests on that.
#pragma once

#include <vector>

#include "chambolle/params.hpp"
#include "common/image.hpp"

namespace chambolle {

/// Projects a dual field onto the pointwise unit ball: where the magnitude
/// sqrt(px^2 + py^2) exceeds 1, both components are divided by it.  The
/// Chambolle update keeps |p| <= 1 invariantly; after adding a prolongated
/// increment the projection restores feasibility.
void project_unit_ball(Matrix<float>& px, Matrix<float>& py);

class CoarseCorrector {
 public:
  CoarseCorrector() = default;

  /// Allocates the per-level ladders for a fine frame shaped like `v` and
  /// keeps a copy of v (the defect-corrected coarse data is rebuilt from it
  /// each compute(); re-setup when v changes).  The realized level count is
  /// resolve_levels(); 0 (frame too small or options disabled) leaves the
  /// corrector inactive.
  void setup(const Matrix<float>& v, const ChambolleParams& params,
             const MultilevelOptions& options);

  /// True when setup() realized at least one coarse level.
  [[nodiscard]] bool active() const { return levels_ > 0; }
  [[nodiscard]] int levels() const { return levels_; }

  struct Result {
    /// True when the progress gate admitted the V-cycle AND the
    /// dual-objective safeguard accepted its output; delta_px()/delta_py()
    /// are only meaningful then.  False on the baseline (first) call and
    /// whenever either check declined.
    bool applied = false;
    /// True when the V-cycle ran but its candidate failed to undercut the
    /// previous rendezvous exit state's dual objective and was discarded
    /// (applied is false then).  Distinguishes "gate said don't bother"
    /// from "cycle ran and was vetoed".
    bool safeguard_declined = false;
    /// max |delta p| over both components of the fine-level correction —
    /// the tiles.coarse_correction_norm gauge, and an upper bound on any
    /// per-tile un-retirement test.  0 when !applied.
    float max_delta = 0.f;
    /// Fine primal drift per pass since the previous call — the gate's
    /// left-hand side (0 on the baseline call).
    float progress = 0.f;
  };

  /// Gates and (when admitted) runs one V-cycle from a fine dual snapshot;
  /// the fine correction is left in delta_px()/delta_py().  `residual` is
  /// the caller's fine dual residual (max per-iteration |dp|; the resident
  /// engine passes the max over its tiles' last pass) — the gate's
  /// right-hand side, see MultilevelOptions::gate_factor.  The first call
  /// only records the primal baseline and never applies.  Deterministic:
  /// the output depends only on (px, py, residual), the call history, and
  /// the setup() inputs.  Requires active().
  Result compute(const Matrix<float>& px, const Matrix<float>& py,
                 float residual);

  /// Fine-level dual correction of the last compute() (same shape as v).
  [[nodiscard]] const Matrix<float>& delta_px() const { return dpx_; }
  [[nodiscard]] const Matrix<float>& delta_py() const { return dpy_; }

  /// The level count setup() will realize for a rows x cols frame: the
  /// explicit options.levels, or (levels == 0) the auto rule — a single
  /// coarse level; one halving already doubles the per-iteration coupling
  /// radius at a quarter of the cost, and with the default iteration
  /// budgets a two-level cycle measurably out-corrects deeper ladders,
  /// whose under-solved coarsest level feeds safeguard rejections instead
  /// of progress — both clamped so the coarsest extent
  /// stays >= 4.  Returns 0 (correction off) when the options are disabled
  /// or the frame cannot coarsen even once.
  [[nodiscard]] static int resolve_levels(int rows, int cols,
                                          const MultilevelOptions& options);

 private:
  /// Fused Chambolle iterations on one coarse level (1-based), with
  /// theta/tau halved per level.
  void solve_level(int level, int iterations);

  ChambolleParams params_;
  MultilevelOptions options_;
  int levels_ = 0;

  Matrix<float> fv_;  ///< copy of the fine input field (defect-data root)

  // Progress-gate state: the fine primal recovered from the previous
  // compute() snapshot, and whether one has been recorded yet.
  Matrix<float> u_, prev_u_;
  bool has_baseline_ = false;
  // Safeguard state: the dual objective sum u^2 of the state the previous
  // compute() exited with (post-correction when one applied).
  double d_bar_ = 0.0;

  // Ladders indexed by level 1..levels_ at [l - 1] (level 0 state lives in
  // the caller's tile buffers; only its correction delta is materialized).
  std::vector<Matrix<float>> v_;    ///< defect-corrected data per level
  std::vector<Matrix<float>> px_;   ///< working dual state per level
  std::vector<Matrix<float>> py_;
  std::vector<Matrix<float>> p0x_;  ///< pre-cycle snapshots per level
  std::vector<Matrix<float>> p0y_;

  // Defect-correction scratch: div_[l] holds div of the level-l dual state
  // (l = 0 is the fine snapshot); rdiv_[l - 1] its restriction to level l.
  std::vector<Matrix<float>> div_;
  std::vector<Matrix<float>> rdiv_;

  Matrix<float> dpx_, dpy_;    ///< fine-level output correction
  Matrix<float> lift_;         ///< prolongation scratch
  Matrix<float> term_;         ///< fused-kernel rolling Term scratch
};

}  // namespace chambolle
