// solver.hpp — reference implementation of Algorithm 1.
//
// The solver is written around one primitive, iterate_region(), which runs
// Chambolle iterations on a rectangular window of a notional frame:
//
//   * the full-frame reference solver is iterate_region() on the whole frame;
//   * the tiled sliding-window solver (tiled_solver.hpp) calls it per tile.
//
// Because both paths execute the *same* per-element arithmetic — the fused
// SIMD kernel layer of kernels/kernel.hpp, whose backends are bit-exact
// with each other — the paper's claim that profitable tile elements equal
// the full-frame result is testable bit-exactly, not merely within a
// tolerance.  RegionGeometry now lives with the kernel layer and is
// re-exported here unchanged.
#pragma once

#include "chambolle/params.hpp"
#include "common/image.hpp"
#include "kernels/kernel.hpp"

namespace chambolle::telemetry {
class ConvergenceTrace;
}  // namespace chambolle::telemetry

namespace chambolle {

/// Result of a Chambolle solve for one flow component.
struct ChambolleResult {
  Matrix<float> u;  ///< primal output, u = v - theta * div p
  DualField p;      ///< final dual state (px, py)
};

/// Runs `iterations` Chambolle iterations in place on (px, py) over the given
/// window.  v, px, py must share the buffer shape.  `term_scratch` holds the
/// kernel layer's rolling two-row Term window and is resized as needed (pass
/// a reused buffer to avoid per-call allocation).  When `last_iter_max_dp`
/// is non-null it receives the final iteration's max |dp| (the kernel
/// layer's fused single-iteration dual residual; px/py are bit-identical
/// either way).
void iterate_region(Matrix<float>& px, Matrix<float>& py,
                    const Matrix<float>& v, const RegionGeometry& geom,
                    const ChambolleParams& params, int iterations,
                    Matrix<float>& term_scratch,
                    float* last_iter_max_dp = nullptr);

/// u = v - theta * div p (Algorithm 1, line 9) over a window.
[[nodiscard]] Matrix<float> recover_u(const Matrix<float>& v,
                                      const Matrix<float>& px,
                                      const Matrix<float>& py,
                                      const RegionGeometry& geom, float theta);

/// recover_u into a caller-provided output, resized as needed — the
/// allocation-free form the TV-L1 pyramid loop reuses every warp.
void recover_u_into(const Matrix<float>& v, const Matrix<float>& px,
                    const Matrix<float>& py, const RegionGeometry& geom,
                    float theta, Matrix<float>& out);

/// Full-frame reference solve of one component.  When `initial` is non-null
/// the dual state starts from it instead of zero (used by warm-started TV-L1
/// outer iterations).  When `convergence` is non-null the solver steps one
/// iteration at a time and records (iteration, max|Δp|, ROF energy) into the
/// trace — same arithmetic and final state, but slower: per-iteration
/// residual/energy evaluation is the cost of asking for the curve.
[[nodiscard]] ChambolleResult solve(
    const Matrix<float>& v, const ChambolleParams& params,
    const DualField* initial = nullptr,
    telemetry::ConvergenceTrace* convergence = nullptr);

/// solve() into a caller-provided result whose buffers (u, p) are reused
/// when correctly shaped — the steady-state-allocation-free form for
/// per-frame service loops (TV-L1 warps, video).  Semantics are identical
/// to solve() otherwise.
void solve_into(const Matrix<float>& v, const ChambolleParams& params,
                ChambolleResult& out, const DualField* initial = nullptr,
                telemetry::ConvergenceTrace* convergence = nullptr);

/// Solves both components of a flow field (the hardware runs them on separate
/// PE arrays; here they are sequential but independent).  Optional initial
/// duals warm-start the per-component solves (temporal coherence across
/// frames, the same path video_runner's carry uses); optional final duals
/// receive the end state so the next frame can warm-start from it.
[[nodiscard]] FlowField solve_flow(const FlowField& v,
                                   const ChambolleParams& params,
                                   const DualField* initial_u1 = nullptr,
                                   const DualField* initial_u2 = nullptr,
                                   DualField* final_u1 = nullptr,
                                   DualField* final_u2 = nullptr);

}  // namespace chambolle
