#include "chambolle/adaptive.hpp"

#include <algorithm>
#include <stdexcept>

namespace chambolle {

void AdaptiveOptions::validate() const {
  if (tolerance <= 0.f)
    throw std::invalid_argument("AdaptiveOptions: tolerance <= 0");
  if (max_iterations < 1)
    throw std::invalid_argument("AdaptiveOptions: max_iterations < 1");
  if (check_every < 1)
    throw std::invalid_argument("AdaptiveOptions: check_every < 1");
}

AdaptiveResult solve_adaptive(const Matrix<float>& v,
                              const ChambolleParams& params,
                              const AdaptiveOptions& options) {
  params.validate();
  options.validate();

  const int rows = v.rows(), cols = v.cols();
  const RegionGeometry geom = RegionGeometry::full_frame(rows, cols);
  AdaptiveResult out;
  DualField p(rows, cols);
  Matrix<float> scratch;

  // Each burst runs min(check_every, remaining) iterations and reads the
  // kernel layer's fused residual of the burst's LAST iteration: a single-
  // iteration max |dp|, so the tolerance means the same thing for every
  // check_every (and for a cap-truncated final burst) — no state copies,
  // no extra sweep.
  int done = 0;
  while (done < options.max_iterations) {
    const int burst = std::min(options.check_every,
                               options.max_iterations - done);
    float residual = 0.f;
    iterate_region(p.px, p.py, v, geom, params, burst, scratch, &residual);
    done += burst;
    out.final_residual = residual;
    if (residual < options.tolerance) {
      out.converged = true;
      break;
    }
  }

  out.iterations_used = done;
  out.solution.u = recover_u(v, p.px, p.py, geom, params.theta);
  out.solution.p = std::move(p);
  return out;
}

}  // namespace chambolle
