#include "chambolle/adaptive.hpp"

#include <stdexcept>

namespace chambolle {

void AdaptiveOptions::validate() const {
  if (tolerance <= 0.f)
    throw std::invalid_argument("AdaptiveOptions: tolerance <= 0");
  if (max_iterations < 1)
    throw std::invalid_argument("AdaptiveOptions: max_iterations < 1");
  if (check_every < 1)
    throw std::invalid_argument("AdaptiveOptions: check_every < 1");
}

AdaptiveResult solve_adaptive(const Matrix<float>& v,
                              const ChambolleParams& params,
                              const AdaptiveOptions& options) {
  params.validate();
  options.validate();

  const int rows = v.rows(), cols = v.cols();
  const RegionGeometry geom = RegionGeometry::full_frame(rows, cols);
  AdaptiveResult out;
  DualField p(rows, cols);
  Matrix<float> scratch;
  Matrix<float> prev_px(rows, cols), prev_py(rows, cols);

  int done = 0;
  while (done < options.max_iterations) {
    prev_px = p.px;
    prev_py = p.py;
    const int burst = std::min(options.check_every,
                               options.max_iterations - done);
    iterate_region(p.px, p.py, v, geom, params, burst, scratch);
    done += burst;

    const float residual = static_cast<float>(
        std::max(max_abs_diff(p.px, prev_px), max_abs_diff(p.py, prev_py)));
    out.final_residual = residual;
    if (residual < options.tolerance) {
      out.converged = true;
      break;
    }
  }

  out.iterations_used = done;
  out.solution.u = recover_u(v, p.px, p.py, geom, params.theta);
  out.solution.p = std::move(p);
  return out;
}

}  // namespace chambolle
