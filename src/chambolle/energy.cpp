#include "chambolle/energy.hpp"

#include <cmath>
#include <stdexcept>

#include "grid/diff_ops.hpp"

namespace chambolle {

double total_variation(const Matrix<float>& u) {
  const Matrix<float> gx = grid::forward_x(u);
  const Matrix<float> gy = grid::forward_y(u);
  double tv = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double a = gx.data()[i], b = gy.data()[i];
    tv += std::sqrt(a * a + b * b);
  }
  return tv;
}

double l2_distance_sq(const Matrix<float>& u, const Matrix<float>& v) {
  if (!u.same_shape(v)) throw std::invalid_argument("l2_distance_sq: shape");
  double s = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double d = static_cast<double>(u.data()[i]) - v.data()[i];
    s += d * d;
  }
  return s;
}

double rof_energy(const Matrix<float>& u, const Matrix<float>& v,
                  float theta) {
  if (theta <= 0.f) throw std::invalid_argument("rof_energy: theta <= 0");
  return total_variation(u) + l2_distance_sq(u, v) / (2.0 * theta);
}

double max_dual_magnitude(const Matrix<float>& px, const Matrix<float>& py) {
  if (!px.same_shape(py))
    throw std::invalid_argument("max_dual_magnitude: shape");
  double m = 0.0;
  for (std::size_t i = 0; i < px.size(); ++i) {
    const double a = px.data()[i], b = py.data()[i];
    m = std::max(m, std::sqrt(a * a + b * b));
  }
  return m;
}

}  // namespace chambolle
