#include "chambolle/row_parallel.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "kernels/kernel.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"

namespace chambolle {
namespace {

// Legacy engine: runs fn(strip_index) for every strip on a freshly spawned
// team and joins — the join IS the barrier of the schedule, paid twice per
// iteration.  Retained as the measurable baseline for the pooled engine.
template <typename Fn>
void spawn_strips(int num_strips, int threads, Fn&& fn) {
  if (threads <= 1 || num_strips <= 1) {
    for (int i = 0; i < num_strips; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  const auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_strips) return;
      fn(i);
    }
  };
  std::vector<std::thread> team;
  const int n = std::min(threads, num_strips);
  team.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) team.emplace_back(worker);
  for (std::thread& t : team) t.join();
}

}  // namespace

void RowParallelOptions::validate() const {
  if (num_threads < 0)
    throw std::invalid_argument("RowParallelOptions: negative num_threads");
  if (rows_per_strip <= 0)
    throw std::invalid_argument("RowParallelOptions: rows_per_strip <= 0");
}

ChambolleResult solve_row_parallel(const Matrix<float>& v,
                                   const ChambolleParams& params,
                                   const RowParallelOptions& options,
                                   RowParallelStats* stats) {
  params.validate();
  options.validate();
  const telemetry::TraceSpan span("chambolle.solve_row_parallel");
  const int rows = v.rows(), cols = v.cols();
  const int threads = parallel::default_pool().lanes_for(options.num_threads);
  const int strips =
      std::max((rows + options.rows_per_strip - 1) / options.rows_per_strip, 1);
  const float inv_theta = 1.f / params.theta;
  const float step = params.step();

  Matrix<float> px(rows, cols), py(rows, cols), term(rows, cols);
  int barriers = 0;

  const auto strip_range = [&](int s, int& r0, int& r1) {
    r0 = s * options.rows_per_strip;
    r1 = std::min(rows, r0 + options.rows_per_strip);
  };

  // Phase 1: Terms (reads p, writes term) through the shared SIMD kernel —
  // the same row primitive as the reference solver, so the result is
  // bit-exact.  The two-phase shape (vs. the sequential engine's fused
  // sweep) is what lets strips proceed in parallel: the Term frame is the
  // materialized rendezvous state between the barriers.
  const kernels::KernelOps& kern = kernels::ops();
  const auto phase1_strip = [&](int s) {
    int r0, r1;
    strip_range(s, r0, r1);
    kernels::TermRowArgs a{};
    a.cols = cols;
    a.inv_theta = inv_theta;
    a.at_left = true;
    a.at_right = true;
    for (int r = r0; r < r1; ++r) {
      a.px = &px(r, 0);
      a.py = &py(r, 0);
      a.py_up = r > 0 ? &py(r - 1, 0) : nullptr;
      a.v = &v(r, 0);
      a.term = &term(r, 0);
      a.at_top = r == 0;
      a.at_bottom = r == rows - 1;
      kern.term_row(a);
    }
  };

  // Phase 2: dual updates (reads term, writes p).
  const auto phase2_strip = [&](int s) {
    int r0, r1;
    strip_range(s, r0, r1);
    kernels::UpdateRowArgs a{};
    a.cols = cols;
    a.step = step;
    for (int r = r0; r < r1; ++r) {
      a.px = &px(r, 0);
      a.py = &py(r, 0);
      a.term = &term(r, 0);
      a.term_down = r + 1 < rows ? &term(r + 1, 0) : nullptr;
      kern.update_row(a);
    }
  };

  const int lanes = std::min(threads, strips);
  if (options.execution == parallel::Execution::kSpawn || lanes <= 1) {
    // Spawn baseline (or degenerate width): a fresh team per phase.
    for (int it = 0; it < params.iterations; ++it) {
      spawn_strips(strips, lanes, phase1_strip);
      ++barriers;
      spawn_strips(strips, lanes, phase2_strip);
      ++barriers;
    }
  } else {
    // Pooled engine: ONE resident team lives across every iteration; the
    // phase boundaries are barrier rendezvous, never joins.  Strips are
    // assigned round-robin per lane — any fixed assignment is bit-exact
    // because the phases are Jacobi sweeps over disjoint write sets.
    parallel::default_pool().run_team(
        lanes, [&](int lane, int nlanes, parallel::Barrier& barrier) {
          for (int it = 0; it < params.iterations; ++it) {
            {
              const telemetry::ProfScope prof(telemetry::LaneCause::kKernel);
              for (int s = lane; s < strips; s += nlanes) phase1_strip(s);
            }
            barrier.arrive_and_wait();
            {
              const telemetry::ProfScope prof(telemetry::LaneCause::kKernel);
              for (int s = lane; s < strips; s += nlanes) phase2_strip(s);
            }
            barrier.arrive_and_wait();
          }
        });
    barriers = 2 * params.iterations;
  }

  if (stats != nullptr) {
    stats->barriers = barriers;
    stats->strips = static_cast<std::size_t>(strips);
  }
  static telemetry::Counter& c_solves =
      telemetry::registry().counter("chambolle.row_parallel.solves");
  static telemetry::Counter& c_barriers =
      telemetry::registry().counter("chambolle.row_parallel.barriers");
  c_solves.add(1);
  c_barriers.add(static_cast<std::uint64_t>(barriers));

  ChambolleResult out;
  out.u = recover_u(v, px, py, RegionGeometry::full_frame(rows, cols),
                    params.theta);
  out.p.px = std::move(px);
  out.p.py = std::move(py);
  return out;
}

}  // namespace chambolle
