#include "chambolle/tiled_solver.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"

namespace chambolle {
namespace {

// Processes one tile: copy buffer, iterate locally, write back profitable.
void process_tile(const TileSpec& t, const Matrix<float>& px,
                  const Matrix<float>& py, Matrix<float>& px_out,
                  Matrix<float>& py_out, const Matrix<float>& v,
                  const TilingPlan& plan, const ChambolleParams& params,
                  int iterations, Matrix<float>& scratch) {
  const telemetry::TraceSpan span("chambolle.tiled.tile");
  // The whole tile body (buffer copy + local sweeps + write-back) is kernel
  // work for this engine; halo copies are part of its compute overhead.
  const telemetry::ProfScope prof(telemetry::LaneCause::kKernel);
  Matrix<float> bpx = px.block(t.buf_row0, t.buf_col0, t.buf_rows, t.buf_cols);
  Matrix<float> bpy = py.block(t.buf_row0, t.buf_col0, t.buf_rows, t.buf_cols);
  const Matrix<float> bv =
      v.block(t.buf_row0, t.buf_col0, t.buf_rows, t.buf_cols);
  const RegionGeometry geom{t.buf_row0, t.buf_col0, plan.frame_rows,
                            plan.frame_cols};
  iterate_region(bpx, bpy, bv, geom, params, iterations, scratch);
  const int dr = t.prof_row0 - t.buf_row0;
  const int dc = t.prof_col0 - t.buf_col0;
  for (int r = 0; r < t.prof_rows; ++r)
    for (int c = 0; c < t.prof_cols; ++c) {
      px_out(t.prof_row0 + r, t.prof_col0 + c) = bpx(dr + r, dc + c);
      py_out(t.prof_row0 + r, t.prof_col0 + c) = bpy(dr + r, dc + c);
    }
}

void check_pass_args(const Matrix<float>& px, const Matrix<float>& py,
                     const Matrix<float>& px_out, const Matrix<float>& py_out,
                     const Matrix<float>& v, const TilingPlan& plan,
                     int iterations_this_pass) {
  if (iterations_this_pass <= 0 || iterations_this_pass > plan.halo)
    throw std::invalid_argument("run_tiled_pass: iterations exceed halo");
  if (!px.same_shape(py) || !px.same_shape(v) || !px_out.same_shape(px) ||
      !py_out.same_shape(py))
    throw std::invalid_argument("run_tiled_pass: shape mismatch");
}

// One merged pass with caller-owned per-lane scratch, so a multi-pass solve
// reuses both the resident workers AND their scratch buffers.
void run_pass(const Matrix<float>& px, const Matrix<float>& py,
              Matrix<float>& px_out, Matrix<float>& py_out,
              const Matrix<float>& v, const TilingPlan& plan,
              const ChambolleParams& params, int iterations_this_pass,
              int lanes, parallel::Execution execution,
              parallel::PerLane<Matrix<float>>& scratch) {
  if (execution == parallel::Execution::kSpawn) {
    // Legacy engine: one thread team spawned and joined per pass.  Retained
    // as the measurable baseline of the pooled-vs-spawn benches.
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      Matrix<float> local_scratch;
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= plan.tiles.size()) return;
        process_tile(plan.tiles[i], px, py, px_out, py_out, v, plan, params,
                     iterations_this_pass, local_scratch);
      }
    };
    if (lanes == 1 || plan.tiles.size() <= 1) {
      worker();
      return;
    }
    std::vector<std::thread> team;
    team.reserve(static_cast<std::size_t>(lanes));
    for (int i = 0; i < lanes; ++i) team.emplace_back(worker);
    for (std::thread& th : team) th.join();
    return;
  }

  parallel::default_pool().parallel_for(
      plan.tiles.size(), lanes,
      [&](std::size_t begin, std::size_t end, int lane) {
        Matrix<float>& s = scratch[lane];
        for (std::size_t i = begin; i < end; ++i)
          process_tile(plan.tiles[i], px, py, px_out, py_out, v, plan, params,
                       iterations_this_pass, s);
      });
}

}  // namespace

void TiledSolverOptions::validate() const {
  if (merge_iterations <= 0)
    throw std::invalid_argument("TiledSolverOptions: merge_iterations <= 0");
  if (tile_rows <= 2 * merge_iterations || tile_cols <= 2 * merge_iterations)
    throw std::invalid_argument(
        "TiledSolverOptions: tile must exceed twice the merge depth");
  if (num_threads < 0)
    throw std::invalid_argument("TiledSolverOptions: negative num_threads");
}

void run_tiled_pass(const Matrix<float>& px, const Matrix<float>& py,
                    Matrix<float>& px_out, Matrix<float>& py_out,
                    const Matrix<float>& v, const TilingPlan& plan,
                    const ChambolleParams& params, int iterations_this_pass,
                    int num_threads, parallel::Execution execution) {
  check_pass_args(px, py, px_out, py_out, v, plan, iterations_this_pass);
  const int lanes = parallel::default_pool().lanes_for(num_threads);
  parallel::PerLane<Matrix<float>> scratch(lanes);
  run_pass(px, py, px_out, py_out, v, plan, params, iterations_this_pass,
           lanes, execution, scratch);
}

ChambolleResult solve_tiled(const Matrix<float>& v,
                            const ChambolleParams& params,
                            const TiledSolverOptions& options,
                            TiledSolverStats* stats) {
  params.validate();
  options.validate();
  const telemetry::TraceSpan span("chambolle.solve_tiled");
  const int rows = v.rows(), cols = v.cols();
  const TilingPlan plan = make_tiling(rows, cols, options.tile_rows,
                                      options.tile_cols,
                                      options.merge_iterations);

  Matrix<float> px(rows, cols), py(rows, cols);
  Matrix<float> px_next(rows, cols), py_next(rows, cols);
  const int lanes = parallel::default_pool().lanes_for(options.num_threads);
  parallel::PerLane<Matrix<float>> scratch(lanes);

  int remaining = params.iterations;
  int passes = 0;
  std::size_t element_iterations = 0;
  while (remaining > 0) {
    const int k = std::min(remaining, options.merge_iterations);
    const telemetry::TraceSpan pass_span("chambolle.tiled.pass");
    check_pass_args(px, py, px_next, py_next, v, plan, k);
    run_pass(px, py, px_next, py_next, v, plan, params, k, lanes,
             options.execution, scratch);
    std::swap(px, px_next);
    std::swap(py, py_next);
    remaining -= k;
    ++passes;
    element_iterations +=
        plan.total_buffer_elements() * static_cast<std::size_t>(k);
  }

  // Per-tile work accounting: "profitable" elements land in the output,
  // "redundant" ones are the replicated halo work the tiling pays for
  // parallelism (the paper's computation-overhead discussion).
  static telemetry::Counter& c_solves =
      telemetry::registry().counter("chambolle.tiled.solves");
  static telemetry::Counter& c_passes =
      telemetry::registry().counter("chambolle.tiled.passes");
  static telemetry::Counter& c_tiles =
      telemetry::registry().counter("chambolle.tiled.tiles");
  static telemetry::Counter& c_profitable =
      telemetry::registry().counter("chambolle.tiled.profitable_elements");
  static telemetry::Counter& c_redundant =
      telemetry::registry().counter("chambolle.tiled.redundant_elements");
  c_solves.add(1);
  c_passes.add(static_cast<std::uint64_t>(passes));
  c_tiles.add(static_cast<std::uint64_t>(plan.tiles.size()) *
              static_cast<std::uint64_t>(passes));
  const std::uint64_t profitable_per_pass = plan.total_profitable_elements();
  const std::uint64_t buffer_per_pass = plan.total_buffer_elements();
  c_profitable.add(profitable_per_pass * static_cast<std::uint64_t>(passes));
  c_redundant.add((buffer_per_pass - profitable_per_pass) *
                  static_cast<std::uint64_t>(passes));
  telemetry::registry()
      .gauge("chambolle.tiled.redundancy")
      .set(plan.redundancy());

  if (stats != nullptr) {
    stats->passes = passes;
    stats->tiles_per_pass = plan.tiles.size();
    stats->element_iterations = element_iterations;
    stats->useful_element_iterations =
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) *
        static_cast<std::size_t>(params.iterations);
  }

  ChambolleResult out;
  const RegionGeometry geom = RegionGeometry::full_frame(rows, cols);
  out.u = recover_u(v, px, py, geom, params.theta);
  out.p.px = std::move(px);
  out.p.py = std::move(py);
  return out;
}

}  // namespace chambolle
