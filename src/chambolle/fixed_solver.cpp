#include "chambolle/fixed_solver.hpp"

#include <stdexcept>

#include "fixedpoint/lut_sqrt.hpp"
#include "kernels/kernel_fixed_simd.hpp"

namespace chambolle {

FixedParams FixedParams::from(const ChambolleParams& p) {
  p.validate();
  FixedParams f;
  f.theta_q = fx::to_fixed(p.theta);
  f.inv_theta_q = fx::to_fixed(1.0 / p.theta);
  f.step_q = fx::to_fixed(static_cast<double>(p.tau) / p.theta);
  f.iterations = p.iterations;
  return f;
}

namespace fxdp {

TermOut pe_t_op(std::int32_t c_px, std::int32_t l_px, std::int32_t c_py,
                std::int32_t a_py, std::int32_t v, bool first_col,
                bool last_col, bool first_row, bool last_row,
                std::int32_t inv_theta_q) {
  // BackwardX / BackwardY with the Chambolle border rules (Figure 6 wires
  // the two subtractions in parallel before the Term adder).
  const std::int32_t dx = first_col ? c_px : (last_col ? -l_px : c_px - l_px);
  const std::int32_t dy = first_row ? c_py : (last_row ? -a_py : c_py - a_py);
  TermOut out;
  out.div_p = dx + dy;
  out.term = out.div_p - fx::mul(v, inv_theta_q);
  return out;
}

VOut pe_v_op(std::int32_t c_term, std::int32_t r_term, std::int32_t b_term,
             bool last_col, bool last_row, std::int32_t c_px,
             std::int32_t c_py, std::int32_t step_q) {
  // ForwardX / ForwardY vanish on the far frame borders.
  const std::int32_t term1 = last_col ? 0 : r_term - c_term;
  const std::int32_t term2 = last_row ? 0 : b_term - c_term;
  const std::int32_t mag_sq = fx::mul(term1, term1) + fx::mul(term2, term2);
  const std::int32_t grad = fx::lut_sqrt(mag_sq);
  const std::int32_t denom = fx::kOne + fx::mul(step_q, grad);
  VOut out;
  out.px = fx::saturate_bits(fx::div(c_px + fx::mul(step_q, term1), denom),
                             fx::kPBits);
  out.py = fx::saturate_bits(fx::div(c_py + fx::mul(step_q, term2), denom),
                             fx::kPBits);
  return out;
}

std::int32_t pe_u_op(std::int32_t v, std::int32_t div_p,
                     std::int32_t theta_q) {
  return fx::saturate_bits(v - fx::mul(theta_q, div_p), fx::kVBits);
}

}  // namespace fxdp

FixedState make_fixed_state(const Matrix<float>& v) {
  FixedState s(v.rows(), v.cols());
  for (std::size_t i = 0; i < v.size(); ++i)
    s.v.data()[i] = fx::saturate_bits(fx::to_fixed(v.data()[i]), fx::kVBits);
  return s;
}

void fixed_iterate_region(FixedState& state, const RegionGeometry& geom,
                          const FixedParams& params, int iterations,
                          Matrix<std::int32_t>& term_scratch) {
  const int rows = state.rows(), cols = state.cols();
  if (!state.px.same_shape(state.v) || !state.py.same_shape(state.v))
    throw std::invalid_argument("fixed_iterate_region: shape mismatch");
  if (rows == 0 || cols == 0 || iterations == 0) return;
  if (!term_scratch.same_shape(state.v)) term_scratch.resize(rows, cols);

  // SIMD fast path: the AVX2 Q24.8 kernel runs the identical two-pass
  // schedule and is bit-exact with the loops below (differential-oracle
  // enforced); returns false when the scalar backend is active.
  if (kernels::fixed::iterate_region_simd(state.px, state.py, state.v, geom,
                                          params.inv_theta_q, params.step_q,
                                          iterations, term_scratch))
    return;

  for (int it = 0; it < iterations; ++it) {
    for (int r = 0; r < rows; ++r) {
      const int ar = geom.row0 + r;
      for (int c = 0; c < cols; ++c) {
        const int ac = geom.col0 + c;
        const std::int32_t l_px = c > 0 ? state.px(r, c - 1) : 0;
        const std::int32_t a_py = r > 0 ? state.py(r - 1, c) : 0;
        term_scratch(r, c) =
            fxdp::pe_t_op(state.px(r, c), l_px, state.py(r, c), a_py,
                          state.v(r, c), ac == 0, ac == geom.frame_cols - 1,
                          ar == 0, ar == geom.frame_rows - 1,
                          params.inv_theta_q)
                .term;
      }
    }
    for (int r = 0; r < rows; ++r) {
      const int ar = geom.row0 + r;
      for (int c = 0; c < cols; ++c) {
        const int ac = geom.col0 + c;
        const bool last_col = ac == geom.frame_cols - 1 || c + 1 >= cols;
        const bool last_row = ar == geom.frame_rows - 1 || r + 1 >= rows;
        const std::int32_t r_term = last_col ? 0 : term_scratch(r, c + 1);
        const std::int32_t b_term = last_row ? 0 : term_scratch(r + 1, c);
        const fxdp::VOut out =
            fxdp::pe_v_op(term_scratch(r, c), r_term, b_term, last_col,
                          last_row, state.px(r, c), state.py(r, c),
                          params.step_q);
        state.px(r, c) = out.px;
        state.py(r, c) = out.py;
      }
    }
  }
}

Matrix<std::int32_t> fixed_recover_u(const FixedState& state,
                                     const RegionGeometry& geom,
                                     std::int32_t theta_q) {
  const int rows = state.rows(), cols = state.cols();
  Matrix<std::int32_t> u(rows, cols);
  for (int r = 0; r < rows; ++r) {
    const int ar = geom.row0 + r;
    for (int c = 0; c < cols; ++c) {
      const int ac = geom.col0 + c;
      const std::int32_t l_px = c > 0 ? state.px(r, c - 1) : 0;
      const std::int32_t a_py = r > 0 ? state.py(r - 1, c) : 0;
      const std::int32_t inv_theta_unused = fx::kOne;  // div_p only
      const fxdp::TermOut t =
          fxdp::pe_t_op(state.px(r, c), l_px, state.py(r, c), a_py, 0,
                        ac == 0, ac == geom.frame_cols - 1, ar == 0,
                        ar == geom.frame_rows - 1, inv_theta_unused);
      u(r, c) = fxdp::pe_u_op(state.v(r, c), t.div_p, theta_q);
    }
  }
  return u;
}

ChambolleResult solve_fixed(const Matrix<float>& v,
                            const ChambolleParams& params) {
  const FixedParams fp = FixedParams::from(params);
  FixedState state = make_fixed_state(v);
  const RegionGeometry geom = RegionGeometry::full_frame(v.rows(), v.cols());
  Matrix<std::int32_t> scratch;
  fixed_iterate_region(state, geom, fp, fp.iterations, scratch);
  ChambolleResult out;
  out.u = dequantize(fixed_recover_u(state, geom, fp.theta_q));
  out.p.px = dequantize(state.px);
  out.p.py = dequantize(state.py);
  return out;
}

Matrix<float> dequantize(const Matrix<std::int32_t>& raw) {
  Matrix<float> out(raw.rows(), raw.cols());
  for (std::size_t i = 0; i < raw.size(); ++i)
    out.data()[i] = fx::to_float(raw.data()[i]);
  return out;
}

}  // namespace chambolle
