// chambolle_pock.hpp — the successor algorithm, as an extension study.
//
// Chambolle & Pock, "A first-order primal-dual algorithm for convex problems
// with applications to imaging" (2011) supersedes the 2004 fixed point the
// paper accelerates: for the same ROF sub-problem it converges at O(1/N^2)
// with acceleration instead of O(1/N).  We implement it on the identical
// grid operators so the two solvers are directly comparable — the
// algorithmic ablation for "should the accelerator run Chambolle-Pock
// instead?" (see bench/convergence and the tests: same minimizer, fewer
// iterations to a given tolerance).
//
// Scheme (ROF: min_u TV(u) + ||u - v||^2 / (2 theta)):
//   y_{k+1} = proj_{|.|<=1} (y_k + sigma * grad(ubar_k))
//   u_{k+1} = (u_k + tau_pd * (div y_{k+1}) + (tau_pd/theta) v) /
//             (1 + tau_pd/theta)
//   theta_accel = 1 / sqrt(1 + 2 gamma tau_pd), with gamma = 1/theta;
//   tau_pd, sigma updated by theta_accel; ubar = u_{k+1} +
//   theta_accel (u_{k+1} - u_k).
#pragma once

#include "chambolle/params.hpp"
#include "chambolle/solver.hpp"
#include "common/image.hpp"

namespace chambolle {

struct ChambollePockParams {
  /// ROF coupling (same meaning as ChambolleParams::theta).
  float theta = 0.25f;
  /// Initial primal/dual steps; tau_pd * sigma * L^2 <= 1 with L^2 = 8 for
  /// this grid.  Defaults satisfy it with equality.
  float tau_pd = 0.25f;
  float sigma = 0.5f;
  int iterations = 100;
  /// Enables the O(1/N^2) acceleration (strong convexity of the ROF term).
  /// Empirically, on the warm-started ROF sub-problems of this pipeline the
  /// theta=1 constant-step variant converges faster at practical iteration
  /// budgets (the aggressive primal-step decay dominates early); the flag is
  /// provided for the asymptotic-rate study in bench/convergence.
  bool accelerate = false;

  void validate() const;
};

/// Solves the ROF sub-problem with the primal-dual algorithm.  Returns the
/// same structure as the Chambolle solver for drop-in comparison.
[[nodiscard]] ChambolleResult solve_chambolle_pock(
    const Matrix<float>& v, const ChambollePockParams& params);

}  // namespace chambolle
