// row_parallel.hpp — the obvious-but-inferior parallelization, for contrast.
//
// Section II-B notes that existing Chambolle implementations are "essentially
// sequential" because of the inter-iteration dependencies.  The natural
// alternative to the paper's sliding windows is to parallelize WITHIN one
// iteration: split the frame into horizontal strips, compute all Terms, then
// all dual updates, with a barrier between phases and between iterations (a
// GPU-style schedule).  This is numerically identical to the reference
// solver (it performs the exact same Jacobi iteration), but it synchronizes
// every iteration instead of every `merge` iterations — on hardware, that is
// the difference between streaming tiles through on-chip memory and touching
// the whole frame every iteration.  The ablation benches quantify it.
#pragma once

#include "chambolle/params.hpp"
#include "chambolle/solver.hpp"
#include "common/image.hpp"
#include "parallel/thread_pool.hpp"

namespace chambolle {

struct RowParallelOptions {
  /// Worker threads; 0 means the default pool's configured width.
  int num_threads = 0;
  /// Rows per work unit handed to a thread.
  int rows_per_strip = 16;
  /// kPool keeps one resident team alive across ALL iterations of the solve,
  /// synchronizing the two phases with a reusable barrier; kSpawn is the
  /// legacy spawn-and-join-per-phase baseline, kept for the benches.
  parallel::Execution execution = parallel::Execution::kPool;

  void validate() const;
};

/// Statistics of a row-parallel solve.
struct RowParallelStats {
  int barriers = 0;          ///< synchronization points executed
  std::size_t strips = 0;    ///< work units per phase
};

/// Solves one component with the barrier-per-iteration schedule.  The result
/// is bit-exact equal to the sequential reference solver.
[[nodiscard]] ChambolleResult solve_row_parallel(
    const Matrix<float>& v, const ChambolleParams& params,
    const RowParallelOptions& options, RowParallelStats* stats = nullptr);

}  // namespace chambolle
