#include "chambolle/tile.hpp"

#include <algorithm>
#include <stdexcept>

namespace chambolle {
namespace {

/// Cuts one axis of length `frame` into buffer segments of at most `tile`
/// cells with `halo`-cell margins on interior edges; returns (buf0, buf_len,
/// prof0, prof_len) tuples whose profitable segments partition [0, frame).
struct AxisCut {
  int buf0, buf_len, prof0, prof_len;
};

std::vector<AxisCut> cut_axis(int frame, int tile, int halo) {
  std::vector<AxisCut> cuts;
  int prof_start = 0;  // next uncovered frame cell
  while (prof_start < frame) {
    AxisCut cut{};
    // The buffer begins `halo` cells before the profitable area, except at
    // the frame border where no margin is needed.
    cut.buf0 = prof_start == 0 ? 0 : prof_start - halo;
    const int buf_end = std::min(cut.buf0 + tile, frame);
    cut.buf_len = buf_end - cut.buf0;
    cut.prof0 = prof_start;
    // The profitable area ends `halo` cells before the buffer end, except
    // when the buffer reaches the frame border.
    const int prof_end = buf_end == frame ? frame : buf_end - halo;
    if (prof_end <= prof_start)
      throw std::invalid_argument("make_tiling: tile too small for halo");
    cut.prof_len = prof_end - cut.prof0;
    cuts.push_back(cut);
    prof_start = prof_end;
  }
  return cuts;
}

}  // namespace

std::size_t TilingPlan::total_buffer_elements() const {
  std::size_t s = 0;
  for (const TileSpec& t : tiles) s += t.buffer_elements();
  return s;
}

std::size_t TilingPlan::total_profitable_elements() const {
  std::size_t s = 0;
  for (const TileSpec& t : tiles) s += t.profitable_elements();
  return s;
}

double TilingPlan::redundancy() const {
  const double frame =
      static_cast<double>(frame_rows) * static_cast<double>(frame_cols);
  if (frame == 0.0) return 0.0;
  return static_cast<double>(total_buffer_elements()) / frame - 1.0;
}

std::vector<HaloEdge> make_halo_edges(const TilingPlan& plan) {
  std::vector<HaloEdge> edges;
  const int n = static_cast<int>(plan.tiles.size());
  for (int i = 0; i < n; ++i) {
    const TileSpec& s = plan.tiles[i];
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      const TileSpec& d = plan.tiles[j];
      // Overlap of src's profitable rectangle with dst's buffer rectangle.
      const int r0 = std::max(s.prof_row0, d.buf_row0);
      const int r1 = std::min(s.prof_row0 + s.prof_rows, d.buf_row0 + d.buf_rows);
      const int c0 = std::max(s.prof_col0, d.buf_col0);
      const int c1 = std::min(s.prof_col0 + s.prof_cols, d.buf_col0 + d.buf_cols);
      if (r1 <= r0 || c1 <= c0) continue;
      edges.push_back(HaloEdge{i, j, r0, c0, r1 - r0, c1 - c0});
    }
  }
  return edges;
}

std::size_t halo_exchange_elements(const std::vector<HaloEdge>& edges) {
  std::size_t s = 0;
  for (const HaloEdge& e : edges) s += 2 * e.elements();  // px and py
  return s;
}

TilingPlan make_tiling(int frame_rows, int frame_cols, int tile_rows,
                       int tile_cols, int halo) {
  if (frame_rows <= 0 || frame_cols <= 0)
    throw std::invalid_argument("make_tiling: empty frame");
  if (halo < 0) throw std::invalid_argument("make_tiling: negative halo");
  if (tile_rows <= 2 * halo || tile_cols <= 2 * halo)
    throw std::invalid_argument("make_tiling: tile must exceed 2*halo");

  TilingPlan plan;
  plan.frame_rows = frame_rows;
  plan.frame_cols = frame_cols;
  plan.halo = halo;

  const std::vector<AxisCut> row_cuts = cut_axis(frame_rows, tile_rows, halo);
  const std::vector<AxisCut> col_cuts = cut_axis(frame_cols, tile_cols, halo);
  for (const AxisCut& rc : row_cuts)
    for (const AxisCut& cc : col_cuts) {
      TileSpec t;
      t.buf_row0 = rc.buf0;
      t.buf_rows = rc.buf_len;
      t.prof_row0 = rc.prof0;
      t.prof_rows = rc.prof_len;
      t.buf_col0 = cc.buf0;
      t.buf_cols = cc.buf_len;
      t.prof_col0 = cc.prof0;
      t.prof_cols = cc.prof_len;
      plan.tiles.push_back(t);
    }
  return plan;
}

}  // namespace chambolle
