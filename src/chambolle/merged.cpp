#include "chambolle/merged.hpp"

#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "chambolle/dependency.hpp"
#include "kernels/scalar_ops.hpp"

namespace chambolle {
namespace {

using Coord = std::pair<int, int>;  // (row, col), absolute frame coordinates

struct PVal {
  float px = 0.f;
  float py = 0.f;
};

// Expands a layer by the dependency stencil, clipped to the frame.
std::map<Coord, PVal> expand_layer(const std::map<Coord, PVal>& layer,
                                   int frame_rows, int frame_cols) {
  std::map<Coord, PVal> out;
  for (const auto& [coord, unused] : layer) {
    (void)unused;
    for (const Offset& s : dependency_stencil()) {
      const int r = coord.first + s.dr;
      const int c = coord.second + s.dc;
      if (r >= 0 && r < frame_rows && c >= 0 && c < frame_cols)
        out.emplace(Coord{r, c}, PVal{});
    }
  }
  return out;
}

// div p at an absolute coordinate, reading neighbors from the layer map and
// delegating the arithmetic (and its border-precedence rules) to the shared
// kernels::div_p.  Every in-frame neighbor is guaranteed present by the
// cone construction; out-of-frame neighbors are passed as 0 and masked off
// by the border flags.
float div_p_at(const std::map<Coord, PVal>& layer, int r, int c,
               int frame_rows, int frame_cols) {
  const auto get = [&](int rr, int cc) -> const PVal& {
    const auto it = layer.find({rr, cc});
    if (it == layer.end())
      throw std::logic_error("merged_update: cone is missing a dependency");
    return it->second;
  };
  const PVal& center = get(r, c);
  const float px_left = c > 0 ? get(r, c - 1).px : 0.f;
  const float py_up = r > 0 ? get(r - 1, c).py : 0.f;
  return kernels::div_p(center.px, px_left, center.py, py_up,
                        /*at_left=*/c == 0, /*at_right=*/c == frame_cols - 1,
                        /*at_top=*/r == 0, /*at_bottom=*/r == frame_rows - 1);
}

}  // namespace

MergedResult merged_update(const Matrix<float>& px, const Matrix<float>& py,
                           const Matrix<float>& v, int row0, int col0,
                           int group_rows, int group_cols, int depth,
                           const ChambolleParams& params) {
  params.validate();
  if (!px.same_shape(py) || !px.same_shape(v))
    throw std::invalid_argument("merged_update: field shape mismatch");
  if (depth < 0) throw std::invalid_argument("merged_update: depth < 0");
  if (group_rows <= 0 || group_cols <= 0 || row0 < 0 || col0 < 0 ||
      row0 + group_rows > v.rows() || col0 + group_cols > v.cols())
    throw std::invalid_argument("merged_update: group outside frame");

  const int R = v.rows(), C = v.cols();
  const float inv_theta = 1.f / params.theta;
  const float step = params.step();

  // Layer sets: layers[0] is the target group, layers[j] the iteration-(n +
  // depth - j) elements it transitively needs; layers[depth] is read from
  // the iteration-n input.
  std::vector<std::map<Coord, PVal>> layers(
      static_cast<std::size_t>(depth) + 1);
  for (int r = 0; r < group_rows; ++r)
    for (int c = 0; c < group_cols; ++c)
      layers[0].emplace(Coord{row0 + r, col0 + c}, PVal{});
  for (int j = 0; j < depth; ++j)
    layers[static_cast<std::size_t>(j) + 1] =
        expand_layer(layers[static_cast<std::size_t>(j)], R, C);

  MergedResult result;
  result.stats.cone_reads = layers[static_cast<std::size_t>(depth)].size();

  // Seed the deepest layer from the iteration-n state.
  for (auto& [coord, val] : layers[static_cast<std::size_t>(depth)]) {
    val.px = px(coord.first, coord.second);
    val.py = py(coord.first, coord.second);
  }

  // Walk the cone inward: layer j is computed from layer j+1 with exactly the
  // reference solver's arithmetic (Term cache avoids recomputing shared
  // Terms, mirroring the PE arrays' operand forwarding).
  for (int j = depth - 1; j >= 0; --j) {
    const std::map<Coord, PVal>& deeper =
        layers[static_cast<std::size_t>(j) + 1];
    std::map<Coord, float> term_cache;
    const auto term_at = [&](int r, int c) {
      const auto it = term_cache.find({r, c});
      if (it != term_cache.end()) return it->second;
      const float t = div_p_at(deeper, r, c, R, C) - v(r, c) * inv_theta;
      term_cache.emplace(Coord{r, c}, t);
      ++result.stats.term_evals;
      return t;
    };
    for (auto& [coord, val] : layers[static_cast<std::size_t>(j)]) {
      const int r = coord.first, c = coord.second;
      const float t = term_at(r, c);
      // Terms are materialized lazily: only evaluate the neighbor Terms the
      // forward differences actually consume (the frame-border ones would
      // throw on their missing cone dependencies).
      const bool zero_t1 = c == C - 1;
      const bool zero_t2 = r == R - 1;
      const float t_right = zero_t1 ? 0.f : term_at(r, c + 1);
      const float t_down = zero_t2 ? 0.f : term_at(r + 1, c);
      const PVal& prev = deeper.at(coord);
      const kernels::DualUpdate upd = kernels::dual_update(
          prev.px, prev.py, t, t_right, t_down, zero_t1, zero_t2, step);
      val.px = upd.px;
      val.py = upd.py;
      ++result.stats.p_updates;
    }
  }

  result.px.resize(group_rows, group_cols);
  result.py.resize(group_rows, group_cols);
  if (depth == 0) {
    for (auto& [coord, val] : layers[0]) {
      val.px = px(coord.first, coord.second);
      val.py = py(coord.first, coord.second);
    }
    result.stats.cone_reads = layers[0].size();
  }
  for (const auto& [coord, val] : layers[0]) {
    result.px(coord.first - row0, coord.second - col0) = val.px;
    result.py(coord.first - row0, coord.second - col0) = val.py;
  }
  return result;
}

}  // namespace chambolle
