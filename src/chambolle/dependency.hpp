// dependency.hpp — the data-dependency analysis of Section III / Figure 1.
//
// One Chambolle iteration updates p(i,j) from seven iteration-n elements:
// expanding Algorithm 1, Term at (i,j), (i,j+1) and (i+1,j) must be formed,
// and each Term(a,b) reads p at (a,b), (a,b-1) and (a-1,b).  The union is the
// 7-point stencil of Figure 1.a.  Computing a GROUP of elements amortizes the
// cone: the paper reports 14 iteration-n elements for a 2x2 group (3.5 per
// element) and observes that square-ish groups minimize the overhead.  This
// module computes those cones exactly, for any group shape and merge depth,
// and derives the profitable-region margin used by the tiled solvers.
#pragma once

#include <set>
#include <vector>

#include "common/matrix.hpp"

namespace chambolle {

/// Grid offset (row, col) relative to the element being computed.
struct Offset {
  int dr = 0;
  int dc = 0;
  friend auto operator<=>(const Offset&, const Offset&) = default;
};

/// The 7 iteration-n elements one iteration-(n+1) element depends on
/// (Figure 1.a).
[[nodiscard]] const std::vector<Offset>& dependency_stencil();

/// Iteration-n elements required to compute the given group of elements at
/// iteration n + depth (repeated stencil expansion; Figure 1.b/1.c).
[[nodiscard]] std::set<Offset> dependency_cone(const std::set<Offset>& group,
                                               int depth);

/// Overhead statistics for computing a gh x gw block of elements `depth`
/// iterations ahead.
struct DecompositionOverhead {
  int group_rows = 0;
  int group_cols = 0;
  int depth = 0;
  int group_elements = 0;   ///< gh * gw
  int cone_elements = 0;    ///< |dependency cone|
  double per_element = 0.;  ///< cone / group — 7.0 for 1x1 depth 1, 3.5 for 2x2
};

[[nodiscard]] DecompositionOverhead decomposition_overhead(int group_rows,
                                                           int group_cols,
                                                           int depth);

/// Profitable margin: elements within `merged_iterations` cells of a tile
/// edge that is NOT a frame border are non-profitable after locally merging
/// that many iterations (the cone of radius `merged_iterations` leaves the
/// tile).  Frame borders cost no margin — "the algorithm inherently treats
/// them as special cases" (Section III-A).
[[nodiscard]] int profitable_margin(int merged_iterations);

/// Empirical stencil discovery: runs one float iteration on a small grid with
/// and without a perturbation of p at the center and returns the offsets of
/// the p-elements whose next-iteration value changed.  Used by tests to prove
/// the analytical stencil matches the executable algorithm.
[[nodiscard]] std::set<Offset> empirical_dependents(int grid = 11);

}  // namespace chambolle
