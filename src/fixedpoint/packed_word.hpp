// packed_word.hpp — the 32-bit BRAM word layout of Section V-B.
//
// "The 32 bits encode v, which requires 13 bits, followed by c_px and c_py,
//  which require 9 bits each."
//
// Layout (bit 31 .. bit 0):   [ v : 13 ][ px : 9 ][ py : 9 ][ pad : 1 ]
// All three fields are signed two's-complement; v is Q5.8, px/py are Q1.8.
#pragma once

#include <cstdint>

#include "fixedpoint/qformat.hpp"

namespace chambolle::fx {

inline constexpr int kVBits = 13;
inline constexpr int kPBits = 9;

/// Unpacked contents of one BRAM word, as raw Q*.8 integers.
struct BramFields {
  std::int32_t v = 0;   ///< Q5.8, 13 significant bits
  std::int32_t px = 0;  ///< Q1.8, 9 significant bits
  std::int32_t py = 0;  ///< Q1.8, 9 significant bits

  friend bool operator==(const BramFields&, const BramFields&) = default;
};

/// Packs (v, px, py) into a 32-bit word, saturating each field to its width.
[[nodiscard]] constexpr std::uint32_t pack_word(const BramFields& f) {
  const std::uint32_t v = static_cast<std::uint32_t>(
                              saturate_bits(f.v, kVBits)) &
                          ((1u << kVBits) - 1);
  const std::uint32_t px = static_cast<std::uint32_t>(
                               saturate_bits(f.px, kPBits)) &
                           ((1u << kPBits) - 1);
  const std::uint32_t py = static_cast<std::uint32_t>(
                               saturate_bits(f.py, kPBits)) &
                           ((1u << kPBits) - 1);
  return (v << 19) | (px << 10) | (py << 1);
}

/// Sign-extends the low `bits` of `v`.
[[nodiscard]] constexpr std::int32_t sign_extend(std::uint32_t v, int bits) {
  const std::uint32_t mask = (1u << bits) - 1;
  const std::uint32_t sign = 1u << (bits - 1);
  const std::uint32_t low = v & mask;
  return static_cast<std::int32_t>((low ^ sign)) - static_cast<std::int32_t>(sign);
}

/// Inverse of pack_word.
[[nodiscard]] constexpr BramFields unpack_word(std::uint32_t w) {
  BramFields f;
  f.v = sign_extend(w >> 19, kVBits);
  f.px = sign_extend(w >> 10, kPBits);
  f.py = sign_extend(w >> 1, kPBits);
  return f;
}

/// Bulk SoA unpack: n packed words into separate v/px/py runs.  The SIMD
/// fixed-point kernel eats structure-of-arrays rows, so the word <-> SoA
/// boundary crossings (BRAM rows, tile staging) go through these helpers
/// instead of per-element BramFields round trips.
inline void unpack_words(const std::uint32_t* words, int n, std::int32_t* v,
                         std::int32_t* px, std::int32_t* py) {
  for (int i = 0; i < n; ++i) {
    const std::uint32_t w = words[i];
    v[i] = sign_extend(w >> 19, kVBits);
    px[i] = sign_extend(w >> 10, kPBits);
    py[i] = sign_extend(w >> 1, kPBits);
  }
}

/// Bulk SoA pack: inverse of unpack_words (each field saturated to its
/// BRAM width, like pack_word).
inline void pack_words(const std::int32_t* v, const std::int32_t* px,
                       const std::int32_t* py, int n, std::uint32_t* words) {
  for (int i = 0; i < n; ++i)
    words[i] = pack_word(BramFields{v[i], px[i], py[i]});
}

}  // namespace chambolle::fx
