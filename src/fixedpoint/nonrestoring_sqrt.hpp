// nonrestoring_sqrt.hpp — iterative fixed-point square root.
//
// Section V-C contrasts two hardware sqrt families: iterative techniques
// ("better precision") and look-up tables ("faster"); the paper picks the LUT.
// We implement the iterative alternative too — the classic non-restoring
// algorithm of Sajid et al. [17] — both as the high-precision baseline the
// ablation benches compare against and as a correct integer sqrt in its own
// right.
#pragma once

#include <cstdint>

namespace chambolle::fx {

/// floor(sqrt(v)) for a 64-bit unsigned integer, non-restoring iteration.
[[nodiscard]] std::uint32_t isqrt_u64(std::uint64_t v);

/// sqrt of a non-negative Q24.8 value, returned in Q24.8, exact to the format
/// (floor of the true root): computed as isqrt(raw << 8).
[[nodiscard]] std::int32_t nonrestoring_sqrt_q(std::int32_t raw);

}  // namespace chambolle::fx
