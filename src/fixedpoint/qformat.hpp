// qformat.hpp — fixed-point primitives for the hardware datapath.
//
// Section V-B of the paper fixes the storage formats: each 32-bit BRAM word
// packs v (13 bits), px (9 bits) and py (9 bits).  The datapath operates on
// 32-bit fixed-point values with 24 integer and 8 fractional bits (the format
// quoted for the square-root input in Section V-C).  This header provides the
// raw-integer Q-arithmetic all fixed-point code shares, so the software
// fixed-point solver and the cycle-level PE models are bit-identical by
// construction.
#pragma once

#include <cstdint>
#include <limits>

namespace chambolle::fx {

/// Fractional bits of the datapath format (Q24.8, Section V-C).
inline constexpr int kFracBits = 8;
/// Raw representation of 1.0 in Q24.8.
inline constexpr std::int32_t kOne = 1 << kFracBits;

/// Signed saturation to `bits` total bits (two's complement).
[[nodiscard]] constexpr std::int32_t saturate_bits(std::int64_t v, int bits) {
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  if (v > hi) return static_cast<std::int32_t>(hi);
  if (v < lo) return static_cast<std::int32_t>(lo);
  return static_cast<std::int32_t>(v);
}

/// float -> Q24.8 raw with round-to-nearest (ties away from zero).
[[nodiscard]] constexpr std::int32_t to_fixed(double v) {
  const double scaled = v * kOne;
  const double rounded = scaled >= 0 ? scaled + 0.5 : scaled - 0.5;
  // Saturate instead of invoking UB on overflow.
  if (rounded >= static_cast<double>(std::numeric_limits<std::int32_t>::max()))
    return std::numeric_limits<std::int32_t>::max();
  if (rounded <= static_cast<double>(std::numeric_limits<std::int32_t>::min()))
    return std::numeric_limits<std::int32_t>::min();
  return static_cast<std::int32_t>(rounded);
}

/// Q24.8 raw -> float.
[[nodiscard]] constexpr float to_float(std::int32_t raw) {
  return static_cast<float>(raw) / static_cast<float>(kOne);
}

/// Fixed-point multiply: (a * b) >> 8, truncating toward negative infinity
/// (an arithmetic right shift, as a hardware multiplier-plus-wire would).
[[nodiscard]] constexpr std::int32_t mul(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(
      (static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b)) >>
      kFracBits);
}

/// Fixed-point divide: (a << 8) / b with C++ truncation-toward-zero.
/// b must be non-zero; the Chambolle denominator 1 + (tau/theta)|grad| is
/// always >= 1 in Q24.8 so the solvers never divide by zero.
[[nodiscard]] constexpr std::int32_t div(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(
      (static_cast<std::int64_t>(a) << kFracBits) / b);
}

/// Number of bits needed to represent `v` (position of the MSB + 1; 0 for 0).
[[nodiscard]] constexpr int bit_width_u32(std::uint32_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

}  // namespace chambolle::fx
