#include "fixedpoint/nonrestoring_sqrt.hpp"

#include <stdexcept>

#include "fixedpoint/qformat.hpp"

namespace chambolle::fx {

std::uint32_t isqrt_u64(std::uint64_t v) {
  // Digit-by-digit (non-restoring) method: one result bit per iteration,
  // exactly the structure a pipelined FPGA implementation unrolls.
  std::uint64_t root = 0;
  std::uint64_t bit = std::uint64_t{1} << 62;
  while (bit > v) bit >>= 2;
  while (bit != 0) {
    if (v >= root + bit) {
      v -= root + bit;
      root = (root >> 1) + bit;
    } else {
      root >>= 1;
    }
    bit >>= 2;
  }
  return static_cast<std::uint32_t>(root);
}

std::int32_t nonrestoring_sqrt_q(std::int32_t raw) {
  if (raw < 0) throw std::domain_error("nonrestoring_sqrt_q: negative input");
  // sqrt(raw / 2^8) * 2^8 = sqrt(raw * 2^8): shift by kFracBits first so the
  // result lands back in Q24.8.
  return static_cast<std::int32_t>(
      isqrt_u64(static_cast<std::uint64_t>(raw) << kFracBits));
}

}  // namespace chambolle::fx
