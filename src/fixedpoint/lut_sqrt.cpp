#include "fixedpoint/lut_sqrt.hpp"

#include <cmath>
#include <stdexcept>

#include "fixedpoint/qformat.hpp"

namespace chambolle::fx {

const std::array<std::uint8_t, 256>& sqrt_table() {
  static const std::array<std::uint8_t, 256> table = [] {
    std::array<std::uint8_t, 256> t{};
    for (int m = 0; m < 256; ++m)
      t[static_cast<std::size_t>(m)] =
          static_cast<std::uint8_t>(std::lround(std::sqrt(double(m)) * 16.0));
    return t;
  }();
  return table;
}

SqrtWindow select_sqrt_window(std::uint32_t raw) {
  SqrtWindow w;
  if (raw < 256) {  // the whole value fits the window; no shift needed
    w.m = raw;
    w.k = 0;
    return w;
  }
  const int msb = bit_width_u32(raw) - 1;  // position of first non-zero bit
  int lo = msb - 7;                        // lowest bit covered by the window
  // The window must end on an even position so the discarded tail is a clean
  // factor of 2^(2k); if it does not, widen upward (leading zero in the
  // window), exactly the paper's odd/even alignment rule.
  if (lo % 2 != 0) ++lo;
  w.m = (raw >> lo) & 0xFFu;
  w.k = lo / 2;
  return w;
}

std::int32_t lut_sqrt(std::int32_t raw) {
  if (raw < 0) throw std::domain_error("lut_sqrt: negative input");
  const SqrtWindow w = select_sqrt_window(static_cast<std::uint32_t>(raw));
  const std::uint32_t entry = sqrt_table()[w.m];
  // entry ~ sqrt(m) * 2^4; result raw = sqrt(m) * 2^(k+4) = entry << k.
  return static_cast<std::int32_t>(entry << w.k);
}

std::int32_t exact_sqrt_q(std::int32_t raw) {
  if (raw < 0) throw std::domain_error("exact_sqrt_q: negative input");
  const double real = static_cast<double>(raw) / kOne;
  return static_cast<std::int32_t>(std::lround(std::sqrt(real) * kOne));
}

}  // namespace chambolle::fx
