// fixed.hpp — typed fixed-point value with compile-time format.
//
// A light wrapper over the raw Q-arithmetic in qformat.hpp for code that
// benefits from type safety (tests, examples).  The hardware datapath itself
// operates on raw std::int32_t via chambolle::fx to mirror Verilog semantics.
#pragma once

#include <compare>
#include <cstdint>

#include "fixedpoint/qformat.hpp"

namespace chambolle::fx {

/// Fixed-point number with `IntBits` integer bits (including sign) and
/// `FracBits` fractional bits, stored in 32 bits.  Arithmetic saturates to the
/// declared width, mirroring the hardware registers.
template <int IntBits, int FracBits>
class Fixed {
  static_assert(IntBits >= 1 && FracBits >= 0 && IntBits + FracBits <= 32);

 public:
  static constexpr int kTotalBits = IntBits + FracBits;

  constexpr Fixed() = default;

  /// Constructs from a real value (rounded, saturated to the format).
  static constexpr Fixed from_real(double v) {
    const double scaled = v * (std::int64_t{1} << FracBits);
    const double rounded = scaled >= 0 ? scaled + 0.5 : scaled - 0.5;
    return from_raw_saturated(static_cast<std::int64_t>(rounded));
  }

  /// Constructs from an already-scaled raw integer (saturated).
  static constexpr Fixed from_raw_saturated(std::int64_t raw) {
    Fixed f;
    f.raw_ = saturate_bits(raw, kTotalBits);
    return f;
  }

  [[nodiscard]] constexpr std::int32_t raw() const { return raw_; }
  [[nodiscard]] constexpr double to_real() const {
    return static_cast<double>(raw_) / (std::int64_t{1} << FracBits);
  }

  friend constexpr Fixed operator+(Fixed a, Fixed b) {
    return from_raw_saturated(std::int64_t{a.raw_} + b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) {
    return from_raw_saturated(std::int64_t{a.raw_} - b.raw_);
  }
  friend constexpr Fixed operator*(Fixed a, Fixed b) {
    return from_raw_saturated(
        (static_cast<std::int64_t>(a.raw_) * b.raw_) >> FracBits);
  }
  friend constexpr Fixed operator-(Fixed a) {
    return from_raw_saturated(-std::int64_t{a.raw_});
  }

  friend constexpr auto operator<=>(Fixed a, Fixed b) = default;

 private:
  std::int32_t raw_ = 0;
};

/// The dual-variable storage format: 9 bits total (Section V-B), Q1.8, i.e.
/// range [-1, 255/256] — sufficient because Chambolle keeps |p| <= 1.
using DualFx = Fixed<1, 8>;

/// The v storage format: 13 bits (Section V-B), Q5.8, range [-16, 16).
using VFx = Fixed<5, 8>;

}  // namespace chambolle::fx
