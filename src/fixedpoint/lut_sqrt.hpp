// lut_sqrt.hpp — the paper's look-up-table square root (Section V-C).
//
// The PE-V needs sqrt(Term1^2 + Term2^2) (Algorithm 1, line 6).  The paper
// uses one 256-entry table instead of four chained tables:
//
//   "we take the 8 most significant bits of the input value ... The 8-bit
//    block we use starts in an odd position and finishes in an even one: if
//    the first non-zero bit is located in the n-th position, where n is even,
//    then the 8 bit block will start from the zero bit at position n-1.  In
//    this way, if the decimal value of the 8 bit block is equal to m, and if
//    the rightmost bit of the block is in position 2k, then the number is
//    equal to m * 2^2k, and its square root can be computed by accessing the
//    table with value m, and by left-shifting the output by k positions."
//
// Input format: Q24.8 (24 integer + 8 fractional bits).  With x = m * 2^(2k)
// in raw units, sqrt(x_real) in raw units is sqrt(m) * 2^(k+4); the table
// therefore stores round(sqrt(m) * 16), whose maximum round(sqrt(255)*16)=255
// exactly fits the 8-bit entries quoted in the paper.
#pragma once

#include <array>
#include <cstdint>

namespace chambolle::fx {

/// The 256-entry, 8-bit-per-entry square-root table (70 LUTs on the FPGA).
[[nodiscard]] const std::array<std::uint8_t, 256>& sqrt_table();

/// Decomposition of a raw input into (m, k) with x ~= m * 2^(2k); exposed for
/// the unit tests of the odd-alignment rule.
struct SqrtWindow {
  std::uint32_t m = 0;  ///< 8-bit table index
  int k = 0;            ///< half the window offset (result left-shift)
};

/// Selects the even-aligned 8-bit window of the paper.  x must be >= 0 raw.
[[nodiscard]] SqrtWindow select_sqrt_window(std::uint32_t raw);

/// sqrt of a non-negative Q24.8 value, returned in Q24.8, via the LUT scheme.
[[nodiscard]] std::int32_t lut_sqrt(std::int32_t raw);

/// Reference: double-precision sqrt of a Q24.8 value, rounded back to Q24.8.
[[nodiscard]] std::int32_t exact_sqrt_q(std::int32_t raw);

}  // namespace chambolle::fx
