// concurrent_oracle.hpp — the concurrent-sessions differential oracle.
//
// run_oracle() (oracle.hpp) checks that every ENGINE agrees on one solve.
// This module checks the orthogonal claim the serving layer makes: that
// CONCURRENCY is unobservable.  N sessions streamed through one
// FlowService — interleaved submissions, shared engine fleet, per-slot
// pools, batching — must each produce the BIT-IDENTICAL reply stream that
// a serial fresh-engine replay of that session alone produces, and the
// same bits again at every fleet lane count.
//
// The serial ground truth for a session is the warm-start chain spelled
// out by the engine contract: frame k solves on a FRESH engine whose
// duals are initialized from frame k-1's snapshot.  The service instead
// REUSES pooled engines (reset_v + reset_duals / dual reload) that other
// sessions' solves ran on in between — so an oracle failure localizes to
// either stale engine state leaking across sessions (the engine-reuse bug
// class this PR burns down) or a scheduling/pool dependence of the fixed
// solve.  Every seeded failure reproduces from (seed, options) alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace chambolle::oracle {

struct ConcurrentOracleOptions {
  /// Concurrent streams; drawn shapes differ across sessions (exercising
  /// the per-resolution engine cache) and stay fixed within one.
  int sessions = 3;
  /// Chambolle solves per stream (the warm-start chain length).
  int frames_per_session = 3;
  /// Fleet slots; keep < sessions so sessions contend for engines.
  int slots = 2;
  /// The fleet lane counts the interleaved run must reproduce the serial
  /// bits at.  >= 2 entries keeps the schedule-independence claim honest.
  std::vector<int> lane_counts = {1, 3};
  /// Same-resolution burst size per slot checkout.
  int max_batch = 2;
};

struct ConcurrentOracleReport {
  std::uint64_t seed = 0;
  std::string case_line;
  int lane_counts_checked = 0;
  std::uint64_t replies_checked = 0;
  bool pass = false;
  std::string detail;  ///< first mismatch, set on failure

  /// Compact reproducer (case line + mismatch); empty when pass.
  [[nodiscard]] std::string failure_report() const;
};

/// Expands `seed` into per-session frame streams (shared solver parameters
/// drawn through make_case), replays each stream serially on fresh
/// engines, then runs all streams interleaved through one FlowService per
/// lane count and memcmps every reply against the serial truth.
[[nodiscard]] ConcurrentOracleReport run_concurrent_oracle(
    std::uint64_t seed, const ConcurrentOracleOptions& options = {});

}  // namespace chambolle::oracle
