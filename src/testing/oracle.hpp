// oracle.hpp — the cross-engine differential-testing oracle.
//
// The repository has five ways to run one Chambolle iteration stream —
// sequential reference, row-parallel, reload-tiled, resident-tiled, and the
// per-backend SIMD kernels — plus the quantized fixed-point solver and the
// cycle-level accelerator simulator.  The first five claim BIT-EXACT
// equality; the quantized pair claims a format-bounded tolerance against
// the float reference and bit-exactness against each other.  run_oracle()
// executes one OracleCase through every engine that applies and enforces
// exactly that comparison policy, producing a report whose failure_report()
// is a compact, copy-pasteable reproducer (seed + geometry + rerun line).
//
// This is the correctness backstop future engines plug into: add a lambda
// to the engine table in oracle.cpp and every seeded sweep, sanitizer job
// and fuzz run covers it.
#pragma once

#include <string>
#include <vector>

#include "testing/generators.hpp"

namespace chambolle::oracle {

/// Selects which engine families a run covers.  The sanitizer smoke runs
/// keep everything on; single-purpose callers can narrow.
struct OracleOptions {
  bool include_parallel = true;     ///< row-parallel / tiled / resident
  bool include_backends = true;     ///< one reference solve per SIMD backend
  bool include_fixedpoint = true;   ///< fixed-point solver + accelerator
  bool include_adaptive = true;     ///< adaptive resident (quality policy)
  bool include_multilevel = true;   ///< multilevel resident (quality policy)
};

/// Outcome of one engine on one case.
struct EngineOutcome {
  std::string engine;
  bool exact_required = true;  ///< memcmp policy; false => tolerance policy
  bool pass = false;
  double max_diff_u = 0.0;
  double max_diff_px = 0.0;
  double max_diff_py = 0.0;
  std::string detail;  ///< what differed, set on failure
};

/// Aggregate result of one case across all engines.
struct OracleReport {
  std::uint64_t seed = 0;
  std::string case_line;  ///< OracleCase::describe() of the case
  std::vector<EngineOutcome> engines;

  [[nodiscard]] bool pass() const;
  /// Multi-line failure reproducer: the case line, one line per failing
  /// engine, and the environment-variable rerun recipe.  Empty when pass().
  [[nodiscard]] std::string failure_report() const;
};

/// Max |difference| the quantized engines (Q*.8 fixed point, LUT sqrt) may
/// accumulate against the float reference over the generator's iteration
/// and input ranges; calibrated against the fixed-solver accuracy tests.
inline constexpr double kFixedPointTolerance = 0.25;

/// The adaptive resident solve is deliberately NOT bit-exact (retired tiles
/// stop refining while neighbors continue against their frozen halos), so
/// the oracle scores it under a QUALITY policy instead of memcmp: the
/// recovered primal must stay within kAdaptiveDuBound of the fixed-budget
/// reference, and its ROF energy must not exceed the reference's by more
/// than kAdaptiveEnergySlack (relative).  The settings below are what the
/// oracle's adaptive run uses; the bound scales with the tolerance (a tile
/// only retires once its per-iteration update is under tolerance, so its
/// remaining drift is a small multiple of it).
inline constexpr float kAdaptiveOracleTolerance = 1e-4f;
inline constexpr int kAdaptiveOraclePatience = 2;
inline constexpr double kAdaptiveDuBound = 100.0 * kAdaptiveOracleTolerance;
inline constexpr double kAdaptiveEnergySlack = 1e-3;

/// The multilevel resident solve is scored with the SAME quality constants
/// as the adaptive one, but against a CONVERGED reference: a coarse-grid
/// correction legitimately jumps AHEAD of the fixed-budget reference (that
/// is its purpose), so distance to the fixed-budget state is the wrong
/// yardstick.  The policy is: the multilevel primal must be no farther from
/// the converged solution than the fixed-budget reference is, plus
/// kAdaptiveDuBound of adaptive-retirement slack — and its ROF energy must
/// not regress against the fixed-budget reference (it should be at least as
/// converged, never less).  Firing cadence for the oracle budgets:
inline constexpr int kMultilevelOraclePeriod = 2;
/// Extra iterations of the converged-reference solve (on top of the case's
/// own budget); oracle frames are <= 64 px, so this stays cheap.
inline constexpr int kMultilevelRefExtraIterations = 400;

/// Runs every applicable engine on the case and compares against the
/// sequential reference.  Engines are executed one after another in the
/// calling thread (each may use its own worker team internally).
[[nodiscard]] OracleReport run_oracle(const OracleCase& c,
                                      const OracleOptions& options = {});

}  // namespace chambolle::oracle
