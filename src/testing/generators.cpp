#include "testing/generators.hpp"

#include <cstdio>
#include <random>

namespace chambolle::oracle {
namespace {

// Deterministic bounded draws built directly on the mt19937_64 output
// stream.  std::uniform_*_distribution is implementation-defined, which
// would make the same seed describe different cases on different standard
// libraries — unacceptable for a printed reproducer.
class Draw {
 public:
  explicit Draw(std::uint64_t seed) : eng_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int range(int lo, int hi) {
    if (hi <= lo) return lo;
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(eng_() % span);
  }

  /// Uniform float in [lo, hi) with 24 bits of resolution.
  float real(float lo, float hi) {
    const float unit =
        static_cast<float>(eng_() >> 40) * (1.f / 16777216.f);  // 2^-24
    return lo + (hi - lo) * unit;
  }

  /// True with probability num/den.
  bool chance(int num, int den) { return range(1, den) <= num; }

 private:
  std::mt19937_64 eng_;
};

Matrix<float> draw_image(Draw& d, int rows, int cols, float lo, float hi) {
  Matrix<float> m(rows, cols);
  for (float& v : m) v = d.real(lo, hi);
  return m;
}

// Random accelerator architecture, mirroring the distribution the absorbed
// hw_fuzz_test used: ladder depth from the supported set, evenly-striping
// tile rows, and a merge depth the tile can carry.
hw::ArchConfig draw_arch(Draw& d) {
  hw::ArchConfig cfg;
  const int lanes_choices[] = {3, 5, 7};
  cfg.pe_lanes = lanes_choices[d.range(0, 2)];
  cfg.num_brams = cfg.pe_lanes + 1;
  cfg.tile_rows = cfg.num_brams * d.range(4, 10);
  cfg.tile_cols = 8 * d.range(3, 10);
  cfg.num_sliding_windows = d.range(1, 3);
  const int max_merge = std::min(cfg.tile_rows, cfg.tile_cols) / 2 - 1;
  cfg.merge_iterations = d.range(1, std::min(max_merge, 6));
  cfg.model_tile_io = d.chance(1, 2);
  return cfg;
}

}  // namespace

OracleCase make_case(std::uint64_t seed, const CaseLimits& limits) {
  // Distinct multiplier from every other seeded sweep in the repo so case
  // streams never alias a solver test's.
  Draw d(seed * 0x9e3779b97f4a7c15ULL + 0x0c0ffee0ULL);
  OracleCase c;
  c.seed = seed;

  const int rows = d.range(limits.min_rows, limits.max_rows);
  const int cols = d.range(limits.min_cols, limits.max_cols);
  c.v = draw_image(d, rows, cols, limits.v_lo, limits.v_hi);
  c.v2 = draw_image(d, rows, cols, limits.v_lo, limits.v_hi);

  c.params.iterations = d.range(limits.min_iterations, limits.max_iterations);
  c.default_params = !limits.allow_param_variation || d.chance(1, 2);
  if (!c.default_params) {
    // Random point on or under the tau/theta <= 1/4 stability bound.
    c.params.theta = d.real(0.1f, 0.5f);
    c.params.tau = c.params.theta * d.real(0.05f, 0.25f);
  }

  c.tiled.merge_iterations = d.range(1, limits.max_merge);
  const int tile_lo = 2 * c.tiled.merge_iterations + 1;
  c.tiled.tile_rows = d.range(tile_lo, tile_lo + limits.tile_span - 1);
  c.tiled.tile_cols = d.range(tile_lo, tile_lo + limits.tile_span - 1);
  c.tiled.num_threads = d.range(1, limits.max_threads);
  c.rows_per_strip = d.range(1, 24);

  c.warm_start = limits.allow_warm_start && d.chance(1, 4);
  if (c.warm_start) {
    // Any finite dual state exercises the warm-start path; the projection
    // step contracts it back into the unit ball within one iteration.
    c.initial.px = draw_image(d, rows, cols, -0.7f, 0.7f);
    c.initial.py = draw_image(d, rows, cols, -0.7f, 0.7f);
  }

  c.arch = draw_arch(d);
  return c;
}

std::string OracleCase::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "seed=%llu frame=%dx%d iters=%d theta=%.9g tau=%.9g "
                "tile=%dx%d merge=%d threads=%d strip=%d warm=%d "
                "arch=%dL%dx%d",
                static_cast<unsigned long long>(seed), v.rows(), v.cols(),
                params.iterations, static_cast<double>(params.theta),
                static_cast<double>(params.tau), tiled.tile_rows,
                tiled.tile_cols, tiled.merge_iterations, tiled.num_threads,
                rows_per_strip, warm_start ? 1 : 0, arch.pe_lanes,
                arch.tile_rows, arch.tile_cols);
  return buf;
}

}  // namespace chambolle::oracle
