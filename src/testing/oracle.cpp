#include "testing/oracle.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "chambolle/energy.hpp"
#include "chambolle/fixed_solver.hpp"
#include "chambolle/resident_tiled.hpp"
#include "chambolle/row_parallel.hpp"
#include "chambolle/solver.hpp"
#include "chambolle/tiled_solver.hpp"
#include "hw/accelerator.hpp"
#include "kernels/kernel.hpp"
#include "kernels/kernel_fixed_simd.hpp"
#include "telemetry/flight_recorder.hpp"

namespace chambolle::oracle {
namespace {

// memcmp, not operator== — the bit-exactness claim must not be weakened by
// float comparison semantics (-0.0 == 0.0, NaN != NaN).
bool bits_equal(const Matrix<float>& a, const Matrix<float>& b) {
  if (!a.same_shape(b)) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

double diff_or_shape(const Matrix<float>& a, const Matrix<float>& b) {
  return a.same_shape(b) ? max_abs_diff(a, b)
                         : std::numeric_limits<double>::infinity();
}

// Scores `got` against `want` under the engine's comparison policy and
// appends the outcome to the report.
void compare(OracleReport& report, const std::string& engine,
             const ChambolleResult& want, const ChambolleResult& got,
             bool exact, double tolerance = 0.0) {
  EngineOutcome out;
  out.engine = engine;
  out.exact_required = exact;
  out.max_diff_u = diff_or_shape(want.u, got.u);
  out.max_diff_px = diff_or_shape(want.p.px, got.p.px);
  out.max_diff_py = diff_or_shape(want.p.py, got.p.py);
  if (exact) {
    out.pass = bits_equal(want.u, got.u) && bits_equal(want.p.px, got.p.px) &&
               bits_equal(want.p.py, got.p.py);
    if (!out.pass) out.detail = "bits differ from the sequential reference";
  } else {
    out.pass = out.max_diff_u <= tolerance && out.max_diff_px <= tolerance &&
               out.max_diff_py <= tolerance;
    if (!out.pass) out.detail = "exceeds the quantization tolerance";
  }
  report.engines.push_back(std::move(out));
}

// The adaptive quality policy: not a distance-to-reference tolerance on
// every field (dual drift on retired tiles is expected), but a bound on what
// the SOLUTION lost — max |du| against the fixed-budget reference plus an
// ROF-energy regression check.  Dual diffs are still recorded for the
// failure report.
void compare_quality(OracleReport& report, const std::string& engine,
                     const Matrix<float>& v, float theta,
                     const ChambolleResult& want, const ChambolleResult& got) {
  EngineOutcome out;
  out.engine = engine;
  out.exact_required = false;
  out.max_diff_u = diff_or_shape(want.u, got.u);
  out.max_diff_px = diff_or_shape(want.p.px, got.p.px);
  out.max_diff_py = diff_or_shape(want.p.py, got.p.py);
  const double e_want = rof_energy(want.u, v, theta);
  const double e_got = rof_energy(got.u, v, theta);
  const bool u_ok = out.max_diff_u <= kAdaptiveDuBound;
  const bool e_ok =
      e_got <= e_want + kAdaptiveEnergySlack * (std::abs(e_want) + 1.0);
  out.pass = u_ok && e_ok;
  if (!u_ok) out.detail = "primal deviates beyond the adaptive quality bound";
  if (!e_ok) {
    std::ostringstream os;
    os << (u_ok ? "" : "; ") << "ROF energy regressed (ref=" << e_want
       << " adaptive=" << e_got << ")";
    out.detail += os.str();
  }
  report.engines.push_back(std::move(out));
}

// The multilevel quality policy (see kMultilevel* in oracle.hpp): measured
// against the CONVERGED solution `star`, the multilevel primal may not be
// farther away than the fixed-budget reference plus the adaptive slack; and
// its energy may not regress against the fixed-budget reference.
void compare_multilevel(OracleReport& report, const std::string& engine,
                        const Matrix<float>& v, float theta,
                        const ChambolleResult& want,
                        const ChambolleResult& star,
                        const ChambolleResult& got) {
  EngineOutcome out;
  out.engine = engine;
  out.exact_required = false;
  out.max_diff_u = diff_or_shape(want.u, got.u);
  out.max_diff_px = diff_or_shape(want.p.px, got.p.px);
  out.max_diff_py = diff_or_shape(want.p.py, got.p.py);
  const double err_ref = diff_or_shape(star.u, want.u);
  const double err_got = diff_or_shape(star.u, got.u);
  const double e_want = rof_energy(want.u, v, theta);
  const double e_got = rof_energy(got.u, v, theta);
  const bool u_ok = err_got <= err_ref + kAdaptiveDuBound;
  const bool e_ok =
      e_got <= e_want + kAdaptiveEnergySlack * (std::abs(e_want) + 1.0);
  out.pass = u_ok && e_ok;
  if (!u_ok) {
    std::ostringstream os;
    os << "farther from the converged solution than the fixed budget "
          "(|u-u*|: multilevel="
       << err_got << " ref=" << err_ref << ")";
    out.detail = os.str();
  }
  if (!e_ok) {
    std::ostringstream os;
    os << (u_ok ? "" : "; ") << "ROF energy regressed (ref=" << e_want
       << " multilevel=" << e_got << ")";
    out.detail += os.str();
  }
  report.engines.push_back(std::move(out));
}

void record_failure(OracleReport& report, const std::string& engine,
                    const std::string& detail) {
  EngineOutcome out;
  out.engine = engine;
  out.pass = false;
  out.detail = detail;
  report.engines.push_back(std::move(out));
}

}  // namespace

bool OracleReport::pass() const {
  for (const EngineOutcome& e : engines)
    if (!e.pass) return false;
  return true;
}

std::string OracleReport::failure_report() const {
  if (pass()) return {};
  std::ostringstream os;
  os << "oracle: FAIL " << case_line << "\n";
  for (const EngineOutcome& e : engines) {
    if (e.pass) continue;
    os << "  engine " << e.engine << ": " << e.detail;
    if (e.max_diff_u > 0 || e.max_diff_px > 0 || e.max_diff_py > 0)
      os << " (max|du|=" << e.max_diff_u << " max|dpx|=" << e.max_diff_px
         << " max|dpy|=" << e.max_diff_py << ")";
    os << "\n";
  }
  os << "  repro: CHAMBOLLE_ORACLE_SEED=" << seed
     << " ./tests/chb_tests --gtest_filter='OracleRepro.*'"
     << " (see docs/testing.md)";
  return os.str();
}

OracleReport run_oracle(const OracleCase& c, const OracleOptions& options) {
  OracleReport report;
  report.seed = c.seed;
  report.case_line = c.describe();
  // Breadcrumb for the crash flight recorder: a postmortem dump names the
  // case that was in flight.
  telemetry::flight_mark("oracle.case", static_cast<double>(c.seed));

  const DualField* initial = c.warm_start ? &c.initial : nullptr;

  // The sequential reference under the ambient kernel backend is the truth
  // every other engine is scored against.
  const ChambolleResult ref = solve(c.v, c.params, initial);

  if (options.include_parallel) {
    // The row-parallel and reload-tiled engines have no warm-start entry
    // point; they participate on cold-start cases only.
    if (!c.warm_start) {
      try {
        RowParallelOptions rp;
        rp.num_threads = c.tiled.num_threads;
        rp.rows_per_strip = c.rows_per_strip;
        compare(report, "row_parallel", ref,
                solve_row_parallel(c.v, c.params, rp), /*exact=*/true);
      } catch (const std::exception& e) {
        record_failure(report, "row_parallel", std::string("threw: ") + e.what());
      }
      try {
        compare(report, "tiled", ref, solve_tiled(c.v, c.params, c.tiled),
                /*exact=*/true);
      } catch (const std::exception& e) {
        record_failure(report, "tiled", std::string("threw: ") + e.what());
      }
    }
    try {
      compare(report, "resident", ref,
              solve_resident(c.v, c.params, c.tiled, nullptr, initial),
              /*exact=*/true);
    } catch (const std::exception& e) {
      record_failure(report, "resident", std::string("threw: ") + e.what());
    }
  }

  if (options.include_adaptive) {
    // Per-tile early stopping never bit-matches the fixed budget; it is
    // scored by what the solution LOST (see kAdaptive* in oracle.hpp), and
    // its work must never exceed the fixed budget (max_passes defaults to
    // ceil(iterations / merge)).
    try {
      chambolle::ResidentAdaptiveOptions ao;
      ao.tolerance = kAdaptiveOracleTolerance;
      ao.patience = kAdaptiveOraclePatience;
      ao.max_passes = 0;  // solve_resident_adaptive defaults to fixed budget
      compare_quality(report, "resident_adaptive", c.v, c.params.theta, ref,
                      solve_resident_adaptive(c.v, c.params, c.tiled, ao,
                                              nullptr, nullptr, initial));
    } catch (const std::exception& e) {
      record_failure(report, "resident_adaptive",
                     std::string("threw: ") + e.what());
    }
  }

  if (options.include_multilevel) {
    // Tolerance-mode multilevel: coarse corrections make the result jump
    // AHEAD of the fixed-budget reference, so it is scored against a
    // converged solve (see compare_multilevel / kMultilevel* in oracle.hpp).
    try {
      ChambolleParams star_params = c.params;
      star_params.iterations += kMultilevelRefExtraIterations;
      const ChambolleResult star = solve(c.v, star_params, initial);
      chambolle::ResidentMultilevelOptions mo;
      mo.adaptive.tolerance = kAdaptiveOracleTolerance;
      mo.adaptive.patience = kAdaptiveOraclePatience;
      mo.adaptive.max_passes = 0;  // fixed-budget sentinel
      mo.multilevel.period = kMultilevelOraclePeriod;
      compare_multilevel(report, "resident_multilevel", c.v, c.params.theta,
                         ref, star,
                         solve_resident_multilevel(c.v, c.params, c.tiled, mo,
                                                   nullptr, nullptr, initial));
    } catch (const std::exception& e) {
      record_failure(report, "resident_multilevel",
                     std::string("threw: ") + e.what());
    }
    // The correction-disabled contract: with multilevel off and a tolerance
    // nothing can beat, the multilevel entry point must reproduce
    // solve_resident (and hence the sequential reference) bit for bit.
    try {
      chambolle::ResidentMultilevelOptions off;
      off.adaptive.tolerance = 1e-30f;  // nothing retires
      off.adaptive.patience = 1;
      off.adaptive.max_passes = 0;  // fixed-budget sentinel
      off.multilevel.period = 0;    // correction disabled
      compare(report, "resident_multilevel_off", ref,
              solve_resident_multilevel(c.v, c.params, c.tiled, off, nullptr,
                                        nullptr, initial),
              /*exact=*/true);
    } catch (const std::exception& e) {
      record_failure(report, "resident_multilevel_off",
                     std::string("threw: ") + e.what());
    }
  }

  if (options.include_backends) {
    // One reference solve per available SIMD backend; every backend must
    // reproduce the ambient backend's bits.  reset_backend() afterwards
    // re-resolves the ambient choice (environment override included).
    for (const kernels::Backend b : kernels::available_backends()) {
      const std::string name =
          std::string("kernel_") + kernels::backend_name(b);
      try {
        kernels::force_backend(b);
        compare(report, name, ref, solve(c.v, c.params, initial),
                /*exact=*/true);
      } catch (const std::exception& e) {
        record_failure(report, name, std::string("threw: ") + e.what());
      }
      kernels::reset_backend();
    }
  }

  if (options.include_fixedpoint && c.default_params && !c.warm_start) {
    // Quantized engines: tolerance against the float reference, and the
    // accelerator bit-exact against the fixed-point software model (the
    // absorbed hw_fuzz_test claim), cycle-exact against the analytic model.
    ChambolleResult fixed1;
    bool have_fixed = false;
    try {
      fixed1 = solve_fixed(c.v, c.params);
      have_fixed = true;
      compare(report, "fixed", ref, fixed1, /*exact=*/false,
              kFixedPointTolerance);
    } catch (const std::exception& e) {
      record_failure(report, "fixed", std::string("threw: ") + e.what());
    }
    if (have_fixed && kernels::fixed::backend_available(
                          kernels::fixed::Backend::kSimd)) {
      // The vectorized fixed-point kernel must reproduce the scalar fixed
      // path bit for bit.  All fixed fields are small Q*.8 rationals, so the
      // dequantized floats are injective images of the raw words and
      // bits_equal is a faithful bit-equality check.
      try {
        kernels::fixed::force_backend(kernels::fixed::Backend::kScalar);
        const ChambolleResult fixed_scalar = solve_fixed(c.v, c.params);
        kernels::fixed::force_backend(kernels::fixed::Backend::kSimd);
        compare(report, "fixed_simd", fixed_scalar, solve_fixed(c.v, c.params),
                /*exact=*/true);
      } catch (const std::exception& e) {
        record_failure(report, "fixed_simd", std::string("threw: ") + e.what());
      }
      kernels::fixed::reset_backend();
    }
    if (have_fixed) {
      try {
        const ChambolleResult fixed2 = solve_fixed(c.v2, c.params);
        hw::ChambolleAccelerator accel(c.arch);
        FlowField vf;
        vf.u1 = c.v;
        vf.u2 = c.v2;
        const auto result = accel.solve(vf, c.params);
        EngineOutcome out;
        out.engine = "accel";
        out.exact_required = true;
        const bool bits = bits_equal(result.u.u1, fixed1.u) &&
                          bits_equal(result.u.u2, fixed2.u) &&
                          bits_equal(result.dual_u1.u1, fixed1.p.px) &&
                          bits_equal(result.dual_u1.u2, fixed1.p.py) &&
                          bits_equal(result.dual_u2.u1, fixed2.p.px) &&
                          bits_equal(result.dual_u2.u2, fixed2.p.py);
        const bool cycles =
            result.stats.total_cycles ==
            accel.estimate_frame_cycles(c.v.rows(), c.v.cols(),
                                        c.params.iterations);
        out.pass = bits && cycles;
        if (!bits) out.detail = "bits differ from the fixed-point solver";
        if (!cycles)
          out.detail += std::string(bits ? "" : "; ") +
                        "measured cycles differ from the analytic model";
        out.max_diff_u = diff_or_shape(result.u.u1, fixed1.u);
        report.engines.push_back(std::move(out));
      } catch (const std::exception& e) {
        record_failure(report, "accel", std::string("threw: ") + e.what());
      }
      // Functional mode short-circuits the cycle ladder through the
      // (SIMD-dispatched) fixed kernel; its bits AND its cycle count must be
      // indistinguishable from cycle mode.
      try {
        const ChambolleResult fixed2 = solve_fixed(c.v2, c.params);
        hw::ArchConfig arch_func = c.arch;
        arch_func.functional_mode = true;
        hw::ChambolleAccelerator accel(arch_func);
        FlowField vf;
        vf.u1 = c.v;
        vf.u2 = c.v2;
        const auto result = accel.solve(vf, c.params);
        EngineOutcome out;
        out.engine = "accel_functional";
        out.exact_required = true;
        const bool bits = bits_equal(result.u.u1, fixed1.u) &&
                          bits_equal(result.u.u2, fixed2.u) &&
                          bits_equal(result.dual_u1.u1, fixed1.p.px) &&
                          bits_equal(result.dual_u1.u2, fixed1.p.py) &&
                          bits_equal(result.dual_u2.u1, fixed2.p.px) &&
                          bits_equal(result.dual_u2.u2, fixed2.p.py);
        const bool cycles =
            result.stats.total_cycles ==
            accel.estimate_frame_cycles(c.v.rows(), c.v.cols(),
                                        c.params.iterations);
        out.pass = bits && cycles;
        if (!bits) out.detail = "bits differ from the fixed-point solver";
        if (!cycles)
          out.detail += std::string(bits ? "" : "; ") +
                        "functional-mode cycles differ from the analytic model";
        out.max_diff_u = diff_or_shape(result.u.u1, fixed1.u);
        report.engines.push_back(std::move(out));
      } catch (const std::exception& e) {
        record_failure(report, "accel_functional",
                       std::string("threw: ") + e.what());
      }
    }
  }

  return report;
}

}  // namespace chambolle::oracle
