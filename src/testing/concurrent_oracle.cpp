#include "testing/concurrent_oracle.hpp"

#include <cstring>
#include <future>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "chambolle/resident_tiled.hpp"
#include "common/rng.hpp"
#include "serving/flow_service.hpp"
#include "testing/generators.hpp"

namespace chambolle::oracle {
namespace {

// memcmp, not operator== — same policy as oracle.cpp: the bit-exactness
// claim must not be weakened by float comparison semantics (-0.0, NaN).
bool bits_equal(const Matrix<float>& a, const Matrix<float>& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

struct Stream {
  int rows = 0, cols = 0;
  std::vector<Matrix<float>> frames;
  std::vector<Matrix<float>> expected;  ///< serial fresh-engine truth
};

}  // namespace

std::string ConcurrentOracleReport::failure_report() const {
  if (pass) return {};
  std::ostringstream os;
  os << "concurrent-sessions oracle FAILED\n  " << case_line << "\n  "
     << detail << "\n  rerun: run_concurrent_oracle(" << seed << ")\n";
  return os.str();
}

ConcurrentOracleReport run_concurrent_oracle(
    std::uint64_t seed, const ConcurrentOracleOptions& options) {
  if (options.sessions < 1 || options.frames_per_session < 1 ||
      options.slots < 1 || options.max_batch < 1 ||
      options.lane_counts.empty())
    throw std::invalid_argument("run_concurrent_oracle: bad options");

  ConcurrentOracleReport report;
  report.seed = seed;

  // Shared solver configuration, drawn through the common case generator so
  // the parameter distribution (merge depth, tile geometry, theta/tau
  // variation) matches the single-solve oracle's.
  const OracleCase shared = make_case(seed);
  tvl1::Tvl1Params params;
  params.chambolle = shared.params;
  params.tiled = shared.tiled;
  params.tiled.pool = nullptr;  // the service binds slot pools itself
  params.solver = tvl1::InnerSolver::kResident;

  // Per-session streams: shapes differ across sessions (per-resolution
  // engine cache coverage), fixed within a session (warm-start contract).
  Rng rng(seed ^ 0xc0fffee5c0fffee5ULL);
  std::vector<Stream> streams(static_cast<std::size_t>(options.sessions));
  for (Stream& st : streams) {
    st.rows = rng.uniform_int(8, 48);
    st.cols = rng.uniform_int(8, 48);
    for (int f = 0; f < options.frames_per_session; ++f)
      st.frames.push_back(random_image(rng, st.rows, st.cols, -3.f, 3.f));
  }

  std::ostringstream case_os;
  case_os << "seed=" << seed << " sessions=" << options.sessions
          << " frames=" << options.frames_per_session
          << " slots=" << options.slots
          << " iters=" << params.chambolle.iterations
          << " merge=" << params.tiled.merge_iterations << " tiles="
          << params.tiled.tile_rows << "x" << params.tiled.tile_cols
          << " shapes=";
  for (const Stream& st : streams)
    case_os << st.rows << "x" << st.cols << ",";
  report.case_line = case_os.str();

  // Serial ground truth: each stream alone, fresh engine per frame, duals
  // chained through snapshots — the spelled-out form of the warm-start
  // contract the service's engine reuse must be indistinguishable from.
  for (Stream& st : streams) {
    DualField duals;
    bool has_duals = false;
    for (const Matrix<float>& v : st.frames) {
      ResidentTiledEngine engine(v, params.chambolle, params.tiled,
                                 has_duals ? &duals : nullptr);
      engine.run(params.chambolle.iterations);
      engine.snapshot(duals);
      has_duals = true;
      st.expected.push_back(engine.result().u);
    }
  }

  // Interleaved runs: all streams through one service, frame-major round
  // robin so consecutive requests always belong to different sessions.
  for (const int lanes : options.lane_counts) {
    serving::FlowServiceOptions svc_opts;
    svc_opts.params = params;
    svc_opts.slots = options.slots;
    svc_opts.lanes_per_slot = lanes;
    svc_opts.max_batch = options.max_batch;
    // Nothing may shed in the exactness run: admit everything.
    svc_opts.queue_capacity =
        static_cast<std::size_t>(options.sessions) *
            static_cast<std::size_t>(options.frames_per_session) +
        1;
    serving::FlowService service(svc_opts);

    std::vector<std::shared_ptr<serving::FlowService::Session>> sessions;
    for (int s = 0; s < options.sessions; ++s)
      sessions.push_back(service.open_session());
    std::vector<std::vector<std::future<serving::Reply>>> futures(
        static_cast<std::size_t>(options.sessions));
    for (int f = 0; f < options.frames_per_session; ++f)
      for (int s = 0; s < options.sessions; ++s)
        futures[static_cast<std::size_t>(s)].push_back(
            sessions[static_cast<std::size_t>(s)]->submit(
                streams[static_cast<std::size_t>(s)].frames
                    [static_cast<std::size_t>(f)]));

    for (int s = 0; s < options.sessions; ++s) {
      for (int f = 0; f < options.frames_per_session; ++f) {
        serving::Reply r =
            futures[static_cast<std::size_t>(s)][static_cast<std::size_t>(f)]
                .get();
        ++report.replies_checked;
        if (!r.ok()) {
          std::ostringstream os;
          os << "lanes=" << lanes << " session=" << s << " frame=" << f
             << ": status=" << serving::to_string(r.status)
             << " (expected ok)";
          report.detail = os.str();
          return report;
        }
        const Matrix<float>& want =
            streams[static_cast<std::size_t>(s)]
                .expected[static_cast<std::size_t>(f)];
        if (!bits_equal(r.u, want)) {
          std::ostringstream os;
          os << "lanes=" << lanes << " session=" << s << " frame=" << f
             << ": interleaved primal differs from serial replay (bitwise)";
          report.detail = os.str();
          return report;
        }
      }
    }
    ++report.lane_counts_checked;
  }

  report.pass = true;
  return report;
}

}  // namespace chambolle::oracle
