// generators.hpp — seeded random-case generation for the differential oracle.
//
// Every randomized test in the repository used to roll its own geometry and
// parameter distributions (tiled_fuzz_test, hw_fuzz_test); this module is
// the single generator they were absorbed into.  One uint64 seed determines
// an entire OracleCase — frame geometry, input field, Chambolle parameters,
// tile/merge/thread configuration, warm-start duals and the accelerator
// architecture — so any failure the oracle prints reproduces from its seed
// alone, on any machine.
#pragma once

#include <cstdint>
#include <string>

#include "chambolle/params.hpp"
#include "chambolle/solver.hpp"
#include "chambolle/tiled_solver.hpp"
#include "common/image.hpp"
#include "hw/device.hpp"

namespace chambolle::oracle {

/// Bounds of the case distribution.  The defaults keep a single case cheap
/// enough that hundreds run inside one ctest invocation (and under TSan).
struct CaseLimits {
  int min_rows = 5;
  int max_rows = 64;
  int min_cols = 5;
  int max_cols = 64;
  int min_iterations = 1;
  int max_iterations = 8;
  /// Merge depth K; tile dims are drawn from (2K, 2K + tile_span].
  int max_merge = 5;
  int tile_span = 40;
  int max_threads = 4;
  /// Input range; kept inside the fixed-point Q5.8 span so the quantized
  /// engines stay comparable.
  float v_lo = -3.f;
  float v_hi = 3.f;
  /// Draw a random warm-start dual state for ~1/4 of the cases.
  bool allow_warm_start = true;
  /// Draw non-default (theta, tau) on the stability bound for ~1/2 of the
  /// cases.  Non-default parameters disable the quantized engines, whose
  /// error bound is calibrated for the default parameter point.
  bool allow_param_variation = true;
};

/// One fully-determined differential-test case.
struct OracleCase {
  std::uint64_t seed = 0;
  Matrix<float> v;   ///< the component every engine solves
  Matrix<float> v2;  ///< second component, for the two-array accelerator
  ChambolleParams params;
  TiledSolverOptions tiled;  ///< geometry + threads for tiled/resident
  int rows_per_strip = 16;   ///< row-parallel work-unit size
  bool warm_start = false;   ///< duals start from `initial` instead of zeros
  DualField initial;
  bool default_params = true;  ///< quantized engines apply only when true
  hw::ArchConfig arch;         ///< accelerator architecture for this case

  /// One-line human-readable description (the failure reproducer's header).
  [[nodiscard]] std::string describe() const;
};

/// Expands a seed into a case.  Deterministic: equal (seed, limits) yield
/// equal cases on every platform (std::mt19937_64 plus our own bounded-draw
/// helpers; no libstdc++-specific distributions).
[[nodiscard]] OracleCase make_case(std::uint64_t seed,
                                   const CaseLimits& limits = {});

}  // namespace chambolle::oracle
