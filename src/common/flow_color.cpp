#include "common/flow_color.hpp"

#include <algorithm>
#include <cmath>

namespace chambolle {
namespace {

constexpr float kPi = 3.14159265358979323846f;

// HSV (h in [0,1)) to RGB bytes, full value.
std::array<unsigned char, 3> hsv_to_rgb(float h, float s, float v) {
  const float hh = (h - std::floor(h)) * 6.f;
  const int sector = static_cast<int>(hh) % 6;
  const float f = hh - std::floor(hh);
  const float p = v * (1.f - s);
  const float q = v * (1.f - s * f);
  const float t = v * (1.f - s * (1.f - f));
  float r = 0.f, g = 0.f, b = 0.f;
  switch (sector) {
    case 0: r = v; g = t; b = p; break;
    case 1: r = q; g = v; b = p; break;
    case 2: r = p; g = v; b = t; break;
    case 3: r = p; g = q; b = v; break;
    case 4: r = t; g = p; b = v; break;
    default: r = v; g = p; b = q; break;
  }
  const auto to_byte = [](float x) {
    return static_cast<unsigned char>(std::lround(std::clamp(x, 0.f, 1.f) * 255.f));
  };
  return {to_byte(r), to_byte(g), to_byte(b)};
}

}  // namespace

float max_flow_magnitude(const FlowField& flow) {
  float m = 0.f;
  for (int r = 0; r < flow.rows(); ++r)
    for (int c = 0; c < flow.cols(); ++c) m = std::max(m, flow.magnitude(r, c));
  return m;
}

io::RgbImage colorize_flow(const FlowField& flow, float max_magnitude) {
  float scale = max_magnitude > 0.f ? max_magnitude : max_flow_magnitude(flow);
  if (scale <= 0.f) scale = 1.f;
  io::RgbImage out(flow.rows(), flow.cols());
  for (int r = 0; r < flow.rows(); ++r)
    for (int c = 0; c < flow.cols(); ++c) {
      const float fx = flow.u1(r, c), fy = flow.u2(r, c);
      const float mag = std::min(std::sqrt(fx * fx + fy * fy) / scale, 1.f);
      const float ang = std::atan2(-fy, -fx);  // Middlebury orientation
      const float hue = (ang + kPi) / (2.f * kPi);
      out.pixels(r, c) = hsv_to_rgb(hue, mag, 1.f);
    }
  return out;
}

}  // namespace chambolle
