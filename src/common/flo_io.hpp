// flo_io.hpp — Middlebury .flo optical-flow file format.
//
// The de-facto interchange format for dense flow fields (Baker et al.,
// "A Database and Evaluation Methodology for Optical Flow"): the magic float
// 202021.25 ("PIEH"), int32 width/height, then row-major interleaved
// (u, v) float pairs, all little-endian.  Lets results from this library be
// consumed by standard evaluation tooling and vice versa.
//
// read_flo treats its input as UNTRUSTED: dimensions are capped (per-axis
// and total cells) and the payload length is verified against w*h before
// any allocation, so a hostile 12-byte header cannot force a multi-gigabyte
// FlowField.  The std::istream overload is the in-memory entry point the
// fuzz harnesses drive (tests/fuzz/).
#pragma once

#include <cstddef>
#include <istream>
#include <string>

#include "common/image.hpp"

namespace chambolle::io {

/// The format's magic number (reads "PIEH" when viewed as bytes).
inline constexpr float kFloMagic = 202021.25f;

/// Per-axis dimension cap accepted by read_flo.
inline constexpr int kMaxFloDim = 1 << 16;

/// Total-cell cap accepted by read_flo: 2^24 cells (a 4096x4096 frame,
/// 128 MB of payload).  The per-axis check alone is not enough — a
/// 2^16 x 2^16 header would still demand a ~34 GB allocation.
inline constexpr std::size_t kMaxFloCells = std::size_t{1} << 24;

/// Writes a flow field as a .flo file. Throws std::runtime_error on failure.
void write_flo(const std::string& path, const FlowField& flow);

/// Reads a .flo file. Throws std::runtime_error on parse failure.
[[nodiscard]] FlowField read_flo(const std::string& path);

/// Reads a .flo stream (opened in binary mode).  When the stream is
/// seekable, the remaining length must equal exactly w*h*8 payload bytes —
/// verified BEFORE the field is allocated.
[[nodiscard]] FlowField read_flo(std::istream& in);

}  // namespace chambolle::io
