// flo_io.hpp — Middlebury .flo optical-flow file format.
//
// The de-facto interchange format for dense flow fields (Baker et al.,
// "A Database and Evaluation Methodology for Optical Flow"): the magic float
// 202021.25 ("PIEH"), int32 width/height, then row-major interleaved
// (u, v) float pairs, all little-endian.  Lets results from this library be
// consumed by standard evaluation tooling and vice versa.
#pragma once

#include <string>

#include "common/image.hpp"

namespace chambolle::io {

/// The format's magic number (reads "PIEH" when viewed as bytes).
inline constexpr float kFloMagic = 202021.25f;

/// Writes a flow field as a .flo file. Throws std::runtime_error on failure.
void write_flo(const std::string& path, const FlowField& flow);

/// Reads a .flo file. Throws std::runtime_error on parse failure.
[[nodiscard]] FlowField read_flo(const std::string& path);

}  // namespace chambolle::io
