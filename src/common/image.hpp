// image.hpp — grayscale image and 2-D vector-field types.
//
// Images are stored as float matrices with intensities nominally in [0, 255]
// (the fixed-point hardware formats in Section V-B of the paper assume this
// range).  A FlowField holds the optical-flow vector u = (u1, u2) as two
// matrices, following the paper's component-wise treatment: the hardware
// instantiates one PE array per component.
#pragma once

#include <cmath>
#include <stdexcept>

#include "common/matrix.hpp"

namespace chambolle {

using Image = Matrix<float>;

/// Dense 2-D vector field u = (u1, u2); u1 is the horizontal (x, i.e. column)
/// displacement and u2 the vertical (y, i.e. row) displacement.
struct FlowField {
  Matrix<float> u1;
  Matrix<float> u2;

  FlowField() = default;
  FlowField(int rows, int cols) : u1(rows, cols), u2(rows, cols) {}

  [[nodiscard]] int rows() const { return u1.rows(); }
  [[nodiscard]] int cols() const { return u1.cols(); }
  [[nodiscard]] bool same_shape(const FlowField& o) const {
    return u1.same_shape(o.u1) && u2.same_shape(o.u2);
  }

  void fill(float x, float y) {
    u1.fill(x);
    u2.fill(y);
  }

  /// Magnitude of the flow vector at (r, c).
  [[nodiscard]] float magnitude(int r, int c) const {
    const float a = u1(r, c), b = u2(r, c);
    return std::sqrt(a * a + b * b);
  }
};

/// Dual variable of the Chambolle iteration for ONE flow component:
/// p = (px, py), initialized at zero (Algorithm 1).
struct DualField {
  Matrix<float> px;
  Matrix<float> py;

  DualField() = default;
  DualField(int rows, int cols) : px(rows, cols), py(rows, cols) {}

  [[nodiscard]] int rows() const { return px.rows(); }
  [[nodiscard]] int cols() const { return px.cols(); }
  [[nodiscard]] bool same_shape(const DualField& o) const {
    return px.same_shape(o.px) && py.same_shape(o.py);
  }
};

/// Clamps v into [lo, hi].
inline float clampf(float v, float lo, float hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace chambolle
