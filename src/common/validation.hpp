// validation.hpp — input sanity helpers for the public entry points.
//
// Non-finite pixels (NaN/Inf from a failed capture or a broken upstream
// stage) silently poison every iterative solver; the public pipelines reject
// them at the door with a clear message instead.
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>

#include "common/matrix.hpp"

namespace chambolle {

/// True when any element is NaN or infinite.
inline bool has_nonfinite(const Matrix<float>& m) {
  for (float v : m)
    if (!std::isfinite(v)) return true;
  return false;
}

/// Throws std::invalid_argument naming `what` when the matrix has
/// non-finite entries.
inline void require_finite(const Matrix<float>& m, const std::string& what) {
  if (has_nonfinite(m))
    throw std::invalid_argument(what + ": non-finite pixel values");
}

}  // namespace chambolle
