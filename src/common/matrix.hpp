// matrix.hpp — dense row-major 2-D container used throughout the library.
//
// The Chambolle solver, the TV-L1 scheme and the hardware simulator all operate
// on dense 2-D grids (images, dual fields, fixed-point state).  Matrix<T> is a
// small value type with explicit (rows, cols) geometry; (r, c) indexing matches
// the paper's (row, column) convention: Figure 4 indexes rows 0..87 and columns
// 0..91 of an 88x92 sliding-window tile.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace chambolle {

/// Dense row-major matrix with value semantics.
///
/// Invariants: data().size() == rows() * cols(); geometry is immutable after
/// construction except via assignment / resize().
template <typename T>
class Matrix {
 public:
  using value_type = T;

  Matrix() = default;

  /// Creates a rows x cols matrix, value-initialized (zeros for arithmetic T).
  Matrix(int rows, int cols, T init = T{})
      : rows_(check_dim(rows)), cols_(check_dim(cols)),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              init) {}

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  T& operator()(int r, int c) {
    assert(in_bounds(r, c));
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  const T& operator()(int r, int c) const {
    assert(in_bounds(r, c));
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  /// Bounds-checked access; throws std::out_of_range.
  T& at(int r, int c) {
    if (!in_bounds(r, c)) throw std::out_of_range("Matrix::at");
    return (*this)(r, c);
  }
  const T& at(int r, int c) const {
    if (!in_bounds(r, c)) throw std::out_of_range("Matrix::at");
    return (*this)(r, c);
  }

  [[nodiscard]] bool in_bounds(int r, int c) const {
    return r >= 0 && r < rows_ && c >= 0 && c < cols_;
  }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Re-shapes the matrix, discarding contents.
  void resize(int rows, int cols, T init = T{}) {
    rows_ = check_dim(rows);
    cols_ = check_dim(cols);
    data_.assign(static_cast<std::size_t>(rows) * cols, init);
  }

  /// Copies the rectangle [r0, r0+h) x [c0, c0+w) into a new matrix.
  [[nodiscard]] Matrix block(int r0, int c0, int h, int w) const {
    if (r0 < 0 || c0 < 0 || h < 0 || w < 0 || r0 + h > rows_ || c0 + w > cols_)
      throw std::out_of_range("Matrix::block");
    Matrix out(h, w);
    for (int r = 0; r < h; ++r)
      for (int c = 0; c < w; ++c) out(r, c) = (*this)(r0 + r, c0 + c);
    return out;
  }

  /// Writes `src` into this matrix with its top-left corner at (r0, c0).
  void paste(const Matrix& src, int r0, int c0) {
    if (r0 < 0 || c0 < 0 || r0 + src.rows() > rows_ || c0 + src.cols() > cols_)
      throw std::out_of_range("Matrix::paste");
    for (int r = 0; r < src.rows(); ++r)
      for (int c = 0; c < src.cols(); ++c) (*this)(r0 + r, c0 + c) = src(r, c);
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  static int check_dim(int d) {
    if (d < 0) throw std::invalid_argument("Matrix: negative dimension");
    return d;
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<T> data_;
};

/// Maximum absolute elementwise difference; matrices must have equal shape.
template <typename T>
[[nodiscard]] double max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("max_abs_diff: shape");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) -
                     static_cast<double>(b.data()[i]);
    m = std::max(m, d < 0 ? -d : d);
  }
  return m;
}

}  // namespace chambolle
