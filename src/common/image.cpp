#include "common/image.hpp"

// Header-only types; this translation unit anchors the library target and
// hosts out-of-line helpers if they grow non-trivial.
namespace chambolle {}  // namespace chambolle
