// text_table.hpp — fixed-width ASCII table rendering for the bench harness.
//
// Every bench binary that regenerates a paper table prints it through this
// formatter so the output is uniform and diff-able across runs.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace chambolle {

/// Accumulates rows of strings and renders them as an aligned ASCII table
/// with a header rule, e.g.
///
///   Device            | Iterations | Frame Rate (fps)
///   ------------------+------------+-----------------
///   GeForce 7800 GS   | 50         | 56.0
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double with the given precision.
  static std::string num(double v, int precision = 1);

  void render(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace chambolle
