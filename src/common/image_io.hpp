// image_io.hpp — minimal binary PGM (P5) / PPM (P6) reader & writer.
//
// The examples emit flow visualizations and corrected frames as NetPBM files
// so results can be inspected without any external image library.
#pragma once

#include <array>
#include <string>

#include "common/image.hpp"

namespace chambolle::io {

/// 8-bit RGB raster used for flow visualizations.
struct RgbImage {
  Matrix<std::array<unsigned char, 3>> pixels;

  RgbImage() = default;
  RgbImage(int rows, int cols) : pixels(rows, cols) {}
  [[nodiscard]] int rows() const { return pixels.rows(); }
  [[nodiscard]] int cols() const { return pixels.cols(); }
};

/// Writes a grayscale image as binary PGM (P5); intensities are clamped to
/// [0, 255] and rounded. Throws std::runtime_error on I/O failure.
void write_pgm(const std::string& path, const Image& img);

/// Reads a binary PGM (P5) file. Throws std::runtime_error on parse failure.
[[nodiscard]] Image read_pgm(const std::string& path);

/// Writes an RGB image as binary PPM (P6).
void write_ppm(const std::string& path, const RgbImage& img);

/// Reads a binary PPM (P6) file.
[[nodiscard]] RgbImage read_ppm(const std::string& path);

}  // namespace chambolle::io
