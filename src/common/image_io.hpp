// image_io.hpp — minimal binary PGM (P5) / PPM (P6) reader & writer.
//
// The examples emit flow visualizations and corrected frames as NetPBM files
// so results can be inspected without any external image library.
//
// The readers treat their input as UNTRUSTED: header dimensions are capped
// (per-axis and total cells) before any allocation, and rasters with
// maxval < 255 are rescaled to the [0, 255] intensity range the solvers and
// the to_byte round-trip assume.  The std::istream overloads are the
// in-memory entry points the fuzz harnesses drive (tests/fuzz/).
#pragma once

#include <array>
#include <cstddef>
#include <istream>
#include <string>

#include "common/image.hpp"

namespace chambolle::io {

/// Per-axis dimension cap accepted by the PNM readers.
inline constexpr int kMaxPnmDim = 1 << 16;

/// Total-pixel cap accepted by the PNM readers: 2^24 pixels (a 4096x4096
/// frame); bounds the allocation a hostile header can force.
inline constexpr std::size_t kMaxPnmPixels = std::size_t{1} << 24;

/// 8-bit RGB raster used for flow visualizations.
struct RgbImage {
  Matrix<std::array<unsigned char, 3>> pixels;

  RgbImage() = default;
  RgbImage(int rows, int cols) : pixels(rows, cols) {}
  [[nodiscard]] int rows() const { return pixels.rows(); }
  [[nodiscard]] int cols() const { return pixels.cols(); }
};

/// Writes a grayscale image as binary PGM (P5); intensities are clamped to
/// [0, 255] and rounded. Throws std::runtime_error on I/O failure.
void write_pgm(const std::string& path, const Image& img);

/// Reads a binary PGM (P5) file. Throws std::runtime_error on parse failure.
/// Samples are rescaled by 255/maxval, so a maxval-1 bitmap reads as
/// {0, 255} rather than {0, 1}.
[[nodiscard]] Image read_pgm(const std::string& path);

/// Reads a binary PGM (P5) stream (opened in binary mode).
[[nodiscard]] Image read_pgm(std::istream& in);

/// Writes an RGB image as binary PPM (P6).
void write_ppm(const std::string& path, const RgbImage& img);

/// Reads a binary PPM (P6) file; samples are rescaled by 255/maxval.
[[nodiscard]] RgbImage read_ppm(const std::string& path);

/// Reads a binary PPM (P6) stream (opened in binary mode).
[[nodiscard]] RgbImage read_ppm(std::istream& in);

}  // namespace chambolle::io
