#include "common/image_io.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string>

namespace chambolle::io {
namespace {

// Skips whitespace and '#' comment lines between PNM header tokens.
void skip_pnm_separators(std::istream& in) {
  int ch = in.peek();
  while (ch != EOF) {
    if (std::isspace(ch)) {
      in.get();
    } else if (ch == '#') {
      std::string line;
      std::getline(in, line);
    } else {
      break;
    }
    ch = in.peek();
  }
}

int read_pnm_int(std::istream& in, const char* what) {
  skip_pnm_separators(in);
  int v = -1;
  in >> v;
  if (!in || v < 0) throw std::runtime_error(std::string("PNM: bad ") + what);
  return v;
}

// Parses "width height maxval" with the shared caps; runs BEFORE any raster
// allocation so a hostile header cannot force one.
void read_pnm_dims(std::istream& in, const char* reader, int& cols, int& rows,
                   int& maxval) {
  cols = read_pnm_int(in, "width");
  rows = read_pnm_int(in, "height");
  maxval = read_pnm_int(in, "maxval");
  const std::string who(reader);
  if (cols < 1 || rows < 1 || cols > kMaxPnmDim || rows > kMaxPnmDim)
    throw std::runtime_error(who + ": implausible dimensions");
  if (static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows) >
      kMaxPnmPixels)
    throw std::runtime_error(who + ": dimensions exceed the total-pixel cap");
  if (maxval <= 0 || maxval > 255)
    throw std::runtime_error(who + ": unsupported maxval");
}

unsigned char to_byte(float v) {
  const float c = v < 0.f ? 0.f : (v > 255.f ? 255.f : v);
  return static_cast<unsigned char>(std::lround(c));
}

}  // namespace

void write_pgm(const std::string& path, const Image& img) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  out << "P5\n" << img.cols() << ' ' << img.rows() << "\n255\n";
  for (int r = 0; r < img.rows(); ++r)
    for (int c = 0; c < img.cols(); ++c) out.put(static_cast<char>(to_byte(img(r, c))));
  if (!out) throw std::runtime_error("write_pgm: write failed for " + path);
}

Image read_pgm(std::istream& in) {
  std::string magic;
  in >> magic;
  if (magic != "P5") throw std::runtime_error("read_pgm: not a P5 file");
  int cols = 0, rows = 0, maxval = 0;
  read_pnm_dims(in, "read_pgm", cols, rows, maxval);
  in.get();  // single separator byte before the raster
  // Rescale to the [0, 255] range the solvers and to_byte assume; samples
  // above maxval are invalid per the spec and clamp to 255.
  const float scale = 255.f / static_cast<float>(maxval);
  Image img(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const int ch = in.get();
      if (ch == EOF) throw std::runtime_error("read_pgm: truncated raster");
      img(r, c) = static_cast<float>(ch > maxval ? maxval : ch) * scale;
    }
  return img;
}

Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pgm: cannot open " + path);
  return read_pgm(in);
}

void write_ppm(const std::string& path, const RgbImage& img) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
  out << "P6\n" << img.cols() << ' ' << img.rows() << "\n255\n";
  for (int r = 0; r < img.rows(); ++r)
    for (int c = 0; c < img.cols(); ++c)
      for (unsigned char ch : img.pixels(r, c)) out.put(static_cast<char>(ch));
  if (!out) throw std::runtime_error("write_ppm: write failed for " + path);
}

RgbImage read_ppm(std::istream& in) {
  std::string magic;
  in >> magic;
  if (magic != "P6") throw std::runtime_error("read_ppm: not a P6 file");
  int cols = 0, rows = 0, maxval = 0;
  read_pnm_dims(in, "read_ppm", cols, rows, maxval);
  in.get();
  const float scale = 255.f / static_cast<float>(maxval);
  RgbImage img(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      for (int k = 0; k < 3; ++k) {
        const int ch = in.get();
        if (ch == EOF) throw std::runtime_error("read_ppm: truncated raster");
        img.pixels(r, c)[static_cast<std::size_t>(k)] =
            to_byte(static_cast<float>(ch > maxval ? maxval : ch) * scale);
      }
  return img;
}

RgbImage read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_ppm: cannot open " + path);
  return read_ppm(in);
}

}  // namespace chambolle::io
