// parse.hpp — checked numeric parsing for command-line and config surfaces.
//
// The CLI tools used to funnel flag values through atoi/atof, which silently
// turn garbage into 0 ("--threads abc" became a zero-thread request) and
// overflow into undefined behavior.  These helpers parse strictly: the whole
// token must be consumed, the value must be finite and inside the caller's
// range, and any violation yields nullopt so the caller can print a real
// error instead of computing with a mis-parse.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <optional>

namespace chambolle {

/// Parses a decimal integer in [min, max]; nullopt on empty input, trailing
/// garbage, overflow, or out-of-range values.
[[nodiscard]] inline std::optional<int> parse_int(const char* s, int min,
                                                  int max) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return std::nullopt;
  if (v < static_cast<long>(min) || v > static_cast<long>(max))
    return std::nullopt;
  return static_cast<int>(v);
}

/// Parses a finite float in [min, max]; same strictness as parse_int.
[[nodiscard]] inline std::optional<float> parse_float(const char* s, float min,
                                                      float max) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const float v = std::strtof(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) return std::nullopt;
  if (!std::isfinite(v) || v < min || v > max) return std::nullopt;
  return v;
}

}  // namespace chambolle
