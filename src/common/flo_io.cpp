#include "common/flo_io.hpp"

#include <cstdint>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace chambolle::io {
namespace {

void write_raw(std::ofstream& out, const void* p, std::size_t n) {
  out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
}

void read_raw(std::istream& in, void* p, std::size_t n) {
  in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (!in) throw std::runtime_error("read_flo: truncated file");
}

// Bytes left between the current position and the end of a seekable stream;
// -1 when the stream does not support seeking (then the length check is
// skipped and truncation is caught by the payload reads).
std::streamoff remaining_bytes(std::istream& in) {
  const std::istream::pos_type here = in.tellg();
  if (here == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(here);
  if (end == std::istream::pos_type(-1) || !in) {
    in.clear();
    in.seekg(here);
    return -1;
  }
  return end - here;
}

}  // namespace

void write_flo(const std::string& path, const FlowField& flow) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_flo: cannot open " + path);
  const float magic = kFloMagic;
  const std::int32_t w = flow.cols();
  const std::int32_t h = flow.rows();
  write_raw(out, &magic, sizeof magic);
  write_raw(out, &w, sizeof w);
  write_raw(out, &h, sizeof h);
  for (int r = 0; r < h; ++r)
    for (int c = 0; c < w; ++c) {
      const float u = flow.u1(r, c), v = flow.u2(r, c);
      write_raw(out, &u, sizeof u);
      write_raw(out, &v, sizeof v);
    }
  if (!out) throw std::runtime_error("write_flo: write failed for " + path);
}

FlowField read_flo(std::istream& in) {
  float magic = 0.f;
  std::int32_t w = 0, h = 0;
  read_raw(in, &magic, sizeof magic);
  if (magic != kFloMagic)
    throw std::runtime_error("read_flo: bad magic (not a .flo file)");
  read_raw(in, &w, sizeof w);
  read_raw(in, &h, sizeof h);
  if (w <= 0 || h <= 0 || w > kMaxFloDim || h > kMaxFloDim)
    throw std::runtime_error("read_flo: implausible dimensions");
  // Both caps and the payload check run BEFORE the FlowField allocation: an
  // adversarial 12-byte header must not be able to commit gigabytes.
  const std::size_t cells =
      static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
  if (cells > kMaxFloCells)
    throw std::runtime_error("read_flo: dimensions exceed the total-cell cap");
  const std::streamoff payload = remaining_bytes(in);
  if (payload >= 0 &&
      static_cast<std::uint64_t>(payload) != std::uint64_t{cells} * 8)
    throw std::runtime_error(
        "read_flo: payload length does not match width*height");
  FlowField flow(h, w);
  for (int r = 0; r < h; ++r)
    for (int c = 0; c < w; ++c) {
      float u = 0.f, v = 0.f;
      read_raw(in, &u, sizeof u);
      read_raw(in, &v, sizeof v);
      flow.u1(r, c) = u;
      flow.u2(r, c) = v;
    }
  return flow;
}

FlowField read_flo(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_flo: cannot open " + path);
  return read_flo(in);
}

}  // namespace chambolle::io
