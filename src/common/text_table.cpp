#include "common/text_table.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace chambolle {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("TextTable: row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(width[i])) << row[i];
      if (i + 1 < row.size()) os << " | ";
    }
    os << '\n';
  };

  emit_row(header_);
  for (std::size_t i = 0; i < header_.size(); ++i) {
    os << std::string(width[i], '-');
    if (i + 1 < header_.size()) os << "-+-";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace chambolle
