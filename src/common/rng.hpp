// rng.hpp — deterministic random number generation for tests and workloads.
//
// All stochastic inputs in the repository (noise, random images, property-test
// sweeps) draw from this seeded generator so every run is reproducible.
#pragma once

#include <cstdint>
#include <random>

#include "common/image.hpp"

namespace chambolle {

/// Thin wrapper over std::mt19937_64 with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : eng_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return std::uniform_real_distribution<float>(lo, hi)(eng_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(eng_);
  }

  /// Gaussian with the given mean and standard deviation.
  float gaussian(float mean, float stddev) {
    return std::normal_distribution<float>(mean, stddev)(eng_);
  }

  std::uint64_t next_u64() { return eng_(); }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

/// Fills a matrix with uniform values in [lo, hi).
inline Image random_image(Rng& rng, int rows, int cols, float lo = 0.f,
                          float hi = 255.f) {
  Image img(rows, cols);
  for (float& v : img) v = rng.uniform(lo, hi);
  return img;
}

/// Adds i.i.d. Gaussian noise to an image in place.
inline void add_gaussian_noise(Rng& rng, Image& img, float stddev) {
  for (float& v : img) v += rng.gaussian(0.f, stddev);
}

}  // namespace chambolle
