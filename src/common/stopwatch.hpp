// stopwatch.hpp — wall-clock timing for the benchmark harness.
#pragma once

#include <chrono>

namespace chambolle {

/// Monotonic wall-clock stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace chambolle
