// stopwatch.hpp — wall-clock timing for the benchmark harness.
#pragma once

#include <chrono>

namespace chambolle {

/// Monotonic wall-clock stopwatch. Started on construction.
///
/// For scoped phase timing that should land in the telemetry trace, prefer
/// telemetry::TraceSpan (telemetry/trace.hpp); Stopwatch remains the tool
/// for timings that feed a return value or a printed table.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()), lap_(start_) {}

  void reset() { start_ = clock::now(); lap_ = start_; }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

  /// Seconds since the previous lap() (or construction/reset), advancing the
  /// lap marker.  Lets one stopwatch time consecutive phases without
  /// constructing a fresh instance per phase.
  double lap() {
    const clock::time_point now = clock::now();
    const double s = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return s;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
  clock::time_point lap_;
};

}  // namespace chambolle
