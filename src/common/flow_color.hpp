// flow_color.hpp — Middlebury-style color coding of optical-flow fields.
//
// Direction maps to hue and magnitude to saturation, the de-facto standard
// visualization for flow results; used by the example applications.
#pragma once

#include "common/image.hpp"
#include "common/image_io.hpp"

namespace chambolle {

/// Renders a flow field as an RGB image.  Flow vectors are normalized by
/// `max_magnitude`; pass 0 to auto-scale to the field's own maximum.
[[nodiscard]] io::RgbImage colorize_flow(const FlowField& flow,
                                         float max_magnitude = 0.f);

/// Largest flow-vector magnitude in the field (0 for an empty field).
[[nodiscard]] float max_flow_magnitude(const FlowField& flow);

}  // namespace chambolle
