// kernel.cpp — runtime CPU dispatch and the fused region drivers.
//
// Dispatch: the backend is resolved once (then cached) from, in priority
// order, a programmatic force_backend() override, the CHAMBOLLE_KERNEL
// environment variable, and CPU feature detection — __builtin_cpu_supports
// (cpuid) on x86, getauxval(AT_HWCAP) on AArch64 Linux.  The resolved
// choice is exported as the `kernel.backend` gauge (enum ordinal) plus a
// one-shot `kernel.dispatch.<name>` counter.
//
// Fusion: iterate_region_fused() runs the Term pass and the dual-update
// pass as ONE sweep with a rolling two-row Term window.  Term row r+1 is
// produced immediately BEFORE row r's dual update consumes it — and before
// the update overwrites py row r, which Term row r+1 reads — so the
// schedule is exactly the seed's Jacobi two-pass, minus the full-frame
// Term materialization and the second traversal.
#include "kernels/kernel.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/stopwatch.hpp"
#include "kernels/backend_registry.hpp"
#include "telemetry/metrics.hpp"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace chambolle::kernels {
namespace {

const KernelOps* compiled_ops(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return scalar_ops();
    case Backend::kSse2:
      return sse2_ops();
    case Backend::kNeon:
      return neon_ops();
    case Backend::kAvx2:
      return avx2_ops();
    case Backend::kAvx512:
      return avx512_ops();
  }
  return nullptr;
}

bool cpu_supports(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__) && defined(__linux__)
      return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#elif defined(__aarch64__)
      return true;  // ASIMD is mandatory in AArch64
#else
      return false;
#endif
  }
  return false;
}

// -1 = unresolved; otherwise the Backend ordinal.  Resolution is idempotent
// so a benign race on first use resolves to the same value on every thread.
std::atomic<int> g_backend{-1};

void export_choice(Backend b) {
  telemetry::registry().gauge("kernel.backend").set(static_cast<double>(b));
  telemetry::registry()
      .counter(std::string("kernel.dispatch.") + backend_name(b))
      .add(1);
}

// "scalar, sse2, avx2" — the backends this build + machine can actually
// run, for the hard-reject diagnostics below.
std::string available_backend_list() {
  std::string out;
  for (Backend b : available_backends()) {
    if (!out.empty()) out += ", ";
    out += backend_name(b);
  }
  return out;
}

// Parses a backend name with the hard-reject contract: unknown or
// unavailable names throw std::invalid_argument naming the offender and
// listing what this build + machine offers instead.  Shared by the
// CHAMBOLLE_KERNEL override and force_backend(name) — a typo'd request
// must never silently run a different backend.
Backend parse_backend_checked(std::string_view name, const char* what) {
  const std::optional<Backend> req = parse_backend(name);
  if (!req.has_value())
    throw std::invalid_argument(std::string("kernels: ") + what + "=" +
                                std::string(name) +
                                " is not a known backend (available: " +
                                available_backend_list() + ", or auto)");
  if (!backend_available(*req))
    throw std::invalid_argument(std::string("kernels: ") + what + "=" +
                                std::string(name) +
                                " is not available on this machine "
                                "(available: " +
                                available_backend_list() + ", or auto)");
  return *req;
}

Backend resolve_backend() {
  // Environment override first.
  if (const char* env = std::getenv("CHAMBOLLE_KERNEL");
      env != nullptr && *env != '\0' && std::string_view(env) != "auto")
    return parse_backend_checked(env, "CHAMBOLLE_KERNEL");
  // CPU dispatch, best first.
  for (Backend b : {Backend::kAvx512, Backend::kAvx2, Backend::kNeon,
                    Backend::kSse2, Backend::kScalar})
    if (backend_available(b)) return b;
  return Backend::kScalar;
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kNeon:
      return "neon";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "sse2") return Backend::kSse2;
  if (name == "neon") return Backend::kNeon;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "avx512") return Backend::kAvx512;
  return std::nullopt;
}

bool backend_available(Backend b) {
  return compiled_ops(b) != nullptr && cpu_supports(b);
}

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::kAvx512, Backend::kAvx2, Backend::kNeon,
                    Backend::kSse2, Backend::kScalar})
    if (backend_available(b)) out.push_back(b);
  return out;
}

Backend active_backend() {
  int cur = g_backend.load(std::memory_order_acquire);
  if (cur < 0) {
    const Backend resolved = resolve_backend();
    cur = static_cast<int>(resolved);
    int expected = -1;
    if (g_backend.compare_exchange_strong(expected, cur,
                                          std::memory_order_acq_rel))
      export_choice(resolved);
    else
      cur = expected;
  }
  return static_cast<Backend>(cur);
}

const KernelOps& ops() { return *compiled_ops(active_backend()); }

const KernelOps& ops_for(Backend b) {
  if (!backend_available(b))
    throw std::invalid_argument(std::string("kernels: backend ") +
                                backend_name(b) +
                                " is not available on this machine");
  return *compiled_ops(b);
}

void force_backend(Backend b) {
  (void)ops_for(b);  // throws when unavailable
  g_backend.store(static_cast<int>(b), std::memory_order_release);
  export_choice(b);
}

void force_backend(std::string_view name) {
  force_backend(parse_backend_checked(name, "backend"));
}

void reset_backend() { g_backend.store(-1, std::memory_order_release); }

void iterate_region_fused(Matrix<float>& px, Matrix<float>& py,
                          const Matrix<float>& v, const RegionGeometry& geom,
                          float inv_theta, float step, int iterations,
                          Matrix<float>& term_rows, float* last_iter_max_dp) {
  const int rows = v.rows(), cols = v.cols();
  if (last_iter_max_dp != nullptr) *last_iter_max_dp = 0.f;
  if (rows == 0 || cols == 0 || iterations == 0) return;
  if (term_rows.rows() != 2 || term_rows.cols() != cols)
    term_rows.resize(2, cols);
  const KernelOps& k = ops();
  const bool at_left = geom.col0 == 0;
  const bool at_right = geom.col0 + cols == geom.frame_cols;
  const Stopwatch clock;

  float* t_cur = &term_rows(0, 0);
  float* t_next = &term_rows(1, 0);
  TermRowArgs term{};
  term.v = nullptr;
  term.cols = cols;
  term.inv_theta = inv_theta;
  term.at_left = at_left;
  term.at_right = at_right;
  UpdateRowArgs upd{};
  upd.cols = cols;
  upd.step = step;

  const auto fill_term_row = [&](int r, float* out) {
    term.px = &px(r, 0);
    term.py = &py(r, 0);
    term.py_up = r > 0 ? &py(r - 1, 0) : nullptr;
    term.v = &v(r, 0);
    term.term = out;
    const int ar = geom.row0 + r;
    term.at_top = ar == 0;
    term.at_bottom = ar == geom.frame_rows - 1;
    k.term_row(term);
  };

  for (int it = 0; it < iterations; ++it) {
    // The residual is accumulated only on the final iteration: a single-
    // iteration |dp|, independent of how many iterations this call batches.
    upd.max_dp = it == iterations - 1 ? last_iter_max_dp : nullptr;
    fill_term_row(0, t_cur);
    for (int r = 0; r < rows; ++r) {
      // Term row r+1 must be produced before the update writes py row r
      // (its north-neighbor input) — and a bottom-border buffer row never
      // has a successor, so term_down == nullptr exactly when ForwardY
      // vanishes in the seed arithmetic.
      const bool have_down = r + 1 < rows;
      if (have_down) fill_term_row(r + 1, t_next);
      upd.px = &px(r, 0);
      upd.py = &py(r, 0);
      upd.term = t_cur;
      upd.term_down = have_down ? t_next : nullptr;
      k.update_row(upd);
      std::swap(t_cur, t_next);
    }
  }

  static telemetry::Counter& cells = telemetry::registry().counter(
      "kernel.cells");
  static telemetry::Gauge& cps =
      telemetry::registry().gauge("kernel.cells_per_second");
  const double n = static_cast<double>(rows) * cols * iterations;
  cells.add(static_cast<std::uint64_t>(n));
  const double secs = clock.seconds();
  if (secs > 0.0) cps.set(n / secs);
}

void recover_u_into(const Matrix<float>& v, const Matrix<float>& px,
                    const Matrix<float>& py, const RegionGeometry& geom,
                    float theta, Matrix<float>& out) {
  const int rows = v.rows(), cols = v.cols();
  if (!out.same_shape(v)) out.resize(rows, cols);
  if (rows == 0 || cols == 0) return;
  const KernelOps& k = ops();
  RecoverRowArgs a{};
  a.cols = cols;
  a.theta = theta;
  a.at_left = geom.col0 == 0;
  a.at_right = geom.col0 + cols == geom.frame_cols;
  for (int r = 0; r < rows; ++r) {
    a.px = &px(r, 0);
    a.py = &py(r, 0);
    a.py_up = r > 0 ? &py(r - 1, 0) : nullptr;
    a.v = &v(r, 0);
    a.u = &out(r, 0);
    const int ar = geom.row0 + r;
    a.at_top = ar == 0;
    a.at_bottom = ar == geom.frame_rows - 1;
    k.recover_row(a);
  }
}

}  // namespace chambolle::kernels
