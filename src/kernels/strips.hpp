// strips.hpp — halo-strip gather/scatter primitives.
//
// The resident-tile engine (chambolle/resident_tiled.hpp) moves only tile
// *borders* between passes: a source tile packs rows of its buffer into a
// contiguous mailbox (gather), and the destination tile unpacks the mailbox
// into its own halo cells (scatter).  Both directions are straight row
// copies — contiguous within a row on both sides — so they compile to
// memcpy/vector moves and stream at cache speed; the point of the resident
// engine is that THESE strips are the only per-pass memory traffic, instead
// of two full frames.
#pragma once

#include <cstddef>

#include "common/matrix.hpp"

namespace chambolle::kernels {

/// Packs the rectangle [r0, r0+rows) x [c0, c0+cols) of `src` into `dst`
/// (row-major, rows*cols floats).  The caller guarantees the rectangle is in
/// bounds and dst has room; this is a hot-path primitive, not a checked API.
void gather_rect(const Matrix<float>& src, int r0, int c0, int rows, int cols,
                 float* dst);

/// Unpacks `src` (row-major, rows*cols floats) into the rectangle
/// [r0, r0+rows) x [c0, c0+cols) of `dst`.
void scatter_rect(const float* src, Matrix<float>& dst, int r0, int c0,
                  int rows, int cols);

/// Copies a rectangle between two matrices: src[src_r0+r][src_c0+c] ->
/// dst[dst_r0+r][dst_c0+c] for r < rows, c < cols.  Used for the tile
/// load/write-back paths (frame <-> resident buffer) where both sides are
/// matrices; rows are contiguous on both sides.
void copy_rect(const Matrix<float>& src, int src_r0, int src_c0,
               Matrix<float>& dst, int dst_r0, int dst_c0, int rows, int cols);

}  // namespace chambolle::kernels
