// kernel_avx2.cpp — 8-lane AVX2 backend.
//
// Compiled with -mavx2 (CMake adds the flag when the compiler accepts it);
// when the flag is absent this TU degrades to a nullptr stub and the
// dispatcher never offers the backend.  Only vsqrtps/vdivps — both IEEE
// correctly rounded — touch the data, never rcpps/rsqrtps approximations
// and never FMA, so the 8 lanes are bit-exact with the scalar path.
#include "kernels/backend_impl.hpp"
#include "kernels/backend_registry.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace chambolle::kernels {
namespace {

struct Avx2V {
  static constexpr int kLanes = 8;
  using reg = __m256;
  static reg loadu(const float* p) { return _mm256_loadu_ps(p); }
  static void storeu(float* p, reg v) { _mm256_storeu_ps(p, v); }
  static reg set1(float x) { return _mm256_set1_ps(x); }
  static reg zero() { return _mm256_setzero_ps(); }
  static reg add(reg a, reg b) { return _mm256_add_ps(a, b); }
  static reg sub(reg a, reg b) { return _mm256_sub_ps(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_ps(a, b); }
  static reg div(reg a, reg b) { return _mm256_div_ps(a, b); }
  static reg sqrt(reg a) { return _mm256_sqrt_ps(a); }
  static reg neg(reg a) { return _mm256_xor_ps(a, _mm256_set1_ps(-0.f)); }
  static reg max(reg a, reg b) { return _mm256_max_ps(a, b); }
};

const KernelOps kOps = detail::make_ops<Avx2V>("avx2");

}  // namespace

const KernelOps* avx2_ops() { return &kOps; }

}  // namespace chambolle::kernels

#else  // !__AVX2__

namespace chambolle::kernels {
const KernelOps* avx2_ops() { return nullptr; }
}  // namespace chambolle::kernels

#endif
