// kernel_sse2.cpp — 4-lane SSE2 backend.
//
// SSE2 is the x86-64 baseline ISA, so this backend exists on every x86-64
// build; sqrtps/divps are IEEE correctly rounded, which keeps the lanes
// bit-exact with the scalar path.  Negation is a sign-bit XOR, matching the
// scalar unary minus exactly (including on zeros).
#include "kernels/backend_impl.hpp"
#include "kernels/backend_registry.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace chambolle::kernels {
namespace {

struct Sse2V {
  static constexpr int kLanes = 4;
  using reg = __m128;
  static reg loadu(const float* p) { return _mm_loadu_ps(p); }
  static void storeu(float* p, reg v) { _mm_storeu_ps(p, v); }
  static reg set1(float x) { return _mm_set1_ps(x); }
  static reg zero() { return _mm_setzero_ps(); }
  static reg add(reg a, reg b) { return _mm_add_ps(a, b); }
  static reg sub(reg a, reg b) { return _mm_sub_ps(a, b); }
  static reg mul(reg a, reg b) { return _mm_mul_ps(a, b); }
  static reg div(reg a, reg b) { return _mm_div_ps(a, b); }
  static reg sqrt(reg a) { return _mm_sqrt_ps(a); }
  static reg neg(reg a) { return _mm_xor_ps(a, _mm_set1_ps(-0.f)); }
  static reg max(reg a, reg b) { return _mm_max_ps(a, b); }
};

const KernelOps kOps = detail::make_ops<Sse2V>("sse2");

}  // namespace

const KernelOps* sse2_ops() { return &kOps; }

}  // namespace chambolle::kernels

#else  // !__SSE2__

namespace chambolle::kernels {
const KernelOps* sse2_ops() { return nullptr; }
}  // namespace chambolle::kernels

#endif
