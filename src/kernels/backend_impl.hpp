// backend_impl.hpp — the generic row-primitive implementation, shared by
// every backend TU.
//
// Each backend translation unit defines a vector traits struct V (lane
// count, loads/stores, IEEE add/sub/mul/div/sqrt, sign-flip negation) and
// instantiates make_ops<V>().  The scalar backend is the same template with
// a 1-lane traits struct, so scalar and SIMD share one control structure by
// construction.
//
// Interior/border split: each row is emitted as
//     [c == 0]  [vector interior c in 1 .. cols-2]  [scalar tail]  [c == cols-1]
// so the vector loop carries NO border predicates at all.  The scalar border
// cells and the tail use kernels::div_p / kernels::dual_update — the same
// inline functions the merged cone walker uses — and the vector lanes apply
// the identical IEEE operations in the identical order, which keeps every
// backend bit-exact with the seed solver (the repo compiles with
// -ffp-contract=off; nothing here may introduce an FMA or a reciprocal
// approximation).
#pragma once

#include <cmath>

#include "kernels/kernel.hpp"
#include "kernels/scalar_ops.hpp"

namespace chambolle::kernels::detail {

// Emits div p for one row through two callbacks: emit_v(c, vec) covers
// V::kLanes interior cells starting at c, emit_s(c, div) one border/tail
// cell.  kBottom/kHaveUp hoist the row-uniform dy mode out of the loop:
//   dy = kBottom ? -up : py[c] - up,   up = kHaveUp ? py_up[c] : 0.
template <class V, bool kBottom, bool kHaveUp, class EmitV, class EmitS>
inline void div_sweep(const float* px, const float* py, const float* py_up,
                      int cols, bool at_left, bool at_right, EmitV&& emit_v,
                      EmitS&& emit_s) {
  const auto dy_s = [&](int c) {
    const float up = kHaveUp ? py_up[c] : 0.f;
    return kBottom ? -up : py[c] - up;
  };
  // c == 0: the west neighbor is outside the buffer.  The frame-left rule
  // (dx = px) and the halo rule (dx = px - 0) agree bitwise, so the only
  // distinct case is a 1-column window pinned to the frame's right border,
  // where the right rule negates the missing neighbor: dx = -(0.f).
  const float dx0 = (!at_left && at_right && cols == 1) ? -0.f : px[0];
  emit_s(0, dx0 + dy_s(0));
  if (cols == 1) return;
  const int last = cols - 1;
  int c = 1;
  for (; c + V::kLanes <= last; c += V::kLanes) {
    const auto dx = V::sub(V::loadu(px + c), V::loadu(px + c - 1));
    const auto up = kHaveUp ? V::loadu(py_up + c) : V::zero();
    const auto dy = kBottom ? V::neg(up) : V::sub(V::loadu(py + c), up);
    emit_v(c, V::add(dx, dy));
  }
  for (; c < last; ++c) emit_s(c, (px[c] - px[c - 1]) + dy_s(c));
  const float dx_last = at_right ? -px[last - 1] : px[last] - px[last - 1];
  emit_s(last, dx_last + dy_s(last));
}

template <class V, bool kBottom, bool kHaveUp>
void term_row_t(const TermRowArgs& a) {
  const auto vt = V::set1(a.inv_theta);
  const float* v = a.v;
  float* term = a.term;
  div_sweep<V, kBottom, kHaveUp>(
      a.px, a.py, a.py_up, a.cols, a.at_left, a.at_right,
      [&](int c, typename V::reg d) {
        V::storeu(term + c, V::sub(d, V::mul(V::loadu(v + c), vt)));
      },
      [&](int c, float d) { term[c] = d - v[c] * a.inv_theta; });
}

template <class V>
void term_row_impl(const TermRowArgs& a) {
  // Bottom-border rule only when the row is not ALSO the frame top (1-row
  // frame): top precedence, seed branch order.
  const bool bottom = a.at_bottom && !a.at_top;
  if (bottom)
    a.py_up != nullptr ? term_row_t<V, true, true>(a)
                       : term_row_t<V, true, false>(a);
  else
    a.py_up != nullptr ? term_row_t<V, false, true>(a)
                       : term_row_t<V, false, false>(a);
}

template <class V, bool kBottom, bool kHaveUp>
void recover_row_t(const RecoverRowArgs& a) {
  const auto th = V::set1(a.theta);
  const float* v = a.v;
  float* u = a.u;
  div_sweep<V, kBottom, kHaveUp>(
      a.px, a.py, a.py_up, a.cols, a.at_left, a.at_right,
      [&](int c, typename V::reg d) {
        V::storeu(u + c, V::sub(V::loadu(v + c), V::mul(th, d)));
      },
      [&](int c, float d) { u[c] = v[c] - a.theta * d; });
}

template <class V>
void recover_row_impl(const RecoverRowArgs& a) {
  const bool bottom = a.at_bottom && !a.at_top;
  if (bottom)
    a.py_up != nullptr ? recover_row_t<V, true, true>(a)
                       : recover_row_t<V, true, false>(a);
  else
    a.py_up != nullptr ? recover_row_t<V, false, true>(a)
                       : recover_row_t<V, false, false>(a);
}

template <class V, bool kHaveDown, bool kResidual>
void update_row_t(const UpdateRowArgs& a) {
  const int last = a.cols - 1;
  float* px = a.px;
  float* py = a.py;
  const float* term = a.term;
  const float* down = a.term_down;
  const auto stepv = V::set1(a.step);
  const auto onev = V::set1(1.f);
  // Residual accumulators (dead code when !kResidual): the vector lanes max
  // |dp| of interior cells, the scalar cell covers borders and the tail.
  // abs is max(x, -x) — bit-clean for the signed zeros the update produces.
  auto accv = V::zero();
  float accs = 0.f;
  int c = 0;
  for (; c + V::kLanes <= last; c += V::kLanes) {
    const auto t = V::loadu(term + c);
    const auto t1 = V::sub(V::loadu(term + c + 1), t);
    const auto t2 = kHaveDown ? V::sub(V::loadu(down + c), t) : V::zero();
    const auto grad = V::sqrt(V::add(V::mul(t1, t1), V::mul(t2, t2)));
    const auto denom = V::add(onev, V::mul(stepv, grad));
    const auto px_old = V::loadu(px + c);
    const auto py_old = V::loadu(py + c);
    const auto px_new = V::div(V::add(px_old, V::mul(stepv, t1)), denom);
    const auto py_new = V::div(V::add(py_old, V::mul(stepv, t2)), denom);
    V::storeu(px + c, px_new);
    V::storeu(py + c, py_new);
    if (kResidual) {
      const auto dx = V::sub(px_new, px_old);
      const auto dy = V::sub(py_new, py_old);
      accv = V::max(accv, V::max(V::max(dx, V::neg(dx)),
                                 V::max(dy, V::neg(dy))));
    }
  }
  for (; c < last; ++c) {
    const DualUpdate u =
        dual_update(px[c], py[c], term[c], term[c + 1],
                    kHaveDown ? down[c] : 0.f, false, !kHaveDown, a.step);
    if (kResidual)
      accs = std::max(accs, std::max(std::fabs(u.px - px[c]),
                                     std::fabs(u.py - py[c])));
    px[c] = u.px;
    py[c] = u.py;
  }
  // c == last: ForwardX is 0 (buffer edge == frame right border here).
  const DualUpdate u =
      dual_update(px[last], py[last], term[last], 0.f,
                  kHaveDown ? down[last] : 0.f, true, !kHaveDown, a.step);
  if (kResidual) {
    accs = std::max(accs, std::max(std::fabs(u.px - px[last]),
                                   std::fabs(u.py - py[last])));
    float lanes[static_cast<std::size_t>(V::kLanes)];
    V::storeu(lanes, accv);
    for (int i = 0; i < V::kLanes; ++i) accs = std::max(accs, lanes[i]);
    *a.max_dp = std::max(*a.max_dp, accs);
  }
  px[last] = u.px;
  py[last] = u.py;
}

template <class V>
void update_row_impl(const UpdateRowArgs& a) {
  if (a.max_dp != nullptr)
    a.term_down != nullptr ? update_row_t<V, true, true>(a)
                           : update_row_t<V, false, true>(a);
  else
    a.term_down != nullptr ? update_row_t<V, true, false>(a)
                           : update_row_t<V, false, false>(a);
}

template <class V>
constexpr KernelOps make_ops(const char* name) {
  return KernelOps{name, V::kLanes, &term_row_impl<V>, &update_row_impl<V>,
                   &recover_row_impl<V>};
}

}  // namespace chambolle::kernels::detail
