// kernel_avx512.cpp — 16-lane AVX-512F backend with masked border handling.
//
// Unlike the other SIMD backends (which share backend_impl.hpp's
// [c==0][vector interior][scalar tail][c==cols-1] emission scheme), this TU
// processes every row as a sequence of 16-lane chunks under write masks:
//
//   * the row tail is a masked chunk, not a scalar loop — narrow tiles and
//     halo windows (where the scalar tail dominates the other backends)
//     vectorize fully;
//   * the border special cases are LANE masks computed once per row:
//       - c == 0: the west neighbor is zero-masked out of the px_left load
//         (the frame-left rule dx = px and the halo rule dx = px - 0 agree
//         bitwise, exactly as backend_impl.hpp's scalar cell exploits);
//       - c == cols-1 on a right-border row: dx = -px[last-1] is a sign-bit
//         XOR blended into the last lane — NOT 0 - px[last-1], which would
//         flip the sign of the seed's -0.f when px[last-1] == +0.f;
//       - ForwardX at the last column: term1 is zero-MASKED to +0.f, again
//         matching the seed's literal 0.f rather than computing t[last+1]-t
//         with a garbage operand.
//
// Masked loads (_mm512_maskz_loadu_ps) are architecturally non-faulting on
// masked-out lanes, so chunks may straddle the end of a row allocation.
// Only vsqrtps/vdivps (both IEEE correctly rounded) touch the data — never
// approximations, never FMA (the repo builds with -ffp-contract=off and GCC
// does not contract explicit intrinsics under it) — so all 16 lanes are
// bit-exact with the scalar path.
#include "kernels/backend_registry.hpp"
#include "kernels/kernel.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <algorithm>

// GCC's _mm512_undefined_ps() (used inside the intrinsics header by the
// unmasked sqrt/load forms) trips -Wmaybe-uninitialized; header-internal
// noise, not a defect in this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace chambolle::kernels {
namespace {

constexpr int kLanes = 16;

// Lane mask for columns [c, c + 16) of a cols-wide row.
inline __mmask16 row_mask(int c, int cols) {
  const int active = std::min(kLanes, cols - c);
  return static_cast<__mmask16>((1u << active) - 1u);
}

// Sign-bit XOR negation (AVX512F has no _mm512_xor_ps; that is DQ).
inline __m512 neg(__m512 a) {
  return _mm512_castsi512_ps(_mm512_xor_si512(
      _mm512_castps_si512(a), _mm512_castps_si512(_mm512_set1_ps(-0.f))));
}

// div p for one 16-lane chunk at columns [c, c+16) ∩ [0, cols).
// m = lanes inside the row; py_up == nullptr means a zero halo row;
// kBottom hoists the row-uniform dy mode (at_bottom && !at_top, seed
// precedence) out of the loop exactly like backend_impl.hpp's div_sweep.
template <bool kBottom, bool kHaveUp>
inline __m512 div_chunk(int c, int cols, __mmask16 m, const float* px,
                        const float* py, const float* py_up, bool at_left,
                        bool at_right) {
  // West neighbors: lane 0 of the first chunk has none — zero-mask it out
  // of the load instead of reading px[-1].
  const __mmask16 mleft =
      c == 0 ? static_cast<__mmask16>(m & ~__mmask16(1)) : m;
  const __m512 px_l = _mm512_maskz_loadu_ps(mleft, px + c - 1);
  __m512 dx = _mm512_sub_ps(_mm512_maskz_loadu_ps(m, px + c), px_l);
  if (at_right) {
    // Right-border rule dx = -px[last-1] in the lane holding c == cols-1,
    // as a sign flip of the (possibly zero-masked) west neighbor.  The
    // seed's left-over-right precedence exempts a 1-wide frame: there
    // at_left wins and dx stays px[0].
    const int last = cols - 1;
    if (last >= c && last < c + kLanes && !(last == 0 && at_left)) {
      const __mmask16 mlast = static_cast<__mmask16>(1u << (last - c));
      dx = _mm512_mask_mov_ps(dx, mlast, neg(px_l));
    }
  }
  __m512 dy;
  if (kBottom) {
    // dy = -up; with no halo row this is -(0.f) == -0.f, the seed's bits.
    const __m512 up =
        kHaveUp ? _mm512_maskz_loadu_ps(m, py_up + c) : _mm512_setzero_ps();
    dy = neg(up);
  } else {
    const __m512 up =
        kHaveUp ? _mm512_maskz_loadu_ps(m, py_up + c) : _mm512_setzero_ps();
    dy = _mm512_sub_ps(_mm512_maskz_loadu_ps(m, py + c), up);
  }
  return _mm512_add_ps(dx, dy);
}

template <bool kBottom, bool kHaveUp>
void term_row_t(const TermRowArgs& a) {
  const __m512 vt = _mm512_set1_ps(a.inv_theta);
  for (int c = 0; c < a.cols; c += kLanes) {
    const __mmask16 m = row_mask(c, a.cols);
    const __m512 d = div_chunk<kBottom, kHaveUp>(
        c, a.cols, m, a.px, a.py, a.py_up, a.at_left, a.at_right);
    const __m512 v = _mm512_maskz_loadu_ps(m, a.v + c);
    _mm512_mask_storeu_ps(a.term + c, m,
                          _mm512_sub_ps(d, _mm512_mul_ps(v, vt)));
  }
}

void term_row_impl(const TermRowArgs& a) {
  const bool bottom = a.at_bottom && !a.at_top;
  if (bottom)
    a.py_up != nullptr ? term_row_t<true, true>(a) : term_row_t<true, false>(a);
  else
    a.py_up != nullptr ? term_row_t<false, true>(a)
                       : term_row_t<false, false>(a);
}

template <bool kBottom, bool kHaveUp>
void recover_row_t(const RecoverRowArgs& a) {
  const __m512 th = _mm512_set1_ps(a.theta);
  for (int c = 0; c < a.cols; c += kLanes) {
    const __mmask16 m = row_mask(c, a.cols);
    const __m512 d = div_chunk<kBottom, kHaveUp>(
        c, a.cols, m, a.px, a.py, a.py_up, a.at_left, a.at_right);
    const __m512 v = _mm512_maskz_loadu_ps(m, a.v + c);
    _mm512_mask_storeu_ps(a.u + c, m,
                          _mm512_sub_ps(v, _mm512_mul_ps(th, d)));
  }
}

void recover_row_impl(const RecoverRowArgs& a) {
  const bool bottom = a.at_bottom && !a.at_top;
  if (bottom)
    a.py_up != nullptr ? recover_row_t<true, true>(a)
                       : recover_row_t<true, false>(a);
  else
    a.py_up != nullptr ? recover_row_t<false, true>(a)
                       : recover_row_t<false, false>(a);
}

template <bool kHaveDown, bool kResidual>
void update_row_t(const UpdateRowArgs& a) {
  const int last = a.cols - 1;
  const __m512 stepv = _mm512_set1_ps(a.step);
  const __m512 onev = _mm512_set1_ps(1.f);
  __m512 accv = _mm512_setzero_ps();
  for (int c = 0; c < a.cols; c += kLanes) {
    const __mmask16 m = row_mask(c, a.cols);
    // ForwardX vanishes in the lane holding the last column (buffer edge ==
    // frame right border there by construction): maskz_sub writes a literal
    // +0.f, the seed's `zero_t1 ? 0.f : ...` bits.  The term+c+1 load masks
    // that lane out too, so it never touches term[cols].
    const __mmask16 mfx =
        (last >= c && last < c + kLanes)
            ? static_cast<__mmask16>(m & ~(1u << (last - c)))
            : m;
    const __m512 t = _mm512_maskz_loadu_ps(m, a.term + c);
    const __m512 t1 = _mm512_maskz_sub_ps(
        mfx, _mm512_maskz_loadu_ps(mfx, a.term + c + 1), t);
    const __m512 t2 =
        kHaveDown
            ? _mm512_sub_ps(_mm512_maskz_loadu_ps(m, a.term_down + c), t)
            : _mm512_setzero_ps();
    const __m512 grad = _mm512_sqrt_ps(
        _mm512_add_ps(_mm512_mul_ps(t1, t1), _mm512_mul_ps(t2, t2)));
    const __m512 denom = _mm512_add_ps(onev, _mm512_mul_ps(stepv, grad));
    const __m512 px_old = _mm512_maskz_loadu_ps(m, a.px + c);
    const __m512 py_old = _mm512_maskz_loadu_ps(m, a.py + c);
    const __m512 px_new =
        _mm512_div_ps(_mm512_add_ps(px_old, _mm512_mul_ps(stepv, t1)), denom);
    const __m512 py_new =
        _mm512_div_ps(_mm512_add_ps(py_old, _mm512_mul_ps(stepv, t2)), denom);
    _mm512_mask_storeu_ps(a.px + c, m, px_new);
    _mm512_mask_storeu_ps(a.py + c, m, py_new);
    if (kResidual) {
      // |dp| as max(x, -x) (bit-clean for signed zeros), accumulated only
      // over in-row lanes.
      const __m512 dx = _mm512_sub_ps(px_new, px_old);
      const __m512 dy = _mm512_sub_ps(py_new, py_old);
      const __m512 ax = _mm512_max_ps(dx, neg(dx));
      const __m512 ay = _mm512_max_ps(dy, neg(dy));
      accv = _mm512_mask_max_ps(accv, m, accv, _mm512_max_ps(ax, ay));
    }
  }
  if (kResidual)
    *a.max_dp = std::max(*a.max_dp, _mm512_reduce_max_ps(accv));
}

void update_row_impl(const UpdateRowArgs& a) {
  if (a.max_dp != nullptr)
    a.term_down != nullptr ? update_row_t<true, true>(a)
                           : update_row_t<false, true>(a);
  else
    a.term_down != nullptr ? update_row_t<true, false>(a)
                           : update_row_t<false, false>(a);
}

const KernelOps kOps = {"avx512", kLanes, &term_row_impl, &update_row_impl,
                        &recover_row_impl};

}  // namespace

const KernelOps* avx512_ops() { return &kOps; }

}  // namespace chambolle::kernels

#else  // !__AVX512F__

namespace chambolle::kernels {
const KernelOps* avx512_ops() { return nullptr; }
}  // namespace chambolle::kernels

#endif
