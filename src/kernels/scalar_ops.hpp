// scalar_ops.hpp — the per-element Chambolle update math, defined ONCE.
//
// Every engine in the repo (reference solver, row-parallel, tiled, merged
// cone walker, and the scalar borders/tails of the SIMD backends) expresses
// Algorithm 1 through these two inline functions, so a fix to the arithmetic
// lands everywhere at the same time.  The expressions are kept literally
// identical to the seed solver — including which operand order produces
// which signed zero — because the repo's bit-exactness guarantees (tiled ==
// sequential, SIMD == scalar) compare raw float bit patterns.
#pragma once

#include <cmath>

namespace chambolle::kernels {

/// One-sided divergence (div p) at a single cell (Algorithm 1, line 2).
///
/// `px_left` / `py_up` are the west / north neighbors (pass 0.f when the
/// neighbor lies outside the buffer: the cell is then a halo cell whose
/// value only has to be defined, not correct).  The `at_*` flags describe
/// the *frame* borders; when a cell is both at the left and right (or top
/// and bottom) frame border of a 1-wide frame, the left (top) rule wins,
/// matching the seed solver's branch order.
inline float div_p(float px_c, float px_left, float py_c, float py_up,
                   bool at_left, bool at_right, bool at_top, bool at_bottom) {
  float dx;
  if (at_left)
    dx = px_c;
  else if (at_right)
    dx = -px_left;
  else
    dx = px_c - px_left;
  float dy;
  if (at_top)
    dy = py_c;
  else if (at_bottom)
    dy = -py_up;
  else
    dy = py_c - py_up;
  return dx + dy;
}

/// Result of one projected dual ascent step at a cell.
struct DualUpdate {
  float px;
  float py;
};

/// Algorithm 1, lines 4-8: forward differences of Term, gradient magnitude,
/// and the projected dual update.  `zero_t1` / `zero_t2` force the forward
/// difference to 0 at the far frame border (the operand `t_right` / `t_down`
/// is ignored there, so callers with lazily materialized Terms may pass 0).
inline DualUpdate dual_update(float px, float py, float t, float t_right,
                              float t_down, bool zero_t1, bool zero_t2,
                              float step) {
  const float term1 = zero_t1 ? 0.f : t_right - t;
  const float term2 = zero_t2 ? 0.f : t_down - t;
  const float grad = std::sqrt(term1 * term1 + term2 * term2);
  const float denom = 1.f + step * grad;
  return {(px + step * term1) / denom, (py + step * term2) / denom};
}

}  // namespace chambolle::kernels
