// kernel.hpp — the vectorized fused iteration kernel layer.
//
// This is the ONE hot path of the repo: every solver engine (reference,
// tiled sliding-window, row-parallel, TV-L1 inner solves) funnels its
// per-element Chambolle arithmetic through the row primitives declared
// here.  The layer provides three things the seed inner loop lacked:
//
//  * an interior/border split — all frame-border and halo predicates are
//    hoisted out of the per-element loop, so the interior runs branch-free;
//  * pass fusion — iterate_region_fused() keeps a rolling window of two
//    Term rows (current + next) instead of materializing a full Term frame,
//    one cache-friendly sweep per iteration (the software analogue of the
//    paper's BRAM-Term forwarding between the PE-T and PE-V stages);
//  * SIMD backends — AVX2, SSE2 and NEON intrinsics plus a portable scalar
//    fallback, selected once per process by runtime CPU dispatch
//    (cpuid / hwcaps) with a CHAMBOLLE_KERNEL environment override.
//
// All backends use IEEE-exact vector sqrt/div and the same operation order
// as the seed scalar loop, so every backend produces bit-identical px/py.
// See docs/kernels.md for the dispatch order and the fusion scheme.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "common/image.hpp"

namespace chambolle {

/// Geometry of a window into a frame: the buffer holds rows
/// [row0, row0+rows) x [col0, col0+cols) of a frame_rows x frame_cols frame.
/// Boundary special cases apply where the *absolute* coordinate touches the
/// frame border; buffer-internal edges that are not frame borders read
/// whatever halo data the buffer holds.  (Defined here with the kernel layer
/// that interprets it; chambolle/solver.hpp re-exports it unchanged.)
struct RegionGeometry {
  int row0 = 0;
  int col0 = 0;
  int frame_rows = 0;
  int frame_cols = 0;

  /// Geometry for a buffer that IS the whole frame.
  static RegionGeometry full_frame(int rows, int cols) {
    return {0, 0, rows, cols};
  }
};

namespace kernels {

/// The SIMD backends, in dispatch-preference order (highest wins).
enum class Backend { kScalar = 0, kSse2 = 1, kNeon = 2, kAvx2 = 3, kAvx512 = 4 };

/// Arguments of the Term-row primitive (Algorithm 1, lines 2-3):
///   term[c] = div p(r, c) - v[c] / theta        for one buffer row r.
/// Pointers address row r of the respective buffers; py_up is row r-1 of py
/// or nullptr (the missing halo neighbor reads as 0).  The at_* flags are
/// the raw frame-border facts of this row/window; border precedence (left
/// over right, top over bottom, matching the seed branch order) is resolved
/// inside the primitive.
struct TermRowArgs {
  const float* px = nullptr;
  const float* py = nullptr;
  const float* py_up = nullptr;  // nullptr => halo row of zeros
  const float* v = nullptr;
  float* term = nullptr;
  int cols = 0;
  float inv_theta = 0.f;
  bool at_left = false;    // absolute col of c==0 is 0
  bool at_right = false;   // absolute col of c==cols-1 is frame_cols-1
  bool at_top = false;     // absolute row is 0
  bool at_bottom = false;  // absolute row is frame_rows-1
};

/// Arguments of the dual-update primitive (Algorithm 1, lines 4-8) for one
/// row: forward differences of Term, gradient magnitude, projected update.
/// term_down is Term row r+1 or nullptr (then ForwardY == 0, i.e. the row
/// is the last buffer row or the frame bottom).  ForwardX is 0 at the last
/// column unconditionally — the buffer edge and the frame right border
/// coincide there by construction.
struct UpdateRowArgs {
  float* px = nullptr;
  float* py = nullptr;
  const float* term = nullptr;       // Term row r
  const float* term_down = nullptr;  // Term row r+1, or nullptr => 0
  int cols = 0;
  float step = 0.f;  // tau / theta
  /// When non-null, the primitive additionally maxes |p_new - p_old| over
  /// both components of the row into *max_dp (caller initializes it).  The
  /// dual arithmetic is bit-identical either way; the residual rides the
  /// registers already loaded, so the row is still a single sweep.
  float* max_dp = nullptr;
};

/// Arguments of the primal-recovery primitive (Algorithm 1, line 9):
///   u[c] = v[c] - theta * div p(r, c)            for one buffer row r.
/// Same row/border conventions as TermRowArgs.
struct RecoverRowArgs {
  const float* px = nullptr;
  const float* py = nullptr;
  const float* py_up = nullptr;
  const float* v = nullptr;
  float* u = nullptr;
  int cols = 0;
  float theta = 0.f;
  bool at_left = false;
  bool at_right = false;
  bool at_top = false;
  bool at_bottom = false;
};

/// One backend's row primitives.  The function pointers are hot-loop-free to
/// call per row (a frame row is hundreds of cells); the region drivers below
/// add the per-row geometry bookkeeping.
struct KernelOps {
  const char* name = "";
  int lanes = 1;  // SIMD width in floats
  void (*term_row)(const TermRowArgs&) = nullptr;
  void (*update_row)(const UpdateRowArgs&) = nullptr;
  void (*recover_row)(const RecoverRowArgs&) = nullptr;
};

/// Human-readable backend name ("scalar", "sse2", "neon", "avx2", "avx512").
[[nodiscard]] const char* backend_name(Backend b);

/// Parses a backend name (as accepted by CHAMBOLLE_KERNEL and --kernel);
/// nullopt for unknown strings.  "auto" is not a backend and parses to
/// nullopt — callers treat it (and unset) as "use the dispatch order".
[[nodiscard]] std::optional<Backend> parse_backend(std::string_view name);

/// True when the backend is both compiled in and supported by this CPU
/// (cpuid on x86, hwcaps on AArch64).  kScalar is always available.
[[nodiscard]] bool backend_available(Backend b);

/// All available backends, dispatch-preference order (best first).
[[nodiscard]] std::vector<Backend> available_backends();

/// The backend the kernel layer currently runs on.  Resolution order:
/// programmatic force_backend() > CHAMBOLLE_KERNEL environment variable >
/// best available by CPU dispatch.  An unknown or unavailable
/// CHAMBOLLE_KERNEL value is a hard error (std::invalid_argument listing
/// the backends available on this machine) — a typo'd override must not
/// silently run a different backend than the operator asked for.  The
/// choice is exported as the `kernel.backend` gauge.
[[nodiscard]] Backend active_backend();

/// Row primitives of active_backend().
[[nodiscard]] const KernelOps& ops();

/// Row primitives of a specific backend; throws std::invalid_argument when
/// it is not available on this machine.
[[nodiscard]] const KernelOps& ops_for(Backend b);

/// Forces the active backend (tests, bench sweeps, --kernel CLI flag).
/// Throws std::invalid_argument when unavailable.
void force_backend(Backend b);

/// Name-taking convenience overload: parses and forces in one step, with
/// the same hard-reject contract as the CHAMBOLLE_KERNEL override — throws
/// std::invalid_argument naming the offender and listing the backends
/// available on this machine.
void force_backend(std::string_view name);

/// Clears a force_backend() override; the next ops() call re-resolves from
/// the environment + CPU dispatch.
void reset_backend();

/// Runs `iterations` fused Chambolle iterations in place on (px, py) over
/// the window described by `geom`.  One sweep per iteration: Term rows are
/// produced into a rolling two-row buffer and consumed by the dual update
/// one row behind, so the full Term frame never exists in memory.
/// `term_rows` is resized to 2 x cols as needed (pass a reused buffer to
/// avoid per-call allocation).  Updates the `kernel.cells` counter and the
/// `kernel.cells_per_second` gauge.
///
/// When `last_iter_max_dp` is non-null it receives max |p_new - p_old| over
/// both dual components of the FINAL iteration — a single-iteration dual
/// residual, fused into the update sweep (no extra memory traversal, no
/// state copies) and invariant to how many iterations the call batches.
/// This is the convergence indicator of the adaptive solvers; px/py stay
/// bit-identical to a call without it.
void iterate_region_fused(Matrix<float>& px, Matrix<float>& py,
                          const Matrix<float>& v, const RegionGeometry& geom,
                          float inv_theta, float step, int iterations,
                          Matrix<float>& term_rows,
                          float* last_iter_max_dp = nullptr);

/// u = v - theta * div p over a window, into a caller-provided output
/// (resized as needed — pass a preallocated matrix to avoid the per-frame
/// allocation the seed recover_u paid).
void recover_u_into(const Matrix<float>& v, const Matrix<float>& px,
                    const Matrix<float>& py, const RegionGeometry& geom,
                    float theta, Matrix<float>& out);

}  // namespace kernels
}  // namespace chambolle
