// backend_registry.hpp — internal: per-backend KernelOps accessors.
//
// Each backend TU returns its ops table, or nullptr when the backend is not
// compiled in (wrong architecture, or the compiler lacks the ISA flag).
// The dispatcher in kernel.cpp combines these with runtime CPU detection.
#pragma once

#include "kernels/kernel.hpp"

namespace chambolle::kernels {

const KernelOps* scalar_ops();
const KernelOps* sse2_ops();
const KernelOps* avx2_ops();
const KernelOps* avx512_ops();
const KernelOps* neon_ops();

}  // namespace chambolle::kernels
