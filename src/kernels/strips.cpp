#include "kernels/strips.hpp"

#include <cassert>
#include <cstring>

namespace chambolle::kernels {

void gather_rect(const Matrix<float>& src, int r0, int c0, int rows, int cols,
                 float* dst) {
  assert(r0 >= 0 && c0 >= 0 && r0 + rows <= src.rows() &&
         c0 + cols <= src.cols());
  const std::size_t bytes = static_cast<std::size_t>(cols) * sizeof(float);
  const float* in = src.data().data() +
                    static_cast<std::size_t>(r0) * src.cols() + c0;
  for (int r = 0; r < rows; ++r) {
    std::memcpy(dst, in, bytes);
    dst += cols;
    in += src.cols();
  }
}

void scatter_rect(const float* src, Matrix<float>& dst, int r0, int c0,
                  int rows, int cols) {
  assert(r0 >= 0 && c0 >= 0 && r0 + rows <= dst.rows() &&
         c0 + cols <= dst.cols());
  const std::size_t bytes = static_cast<std::size_t>(cols) * sizeof(float);
  float* out = dst.data().data() +
               static_cast<std::size_t>(r0) * dst.cols() + c0;
  for (int r = 0; r < rows; ++r) {
    std::memcpy(out, src, bytes);
    src += cols;
    out += dst.cols();
  }
}

void copy_rect(const Matrix<float>& src, int src_r0, int src_c0,
               Matrix<float>& dst, int dst_r0, int dst_c0, int rows,
               int cols) {
  assert(src_r0 >= 0 && src_c0 >= 0 && src_r0 + rows <= src.rows() &&
         src_c0 + cols <= src.cols());
  assert(dst_r0 >= 0 && dst_c0 >= 0 && dst_r0 + rows <= dst.rows() &&
         dst_c0 + cols <= dst.cols());
  const std::size_t bytes = static_cast<std::size_t>(cols) * sizeof(float);
  const float* in = src.data().data() +
                    static_cast<std::size_t>(src_r0) * src.cols() + src_c0;
  float* out = dst.data().data() +
               static_cast<std::size_t>(dst_r0) * dst.cols() + dst_c0;
  for (int r = 0; r < rows; ++r) {
    std::memcpy(out, in, bytes);
    in += src.cols();
    out += dst.cols();
  }
}

}  // namespace chambolle::kernels
