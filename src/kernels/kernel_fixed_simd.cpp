// kernel_fixed_simd.cpp — 8-lane AVX2 implementation of the Q24.8 datapath.
//
// Bit-equality with the scalar fxdp:: path is the design constraint, and it
// forces three non-obvious choices:
//
//  * 32-bit lanes, not the 16-bit saturating family: Term values reach
//    ~+-2^14 and Term differences ~+-2^15, so the squared-gradient products
//    and the division numerators overflow int16 semantics — a 16-lane
//    _mm256_adds_epi16 datapath could not reproduce the scalar int32/int64
//    arithmetic bit-for-bit.  8 wide and exact beats 16 wide and wrong.
//
//  * fx::div (truncation toward zero, denominator >= kOne > 0) has no SIMD
//    integer instruction.  The lanes convert to double — exact for any
//    int32 — divide, truncate, and then apply an exact +-1 correction
//    computed from the remainder n - q*b.  Every intermediate is an
//    integer below 2^53, so the double multiply/subtract are exact and one
//    correction step provably suffices (the correctly rounded quotient
//    truncates to within 1 of the true quotient).
//
//  * lut_sqrt's window selection needs the MSB position.  Converting to
//    FLOAT would round (2^24 - 1 rounds up and shifts the window); the
//    lanes convert to double instead and read the MSB straight out of the
//    exponent field, then reproduce select_sqrt_window's odd-alignment
//    rule — lo = max(0, odd_adjusted(msb - 7)) also covers the raw < 256
//    short-circuit branch — with variable shifts and a table gather.
#include "kernels/kernel_fixed_simd.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "fixedpoint/lut_sqrt.hpp"
#include "fixedpoint/packed_word.hpp"
#include "fixedpoint/qformat.hpp"
#include "telemetry/metrics.hpp"

namespace chambolle::kernels::fixed {
namespace {

bool simd_compiled() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

bool cpu_supports_simd() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

std::string available_backend_list() {
  std::string out;
  for (Backend b : available_backends()) {
    if (!out.empty()) out += ", ";
    out += backend_name(b);
  }
  return out;
}

Backend parse_backend_checked(std::string_view name, const char* what) {
  const std::optional<Backend> req = parse_backend(name);
  if (!req.has_value())
    throw std::invalid_argument(std::string("kernels: ") + what + "=" +
                                std::string(name) +
                                " is not a known fixed-point backend "
                                "(available: " +
                                available_backend_list() + ", or auto)");
  if (!backend_available(*req))
    throw std::invalid_argument(std::string("kernels: ") + what + "=" +
                                std::string(name) +
                                " is not available on this machine "
                                "(available: " +
                                available_backend_list() + ", or auto)");
  return *req;
}

// -1 = unresolved; resolution is idempotent, same benign-race contract as
// the float dispatcher.
std::atomic<int> g_backend{-1};

void export_choice(Backend b) {
  telemetry::registry()
      .gauge("kernel.fixed.backend")
      .set(static_cast<double>(b));
}

Backend resolve_backend() {
  if (const char* env = std::getenv("CHAMBOLLE_FIXED_KERNEL");
      env != nullptr && *env != '\0' && std::string_view(env) != "auto")
    return parse_backend_checked(env, "CHAMBOLLE_FIXED_KERNEL");
  for (Backend b : {Backend::kSimd, Backend::kScalar})
    if (backend_available(b)) return b;
  return Backend::kScalar;
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSimd:
      return "simd";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "simd") return Backend::kSimd;
  return std::nullopt;
}

bool backend_available(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSimd:
      return simd_compiled() && cpu_supports_simd();
  }
  return false;
}

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::kSimd, Backend::kScalar})
    if (backend_available(b)) out.push_back(b);
  return out;
}

Backend active_backend() {
  int cur = g_backend.load(std::memory_order_acquire);
  if (cur < 0) {
    const Backend resolved = resolve_backend();
    cur = static_cast<int>(resolved);
    int expected = -1;
    if (g_backend.compare_exchange_strong(expected, cur,
                                          std::memory_order_acq_rel))
      export_choice(resolved);
    else
      cur = expected;
  }
  return static_cast<Backend>(cur);
}

void force_backend(Backend b) {
  if (!backend_available(b))
    throw std::invalid_argument(
        std::string("kernels: fixed-point backend ") + backend_name(b) +
        " is not available on this machine (available: " +
        available_backend_list() + ")");
  g_backend.store(static_cast<int>(b), std::memory_order_release);
  export_choice(b);
}

void force_backend(std::string_view name) {
  force_backend(parse_backend_checked(name, "backend"));
}

void reset_backend() { g_backend.store(-1, std::memory_order_release); }

}  // namespace chambolle::kernels::fixed

#if defined(__AVX2__)

#include <immintrin.h>

#include <array>

namespace chambolle::kernels::fixed {
namespace {

constexpr int kLanes = 8;

// sqrt_table() widened to int32 entries once, for vpgatherdd.
const std::int32_t* sqrt_table32() {
  static const std::array<std::int32_t, 256> t = [] {
    std::array<std::int32_t, 256> a{};
    const auto& s = fx::sqrt_table();
    for (int i = 0; i < 256; ++i) a[static_cast<std::size_t>(i)] = s[i];
    return a;
  }();
  return t.data();
}

const __m256i kIota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);

// All-ones in lanes i with i < n (n <= 8): the maskload/maskstore masks and
// the lane predicates.
inline __m256i lanes_below(int n) {
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(n), kIota);
}

// fx::mul on 8 lanes: (int64(a) * int64(b)) >> 8, truncated to int32.  The
// int32 result keeps bits 8..39 of the product, so the logical 64-bit
// shift is equivalent to the scalar arithmetic shift.
inline __m256i mul_q(__m256i a, __m256i b) {
  const __m256i even = _mm256_srli_epi64(_mm256_mul_epi32(a, b), 8);
  const __m256i odd = _mm256_srli_epi64(
      _mm256_mul_epi32(_mm256_srli_epi64(a, 32), _mm256_srli_epi64(b, 32)), 8);
  return _mm256_blend_epi32(even, _mm256_slli_epi64(odd, 32), 0xAA);
}

// Low dwords of the four 64-bit lanes, compressed to 4 int32 lanes.
inline __m128i low_dwords(__m256i x) {
  return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
      x, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)));
}

// fx::div on 4 lanes: trunc((int64(a) << 8) / b), b > 0.  Exact via double
// division plus a +-1 correction — see the file comment for the proof.
inline __m128i div_q4(__m128i a, __m128i b) {
  const __m256d bd = _mm256_cvtepi32_pd(b);
  const __m256d n =
      _mm256_mul_pd(_mm256_cvtepi32_pd(a), _mm256_set1_pd(256.0));
  const __m128i q0 = _mm256_cvttpd_epi32(_mm256_div_pd(n, bd));
  const __m256d r =
      _mm256_sub_pd(n, _mm256_mul_pd(_mm256_cvtepi32_pd(q0), bd));
  const __m256d zero = _mm256_setzero_pd();
  const __m256d n_neg = _mm256_cmp_pd(n, zero, _CMP_LT_OQ);
  // n >= 0 wants 0 <= r < b; n < 0 (trunc == ceil) wants -b < r <= 0.
  const __m256d dec = _mm256_blendv_pd(
      _mm256_cmp_pd(r, zero, _CMP_LT_OQ),
      _mm256_cmp_pd(r, _mm256_sub_pd(zero, bd), _CMP_LE_OQ), n_neg);
  const __m256d inc =
      _mm256_blendv_pd(_mm256_cmp_pd(r, bd, _CMP_GE_OQ),
                       _mm256_cmp_pd(r, zero, _CMP_GT_OQ), n_neg);
  // dec/inc lanes are all-ones (-1): adding dec subtracts 1, subtracting
  // inc adds 1; at most one fires per lane.
  return _mm_add_epi32(
      _mm_sub_epi32(q0, low_dwords(_mm256_castpd_si256(inc))),
      low_dwords(_mm256_castpd_si256(dec)));
}

inline __m256i div_q(__m256i a, __m256i b) {
  const __m128i lo = div_q4(_mm256_castsi256_si128(a),
                            _mm256_castsi256_si128(b));
  const __m128i hi = div_q4(_mm256_extracti128_si256(a, 1),
                            _mm256_extracti128_si256(b, 1));
  return _mm256_set_m128i(hi, lo);
}

// IEEE double exponent fields of 4 int32 lanes == MSB positions (int32 ->
// double is exact; nonnegative inputs keep the sign bit clear, so the
// logical shift exposes the biased exponent directly).
inline __m128i biased_exp4(__m128i x) {
  return low_dwords(
      _mm256_srli_epi64(_mm256_castpd_si256(_mm256_cvtepi32_pd(x)), 52));
}

// lut_sqrt on 8 nonnegative lanes, bit-identical to lut_sqrt.cpp: the
// even-aligned window lo = max(0, odd_adjusted(msb - 7)) — the max also
// reproduces the raw < 256 short-circuit (m = raw, k = 0), and raw == 0
// (biased exponent 0) lands there too.
inline __m256i lut_sqrt8(__m256i raw) {
  const __m256i biased = _mm256_set_m128i(
      biased_exp4(_mm256_extracti128_si256(raw, 1)),
      biased_exp4(_mm256_castsi256_si128(raw)));
  const __m256i lo0 =
      _mm256_sub_epi32(biased, _mm256_set1_epi32(1023 + 7));  // msb - 7
  const __m256i lo_adj =
      _mm256_add_epi32(lo0, _mm256_and_si256(lo0, _mm256_set1_epi32(1)));
  const __m256i lo = _mm256_max_epi32(lo_adj, _mm256_setzero_si256());
  const __m256i m = _mm256_and_si256(_mm256_srlv_epi32(raw, lo),
                                     _mm256_set1_epi32(0xFF));
  const __m256i entry = _mm256_i32gather_epi32(sqrt_table32(), m, 4);
  return _mm256_sllv_epi32(entry, _mm256_srli_epi32(lo, 1));  // entry << k
}

// fx::saturate_bits(x, kPBits): clamp to the 9-bit Q1.8 BRAM range.
inline __m256i sat_p(__m256i x) {
  const __m256i hi = _mm256_set1_epi32((1 << (fx::kPBits - 1)) - 1);
  const __m256i lo = _mm256_set1_epi32(-(1 << (fx::kPBits - 1)));
  return _mm256_min_epi32(_mm256_max_epi32(x, lo), hi);
}

enum class DyMode { kFirst, kLast, kMid };  // fxdp::pe_t_op's dy branches

// Term pass for one row: term = div p - mul(v, inv_theta).
template <DyMode kDy, bool kHaveUp>
void term_row(const std::int32_t* px, const std::int32_t* py,
              const std::int32_t* py_up, const std::int32_t* v,
              std::int32_t* term, int cols, bool at_left, bool at_right,
              __m256i inv_theta_v) {
  const int last = cols - 1;
  for (int c = 0; c < cols; c += kLanes) {
    const __m256i m = lanes_below(cols - c);
    // West neighbor: lane 0 of chunk 0 reads as 0, exactly the scalar
    // c > 0 ? px[c-1] : 0 — which already makes dx = c_px - l_px correct
    // for BOTH the first_col frame rule and a halo window's left edge.
    const __m256i mleft =
        c == 0 ? _mm256_andnot_si256(
                     _mm256_setr_epi32(-1, 0, 0, 0, 0, 0, 0, 0), m)
               : m;
    const __m256i l_px = _mm256_maskload_epi32(px + c - 1, mleft);
    __m256i c_px = _mm256_maskload_epi32(px + c, m);
    if (at_right && last >= c && last < c + kLanes &&
        !(last == 0 && at_left)) {
      // last_col rule dx = -l_px: zero c_px in the lane holding the frame's
      // right border (first_col precedence exempts a 1-wide frame).
      const __m256i mlast =
          _mm256_cmpeq_epi32(kIota, _mm256_set1_epi32(last - c));
      c_px = _mm256_andnot_si256(mlast, c_px);
    }
    const __m256i dx = _mm256_sub_epi32(c_px, l_px);
    const __m256i c_py = _mm256_maskload_epi32(py + c, m);
    const __m256i a_py = kHaveUp ? _mm256_maskload_epi32(py_up + c, m)
                                 : _mm256_setzero_si256();
    __m256i dy;
    if constexpr (kDy == DyMode::kFirst)
      dy = c_py;
    else if constexpr (kDy == DyMode::kLast)
      dy = _mm256_sub_epi32(_mm256_setzero_si256(), a_py);
    else
      dy = _mm256_sub_epi32(c_py, a_py);
    const __m256i div_p = _mm256_add_epi32(dx, dy);
    const __m256i vv = _mm256_maskload_epi32(v + c, m);
    _mm256_maskstore_epi32(term + c, m,
                           _mm256_sub_epi32(div_p, mul_q(vv, inv_theta_v)));
  }
}

// Dual-update pass for one row: forward differences, LUT gradient,
// projected update, 9-bit saturation.
template <bool kHaveDown>
void update_row(std::int32_t* px, std::int32_t* py, const std::int32_t* term,
                const std::int32_t* term_down, int cols, __m256i step_v) {
  const int last = cols - 1;
  const __m256i one = _mm256_set1_epi32(fx::kOne);
  for (int c = 0; c < cols; c += kLanes) {
    const __m256i m = lanes_below(cols - c);
    // ForwardX vanishes in the lane holding the last column; the masked
    // r_term load also keeps the lanes off term[cols].
    const __m256i mfx = lanes_below(last - c);
    const __m256i c_term = _mm256_maskload_epi32(term + c, m);
    const __m256i r_term = _mm256_maskload_epi32(term + c + 1, mfx);
    const __m256i t1 =
        _mm256_and_si256(_mm256_sub_epi32(r_term, c_term), mfx);
    const __m256i t2 =
        kHaveDown ? _mm256_sub_epi32(_mm256_maskload_epi32(term_down + c, m),
                                     c_term)
                  : _mm256_setzero_si256();
    const __m256i mag =
        _mm256_add_epi32(mul_q(t1, t1), mul_q(t2, t2));
    if (_mm256_movemask_ps(_mm256_castsi256_ps(mag)) != 0)
      throw std::domain_error("lut_sqrt: negative input");
    const __m256i grad = lut_sqrt8(mag);
    const __m256i denom = _mm256_add_epi32(one, mul_q(step_v, grad));
    const __m256i c_px = _mm256_maskload_epi32(px + c, m);
    const __m256i c_py = _mm256_maskload_epi32(py + c, m);
    const __m256i px_new = sat_p(
        div_q(_mm256_add_epi32(c_px, mul_q(step_v, t1)), denom));
    const __m256i py_new = sat_p(
        div_q(_mm256_add_epi32(c_py, mul_q(step_v, t2)), denom));
    _mm256_maskstore_epi32(px + c, m, px_new);
    _mm256_maskstore_epi32(py + c, m, py_new);
  }
}

}  // namespace

bool iterate_region_simd(Matrix<std::int32_t>& px, Matrix<std::int32_t>& py,
                         const Matrix<std::int32_t>& v,
                         const RegionGeometry& geom, std::int32_t inv_theta_q,
                         std::int32_t step_q, int iterations,
                         Matrix<std::int32_t>& term_scratch) {
  if (active_backend() != Backend::kSimd) return false;
  const int rows = v.rows(), cols = v.cols();
  if (rows == 0 || cols == 0 || iterations == 0) return true;
  if (!term_scratch.same_shape(v)) term_scratch.resize(rows, cols);
  const bool at_left = geom.col0 == 0;
  const bool at_right = geom.col0 + cols == geom.frame_cols;
  const __m256i inv_theta_v = _mm256_set1_epi32(inv_theta_q);
  const __m256i step_v = _mm256_set1_epi32(step_q);

  for (int it = 0; it < iterations; ++it) {
    for (int r = 0; r < rows; ++r) {
      const int ar = geom.row0 + r;
      const bool first_row = ar == 0;
      const bool last_row = ar == geom.frame_rows - 1;
      const std::int32_t* py_up = r > 0 ? &py(r - 1, 0) : nullptr;
      std::int32_t* out = &term_scratch(r, 0);
      const auto run = [&](auto dy_tag) {
        constexpr DyMode kDy = decltype(dy_tag)::value;
        if (py_up != nullptr)
          term_row<kDy, true>(&px(r, 0), &py(r, 0), py_up, &v(r, 0), out,
                              cols, at_left, at_right, inv_theta_v);
        else
          term_row<kDy, false>(&px(r, 0), &py(r, 0), py_up, &v(r, 0), out,
                               cols, at_left, at_right, inv_theta_v);
      };
      if (first_row)
        run(std::integral_constant<DyMode, DyMode::kFirst>{});
      else if (last_row)
        run(std::integral_constant<DyMode, DyMode::kLast>{});
      else
        run(std::integral_constant<DyMode, DyMode::kMid>{});
    }
    for (int r = 0; r < rows; ++r) {
      const int ar = geom.row0 + r;
      const bool last_row = ar == geom.frame_rows - 1 || r + 1 >= rows;
      if (last_row)
        update_row<false>(&px(r, 0), &py(r, 0), &term_scratch(r, 0), nullptr,
                          cols, step_v);
      else
        update_row<true>(&px(r, 0), &py(r, 0), &term_scratch(r, 0),
                         &term_scratch(r + 1, 0), cols, step_v);
    }
  }

  static telemetry::Counter& cells =
      telemetry::registry().counter("kernel.fixed.cells");
  cells.add(static_cast<std::uint64_t>(rows) *
            static_cast<std::uint64_t>(cols) *
            static_cast<std::uint64_t>(iterations));
  return true;
}

}  // namespace chambolle::kernels::fixed

#else  // !__AVX2__

namespace chambolle::kernels::fixed {

bool iterate_region_simd(Matrix<std::int32_t>&, Matrix<std::int32_t>&,
                         const Matrix<std::int32_t>&, const RegionGeometry&,
                         std::int32_t, std::int32_t, int,
                         Matrix<std::int32_t>&) {
  return false;  // backend_available(kSimd) is false without the TU body
}

}  // namespace chambolle::kernels::fixed

#endif
