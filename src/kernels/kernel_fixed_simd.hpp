// kernel_fixed_simd.hpp — vectorized Q24.8 fixed-point Chambolle iteration.
//
// The fixed-point solver (chambolle/fixed_solver.cpp) models the paper's
// integer PE datapath: Q24.8 arithmetic, 9/13-bit BRAM saturation, and the
// 256-entry LUT square root of Section V-C.  This kernel runs that exact
// datapath on 8 x int32 AVX2 lanes — the software analogue of the paper's
// row of parallel PEs — under a bit-equality contract with the scalar
// fxdp:: path: integer math leaves no rounding freedom, so every lane must
// reproduce fx::mul's arithmetic-shift truncation, fx::div's
// truncation-toward-zero (done here as an exact double-precision division
// with a +-1 correction step), the LUT window selection of lut_sqrt.cpp
// (as an exponent-extraction + variable-shift + gather), and the border
// precedence of fxdp::pe_t_op — verified per case by the differential
// oracle.
//
// Dispatch mirrors the float layer on a smaller scale: one SIMD backend
// plus the scalar fallback (the solver's own loops), resolved from
// force_backend() > CHAMBOLLE_FIXED_KERNEL > CPU detection, with the same
// hard-reject contract for unknown or unavailable names.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/image.hpp"
#include "kernels/kernel.hpp"

namespace chambolle::kernels::fixed {

/// Fixed-point kernel backends, dispatch-preference order (highest wins).
/// kScalar is not a TU here — it means "run the solver's portable loops".
enum class Backend { kScalar = 0, kSimd = 1 };

/// Human-readable backend name ("scalar", "simd").
[[nodiscard]] const char* backend_name(Backend b);

/// Parses a name as accepted by CHAMBOLLE_FIXED_KERNEL and
/// --kernel fixed-{scalar,simd}; nullopt for unknown strings ("auto" is not
/// a backend and parses to nullopt, like the float layer).
[[nodiscard]] std::optional<Backend> parse_backend(std::string_view name);

/// True when the backend is compiled in and the CPU supports it.
[[nodiscard]] bool backend_available(Backend b);

/// All available fixed backends, best first.
[[nodiscard]] std::vector<Backend> available_backends();

/// The fixed-point backend in effect: force_backend() >
/// CHAMBOLLE_FIXED_KERNEL > best available.  Unknown or unavailable
/// environment values throw std::invalid_argument listing the compiled-in
/// backends (same hard-reject contract as CHAMBOLLE_KERNEL).
[[nodiscard]] Backend active_backend();

/// Forces the fixed-point backend; throws std::invalid_argument when it is
/// not available on this machine.
void force_backend(Backend b);

/// Name-taking overload with the hard-reject diagnostics.
void force_backend(std::string_view name);

/// Clears a force_backend() override.
void reset_backend();

/// Runs `iterations` fixed-point Chambolle iterations in place on (px, py)
/// over the window described by `geom`, using the SIMD backend.  Exactly
/// the scalar two-pass schedule of fixed_iterate_region: a full Term pass
/// into `term_scratch`, then the dual-update pass — bit-identical output.
///
/// Returns false (doing nothing) when the active fixed backend is not
/// kSimd; the caller then runs its scalar loops.  This keeps the solver's
/// portable path as the single scalar implementation instead of cloning
/// the datapath here.
bool iterate_region_simd(Matrix<std::int32_t>& px, Matrix<std::int32_t>& py,
                         const Matrix<std::int32_t>& v,
                         const RegionGeometry& geom, std::int32_t inv_theta_q,
                         std::int32_t step_q, int iterations,
                         Matrix<std::int32_t>& term_scratch);

}  // namespace chambolle::kernels::fixed
