// kernel_scalar.cpp — portable 1-lane backend.
//
// The same generic implementation as the SIMD backends, instantiated with a
// scalar "vector" of one float.  This is the reference the equivalence
// tests pin every other backend against, and the fallback on CPUs (or
// builds) without a usable SIMD ISA.
#include <cmath>

#include "kernels/backend_impl.hpp"
#include "kernels/backend_registry.hpp"

namespace chambolle::kernels {
namespace {

struct ScalarV {
  static constexpr int kLanes = 1;
  using reg = float;
  static reg loadu(const float* p) { return *p; }
  static void storeu(float* p, reg v) { *p = v; }
  static reg set1(float x) { return x; }
  static reg zero() { return 0.f; }
  static reg add(reg a, reg b) { return a + b; }
  static reg sub(reg a, reg b) { return a - b; }
  static reg mul(reg a, reg b) { return a * b; }
  static reg div(reg a, reg b) { return a / b; }
  static reg sqrt(reg a) { return std::sqrt(a); }
  static reg neg(reg a) { return -a; }
  static reg max(reg a, reg b) { return a > b ? a : b; }
};

constexpr KernelOps kOps = detail::make_ops<ScalarV>("scalar");

}  // namespace

const KernelOps* scalar_ops() { return &kOps; }

}  // namespace chambolle::kernels
