// kernel_neon.cpp — 4-lane NEON backend (AArch64 only).
//
// Gated on AArch64 because only A64 provides IEEE vector sqrt/div
// (vsqrtq_f32 / vdivq_f32); 32-bit NEON offers reciprocal *estimates*
// only, which would break the bit-exactness contract, so armv7 falls back
// to the scalar backend instead.
#include "kernels/backend_impl.hpp"
#include "kernels/backend_registry.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace chambolle::kernels {
namespace {

struct NeonV {
  static constexpr int kLanes = 4;
  using reg = float32x4_t;
  static reg loadu(const float* p) { return vld1q_f32(p); }
  static void storeu(float* p, reg v) { vst1q_f32(p, v); }
  static reg set1(float x) { return vdupq_n_f32(x); }
  static reg zero() { return vdupq_n_f32(0.f); }
  static reg add(reg a, reg b) { return vaddq_f32(a, b); }
  static reg sub(reg a, reg b) { return vsubq_f32(a, b); }
  static reg mul(reg a, reg b) { return vmulq_f32(a, b); }
  static reg div(reg a, reg b) { return vdivq_f32(a, b); }
  static reg sqrt(reg a) { return vsqrtq_f32(a); }
  static reg neg(reg a) { return vnegq_f32(a); }
  static reg max(reg a, reg b) { return vmaxq_f32(a, b); }
};

const KernelOps kOps = detail::make_ops<NeonV>("neon");

}  // namespace

const KernelOps* neon_ops() { return &kOps; }

}  // namespace chambolle::kernels

#else  // !AArch64 NEON

namespace chambolle::kernels {
const KernelOps* neon_ops() { return nullptr; }
}  // namespace chambolle::kernels

#endif
