// pe.hpp — the two processing-element types (Section V-C, Figures 6-7).
//
// PE-T computes Term = div p - v/theta (and u = v - theta*div p, line 9 of
// Algorithm 1); PE-V computes the projected dual update of px/py, taking its
// three Term operands from neighboring PE-Ts through forwarding registers
// rather than memory.  The arithmetic itself lives in chambolle::fxdp so the
// plain fixed-point solver and this simulator are bit-identical; these
// classes add the register state (the forwarding flip-flops of Figure 5).
#pragma once

#include "chambolle/fixed_solver.hpp"

namespace chambolle::hw {

/// One PE-T lane.  Holds the l_px forwarding flip-flop: "PE-T3 takes the
/// l_px vector from the flip-flop that stores the c_px vector processed in
/// previous cycle" (Section V-A).
class PeT {
 public:
  struct Out {
    std::int32_t term = 0;
    std::int32_t div_p = 0;
    std::int32_t u = 0;
  };

  /// Processes one element: `word` is this element's BRAM word, `a_py` the
  /// upper neighbor's py (forwarded from the lane above or read from the
  /// extra BRAM port for the top lane).  Advances the l_px flip-flop.
  Out step(const fx::BramFields& word, std::int32_t a_py, bool first_col,
           bool last_col, bool first_row, bool last_row,
           const FixedParams& params) {
    const fxdp::TermOut t =
        fxdp::pe_t_op(word.px, l_px_ff_, word.py, a_py, word.v, first_col,
                      last_col, first_row, last_row, params.inv_theta_q);
    l_px_ff_ = word.px;
    Out out;
    out.term = t.term;
    out.div_p = t.div_p;
    out.u = fxdp::pe_u_op(word.v, t.div_p, params.theta_q);
    return out;
  }

  /// Clears the l_px flip-flop at the start of a row sweep (column 0 has no
  /// left neighbor in the buffer).
  void reset_row() { l_px_ff_ = 0; }

 private:
  std::int32_t l_px_ff_ = 0;
};

/// One PE-V lane (stateless: all operands arrive through the array's
/// forwarding registers).
class PeV {
 public:
  [[nodiscard]] static fxdp::VOut compute(std::int32_t c_term,
                                          std::int32_t r_term,
                                          std::int32_t b_term, bool last_col,
                                          bool last_row, std::int32_t c_px,
                                          std::int32_t c_py,
                                          const FixedParams& params) {
    return fxdp::pe_v_op(c_term, r_term, b_term, last_col, last_row, c_px,
                         c_py, params.step_q);
  }
};

}  // namespace chambolle::hw
