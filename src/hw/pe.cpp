#include "hw/pe.hpp"

// PE behaviour is header-only (it delegates to chambolle::fxdp); this TU
// anchors the build target.
namespace chambolle::hw {}  // namespace chambolle::hw
