#include "hw/resource_model.hpp"

namespace chambolle::hw {

ResourceReport estimate_resources(const ArchConfig& config) {
  config.validate();
  const int arrays = 2 * config.num_sliding_windows;  // one per u component
  const int pe_t = arrays * config.pe_lanes;
  const int pe_v = arrays * config.pe_lanes;

  ResourceReport report;
  // BRAM and DSP counts are structural consequences of the architecture:
  //  * each array owns num_brams packed-word BRAMs plus BRAM-Term (9 each,
  //    36 total for the paper configuration — Table I);
  //  * each PE-V keeps exactly its two gradient squarings on DSP48s (the
  //    constant multiplications by tau/theta and 1/theta map to LUTs, the
  //    option the paper notes for reducing DSP usage), and the control unit
  //    uses a handful for address generation: 28*2 + 6 = 62 — Table I.
  //
  // FF/LUT coefficients are calibrated per-primitive estimates for Virtex-5
  // (see DESIGN.md): 32-bit adders ~ 32 LUTs, the 256-entry sqrt table 70
  // LUTs (Section V-C), a pipelined 32/18-bit divider ~ 280 LUTs, constant
  // multipliers ~ 60-120 LUTs.
  report.modules = {
      {"PE-T (Term & u datapath)", pe_t, 130, 310, 0, 0},
      {"PE-V (dual update, LUT sqrt, dividers)", pe_v, 560, 760, 0, 2},
      {"Packed-word BRAMs (v,px,py)", arrays * config.num_brams, 0, 0, 1, 0},
      {"BRAM-Term (region bridge)", arrays, 0, 0, 1, 0},
      {"Vertical rotators", 2 * arrays, 80, 120, 0, 0},
      {"BRAM init / write-back muxing", arrays, 500, 200, 0, 0},
      {"Control unit & address generation", 1, 900, 1000, 0, 6},
      {"Top-level glue & I/O", 1, 300, 150, 0, 0},
  };

  for (const ModuleArea& m : report.modules) {
    report.flipflops += m.instances * m.flipflops_each;
    report.luts += m.instances * m.luts_each;
    report.brams += m.instances * m.brams_each;
    report.dsps += m.instances * m.dsps_each;
  }
  return report;
}

}  // namespace chambolle::hw
