// sliding_window.hpp — one sliding-window engine (SW1 / SW2 of Figure 2).
//
// A sliding window owns two PE arrays — one per flow component u1/u2 — and
// their BRAM banks (8 packed-word BRAMs + 1 BRAM-Term each, 9 per array,
// 18 per window, 36 across both windows: exactly Table I's BRAM count).  It
// loads a tile of the frame-resident fixed-point state, runs the merged
// Chambolle iterations on both components in lockstep, and writes the
// profitable rectangle back.
#pragma once

#include <cstdint>

#include "chambolle/fixed_solver.hpp"
#include "chambolle/tile.hpp"
#include "hw/pe_array.hpp"

namespace chambolle::hw {

/// Frame-resident fixed-point state for both flow components (the "device
/// memory" the paper assumes frames are pre-loaded into).
struct FrameState {
  FixedState u1;
  FixedState u2;

  FrameState() = default;
  FrameState(int rows, int cols) : u1(rows, cols), u2(rows, cols) {}
  [[nodiscard]] int rows() const { return u1.rows(); }
  [[nodiscard]] int cols() const { return u1.cols(); }
};

struct SlidingWindowStats {
  std::uint64_t cycles = 0;  ///< includes tile load/store when modeled
  std::uint64_t tiles_processed = 0;
  std::uint64_t load_store_cycles = 0;
};

class SlidingWindowEngine {
 public:
  explicit SlidingWindowEngine(const ArchConfig& config);

  /// Processes one tile: loads (v, px, py) of both components from `src`,
  /// runs `iterations` merged Chambolle iterations, stores the profitable
  /// rectangle into `dst` (ping-pong frame buffering keeps tiles of the same
  /// pass independent, matching the Jacobi semantics of Algorithm 1).  The
  /// two component arrays run in parallel in hardware, so the cycle cost is
  /// charged once.
  void process_tile(const FrameState& src, FrameState& dst,
                    const TileSpec& tile, const FixedParams& params,
                    int iterations);

  [[nodiscard]] const SlidingWindowStats& stats() const { return stats_; }
  [[nodiscard]] const PeArrayStats& array_stats_u1() const {
    return array_u1_.stats();
  }
  [[nodiscard]] const PeArrayStats& array_stats_u2() const {
    return array_u2_.stats();
  }
  void reset_stats();

 private:
  void load_tile(const FixedState& comp, BramBank& bank,
                 const TileSpec& tile);
  void store_tile(FixedState& comp, const BramBank& bank,
                  const TileSpec& tile);

  ArchConfig config_;
  BramBank bank_u1_;
  BramBank bank_u2_;
  PeArray array_u1_;
  PeArray array_u2_;
  SlidingWindowStats stats_;
};

}  // namespace chambolle::hw
