// dse.hpp — design-space exploration over the architecture knobs.
//
// The paper reports ONE design point (2 sliding windows x 7 lanes, 88x92
// tiles, 221 MHz, Table I/II).  The models in this library make the
// surrounding design space cheap to query: this module enumerates candidate
// configurations (window count, ladder depth, tile size, merge depth),
// rejects those that do not fit the target device, evaluates frame rate and
// area for each survivor, and extracts the Pareto frontier — the analysis a
// design team runs before committing RTL.  The tests verify frontier
// invariants and that the paper's configuration is (near-)Pareto-optimal
// under its own models.
#pragma once

#include <vector>

#include "hw/device.hpp"
#include "hw/resource_model.hpp"

namespace chambolle::hw {

/// One evaluated design point.
struct DesignPoint {
  ArchConfig config;
  ResourceReport area;
  double fps = 0.0;      ///< at the evaluation workload
  bool fits = false;     ///< within the device budget
  bool pareto = false;   ///< on the fps-vs-LUT frontier among fitting points
};

struct DseOptions {
  /// Workload the fps metric is evaluated on.
  int frame_rows = 512;
  int frame_cols = 512;
  int iterations = 200;
  /// Candidate grids.
  std::vector<int> window_counts{1, 2, 3};
  std::vector<int> lane_counts{3, 5, 7, 9, 11};
  std::vector<int> tile_cols_options{64, 92, 128};
  std::vector<int> merge_options{2, 4, 8};
  Virtex5Spec device{};

  void validate() const;
};

/// Enumerates and evaluates the space; points come back sorted by fps
/// (descending) with Pareto flags set among the fitting points.
[[nodiscard]] std::vector<DesignPoint> explore(const DseOptions& options);

/// Convenience: the fitting point with the highest fps (throws
/// std::runtime_error when nothing fits).
[[nodiscard]] DesignPoint best_fitting(const DseOptions& options);

}  // namespace chambolle::hw
