// bram.hpp — on-chip memory models: single BRAM, the 8-BRAM row-striped bank,
// and the vertical rotator (Section V-B, Figures 3-4).
//
// Each PE array keeps its tile state (packed v/px/py words) striped across 8
// dual-port BRAMs: row r of the tile lives in BRAM r % 8 at address
// (r / 8) * tile_cols + col.  During a region change the PE lanes shift down
// by 7 rows, which rotates the lane -> BRAM assignment by -1 (mod 8) and bumps
// the in-BRAM address by one row (the paper's "offset of 92"); the vertical
// rotator implements that re-routing.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fixedpoint/packed_word.hpp"

namespace chambolle::hw {

/// One dual-port BRAM storing 32-bit words, with access counters.
class Bram {
 public:
  explicit Bram(int depth) : data_(check_depth(depth)) {}

  [[nodiscard]] int depth() const { return static_cast<int>(data_.size()); }

  [[nodiscard]] std::uint32_t read(int addr) {
    ++reads_;
    return data_.at(static_cast<std::size_t>(addr));
  }
  void write(int addr, std::uint32_t word) {
    ++writes_;
    data_.at(static_cast<std::size_t>(addr)) = word;
  }

  /// Direct (non-counted) access for test inspection and initialization.
  [[nodiscard]] std::uint32_t peek(int addr) const {
    return data_.at(static_cast<std::size_t>(addr));
  }
  void poke(int addr, std::uint32_t word) {
    data_.at(static_cast<std::size_t>(addr)) = word;
  }

  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  void reset_counters() { reads_ = writes_ = 0; }

 private:
  static std::size_t check_depth(int depth) {
    if (depth <= 0) throw std::invalid_argument("Bram: depth <= 0");
    return static_cast<std::size_t>(depth);
  }
  std::vector<std::uint32_t> data_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

/// Maps a tile row to its BRAM index (row % num_brams): the vertical
/// rotator's steady-state routing function.
[[nodiscard]] constexpr int bram_index_for_row(int row, int num_brams) {
  return row % num_brams;
}

/// In-BRAM address of (row, col): (row / num_brams) * tile_cols + col.
[[nodiscard]] constexpr int bram_addr_for(int row, int col, int tile_cols,
                                          int num_brams) {
  return (row / num_brams) * tile_cols + col;
}

/// The row-striped bank of one PE array: 8 BRAMs holding packed words for an
/// up to tile_rows x tile_cols tile.
class BramBank {
 public:
  BramBank(int tile_rows, int tile_cols, int num_brams);

  [[nodiscard]] int tile_rows() const { return tile_rows_; }
  [[nodiscard]] int tile_cols() const { return tile_cols_; }
  [[nodiscard]] int num_brams() const { return static_cast<int>(brams_.size()); }

  /// Counted read/write of the packed word of (row, col).
  [[nodiscard]] fx::BramFields read_fields(int row, int col);
  void write_fields(int row, int col, const fx::BramFields& f);

  /// Uncounted whole-tile initialization / readback (the paper performs the
  /// initial load through the FPGA input pins, outside the compute loop).
  void load_fields(int row, int col, const fx::BramFields& f);
  [[nodiscard]] fx::BramFields peek_fields(int row, int col) const;

  [[nodiscard]] std::uint64_t total_reads() const;
  [[nodiscard]] std::uint64_t total_writes() const;
  void reset_counters();

  /// Asserts that the given rows hit pairwise-distinct BRAMs (the schedule's
  /// conflict-freedom invariant); throws std::logic_error on conflict.
  void check_conflict_free(const std::vector<int>& rows) const;

 private:
  void check_coords(int row, int col) const;

  int tile_rows_;
  int tile_cols_;
  std::vector<Bram> brams_;
};

/// The vertical rotator: given the first row of the active region, yields the
/// lane -> (bram, base address) routing.  Advancing by one region rotates the
/// assignment by pe_lanes mod num_brams (i.e. by -1 when num_brams = lanes+1)
/// and advances the base address by tile_cols for wrapped lanes.
struct RotatorRoute {
  int bram = 0;
  int base_addr = 0;  ///< address of (row, col=0)
};

[[nodiscard]] RotatorRoute rotator_route(int region_first_row, int lane,
                                         int tile_cols, int num_brams);

}  // namespace chambolle::hw
