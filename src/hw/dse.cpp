#include "hw/dse.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "hw/accelerator.hpp"

namespace chambolle::hw {

void DseOptions::validate() const {
  if (frame_rows <= 0 || frame_cols <= 0)
    throw std::invalid_argument("DseOptions: empty frame");
  if (iterations <= 0) throw std::invalid_argument("DseOptions: iterations");
  if (window_counts.empty() || lane_counts.empty() ||
      tile_cols_options.empty() || merge_options.empty())
    throw std::invalid_argument("DseOptions: empty candidate grid");
}

std::vector<DesignPoint> explore(const DseOptions& options) {
  options.validate();
  std::vector<DesignPoint> points;

  for (const int windows : options.window_counts)
    for (const int lanes : options.lane_counts)
      for (const int tile_cols : options.tile_cols_options)
        for (const int merge : options.merge_options) {
          ArchConfig cfg;
          cfg.num_sliding_windows = windows;
          cfg.pe_lanes = lanes;
          cfg.num_brams = lanes + 1;
          // Keep the tile footprint near the paper's (~8100 words/array):
          // rows = the largest stripe-aligned count fitting the budget.
          const int budget_rows = 8096 / tile_cols;
          cfg.tile_rows =
              std::max((budget_rows / cfg.num_brams) * cfg.num_brams,
                       cfg.num_brams);
          cfg.tile_cols = tile_cols;
          cfg.merge_iterations = merge;
          if (cfg.tile_rows <= 2 * merge || cfg.tile_cols <= 2 * merge)
            continue;  // no profitable core: not a valid design
          try {
            cfg.validate();
          } catch (const std::invalid_argument&) {
            continue;
          }

          DesignPoint p;
          p.config = cfg;
          p.area = estimate_resources(cfg);
          p.fps = ChambolleAccelerator(cfg).estimate_fps(
              options.frame_rows, options.frame_cols, options.iterations);
          p.fits = p.area.flipflops <= options.device.flipflops &&
                   p.area.luts <= options.device.luts &&
                   p.area.brams <= options.device.brams &&
                   p.area.dsps <= options.device.dsps;
          points.push_back(p);
        }

  std::sort(points.begin(), points.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              return a.fps > b.fps;
            });

  // Pareto frontier among fitting points, fps (max) vs LUTs (min): walking
  // in descending fps order, a point is dominated iff some already-kept
  // point uses no more LUTs.
  int best_luts = std::numeric_limits<int>::max();
  for (DesignPoint& p : points) {
    if (!p.fits) continue;
    if (p.area.luts < best_luts) {
      p.pareto = true;
      best_luts = p.area.luts;
    }
  }
  return points;
}

DesignPoint best_fitting(const DseOptions& options) {
  const std::vector<DesignPoint> points = explore(options);
  for (const DesignPoint& p : points)
    if (p.fits) return p;
  throw std::runtime_error("best_fitting: no configuration fits the device");
}

}  // namespace chambolle::hw
