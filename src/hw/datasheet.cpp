#include "hw/datasheet.hpp"

#include <sstream>

#include "common/text_table.hpp"
#include "hw/accelerator.hpp"

namespace chambolle::hw {

Datasheet make_datasheet(const ArchConfig& config, const DramConfig& dram) {
  config.validate();
  dram.validate();

  Datasheet d;
  d.config = config;
  d.area = estimate_resources(config);
  d.dram = dram;
  d.fits = d.area.flipflops <= d.device.flipflops &&
           d.area.luts <= d.device.luts && d.area.brams <= d.device.brams &&
           d.area.dsps <= d.device.dsps;
  d.total_pes = 2 * 2 * config.num_sliding_windows * config.pe_lanes;
  d.cycles_per_element_latency = config.pipeline_fill;

  const ChambolleAccelerator accel(config);
  const int workloads[][3] = {
      {256, 256, 200}, {512, 512, 200}, {1024, 768, 200}};
  for (const auto& w : workloads) {
    WorkloadRating r;
    r.width = w[0];
    r.height = w[1];
    r.iterations = w[2];
    r.fps = accel.estimate_fps(r.height, r.width, r.iterations);
    r.fps_streaming =
        estimate_traffic(config, r.height, r.width, r.iterations, dram)
            .overlapped_fps();
    d.ratings.push_back(r);
  }
  return d;
}

std::string Datasheet::to_string() const {
  std::ostringstream os;
  os << "Chambolle accelerator datasheet\n";
  os << "  architecture : " << config.num_sliding_windows
     << " sliding windows x " << config.pe_lanes << " lanes ("
     << total_pes << " PEs), tile " << config.tile_rows << "x"
     << config.tile_cols << ", merge depth " << config.merge_iterations
     << "\n";
  os << "  clock        : " << config.clock_mhz
     << " MHz, element latency " << cycles_per_element_latency
     << " cycles\n";
  os << "  resources    : " << area.flipflops << " FF / " << area.luts
     << " LUT / " << area.brams << " BRAM / " << area.dsps << " DSP  ("
     << (fits ? "fits " : "DOES NOT FIT ") << "the XC5VLX110T)\n";
  os << "  off-chip     : " << dram.bytes_per_second / 1e9
     << " GB/s assumed\n\n";

  TextTable table({"Workload", "Iterations", "fps (pre-loaded)",
                   "fps (streaming)"});
  for (const WorkloadRating& r : ratings)
    table.add_row({std::to_string(r.width) + "x" + std::to_string(r.height),
                   std::to_string(r.iterations), TextTable::num(r.fps, 1),
                   TextTable::num(r.fps_streaming, 1)});
  os << table.to_string();
  return os.str();
}

}  // namespace chambolle::hw
