#include "hw/sliding_window.hpp"

#include <stdexcept>

namespace chambolle::hw {

SlidingWindowEngine::SlidingWindowEngine(const ArchConfig& config)
    : config_(config),
      bank_u1_(config.tile_rows, config.tile_cols, config.num_brams),
      bank_u2_(config.tile_rows, config.tile_cols, config.num_brams),
      array_u1_(config),
      array_u2_(config) {
  config_.validate();
}

void SlidingWindowEngine::load_tile(const FixedState& comp, BramBank& bank,
                                    const TileSpec& tile) {
  for (int r = 0; r < tile.buf_rows; ++r)
    for (int c = 0; c < tile.buf_cols; ++c) {
      const int fr = tile.buf_row0 + r, fc = tile.buf_col0 + c;
      bank.load_fields(r, c,
                       {comp.v(fr, fc), comp.px(fr, fc), comp.py(fr, fc)});
    }
}

void SlidingWindowEngine::store_tile(FixedState& comp, const BramBank& bank,
                                     const TileSpec& tile) {
  const int dr = tile.prof_row0 - tile.buf_row0;
  const int dc = tile.prof_col0 - tile.buf_col0;
  for (int r = 0; r < tile.prof_rows; ++r)
    for (int c = 0; c < tile.prof_cols; ++c) {
      const fx::BramFields f = bank.peek_fields(dr + r, dc + c);
      const int fr = tile.prof_row0 + r, fc = tile.prof_col0 + c;
      comp.px(fr, fc) = f.px;
      comp.py(fr, fc) = f.py;
    }
}

void SlidingWindowEngine::process_tile(const FrameState& src, FrameState& dst,
                                       const TileSpec& tile,
                                       const FixedParams& params,
                                       int iterations) {
  if (tile.buf_rows > config_.tile_rows || tile.buf_cols > config_.tile_cols)
    throw std::invalid_argument("process_tile: tile exceeds window buffer");
  if (tile.buf_row0 + tile.buf_rows > src.rows() ||
      tile.buf_col0 + tile.buf_cols > src.cols() ||
      dst.rows() != src.rows() || dst.cols() != src.cols())
    throw std::invalid_argument("process_tile: tile exceeds frame");

  load_tile(src.u1, bank_u1_, tile);
  load_tile(src.u2, bank_u2_, tile);

  const RegionGeometry geom{tile.buf_row0, tile.buf_col0, src.rows(),
                            src.cols()};
  // Both component arrays run concurrently in hardware; simulate serially
  // and charge the (identical) cycle count once.
  const std::uint64_t before = array_u1_.stats().cycles;
  array_u1_.run(bank_u1_, tile.buf_rows, tile.buf_cols, geom, params,
                iterations);
  array_u2_.run(bank_u2_, tile.buf_rows, tile.buf_cols, geom, params,
                iterations);
  std::uint64_t tile_cycles = array_u1_.stats().cycles - before;

  if (config_.model_tile_io) {
    // The 8 BRAMs of a bank fill in parallel through the initialization port
    // (Figure 3), one address per cycle; store walks the profitable region.
    const std::uint64_t load_cycles = static_cast<std::uint64_t>(
        (tile.buf_rows * tile.buf_cols + config_.num_brams - 1) /
        config_.num_brams);
    const std::uint64_t store_cycles = static_cast<std::uint64_t>(
        (tile.prof_rows * tile.prof_cols + config_.num_brams - 1) /
        config_.num_brams);
    stats_.load_store_cycles += load_cycles + store_cycles;
    tile_cycles += load_cycles + store_cycles;
  }

  store_tile(dst.u1, bank_u1_, tile);
  store_tile(dst.u2, bank_u2_, tile);

  stats_.cycles += tile_cycles;
  stats_.tiles_processed += 1;
}

void SlidingWindowEngine::reset_stats() {
  stats_ = {};
  array_u1_.reset_stats();
  array_u2_.reset_stats();
}

}  // namespace chambolle::hw
