// datasheet.hpp — the one-page summary of a configuration.
//
// Collects what the separate models say about an ArchConfig — resources
// (Table I), throughput at reference workloads (Table II), memory traffic,
// and schedule facts — into one structure with a text rendering: the
// "datasheet" a design review would circulate.
#pragma once

#include <string>

#include "hw/device.hpp"
#include "hw/dram_model.hpp"
#include "hw/resource_model.hpp"

namespace chambolle::hw {

struct WorkloadRating {
  int width = 0;
  int height = 0;
  int iterations = 0;
  double fps = 0.0;          ///< compute-only (pre-loaded frames)
  double fps_streaming = 0.0;///< with overlapped off-chip transfers
};

struct Datasheet {
  ArchConfig config;
  ResourceReport area;
  Virtex5Spec device;
  DramConfig dram;
  std::vector<WorkloadRating> ratings;
  bool fits = false;
  int total_pes = 0;      ///< PE-T + PE-V across all arrays
  int cycles_per_element_latency = 0;  ///< the paper's 18

  [[nodiscard]] std::string to_string() const;
};

/// Builds the datasheet; ratings cover the paper's Table II workloads plus
/// 256x256 at 200 iterations.
[[nodiscard]] Datasheet make_datasheet(const ArchConfig& config,
                                       const DramConfig& dram = {});

}  // namespace chambolle::hw
