// verilog_export.hpp — RTL skeleton generation from the architecture model.
//
// The paper's implementation was "fully implemented in Verilog" (Section VI).
// We cannot ship the authors' RTL, but the architecture model carries enough
// structure to EMIT one: this module generates synthesizable Verilog for the
// fixed-point datapath — the PE-T, the PE-V (including the 256-entry sqrt
// ROM with the exact contents of fx::sqrt_table() and the odd-aligned window
// logic), the packed BRAM word layout, and a top-level PE-array shell wiring
// the forwarding registers — parameterized by ArchConfig.  The generated
// code mirrors chambolle::fxdp operation for operation, so the C++ simulator
// doubles as the RTL's golden model; tests verify the emitted text embeds
// the right constants (table entries, widths, lane counts).
#pragma once

#include <cstdint>
#include <string>

#include "hw/device.hpp"

namespace chambolle::hw {

/// Fixed-point solver constants baked into the RTL.
struct VerilogParams {
  int theta_q = 64;       ///< Q24.8: 0.25
  int inv_theta_q = 1024; ///< Q24.8: 4.0
  int step_q = 64;        ///< Q24.8: tau/theta = 0.25
};

/// The sqrt lookup ROM: 256 entries, 8 bits, as a Verilog case statement.
[[nodiscard]] std::string emit_sqrt_rom();

/// The sqrt unit: leading-one detect, odd/even window alignment, ROM access,
/// result shift — Section V-C in RTL form.
[[nodiscard]] std::string emit_sqrt_unit();

/// One PE-T: backward differences with border-rule muxes, Term and u.
[[nodiscard]] std::string emit_pe_t(const VerilogParams& params);

/// One PE-V: forward differences, squared magnitude, sqrt unit instance,
/// projected dual update with 9-bit saturation.
[[nodiscard]] std::string emit_pe_v(const VerilogParams& params);

/// The packed-word (un)packing functions for the Section V-B BRAM layout.
[[nodiscard]] std::string emit_packed_word();

/// Top-level PE array shell: `pe_lanes` PE-T/PE-V pairs with the l_px / a_py
/// forwarding registers and the Term pipeline of Figure 5.
[[nodiscard]] std::string emit_pe_array(const ArchConfig& config,
                                        const VerilogParams& params);

/// Everything above concatenated into one compilable file, with a header
/// documenting the generating configuration.
[[nodiscard]] std::string emit_design(const ArchConfig& config,
                                      const VerilogParams& params = {});

/// Writes emit_design() to a file.  Throws std::runtime_error on I/O error.
void write_verilog(const std::string& path, const ArchConfig& config,
                   const VerilogParams& params = {});

/// Self-checking testbench for pe_t: `vectors` random stimuli with expected
/// outputs computed by the C++ golden model (chambolle::fxdp); the emitted
/// bench $display's PASS/FAIL per vector and $finish-es with a summary.
[[nodiscard]] std::string emit_pe_t_testbench(const VerilogParams& params,
                                              int vectors = 64,
                                              std::uint64_t seed = 1);

/// Self-checking testbench for pe_v (covers the LUT sqrt path end to end).
[[nodiscard]] std::string emit_pe_v_testbench(const VerilogParams& params,
                                              int vectors = 64,
                                              std::uint64_t seed = 2);

}  // namespace chambolle::hw
