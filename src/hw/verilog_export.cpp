#include "hw/verilog_export.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "chambolle/fixed_solver.hpp"
#include "common/rng.hpp"
#include "fixedpoint/lut_sqrt.hpp"

namespace chambolle::hw {
namespace {

std::string banner(const std::string& title) {
  return "// ------------------------------------------------------------\n"
         "// " + title + "\n"
         "// ------------------------------------------------------------\n";
}

}  // namespace

std::string emit_sqrt_rom() {
  std::ostringstream os;
  os << banner("sqrt_rom: 256 x 8-bit entries, round(sqrt(m)*16)  (Sec. V-C)");
  os << "module sqrt_rom (\n"
        "    input  wire [7:0] m,\n"
        "    output reg  [7:0] root\n"
        ");\n"
        "  always @* begin\n"
        "    case (m)\n";
  const auto& table = fx::sqrt_table();
  for (int i = 0; i < 256; ++i)
    os << "      8'd" << i << ": root = 8'd"
       << static_cast<int>(table[static_cast<std::size_t>(i)]) << ";\n";
  os << "      default: root = 8'd0;\n"
        "    endcase\n"
        "  end\n"
        "endmodule\n\n";
  return os.str();
}

std::string emit_sqrt_unit() {
  std::ostringstream os;
  os << banner("sqrt_unit: odd-aligned 8-bit window + ROM + shift (Sec. V-C)");
  os << R"(module sqrt_unit (
    input  wire [31:0] x,     // Q24.8, non-negative
    output wire [31:0] root   // Q24.8
);
  // Leading-one position (priority encoder).
  function automatic [5:0] msb_pos(input [31:0] v);
    integer i;
    begin
      msb_pos = 6'd0;
      for (i = 0; i < 32; i = i + 1)
        if (v[i]) msb_pos = i[5:0];
    end
  endfunction

  wire [5:0] p = msb_pos(x);
  // Window low bit: p-7, bumped up to the next even position when odd —
  // the paper's "starts in an odd position and finishes in an even one".
  wire [5:0] lo_raw = (p >= 6'd7) ? (p - 6'd7) : 6'd0;
  wire [5:0] lo     = lo_raw[0] ? (lo_raw + 6'd1) : lo_raw;
  wire [7:0] m      = (x < 32'd256) ? x[7:0] : ((x >> lo) & 32'hFF);
  wire [4:0] k      = (x < 32'd256) ? 5'd0 : lo[5:1];

  wire [7:0] entry;
  sqrt_rom rom (.m(m), .root(entry));

  // entry ~ sqrt(m) * 2^4; root = entry << k lands back in Q24.8.
  assign root = {24'd0, entry} << k;
endmodule

)";
  return os.str();
}

std::string emit_packed_word() {
  std::ostringstream os;
  os << banner("BRAM word layout: [v:13][px:9][py:9][pad:1]  (Sec. V-B)");
  os << R"(// Field extraction / insertion for the 32-bit packed state word.
`define WORD_V(w)   $signed(w[31:19])
`define WORD_PX(w)  $signed(w[18:10])
`define WORD_PY(w)  $signed(w[9:1])
`define PACK_WORD(v, px, py) {v[12:0], px[8:0], py[8:0], 1'b0}

)";
  return os.str();
}

std::string emit_pe_t(const VerilogParams& params) {
  std::ostringstream os;
  os << banner("pe_t: backward differences, Term, u  (Fig. 6)");
  os << "module pe_t (\n"
        "    input  wire signed [8:0]  c_px,\n"
        "    input  wire signed [8:0]  l_px,\n"
        "    input  wire signed [8:0]  c_py,\n"
        "    input  wire signed [8:0]  a_py,\n"
        "    input  wire signed [12:0] v,\n"
        "    input  wire               first_col, last_col,\n"
        "    input  wire               first_row, last_row,\n"
        "    output wire signed [31:0] term,\n"
        "    output wire signed [31:0] div_p,\n"
        "    output wire signed [12:0] u\n"
        ");\n"
        "  localparam signed [31:0] INV_THETA_Q = 32'sd"
     << params.inv_theta_q << ";  // 1/theta, Q24.8\n"
        "  localparam signed [31:0] THETA_Q     = 32'sd"
     << params.theta_q << ";  // theta, Q24.8\n";
  os << R"(
  // Backward differences with the Chambolle border rules.
  wire signed [31:0] dx = first_col ? {{23{c_px[8]}}, c_px} :
                          last_col  ? -{{23{l_px[8]}}, l_px} :
                          {{23{c_px[8]}}, c_px} - {{23{l_px[8]}}, l_px};
  wire signed [31:0] dy = first_row ? {{23{c_py[8]}}, c_py} :
                          last_row  ? -{{23{a_py[8]}}, a_py} :
                          {{23{c_py[8]}}, c_py} - {{23{a_py[8]}}, a_py};
  assign div_p = dx + dy;

  // Term = div_p - v / theta  (constant multiply, LUT-mapped on the device).
  wire signed [63:0] v_scaled = $signed({{19{v[12]}}, v}) * INV_THETA_Q;
  assign term = div_p - v_scaled[39:8];

  // u = v - theta * div_p, saturated to the 13-bit Q5.8 format.
  wire signed [63:0] du = THETA_Q * div_p;
  wire signed [31:0] u_wide = $signed({{19{v[12]}}, v}) - du[39:8];
  assign u = (u_wide >  32'sd4095) ? 13'sd4095 :
             (u_wide < -32'sd4096) ? -13'sd4096 : u_wide[12:0];
endmodule

)";
  return os.str();
}

std::string emit_pe_v(const VerilogParams& params) {
  std::ostringstream os;
  os << banner("pe_v: forward differences, |grad| via LUT sqrt, update (Fig. 7)");
  os << "module pe_v (\n"
        "    input  wire signed [31:0] c_term,\n"
        "    input  wire signed [31:0] r_term,\n"
        "    input  wire signed [31:0] b_term,\n"
        "    input  wire               last_col, last_row,\n"
        "    input  wire signed [8:0]  c_px,\n"
        "    input  wire signed [8:0]  c_py,\n"
        "    output wire signed [8:0]  new_px,\n"
        "    output wire signed [8:0]  new_py\n"
        ");\n"
        "  localparam signed [31:0] STEP_Q = 32'sd" << params.step_q
     << ";  // tau/theta, Q24.8\n";
  os << R"(
  wire signed [31:0] term1 = last_col ? 32'sd0 : (r_term - c_term);
  wire signed [31:0] term2 = last_row ? 32'sd0 : (b_term - c_term);

  // |grad|^2 in Q24.8 (the two squarings are the PE-V's DSP blocks).
  wire signed [63:0] sq1 = term1 * term1;
  wire signed [63:0] sq2 = term2 * term2;
  wire        [31:0] mag_sq = sq1[39:8] + sq2[39:8];

  wire [31:0] grad;
  sqrt_unit su (.x(mag_sq), .root(grad));

  wire signed [63:0] sg    = STEP_Q * $signed({1'b0, grad});
  wire signed [31:0] denom = 32'sd256 + sg[39:8];

  wire signed [63:0] st1 = STEP_Q * term1;
  wire signed [63:0] st2 = STEP_Q * term2;
  wire signed [39:0] numx = ({{31{c_px[8]}}, c_px} + st1[39:8]) <<< 8;
  wire signed [39:0] numy = ({{31{c_py[8]}}, c_py} + st2[39:8]) <<< 8;
  wire signed [39:0] qx = numx / denom;
  wire signed [39:0] qy = numy / denom;

  assign new_px = (qx >  40'sd255) ? 9'sd255 :
                  (qx < -40'sd256) ? -9'sd256 : qx[8:0];
  assign new_py = (qy >  40'sd255) ? 9'sd255 :
                  (qy < -40'sd256) ? -9'sd256 : qy[8:0];
endmodule

)";
  return os.str();
}

std::string emit_pe_array(const ArchConfig& config,
                          const VerilogParams& params) {
  (void)params;
  std::ostringstream os;
  const int lanes = config.pe_lanes;
  os << banner("pe_array: ladder of " + std::to_string(lanes) +
               " PE-T / PE-V pairs with forwarding (Figs. 4-5)");
  os << "module pe_array (\n"
        "    input  wire clk,\n"
        "    input  wire rst,\n"
        "    input  wire row_start,              // column 0 of a row sweep\n"
        "    input  wire [" << lanes << "*32-1:0] bram_word, // packed words, one per lane\n"
        "    input  wire [31:0] above_word,      // row above (helper port)\n"
        "    input  wire [" << lanes << "-1:0]  first_col, last_col,\n"
        "    input  wire [" << lanes << "-1:0]  first_row, last_row,\n"
        "    output wire [" << lanes << "*32-1:0] term_out,\n"
        "    output wire [" << lanes << "*18-1:0] pv_out    // {px, py} per PE-V\n"
        ");\n"
        "  genvar i;\n"
        "  // l_px forwarding flip-flops: each lane keeps its previous\n"
        "  // column's c_px (Sec. V-A).\n"
        "  reg signed [8:0] l_px_ff [" << lanes - 1 << ":0];\n"
        "  // a_py crosses lanes through one register (the ladder skew).\n"
        "  reg signed [8:0] a_py_ff [" << lanes - 1 << ":0];\n"
        "  generate\n"
        "    for (i = 0; i < " << lanes << "; i = i + 1) begin : lane\n"
        "      wire [31:0] word = bram_word[i*32 +: 32];\n"
        "      wire signed [8:0] a_py_in = (i == 0) ? `WORD_PY(above_word)\n"
        "                                           : a_py_ff[(i == 0) ? 0 : i-1];\n"
        "      pe_t t (\n"
        "        .c_px(`WORD_PX(word)), .l_px(l_px_ff[i]),\n"
        "        .c_py(`WORD_PY(word)), .a_py(a_py_in),\n"
        "        .v(`WORD_V(word)),\n"
        "        .first_col(first_col[i]), .last_col(last_col[i]),\n"
        "        .first_row(first_row[i]), .last_row(last_row[i]),\n"
        "        .term(term_out[i*32 +: 32]), .div_p(), .u());\n"
        "      always @(posedge clk) begin\n"
        "        if (rst || row_start) l_px_ff[i] <= 9'sd0;\n"
        "        else                  l_px_ff[i] <= `WORD_PX(word);\n"
        "        a_py_ff[i] <= `WORD_PY(word);\n"
        "      end\n"
        "    end\n"
        "  endgenerate\n"
        "  // PE-Vs consume c/r/b Terms through the pipeline registers the\n"
        "  // control unit sequences; shown here as combinational taps.\n"
        "  generate\n"
        "    for (i = 0; i + 1 < " << lanes << "; i = i + 1) begin : vlane\n"
        "      pe_v v (\n"
        "        .c_term(term_out[i*32 +: 32]),\n"
        "        .r_term(term_out[i*32 +: 32]),   // previous-column tap\n"
        "        .b_term(term_out[(i+1)*32 +: 32]),\n"
        "        .last_col(last_col[i]), .last_row(last_row[i]),\n"
        "        .c_px(9'sd0), .c_py(9'sd0),      // wired by the control unit\n"
        "        .new_px(pv_out[i*18 +: 9]), .new_py(pv_out[i*18+9 +: 9]));\n"
        "    end\n"
        "  endgenerate\n"
        "endmodule\n\n";
  return os.str();
}

std::string emit_design(const ArchConfig& config, const VerilogParams& params) {
  config.validate();
  std::ostringstream os;
  os << "// Generated by chambolle-parallel (DATE 2011 reproduction).\n"
     << "// Configuration: " << config.num_sliding_windows
     << " sliding windows, " << config.pe_lanes << " PE lanes/array, tile "
     << config.tile_rows << "x" << config.tile_cols << ", "
     << config.num_brams << " BRAMs/array (depth " << config.bram_depth()
     << "), clock target " << config.clock_mhz << " MHz.\n"
     << "// Golden model: the chambolle::fxdp datapath (bit-identical).\n\n";
  os << emit_packed_word();
  os << emit_sqrt_rom();
  os << emit_sqrt_unit();
  os << emit_pe_t(params);
  os << emit_pe_v(params);
  os << emit_pe_array(config, params);
  return os.str();
}

std::string emit_pe_t_testbench(const VerilogParams& params, int vectors,
                                std::uint64_t seed) {
  if (vectors < 1)
    throw std::invalid_argument("emit_pe_t_testbench: vectors < 1");
  Rng rng(seed);
  const FixedParams fp{params.theta_q, params.inv_theta_q, params.step_q, 1};

  std::ostringstream os;
  os << banner("pe_t_tb: self-checking bench, golden vectors from the C++ "
               "model");
  os << "`timescale 1ns/1ps\n"
        "module pe_t_tb;\n"
        "  reg signed [8:0]  c_px, l_px, c_py, a_py;\n"
        "  reg signed [12:0] v;\n"
        "  reg first_col, last_col, first_row, last_row;\n"
        "  wire signed [31:0] term, div_p;\n"
        "  wire signed [12:0] u;\n"
        "  integer errors = 0;\n"
        "  pe_t dut (.c_px(c_px), .l_px(l_px), .c_py(c_py), .a_py(a_py),\n"
        "            .v(v), .first_col(first_col), .last_col(last_col),\n"
        "            .first_row(first_row), .last_row(last_row),\n"
        "            .term(term), .div_p(div_p), .u(u));\n"
        "  task check(input signed [31:0] want_term,\n"
        "             input signed [12:0] want_u);\n"
        "    begin\n"
        "      #1;\n"
        "      if (term !== want_term || u !== want_u) begin\n"
        "        $display(\"FAIL term=%0d (want %0d) u=%0d (want %0d)\",\n"
        "                 term, want_term, u, want_u);\n"
        "        errors = errors + 1;\n"
        "      end\n"
        "    end\n"
        "  endtask\n"
        "  initial begin\n";
  for (int i = 0; i < vectors; ++i) {
    const std::int32_t c_px = rng.uniform_int(-256, 255);
    const std::int32_t l_px = rng.uniform_int(-256, 255);
    const std::int32_t c_py = rng.uniform_int(-256, 255);
    const std::int32_t a_py = rng.uniform_int(-256, 255);
    const std::int32_t v = rng.uniform_int(-4096, 4095);
    const bool fc = rng.uniform_int(0, 7) == 0;
    const bool lc = !fc && rng.uniform_int(0, 7) == 0;
    const bool fr = rng.uniform_int(0, 7) == 0;
    const bool lr = !fr && rng.uniform_int(0, 7) == 0;
    const fxdp::TermOut t =
        fxdp::pe_t_op(c_px, l_px, c_py, a_py, v, fc, lc, fr, lr,
                      params.inv_theta_q);
    const std::int32_t u = fxdp::pe_u_op(v, t.div_p, params.theta_q);
    os << "    c_px = " << c_px << "; l_px = " << l_px << "; c_py = " << c_py
       << "; a_py = " << a_py << "; v = " << v << ";\n"
       << "    first_col = " << fc << "; last_col = " << lc
       << "; first_row = " << fr << "; last_row = " << lr << ";\n"
       << "    check(" << t.term << ", " << u << ");\n";
  }
  os << "    if (errors == 0) $display(\"PASS: all " << vectors
     << " pe_t vectors\");\n"
        "    else $display(\"FAIL: %0d errors\", errors);\n"
        "    $finish;\n"
        "  end\n"
        "endmodule\n";
  (void)fp;
  return os.str();
}

std::string emit_pe_v_testbench(const VerilogParams& params, int vectors,
                                std::uint64_t seed) {
  if (vectors < 1)
    throw std::invalid_argument("emit_pe_v_testbench: vectors < 1");
  Rng rng(seed);

  std::ostringstream os;
  os << banner("pe_v_tb: self-checking bench (exercises the LUT sqrt path)");
  os << "`timescale 1ns/1ps\n"
        "module pe_v_tb;\n"
        "  reg signed [31:0] c_term, r_term, b_term;\n"
        "  reg last_col, last_row;\n"
        "  reg signed [8:0] c_px, c_py;\n"
        "  wire signed [8:0] new_px, new_py;\n"
        "  integer errors = 0;\n"
        "  pe_v dut (.c_term(c_term), .r_term(r_term), .b_term(b_term),\n"
        "            .last_col(last_col), .last_row(last_row),\n"
        "            .c_px(c_px), .c_py(c_py),\n"
        "            .new_px(new_px), .new_py(new_py));\n"
        "  task check(input signed [8:0] want_px,\n"
        "             input signed [8:0] want_py);\n"
        "    begin\n"
        "      #1;\n"
        "      if (new_px !== want_px || new_py !== want_py) begin\n"
        "        $display(\"FAIL px=%0d (want %0d) py=%0d (want %0d)\",\n"
        "                 new_px, want_px, new_py, want_py);\n"
        "        errors = errors + 1;\n"
        "      end\n"
        "    end\n"
        "  endtask\n"
        "  initial begin\n";
  for (int i = 0; i < vectors; ++i) {
    // Terms in a realistic dynamic range (a few Q24.8 units).
    const std::int32_t c_term = rng.uniform_int(-4000, 4000);
    const std::int32_t r_term = rng.uniform_int(-4000, 4000);
    const std::int32_t b_term = rng.uniform_int(-4000, 4000);
    const std::int32_t c_px = rng.uniform_int(-256, 255);
    const std::int32_t c_py = rng.uniform_int(-256, 255);
    const bool lc = rng.uniform_int(0, 7) == 0;
    const bool lr = rng.uniform_int(0, 7) == 0;
    const fxdp::VOut out = fxdp::pe_v_op(c_term, r_term, b_term, lc, lr, c_px,
                                         c_py, params.step_q);
    os << "    c_term = " << c_term << "; r_term = " << r_term
       << "; b_term = " << b_term << "; last_col = " << lc
       << "; last_row = " << lr << "; c_px = " << c_px << "; c_py = " << c_py
       << ";\n"
       << "    check(" << out.px << ", " << out.py << ");\n";
  }
  os << "    if (errors == 0) $display(\"PASS: all " << vectors
     << " pe_v vectors\");\n"
        "    else $display(\"FAIL: %0d errors\", errors);\n"
        "    $finish;\n"
        "  end\n"
        "endmodule\n";
  return os.str();
}

void write_verilog(const std::string& path, const ArchConfig& config,
                   const VerilogParams& params) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_verilog: cannot open " + path);
  out << emit_design(config, params);
  if (!out) throw std::runtime_error("write_verilog: write failed");
}

}  // namespace chambolle::hw
