#include "hw/bram.hpp"

#include <set>

namespace chambolle::hw {

BramBank::BramBank(int tile_rows, int tile_cols, int num_brams)
    : tile_rows_(tile_rows), tile_cols_(tile_cols) {
  if (tile_rows <= 0 || tile_cols <= 0 || num_brams <= 0)
    throw std::invalid_argument("BramBank: bad geometry");
  const int depth =
      ((tile_rows + num_brams - 1) / num_brams) * tile_cols;
  brams_.reserve(static_cast<std::size_t>(num_brams));
  for (int i = 0; i < num_brams; ++i) brams_.emplace_back(depth);
}

void BramBank::check_coords(int row, int col) const {
  if (row < 0 || row >= tile_rows_ || col < 0 || col >= tile_cols_)
    throw std::out_of_range("BramBank: coordinates");
}

fx::BramFields BramBank::read_fields(int row, int col) {
  check_coords(row, col);
  const int b = bram_index_for_row(row, num_brams());
  const int a = bram_addr_for(row, col, tile_cols_, num_brams());
  return fx::unpack_word(brams_[static_cast<std::size_t>(b)].read(a));
}

void BramBank::write_fields(int row, int col, const fx::BramFields& f) {
  check_coords(row, col);
  const int b = bram_index_for_row(row, num_brams());
  const int a = bram_addr_for(row, col, tile_cols_, num_brams());
  brams_[static_cast<std::size_t>(b)].write(a, fx::pack_word(f));
}

void BramBank::load_fields(int row, int col, const fx::BramFields& f) {
  check_coords(row, col);
  const int b = bram_index_for_row(row, num_brams());
  const int a = bram_addr_for(row, col, tile_cols_, num_brams());
  brams_[static_cast<std::size_t>(b)].poke(a, fx::pack_word(f));
}

fx::BramFields BramBank::peek_fields(int row, int col) const {
  check_coords(row, col);
  const int b = bram_index_for_row(row, num_brams());
  const int a = bram_addr_for(row, col, tile_cols_, num_brams());
  return fx::unpack_word(brams_[static_cast<std::size_t>(b)].peek(a));
}

std::uint64_t BramBank::total_reads() const {
  std::uint64_t s = 0;
  for (const Bram& b : brams_) s += b.reads();
  return s;
}

std::uint64_t BramBank::total_writes() const {
  std::uint64_t s = 0;
  for (const Bram& b : brams_) s += b.writes();
  return s;
}

void BramBank::reset_counters() {
  for (Bram& b : brams_) b.reset_counters();
}

void BramBank::check_conflict_free(const std::vector<int>& rows) const {
  std::set<int> seen;
  for (int r : rows)
    if (!seen.insert(bram_index_for_row(r, num_brams())).second)
      throw std::logic_error("BramBank: same-cycle BRAM port conflict");
}

RotatorRoute rotator_route(int region_first_row, int lane, int tile_cols,
                           int num_brams) {
  if (region_first_row < 0 || lane < 0)
    throw std::invalid_argument("rotator_route: negative inputs");
  const int row = region_first_row + lane;
  RotatorRoute route;
  route.bram = bram_index_for_row(row, num_brams);
  route.base_addr = bram_addr_for(row, 0, tile_cols, num_brams);
  return route;
}

}  // namespace chambolle::hw
