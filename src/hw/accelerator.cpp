#include "hw/accelerator.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace chambolle::hw {

namespace {

// Bridges one solve's simulator statistics into the process-wide metric
// registry, so simulated-hardware runs land in the same dump as software
// runs.  Counter handles are resolved once.
void record_accelerator_metrics(const AcceleratorStats& s,
                                const TilingPlan& plan, int iterations) {
  using telemetry::registry;
  static telemetry::Counter& c_solves = registry().counter("hw.solver.solves");
  static telemetry::Counter& c_iters =
      registry().counter("hw.solver.iterations");
  static telemetry::Counter& c_cycles = registry().counter("hw.cycles.total");
  static telemetry::Counter& c_ls =
      registry().counter("hw.cycles.load_store");
  static telemetry::Counter& c_elems =
      registry().counter("hw.elements_updated");
  static telemetry::Counter& c_reads = registry().counter("hw.bram.reads");
  static telemetry::Counter& c_writes = registry().counter("hw.bram.writes");
  static telemetry::Counter& c_passes = registry().counter("hw.passes");
  static telemetry::Counter& c_prof =
      registry().counter("hw.tiling.profitable_elements");
  static telemetry::Counter& c_red =
      registry().counter("hw.tiling.redundant_elements");
  c_solves.add(1);
  c_iters.add(static_cast<std::uint64_t>(iterations));
  c_cycles.add(s.total_cycles);
  c_ls.add(s.load_store_cycles);
  c_elems.add(s.elements_updated);
  c_reads.add(s.bram_word_reads);
  c_writes.add(s.bram_word_writes);
  c_passes.add(static_cast<std::uint64_t>(s.passes));
  const std::uint64_t profitable = plan.total_profitable_elements();
  const std::uint64_t buffered = plan.total_buffer_elements();
  const std::uint64_t passes = static_cast<std::uint64_t>(s.passes);
  c_prof.add(profitable * passes);
  c_red.add((buffered - profitable) * passes);
  registry().gauge("hw.tiling.redundancy").set(s.tiling_redundancy);
}

}  // namespace

ChambolleAccelerator::ChambolleAccelerator(const ArchConfig& config)
    : config_(config) {
  config_.validate();
}

std::uint64_t ChambolleAccelerator::tile_cycles(const TileSpec& tile,
                                                int k) const {
  const int regions = (tile.buf_rows + config_.pe_lanes - 1) / config_.pe_lanes;
  // Per iteration: `regions` column sweeps plus the flush sweep, each costing
  // buf_cols + 1 steps plus the pipeline fill (must match PeArray exactly).
  const std::uint64_t per_iter =
      static_cast<std::uint64_t>(regions + 1) *
      static_cast<std::uint64_t>(tile.buf_cols + 1 + config_.pipeline_fill);
  std::uint64_t cycles = per_iter * static_cast<std::uint64_t>(k);
  if (config_.model_tile_io) {
    cycles += static_cast<std::uint64_t>(
        (tile.buf_rows * tile.buf_cols + config_.num_brams - 1) /
        config_.num_brams);
    cycles += static_cast<std::uint64_t>(
        (tile.prof_rows * tile.prof_cols + config_.num_brams - 1) /
        config_.num_brams);
  }
  return cycles;
}

namespace {

void seed_dual(FixedState& state, const Matrix<float>* px,
               const Matrix<float>* py) {
  if (px == nullptr && py == nullptr) return;
  if (px == nullptr || py == nullptr || px->rows() != state.v.rows() ||
      px->cols() != state.v.cols() || !px->same_shape(*py))
    throw std::invalid_argument("accelerator: initial dual shape mismatch");
  for (std::size_t i = 0; i < state.px.size(); ++i) {
    state.px.data()[i] =
        fx::saturate_bits(fx::to_fixed(px->data()[i]), fx::kPBits);
    state.py.data()[i] =
        fx::saturate_bits(fx::to_fixed(py->data()[i]), fx::kPBits);
  }
}

}  // namespace

ChambolleAccelerator::Result ChambolleAccelerator::solve(
    const FlowField& v, const ChambolleParams& params,
    const InitialDual& initial) {
  params.validate();
  if (!v.u1.same_shape(v.u2))
    throw std::invalid_argument("accelerator: component shape mismatch");
  const telemetry::TraceSpan span("hw.accelerator.solve");
  const int rows = v.rows(), cols = v.cols();
  const TilingPlan plan = make_tiling(rows, cols, config_.tile_rows,
                                      config_.tile_cols,
                                      config_.merge_iterations);
  const FixedParams fp = FixedParams::from(params);

  FrameState state_a(rows, cols);
  state_a.u1 = make_fixed_state(v.u1);
  state_a.u2 = make_fixed_state(v.u2);
  seed_dual(state_a.u1, initial.u1_px, initial.u1_py);
  seed_dual(state_a.u2, initial.u2_px, initial.u2_py);
  FrameState state_b = state_a;

  std::vector<SlidingWindowEngine> engines;
  engines.reserve(static_cast<std::size_t>(config_.num_sliding_windows));
  for (int i = 0; i < config_.num_sliding_windows; ++i)
    engines.emplace_back(config_);

  Result result;
  FrameState* src = &state_a;
  FrameState* dst = &state_b;
  int remaining = params.iterations;
  while (remaining > 0) {
    const telemetry::TraceSpan pass_span("hw.accelerator.pass");
    const int k = std::min(remaining, config_.merge_iterations);
    std::vector<std::uint64_t> engine_start(engines.size());
    for (std::size_t e = 0; e < engines.size(); ++e)
      engine_start[e] = engines[e].stats().cycles;
    for (std::size_t t = 0; t < plan.tiles.size(); ++t)
      engines[t % engines.size()].process_tile(*src, *dst, plan.tiles[t], fp,
                                               k);
    std::uint64_t pass_cycles = 0;
    for (std::size_t e = 0; e < engines.size(); ++e)
      pass_cycles =
          std::max(pass_cycles, engines[e].stats().cycles - engine_start[e]);
    result.stats.total_cycles += pass_cycles;
    std::swap(src, dst);
    remaining -= k;
    ++result.stats.passes;
  }

  for (const SlidingWindowEngine& e : engines) {
    result.stats.load_store_cycles += e.stats().load_store_cycles;
    result.stats.elements_updated += e.array_stats_u1().elements_updated +
                                     e.array_stats_u2().elements_updated;
    result.stats.bram_word_reads += e.array_stats_u1().bram_word_reads +
                                    e.array_stats_u2().bram_word_reads;
    result.stats.bram_word_writes += e.array_stats_u1().bram_word_writes +
                                     e.array_stats_u2().bram_word_writes;
  }
  result.stats.tiles_per_pass = plan.tiles.size();
  result.stats.tiling_redundancy = plan.redundancy();
  record_accelerator_metrics(result.stats, plan, params.iterations);

  const RegionGeometry geom = RegionGeometry::full_frame(rows, cols);
  result.u.u1 = dequantize(fixed_recover_u(src->u1, geom, fp.theta_q));
  result.u.u2 = dequantize(fixed_recover_u(src->u2, geom, fp.theta_q));
  result.dual_u1.u1 = dequantize(src->u1.px);
  result.dual_u1.u2 = dequantize(src->u1.py);
  result.dual_u2.u1 = dequantize(src->u2.px);
  result.dual_u2.u2 = dequantize(src->u2.py);
  result.fps = result.stats.fps(config_.clock_mhz);
  return result;
}

std::uint64_t ChambolleAccelerator::estimate_frame_cycles(
    int rows, int cols, int iterations) const {
  const TilingPlan plan = make_tiling(rows, cols, config_.tile_rows,
                                      config_.tile_cols,
                                      config_.merge_iterations);
  const std::size_t engines =
      static_cast<std::size_t>(config_.num_sliding_windows);
  std::uint64_t total = 0;
  int remaining = iterations;
  while (remaining > 0) {
    const int k = std::min(remaining, config_.merge_iterations);
    std::vector<std::uint64_t> engine_cycles(engines, 0);
    for (std::size_t t = 0; t < plan.tiles.size(); ++t)
      engine_cycles[t % engines] += tile_cycles(plan.tiles[t], k);
    total += *std::max_element(engine_cycles.begin(), engine_cycles.end());
    remaining -= k;
  }
  return total;
}

double ChambolleAccelerator::estimate_fps(int rows, int cols,
                                          int iterations) const {
  const std::uint64_t cycles = estimate_frame_cycles(rows, cols, iterations);
  return cycles == 0 ? 0.0
                     : config_.clock_mhz * 1e6 / static_cast<double>(cycles);
}

std::uint64_t ChambolleAccelerator::estimate_pyramid_cycles(
    int rows, int cols, int iterations, int levels) const {
  if (levels <= 0)
    throw std::invalid_argument("estimate_pyramid_cycles: levels <= 0");
  const int per_level = std::max(iterations / levels, 1);
  std::uint64_t total = 0;
  for (int l = 0; l < levels; ++l) {
    const int r = std::max(rows >> l, 2 * config_.merge_iterations + 1);
    const int c = std::max(cols >> l, 2 * config_.merge_iterations + 1);
    total += estimate_frame_cycles(r, c, per_level);
  }
  return total;
}

double ChambolleAccelerator::estimate_pyramid_fps(int rows, int cols,
                                                  int iterations,
                                                  int levels) const {
  const std::uint64_t cycles =
      estimate_pyramid_cycles(rows, cols, iterations, levels);
  return cycles == 0 ? 0.0
                     : config_.clock_mhz * 1e6 / static_cast<double>(cycles);
}

}  // namespace chambolle::hw
