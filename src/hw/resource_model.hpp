// resource_model.hpp — FPGA area model of the architecture (Table I).
//
// We cannot synthesize Verilog in this reproduction, so Table I is
// regenerated from a structural area model: the module inventory follows the
// architecture description literally (BRAM and DSP counts are exact
// structural consequences of Sections IV-V), while FF/LUT counts use
// per-primitive cost coefficients typical of Virtex-5 mapping.  The model is
// documented term by term so every number can be audited against the paper's
// description.
#pragma once

#include <string>
#include <vector>

#include "hw/device.hpp"

namespace chambolle::hw {

/// Cost of one module instance.
struct ModuleArea {
  std::string name;
  int instances = 0;
  int flipflops_each = 0;
  int luts_each = 0;
  int brams_each = 0;
  int dsps_each = 0;
};

struct ResourceReport {
  std::vector<ModuleArea> modules;
  int flipflops = 0;
  int luts = 0;
  int brams = 0;
  int dsps = 0;

  [[nodiscard]] double flipflop_pct(const Virtex5Spec& d) const {
    return 100.0 * flipflops / d.flipflops;
  }
  [[nodiscard]] double lut_pct(const Virtex5Spec& d) const {
    return 100.0 * luts / d.luts;
  }
  [[nodiscard]] double bram_pct(const Virtex5Spec& d) const {
    return 100.0 * brams / d.brams;
  }
  [[nodiscard]] double dsp_pct(const Virtex5Spec& d) const {
    return 100.0 * dsps / d.dsps;
  }
};

/// Builds the area model for the given architecture configuration.
[[nodiscard]] ResourceReport estimate_resources(const ArchConfig& config);

/// The paper's measured Table I values, for comparison.
struct PaperTable1 {
  int flipflops = 23143;
  int luts = 32829;
  int brams = 36;
  int dsps = 62;
};

}  // namespace chambolle::hw
